// Observatory overhead: the cost of leaving the continuous performance
// observatory on. Runs the same small multi-rank Simulation twice —
//
//   base: run ledger only (cost attribution, watchdog and live metrics off)
//   full: cost attribution + drift watchdog + live /metrics endpoint with a
//         scraper polling it throughout the run (the production shape)
//
// best-of-N reps each — base/full reps interleave so slow host drift
// cancels instead of masquerading as overhead — and reports the steps/sec
// of both plus the overhead percentage. The acceptance bar (enforced by
// scripts/perf_gate.py from BENCH_obs.json) is overhead < 2% absolute:
// per-leaf timing is one util::now_ns pair around kernel work that dwarfs
// it, metric publication is a handful of atomic stores per step, and a
// scrape never takes a lock a rank thread holds. The scrape cadence
// defaults to 1 s (dashboards poll at 1-15 s; Prometheus' default scrape
// interval is 15 s) — on a single-core host the render is serialized
// against the ranks, so an unrealistically hot cadence measures scraper
// CPU, not observatory overhead.
//
// Environment knobs: HACC_OBS_RANKS, HACC_OBS_GRID, HACC_OBS_NP,
// HACC_OBS_STEPS, HACC_OBS_SUBCYCLES, HACC_OBS_REPS, HACC_OBS_SCRAPE_MS.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "comm/comm.h"
#include "core/simulation.h"
#include "obs/metrics.h"
#include "serve/metrics_server.h"
#include "util/timer.h"

namespace {

using namespace hacc;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

struct RunResult {
  double steps_per_sec = 0;
};

/// One timed run; when `hub` is set every rank registers its sinks there
/// for the duration (the live-scrape shape).
RunResult timed_run(int ranks, const core::SimulationConfig& cfg,
                    const cosmology::Cosmology& cosmo, obs::MetricsHub* hub) {
  RunResult out;
  comm::Machine::run(ranks, [&](comm::Comm& c) {
    core::Simulation sim(c, cosmo, cfg);
    sim.initialize();
    int handle = -1;
    if (hub != nullptr)
      handle = hub->add(
          obs::MetricsSource{c.rank(), &sim.counters(), &sim.histograms(), ""});
    c.barrier();
    Timer t;
    sim.run();
    c.barrier();
    if (c.rank() == 0)
      out.steps_per_sec = static_cast<double>(cfg.steps) / t.elapsed();
    if (hub != nullptr) hub->remove(handle);
  });
  return out;
}

}  // namespace

int main() {
  const int ranks = env_int("HACC_OBS_RANKS", 4);
  const int reps = env_int("HACC_OBS_REPS", 5);
  const int scrape_ms = env_int("HACC_OBS_SCRAPE_MS", 1000);

  core::SimulationConfig base;
  base.grid = static_cast<std::size_t>(env_int("HACC_OBS_GRID", 24));
  base.particles_per_dim = static_cast<std::size_t>(env_int("HACC_OBS_NP", 16));
  base.steps = env_int("HACC_OBS_STEPS", 6);
  base.subcycles = env_int("HACC_OBS_SUBCYCLES", 2);
  base.overload = 2.0;
  base.ledger_path = "BENCH_obs_ledger_base.jsonl";
  base.cost_attribution = false;
  base.watchdog = false;

  core::SimulationConfig full = base;
  full.ledger_path = "BENCH_obs_ledger_full.jsonl";
  full.cost_attribution = true;
  full.watchdog = true;

  cosmology::Cosmology cosmo;
  std::printf(
      "Observatory overhead: %d ranks, %zu^3 grid, %zu^3 particles, "
      "%d steps x %d subcycles, best of %d\n",
      ranks, base.grid, base.particles_per_dim, base.steps, base.subcycles,
      reps);

  // Full observatory: live endpoint up, scraper polling it at a dashboard
  // cadence whenever a full rep is in flight. Base and full reps alternate
  // so a drifting host taxes both sides equally.
  obs::MetricsHub hub;
  serve::MetricsServer server(serve::MetricsServer::Config{});
  server.set_metrics_handler([&hub] { return hub.render(); });
  std::atomic<bool> stop{false};
  std::atomic<bool> scraping{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (scraping.load(std::memory_order_relaxed)) {
        int status = 0;
        serve::http_get(server.port(), "/metrics", &status);
        if (status == 200) scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(scrape_ms));
    }
  });

  double base_sps = 0;
  double full_sps = 0;
  for (int r = 0; r < reps; ++r) {
    base_sps =
        std::max(base_sps, timed_run(ranks, base, cosmo, nullptr).steps_per_sec);
    scraping.store(true);
    full_sps =
        std::max(full_sps, timed_run(ranks, full, cosmo, &hub).steps_per_sec);
    scraping.store(false);
  }
  stop.store(true);
  scraper.join();

  const double overhead_pct = base_sps > 0
                                  ? 100.0 * (1.0 - full_sps / base_sps)
                                  : 0.0;
  std::printf("\n  base (ledger only):   %8.3f steps/s\n", base_sps);
  std::printf("  full (observatory):   %8.3f steps/s\n", full_sps);
  std::printf("  overhead:             %8.2f %%   (%llu scrapes served)\n",
              overhead_pct,
              static_cast<unsigned long long>(scrapes.load()));

  std::FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_obs.json for writing\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"obs_overhead\",\n"
               "  \"ranks\": %d, \"grid\": %zu, \"particles_per_dim\": %zu,\n"
               "  \"steps\": %d, \"subcycles\": %d, \"reps\": %d,\n"
               "  \"steps_per_sec_base\": %.6f,\n"
               "  \"steps_per_sec_full\": %.6f,\n"
               "  \"overhead_pct\": %.4f,\n"
               "  \"scrapes\": %llu\n}\n",
               ranks, base.grid, base.particles_per_dim, base.steps,
               base.subcycles, reps, base_sps, full_sps, overhead_pct,
               static_cast<unsigned long long>(scrapes.load()));
  std::fclose(f);
  std::printf("\nWrote BENCH_obs.json\n");
  std::remove(base.ledger_path.c_str());
  std::remove(full.ledger_path.c_str());
  return 0;
}
