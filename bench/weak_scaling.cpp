// Table II / Fig. 7 reproduction: weak scaling of the full code.
//
// Part 1 (measured): the full PPTreePM step on SimMPI at a fixed particle
// count per rank. On a real machine the signature is
// ranks x time/substep/particle ~ constant (Table II's "Cores*Time"
// column); on this single-core host the ranks time-share the core, so the
// equivalent observable is time/substep/particle itself staying flat while
// total work (= ranks) grows.
//
// Part 2 (modeled): all twelve rows of Table II from the calibrated BG/Q
// model, printed against the paper's measured PFlops / %peak / time.
#include <cstdio>
#include <sstream>

#include "comm/comm.h"
#include "core/simulation.h"
#include "perfmodel/scaling_model.h"
#include "util/table.h"
#include "util/timer.h"

namespace {
using namespace hacc;

/// One full long-range step; returns wall-clock per substep per particle.
double time_full_step(int nranks, std::size_t np) {
  double result = 0;
  core::SimulationConfig cfg;
  cfg.grid = np;
  cfg.particles_per_dim = np;
  cfg.box_mpch = static_cast<double>(np) * 2.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 20.0;
  cfg.steps = 1;
  cfg.subcycles = 3;
  cfg.overload = 3.0;
  cfg.solver = core::ShortRangeSolver::kTreePP;
  cosmology::Cosmology cosmo;
  comm::Machine::run(nranks, [&](comm::Comm& world) {
    core::Simulation sim(world, cosmo, cfg);
    sim.initialize();
    world.barrier();
    Timer t;
    sim.step();
    world.barrier();
    if (world.rank() == 0) {
      const double particles = std::pow(static_cast<double>(np), 3);
      result = t.elapsed() / cfg.subcycles / particles;
    }
  });
  return result;
}

}  // namespace

int main() {
  std::printf("=== Table II / Fig. 7: weak scaling of the full code ===\n\n");

  std::printf("Measured (SimMPI, ~4k particles per rank, PPTreePM):\n\n");
  {
    Table t({"Ranks", "Particles", "t/substep/particle [s] (invariant)",
             "aggregate work ranks*t"});
    const struct {
      int ranks;
      std::size_t np;
    } cfgs[] = {{1, 16}, {2, 20}, {4, 25}, {8, 32}};
    for (const auto& c : cfgs) {
      const double tpp = time_full_step(c.ranks, c.np);
      t.add_row({std::to_string(c.ranks),
                 std::to_string(c.np) + "^3",
                 Table::sci(tpp, 2), Table::sci(tpp * c.ranks, 2)});
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("\n(on one time-shared core, flat t/substep/particle = "
                "ideal weak scaling:\nper-rank work is constant while total "
                "work grows with ranks)\n");
  }

  std::printf("\nModeled at BG/Q scale (paper Table II in parentheses):\n\n");
  {
    struct PaperRow {
      double pflops, peak, tpp;
    };
    const PaperRow paper[] = {
        {0.018, 69.00, 4.12e-8},  {0.036, 68.59, 1.92e-8},
        {0.072, 68.75, 1.00e-8},  {0.144, 68.50, 5.19e-9},
        {0.269, 69.02, 2.88e-9},  {0.576, 68.64, 1.46e-9},
        {1.16, 69.37, 7.41e-10},  {2.27, 67.70, 3.04e-10},
        {3.39, 67.27, 2.03e-10},  {4.53, 67.46, 1.59e-10},
        {7.02, 69.75, 1.2e-10},   {13.94, 69.22, 5.96e-11},
    };
    Table t({"Cores", "Np", "Geometry", "PFlops (paper)", "%peak (paper)",
             "t/sub/part [s] (paper)", "MB/rank"});
    const auto table = perfmodel::weak_scaling_table();
    for (std::size_t i = 0; i < table.size(); ++i) {
      const auto& r = table[i];
      t.add_row({Table::integer(r.cores),
                 std::to_string(r.np) + "^3", r.geometry,
                 Table::fixed(r.pflops, 3) + " (" +
                     Table::fixed(paper[i].pflops, 3) + ")",
                 Table::fixed(r.peak_percent, 2) + " (" +
                     Table::fixed(paper[i].peak, 2) + ")",
                 Table::sci(r.time_per_substep_particle, 2) + " (" +
                     Table::sci(paper[i].tpp, 2) + ")",
                 Table::fixed(r.memory_mb_rank, 0)});
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("\nheadline: %.2f PFlops modeled vs 13.94 PFlops measured "
                "on 1,572,864 cores (96 racks)\n",
                table.back().pflops);
  }
  return 0;
}
