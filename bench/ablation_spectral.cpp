// Ablation: the spectral operator choices of Sec. II.
//
// HACC's PM solver composes (i) the Eq. 5 filter (Gaussian x sinc^ns),
// (ii) a 6th-order influence function, (iii) 4th-order Super-Lanczos
// differencing. This bench quantifies each choice against the naive
// 2nd-order alternatives on two observables:
//
//  * pair-force anisotropy: the RMS directional scatter of the PM
//    two-particle force at fixed separation (the paper: the filter reduces
//    CIC anisotropy "noise" by over an order of magnitude, which is what
//    lets the hand-over sit at 3 grid spacings);
//  * pair-force radial accuracy vs the continuum 1/r^2 at r >= 3.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <sstream>

#include "tree/force_matcher.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace hacc;

  std::printf("=== Ablation: spectral operator choices (Sec. II) ===\n\n");

  struct Variant {
    const char* name;
    mesh::SpectralConfig cfg;
  };
  const Variant variants[] = {
      {"HACC default (filter + O6 + SL4)", {}},
      {"no filter (sigma=0, ns=0)",
       {0.0, 0, mesh::GreenOrder::kOrder6,
        mesh::GradientOrder::kSuperLanczos4}},
      {"2nd-order Green's function",
       {0.8, 3, mesh::GreenOrder::kOrder2,
        mesh::GradientOrder::kSuperLanczos4}},
      {"2nd-order differencing",
       {0.8, 3, mesh::GreenOrder::kOrder6, mesh::GradientOrder::kOrder2}},
      {"all second order, no filter",
       {0.0, 0, mesh::GreenOrder::kOrder2, mesh::GradientOrder::kOrder2}},
  };

  Table t({"variant", "aniso RMS @ r=2.5", "aniso RMS @ r=3.5",
           "radial err @ r>3 [%]"});
  for (const auto& v : variants) {
    tree::ForceMatchConfig fm;
    fm.spectral = v.cfg;
    fm.sources = 6;
    fm.samples = 48;
    fm.radii = 24;
    fm.rmax = 4.5f;
    const auto samples = tree::measure_grid_force(fm);
    // Anisotropy: scatter of fscalar within narrow radial shells.
    auto shell_rms = [&](double r) {
      RunningStats s;
      for (const auto& smp : samples) {
        const double rr = std::sqrt(smp.s);
        if (std::abs(rr - r) < 0.25) s.add(smp.fscalar);
      }
      return s.count() > 4 ? s.stddev() / std::abs(s.mean()) : 0.0;
    };
    // Radial accuracy vs continuum s^-3/2 beyond the hand-over.
    RunningStats err;
    for (const auto& smp : samples) {
      if (smp.s < 9.0) continue;
      err.add(std::abs(smp.fscalar * std::pow(smp.s, 1.5) - 1.0));
    }
    t.add_row({v.name, Table::fixed(shell_rms(2.5), 4),
               Table::fixed(shell_rms(3.5), 4),
               Table::fixed(100.0 * err.mean(), 2)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\n(the default should show the smallest anisotropy at the "
              "hand-over scale;\nwithout the filter the CIC anisotropy "
              "dominates, as the paper argues)\n");
  return 0;
}
