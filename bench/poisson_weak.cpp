// Fig. 6 reproduction: weak scaling of the Poisson (long/medium-range)
// solver.
//
// Part 1 (measured): the real spectral solver on SimMPI with a fixed
// per-rank grid; the shape to reproduce is flat time-per-point weak scaling.
// Part 2 (modeled): the three architecture curves of Fig. 6 (Roadrunner
// slab FFT vs BG/P and BG/Q pencil FFT) in ns per step per particle.
#include <cstdio>
#include <sstream>

#include "comm/comm.h"
#include "mesh/cic.h"
#include "mesh/poisson.h"
#include "perfmodel/scaling_model.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {
using namespace hacc;

double time_solve(int nranks, std::size_t n) {
  double per_point = 0;
  mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& world) {
    mesh::PoissonSolver solver(world, d);
    mesh::DistGrid delta(d, world.rank(), 1);
    Philox rng(4);
    const auto& b = delta.interior();
    for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
      for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
        for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
          delta.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                   static_cast<std::ptrdiff_t>(y - b.y.lo),
                   static_cast<std::ptrdiff_t>(z - b.z.lo)) =
              rng.gaussian2((x * n + y) * n + z)[0];
    std::array<mesh::DistGrid, 3> f{mesh::DistGrid(d, world.rank(), 1),
                                    mesh::DistGrid(d, world.rank(), 1),
                                    mesh::DistGrid(d, world.rank(), 1)};
    world.barrier();
    Timer t;
    solver.solve(world, delta, f);
    world.barrier();
    if (world.rank() == 0)
      per_point = t.elapsed() / static_cast<double>(n * n * n);
  });
  return per_point;
}

}  // namespace

int main() {
  std::printf("=== Fig. 6: Poisson-solver weak scaling ===\n\n");

  std::printf("Measured (SimMPI, fixed ~32^3 grid points per rank; flat "
              "time/point = ideal):\n\n");
  {
    Table t({"Ranks", "Grid", "ns/point", "points/rank"});
    const struct {
      int ranks;
      std::size_t n;
    } cfgs[] = {{1, 32}, {2, 40}, {4, 48}, {8, 64}};
    for (const auto& c : cfgs) {
      const double s = time_solve(c.ranks, c.n);
      t.add_row({std::to_string(c.ranks), std::to_string(c.n) + "^3",
                 Table::fixed(s * 1e9, 1),
                 Table::integer(static_cast<long long>(c.n * c.n * c.n /
                                                       static_cast<std::size_t>(
                                                           c.ranks)))});
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
  }

  std::printf("\nModeled (paper Fig. 6, time per step per particle in ns; "
              "Roadrunner = slab FFT,\nBG/P & BG/Q = pencil FFT; near-flat "
              "lines = ideal weak scaling):\n\n");
  {
    Table t({"Ranks", "Roadrunner [ns]", "BG/P [ns]", "BG/Q [ns]"});
    for (long long ranks : {64LL, 256LL, 1024LL, 4096LL, 16384LL, 65536LL,
                            131072LL}) {
      using perfmodel::Architecture;
      t.add_row(
          {Table::integer(ranks),
           Table::fixed(perfmodel::poisson_time_per_particle(
                            Architecture::kRoadrunner, ranks) * 1e9, 2),
           Table::fixed(perfmodel::poisson_time_per_particle(
                            Architecture::kBgp, ranks) * 1e9, 2),
           Table::fixed(perfmodel::poisson_time_per_particle(
                            Architecture::kBgq, ranks) * 1e9, 2)});
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
  }
  return 0;
}
