// SDC-defense overhead: the cost of leaving the ABFT audit suite on. Runs
// the same small multi-rank Simulation twice —
//
//   base: audits off (cadence 0) — no checksum stash/compare, no duplicate
//         execution, no mass-conservation capture
//   full: the default AuditConfig (cadence 1: every check, every step — the
//         production Supervisor shape, and the most expensive cadence)
//
// best-of-N reps each, interleaved so slow host drift cancels instead of
// masquerading as overhead. Each timed step includes the health_check gate,
// because that is where the audit aggregates ride the (single) allreduce.
// The acceptance bar (enforced by scripts/perf_gate.py from BENCH_sdc.json)
// is overhead < 3% absolute at the default cadence: the checksum is one
// FNV-1a sweep over rank-local actives, duplicate execution re-evaluates a
// couple of leaves against work that touched every leaf, and the mass sum
// is a grid reduction the deposit phase dwarfs.
//
// Environment knobs: HACC_SDC_RANKS, HACC_SDC_GRID, HACC_SDC_NP,
// HACC_SDC_STEPS, HACC_SDC_SUBCYCLES, HACC_SDC_REPS.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "comm/comm.h"
#include "core/simulation.h"
#include "util/timer.h"

namespace {

using namespace hacc;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// One timed run: step + health gate, the supervised production loop.
double timed_run(int ranks, const core::SimulationConfig& cfg,
                 const cosmology::Cosmology& cosmo) {
  double steps_per_sec = 0;
  comm::Machine::run(ranks, [&](comm::Comm& c) {
    core::Simulation sim(c, cosmo, cfg);
    sim.initialize();
    c.barrier();
    Timer t;
    for (int s = 0; s < cfg.steps; ++s) {
      sim.step();
      sim.health_check();
    }
    c.barrier();
    if (c.rank() == 0)
      steps_per_sec = static_cast<double>(cfg.steps) / t.elapsed();
  });
  return steps_per_sec;
}

}  // namespace

int main() {
  const int ranks = env_int("HACC_SDC_RANKS", 4);
  const int reps = env_int("HACC_SDC_REPS", 9);

  core::SimulationConfig base;
  base.grid = static_cast<std::size_t>(env_int("HACC_SDC_GRID", 24));
  base.particles_per_dim = static_cast<std::size_t>(env_int("HACC_SDC_NP", 16));
  base.steps = env_int("HACC_SDC_STEPS", 10);
  base.subcycles = env_int("HACC_SDC_SUBCYCLES", 2);
  base.overload = 2.0;
  base.audit.cadence = 0;  // defense off

  core::SimulationConfig full = base;
  full.audit = core::AuditConfig{};  // defaults: every check, every step

  cosmology::Cosmology cosmo;
  std::printf(
      "SDC-defense overhead: %d ranks, %zu^3 grid, %zu^3 particles, "
      "%d steps x %d subcycles, best of %d\n",
      ranks, base.grid, base.particles_per_dim, base.steps, base.subcycles,
      reps);

  // Alternate which side goes first within each rep pair: best-of-N then
  // samples both orders, so a monotonic host drift (warm-up, thermal)
  // cannot systematically favor one side.
  double base_sps = 0;
  double full_sps = 0;
  for (int r = 0; r < reps; ++r) {
    if (r % 2 == 0) {
      base_sps = std::max(base_sps, timed_run(ranks, base, cosmo));
      full_sps = std::max(full_sps, timed_run(ranks, full, cosmo));
    } else {
      full_sps = std::max(full_sps, timed_run(ranks, full, cosmo));
      base_sps = std::max(base_sps, timed_run(ranks, base, cosmo));
    }
  }

  const double overhead_pct =
      base_sps > 0 ? 100.0 * (1.0 - full_sps / base_sps) : 0.0;
  std::printf("\n  base (audits off):     %8.3f steps/s\n", base_sps);
  std::printf("  full (audit cadence 1):%8.3f steps/s\n", full_sps);
  std::printf("  overhead:              %8.2f %%\n", overhead_pct);

  std::FILE* f = std::fopen("BENCH_sdc.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_sdc.json for writing\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"sdc_overhead\",\n"
               "  \"ranks\": %d, \"grid\": %zu, \"particles_per_dim\": %zu,\n"
               "  \"steps\": %d, \"subcycles\": %d, \"reps\": %d,\n"
               "  \"steps_per_sec_base\": %.6f,\n"
               "  \"steps_per_sec_full\": %.6f,\n"
               "  \"overhead_pct\": %.4f\n}\n",
               ranks, base.grid, base.particles_per_dim, base.steps,
               base.subcycles, reps, base_sps, full_sps, overhead_pct);
  std::fclose(f);
  std::printf("\nWrote BENCH_sdc.json\n");
  return 0;
}
