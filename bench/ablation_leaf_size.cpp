// Ablation: the fat-leaf / walk-minimization tradeoff (Sec. III).
//
// "The RCB tree exploits our highly-tuned short-range force kernels to
// decrease the overall force evaluation time by shifting workload away from
// the slow tree-walking and into the force kernel. Up to a point, doing
// this actually speeds up the overall calculation..."
//
// This bench sweeps the leaf size on a clustered particle set and reports
// build time, walk visits, kernel interactions, and total force time — the
// crossover the paper describes should be visible as a minimum in the total.
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "tree/direct.h"
#include "tree/force_matcher.h"
#include "tree/rcb_tree.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace hacc;
  using namespace hacc::tree;

  std::printf("=== Ablation: RCB leaf size (walk vs kernel tradeoff, "
              "Sec. III) ===\n\n");

  // Clustered set: half the particles in Gaussian blobs (halos), half
  // uniform — the regime where interaction lists are large.
  const std::size_t n = 60000;
  Philox rng(5);
  Philox::Stream rs(rng);
  ParticleArray base;
  base.reserve(n);
  const float box = 64.0f;
  for (std::size_t i = 0; i < n; ++i) {
    float x, y, z;
    if (i % 2 == 0) {
      const float cx = 8.0f + 16.0f * static_cast<float>(rs.index(3));
      const float cy = 8.0f + 16.0f * static_cast<float>(rs.index(3));
      const float cz = 8.0f + 16.0f * static_cast<float>(rs.index(3));
      x = cx + 1.5f * static_cast<float>(rs.gaussian());
      y = cy + 1.5f * static_cast<float>(rs.gaussian());
      z = cz + 1.5f * static_cast<float>(rs.gaussian());
      x = std::clamp(x, 0.0f, box - 0.001f);
      y = std::clamp(y, 0.0f, box - 0.001f);
      z = std::clamp(z, 0.0f, box - 0.001f);
    } else {
      x = static_cast<float>(rs.uniform(0, box));
      y = static_cast<float>(rs.uniform(0, box));
      z = static_cast<float>(rs.uniform(0, box));
    }
    base.push_back(x, y, z, 0, 0, 0, 1.0f, i);
  }

  ShortRangeKernel kernel;
  kernel.fgrid = default_fgrid_poly5();

  Table t({"leaf size", "leaves", "build [ms]", "walk visits",
           "interactions", "mean nbrs", "force [ms]", "total [ms]"});
  for (std::size_t leaf : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    ParticleArray p = base;
    Timer tb;
    RcbTree tree(p, RcbConfig{leaf});
    const double build_ms = tb.elapsed() * 1e3;
    std::vector<float> ax(p.size()), ay(p.size()), az(p.size());
    Timer tf;
    const auto stats = compute_short_range(tree, kernel, ax, ay, az);
    const double force_ms = tf.elapsed() * 1e3;
    t.add_row({Table::integer(static_cast<long long>(leaf)),
               Table::integer(static_cast<long long>(tree.leaves().size())),
               Table::fixed(build_ms, 1),
               Table::integer(static_cast<long long>(stats.walk_visits)),
               Table::integer(static_cast<long long>(stats.interactions)),
               Table::fixed(stats.mean_neighbors(), 0),
               Table::fixed(force_ms, 1),
               Table::fixed(build_ms + force_ms, 1)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\n(walk visits fall and interactions rise with leaf size; "
              "the total shows the\npaper's crossover — 'tens or hundreds "
              "of particles can be in each leaf node\nbefore the crossover "
              "is reached')\n");
  return 0;
}
