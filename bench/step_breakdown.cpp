// Per-step phase breakdown: the paper's Sec. III operating-point table
// (force kernel / tree walk+build / FFT / CIC / refresh / comm) measured on
// a real multi-rank Simulation::run through the observability ledger.
//
// Runs a small PPTreePM simulation on 4 SimMPI ranks with the run ledger
// enabled, prints the reduced per-phase table (mean over ranks, percent of
// step wall, max/mean imbalance) plus the paper-style rollup per step, and
// emits every StepRecord to BENCH_step.json: step wall min/mean/max,
// time-per-substep-per-particle (Table II's weak-scaling invariant),
// momentum drift, the breakdown, and the comm byte counters.
//
// Environment knobs: HACC_STEP_RANKS, HACC_STEP_GRID, HACC_STEP_NP,
// HACC_STEP_STEPS, HACC_STEP_SUBCYCLES; set HACC_STEP_TRACE=<path> to also
// write the merged Chrome trace (open in Perfetto, or summarize with
// scripts/trace_summary.py).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "core/simulation.h"
#include "obs/ledger.h"
#include "util/table.h"

namespace {

using namespace hacc;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

double counter_mean(const obs::StepRecord& rec, const char* name) {
  auto it = rec.counters.find(name);
  return it == rec.counters.end() ? 0.0 : it->second.mean;
}

void write_json(const char* path, const std::vector<obs::StepRecord>& records,
                int ranks, const core::SimulationConfig& cfg) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"step_breakdown\",\n"
               "  \"ranks\": %d, \"grid\": %zu, \"particles_per_dim\": %zu, "
               "\"subcycles\": %d,\n  \"samples\": [\n",
               ranks, cfg.grid, cfg.particles_per_dim, cfg.subcycles);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::fprintf(
        f,
        "    {\"step\": %d, \"z\": %.4f, "
        "\"wall_s\": {\"min\": %.6f, \"mean\": %.6f, \"max\": %.6f}, "
        "\"t_per_substep_per_particle\": %.6e, \"momentum_drift\": %.6e, "
        "\"kernel_s\": %.6f, \"walk_build_s\": %.6f, \"fft_s\": %.6f, "
        "\"cic_s\": %.6f, \"refresh_s\": %.6f, \"comm_s\": %.6f, "
        "\"other_s\": %.6f, \"alltoall_bytes_per_rank\": %.0f, "
        "\"peak_rss_bytes\": %zu}%s\n",
        r.step, r.z, r.wall.min, r.wall.mean, r.wall.max,
        r.t_per_substep_per_particle, r.momentum_drift,
        r.breakdown.at("kernel"), r.breakdown.at("walk_build"),
        r.breakdown.at("fft"), r.breakdown.at("cic"),
        r.breakdown.at("refresh"), r.breakdown.at("comm"),
        r.breakdown.at("other"),
        counter_mean(r, "comm.alltoall.bytes_sent"),
        static_cast<std::size_t>(r.peak_rss_bytes),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %zu samples to %s\n", records.size(), path);
}

}  // namespace

int main() {
  const int ranks = env_int("HACC_STEP_RANKS", 4);
  core::SimulationConfig cfg;
  cfg.grid = static_cast<std::size_t>(env_int("HACC_STEP_GRID", 32));
  cfg.particles_per_dim =
      static_cast<std::size_t>(env_int("HACC_STEP_NP", 24));
  cfg.steps = env_int("HACC_STEP_STEPS", 3);
  cfg.subcycles = env_int("HACC_STEP_SUBCYCLES", 3);
  cfg.overload = 2.0;
  cfg.ledger_path = "BENCH_step_ledger.jsonl";
  if (const char* trace = std::getenv("HACC_STEP_TRACE")) cfg.trace_path = trace;
  cosmology::Cosmology cosmo;

  std::printf(
      "Per-step phase breakdown: %d ranks, %zu^3 grid, %zu^3 particles, "
      "%d steps x %d subcycles\n\n",
      ranks, cfg.grid, cfg.particles_per_dim, cfg.steps, cfg.subcycles);

  std::vector<obs::StepRecord> records;
  comm::Machine::run(ranks, [&](comm::Comm& c) {
    core::Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();  // prints the reduced phase table on rank 0
    if (c.rank() == 0) records = sim.ledger().records();
  });

  // Paper-style rollup per step (Sec. III: kernel dominates, then walk).
  Table t({"step", "z", "wall [s]", "kernel", "walk+build", "fft", "cic",
           "refresh", "comm", "other", "t/substep/part [s]"});
  for (const auto& r : records) {
    auto pct = [&](const char* k) {
      return r.wall.mean > 0
                 ? Table::fixed(100.0 * r.breakdown.at(k) / r.wall.mean, 1) +
                       "%"
                 : std::string("-");
    };
    char tpp[32];
    std::snprintf(tpp, sizeof(tpp), "%.2e", r.t_per_substep_per_particle);
    t.add_row({Table::integer(r.step), Table::fixed(r.z, 2),
               Table::fixed(r.wall.mean, 3), pct("kernel"), pct("walk_build"),
               pct("fft"), pct("cic"), pct("refresh"), pct("comm"),
               pct("other"), tpp});
  }
  std::printf("\nPaper-style rollup (percent of step wall):\n");
  t.print(std::cout);

  write_json("BENCH_step.json", records, ranks, cfg);
  return 0;
}
