// Chaos campaign throughput: how expensive is surviving a hostile run?
//
// Replays the seeded fault-campaign generator from tests/chaos_test.cpp as
// a measurement harness instead of an assertion harness: N campaigns of
// randomized rank kills, corrupted/dropped sends, receive stalls, collective
// failures, and post-write checkpoint damage, each run under an elastic
// Supervisor. Emits BENCH_chaos.json with per-campaign outcomes and the
// aggregate picture a capacity planner wants:
//
//   * termination/completion/give-up counts across the sweep;
//   * attempts, restores, shrinks, and final-width distribution;
//   * detect-to-resume latency stats across every recovery;
//   * campaign wall time vs. a clean unfaulted run (the "chaos tax").
//
// Environment knobs: HACC_CHAOS_CAMPAIGNS (default 20), HACC_CHAOS_SEED
// (default 20120), HACC_CHAOS_RANKS (default 4).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "comm/fault.h"
#include "core/simulation.h"
#include "core/supervisor.h"
#include "gio/gio.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace hacc;
namespace fs = std::filesystem;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

core::SimulationConfig chaos_config() {
  core::SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 4;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  return cfg;
}

struct CampaignResult {
  std::uint64_t seed = 0;
  bool completed = false;
  int attempts = 0;
  int restores = 0;
  int shrinks = 0;
  int final_width = 0;
  int faults_planned = 0;
  int checkpoints_damaged = 0;
  double wall_s = 0;
  double detect_to_resume_s = 0;
};

/// Same campaign generator as ChaosCampaign.SeededCampaignsAllTerminate...:
/// identical seed -> identical FaultPlan and Supervisor knobs, so a bench
/// run reproduces exactly what the test suite certified.
CampaignResult run_campaign(std::uint64_t seed, int ranks,
                            const core::SimulationConfig& cfg,
                            const cosmology::Cosmology& cosmo) {
  Philox philox(seed, /*stream=*/0xC4A05);
  Philox::Stream rng(philox);

  core::SupervisorConfig scfg;
  scfg.sim = cfg;
  scfg.nranks = ranks;
  scfg.elastic.rule = rng.uniform() < 0.5 ? core::ElasticRule::kShrinkByFailed
                                          : core::ElasticRule::kHalve;
  scfg.elastic.min_ranks = 1 + static_cast<int>(rng.index(2));
  scfg.checkpoint_dir =
      (fs::temp_directory_path() / ("hacc_bench_chaos_" + std::to_string(seed)))
          .string();
  scfg.checkpoint_every = 1 + static_cast<int>(rng.index(2));
  scfg.keep = 2;
  scfg.max_retries = 4;
  scfg.max_momentum_drift = 1e-2;
  scfg.machine.verify_payloads = true;
  scfg.machine.recv_timeout_s = 3.0;
  fs::remove_all(scfg.checkpoint_dir);

  CampaignResult out;
  out.seed = seed;
  comm::FaultPlan plan;
  const int kills = 1 + static_cast<int>(rng.index(2));
  for (int k = 0; k < kills; ++k) {
    plan.kill_at_step(static_cast<int>(rng.index(4)),
                      1 + static_cast<int>(rng.index(
                              static_cast<std::uint64_t>(cfg.steps))));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.4) {
    plan.corrupt_send(static_cast<int>(rng.index(4)), comm::fault::kAnyTag,
                      static_cast<int>(rng.index(64)));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.3) {
    plan.drop_send(static_cast<int>(rng.index(4)), comm::fault::kAnyTag,
                   static_cast<int>(rng.index(64)));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.3) {
    plan.stall_recv(static_cast<int>(rng.index(4)), /*seconds=*/0.2,
                    static_cast<int>(rng.index(64)));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.3) {
    plan.fail_collective(static_cast<int>(rng.index(4)),
                         rng.uniform() < 0.5 ? comm::telemetry::Op::kBarrier
                                             : comm::telemetry::Op::kAlltoall,
                         static_cast<int>(rng.index(16)));
    ++out.faults_planned;
  }
  scfg.machine.fault_plan = &plan;

  core::Supervisor sup(cosmo, scfg);
  sup.between_attempts = [&](int /*attempt*/) {
    if (rng.uniform() >= 0.4) return;
    const auto steps = sup.checkpoints().existing();
    if (steps.empty()) return;
    gio::flip_byte_in_variable(sup.checkpoints().path_for_step(steps.front()),
                               /*block=*/0, "x",
                               /*byte_in_block=*/rng.index(256));
    ++out.checkpoints_damaged;
  };

  Timer wall;
  const core::SupervisorReport rep = sup.run();
  out.wall_s = wall.elapsed();
  out.completed = rep.completed;
  out.attempts = rep.attempts;
  out.restores = rep.restores;
  out.shrinks = rep.shrinks;
  out.final_width = rep.final_width;
  out.detect_to_resume_s = rep.detect_to_resume_seconds;
  fs::remove_all(scfg.checkpoint_dir);
  return out;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main() {
  const int campaigns = env_int("HACC_CHAOS_CAMPAIGNS", 20);
  const auto base_seed =
      static_cast<std::uint64_t>(env_int("HACC_CHAOS_SEED", 20120));
  const int ranks = env_int("HACC_CHAOS_RANKS", 4);

  const core::SimulationConfig cfg = chaos_config();
  cosmology::Cosmology cosmo;

  // Clean unfaulted baseline: what a campaign costs when nothing goes wrong.
  Timer clean_timer;
  comm::Machine::run(ranks, [&](comm::Comm& c) {
    core::Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
    (void)c;
  });
  const double clean_s = clean_timer.elapsed();

  std::printf("Chaos campaign bench: %d campaigns, base seed %llu, %d ranks\n",
              campaigns, static_cast<unsigned long long>(base_seed), ranks);
  std::printf("clean unfaulted run: %.3f s\n\n", clean_s);

  std::vector<CampaignResult> results;
  int completed = 0, shrunk = 0, total_faults = 0, total_damage = 0;
  std::vector<double> walls, resumes;
  for (int i = 0; i < campaigns; ++i) {
    const CampaignResult r =
        run_campaign(base_seed + static_cast<std::uint64_t>(i), ranks, cfg,
                     cosmo);
    results.push_back(r);
    completed += r.completed ? 1 : 0;
    shrunk += r.shrinks > 0 ? 1 : 0;
    total_faults += r.faults_planned;
    total_damage += r.checkpoints_damaged;
    walls.push_back(r.wall_s);
    if (r.restores > 0) resumes.push_back(r.detect_to_resume_s);
  }

  const double mean_wall = mean(walls);
  Table t({"metric", "value"});
  t.add_row({"campaigns", Table::integer(campaigns)});
  t.add_row({"completed", Table::integer(completed)});
  t.add_row({"gave up", Table::integer(campaigns - completed)});
  t.add_row({"campaigns that shrank", Table::integer(shrunk)});
  t.add_row({"faults planned", Table::integer(total_faults)});
  t.add_row({"checkpoints damaged", Table::integer(total_damage)});
  t.add_row({"mean campaign wall [s]", Table::fixed(mean_wall, 3)});
  t.add_row({"p90 campaign wall [s]", Table::fixed(percentile(walls, 0.9), 3)});
  t.add_row({"mean detect->resume [s]", Table::fixed(mean(resumes), 4)});
  t.add_row({"chaos tax vs clean",
             Table::fixed(clean_s > 0 ? mean_wall / clean_s : 0, 2) + "x"});
  t.print(std::cout);

  std::FILE* f = std::fopen("BENCH_chaos.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_chaos.json for writing\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"chaos\",\n"
               "  \"campaigns\": %d, \"base_seed\": %llu, \"ranks\": %d,\n"
               "  \"clean_run_s\": %.6f,\n"
               "  \"completed\": %d, \"gave_up\": %d, \"shrank\": %d,\n"
               "  \"faults_planned\": %d, \"checkpoints_damaged\": %d,\n"
               "  \"mean_campaign_wall_s\": %.6f, \"p90_campaign_wall_s\": "
               "%.6f,\n"
               "  \"mean_detect_to_resume_s\": %.6f,\n"
               "  \"chaos_tax_vs_clean\": %.3f,\n"
               "  \"per_campaign\": [",
               campaigns, static_cast<unsigned long long>(base_seed), ranks,
               clean_s, completed, campaigns - completed, shrunk, total_faults,
               total_damage, mean_wall, percentile(walls, 0.9), mean(resumes),
               clean_s > 0 ? mean_wall / clean_s : 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "%s\n    {\"seed\": %llu, \"completed\": %s, \"attempts\": "
                 "%d, \"restores\": %d, \"shrinks\": %d, \"final_width\": %d, "
                 "\"faults_planned\": %d, \"checkpoints_damaged\": %d, "
                 "\"wall_s\": %.6f, \"detect_to_resume_s\": %.6f}",
                 i == 0 ? "" : ",", static_cast<unsigned long long>(r.seed),
                 r.completed ? "true" : "false", r.attempts, r.restores,
                 r.shrinks, r.final_width, r.faults_planned,
                 r.checkpoints_damaged, r.wall_s, r.detect_to_resume_s);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote BENCH_chaos.json\n");

  // Terminating at all is the bench's own bar; a mostly-failing sweep means
  // the recovery stack regressed.
  return completed * 3 >= campaigns * 2 ? 0 : 1;
}
