// Table III / Fig. 8 reproduction: strong scaling of the full code.
//
// Part 1 (measured): a fixed-size problem on SimMPI over increasing rank
// counts. The observable on a time-shared host is aggregate work: the
// overloading work multiplier must grow as domains shrink, which is exactly
// the effect that bends the paper's Fig. 8 at 16384 cores.
//
// Part 2 (modeled): the six rows of Table III from the calibrated model
// against the paper's values.
#include <cstdio>
#include <sstream>

#include "comm/comm.h"
#include "core/simulation.h"
#include "perfmodel/scaling_model.h"
#include "util/table.h"
#include "util/timer.h"

namespace {
using namespace hacc;

struct Measured {
  double time_per_substep_particle = 0;
  double overload_fraction = 0;
  std::size_t interactions = 0;
};

Measured run_fixed_problem(int nranks) {
  Measured m;
  core::SimulationConfig cfg;
  cfg.grid = 32;
  cfg.particles_per_dim = 32;  // fixed 32^3-particle problem
  cfg.box_mpch = 64.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 20.0;
  cfg.steps = 1;
  cfg.subcycles = 3;
  cfg.overload = 4.0;
  cfg.solver = core::ShortRangeSolver::kTreePP;
  cosmology::Cosmology cosmo;
  comm::Machine::run(nranks, [&](comm::Comm& world) {
    core::Simulation sim(world, cosmo, cfg);
    sim.initialize();
    const auto census = sim.domain().census(sim.particles());
    const auto active = world.allreduce_value(
        static_cast<long long>(census[0]), comm::ReduceOp::kSum);
    const auto passive = world.allreduce_value(
        static_cast<long long>(census[1]), comm::ReduceOp::kSum);
    world.barrier();
    Timer t;
    sim.step();
    world.barrier();
    const auto inter = world.allreduce_value(
        static_cast<long long>(sim.last_stats().interactions),
        comm::ReduceOp::kSum);
    if (world.rank() == 0) {
      m.time_per_substep_particle =
          t.elapsed() / cfg.subcycles / static_cast<double>(active);
      m.overload_fraction =
          static_cast<double>(passive) / static_cast<double>(active);
      m.interactions = static_cast<std::size_t>(inter);
    }
  });
  return m;
}

}  // namespace

int main() {
  std::printf("=== Table III / Fig. 8: strong scaling, fixed problem ===\n\n");

  std::printf("Measured (SimMPI, 32^3 particles total; overload work grows "
              "as domains shrink):\n\n");
  {
    Table t({"Ranks", "Particles/rank", "overload frac",
             "SR interactions", "t/substep/particle [s]"});
    for (int ranks : {1, 2, 4, 8}) {
      const Measured m = run_fixed_problem(ranks);
      t.add_row({std::to_string(ranks),
                 Table::integer(32LL * 32 * 32 / ranks),
                 Table::fixed(m.overload_fraction, 2),
                 Table::integer(static_cast<long long>(m.interactions)),
                 Table::sci(m.time_per_substep_particle, 2)});
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("\n(the overload fraction growing with ranks is the "
                "mechanism behind Fig. 8's 16k-core bend)\n");
  }

  std::printf("\nModeled at BG/Q scale, 1024^3 particles "
              "(paper Table III in parentheses):\n\n");
  {
    struct PaperRow {
      double tflops, peak, tsub, mem;
    };
    const PaperRow paper[] = {
        {4.42, 67.44, 145.94, 368.82}, {8.77, 66.89, 98.01, 230.07},
        {17.99, 68.67, 49.16, 125.86}, {33.06, 63.05, 21.97, 75.816},
        {67.72, 64.59, 15.90, 57.15},  {131.27, 62.59, 10.01, 41.355},
    };
    Table t({"Cores", "Particles/core", "TFlops (paper)", "%peak (paper)",
             "t/substep [s] (paper)", "MB/rank (paper)"});
    const auto table = perfmodel::strong_scaling_table();
    for (std::size_t i = 0; i < table.size(); ++i) {
      const auto& r = table[i];
      t.add_row({Table::integer(r.cores),
                 Table::integer(r.particles_per_core),
                 Table::fixed(r.tflops, 2) + " (" +
                     Table::fixed(paper[i].tflops, 2) + ")",
                 Table::fixed(r.peak_percent, 2) + " (" +
                     Table::fixed(paper[i].peak, 2) + ")",
                 Table::fixed(r.time_per_substep, 2) + " (" +
                     Table::fixed(paper[i].tsub, 2) + ")",
                 Table::fixed(r.memory_mb_rank, 1) + " (" +
                     Table::fixed(paper[i].mem, 1) + ")"});
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
  }
  return 0;
}
