// Checkpoint I/O bandwidth: the gio blocked writer/reader at container
// scale (paper Sec. V; production HACC sustained ~two-thirds of peak I/O
// bandwidth on Mira through GenericIO's aggregated writes).
//
// For each rank count the nine-variable particle payload (~16k particles
// per rank, the SoA checkpoint layout) is written and read back through
// aggregator counts M = 1 (fully funnelled) and M = ranks (every rank
// writes its own block), timing both directions. Rates are payload MB/s
// computed from the global particle bytes, excluding headers, so the two
// aggregator settings are directly comparable (the file bytes are identical
// by construction). All rows land in BENCH_io.json.
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "gio/particle_io.h"
#include "tree/particles.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace hacc;

struct IoSample {
  int ranks = 0;
  int aggregators = 0;
  std::uint64_t particles = 0;      ///< global particle count
  std::uint64_t payload_bytes = 0;  ///< global particle payload (no headers)
  std::uint64_t file_bytes = 0;
  double write_seconds = 0;
  double read_seconds = 0;
  double write_mbs() const { return rate(write_seconds); }
  double read_mbs() const { return rate(read_seconds); }
  double rate(double s) const {
    return s > 0 ? static_cast<double>(payload_bytes) / 1.0e6 / s : 0.0;
  }
};

tree::ParticleArray sample_particles(int rank, std::size_t n, double box) {
  tree::ParticleArray p;
  Philox rng(1000 + static_cast<std::uint64_t>(rank));
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()), 1.0f,
                static_cast<std::uint64_t>(rank) * 1000000 + i,
                tree::Role::kActive);
  }
  return p;
}

/// Write + read one checkpoint on `nranks` ranks through `aggregators`
/// writers; returns rank 0's timing view.
IoSample time_checkpoint(int nranks, int aggregators,
                         std::size_t particles_per_rank) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "hacc_bench_io.gio").string();
  IoSample out;
  out.ranks = nranks;
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    const double box = 64.0;
    auto p = sample_particles(c.rank(), particles_per_rank, box);
    gio::GlobalMeta meta;
    meta.scale_factor = 0.5;
    meta.box_mpch = box;
    meta.grid = 64;
    gio::GioConfig cfg;
    cfg.aggregators = aggregators;
    // Warm up once (page cache, buffer sizing), then measure.
    gio::write_particles(c, path, meta, p, cfg);
    c.barrier();
    const auto ws = gio::write_particles(c, path, meta, p, cfg);
    tree::ParticleArray q;
    const auto rr = gio::read_particles(c, path, q);
    if (c.rank() == 0) {
      out.aggregators = ws.aggregators;
      out.particles = rr.total_particles;
      out.payload_bytes = ws.payload_bytes;
      out.file_bytes = ws.file_bytes;
      out.write_seconds = ws.seconds;
      out.read_seconds = rr.seconds;
      fs::remove(path);
    }
  });
  return out;
}

void write_json(const char* path, const std::vector<IoSample>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"io_bandwidth\",\n  \"samples\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& s = rows[i];
    std::fprintf(f,
                 "    {\"ranks\": %d, \"aggregators\": %d, "
                 "\"particles\": %llu, \"payload_bytes\": %llu, "
                 "\"file_bytes\": %llu, \"write_s\": %.6f, \"read_s\": %.6f, "
                 "\"write_mbs\": %.2f, \"read_mbs\": %.2f}%s\n",
                 s.ranks, s.aggregators,
                 static_cast<unsigned long long>(s.particles),
                 static_cast<unsigned long long>(s.payload_bytes),
                 static_cast<unsigned long long>(s.file_bytes),
                 s.write_seconds, s.read_seconds, s.write_mbs(), s.read_mbs(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %zu samples to %s\n", rows.size(), path);
}

}  // namespace

int main() {
  std::printf("=== Checkpoint I/O bandwidth (gio blocked format) ===\n\n");
  std::printf(
      "Single host, SimMPI threads; payload MB/s excludes headers. The "
      "file\nbytes are identical for every aggregator count, so M=1 vs "
      "M=ranks\nisolates the funnelling cost.\n\n");

  const std::size_t per_rank = 16384;
  std::vector<IoSample> rows;
  for (int ranks : {1, 2, 4, 8}) {
    std::vector<int> ms = {1};
    if (ranks > 1) ms.push_back(ranks);
    for (int m : ms) rows.push_back(time_checkpoint(ranks, m, per_rank));
  }

  Table t({"Ranks", "Aggregators", "Particles", "Payload [MB]", "Write [MB/s]",
           "Read [MB/s]"});
  for (const auto& s : rows) {
    t.add_row({Table::integer(s.ranks), Table::integer(s.aggregators),
               Table::integer(static_cast<long long>(s.particles)),
               Table::fixed(static_cast<double>(s.payload_bytes) / 1.0e6, 2),
               Table::fixed(s.write_mbs(), 1), Table::fixed(s.read_mbs(), 1)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);

  write_json("BENCH_io.json", rows);
  return 0;
}
