// Sec. II accuracy claim: "the P3M and the PPTreePM versions agree to
// within 0.1% for the nonlinear power spectrum test in the code comparison
// suite".
//
// Evolves the identical initial conditions with both short-range solvers
// and prints the per-bin P(k) ratio. In this codebase both solvers share
// the force kernel, so the agreement is limited only by float summation
// order — comfortably within the paper's 0.1%.
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "comm/comm.h"
#include "core/simulation.h"
#include "util/table.h"

int main() {
  using namespace hacc;

  std::printf("=== Sec. II: P3M vs PPTreePM nonlinear P(k) agreement ===\n\n");

  cosmology::Cosmology cosmo;
  core::SimulationConfig base;
  base.grid = 32;
  base.particles_per_dim = 32;
  base.box_mpch = 32.0;  // small box: strongly nonlinear by z=1
  base.z_initial = 30.0;
  base.z_final = 1.0;
  base.steps = 8;
  base.subcycles = 3;
  base.overload = 4.0;

  std::vector<cosmology::PowerBin> tree_pk, p3m_pk;
  for (auto solver :
       {core::ShortRangeSolver::kTreePP, core::ShortRangeSolver::kP3m}) {
    core::SimulationConfig cfg = base;
    cfg.solver = solver;
    auto& sink =
        solver == core::ShortRangeSolver::kTreePP ? tree_pk : p3m_pk;
    comm::Machine::run(2, [&](comm::Comm& world) {
      core::Simulation sim(world, cosmo, cfg);
      sim.initialize();
      sim.run();
      auto bins = sim.power_spectrum(12);
      if (world.rank() == 0) sink = bins;
    });
  }

  Table t({"k [h/Mpc]", "P_tree", "P_p3m", "|ratio-1| [%]"});
  double worst = 0;
  for (std::size_t i = 0; i < tree_pk.size() && i < p3m_pk.size(); ++i) {
    const double dev =
        std::abs(p3m_pk[i].power / tree_pk[i].power - 1.0) * 100.0;
    worst = std::max(worst, dev);
    t.add_row({Table::fixed(tree_pk[i].k, 3),
               Table::fixed(tree_pk[i].power, 3),
               Table::fixed(p3m_pk[i].power, 3), Table::fixed(dev, 4)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nworst-bin deviation: %.4f%%  (paper claims agreement to "
              "within 0.1%%)\n",
              worst);
  std::printf("%s\n", worst <= 0.1 ? "PASS: within the paper's band"
                                   : "NOTE: exceeds the paper's 0.1% band");
  return 0;
}
