// Campaign-orchestrator throughput: makespan and fleet-pool utilization of
// a multi-run sweep, clean vs chaotic.
//
// Two campaigns over the same sweep (N runs x `width` ranks over a
// `fleet`-rank pool):
//
//   clean:  no injected faults — the scheduler's packing quality is the
//           utilization ceiling for this sweep shape
//   faulty: seeded rank kills and payload corruption on a third of the
//           runs — measures what the supervised recovery + elastic
//           reallocation machinery gives back (shrink-freed ranks regrant
//           to queued runs instead of idling)
//
// Headline (gated by scripts/perf_gate.py from BENCH_campaign.json):
// campaign.utilization — busy rank-seconds / (fleet x makespan) of the
// clean campaign. A scheduler regression (serialized grants, pool leaks,
// lost wakeups) shows up here as idle capacity, robustly to host speed.
//
// Environment knobs: HACC_CAMPAIGN_RUNS, HACC_CAMPAIGN_FLEET,
// HACC_CAMPAIGN_WIDTH, HACC_CAMPAIGN_CONCURRENT, HACC_CAMPAIGN_GRID,
// HACC_CAMPAIGN_NP, HACC_CAMPAIGN_STEPS; HACC_CAMPAIGN_KEEP=1 leaves the
// campaign roots (journal, per-run dirs) in $TMPDIR for inspection with
// scripts/campaign_summary.py.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "campaign/campaign.h"
#include "comm/fault.h"
#include "core/simulation.h"

namespace {

using namespace hacc;
namespace fs = std::filesystem;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

struct CampaignResult {
  double makespan_s = 0;
  double utilization = 0;
  int launched = 0;
  int finished = 0;
  int shrink_reclaimed = 0;
  int shrink_regrant_ranks = 0;
};

CampaignResult run_campaign(const campaign::CampaignSpec& spec,
                            campaign::CampaignConfig cfg,
                            const std::string& tag) {
  cfg.root_dir = (fs::temp_directory_path() / ("hacc_bench_campaign_" + tag))
                     .string();
  fs::remove_all(cfg.root_dir);
  campaign::CampaignOrchestrator orch(spec, cfg);
  const campaign::CampaignReport rep = orch.run();
  if (env_int("HACC_CAMPAIGN_KEEP", 0) != 0)
    std::printf("  kept campaign root: %s\n", cfg.root_dir.c_str());
  else
    fs::remove_all(cfg.root_dir);
  CampaignResult r;
  r.makespan_s = rep.makespan_s;
  r.utilization = rep.utilization;
  r.launched = rep.launched;
  r.finished = rep.finished;
  r.shrink_reclaimed = rep.shrink_reclaimed;
  r.shrink_regrant_ranks = rep.shrink_regrant_ranks;
  return r;
}

}  // namespace

int main() {
  const int nruns = env_int("HACC_CAMPAIGN_RUNS", 6);
  const int fleet = env_int("HACC_CAMPAIGN_FLEET", 4);
  const int width = env_int("HACC_CAMPAIGN_WIDTH", 2);
  const int concurrent = env_int("HACC_CAMPAIGN_CONCURRENT", 2);

  campaign::CampaignSpec spec;
  spec.base.grid = static_cast<std::size_t>(env_int("HACC_CAMPAIGN_GRID", 16));
  spec.base.particles_per_dim =
      static_cast<std::size_t>(env_int("HACC_CAMPAIGN_NP", 12));
  spec.base.box_mpch = 32.0;
  spec.base.z_initial = 30.0;
  spec.base.z_final = 10.0;
  spec.base.steps = env_int("HACC_CAMPAIGN_STEPS", 4);
  spec.base.subcycles = 2;
  spec.base.overload = 3.0;
  for (int s = 0; s < nruns; ++s)
    spec.seeds.push_back(100 + static_cast<std::uint64_t>(s));
  spec.width = width;

  campaign::CampaignConfig cfg;
  cfg.fleet_ranks = fleet;
  cfg.max_concurrent_runs = concurrent;
  cfg.supervisor_retries = 1;
  cfg.elastic.rule = core::ElasticRule::kShrinkByFailed;
  cfg.elastic.min_ranks = 1;
  cfg.machine.verify_payloads = true;
  cfg.machine.recv_timeout_s = 60;
  cfg.ledger = false;  // measure the scheduler, not per-run fsync traffic

  std::printf(
      "campaign throughput: %d run(s) x %d rank(s) over a %d-rank pool "
      "(<= %d concurrent), %zu^3 grid, %zu^3 particles, %d steps\n",
      nruns, width, fleet, concurrent, spec.base.grid,
      spec.base.particles_per_dim, spec.base.steps);

  const CampaignResult clean = run_campaign(spec, cfg, "clean");

  // Chaotic variant: every third run loses a rank mid-flight, every fourth
  // takes an in-transit payload corruption.
  campaign::CampaignConfig chaotic = cfg;
  chaotic.fault_plans =
      [](const campaign::RunSpec& r) -> std::shared_ptr<comm::FaultPlan> {
    const int n = std::atoi(r.name.c_str() + 1);  // "s<seed>"
    auto plan = std::make_shared<comm::FaultPlan>();
    if (n % 3 == 0)
      plan->kill_at_step(/*rank=*/r.width - 1, /*step=*/2);
    else if (n % 4 == 0)
      plan->corrupt_send(/*rank=*/0, comm::fault::kAnyTag, /*nth=*/25);
    else
      return nullptr;
    return plan;
  };
  const CampaignResult faulty = run_campaign(spec, chaotic, "faulty");

  const double recovery_cost_pct =
      clean.makespan_s > 0
          ? 100.0 * (faulty.makespan_s / clean.makespan_s - 1.0)
          : 0.0;
  std::printf("\n  clean : makespan %7.3f s  utilization %5.3f  (%d launches)\n",
              clean.makespan_s, clean.utilization, clean.launched);
  std::printf("  faulty: makespan %7.3f s  utilization %5.3f  (%d launches, "
              "%d rank(s) shrink-reclaimed, %d regranted)\n",
              faulty.makespan_s, faulty.utilization, faulty.launched,
              faulty.shrink_reclaimed, faulty.shrink_regrant_ranks);
  std::printf("  recovery cost: %+.1f %% makespan\n", recovery_cost_pct);

  std::FILE* f = std::fopen("BENCH_campaign.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_campaign.json for writing\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"campaign_throughput\",\n"
      "  \"runs\": %d, \"fleet_ranks\": %d, \"width\": %d,\n"
      "  \"max_concurrent\": %d, \"grid\": %zu, \"particles_per_dim\": %zu,\n"
      "  \"steps\": %d,\n"
      "  \"makespan_clean_s\": %.6f,\n"
      "  \"utilization_clean\": %.6f,\n"
      "  \"makespan_faulty_s\": %.6f,\n"
      "  \"utilization_faulty\": %.6f,\n"
      "  \"launches_faulty\": %d,\n"
      "  \"shrink_reclaimed_ranks\": %d,\n"
      "  \"shrink_regrant_ranks\": %d,\n"
      "  \"recovery_cost_pct\": %.4f\n}\n",
      nruns, fleet, width, concurrent, spec.base.grid,
      spec.base.particles_per_dim, spec.base.steps, clean.makespan_s,
      clean.utilization, faulty.makespan_s, faulty.utilization,
      faulty.launched, faulty.shrink_reclaimed, faulty.shrink_regrant_ranks,
      recovery_cost_pct);
  std::fclose(f);
  std::printf("\nWrote BENCH_campaign.json\n");
  return 0;
}
