// Query-service load generator: the serve subsystem's headline numbers.
//
// Phase 1 builds a run's catalogs: a tiny simulation streams halo/spectrum/
// slice products at cadence (the in-situ pipeline end to end), then a
// synthetic clustered snapshot is cataloged to give the id-lookup workload
// a few thousand halos to aim at. Phase 2 opens a CatalogStore behind the
// sharded LRU block cache and drives a QueryServer thread pool with a mixed
// hot-set workload — 80% halo id lookups (90% of them from a small hot
// set), 10% spectrum windows, 10% region cutouts — from several driver
// threads. Reported: sustained QPS, p50/p99 in-process latency, and the
// block-cache hit rate; all land in BENCH_serve.json for bench_all.sh and
// the perf gate (serve.qps / serve.p99_ms / serve.hit_rate).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <future>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/comm.h"
#include "core/simulation.h"
#include "cosmology/background.h"
#include "serve/catalog_store.h"
#include "serve/insitu.h"
#include "serve/query_server.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace hacc;

constexpr int kSimStep = 4;    ///< latest simulation catalog step
constexpr int kHaloStep = 8;   ///< synthetic large halo catalog step

/// Small simulation whose run streams real catalogs at cadence.
void build_sim_catalogs(const std::string& dir) {
  core::SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 16;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = kSimStep;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cfg.insitu.cadence = 2;
  cfg.insitu.output_dir = dir;
  cfg.insitu.linking_length = 1.2;  // percolating: the short run barely
  cfg.insitu.min_members = 8;       // perturbs the IC lattice
  cfg.insitu.spectrum_bins = 16;
  cfg.insitu.slice_thickness = 4.0;
  cosmology::Cosmology cosmo;
  comm::Machine::run(4, [&](comm::Comm& c) {
    core::Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
  });
}

/// Synthetic clustered snapshot -> a halo catalog with ~kClusters halos,
/// written through the same collective pipeline at a fake later step.
void build_halo_catalog(const std::string& dir) {
  constexpr std::size_t kClusters = 1200;
  constexpr std::size_t kMembers = 16;
  constexpr double kBox = 32.0;
  comm::Machine::run(4, [&](comm::Comm& c) {
    tree::ParticleArray mine;
    Philox rng(4242);
    Philox::Stream s(rng);
    std::uint64_t id = 0;
    for (std::size_t g = 0; g < kClusters; ++g) {
      const double cx = s.uniform(0, kBox);
      const double cy = s.uniform(0, kBox);
      const double cz = s.uniform(0, kBox);
      for (std::size_t m = 0; m < kMembers; ++m) {
        // Every rank advances the same RNG stream; each particle has
        // exactly one owner, so the global snapshot is width-invariant.
        const float x = static_cast<float>(cx + 0.05 * s.gaussian());
        const float y = static_cast<float>(cy + 0.05 * s.gaussian());
        const float z = static_cast<float>(cz + 0.05 * s.gaussian());
        const std::uint64_t pid = id++;
        if (static_cast<int>(pid % static_cast<std::uint64_t>(c.size())) ==
            c.rank())
          mine.push_back(x, y, z, 0, 0, 0, 1.0f, pid, tree::Role::kActive);
      }
    }
    serve::InSituConfig cfg;
    cfg.output_dir = dir;
    cfg.halos = true;
    cfg.spectrum = false;
    cfg.slice = false;
    cfg.linking_length = 0.17;  // links within a cluster, never across
    cfg.min_members = 8;
    gio::GlobalMeta meta;
    meta.scale_factor = 1.0;
    meta.box_mpch = kBox;
    meta.grid = static_cast<std::size_t>(kBox);
    serve::write_catalogs(c, cfg, kHaloStep, meta, mine, {});
  });
}

struct LoadResult {
  std::uint64_t queries = 0;
  double wall_s = 0;
  serve::QueryServer::Stats stats;
  serve::CacheStats cache;
  double qps() const { return wall_s > 0 ? queries / wall_s : 0; }
};

/// The mixed workload: `threads` drivers, each submitting batches and
/// draining the futures, against a shared hot set of halo ids.
LoadResult drive(serve::QueryServer& server,
                 const std::vector<std::uint64_t>& halo_ids,
                 std::uint64_t max_id, int driver_threads,
                 std::uint64_t queries_per_driver) {
  const std::size_t hot = std::min<std::size_t>(64, halo_ids.size());
  auto worker = [&](int t) {
    Philox rng(100 + static_cast<std::uint64_t>(t));
    Philox::Stream s(rng);
    constexpr std::size_t kBatch = 256;
    std::vector<std::future<serve::QueryResult>> batch;
    batch.reserve(kBatch);
    for (std::uint64_t i = 0; i < queries_per_driver; ++i) {
      serve::Query q;
      const double mix = s.uniform(0, 1);
      if (mix < 0.8) {
        q.type = serve::QueryType::kHaloById;
        q.step = kHaloStep;
        q.halo_id = s.uniform(0, 1) < 0.9
                        ? halo_ids[static_cast<std::size_t>(
                              s.uniform(0, static_cast<double>(hot)))]
                        : static_cast<std::uint64_t>(
                              s.uniform(0, static_cast<double>(max_id)));
      } else if (mix < 0.9) {
        q.type = serve::QueryType::kSpectrum;
        q.step = kSimStep;
        q.kmin = static_cast<float>(s.uniform(0, 1.0));
        q.kmax = std::numeric_limits<float>::max();
      } else {
        q.type = serve::QueryType::kRegion;
        q.step = kSimStep;
        const float x0 = static_cast<float>(s.uniform(0, 12.0));
        const float y0 = static_cast<float>(s.uniform(0, 12.0));
        q.lo = {x0, y0, 0.0f};
        q.hi = {x0 + 4.0f, y0 + 4.0f, 4.0f};
      }
      batch.push_back(server.submit(q));
      if (batch.size() == kBatch) {
        for (auto& f : batch) f.get();
        batch.clear();
      }
    }
    for (auto& f : batch) f.get();
  };

  LoadResult out;
  Timer timer;
  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<std::size_t>(driver_threads));
  for (int t = 0; t < driver_threads; ++t) drivers.emplace_back(worker, t);
  for (auto& d : drivers) d.join();
  out.wall_s = timer.elapsed();
  out.queries = static_cast<std::uint64_t>(driver_threads) *
                queries_per_driver;
  out.stats = server.stats();
  out.cache = server.store().cache().stats();
  return out;
}

void write_json(const char* path, const LoadResult& r, int server_threads,
                std::uint64_t halos) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_load\",\n");
  std::fprintf(f, "  \"server_threads\": %d,\n", server_threads);
  std::fprintf(f, "  \"halos\": %llu,\n",
               static_cast<unsigned long long>(halos));
  std::fprintf(f, "  \"queries\": %llu,\n",
               static_cast<unsigned long long>(r.queries));
  std::fprintf(f, "  \"failed\": %llu,\n",
               static_cast<unsigned long long>(r.stats.failed));
  std::fprintf(f, "  \"wall_s\": %.6f,\n", r.wall_s);
  std::fprintf(f, "  \"qps\": %.1f,\n", r.qps());
  std::fprintf(f, "  \"p50_ms\": %.6f,\n", r.stats.p50_ms_all);
  std::fprintf(f, "  \"p99_ms\": %.6f,\n", r.stats.p99_ms_all);
  std::fprintf(f, "  \"mean_ms\": %.6f,\n", r.stats.mean_ms_all);
  std::fprintf(f, "  \"cache_hit_rate\": %.4f,\n", r.cache.hit_rate());
  std::fprintf(f,
               "  \"cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"evictions\": %llu, \"bytes\": %llu},\n",
               static_cast<unsigned long long>(r.cache.hits),
               static_cast<unsigned long long>(r.cache.misses),
               static_cast<unsigned long long>(r.cache.evictions),
               static_cast<unsigned long long>(r.cache.bytes));
  std::fprintf(f, "  \"per_type\": [\n");
  for (int t = 0; t < serve::kQueryTypes; ++t) {
    const auto type = static_cast<serve::QueryType>(t);
    std::fprintf(f,
                 "    {\"type\": \"%s\", \"count\": %llu, "
                 "\"p50_ms\": %.6f, \"p99_ms\": %.6f}%s\n",
                 serve::query_type_name(type),
                 static_cast<unsigned long long>(
                     r.stats.count[static_cast<std::size_t>(t)]),
                 r.stats.p50_ms[static_cast<std::size_t>(t)],
                 r.stats.p99_ms[static_cast<std::size_t>(t)],
                 t + 1 < serve::kQueryTypes ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", path);
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  std::printf("=== Snapshot query service under load ===\n\n");
  std::printf(
      "In-process request API (no loopback TCP): a thread-pool QueryServer\n"
      "over a CatalogStore with a sharded LRU block cache, driven with a\n"
      "mixed hot-set workload (80%% halo lookups, 10%% spectrum windows,\n"
      "10%% region cutouts).\n\n");

  const std::string dir =
      (fs::temp_directory_path() / "hacc_bench_serve").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::printf("building catalogs (in-situ run + synthetic halo catalog)...\n");
  build_sim_catalogs(dir);
  build_halo_catalog(dir);

  serve::CatalogStore store(dir);
  const std::uint64_t halos = store.halo_count(kHaloStep);
  std::printf("catalogs: %zu files, %llu halos at step %d\n\n", store.files(),
              static_cast<unsigned long long>(halos), kHaloStep);

  const int server_threads = 4;
  serve::QueryServer server(
      store, serve::QueryServer::Config{server_threads, /*max_queue=*/4096});

  std::vector<std::uint64_t> halo_ids;
  for (const auto& h : store.halos_in_mass_range(
           kHaloStep, 0.0f, std::numeric_limits<float>::max()))
    halo_ids.push_back(h.id);
  const std::uint64_t max_id = halo_ids.empty() ? 1 : halo_ids.back() + 1;

  const LoadResult r = drive(server, halo_ids, max_id,
                             /*driver_threads=*/4,
                             /*queries_per_driver=*/25000);

  Table t({"Metric", "Value"});
  t.add_row({"queries", Table::integer(static_cast<long long>(r.queries))});
  t.add_row({"failed",
             Table::integer(static_cast<long long>(r.stats.failed))});
  t.add_row({"wall [s]", Table::fixed(r.wall_s, 3)});
  t.add_row({"QPS", Table::fixed(r.qps(), 0)});
  t.add_row({"p50 [ms]", Table::fixed(r.stats.p50_ms_all, 4)});
  t.add_row({"p99 [ms]", Table::fixed(r.stats.p99_ms_all, 4)});
  t.add_row({"mean [ms]", Table::fixed(r.stats.mean_ms_all, 4)});
  t.add_row({"cache hit rate", Table::fixed(r.cache.hit_rate(), 4)});
  t.add_row({"cache resident [KB]",
             Table::fixed(static_cast<double>(r.cache.bytes) / 1024.0, 1)});
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);

  write_json("BENCH_serve.json", r, server_threads, halos);
  fs::remove_all(dir);

  // The acceptance bar: >= 10k QPS with p99 < 5 ms on the hot-set
  // workload, >= 90% cache hit rate. Report, don't abort — absolute rates
  // drift with host load; the perf gate owns the comparison.
  if (r.qps() < 10000 || r.stats.p99_ms_all >= 5.0 ||
      r.cache.hit_rate() < 0.90)
    std::printf("\nWARNING: below target (>=10k QPS, p99 < 5 ms, "
                ">=90%% hit rate)\n");
  return 0;
}
