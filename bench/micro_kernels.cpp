// Google-benchmark micro-benchmarks of the performance-critical kernels:
// 1-D FFT (pow2 / mixed-radix / Bluestein), CIC deposit, RCB build phases,
// the short-range force kernel vs neighbor-list size, Philox generation,
// and the ghost exchange.
#include <benchmark/benchmark.h>

#include "comm/comm.h"
#include "fft/fft1d.h"
#include "mesh/cic.h"
#include "mesh/grid.h"
#include "tree/force_kernel.h"
#include "tree/force_matcher.h"
#include "tree/rcb_tree.h"
#include "util/rng.h"

namespace {

using namespace hacc;

void BM_Fft1D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  fft::Fft1D plan(n);
  Philox rng(1);
  std::vector<fft::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = fft::Complex(rng.gaussian2(i)[0], 0.0);
  for (auto _ : state) {
    auto work = data;
    plan.transform(work.data(), fft::Direction::kForward);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(plan.smooth() ? "mixed-radix" : "bluestein");
}
BENCHMARK(BM_Fft1D)->Arg(1024)->Arg(1200)->Arg(1024 * 5)->Arg(1021);

void BM_ForceKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  tree::ShortRangeKernel kernel;
  kernel.fgrid = tree::default_fgrid_poly5();
  Philox rng(2);
  Philox::Stream rs(rng);
  aligned_vector<float> xs(n), ys(n), zs(n), ms(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<float>(rs.uniform(0, 6));
    ys[i] = static_cast<float>(rs.uniform(0, 6));
    zs[i] = static_cast<float>(rs.uniform(0, 6));
    ms[i] = 1.0f;
  }
  for (auto _ : state) {
    const auto f = tree::evaluate_neighbor_list(
        kernel, 3.0f, 3.0f, 3.0f, xs.data(), ys.data(), zs.data(), ms.data(),
        n);
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["GFlop/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n) *
          tree::kFlopsPerInteraction,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_ForceKernel)->Arg(128)->Arg(512)->Arg(2048);

void BM_RcbBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Philox rng(3);
  Philox::Stream rs(rng);
  tree::ParticleArray base;
  for (std::size_t i = 0; i < n; ++i)
    base.push_back(static_cast<float>(rs.uniform(0, 32)),
                   static_cast<float>(rs.uniform(0, 32)),
                   static_cast<float>(rs.uniform(0, 32)), 0, 0, 0, 1.0f, i);
  for (auto _ : state) {
    tree::ParticleArray p = base;
    tree::RcbTree tree(p, tree::RcbConfig{64});
    benchmark::DoNotOptimize(tree.nodes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RcbBuild)->Arg(10000)->Arg(100000);

void BM_CicDeposit(benchmark::State& state) {
  const std::size_t n = 32;
  const auto npart = static_cast<std::size_t>(state.range(0));
  mesh::BlockDecomp3D d({n, n, n}, comm::Cart3D({1, 1, 1}));
  Philox rng(4);
  Philox::Stream rs(rng);
  std::vector<float> xs(npart), ys(npart), zs(npart);
  for (std::size_t i = 0; i < npart; ++i) {
    xs[i] = static_cast<float>(rs.uniform(0, n));
    ys[i] = static_cast<float>(rs.uniform(0, n));
    zs[i] = static_cast<float>(rs.uniform(0, n));
  }
  mesh::DistGrid grid(d, 0, 1);
  for (auto _ : state) {
    grid.fill(0.0);
    mesh::cic_deposit(grid, xs, ys, zs, 1.0f);
    benchmark::DoNotOptimize(grid.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(npart));
}
BENCHMARK(BM_CicDeposit)->Arg(100000);

void BM_Philox(benchmark::State& state) {
  Philox rng(7);
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    auto block = rng.block(ctr++);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_Philox);

void BM_GhostExchange(benchmark::State& state) {
  // fold+fill on a single-rank periodic grid: measures pack/unpack cost.
  const std::size_t n = 64;
  mesh::BlockDecomp3D d({n, n, n}, comm::Cart3D({1, 1, 1}));
  for (auto _ : state) {
    comm::Machine::run(1, [&](comm::Comm& c) {
      mesh::DistGrid g(d, 0, 4);
      g.fill(1.0);
      g.fold_ghosts(c);
      g.fill_ghosts(c);
      benchmark::DoNotOptimize(g.data().data());
    });
  }
}
BENCHMARK(BM_GhostExchange);

}  // namespace

BENCHMARK_MAIN();
