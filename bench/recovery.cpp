// Fault-tolerance cost model: what does surviving failures cost per step?
//
// At the paper's scale (Sec. V) the mean time between failures is shorter
// than a campaign, so every production step pays a defensive-checkpoint tax
// and every failure pays a detect-and-restore latency. This bench measures
// both on the SimMPI runtime and emits BENCH_recovery.json:
//
//   1. Checkpoint tax — each scheduled checkpoint is written twice, with
//      and without write-then-verify (GioConfig::verify_after_write), so
//      the verification overhead is isolated from raw write cost and
//      amortized into a per-step figure.
//   2. Recovery drill — a Supervisor run with a scheduled rank kill near
//      the end: detect-to-resume latency (failure caught -> resumed machine
//      running, including the newest-first chain re-verification) straight
//      from the SupervisorReport.
//   3. Elastic drill — the same kill handled by the shrink_by_failed
//      policy instead of a fixed-width retry: detect-to-resume at reduced
//      width vs. the same-width drill, and steps/sec before vs. after the
//      shrink (from SupervisorReport::step_stats), i.e. the throughput
//      price of continuing degraded instead of waiting for a replacement.
//
// Environment knobs: HACC_REC_RANKS, HACC_REC_GRID, HACC_REC_NP,
// HACC_REC_STEPS, HACC_REC_EVERY.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "comm/comm.h"
#include "comm/fault.h"
#include "core/simulation.h"
#include "core/supervisor.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace hacc;
namespace fs = std::filesystem;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

struct CheckpointTax {
  int checkpoints = 0;
  double mean_step_s = 0;            ///< plain stepping cost
  double mean_write_s = 0;           ///< checkpoint write, no verification
  double mean_write_verified_s = 0;  ///< write-then-verify
  double verify_per_checkpoint_s() const {
    return mean_write_verified_s - mean_write_s;
  }
};

}  // namespace

int main() {
  const int ranks = env_int("HACC_REC_RANKS", 4);
  const int every = env_int("HACC_REC_EVERY", 2);
  core::SimulationConfig cfg;
  cfg.grid = static_cast<std::size_t>(env_int("HACC_REC_GRID", 32));
  cfg.particles_per_dim = static_cast<std::size_t>(env_int("HACC_REC_NP", 24));
  cfg.steps = env_int("HACC_REC_STEPS", 6);
  cfg.subcycles = 3;
  cfg.overload = 3.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cosmology::Cosmology cosmo;

  const std::string dir = (fs::temp_directory_path() / "hacc_bench_recovery").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::printf(
      "Recovery cost model: %d ranks, %zu^3 grid, %zu^3 particles, %d steps, "
      "checkpoint every %d\n\n",
      ranks, cfg.grid, cfg.particles_per_dim, cfg.steps, every);

  // --- 1. checkpoint tax: the same deterministic run twice, checkpointing
  // on schedule — once with write-then-verify off, once on. Identical
  // trajectories (same seed), so the timing difference is the verification.
  CheckpointTax tax;
  const auto tax_run = [&](bool verify, double& mean_step, double& mean_write,
                           int& ckpts_out) {
    core::SimulationConfig run_cfg = cfg;
    run_cfg.checkpoint_verify = verify;
    double step_s = 0, write_s = 0;
    int ckpts = 0;
    comm::Machine::run(ranks, [&](comm::Comm& c) {
      core::Simulation sim(c, cosmo, run_cfg);
      sim.initialize();
      for (int s = 1; s <= run_cfg.steps; ++s) {
        Timer t;
        sim.step();
        if (c.rank() == 0) step_s += t.elapsed();
        if (s % every == 0 || s == run_cfg.steps) {
          Timer w;
          sim.write_checkpoint(dir + "/tax_" + std::to_string(s) + ".gio");
          if (c.rank() == 0) {
            write_s += w.elapsed();
            ++ckpts;
          }
        }
      }
    });
    mean_step = step_s / run_cfg.steps;
    mean_write = write_s / std::max(ckpts, 1);
    ckpts_out = ckpts;
  };
  double unused_step = 0;
  tax_run(false, tax.mean_step_s, tax.mean_write_s, tax.checkpoints);
  tax_run(true, unused_step, tax.mean_write_verified_s, tax.checkpoints);

  const double per_ckpt = tax.verify_per_checkpoint_s();
  const double per_step =
      per_ckpt * static_cast<double>(tax.checkpoints) / cfg.steps;
  const double pct_of_step =
      tax.mean_step_s > 0 ? 100.0 * per_step / tax.mean_step_s : 0;

  Table t({"metric", "seconds"});
  t.add_row({"mean step", Table::fixed(tax.mean_step_s, 4)});
  t.add_row({"mean checkpoint write", Table::fixed(tax.mean_write_s, 4)});
  t.add_row({"mean write-then-verify", Table::fixed(tax.mean_write_verified_s, 4)});
  t.add_row({"verify overhead / checkpoint", Table::fixed(per_ckpt, 4)});
  t.add_row({"verify overhead / step", Table::fixed(per_step, 4)});
  std::printf("Checkpoint tax (%d checkpoints over %d steps):\n",
              tax.checkpoints, cfg.steps);
  t.print(std::cout);
  std::printf("verify overhead: %.2f%% of step wall\n\n", pct_of_step);

  // --- 2. recovery drill: kill a rank near the end of a supervised run and
  // measure the detect -> resume path.
  core::SupervisorConfig scfg;
  scfg.sim = cfg;
  scfg.nranks = ranks;
  scfg.checkpoint_dir = dir + "/drill";
  scfg.checkpoint_every = every;
  scfg.keep = 2;
  scfg.max_retries = 2;
  comm::FaultPlan plan;
  plan.kill_at_step(/*rank=*/ranks - 1, /*step=*/std::max(cfg.steps - 1, 1));
  scfg.machine.fault_plan = &plan;

  core::Supervisor sup(cosmo, scfg);
  const core::SupervisorReport rep = sup.run();

  Table r({"metric", "value"});
  r.add_row({"completed", rep.completed ? "yes" : "no"});
  r.add_row({"attempts", Table::integer(rep.attempts)});
  r.add_row({"restores", Table::integer(rep.restores)});
  r.add_row({"failed-attempt wall [s]", Table::fixed(rep.failed_attempt_seconds, 4)});
  r.add_row({"chain re-verify [s]", Table::fixed(rep.verify_seconds, 4)});
  r.add_row({"detect -> resume [s]", Table::fixed(rep.detect_to_resume_seconds, 4)});
  std::printf("Recovery drill (kill rank %d at step %d):\n", ranks - 1,
              std::max(cfg.steps - 1, 1));
  r.print(std::cout);

  // --- 3. elastic drill: identical kill, but the Supervisor shrinks to
  // ranks-1 instead of retrying at full width. Compares detect-to-resume
  // against the fixed-width drill and reports the degraded throughput.
  core::SupervisorConfig ecfg = scfg;
  ecfg.checkpoint_dir = dir + "/elastic";
  ecfg.elastic.rule = core::ElasticRule::kShrinkByFailed;
  ecfg.elastic.min_ranks = 1;
  comm::FaultPlan eplan;
  eplan.kill_at_step(/*rank=*/ranks - 1, /*step=*/std::max(cfg.steps - 1, 1));
  ecfg.machine.fault_plan = &eplan;

  core::Supervisor esup(cosmo, ecfg);
  const core::SupervisorReport erep = esup.run();

  double pre_sps = 0, post_sps = 0;
  for (const auto& ws : erep.step_stats) {
    if (ws.width == ranks)
      pre_sps = ws.steps_per_sec();
    else if (ws.width == erep.final_width)
      post_sps = ws.steps_per_sec();
  }
  const double degraded_pct =
      pre_sps > 0 ? 100.0 * (pre_sps - post_sps) / pre_sps : 0;

  Table e({"metric", "value"});
  e.add_row({"completed", erep.completed ? "yes" : "no"});
  e.add_row({"final width", Table::integer(erep.final_width)});
  e.add_row({"shrinks", Table::integer(erep.shrinks)});
  e.add_row({"detect -> resume, same width [s]",
             Table::fixed(rep.detect_to_resume_seconds, 4)});
  e.add_row({"detect -> resume, elastic [s]",
             Table::fixed(erep.detect_to_resume_seconds, 4)});
  e.add_row({"steps/sec before shrink", Table::fixed(pre_sps, 3)});
  e.add_row({"steps/sec after shrink", Table::fixed(post_sps, 3)});
  std::printf("\nElastic drill (same kill, shrink_by_failed):\n");
  e.print(std::cout);
  std::printf("throughput lost to degraded width: %.1f%%\n", degraded_pct);

  std::string width_stats_json;
  for (const auto& ws : erep.step_stats) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"width\": %d, \"steps\": %d, \"step_seconds\": %.6f, "
                  "\"steps_per_sec\": %.6f}",
                  width_stats_json.empty() ? "" : ", ", ws.width, ws.steps,
                  ws.step_seconds, ws.steps_per_sec());
    width_stats_json += buf;
  }

  std::FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_recovery.json for writing\n");
    fs::remove_all(dir);
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"recovery\",\n"
      "  \"ranks\": %d, \"grid\": %zu, \"particles_per_dim\": %zu, "
      "\"steps\": %d, \"checkpoint_every\": %d,\n"
      "  \"checkpoint_tax\": {\"checkpoints\": %d, \"mean_step_s\": %.6f, "
      "\"mean_write_s\": %.6f, \"mean_write_verified_s\": %.6f, "
      "\"verify_overhead_per_checkpoint_s\": %.6f, "
      "\"verify_overhead_per_step_s\": %.6f, "
      "\"verify_overhead_pct_of_step\": %.3f},\n"
      "  \"recovery_drill\": {\"completed\": %s, \"attempts\": %d, "
      "\"restores\": %d, \"failed_attempt_s\": %.6f, "
      "\"chain_verify_s\": %.6f, \"detect_to_resume_s\": %.6f},\n"
      "  \"elastic_drill\": {\"completed\": %s, \"attempts\": %d, "
      "\"restores\": %d, \"shrinks\": %d, \"final_width\": %d, "
      "\"detect_to_resume_s\": %.6f, "
      "\"steps_per_sec_before_shrink\": %.6f, "
      "\"steps_per_sec_after_shrink\": %.6f, "
      "\"throughput_lost_pct\": %.3f, "
      "\"width_stats\": [%s]}\n}\n",
      ranks, cfg.grid, cfg.particles_per_dim, cfg.steps, every,
      tax.checkpoints, tax.mean_step_s, tax.mean_write_s,
      tax.mean_write_verified_s, per_ckpt, per_step, pct_of_step,
      rep.completed ? "true" : "false", rep.attempts, rep.restores,
      rep.failed_attempt_seconds, rep.verify_seconds,
      rep.detect_to_resume_seconds, erep.completed ? "true" : "false",
      erep.attempts, erep.restores, erep.shrinks, erep.final_width,
      erep.detect_to_resume_seconds, pre_sps, post_sps, degraded_pct,
      width_stats_json.c_str());
  std::fclose(f);
  std::printf("\nWrote BENCH_recovery.json\n");

  fs::remove_all(dir);
  return (rep.completed && erep.completed) ? 0 : 1;
}
