// Fig. 10 reproduction: evolution of the matter fluctuation power spectrum.
//
// Runs a real LCDM simulation and prints log10 P(k) vs log10 k at the
// paper's redshifts z = 5.5, 3.0, 1.9, 0.9, 0.4, 0.0, plus linear theory
// at the lowest k bins. The shape to reproduce: linear growth (uniform
// vertical shifts) at small k, progressively nonlinear enhancement at
// large k as z -> 0.
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "comm/comm.h"
#include "core/simulation.h"
#include "util/table.h"

int main() {
  using namespace hacc;

  std::printf("=== Fig. 10: matter power spectrum evolution ===\n\n");

  cosmology::Cosmology cosmo;
  core::SimulationConfig cfg;
  cfg.grid = 48;
  cfg.particles_per_dim = 48;
  cfg.box_mpch = 96.0;
  cfg.z_initial = 40.0;
  cfg.z_final = 0.0;
  cfg.steps = 12;
  cfg.subcycles = 3;
  cfg.overload = 4.0;
  cfg.solver = core::ShortRangeSolver::kTreePP;

  const std::vector<double> snapshots{5.5, 3.0, 1.9, 0.9, 0.4, 0.0};

  comm::Machine::run(2, [&](comm::Comm& world) {
    core::Simulation sim(world, cosmo, cfg);
    sim.initialize();
    cosmology::LinearPower lin(cosmo);

    std::map<double, std::vector<cosmology::PowerBin>> spectra;
    std::size_t snap = 0;
    while (sim.steps_taken() < cfg.steps) {
      sim.step();
      while (snap < snapshots.size() &&
             sim.current_z() <= snapshots[snap] + 1e-9) {
        spectra[snapshots[snap]] = sim.power_spectrum(12);
        ++snap;
      }
    }
    if (world.rank() != 0) return;

    // One column per redshift, log10 P(k) rows by log10 k (Fig. 10 axes).
    std::vector<std::string> headers{"log10 k"};
    for (double z : snapshots) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "z=%.1f", z);
      headers.push_back(buf);
    }
    headers.push_back("linear z=0");
    Table t(headers);
    const auto& ref = spectra.at(0.0);
    for (std::size_t b = 0; b < ref.size(); ++b) {
      std::vector<std::string> row{Table::fixed(std::log10(ref[b].k), 2)};
      for (double z : snapshots) {
        const auto& bins = spectra.at(z);
        row.push_back(b < bins.size()
                          ? Table::fixed(std::log10(bins[b].power), 2)
                          : "-");
      }
      row.push_back(Table::fixed(std::log10(lin(ref[b].k)), 2));
      t.add_row(row);
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);

    // Shape checks echoed to the output.
    const auto& z0 = spectra.at(0.0);
    const auto& z55 = spectra.at(5.5);
    const double low_k_growth = z0.front().power / z55.front().power;
    const double high_k_growth = z0.back().power / z55.back().power;
    const double d_ratio =
        cosmo.growth_factor(1.0) /
        cosmo.growth_factor(cosmology::Cosmology::a_of_z(5.5));
    std::printf("\nlow-k growth z=5.5 -> 0:   %7.1fx  (linear D^2 predicts "
                "%.1fx)\n",
                low_k_growth, d_ratio * d_ratio);
    std::printf("high-k growth z=5.5 -> 0:  %7.1fx  (nonlinear: must exceed "
                "linear)\n",
                high_k_growth);
  });
  return 0;
}
