// Sec. III / IV-B single-node performance accounting.
//
// Prints the paper's instruction-level kernel claims next to the model and
// to measurements of the portable kernel:
//   * 26 instructions / 16 FMAs -> 168 of a possible 208 flops (81%);
//   * FPU/FXU mix 56.10/43.90 -> 1.783 instr/cycle max, 1.508 achieved (85%);
//   * node counters: 142.32 / 204.8 GFlops = 69.5% of peak;
//   * phase mix: 80% kernel / 10% walk / 5% FFT / 5% other,
// and, measured here, the phase mix of a real small PPTreePM run.
#include <cstdio>

#include "comm/comm.h"
#include "core/simulation.h"
#include "perfmodel/bgq_machine.h"
#include "perfmodel/kernel_model.h"
#include "perfmodel/scaling_model.h"

int main() {
  using namespace hacc;
  using namespace hacc::perfmodel;

  std::printf("=== Sec. III/IV-B: kernel & node performance accounting ===\n\n");

  const KernelInstructionMix mix;
  std::printf("kernel instruction model:\n");
  std::printf("  instructions/iteration:    %d (paper: 26)\n",
              mix.instructions);
  std::printf("  FMAs:                      %d (paper: 16)\n", mix.fma);
  std::printf("  flops/iteration:           %d (paper: 168 = 40 + 128)\n",
              mix.flops_per_iteration());
  std::printf("  max flops/iteration:       %d (paper: 208)\n",
              mix.max_flops_per_iteration());
  std::printf("  theoretical peak fraction: %.3f (paper: 0.81)\n",
              mix.theoretical_peak_fraction());
  std::printf("  flops/interaction:         %.0f\n\n",
              mix.flops_per_interaction());

  const IssueModel issue;
  std::printf("instruction-issue model (96-rack run):\n");
  std::printf("  FPU fraction:        %.4f (paper: 0.5610)\n",
              issue.fpu_fraction);
  std::printf("  max instr/cycle:     %.3f (paper: 1.783)\n",
              issue.max_issue());
  std::printf("  achieved / possible: %.2f (paper: 0.85)\n\n",
              issue.issue_efficiency());

  const double kernel_peak = kernel_peak_fraction(4, 16, 1500.0);
  const double full = full_code_peak_fraction(PhaseMix{}.kernel, kernel_peak);
  std::printf("node composition at the 16 ranks / 4 threads point:\n");
  std::printf("  kernel fraction of peak:   %.3f (paper: ~0.80)\n",
              kernel_peak);
  std::printf("  full-code fraction:        %.3f (paper counters: 142.32 / "
              "204.8 = 0.695)\n",
              full);
  std::printf("  modeled node GFlops:       %.1f (paper: 142.32)\n\n",
              full * BqcChip::peak_gflops_node());

  // Measured phase mix of a real (small) PPTreePM run on this host.
  std::printf("measured phase mix (SimMPI, 24^3 particles, 2 ranks; paper: "
              "80/10/5/5):\n");
  cosmology::Cosmology cosmo;
  core::SimulationConfig cfg;
  cfg.grid = 24;
  cfg.particles_per_dim = 24;
  cfg.box_mpch = 24.0;  // clustered quickly -> realistic kernel share
  cfg.z_initial = 30.0;
  cfg.z_final = 2.0;
  cfg.steps = 4;
  cfg.subcycles = 4;
  cfg.overload = 4.0;
  cfg.solver = core::ShortRangeSolver::kTreePP;
  comm::Machine::run(2, [&](comm::Comm& world) {
    core::Simulation sim(world, cosmo, cfg);
    sim.initialize();
    sim.run();
    if (world.rank() == 0) {
      for (const auto& row : sim.timers().report()) {
        std::printf("  %-14s %6.2fs  (%4.1f%%)\n", row.name.c_str(),
                    row.seconds, 100.0 * row.fraction);
      }
      std::printf("  mean neighbor-list size of final step: %.0f "
                  "(paper: ~500-2500)\n",
                  sim.last_stats().mean_neighbors());
    }
  });
  return 0;
}
