// Fig. 5 reproduction: force-kernel performance vs neighbor-list size and
// rank/thread configuration.
//
// Part 1 (measured): the portable short-range kernel on this host, swept
// over neighbor-list sizes. The paper's shape to reproduce: throughput
// rises with list size to a broad plateau (loop overhead amortizes away).
// We report interactions/s and effective GFlops at the paper's 42
// flops/interaction accounting.
//
// Part 2 (modeled): the eight rank/thread curves of Fig. 5 from the BG/Q
// kernel model (percent of node peak vs list size).
#include <cstdio>
#include <sstream>

#include "perfmodel/kernel_model.h"
#include "tree/force_kernel.h"
#include "tree/force_matcher.h"
#include "util/aligned.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace hacc;

  std::printf("=== Fig. 5: force-evaluation kernel performance ===\n\n");

  std::printf("Measured (portable kernel, this host, single thread):\n\n");
  {
    tree::ShortRangeKernel kernel;
    kernel.fgrid = tree::default_fgrid_poly5();
    Philox rng(3);
    Philox::Stream rs(rng);
    Table t({"Neighbors", "interactions/s", "eff GFlops", "ns/interaction"});
    for (std::size_t n : {16u, 64u, 256u, 512u, 1024u, 2048u, 4096u}) {
      aligned_vector<float> xs(n), ys(n), zs(n), ms(n);
      for (std::size_t i = 0; i < n; ++i) {
        xs[i] = static_cast<float>(rs.uniform(0, 6));
        ys[i] = static_cast<float>(rs.uniform(0, 6));
        zs[i] = static_cast<float>(rs.uniform(0, 6));
        ms[i] = 1.0f;
      }
      // Enough repetitions for ~0.1s of work.
      const std::size_t reps = std::max<std::size_t>(1, 3000000 / n);
      volatile float sink = 0;
      Timer timer;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto f = tree::evaluate_neighbor_list(
            kernel, 3.0f + static_cast<float>(r % 7) * 0.01f, 3.0f, 3.0f,
            xs.data(), ys.data(), zs.data(), ms.data(), n);
        sink = sink + f.x;
      }
      const double secs = timer.elapsed();
      const double rate = static_cast<double>(reps * n) / secs;
      t.add_row({Table::integer(static_cast<long long>(n)),
                 Table::sci(rate, 2),
                 Table::fixed(rate * tree::kFlopsPerInteraction / 1e9, 2),
                 Table::fixed(1e9 / rate, 2)});
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
  }

  std::printf("\nModeled BG/Q node (percent of peak vs neighbor-list size; "
              "the eight\nrank/thread configurations of Fig. 5):\n\n");
  {
    struct Config {
      int ranks, threads_total;
    };
    // (ranks/node, total threads) as labeled in Fig. 5.
    const Config configs[] = {{16, 64}, {8, 64}, {4, 64}, {2, 64},
                              {16, 16}, {8, 16}, {4, 16}, {2, 16}};
    std::vector<std::string> headers{"Neighbors"};
    for (const auto& c : configs) {
      headers.push_back(std::to_string(c.ranks) + "r/" +
                        std::to_string(c.threads_total / c.ranks) + "t");
    }
    Table t(headers);
    for (double n : {100.0, 250.0, 500.0, 1000.0, 2000.0, 3500.0, 5000.0}) {
      std::vector<std::string> row{Table::integer(static_cast<long long>(n))};
      for (const auto& c : configs) {
        const int threads_per_core = (c.ranks * (c.threads_total / c.ranks)) / 16;
        row.push_back(Table::fixed(
            100.0 * perfmodel::kernel_peak_fraction(
                        std::max(1, threads_per_core), c.ranks, n),
            1));
      }
      t.add_row(row);
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("\npaper anchor: ~80%% of peak at 4 threads/core and large "
                "lists;\ntheoretical kernel maximum %.0f%% (168/208 flops)\n",
                100.0 * perfmodel::KernelInstructionMix{}
                            .theoretical_peak_fraction());
  }
  return 0;
}
