// Fig. 5 reproduction: force-kernel performance vs neighbor-list size and
// rank/thread configuration.
//
// Part 1 (measured): the portable short-range kernel on this host, swept
// over neighbor-list sizes. The paper's shape to reproduce: throughput
// rises with list size to a broad plateau (loop overhead amortizes away).
// We report interactions/s and effective GFlops at the paper's 42
// flops/interaction accounting.
//
// Part 1b (measured): tile-batched vs scalar kernel race over one
// synthetic fat leaf, against the host FMA-peak roofline of the tile cost
// model; emits BENCH_kernel.json (GFLOP/s both variants, speedup, roofline
// fraction) for the perf-regression gate.
//
// Part 2 (modeled): the eight rank/thread curves of Fig. 5 from the BG/Q
// kernel model (percent of node peak vs list size).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "perfmodel/kernel_model.h"
#include "tree/force_kernel.h"
#include "tree/force_matcher.h"
#include "tree/interaction_batch.h"
#include "util/aligned.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

/// Measured single-thread FMA peak in the paper's fused accounting
/// (a = a*b + c counts 2 flops/lane): 16 independent 4-wide chains — the
/// same vector width as the tile kernel, with enough ILP to saturate the
/// FP ports, and few enough accumulators to stay in registers. On hosts
/// without FMA hardware this measures the dual-port mul+add rate, which is
/// the honest bound for the kernel built with the same baseline ISA.
double measure_fma_peak_gflops() {
#if defined(__GNUC__) || defined(__clang__)
  // Named accumulators, not an array: the compiler must keep all 16 chains
  // in registers (an indexed array degrades to load-mul-add-store, which
  // serializes on store forwarding and halves the measured rate).
  using vf4 = float __attribute__((vector_size(16)));
  constexpr std::size_t kAcc = 16, kLanes = 4, kChunk = 100000;
  const vf4 b = {0.999999f, 0.999999f, 0.999999f, 0.999999f};
  const vf4 c = {1e-7f, 2e-7f, 3e-7f, 4e-7f};
  vf4 a0 = b, a1 = b + c, a2 = b + c * 2.0f, a3 = b + c * 3.0f;
  vf4 a4 = b + c * 4.0f, a5 = b + c * 5.0f, a6 = b + c * 6.0f,
      a7 = b + c * 7.0f;
  vf4 a8 = b + c * 8.0f, a9 = b + c * 9.0f, a10 = b + c * 10.0f,
      a11 = b + c * 11.0f;
  vf4 a12 = b + c * 12.0f, a13 = b + c * 13.0f, a14 = b + c * 14.0f,
      a15 = b + c * 15.0f;
  double flops = 0.0;
  hacc::Timer timer;
  do {
    for (std::size_t r = 0; r < kChunk; ++r) {
      a0 = a0 * b + c;
      a1 = a1 * b + c;
      a2 = a2 * b + c;
      a3 = a3 * b + c;
      a4 = a4 * b + c;
      a5 = a5 * b + c;
      a6 = a6 * b + c;
      a7 = a7 * b + c;
      a8 = a8 * b + c;
      a9 = a9 * b + c;
      a10 = a10 * b + c;
      a11 = a11 * b + c;
      a12 = a12 * b + c;
      a13 = a13 * b + c;
      a14 = a14 * b + c;
      a15 = a15 * b + c;
    }
    flops += static_cast<double>(kChunk * kAcc * kLanes * 2);
  } while (timer.elapsed() < 0.1);
  const vf4 total = ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7)) +
                    (((a8 + a9) + (a10 + a11)) + ((a12 + a13) + (a14 + a15)));
  volatile float sink = 0.0f;
  for (std::size_t l = 0; l < kLanes; ++l) sink = sink + total[l];
  (void)sink;
  return flops / timer.elapsed() / 1e9;
#else
  constexpr std::size_t kLanes = 4, kAcc = 16, kChunk = 100000;
  float acc[kAcc][kLanes], b[kLanes], c[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    b[l] = 0.999999f;
    c[l] = 1e-7f * static_cast<float>(l + 1);
    for (std::size_t a = 0; a < kAcc; ++a)
      acc[a][l] = 1.0f + 0.01f * static_cast<float>(a);
  }
  double flops = 0.0;
  hacc::Timer timer;
  do {
    for (std::size_t r = 0; r < kChunk; ++r) {
      for (std::size_t a = 0; a < kAcc; ++a) {
#pragma omp simd
        for (std::size_t l = 0; l < kLanes; ++l)
          acc[a][l] = acc[a][l] * b[l] + c[l];
      }
    }
    flops += static_cast<double>(kChunk * kAcc * kLanes * 2);
  } while (timer.elapsed() < 0.1);
  volatile float sink = 0.0f;
  for (std::size_t a = 0; a < kAcc; ++a)
    for (std::size_t l = 0; l < kLanes; ++l) sink = sink + acc[a][l];
  (void)sink;
  return flops / timer.elapsed() / 1e9;
#endif
}

struct KernelSample {
  std::size_t neighbors = 0, targets = 0;
  double scalar_gflops = 0, batched_gflops = 0, max_rel_diff = 0;
  double speedup() const { return scalar_gflops > 0 ? batched_gflops / scalar_gflops : 0; }
};

/// Time one variant over a synthetic leaf; returns GFLOP/s at the 42
/// flops/interaction accounting and fills ax with the last forces.
double time_leaf(hacc::tree::KernelVariant variant,
                 const hacc::tree::ShortRangeKernel& kernel,
                 const hacc::tree::ParticleArray& p,
                 const hacc::tree::NeighborList& list_in,
                 std::vector<float>& ax, std::vector<float>& ay,
                 std::vector<float>& az) {
  using namespace hacc;
  const std::size_t nt = p.size(), nn = list_in.size();
  tree::NeighborList list;  // private copy: the batched path pads in place
  list.x = list_in.x;
  list.y = list_in.y;
  list.z = list_in.z;
  list.m = list_in.m;
  ax.assign(nt, 0.0f);
  ay.assign(nt, 0.0f);
  az.assign(nt, 0.0f);
  const std::size_t reps =
      std::max<std::size_t>(1, 6000000 / std::max<std::size_t>(1, nt * nn));
  volatile float sink = 0.0f;
  Timer timer;
  for (std::size_t r = 0; r < reps; ++r) {
    tree::evaluate_leaf(variant, kernel, p, 0,
                        static_cast<std::uint32_t>(nt), list, 1.0f, ax, ay,
                        az);
    sink = sink + ax[0];
  }
  const double secs = timer.elapsed();
  (void)sink;
  return static_cast<double>(reps * nt * nn) * tree::kFlopsPerInteraction /
         secs / 1e9;
}

void write_kernel_json(const char* path, double fma_peak_gflops,
                       const hacc::perfmodel::TileKernelModel& model,
                       const std::vector<KernelSample>& samples) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  double best_batched = 0, best_scalar = 0;
  for (const auto& s : samples) {
    best_batched = std::max(best_batched, s.batched_gflops);
    best_scalar = std::max(best_scalar, s.scalar_gflops);
  }
  // Both the peak probe and the kernel GF/s use the paper's fused 42
  // flops/interaction accounting, so fraction_of_peak is consistent; the
  // model roofline (BG/Q instruction-issue bound) is reported as context.
  std::fprintf(f,
               "{\n  \"bench\": \"force_kernel\",\n"
               "  \"flops_per_interaction\": %.0f,\n"
               "  \"fma_peak_gflops\": %.3f,\n"
               "  \"model_roofline_fraction\": %.4f,\n"
               "  \"model_roofline_gflops\": %.3f,\n"
               "  \"batched_available\": %s,\n"
               "  \"best_scalar_gflops\": %.3f,\n"
               "  \"best_batched_gflops\": %.3f,\n"
               "  \"best_speedup\": %.3f,\n"
               "  \"best_fraction_of_peak\": %.4f,\n"
               "  \"samples\": [\n",
               hacc::tree::kFlopsPerInteraction, fma_peak_gflops,
               model.roofline_fraction(),
               model.roofline_gflops(fma_peak_gflops),
               hacc::tree::batched_kernel_available() ? "true" : "false",
               best_scalar, best_batched,
               best_scalar > 0 ? best_batched / best_scalar : 0.0,
               fma_peak_gflops > 0 ? best_batched / fma_peak_gflops : 0.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    std::fprintf(f,
                 "    {\"neighbors\": %zu, \"targets\": %zu, "
                 "\"scalar_gflops\": %.3f, \"batched_gflops\": %.3f, "
                 "\"speedup\": %.3f, \"fraction_of_peak\": %.4f, "
                 "\"max_rel_diff\": %.3e}%s\n",
                 s.neighbors, s.targets, s.scalar_gflops, s.batched_gflops,
                 s.speedup(),
                 fma_peak_gflops > 0 ? s.batched_gflops / fma_peak_gflops
                                     : 0.0,
                 s.max_rel_diff, i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nWrote %zu samples to %s\n", samples.size(), path);
}

}  // namespace

int main() {
  using namespace hacc;

  std::printf("=== Fig. 5: force-evaluation kernel performance ===\n\n");

  std::printf("Measured (portable kernel, this host, single thread):\n\n");
  {
    tree::ShortRangeKernel kernel;
    kernel.fgrid = tree::default_fgrid_poly5();
    Philox rng(3);
    Philox::Stream rs(rng);
    Table t({"Neighbors", "interactions/s", "eff GFlops", "ns/interaction"});
    for (std::size_t n : {16u, 64u, 256u, 512u, 1024u, 2048u, 4096u}) {
      aligned_vector<float> xs(n), ys(n), zs(n), ms(n);
      for (std::size_t i = 0; i < n; ++i) {
        xs[i] = static_cast<float>(rs.uniform(0, 6));
        ys[i] = static_cast<float>(rs.uniform(0, 6));
        zs[i] = static_cast<float>(rs.uniform(0, 6));
        ms[i] = 1.0f;
      }
      // Enough repetitions for ~0.1s of work.
      const std::size_t reps = std::max<std::size_t>(1, 3000000 / n);
      volatile float sink = 0;
      Timer timer;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto f = tree::evaluate_neighbor_list(
            kernel, 3.0f + static_cast<float>(r % 7) * 0.01f, 3.0f, 3.0f,
            xs.data(), ys.data(), zs.data(), ms.data(), n);
        sink = sink + f.x;
      }
      const double secs = timer.elapsed();
      const double rate = static_cast<double>(reps * n) / secs;
      t.add_row({Table::integer(static_cast<long long>(n)),
                 Table::sci(rate, 2),
                 Table::fixed(rate * tree::kFlopsPerInteraction / 1e9, 2),
                 Table::fixed(1e9 / rate, 2)});
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
  }

  std::printf("\nTile-batched vs scalar (one fat leaf, single thread, "
              "HACC_KERNEL dispatch):\n\n");
  {
    tree::ShortRangeKernel kernel;
    kernel.fgrid = tree::default_fgrid_poly5();
    const double fma_peak = measure_fma_peak_gflops();
    const perfmodel::TileKernelModel model{};
    std::printf("host FMA peak (1 thread): %.1f GFLOP/s; tile roofline "
                "%.0f%% -> %.1f GFLOP/s\n\n",
                fma_peak, 100.0 * model.roofline_fraction(),
                model.roofline_gflops(fma_peak));

    Philox rng(17);
    Philox::Stream rs(rng);
    std::vector<KernelSample> samples;
    Table t({"Neighbors", "Targets", "scalar GF/s", "batched GF/s", "speedup",
             "% FMA peak", "max rel diff"});
    constexpr std::size_t kTargets = 64;  // a typical fat tree leaf
    for (std::size_t n : {64u, 256u, 512u, 1024u, 2048u}) {
      tree::ParticleArray p;
      for (std::size_t i = 0; i < kTargets; ++i) {
        p.push_back(3.0f + static_cast<float>(rs.uniform(-0.5, 0.5)),
                    3.0f + static_cast<float>(rs.uniform(-0.5, 0.5)),
                    3.0f + static_cast<float>(rs.uniform(-0.5, 0.5)), 0.0f,
                    0.0f, 0.0f, 1.0f, i);
      }
      tree::NeighborList list;
      for (std::size_t j = 0; j < n; ++j) {
        list.x.push_back(static_cast<float>(rs.uniform(0, 6)));
        list.y.push_back(static_cast<float>(rs.uniform(0, 6)));
        list.z.push_back(static_cast<float>(rs.uniform(0, 6)));
        list.m.push_back(1.0f);
      }
      std::vector<float> sx, sy, sz, bx, by, bz;
      KernelSample sample;
      sample.neighbors = n;
      sample.targets = kTargets;
      sample.scalar_gflops = time_leaf(tree::KernelVariant::kScalar, kernel,
                                       p, list, sx, sy, sz);
      sample.batched_gflops = time_leaf(tree::KernelVariant::kBatched, kernel,
                                        p, list, bx, by, bz);
      for (std::size_t i = 0; i < kTargets; ++i) {
        const double mag =
            std::sqrt(static_cast<double>(sx[i]) * sx[i] +
                      static_cast<double>(sy[i]) * sy[i] +
                      static_cast<double>(sz[i]) * sz[i]);
        const double dx = static_cast<double>(bx[i]) - sx[i];
        const double dy = static_cast<double>(by[i]) - sy[i];
        const double dz = static_cast<double>(bz[i]) - sz[i];
        const double diff = std::sqrt(dx * dx + dy * dy + dz * dz);
        if (mag > 0 && diff / mag > sample.max_rel_diff)
          sample.max_rel_diff = diff / mag;
      }
      samples.push_back(sample);
      t.add_row({Table::integer(static_cast<long long>(n)),
                 Table::integer(static_cast<long long>(kTargets)),
                 Table::fixed(sample.scalar_gflops, 2),
                 Table::fixed(sample.batched_gflops, 2),
                 Table::fixed(sample.speedup(), 2),
                 Table::fixed(100.0 * sample.batched_gflops / fma_peak, 1),
                 Table::sci(sample.max_rel_diff, 1)});
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    if (!tree::batched_kernel_available())
      std::printf("\n(batched path not compiled in; kBatched dispatches to "
                  "the scalar loop)\n");
    write_kernel_json("BENCH_kernel.json", fma_peak, model, samples);
  }

  std::printf("\nModeled BG/Q node (percent of peak vs neighbor-list size; "
              "the eight\nrank/thread configurations of Fig. 5):\n\n");
  {
    struct Config {
      int ranks, threads_total;
    };
    // (ranks/node, total threads) as labeled in Fig. 5.
    const Config configs[] = {{16, 64}, {8, 64}, {4, 64}, {2, 64},
                              {16, 16}, {8, 16}, {4, 16}, {2, 16}};
    std::vector<std::string> headers{"Neighbors"};
    for (const auto& c : configs) {
      headers.push_back(std::to_string(c.ranks) + "r/" +
                        std::to_string(c.threads_total / c.ranks) + "t");
    }
    Table t(headers);
    for (double n : {100.0, 250.0, 500.0, 1000.0, 2000.0, 3500.0, 5000.0}) {
      std::vector<std::string> row{Table::integer(static_cast<long long>(n))};
      for (const auto& c : configs) {
        const int threads_per_core = (c.ranks * (c.threads_total / c.ranks)) / 16;
        row.push_back(Table::fixed(
            100.0 * perfmodel::kernel_peak_fraction(
                        std::max(1, threads_per_core), c.ranks, n),
            1));
      }
      t.add_row(row);
    }
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("\npaper anchor: ~80%% of peak at 4 threads/core and large "
                "lists;\ntheoretical kernel maximum %.0f%% (168/208 flops)\n",
                100.0 * perfmodel::KernelInstructionMix{}
                            .theoretical_peak_fraction());
  }
  return 0;
}
