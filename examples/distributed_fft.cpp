// Distributed FFT demo: the pencil-decomposed transform that anchors
// HACC's long/medium-range solver (paper Sec. IV-A).
//
// Runs the same 3-D transform on 1, 4, and 8 simulated ranks (slab and
// pencil decompositions), verifies all layouts agree with the serial
// result, and reports wall-clock and the process-grid shapes.
//
// Build & run:  ./build/examples/distributed_fft
#include <cstdio>
#include <vector>

#include "comm/comm.h"
#include "fft/fft3d_local.h"
#include "fft/pencil.h"
#include "fft/slab.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace hacc;
  using fft::Complex;
  const std::size_t n = 64;

  // A deterministic global field, keyed by global cell index.
  Philox rng(7);
  auto field_at = [&](std::size_t x, std::size_t y, std::size_t z) {
    return Complex(rng.gaussian2((x * n + y) * n + z)[0], 0.0);
  };

  // Serial reference.
  std::vector<Complex> reference(n * n * n);
  for (std::size_t x = 0; x < n; ++x)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t z = 0; z < n; ++z)
        reference[(x * n + y) * n + z] = field_at(x, y, z);
  {
    Timer t;
    fft::Fft3DLocal(n, n, n).transform(reference.data(),
                                       fft::Direction::kForward);
    std::printf("serial %zu^3 FFT:          %7.3f s\n", n, t.elapsed());
  }

  for (int nranks : {4, 8}) {
    comm::Machine::run(nranks, [&](comm::Comm& world) {
      auto plan = fft::PencilFft3D::balanced(world, n, n, n);
      const auto rb = plan.real_box();
      std::vector<Complex> local(rb.volume());
      std::size_t i = 0;
      for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x)
        for (std::size_t y = rb.y.lo; y < rb.y.hi; ++y)
          for (std::size_t z = rb.z.lo; z < rb.z.hi; ++z)
            local[i++] = field_at(x, y, z);
      world.barrier();
      Timer t;
      plan.forward(local);
      world.barrier();
      const double elapsed = t.elapsed();
      // Verify against the serial spectrum.
      const auto sb = plan.spectral_box();
      double max_err = 0;
      i = 0;
      for (std::size_t x = sb.x.lo; x < sb.x.hi; ++x)
        for (std::size_t y = sb.y.lo; y < sb.y.hi; ++y)
          for (std::size_t z = sb.z.lo; z < sb.z.hi; ++z)
            max_err = std::max(max_err,
                               std::abs(local[i++] -
                                        reference[(x * n + y) * n + z]));
      const double global_err =
          world.allreduce_value(max_err, comm::ReduceOp::kMax);
      if (world.rank() == 0) {
        std::printf("pencil %d ranks (%dx%d):    %7.3f s   max err %.2e\n",
                    nranks, plan.p1(), plan.p2(), elapsed, global_err);
      }
    });
  }

  comm::Machine::run(4, [&](comm::Comm& world) {
    fft::SlabFft3D plan(world, n, n, n);
    const auto rb = plan.real_box();
    std::vector<Complex> local(rb.volume());
    std::size_t i = 0;
    for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t z = 0; z < n; ++z)
          local[i++] = field_at(x, y, z);
    Timer t;
    plan.forward(local);
    const double elapsed = t.elapsed();
    const auto sb = plan.spectral_box();
    double max_err = 0;
    i = 0;
    for (std::size_t x = 0; x < n; ++x)
      for (std::size_t y = sb.y.lo; y < sb.y.hi; ++y)
        for (std::size_t z = 0; z < n; ++z)
          max_err = std::max(
              max_err, std::abs(local[i++] - reference[(x * n + y) * n + z]));
    const double global_err =
        world.allreduce_value(max_err, comm::ReduceOp::kMax);
    if (world.rank() == 0) {
      std::printf("slab   4 ranks:           %7.3f s   max err %.2e\n",
                  elapsed, global_err);
      std::printf("\n(slab is limited to N_rank <= N_fft = %zu; the pencil "
                  "decomposition lifts this to N_rank <= N^2 = %zu)\n",
                  n, n * n);
    }
  });
  return 0;
}
