// Structure formation frames (paper Figs. 2 and 9).
//
// Evolves a small LCDM box and writes false-color density-slice images at a
// sequence of redshifts (Fig. 9's time-evolution frames), plus a zoom
// sequence into the densest region at the final time (Fig. 2's
// dynamic-range illustration). Output: PPM files in the working directory.
//
// Build & run:  ./build/examples/structure_formation [out_dir]
#include <algorithm>
#include <cstdio>
#include <string>

#include "comm/comm.h"
#include "core/simulation.h"
#include "io/image.h"

int main(int argc, char** argv) {
  using namespace hacc;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  cosmology::Cosmology cosmo;
  core::SimulationConfig cfg;
  cfg.grid = 48;
  cfg.particles_per_dim = 48;
  cfg.box_mpch = 48.0;  // small box: strong clustering by z=0
  cfg.z_initial = 40.0;
  cfg.z_final = 0.0;
  cfg.steps = 12;
  cfg.subcycles = 3;
  cfg.overload = 4.0;
  cfg.solver = core::ShortRangeSolver::kTreePP;

  // Frames at (approximately) the redshifts of the paper's Fig. 9/10.
  const double frame_z[] = {5.5, 3.0, 1.9, 0.9, 0.4, 0.0};

  comm::Machine::run(2, [&](comm::Comm& world) {
    core::Simulation sim(world, cosmo, cfg);
    sim.initialize();
    std::size_t frame = 0;

    auto emit_frame = [&](double z) {
      auto all = sim.gather_active();
      if (world.rank() != 0) return;
      io::SliceSpec spec;
      spec.box = static_cast<double>(cfg.grid);
      spec.axis = 2;
      spec.slab_lo = 0.0;
      spec.slab_hi = 12.0;  // quarter-box slab
      spec.pixels = 256;
      const auto img = io::log_scale(
          io::project_slice(all.x, all.y, all.z, spec));
      char name[256];
      std::snprintf(name, sizeof name, "%s/structure_z%.1f.ppm",
                    out_dir.c_str(), z);
      io::write_ppm(name, img);
      std::printf("wrote %s (%zu particles in view)\n", name, all.size());
    };

    while (sim.steps_taken() < cfg.steps) {
      sim.step();
      while (frame < std::size(frame_z) &&
             sim.current_z() <= frame_z[frame] + 1e-9) {
        emit_frame(frame_z[frame]);
        ++frame;
      }
    }

    // Fig. 2-style zoom: full box -> half -> 8 cells around the densest
    // pixel of the final frame.
    auto all = sim.gather_active();
    if (world.rank() == 0) {
      // Find the densest region with a coarse 2-D histogram.
      io::SliceSpec coarse;
      coarse.box = static_cast<double>(cfg.grid);
      coarse.slab_lo = 0.0;
      coarse.slab_hi = static_cast<double>(cfg.grid);
      coarse.pixels = 24;
      const auto hist = io::project_slice(all.x, all.y, all.z, coarse);
      std::size_t best = 0;
      for (std::size_t i = 1; i < hist.pixels.size(); ++i)
        if (hist.pixels[i] > hist.pixels[best]) best = i;
      const double cx = (static_cast<double>(best % hist.width) + 0.5) *
                        cfg.grid / static_cast<double>(hist.width);
      const double cy = (static_cast<double>(best / hist.width) + 0.5) *
                        cfg.grid / static_cast<double>(hist.width);
      int level = 0;
      for (double half : {24.0, 12.0, 4.0}) {
        io::SliceSpec spec;
        spec.box = static_cast<double>(cfg.grid);
        spec.slab_lo = 0.0;
        spec.slab_hi = static_cast<double>(cfg.grid);
        spec.pixels = 256;
        spec.win_lo0 = std::clamp(cx - half, 0.0, spec.box - 2 * half);
        spec.win_hi0 = spec.win_lo0 + 2 * half;
        spec.win_lo1 = std::clamp(cy - half, 0.0, spec.box - 2 * half);
        spec.win_hi1 = spec.win_lo1 + 2 * half;
        const auto img =
            io::log_scale(io::project_slice(all.x, all.y, all.z, spec));
        char name[256];
        std::snprintf(name, sizeof name, "%s/zoom_level%d.ppm",
                      out_dir.c_str(), level++);
        io::write_ppm(name, img);
        std::printf("wrote %s (window %.0fx%.0f cells)\n", name, 2 * half,
                    2 * half);
      }
    }
  });
  return 0;
}
