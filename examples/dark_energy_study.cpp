// Dark-energy model-space study (the paper's science program, Secs. I & V).
//
// "With HACC, we aim to systematically study dark energy model space at
// extreme scales and derive not only qualitative signatures of different
// dark energy scenarios but deliver quantitative predictions..."
//
// This example runs the same initial conditions under three dark-energy
// equations of state (phantom w = -1.2, cosmological constant w = -1,
// quintessence-like w = -0.8) and prints the fractional P(k) differences at
// z = 0 — the kind of observable signature surveys constrain — next to the
// linear-theory expectation at low k.
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "comm/comm.h"
#include "core/simulation.h"
#include "util/table.h"

int main() {
  using namespace hacc;

  std::printf("=== Dark-energy model space: w in {-1.2, -1.0, -0.8} ===\n\n");

  core::SimulationConfig cfg;
  cfg.grid = 32;
  cfg.particles_per_dim = 32;
  cfg.box_mpch = 96.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 0.0;
  cfg.steps = 10;
  cfg.subcycles = 3;
  cfg.overload = 4.0;
  cfg.solver = core::ShortRangeSolver::kTreePP;
  cfg.seed = 2012;  // identical realization for all models

  const std::vector<double> ws{-1.2, -1.0, -0.8};
  std::vector<std::vector<cosmology::PowerBin>> spectra;
  std::vector<double> growth;

  // Common *early-time* normalization: the linear power at z_init scales as
  // sigma8^2 D(z_init)^2, so matching sigma8 * D(z_init) across models puts
  // all three on the same primordial amplitude (the way surveys compare
  // dark-energy models); the z=0 differences are then pure growth history.
  const double a_init = cosmology::Cosmology::a_of_z(cfg.z_initial);
  cosmology::Cosmology ref;  // LCDM
  const double ref_amp = ref.sigma8 * ref.growth_factor(a_init);

  for (double w : ws) {
    cosmology::Cosmology cosmo;
    cosmo.w = w;
    cosmo.sigma8 = ref_amp / cosmo.growth_factor(a_init);
    growth.push_back(
        cosmo.growth_factor(1.0) /
        cosmo.growth_factor(cosmology::Cosmology::a_of_z(cfg.z_initial)));
    std::vector<cosmology::PowerBin> result;
    comm::Machine::run(2, [&](comm::Comm& world) {
      core::Simulation sim(world, cosmo, cfg);
      sim.initialize();
      sim.run();
      auto bins = sim.power_spectrum(10);
      if (world.rank() == 0) result = bins;
    });
    spectra.push_back(std::move(result));
    std::printf("w = %+.1f done (growth z=%.0f->0: %.2fx)\n", w,
                cfg.z_initial, growth.back());
  }

  std::printf("\nP(k) at z = 0 relative to LCDM (w = -1):\n\n");
  Table t({"k [h/Mpc]", "P_w=-1.2 / P_LCDM", "P_w=-0.8 / P_LCDM"});
  const auto& lcdm = spectra[1];
  for (std::size_t b = 0; b < lcdm.size(); ++b) {
    t.add_row({Table::fixed(lcdm[b].k, 3),
               Table::fixed(spectra[0][b].power / lcdm[b].power, 3),
               Table::fixed(spectra[2][b].power / lcdm[b].power, 3)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);

  // Linear expectation at low k: P ratio = (D_w / D_LCDM)^2 since the runs
  // share ICs normalized at z_init.
  const double lin_ph = std::pow(growth[0] / growth[1], 2);
  const double lin_q = std::pow(growth[2] / growth[1], 2);
  std::printf("\nlinear-theory low-k expectation: %.3f (w=-1.2), %.3f "
              "(w=-0.8)\n",
              lin_ph, lin_q);
  std::printf("(phantom dark energy boosts late-time growth; quintessence "
              "suppresses it —\nthe quantitative signature HACC's survey "
              "program targets)\n");
  return 0;
}
