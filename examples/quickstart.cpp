// Quickstart: a complete small cosmological N-body run through the public
// API — Zel'dovich initial conditions, the full PM + RCB-tree (PPTreePM)
// solver with sub-cycled symplectic stepping and particle overloading on a
// 4-rank simulated machine, and a measured power spectrum at the end.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "comm/comm.h"
#include "core/simulation.h"
#include "util/table.h"

int main() {
  using namespace hacc;

  // WMAP7-like cosmology (the defaults follow HACC's science runs).
  cosmology::Cosmology cosmo;

  core::SimulationConfig cfg;
  cfg.grid = 32;               // 32^3 PM grid
  cfg.particles_per_dim = 32;  // 32^3 particles
  cfg.box_mpch = 64.0;         // 64 Mpc/h box
  cfg.z_initial = 30.0;
  cfg.z_final = 0.5;
  cfg.steps = 8;      // long-range steps
  cfg.subcycles = 4;  // short-range sub-cycles per step (paper: n_c = 5-10)
  cfg.overload = 4.0; // particle replication depth in grid cells
  cfg.solver = core::ShortRangeSolver::kTreePP;  // "PPTreePM"
  cfg.seed = 2012;

  std::printf("HACC-style PPTreePM quickstart: %zu^3 particles, "
              "%.0f Mpc/h box, z=%.1f -> z=%.1f on 4 ranks\n\n",
              cfg.particles_per_dim, cfg.box_mpch, cfg.z_initial,
              cfg.z_final);

  comm::Machine::run(4, [&](comm::Comm& world) {
    core::Simulation sim(world, cosmo, cfg);
    sim.initialize();
    if (world.rank() == 0) {
      const auto census = sim.domain().census(sim.particles());
      std::printf("rank 0 after init: %zu active + %zu passive particles\n",
                  census[0], census[1]);
    }

    for (int s = 0; s < cfg.steps; ++s) {
      sim.step();
      const auto& st = sim.last_stats();
      if (world.rank() == 0) {
        std::printf("step %d  z=%5.2f  leaves=%5zu  mean neighbors=%7.1f\n",
                    s + 1, sim.current_z(), st.leaves, st.mean_neighbors());
      }
    }

    // Final matter power spectrum.
    auto bins = sim.power_spectrum(12);
    if (world.rank() == 0) {
      std::printf("\nFinal matter power spectrum (z=%.2f):\n",
                  sim.current_z());
      Table t({"k [h/Mpc]", "P(k) [(Mpc/h)^3]", "modes"});
      for (const auto& b : bins)
        t.add_row({Table::fixed(b.k, 4), Table::fixed(b.power, 2),
                   Table::integer(static_cast<long long>(b.modes))});
      std::ostringstream os;
      t.print(os);
      std::fputs(os.str().c_str(), stdout);

      std::printf("\nPhase breakdown:\n");
      for (const auto& row : sim.timers().report())
        std::printf("  %-14s %6.2fs  (%4.1f%%)\n", row.name.c_str(),
                    row.seconds, 100.0 * row.fraction);
    }
  });
  return 0;
}
