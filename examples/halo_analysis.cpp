// Halo analysis (paper Sec. V and Fig. 11).
//
// Evolves a small box to low redshift, runs the FOF halo finder on the
// final snapshot, prints the cluster mass function, and decomposes the most
// massive halo into subhalos (the paper's Fig. 11 shows exactly such a
// halo/sub-halo decomposition).
//
// Build & run:  ./build/examples/halo_analysis
#include <cstdio>
#include <sstream>

#include "comm/comm.h"
#include "core/simulation.h"
#include "cosmology/analysis.h"
#include "cosmology/halo_finder.h"
#include "util/table.h"

int main() {
  using namespace hacc;

  cosmology::Cosmology cosmo;
  core::SimulationConfig cfg;
  cfg.grid = 40;
  cfg.particles_per_dim = 40;
  cfg.box_mpch = 40.0;
  cfg.z_initial = 40.0;
  cfg.z_final = 0.0;
  cfg.steps = 12;
  cfg.subcycles = 3;
  cfg.overload = 4.0;
  cfg.solver = core::ShortRangeSolver::kTreePP;

  // Particle mass in Msun/h: m_p = rho_crit Omega_m (L/np)^3.
  const double rho_crit = 2.775e11;  // Msun/h / (Mpc/h)^3
  const double mp = rho_crit * cosmo.omega_m *
                    std::pow(cfg.box_mpch / cfg.particles_per_dim, 3);

  comm::Machine::run(4, [&](comm::Comm& world) {
    core::Simulation sim(world, cosmo, cfg);
    sim.initialize();
    sim.run();
    auto all = sim.gather_active();
    if (world.rank() != 0) return;

    std::printf("evolved %zu particles to z=%.2f (m_p = %.2e Msun/h)\n\n",
                all.size(), sim.current_z(), mp);

    cosmology::FofConfig fof;
    fof.box = static_cast<double>(cfg.grid);
    fof.mean_spacing = static_cast<double>(cfg.grid) /
                       static_cast<double>(cfg.particles_per_dim);
    fof.linking_length = 0.2;  // the standard b = 0.2
    fof.min_members = 20;
    auto halos = cosmology::find_halos(all, fof);
    std::printf("FOF (b = 0.2): %zu halos with >= %zu particles\n\n",
                halos.size(), fof.min_members);

    // Mass function (paper: "the number of clusters as a function of their
    // mass ... is a powerful cosmological probe. Simulations provide
    // precision predictions") vs the Press-Schechter analytic reference.
    cosmology::LinearPower lin(cosmo);
    const double volume = std::pow(cfg.box_mpch, 3);
    Table mf({"M_threshold [Msun/h]", "N(>M) measured", "N(>M) Press-Schechter"});
    for (double members : {20.0, 50.0, 100.0, 200.0, 500.0, 1000.0}) {
      const auto counts = cosmology::mass_function(halos, {members});
      // Integrate dn/dlnM above the threshold (log-spaced trapezoid).
      double nps = 0;
      const double m0 = members * mp;
      for (double lnm = std::log(m0); lnm < std::log(1e16); lnm += 0.1) {
        nps += cosmology::press_schechter_dndlnm(lin, 0.0, std::exp(lnm)) * 0.1;
      }
      mf.add_row({Table::sci(m0, 2),
                  Table::integer(static_cast<long long>(counts[0])),
                  Table::fixed(nps * volume, 1)});
    }
    std::ostringstream os;
    mf.print(os);
    std::fputs(os.str().c_str(), stdout);

    if (!halos.empty()) {
      const auto& big = halos.front();
      std::printf("\nmost massive halo: %zu particles (M = %.2e Msun/h) at "
                  "(%.1f, %.1f, %.1f)\n",
                  big.members.size(), big.mass * mp, big.center[0],
                  big.center[1], big.center[2]);
      // Radial density profile of the cluster (paper Refs. [4]: "a
      // high-statistics study of galaxy cluster halo profiles").
      const auto prof = cosmology::halo_profile(all, big, cfg.grid, 4.0, 8);
      std::printf("\nradial density profile (mean interior density = 1):\n");
      for (const auto& pb : prof) {
        if (pb.count == 0) continue;
        std::printf("  r = %4.2f cells  rho = %8.1f  (%zu particles)\n",
                    pb.r, pb.density, pb.count);
      }
      auto subs = cosmology::find_subhalos(all, big, fof, 0.5, 10);
      std::printf("sub-linking at b/2 resolves %zu subhalos:\n",
                  subs.size());
      for (std::size_t i = 0; i < subs.size() && i < 8; ++i) {
        std::printf("  subhalo %zu: %5zu particles, offset from center "
                    "(%+.2f, %+.2f, %+.2f) cells\n",
                    i, subs[i].members.size(),
                    subs[i].center[0] - big.center[0],
                    subs[i].center[1] - big.center[1],
                    subs[i].center[2] - big.center[2]);
      }
    }
  });
  return 0;
}
