// Tests for the GenericIO-style parallel particle I/O subsystem: CRC64,
// aggregated writes, rank-count-elastic reads, corruption
// detection/skip-and-report, redundant-header recovery, and the atomic
// tmp+rename publish.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <tuple>

#include "comm/comm.h"
#include "gio/crc64.h"
#include "gio/gio.h"
#include "gio/particle_io.h"
#include "mesh/grid.h"
#include "util/rng.h"

namespace hacc::gio {
namespace {

namespace fs = std::filesystem;

using tree::ParticleArray;
using tree::Role;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Deterministic per-rank particles: ids encode (rank, index) so elastic
/// round trips can be checked field by field.
ParticleArray rank_particles(int rank, std::size_t n, std::size_t box) {
  ParticleArray p;
  Philox rng(1234 + static_cast<std::uint64_t>(rank));
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(static_cast<float>(s.uniform(0, static_cast<double>(box))),
                static_cast<float>(s.uniform(0, static_cast<double>(box))),
                static_cast<float>(s.uniform(0, static_cast<double>(box))),
                static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()), 1.0f,
                static_cast<std::uint64_t>(rank) * 1000000 + i, Role::kActive);
  }
  return p;
}

using Key = std::uint64_t;
using Fields = std::array<std::uint32_t, 7>;  // float bit patterns

/// Bit-exact (id -> field bit patterns) map of an array.
std::map<Key, Fields> fingerprint(const ParticleArray& p) {
  std::map<Key, Fields> out;
  auto bits = [](float f) {
    std::uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
  };
  for (std::size_t i = 0; i < p.size(); ++i)
    out[p.id[i]] = Fields{bits(p.x[i]), bits(p.y[i]), bits(p.z[i]),
                          bits(p.vx[i]), bits(p.vy[i]), bits(p.vz[i]),
                          bits(p.mass[i])};
  return out;
}

TEST(Crc64, KnownVectorAndChaining) {
  EXPECT_EQ(crc64("123456789", 9), 0x995dc9bbdf1939faULL);
  EXPECT_EQ(crc64("", 0), 0u);
  // Chaining: crc(ab) == crc(b, seed=crc(a)).
  const std::uint64_t whole = crc64("hello world", 11);
  const std::uint64_t part = crc64("hello ", 6);
  EXPECT_EQ(crc64("world", 5, part), whole);
  EXPECT_NE(crc64("ab", 2), crc64("ba", 2));
}

TEST(Gio, RoundTripsVariablesAndMeta) {
  const std::string path = temp_path("hacc_gio_rt.gio");
  const std::size_t n = 300;
  std::vector<float> xs(n);
  std::vector<std::uint64_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<float>(i) * 0.25f;
    ids[i] = 7000 + i;
  }
  comm::Machine::run(1, [&](comm::Comm& c) {
    GlobalMeta meta;
    meta.scale_factor = 0.5;
    meta.box_mpch = 128.0;
    meta.grid = 64;
    std::vector<WriteVar> wv{{"x", VarType::kFloat32, xs.data()},
                             {"id", VarType::kUInt64, ids.data()}};
    const auto stats = write(c, path, meta, n, wv);
    EXPECT_EQ(stats.payload_bytes, n * 12);
    EXPECT_EQ(stats.file_bytes, fs::file_size(path));

    std::vector<std::byte> xb, idb;
    std::vector<ReadVar> rv{{"x", VarType::kFloat32, &xb},
                            {"id", VarType::kUInt64, &idb}};
    const auto report = read(c, path, rv);
    EXPECT_FALSE(report.used_redundant_header);
    EXPECT_TRUE(report.corrupt.empty());
    EXPECT_EQ(report.total_particles, n);
    EXPECT_EQ(report.local_particles, n);
    EXPECT_DOUBLE_EQ(report.meta.scale_factor, 0.5);
    EXPECT_DOUBLE_EQ(report.meta.box_mpch, 128.0);
    EXPECT_EQ(report.meta.grid, 64u);
    ASSERT_EQ(xb.size(), n * 4);
    ASSERT_EQ(idb.size(), n * 8);
    EXPECT_EQ(std::memcmp(xb.data(), xs.data(), xb.size()), 0);
    EXPECT_EQ(std::memcmp(idb.data(), ids.data(), idb.size()), 0);
  });
  fs::remove(path);
}

TEST(Gio, MissingVariableAndMissingFileThrow) {
  const std::string path = temp_path("hacc_gio_missing.gio");
  comm::Machine::run(1, [&](comm::Comm& c) {
    float v = 1.0f;
    std::vector<WriteVar> wv{{"x", VarType::kFloat32, &v}};
    write(c, path, GlobalMeta{}, 1, wv);
    std::vector<std::byte> out;
    std::vector<ReadVar> bad{{"nope", VarType::kFloat32, &out}};
    EXPECT_THROW(read(c, path, bad), Error);
    std::vector<ReadVar> mistyped{{"x", VarType::kUInt64, &out}};
    EXPECT_THROW(read(c, path, mistyped), Error);
    EXPECT_THROW(inspect(temp_path("hacc_gio_does_not_exist.gio")), Error);
  });
  fs::remove(path);
}

TEST(Gio, AggregatorCountDoesNotChangeTheFile) {
  // The layout is deterministic from (meta, counts, vars): funnelling the
  // same blocks through 1, 2 or 4 writers must produce identical bytes.
  const int nranks = 4;
  std::vector<std::string> paths;
  for (int m : {1, 2, 4}) {
    const std::string path =
        temp_path("hacc_gio_agg" + std::to_string(m) + ".gio");
    paths.push_back(path);
    comm::Machine::run(nranks, [&](comm::Comm& c) {
      // Unequal counts to exercise the offset math.
      auto p = rank_particles(c.rank(), 50 + 30 * static_cast<std::size_t>(
                                                       c.rank()), 16);
      GioConfig cfg;
      cfg.aggregators = m;
      GlobalMeta meta;
      meta.grid = 16;
      const auto stats = write_particles(c, path, meta, p, cfg);
      if (c.rank() == 0) {
        EXPECT_EQ(stats.aggregators, m);
      }
    });
  }
  std::ifstream a(paths[0], std::ios::binary), b(paths[1], std::ios::binary),
      d(paths[2], std::ios::binary);
  std::vector<char> ba((std::istreambuf_iterator<char>(a)), {});
  std::vector<char> bb((std::istreambuf_iterator<char>(b)), {});
  std::vector<char> bd((std::istreambuf_iterator<char>(d)), {});
  ASSERT_FALSE(ba.empty());
  EXPECT_EQ(ba, bb);
  EXPECT_EQ(ba, bd);
  for (const auto& p : paths) fs::remove(p);
}

TEST(Gio, WriteLeavesNoTmpFile) {
  const std::string path = temp_path("hacc_gio_atomic.gio");
  comm::Machine::run(2, [&](comm::Comm& c) {
    auto p = rank_particles(c.rank(), 100, 16);
    write_particles(c, path, GlobalMeta{}, p);
  });
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

class GioElasticRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ReadRanks, GioElasticRanks,
                         ::testing::Values(1, 2, 3, 8));

TEST_P(GioElasticRanks, CheckpointOn4RestoresBitIdentically) {
  const int read_ranks = GetParam();
  const std::string path = temp_path("hacc_gio_elastic.gio");
  const std::size_t box = 16;

  // Write on 4 ranks, each holding its domain's particles.
  std::map<Key, Fields> written;
  comm::Machine::run(4, [&](comm::Comm& c) {
    auto p = rank_particles(c.rank(), 200, box);
    write_particles(c, path, GlobalMeta{0.5, 64.0, box}, p);
    // Build the global reference on rank 0 via the fan-in helper.
    struct Row {
      std::uint64_t id;
      Fields f;
    };
    std::vector<Row> rows;
    for (const auto& [id, f] : fingerprint(p)) rows.push_back({id, f});
    auto all = c.gatherv(std::span<const Row>(rows), 0);
    if (c.rank() == 0)
      for (const auto& r : all) written[r.id] = r.f;
  });
  ASSERT_EQ(written.size(), 800u);

  // Restore on a different rank count; after redistribution every particle
  // must be bit-identical and owned by the reading rank's domain.
  std::map<Key, Fields> restored;
  std::set<Key> seen_twice;
  comm::Machine::run(read_ranks, [&](comm::Comm& c) {
    mesh::BlockDecomp3D rd =
        mesh::BlockDecomp3D::balanced({box, box, box}, read_ranks);
    ParticleArray p;
    const auto report = read_particles(c, path, p);
    EXPECT_TRUE(report.corrupt.empty());
    EXPECT_EQ(report.total_particles, 800u);
    EXPECT_EQ(report.blocks, 4u);
    redistribute_by_domain(c, rd, p);
    const auto box_of = rd.box_of(c.rank());
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_GE(p.x[i], static_cast<float>(box_of.x.lo));
      EXPECT_LT(p.x[i], static_cast<float>(box_of.x.hi));
    }
    struct Row {
      std::uint64_t id;
      Fields f;
    };
    std::vector<Row> rows;
    for (const auto& [id, f] : fingerprint(p)) rows.push_back({id, f});
    auto all = c.gatherv(std::span<const Row>(rows), 0);
    if (c.rank() == 0) {
      for (const auto& r : all) {
        if (restored.count(r.id)) seen_twice.insert(r.id);
        restored[r.id] = r.f;
      }
    }
  });
  EXPECT_TRUE(seen_twice.empty());
  ASSERT_EQ(restored.size(), written.size());
  for (const auto& [id, f] : written) {
    ASSERT_TRUE(restored.count(id)) << "id " << id;
    EXPECT_EQ(restored.at(id), f) << "id " << id;
  }
  fs::remove(path);
}

TEST(Gio, CorruptVariableBlocksAreSkippedAndReported) {
  const std::string path = temp_path("hacc_gio_corrupt.gio");
  const std::size_t n = 120;
  comm::Machine::run(2, [&](comm::Comm& c) {
    auto p = rank_particles(c.rank(), n, 16);
    write_particles(c, path, GlobalMeta{}, p);
  });
  // One flipped byte in every variable of block 1 plus one in block 0's x.
  for (const char* var : {"x", "y", "z", "vx", "vy", "vz", "mass", "id",
                          "role"})
    flip_byte_in_variable(path, 1, var, 13);
  flip_byte_in_variable(path, 0, "x", 5);

  comm::Machine::run(2, [&](comm::Comm& c) {
    ParticleArray p;
    const auto report = read_particles(c, path, p);  // must not throw
    EXPECT_EQ(report.total_particles, 2 * n);
    // The combined report is identical on every rank: 10 damaged
    // sub-blocks, each detected by its CRC.
    ASSERT_EQ(report.corrupt.size(), 10u);
    std::set<std::pair<std::uint64_t, std::string>> damaged;
    for (const auto& r : report.corrupt) damaged.insert({r.block, r.var_name});
    EXPECT_TRUE(damaged.count({0, "x"}));
    EXPECT_TRUE(damaged.count({1, "vy"}));
    EXPECT_TRUE(damaged.count({1, "role"}));
    EXPECT_FALSE(damaged.count({0, "y"}));
    // Skip-and-report: the damaged sub-blocks arrive zero-filled, the
    // healthy ones intact.
    if (c.rank() == 0) {
      // Block 0: x zeroed, y untouched.
      bool all_zero = true;
      for (std::size_t i = 0; i < p.size(); ++i) all_zero &= p.x[i] == 0.0f;
      EXPECT_TRUE(all_zero);
      bool any_y = false;
      for (std::size_t i = 0; i < p.size(); ++i) any_y |= p.y[i] != 0.0f;
      EXPECT_TRUE(any_y);
    }
  });
  fs::remove(path);
}

TEST(Gio, RedundantHeaderRescuesClobberedPrimary) {
  const std::string path = temp_path("hacc_gio_hdr.gio");
  const std::size_t n = 150;
  comm::Machine::run(2, [&](comm::Comm& c) {
    auto p = rank_particles(c.rank(), n, 16);
    write_particles(c, path, GlobalMeta{0.25, 32.0, 16}, p);
  });
  std::map<Key, Fields> clean;
  comm::Machine::run(1, [&](comm::Comm& c) {
    ParticleArray p;
    read_particles(c, path, p);
    clean = fingerprint(p);
  });

  flip_byte_in_primary_header(path, 16);  // damage inside the primary blob
  const auto info = inspect(path);
  EXPECT_TRUE(info.used_redundant_header);
  EXPECT_EQ(info.total_particles, 2 * n);
  EXPECT_DOUBLE_EQ(info.meta.scale_factor, 0.25);

  comm::Machine::run(2, [&](comm::Comm& c) {
    ParticleArray p;
    const auto report = read_particles(c, path, p);
    EXPECT_TRUE(report.used_redundant_header);
    EXPECT_TRUE(report.corrupt.empty());
    struct Row {
      std::uint64_t id;
      Fields f;
    };
    std::vector<Row> rows;
    for (const auto& [id, f] : fingerprint(p)) rows.push_back({id, f});
    auto all = c.gatherv(std::span<const Row>(rows), 0);
    if (c.rank() == 0) {
      EXPECT_EQ(all.size(), clean.size());
      for (const auto& r : all) EXPECT_EQ(clean.at(r.id), r.f);
    }
  });

  // Clobbering the magic itself must also fall through to the redundant
  // copy, and destroying both copies must finally throw.
  flip_byte_in_primary_header(path, 0);
  EXPECT_TRUE(inspect(path).used_redundant_header);
  {
    // Truncate away footer + redundant header.
    const auto keep = fs::file_size(path) - info.header_bytes - 16;
    fs::resize_file(path, keep);
  }
  EXPECT_THROW(inspect(path), Error);
  fs::remove(path);
}

TEST(Gio, TruncatedDataBlockIsReportedNotFatal) {
  const std::string path = temp_path("hacc_gio_trunc.gio");
  comm::Machine::run(2, [&](comm::Comm& c) {
    auto p = rank_particles(c.rank(), 80, 16);
    write_particles(c, path, GlobalMeta{}, p);
  });
  // Chop the file short: the redundant header is gone but the primary is
  // fine; the tail blocks can't be read and must be reported as corrupt.
  fs::resize_file(path, fs::file_size(path) / 2);
  comm::Machine::run(1, [&](comm::Comm& c) {
    ParticleArray p;
    const auto report = read_particles(c, path, p);
    EXPECT_FALSE(report.used_redundant_header);
    EXPECT_GT(report.corrupt.size(), 0u);
    EXPECT_EQ(p.size(), 160u);  // zero-filled, never short
  });
  fs::remove(path);
}

TEST(Gio, EmptyRanksAndZeroTotalAreFine) {
  const std::string path = temp_path("hacc_gio_empty.gio");
  comm::Machine::run(3, [&](comm::Comm& c) {
    // Only rank 1 has particles.
    ParticleArray p;
    if (c.rank() == 1) p = rank_particles(1, 25, 16);
    write_particles(c, path, GlobalMeta{}, p);
    ParticleArray q;
    const auto report = read_particles(c, path, q);
    EXPECT_EQ(report.total_particles, 25u);
    EXPECT_TRUE(report.corrupt.empty());
  });
  comm::Machine::run(2, [&](comm::Comm& c) {
    ParticleArray none;
    write_particles(c, path, GlobalMeta{}, none);
    ParticleArray q;
    const auto report = read_particles(c, path, q);
    EXPECT_EQ(report.total_particles, 0u);
    EXPECT_TRUE(q.empty());
  });
  fs::remove(path);
}

TEST(GioVerify, CleanFilePassesFullScan) {
  const std::string path = temp_path("hacc_gio_verify_ok.gio");
  comm::Machine::run(4, [&](comm::Comm& c) {
    const ParticleArray p = rank_particles(c.rank(), 100, 32);
    GioConfig cfg;
    cfg.verify_after_write = true;  // write path verifies before publish
    const auto stats = write_particles(c, path, GlobalMeta{}, p, cfg);
    if (c.rank() == 0) {
      EXPECT_GT(stats.verify_seconds, 0.0);
    }
  });
  const VerifyReport vr = verify_file(path);
  EXPECT_TRUE(vr.ok);
  EXPECT_TRUE(vr.header_ok);
  EXPECT_FALSE(vr.used_redundant_header);
  EXPECT_EQ(vr.blocks, 4u);
  EXPECT_EQ(vr.total_particles, 400u);
  EXPECT_TRUE(vr.corrupt.empty());
  EXPECT_GT(vr.bytes_scanned, 0u);
  fs::remove(path);
}

TEST(GioVerify, FlippedByteIsLocatedByScan) {
  const std::string path = temp_path("hacc_gio_verify_bad.gio");
  comm::Machine::run(2, [&](comm::Comm& c) {
    write_particles(c, path, GlobalMeta{}, rank_particles(c.rank(), 50, 32));
  });
  flip_byte_in_variable(path, /*block=*/1, "vy", /*byte_in_block=*/13);
  const VerifyReport vr = verify_file(path);
  EXPECT_FALSE(vr.ok);
  EXPECT_TRUE(vr.header_ok);  // only a data sub-block is damaged
  ASSERT_EQ(vr.corrupt.size(), 1u);
  EXPECT_EQ(vr.corrupt[0].block, 1u);
  EXPECT_EQ(vr.corrupt[0].var_name, "vy");
  fs::remove(path);
}

TEST(GioVerify, MissingAndHeaderlessFilesReportNotOk) {
  EXPECT_FALSE(verify_file(temp_path("hacc_gio_no_such_file.gio")).ok);
  const std::string path = temp_path("hacc_gio_verify_junk.gio");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a gio file at all";
  }
  const VerifyReport vr = verify_file(path);
  EXPECT_FALSE(vr.ok);
  EXPECT_FALSE(vr.header_ok);
  fs::remove(path);
}

}  // namespace
}  // namespace hacc::gio
