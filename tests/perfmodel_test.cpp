// Tests for the BG/Q performance model: machine constants, the kernel
// instruction model (Fig. 5 shape), and the scaling-table generators
// (Tables I-III shape properties and agreement with the paper's anchor
// rows).
#include <gtest/gtest.h>

#include <cmath>

#include "perfmodel/bgq_machine.h"
#include "perfmodel/kernel_model.h"
#include "perfmodel/scaling_model.h"

namespace hacc::perfmodel {
namespace {

// ---- machine constants --------------------------------------------------------

TEST(BgqMachine, PeakRates) {
  EXPECT_DOUBLE_EQ(BqcChip::peak_gflops_core(), 12.8);
  EXPECT_DOUBLE_EQ(BqcChip::peak_gflops_node(), 204.8);
  EXPECT_EQ(BgqSystem::cores_of_racks(96), 1572864);
  // 96 racks: 20.13 PF peak; the paper's 13.94 PF is 69.22% of this.
  EXPECT_NEAR(BgqSystem::peak_pflops(1572864), 20.13, 0.01);
  EXPECT_NEAR(13.94 / BgqSystem::peak_pflops(1572864), 0.6922, 1e-3);
}

// ---- kernel model ---------------------------------------------------------------

TEST(KernelModel, FlopAccountingMatchesPaper) {
  KernelInstructionMix mix;
  EXPECT_EQ(mix.flops_per_iteration(), 168);      // "168 (= 40 + 128)"
  EXPECT_EQ(mix.max_flops_per_iteration(), 208);  // "maximum of 208"
  EXPECT_NEAR(mix.theoretical_peak_fraction(), 0.81, 0.005);
  EXPECT_DOUBLE_EQ(mix.flops_per_interaction(), 42.0);
}

TEST(KernelModel, FourThreadsNearEightyPercentAtLargeLists) {
  // Paper: "At 4 threads/core, the performance attained is close to 80% of
  // peak" at large neighbor-list sizes.
  const double frac = kernel_peak_fraction(4, 16, 2000.0);
  EXPECT_GT(frac, 0.75);
  EXPECT_LT(frac, 0.81);
}

TEST(KernelModel, PerformanceRisesWithThreads) {
  for (double n : {200.0, 1000.0, 4000.0}) {
    double prev = 0;
    for (int t = 1; t <= 4; ++t) {
      const double f = kernel_peak_fraction(t, 16, n);
      EXPECT_GT(f, prev) << "threads=" << t << " n=" << n;
      prev = f;
    }
  }
}

TEST(KernelModel, PerformanceRisesWithListSizeToPlateau) {
  double prev = 0;
  for (double n : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    const double f = kernel_peak_fraction(4, 16, n);
    EXPECT_GT(f, prev);
    prev = f;
  }
  // Plateau: doubling the list from 2000 to 4000 changes little.
  EXPECT_NEAR(kernel_peak_fraction(4, 16, 4000.0),
              kernel_peak_fraction(4, 16, 2000.0), 0.02);
}

TEST(KernelModel, TwoRanksPerNodeStillExceptional) {
  // Paper Fig. 5: "Note the exceptional performance even at 2 ranks per
  // node": the model's rank penalty must be small.
  const double f16 = kernel_peak_fraction(4, 16, 2000.0);
  const double f2 = kernel_peak_fraction(4, 2, 2000.0);
  EXPECT_GT(f2, 0.9 * f16);
}

TEST(KernelModel, FullCodeFractionMatchesMeasuredCounters) {
  // Paper: counters report 142.32 of 204.8 GFlops = 69.5% of node peak at
  // the 80/10/5/5 phase mix.
  const PhaseMix mix;
  const double kernel_peak = kernel_peak_fraction(4, 16, 1500.0);
  const double full = full_code_peak_fraction(mix.kernel, kernel_peak);
  EXPECT_NEAR(full, 0.695, 0.035);
}

TEST(KernelModel, IssueModelMatchesPaper) {
  IssueModel m;
  EXPECT_NEAR(m.max_issue(), 1.783, 0.01);       // 100/56.10
  EXPECT_NEAR(m.issue_efficiency(), 0.85, 0.01); // "85% of the possible"
}

// ---- weak scaling (Table II / Fig. 7) ---------------------------------------------

TEST(WeakScaling, TableHasTwelveRowsWithPaperConfigs) {
  const auto table = weak_scaling_table();
  ASSERT_EQ(table.size(), 12u);
  EXPECT_EQ(table.front().cores, 2048);
  EXPECT_EQ(table.front().np, 1600);
  EXPECT_EQ(table.back().cores, 1572864);
  EXPECT_EQ(table.back().np, 15360);
  EXPECT_EQ(table.back().geometry, "192x128x64");
}

TEST(WeakScaling, HeadlineRowNearPaper) {
  const auto table = weak_scaling_table();
  const auto& last = table.back();
  // Paper: 13.94 PFlops, 69.22% of peak, 5.96e-11 s.
  EXPECT_NEAR(last.pflops, 13.94, 0.9);
  EXPECT_NEAR(last.peak_percent, 69.22, 3.0);
  EXPECT_NEAR(last.time_per_substep_particle / 5.96e-11, 1.0, 0.10);
}

TEST(WeakScaling, InvariantCoresTimesTimeIsFlat) {
  // The weak-scaling signature: cores * time/substep/particle ~ constant
  // (paper column: 7.9e-5 .. 9.9e-5 over 768x in cores).
  const auto table = weak_scaling_table();
  double lo = 1e9, hi = 0;
  for (const auto& r : table) {
    lo = std::min(lo, r.cores_times_time);
    hi = std::max(hi, r.cores_times_time);
    EXPECT_GT(r.cores_times_time, 5e-5);
    EXPECT_LT(r.cores_times_time, 1.5e-4);
  }
  EXPECT_LT(hi / lo, 1.3);  // within 30% across three orders of magnitude
}

TEST(WeakScaling, PerformanceScalesLinearlyWithCores) {
  const auto table = weak_scaling_table();
  for (std::size_t i = 1; i < table.size(); ++i) {
    const double core_ratio = static_cast<double>(table[i].cores) /
                              static_cast<double>(table[i - 1].cores);
    const double perf_ratio = table[i].pflops / table[i - 1].pflops;
    EXPECT_NEAR(perf_ratio / core_ratio, 1.0, 0.05);
  }
}

TEST(WeakScaling, PeakPercentInPaperBand) {
  for (const auto& r : weak_scaling_table()) {
    EXPECT_GT(r.peak_percent, 64.0);
    EXPECT_LT(r.peak_percent, 71.0);
  }
}

TEST(WeakScaling, MemoryPerRankNearPaperBand) {
  // Paper column: 342-418 MB/rank.
  for (const auto& r : weak_scaling_table()) {
    EXPECT_GT(r.memory_mb_rank, 280.0);
    EXPECT_LT(r.memory_mb_rank, 480.0);
  }
}

// ---- strong scaling (Table III / Fig. 8) -------------------------------------------

TEST(StrongScaling, SixRowsCoveringTheRack) {
  const auto table = strong_scaling_table();
  ASSERT_EQ(table.size(), 6u);
  EXPECT_EQ(table.front().cores, 512);
  EXPECT_EQ(table.front().particles_per_core, 2097152);
  EXPECT_EQ(table.back().cores, 16384);
  EXPECT_EQ(table.back().particles_per_core, 65536);
}

TEST(StrongScaling, AnchorRowNearPaper) {
  const auto& first = strong_scaling_table().front();
  // Paper: 4.42 TFlops, 67.44%, 145.94 s/substep, 368.82 MB/rank.
  EXPECT_NEAR(first.tflops, 4.42, 0.35);
  EXPECT_NEAR(first.time_per_substep, 145.94, 15.0);
  EXPECT_NEAR(first.memory_mb_rank, 368.82, 40.0);
}

TEST(StrongScaling, NearIdealToEightRacksThenOverloadPenalty) {
  const auto table = strong_scaling_table();
  // Ideal: time/substep halves per doubling. Through 8192 cores the
  // deviation from ideal must be small; at 16384 it grows (overloading).
  for (std::size_t i = 1; i < table.size(); ++i) {
    const double speedup =
        table[i - 1].time_per_substep / table[i].time_per_substep;
    if (table[i].cores <= 8192) {
      EXPECT_GT(speedup, 1.75) << table[i].cores;
    } else {
      EXPECT_LT(speedup, 1.8);  // visible overload overhead
      EXPECT_GT(speedup, 1.3);
    }
  }
  // Paper: 145.94 -> 10.01 s across 512 -> 16384 (14.6x of ideal 32x).
  const double total_speedup =
      table.front().time_per_substep / table.back().time_per_substep;
  EXPECT_GT(total_speedup, 10.0);
  EXPECT_LT(total_speedup, 32.0);
}

TEST(StrongScaling, PeakPercentDeclinesModestly) {
  const auto table = strong_scaling_table();
  EXPECT_GT(table.front().peak_percent, table.back().peak_percent);
  for (const auto& r : table) {
    EXPECT_GT(r.peak_percent, 60.0);
    EXPECT_LT(r.peak_percent, 70.0);
  }
}

TEST(StrongScaling, MemoryFractionSpansProductionToStarved) {
  // Paper: 62% down to 4.5% ("memory utilization factor of approximately
  // 57% ... to as low as 7%"); our accounting uses the plain 1 GiB/rank.
  const auto table = strong_scaling_table();
  EXPECT_GT(table.front().memory_fraction_percent, 25.0);
  EXPECT_LT(table.back().memory_fraction_percent, 8.0);
}

// ---- time to solution ----------------------------------------------------------------

TEST(TimeToSolution, PaperThroughputClaimHolds) {
  // "Particle push-times of 0.06 ns/substep/particle for more than 3.6
  // trillion particles on 1,572,864 cores allow runs of 100 billion to
  // trillions of particles in a day to a week of wall-clock."
  const long long cores96 = BgqSystem::cores_of_racks(96);
  const double day = 86400.0, week = 7 * 86400.0;
  // 3.6 trillion particles, 500-2000 substeps: between a day and a week.
  EXPECT_GT(science_run_walltime(3.6e12, cores96, 2000), day);
  EXPECT_LT(science_run_walltime(3.6e12, cores96, 2000), week);
  // 100 billion particles finish within a day even on a fraction of the
  // machine (Mira, 48 racks).
  EXPECT_LT(science_run_walltime(1e11, BgqSystem::cores_of_racks(48), 1000),
            day);
  // Linear in both particles and substeps; inverse in cores.
  const double t0 = science_run_walltime(1e11, cores96, 500);
  EXPECT_NEAR(science_run_walltime(2e11, cores96, 500) / t0, 2.0, 1e-9);
  EXPECT_NEAR(science_run_walltime(1e11, cores96, 1000) / t0, 2.0, 1e-9);
  EXPECT_NEAR(science_run_walltime(1e11, cores96 / 2, 500) / t0, 2.0, 1e-9);
}

TEST(TimeToSolution, TestRunMatchesPaperAnecdote) {
  // Sec. V: the 10240^3 science test on 16 racks of Mira took ~14 hours
  // (with I/O and fewer substeps than production; order of magnitude).
  const double t = science_run_walltime(std::pow(10240.0, 3),
                                        BgqSystem::cores_of_racks(16), 300);
  EXPECT_GT(t, 0.3 * 14 * 3600.0);
  EXPECT_LT(t, 3.0 * 14 * 3600.0);
}

// ---- FFT (Table I) -----------------------------------------------------------------

TEST(FftModel, TableConfigsMatchPaper) {
  const auto table = fft_scaling_table();
  ASSERT_EQ(table.size(), 15u);
  EXPECT_EQ(table.front().fft_size, 1024);
  EXPECT_EQ(table.front().ranks, 256);
  EXPECT_EQ(table.back().fft_size, 10240);
  EXPECT_EQ(table.back().ranks, 131072);
}

TEST(FftModel, StrongScalingRowsNearPaper) {
  // Paper: 2.731 s at 256 ranks down to 0.098 s at 8192.
  EXPECT_NEAR(model_fft_time(1024, 256), 2.731, 0.4);
  EXPECT_NEAR(model_fft_time(1024, 8192), 0.098, 0.025);
  // Near-ideal scaling over the strong-scaling range.
  const double speedup = model_fft_time(1024, 256) / model_fft_time(1024, 8192);
  EXPECT_GT(speedup, 20.0);
  EXPECT_LT(speedup, 32.1);
}

TEST(FftModel, WeakRowsStayWithinNarrowBand) {
  // Paper: 160^3-per-rank rows at 5.3-7.4 s over 16x in ranks
  // ("performance is remarkably stable, a successful benchmark").
  const double t0 = model_fft_time(4096, 16384);
  const double t1 = model_fft_time(9216, 262144);
  EXPECT_NEAR(t0, 5.254, 1.0);
  EXPECT_NEAR(t1, 7.238, 1.0);
  EXPECT_LT(t1 / t0, 2.0);
}

TEST(FftModel, LargestPaperFftUnder15Seconds) {
  // "The largest FFT we ran ... 10240^3 and a run-time of less than 15 s."
  EXPECT_LT(model_fft_time(10240, 131072), 17.0);
  EXPECT_GT(model_fft_time(10240, 131072), 10.0);
}

// ---- Fig. 6 -----------------------------------------------------------------------

TEST(PoissonModel, ArchitectureOrderingAndFlatness) {
  for (long long ranks : {64LL, 1024LL, 16384LL, 131072LL}) {
    const double rr = poisson_time_per_particle(Architecture::kRoadrunner, ranks);
    const double bgp = poisson_time_per_particle(Architecture::kBgp, ranks);
    const double bgq = poisson_time_per_particle(Architecture::kBgq, ranks);
    EXPECT_GT(rr, bgp);
    EXPECT_GT(bgp, bgq);
  }
  // Weak scaling flat to within ~50% over 2048x in ranks (Fig. 6's ideal
  // line is horizontal).
  const double lo = poisson_time_per_particle(Architecture::kBgq, 64);
  const double hi = poisson_time_per_particle(Architecture::kBgq, 131072);
  EXPECT_LT(hi / lo, 1.5);
}

TEST(TileKernelModel, TilingRaisesTheRooflineTowardTheoreticalMax) {
  // 4x8 tiles amortize the neighbor-tile loads over 4 targets:
  //   instructions/interaction = 26/4 + 10/32 = 6.8125,
  //   roofline fraction = (42 / 6.8125) / 8 ~= 0.77.
  const TileKernelModel tiled{};
  EXPECT_NEAR(tiled.instructions_per_interaction(), 6.8125, 1e-9);
  EXPECT_NEAR(tiled.roofline_fraction(), 0.7706, 5e-4);
  // Untiled (one target per neighbor load) pays the loads per interaction.
  TileKernelModel untiled{};
  untiled.tile_targets = 1;
  untiled.tile_neighbors = 8;
  EXPECT_GT(tiled.roofline_fraction(), untiled.roofline_fraction());
  // Never above the instruction mix's theoretical maximum (no free flops).
  EXPECT_LT(tiled.roofline_fraction(),
            KernelInstructionMix{}.theoretical_peak_fraction());
  EXPECT_NEAR(tiled.roofline_gflops(100.0), 77.06, 0.1);
}

}  // namespace
}  // namespace hacc::perfmodel
