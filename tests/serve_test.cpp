// Tests for the serve subsystem: the sharded LRU block cache (eviction
// order, capacity accounting, CRC-refusal, concurrent hammering — the TSan
// target), the gio ranged BlockFile reader, the in-situ catalog pipeline
// end-to-end through the CatalogStore/QueryServer read path, catalog
// determinism across rank counts, and catalog survivability under a
// chaos-interrupted supervised run.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "comm/comm.h"
#include "comm/fault.h"
#include "core/simulation.h"
#include "core/supervisor.h"
#include "cosmology/background.h"
#include "gio/gio.h"
#include "obs/counters.h"
#include "obs/metrics.h"
#include "serve/block_cache.h"
#include "serve/catalog_store.h"
#include "serve/insitu.h"
#include "serve/metrics_server.h"
#include "serve/query_server.h"
#include "util/error.h"
#include "util/rng.h"

namespace hacc::serve {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

CacheKey key_of(std::uint32_t block) {
  CacheKey k;
  k.block = block;
  return k;
}

/// A loader producing `size` bytes whose values encode `block` (so a torn
/// or mixed-up entry is detectable byte by byte).
std::function<std::vector<std::byte>()> loader(std::uint32_t block,
                                               std::size_t size) {
  return [block, size] {
    return std::vector<std::byte>(size,
                                  static_cast<std::byte>(block & 0xff));
  };
}

// ---- LRU block cache -------------------------------------------------------

TEST(BlockCache, EvictsLeastRecentlyUsed) {
  BlockCache cache(/*capacity_bytes=*/1024, /*shards=*/1);
  cache.get_or_load(key_of(0), loader(0, 400));  // LRU: 0
  cache.get_or_load(key_of(1), loader(1, 400));  // LRU: 1 0
  // Inserting a third 400-byte entry exceeds 1024: the *least recently
  // used* entry (0) must go, not the newest.
  cache.get_or_load(key_of(2), loader(2, 400));  // LRU: 2 1
  EXPECT_EQ(cache.peek(key_of(0)), nullptr);
  EXPECT_NE(cache.peek(key_of(1)), nullptr);
  EXPECT_NE(cache.peek(key_of(2)), nullptr);

  // Touch 1 so 2 becomes the LRU victim of the next insert.
  cache.get_or_load(key_of(1), loader(1, 400));  // LRU: 1 2
  cache.get_or_load(key_of(3), loader(3, 400));  // LRU: 3 1
  EXPECT_EQ(cache.peek(key_of(2)), nullptr);
  EXPECT_NE(cache.peek(key_of(1)), nullptr);
  EXPECT_NE(cache.peek(key_of(3)), nullptr);

  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);       // the touch of 1
  EXPECT_EQ(st.misses, 4u);     // 0 1 2 3 cold
  EXPECT_EQ(st.evictions, 2u);  // 0 then 2
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.bytes, 800u);
  EXPECT_EQ(st.capacity_bytes, 1024u);
  EXPECT_NEAR(st.hit_rate(), 0.2, 1e-12);
}

TEST(BlockCache, CapacityAccountingAndOversizedEntries) {
  BlockCache cache(/*capacity_bytes=*/100, /*shards=*/1);
  // An entry larger than the whole shard budget is served but not retained
  // (caching it would evict everything for a one-shot read).
  const CacheBlock big = cache.get_or_load(key_of(7), loader(7, 400));
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->size(), 400u);
  EXPECT_EQ(cache.peek(key_of(7)), nullptr);
  CacheStats st = cache.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.misses, 1u);

  // Normal entries account exactly; clear() drops bytes but keeps totals.
  cache.get_or_load(key_of(1), loader(1, 30));
  cache.get_or_load(key_of(2), loader(2, 40));
  st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.bytes, 70u);
  cache.clear();
  st = cache.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.misses, 3u);
}

TEST(BlockCache, LoaderFailurePropagatesAndCachesNothing) {
  BlockCache cache(/*capacity_bytes=*/1024, /*shards=*/1);
  EXPECT_THROW(cache.get_or_load(
                   key_of(0),
                   []() -> std::vector<std::byte> {
                     throw Error("CRC mismatch");
                   }),
               Error);
  // The failed load counts as a miss but must not leave a poisoned entry:
  // a later good load gets real bytes.
  EXPECT_EQ(cache.peek(key_of(0)), nullptr);
  const CacheBlock b = cache.get_or_load(key_of(0), loader(0, 64));
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->size(), 64u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(BlockCache, SharedEntriesSurviveEviction) {
  BlockCache cache(/*capacity_bytes=*/256, /*shards=*/1);
  const CacheBlock held = cache.get_or_load(key_of(0), loader(0, 200));
  cache.get_or_load(key_of(1), loader(1, 200));  // evicts 0
  EXPECT_EQ(cache.peek(key_of(0)), nullptr);
  // The reader's shared_ptr keeps the evicted bytes alive and intact.
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->size(), 200u);
  EXPECT_EQ((*held)[0], static_cast<std::byte>(0));
}

/// The TSan target (scripts/check.sh runs this suite under
/// -fsanitize=thread): many threads hammering a small hot key space through
/// a cache far smaller than the working set, so hits, misses, racing loads
/// of the same key, and evictions all interleave.
TEST(BlockCache, ConcurrentHammerIsRaceFreeAndUntorn) {
  BlockCache cache(/*capacity_bytes=*/4 * 1024, /*shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr std::uint32_t kKeys = 64;
  std::atomic<int> bad{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Philox rng(9000 + static_cast<std::uint64_t>(t));
      Philox::Stream s(rng);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto block = static_cast<std::uint32_t>(
            s.uniform(0, static_cast<double>(kKeys)));
        const std::size_t size = 128 + block;  // size encodes the key too
        const CacheBlock b = cache.get_or_load(key_of(block),
                                               loader(block, size));
        if (b == nullptr || b->size() != size ||
            (*b)[0] != static_cast<std::byte>(block & 0xff))
          bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(bad.load(), 0);
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.evictions, 0u);      // working set >> capacity
  EXPECT_LE(st.bytes, 4u * 1024u);  // never over budget at rest
}

// ---- gio ranged reads (BlockFile) ------------------------------------------

/// Write a small 3-block gio file (one block per rank) and return its path.
std::string write_ranged_fixture(const std::string& dir) {
  const std::string path = dir + "/ranged.gio";
  comm::Machine::run(3, [&](comm::Comm& c) {
    const std::size_t n = 16 + static_cast<std::size_t>(c.rank()) * 4;
    std::vector<float> x(n);
    std::vector<std::uint64_t> id(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<float>(c.rank()) * 100.0f + static_cast<float>(i);
      id[i] = static_cast<std::uint64_t>(c.rank()) * 1000 + i;
    }
    gio::GlobalMeta meta;
    meta.scale_factor = 0.5;
    meta.box_mpch = 32.0;
    meta.grid = 16;
    const gio::WriteVar vars[] = {
        {"x", gio::VarType::kFloat32, x.data()},
        {"id", gio::VarType::kUInt64, id.data()},
    };
    gio::write(c, path, meta, n, vars);
  });
  return path;
}

TEST(BlockFileRanged, RangedReadsMatchFullReads) {
  const std::string dir = temp_dir("hacc_serve_ranged");
  const std::string path = write_ranged_fixture(dir);

  gio::BlockFile f(path);
  EXPECT_EQ(f.blocks(), 3u);
  EXPECT_EQ(f.total_rows(), 16u + 20u + 24u);
  EXPECT_EQ(f.var_names(), (std::vector<std::string>{"x", "id"}));
  EXPECT_EQ(f.var_index("id"), 1);
  EXPECT_EQ(f.var_index("nope"), -1);
  EXPECT_FALSE(f.used_redundant_header());

  for (std::size_t b = 0; b < f.blocks(); ++b) {
    const std::size_t n = 16 + b * 4;
    EXPECT_EQ(f.rows(b), n);
    EXPECT_EQ(f.sub_block_bytes(b, 0), n * sizeof(float));

    std::vector<std::byte> whole;
    ASSERT_TRUE(f.read_verified(b, 0, whole));
    ASSERT_EQ(whole.size(), n * sizeof(float));

    // A ranged read of any aligned slice returns exactly those bytes,
    // without touching the rest of the file.
    std::vector<std::byte> slice(4 * sizeof(float));
    f.read_at(b, 0, 8 * sizeof(float), slice);
    EXPECT_EQ(std::memcmp(slice.data(), whole.data() + 8 * sizeof(float),
                          slice.size()),
              0);
    float first = 0;
    f.read_at(b, 0, 0, std::span<std::byte>(
                           reinterpret_cast<std::byte*>(&first), 4));
    EXPECT_EQ(first, static_cast<float>(b) * 100.0f);
  }
  // Reads past the end of the sub-block are errors, not short reads.
  std::vector<std::byte> over(16);
  EXPECT_THROW(f.read_at(0, 0, 16 * sizeof(float), over), Error);

  // A damaged sub-block fails read_verified for exactly that sub-block.
  gio::flip_byte_in_variable(path, /*block=*/1, "x", /*byte_in_block=*/3);
  gio::BlockFile g(path);
  std::vector<std::byte> bytes;
  EXPECT_TRUE(g.read_verified(0, 0, bytes));
  EXPECT_FALSE(g.read_verified(1, 0, bytes));
  EXPECT_TRUE(g.read_verified(2, 0, bytes));
  fs::remove_all(dir);
}

// ---- in-situ pipeline end to end -------------------------------------------

/// The small workload all end-to-end tests evolve; mirrors the chaos suite.
core::SimulationConfig serve_config(const std::string& catalog_dir) {
  core::SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 4;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cfg.insitu.cadence = 2;
  cfg.insitu.output_dir = catalog_dir;
  // The short test run barely perturbs the 12^3 IC lattice, so a linking
  // length below the lattice spacing finds nothing; above it the lattice
  // percolates and the catalog reliably holds at least one (giant) halo.
  cfg.insitu.linking_length = 1.2;
  cfg.insitu.min_members = 8;
  cfg.insitu.spectrum_bins = 8;
  cfg.insitu.slice_thickness = 4.0;
  return cfg;
}

TEST(InSituServe, RunStreamsCatalogsAndAnswersQueries) {
  const std::string dir = temp_dir("hacc_serve_e2e");
  const core::SimulationConfig cfg = serve_config(dir);
  cosmology::Cosmology cosmo;
  serve::InSituReport last;
  comm::Machine::run(4, [&](comm::Comm& c) {
    core::Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
    if (c.rank() == 0) {
      // step() ran the pipeline at the cadence; counters saw it.
      EXPECT_GT(sim.counters().value(
                    obs::counter_id("insitu.catalogs_written")),
                0u);
    }
  });

  CatalogStore store(dir);
  EXPECT_EQ(store.steps(), (std::vector<int>{2, 4}));
  EXPECT_EQ(store.latest_step(), 4);
  EXPECT_EQ(store.files(), 6u);  // 3 products x 2 steps
  EXPECT_TRUE(store.verify_all());

  const std::uint64_t n_halos = store.halo_count(4);
  ASSERT_GT(n_halos, 0u);
  const auto all = store.halos_in_mass_range(
      4, 0.0f, std::numeric_limits<float>::max());
  ASSERT_EQ(all.size(), n_halos);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const auto& a, const auto& b) {
                               return a.id < b.id;
                             }));
  for (const auto& h : all) {
    EXPECT_GE(h.count, cfg.insitu.min_members);
    EXPECT_GT(h.mass, 0.0f);
  }

  // Point lookups hit; an id that is no halo's minimum-member id misses.
  const auto hit = store.halo_by_id(4, all.front().id);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->count, all.front().count);
  EXPECT_EQ(store.halo_by_id(4, 12u * 12u * 12u + 7).has_value(), false);

  const auto pk = store.spectrum(4);
  ASSERT_GT(pk.size(), 0u);
  EXPECT_TRUE(std::is_sorted(pk.begin(), pk.end(),
                             [](const auto& a, const auto& b) {
                               return a.k < b.k;
                             }));
  // A k-window returns the subset.
  const auto windowed = store.spectrum(4, pk.front().k, pk.front().k);
  ASSERT_EQ(windowed.size(), 1u);
  EXPECT_EQ(windowed[0].power, pk.front().power);

  // The full-box region equals the whole slice; a half box is a subset.
  const float g = static_cast<float>(cfg.grid);
  const auto slab = store.region(4, {0, 0, 0}, {g, g, g});
  ASSERT_GT(slab.size(), 0u);
  for (const auto& p : slab) EXPECT_LT(p.z, cfg.insitu.slice_thickness);
  const auto half = store.region(4, {0, 0, 0}, {g / 2, g, g});
  EXPECT_LT(half.size(), slab.size());
  EXPECT_GT(half.size(), 0u);

  // The threaded server answers the same queries concurrently; step -1
  // resolves to the newest catalog.
  QueryServer server(store, QueryServer::Config{/*threads=*/4,
                                                /*max_queue=*/256});
  std::vector<std::future<QueryResult>> futs;
  for (const auto& h : all) {
    Query q;
    q.type = QueryType::kHaloById;
    q.step = -1;
    q.halo_id = h.id;
    futs.push_back(server.submit(q));
  }
  Query qs;
  qs.type = QueryType::kSpectrum;
  futs.push_back(server.submit(qs));
  Query qr;
  qr.type = QueryType::kRegion;
  qr.hi = {g, g, g};
  futs.push_back(server.submit(qr));
  for (auto& f : futs) {
    const QueryResult r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.found);
  }
  const QueryServer::Stats st = server.stats();
  EXPECT_EQ(st.served, all.size() + 2);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.count[static_cast<int>(QueryType::kHaloById)], all.size());
  EXPECT_GE(st.p99_ms_all, st.p50_ms_all);

  // Re-issuing the hot set is served from the cache.
  const CacheStats before = store.cache().stats();
  for (const auto& h : all) {
    Query q;
    q.type = QueryType::kHaloById;
    q.halo_id = h.id;
    EXPECT_TRUE(server.query(q).found);
  }
  const CacheStats after = store.cache().stats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  fs::remove_all(dir);
}

// ---- catalog determinism ---------------------------------------------------

/// One deterministic synthetic snapshot; `part`/`parts` selects a strided
/// share so different widths partition the same global set differently.
tree::ParticleArray snapshot_share(int part, int parts, std::size_t total,
                                   double box) {
  Philox rng(777);
  Philox::Stream s(rng);
  tree::ParticleArray p;
  for (std::size_t i = 0; i < total; ++i) {
    // Clustered positions: half the particles huddle near seeded centers so
    // FOF has real work to do.
    const float x = static_cast<float>(s.uniform(0, box));
    const float y = static_cast<float>(s.uniform(0, box));
    const float z = static_cast<float>(s.uniform(0, box));
    const float vx = static_cast<float>(s.gaussian());
    const float vy = static_cast<float>(s.gaussian());
    const float vz = static_cast<float>(s.gaussian());
    if (static_cast<int>(i % static_cast<std::size_t>(parts)) != part)
      continue;
    p.push_back(x, y, z, vx, vy, vz, 1.0f, i, tree::Role::kActive);
  }
  return p;
}

/// Bit pattern of a float (exact-equality currency).
std::uint32_t bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, 4);
  return u;
}

/// Write catalogs for the same global snapshot at `nranks` and return every
/// halo record via the store.
std::vector<CatalogStore::HaloRecord> catalog_at_width(int nranks,
                                                       const std::string& dir) {
  constexpr std::size_t kTotal = 600;
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    const tree::ParticleArray mine =
        snapshot_share(c.rank(), c.size(), kTotal, /*box=*/16.0);
    InSituConfig cfg;
    cfg.output_dir = dir;
    cfg.halos = true;
    cfg.spectrum = false;
    cfg.slice = false;
    cfg.linking_length = 0.6;
    cfg.min_members = 2;
    gio::GlobalMeta meta;
    meta.scale_factor = 1.0;
    meta.box_mpch = 32.0;
    meta.grid = 16;
    write_catalogs(c, cfg, /*step=*/1, meta, mine, {});
  });
  CatalogStore store(dir);
  return store.halos_in_mass_range(1, 0.0f,
                                   std::numeric_limits<float>::max());
}

TEST(InSituServe, HaloCatalogIsBitStableAcrossRankCounts) {
  // The same global snapshot, partitioned 1/2/4 ways, must produce
  // bit-identical halo records: the pipeline gathers, sorts into canonical
  // id order, sums members in id order, and writes halos sorted by id, so
  // no float ever sees a width-dependent summation order.
  const std::string d1 = temp_dir("hacc_serve_det1");
  const std::string d2 = temp_dir("hacc_serve_det2");
  const std::string d4 = temp_dir("hacc_serve_det4");
  const auto h1 = catalog_at_width(1, d1);
  const auto h2 = catalog_at_width(2, d2);
  const auto h4 = catalog_at_width(4, d4);
  ASSERT_GT(h1.size(), 0u);
  ASSERT_EQ(h2.size(), h1.size());
  ASSERT_EQ(h4.size(), h1.size());
  for (std::size_t i = 0; i < h1.size(); ++i) {
    for (const auto* other : {&h2, &h4}) {
      const auto& a = h1[i];
      const auto& b = (*other)[i];
      EXPECT_EQ(a.id, b.id);
      EXPECT_EQ(a.count, b.count);
      EXPECT_EQ(bits(a.mass), bits(b.mass));
      for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(bits(a.center[static_cast<std::size_t>(d)]),
                  bits(b.center[static_cast<std::size_t>(d)]));
        EXPECT_EQ(bits(a.velocity[static_cast<std::size_t>(d)]),
                  bits(b.velocity[static_cast<std::size_t>(d)]));
      }
    }
  }
  fs::remove_all(d1);
  fs::remove_all(d2);
  fs::remove_all(d4);
}

TEST(InSituServe, RepeatedRunsProduceByteIdenticalCatalogFiles) {
  // Same config, same width, run twice: the catalog *files* (not just the
  // records) must match byte for byte — there is no timestamp, pointer, or
  // iteration-order noise anywhere in the format.
  auto run_once = [](const std::string& dir) {
    const core::SimulationConfig cfg = serve_config(dir);
    cosmology::Cosmology cosmo;
    comm::Machine::run(4, [&](comm::Comm& c) {
      core::Simulation sim(c, cosmo, cfg);
      sim.initialize();
      sim.run();
    });
  };
  const std::string da = temp_dir("hacc_serve_rep_a");
  const std::string db = temp_dir("hacc_serve_rep_b");
  run_once(da);
  run_once(db);
  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in), {});
  };
  int compared = 0;
  for (const auto& entry : fs::directory_iterator(da)) {
    const std::string name = entry.path().filename().string();
    const auto a = slurp(entry.path().string());
    const auto b = slurp(db + "/" + name);
    EXPECT_EQ(a.size(), b.size()) << name;
    EXPECT_TRUE(a == b) << name << " differs between identical runs";
    ++compared;
  }
  EXPECT_EQ(compared, 6);
  fs::remove_all(da);
  fs::remove_all(db);
}

// ---- CRC refusal through the full read path --------------------------------

TEST(InSituServe, DamagedCatalogRefusesThatQueryOnly) {
  const std::string dir = temp_dir("hacc_serve_crc");
  core::SimulationConfig cfg = serve_config(dir);
  cfg.steps = 2;
  cosmology::Cosmology cosmo;
  comm::Machine::run(2, [&](comm::Comm& c) {
    core::Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
  });

  // Damage one byte of the spectrum payload *after* the run published it.
  gio::flip_byte_in_variable(spectrum_path(dir, 2), /*block=*/0, "power");

  CatalogStore store(dir);
  std::vector<std::string> damaged;
  EXPECT_FALSE(store.verify_all(&damaged));
  ASSERT_EQ(damaged.size(), 1u);
  EXPECT_EQ(damaged[0], spectrum_path(dir, 2));

  // Direct store access refuses with a diagnosis naming the damage...
  try {
    store.spectrum(2);
    FAIL() << "corrupt spectrum was served";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("power"), std::string::npos);
  }
  // ...nothing corrupt was promoted into the cache: the clean "k" column
  // read before the damaged "power" one is the only resident entry, and a
  // retry re-reads (and re-refuses) the damaged sub-block instead of
  // finding a poisoned hit.
  EXPECT_EQ(store.cache().stats().entries, 1u);
  const std::uint64_t misses_before = store.cache().stats().misses;
  EXPECT_THROW(store.spectrum(2), Error);
  EXPECT_GT(store.cache().stats().misses, misses_before);
  EXPECT_EQ(store.cache().stats().entries, 1u);

  // ...and through the server the refusal fails the request, not the
  // service: halo queries against the undamaged file keep working.
  QueryServer server(store, QueryServer::Config{/*threads=*/2,
                                                /*max_queue=*/64});
  Query bad;
  bad.type = QueryType::kSpectrum;
  const QueryResult rbad = server.query(bad);
  EXPECT_FALSE(rbad.ok);
  EXPECT_NE(rbad.error.find("CRC mismatch"), std::string::npos);

  Query good;
  good.type = QueryType::kHaloMassRange;
  const QueryResult rgood = server.query(good);
  EXPECT_TRUE(rgood.ok) << rgood.error;
  EXPECT_EQ(server.stats().failed, 1u);
  fs::remove_all(dir);
}

// ---- chaos: catalogs survive an interrupted, recovered run -----------------

TEST(InSituServe, ChaosInterruptedRunLeavesServableCatalogs) {
  // A supervised run is killed mid-flight and recovers from checkpoint;
  // every catalog the (twice-started) run published must still be CRC-clean
  // and fully queryable: the atomic tmp+rename publish means an interrupted
  // in-situ write either never appears or appears whole.
  const std::string dir = temp_dir("hacc_serve_chaos");
  core::SupervisorConfig scfg;
  scfg.sim = serve_config(dir + "/catalogs");
  scfg.sim.insitu.cadence = 1;
  scfg.nranks = 4;
  scfg.checkpoint_dir = dir + "/ckpt";
  scfg.sim.ledger_path = scfg.checkpoint_dir + "/ledger.jsonl";
  scfg.checkpoint_every = 2;
  scfg.keep = 2;
  scfg.max_retries = 3;
  scfg.machine.verify_payloads = true;
  scfg.machine.recv_timeout_s = 60;
  fs::create_directories(scfg.checkpoint_dir);

  comm::FaultPlan plan;
  plan.kill_at_step(/*rank=*/2, /*step=*/3);  // checkpoint at step 2 exists
  scfg.machine.fault_plan = &plan;

  cosmology::Cosmology cosmo;
  core::Supervisor sup(cosmo, scfg);
  const core::SupervisorReport rep = sup.run();
  ASSERT_TRUE(rep.completed) << rep.last_error;
  EXPECT_EQ(rep.attempts, 2);

  CatalogStore store(dir + "/catalogs");
  EXPECT_TRUE(store.verify_all());
  // Every step of the finished run has catalogs (interrupted steps were
  // re-run after the restore and republished atomically).
  EXPECT_EQ(store.steps(), (std::vector<int>{1, 2, 3, 4}));
  QueryServer server(store);
  Query q;
  q.type = QueryType::kHaloMassRange;
  q.step = -1;
  const QueryResult r = server.query(q);
  EXPECT_TRUE(r.ok) << r.error;
  Query qr;
  qr.type = QueryType::kRegion;
  qr.hi = {16, 16, 16};
  EXPECT_TRUE(server.query(qr).ok);
  fs::remove_all(dir);
}

// ---- live metrics endpoint ---------------------------------------------------

TEST(MetricsEndpoint, ServesPrometheusAndHealthz) {
  MetricsServer::Config cfg;
  cfg.port = 0;  // ephemeral
  MetricsServer server(cfg);
  ASSERT_GT(server.port(), 0);

  obs::Counters counters;
  counters.add(obs::counter_id("servex.endpoint.events"), 42);
  obs::MetricsHub hub;
  hub.add(obs::MetricsSource{0, &counters, nullptr, ""});
  server.set_metrics_handler([&hub] { return hub.render(); });
  server.set_healthz_handler([] {
    return std::string("{\"status\":\"ok\",\"width\":4}");
  });

  int status = 0;
  const std::string metrics = http_get(server.port(), "/metrics", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(metrics.find("# TYPE hacc_servex_endpoint_events_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("hacc_servex_endpoint_events_total{rank=\"0\"} 42"),
            std::string::npos);

  const std::string health = http_get(server.port(), "/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);

  http_get(server.port(), "/nope", &status);
  EXPECT_EQ(status, 404);

  // Concurrent scrapes while a writer keeps bumping the counter.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) counters.add(obs::counter_id("servex.endpoint.events"), 1);
  });
  std::vector<std::thread> scrapers;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        int st = 0;
        const std::string body = http_get(server.port(), "/metrics", &st);
        if (st == 200 &&
            body.find("hacc_servex_endpoint_events_total") != std::string::npos)
          ok.fetch_add(1);
      }
    });
  }
  for (auto& t : scrapers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(ok.load(), 40);
  EXPECT_GE(server.requests_served(), 42u);
}

// Raw-socket client for the hardening tests: sends exactly `payload` (no
// HTTP framing added) and returns whatever the server answers until it
// closes. http_get can't produce malformed traffic, so this can.
std::string raw_exchange(int port, const std::string& payload,
                         bool shutdown_write = true) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n =
        ::send(fd, payload.data() + sent, payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  // Model the client being done (or dead): half-close so the server's recv
  // sees EOF instead of waiting out its timeout.
  if (shutdown_write) ::shutdown(fd, SHUT_WR);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(MetricsEndpoint, SurvivesMalformedAndHostileClients) {
  MetricsServer::Config cfg;
  cfg.port = 0;
  MetricsServer server(cfg);
  server.set_metrics_handler([] { return std::string("ok 1\n"); });
  server.set_healthz_handler([] { return std::string("{}"); });

  // Connect-and-leave: no bytes sent. No response owed, no worker wedged.
  EXPECT_EQ(raw_exchange(server.port(), ""), "");

  // Partial request line, then the client dies: 400, not a handler
  // dispatch on the half-read path.
  EXPECT_NE(raw_exchange(server.port(), "GET /met").find("400 Bad Request"),
            std::string::npos);

  // Binary garbage and non-GET methods: 400.
  EXPECT_NE(raw_exchange(server.port(), "\x01\x02\xff\r\n\r\n")
                .find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(raw_exchange(server.port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(
      raw_exchange(server.port(), "GET \r\n\r\n").find("400 Bad Request"),
      std::string::npos);

  // Header flood past the 16 KiB cap, never terminated: 400, bounded read.
  std::string flood = "GET /metrics HTTP/1.0\r\n";
  flood.append(64 * 1024, 'x');
  EXPECT_NE(raw_exchange(server.port(), flood).find("400 Bad Request"),
            std::string::npos);

  EXPECT_GE(server.requests_rejected(), 6u);

  // A well-formed request for an unknown path is still a 404 — 400 is
  // reserved for requests we could not even parse.
  int status = 0;
  http_get(server.port(), "/nope", &status);
  EXPECT_EQ(status, 404);

  // The pool survives a burst of abuse and still answers real scrapes.
  std::vector<std::thread> abusers;
  for (int t = 0; t < 8; ++t) {
    abusers.emplace_back([&, t] {
      for (int i = 0; i < 5; ++i)
        raw_exchange(server.port(), t % 2 == 0 ? "" : "junk\r\n\r\n");
    });
  }
  for (auto& t : abusers) t.join();
  const std::string body = http_get(server.port(), "/metrics", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok 1\n");
}

TEST(MetricsEndpoint, LiveScrapeDuringSupervisedRun) {
  // Acceptance: a 4-rank supervised run is scraped over HTTP while the
  // machine is up. /metrics must expose per-phase timings, the cost-map
  // imbalance gauges, and (once a query service rides on the run) the
  // cache counters and query-latency histograms; /healthz must report the
  // run's width and checkpoint progress.
  const std::string dir = temp_dir("hacc_serve_metrics_live");
  core::SupervisorConfig scfg;
  scfg.sim = serve_config(dir + "/catalogs");
  scfg.nranks = 4;
  scfg.checkpoint_dir = dir + "/ckpt";
  scfg.sim.ledger_path = scfg.checkpoint_dir + "/ledger.jsonl";
  scfg.checkpoint_every = 2;
  scfg.metrics_port = 0;  // ephemeral loopback
  fs::create_directories(scfg.checkpoint_dir);

  cosmology::Cosmology cosmo;
  core::Supervisor sup(cosmo, scfg);
  sup.on_finished = [&](core::Simulation&, comm::Comm& c) {
    // Hold every rank inside the attempt while rank 0 scrapes, so all four
    // rank sources stay registered in the hub for the live scrape.
    c.barrier();
    if (c.rank() != 0) {
      c.barrier();
      return;
    }
    const int port = sup.metrics_port();
    ASSERT_GT(port, 0);

    // Mid-attempt scrape: all four ranks' sinks are registered.
    int status = 0;
    std::string text = http_get(port, "/metrics", &status);
    ASSERT_EQ(status, 200);
    for (int rank = 0; rank < 4; ++rank)
      EXPECT_NE(text.find("rank=\"" + std::to_string(rank) + "\""),
                std::string::npos);
    EXPECT_NE(text.find("hacc_phase_ns_total{phase=\"sr-kernel\""),
              std::string::npos);
    EXPECT_NE(text.find("hacc_phase_ns_total{phase=\"poisson.fft\""),
              std::string::npos);
    EXPECT_NE(text.find("hacc_cost_leaf_imbalance{"), std::string::npos);
    EXPECT_NE(text.find("hacc_cost_ns_per_interaction{"), std::string::npos);
    EXPECT_NE(text.find("hacc_step_wall_ns_bucket{"), std::string::npos);

    std::string health = http_get(port, "/healthz", &status);
    ASSERT_EQ(status, 200);
    EXPECT_NE(health.find("\"status\":\"running\""), std::string::npos);
    EXPECT_NE(health.find("\"width\":4"), std::string::npos);
    EXPECT_NE(health.find("\"step\":4"), std::string::npos);
    EXPECT_NE(health.find("\"last_checkpoint_step\":4"), std::string::npos);
    EXPECT_NE(health.find("\"anomalies\":"), std::string::npos);

    // A query service rides on the live run: its cache counters and
    // latency histograms join the same hub and the next scrape sees them.
    obs::Counters qcounters;
    obs::HistogramSet qhists;
    CatalogStore store(scfg.sim.insitu.output_dir);
    QueryServer::Config qcfg;
    qcfg.threads = 2;
    qcfg.counters = &qcounters;
    qcfg.histograms = &qhists;
    QueryServer qserver(store, qcfg);
    const int handle =
        sup.metrics_hub().add(obs::MetricsSource{0, &qcounters, &qhists, ""});
    Query q;
    q.type = QueryType::kHaloMassRange;
    q.step = -1;
    EXPECT_TRUE(qserver.query(q).ok);
    Query qr;
    qr.type = QueryType::kRegion;
    qr.hi = {16, 16, 16};
    EXPECT_TRUE(qserver.query(qr).ok);

    text = http_get(port, "/metrics", &status);
    ASSERT_EQ(status, 200);
    EXPECT_NE(text.find("hacc_serve_cache_"), std::string::npos);
    EXPECT_NE(text.find("hacc_serve_query_all_ns_bucket{"), std::string::npos);
    EXPECT_NE(text.find("hacc_serve_query_all_ns_count{"), std::string::npos);
    sup.metrics_hub().remove(handle);
    c.barrier();  // release the other ranks
  };
  const core::SupervisorReport rep = sup.run();
  ASSERT_TRUE(rep.completed) << rep.last_error;

  // The endpoint outlives the attempt: after completion /healthz flips to
  // ok and the rank sources are gone from /metrics.
  int status = 0;
  const std::string health = http_get(sup.metrics_port(), "/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"completed\":true"), std::string::npos);
  const std::string text = http_get(sup.metrics_port(), "/metrics", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(text.find("hacc_phase_ns_total"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hacc::serve
