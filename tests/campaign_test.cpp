// Tests for the campaign orchestrator (campaign/): declarative sweep
// expansion, the crash-safe write-ahead journal, multi-run scheduling over
// the fleet pool, orchestrator-kill recovery via journal replay, fault
// quarantine, elastic capacity reallocation, and the campaign-wide
// observability endpoint.
//
// The chaos scenarios reuse the chaos_test idiom: a small but real
// simulation (16^3 grid, 12^3 particles), seeded fault plans, and final
// states compared against clean uninterrupted reference runs.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/journal.h"
#include "comm/comm.h"
#include "comm/fault.h"
#include "core/simulation.h"
#include "core/supervisor.h"
#include "cosmology/background.h"
#include "serve/metrics_server.h"

namespace hacc::campaign {
namespace {

namespace fs = std::filesystem;
using core::Simulation;
using core::SimulationConfig;

SimulationConfig campaign_base_config() {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 4;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  return cfg;
}

std::string fresh_root(const std::string& name) {
  const std::string root = (fs::temp_directory_path() / name).string();
  fs::remove_all(root);
  fs::create_directories(root);
  return root;
}

// ---- final-state comparison (chaos_test currency) --------------------------

struct FinalState {
  std::map<std::uint64_t, std::array<float, 6>> values;
  double mass_sum = 0;
  std::vector<cosmology::PowerBin> pk;
};

/// Collective: gathers the final particle state and spectra to rank 0's
/// `out` (untouched on other ranks).
void collect_state(Simulation& sim, comm::Comm& c, FinalState* out) {
  auto pk = sim.power_spectrum(/*bins=*/8);
  auto all = sim.gather_active();
  if (c.rank() != 0) return;
  out->pk = std::move(pk);
  for (std::size_t i = 0; i < all.size(); ++i) {
    out->values[all.id[i]] = {all.x[i],  all.y[i],  all.z[i],
                              all.vx[i], all.vy[i], all.vz[i]};
    out->mass_sum += all.mass[i];
  }
}

/// Clean uninterrupted run at `nranks`: the truth a campaign run must match.
FinalState reference_run(const SimulationConfig& cfg,
                         const cosmology::Cosmology& cosmo, int nranks) {
  FinalState ref;
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
    collect_state(sim, c, &ref);
  });
  return ref;
}

float periodic_delta(float a, float b, float n) {
  float d = std::fabs(a - b);
  while (d > n) d -= n;
  return std::min(d, n - d);
}

void expect_state_close(const FinalState& ref, const FinalState& got,
                        float grid, float pos_tol, float vel_tol) {
  ASSERT_EQ(ref.values.size(), got.values.size());
  EXPECT_NEAR(got.mass_sum, ref.mass_sum, 1e-9 * std::fabs(ref.mass_sum));
  float worst_pos = 0, worst_vel = 0;
  for (const auto& [id, rv] : ref.values) {
    const auto it = got.values.find(id);
    ASSERT_NE(it, got.values.end()) << "id " << id;
    for (int a = 0; a < 3; ++a) {
      worst_pos = std::max(worst_pos, periodic_delta(rv[a], it->second[a], grid));
      worst_vel = std::max(worst_vel, std::fabs(rv[a + 3] - it->second[a + 3]));
    }
  }
  EXPECT_LE(worst_pos, pos_tol);
  EXPECT_LE(worst_vel, vel_tol);
}

void expect_pk_close(const std::vector<cosmology::PowerBin>& ref,
                     const std::vector<cosmology::PowerBin>& got,
                     double rtol) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i].modes == 0) continue;
    EXPECT_EQ(ref[i].modes, got[i].modes) << "bin " << i;
    EXPECT_NEAR(got[i].power, ref[i].power, rtol * ref[i].power) << "bin " << i;
  }
}

// ---- per-run capture hook --------------------------------------------------

struct RunCapture {
  Simulation::HealthReport health;
  FinalState state;
};

/// An on_run_finished hook that gathers each finishing run's health and
/// final state into `out` (rank 0 writes under `mu`; runs are concurrent).
std::function<void(const RunSpec&, Simulation&, comm::Comm&)> capture_into(
    std::mutex& mu, std::map<std::string, RunCapture>& out) {
  return [&mu, &out](const RunSpec& spec, Simulation& sim, comm::Comm& c) {
    RunCapture cap;
    cap.health = sim.health_check();  // collective
    collect_state(sim, c, &cap.state);
    if (c.rank() != 0) return;
    std::lock_guard<std::mutex> lock(mu);
    out[spec.name] = std::move(cap);
  };
}

// ---- journal inspection ----------------------------------------------------

std::vector<JournalEntry> journal_of(const std::string& root) {
  return CampaignJournal::replay(CampaignOrchestrator::journal_path(root));
}

int index_of(const std::vector<JournalEntry>& es, const std::string& event,
             const std::string& run, int from = 0) {
  for (std::size_t i = static_cast<std::size_t>(from); i < es.size(); ++i)
    if (es[i].event == event && es[i].run == run) return static_cast<int>(i);
  return -1;
}

int count_of(const std::vector<JournalEntry>& es, const std::string& event,
             const std::string& run) {
  int n = 0;
  for (const JournalEntry& e : es)
    if (e.event == event && e.run == run) ++n;
  return n;
}

/// Asserts the per-run lifecycle ordering the journal format promises:
/// exactly one `scheduled`, at least one `started` after it, exactly one
/// terminal entry (`finished` xor `quarantined`) after every `started`.
void expect_lifecycle(const std::vector<JournalEntry>& es,
                      const std::string& run, const std::string& terminal) {
  ASSERT_EQ(count_of(es, "scheduled", run), 1) << run;
  const int scheduled = index_of(es, "scheduled", run);
  const int started = index_of(es, "started", run);
  ASSERT_GE(started, 0) << run;
  EXPECT_LT(scheduled, started) << run;
  EXPECT_EQ(count_of(es, terminal, run), 1) << run << " " << terminal;
  const std::string other = terminal == "finished" ? "quarantined" : "finished";
  EXPECT_EQ(count_of(es, other, run), 0) << run;
  const int term = index_of(es, terminal, run);
  int last_started = started;
  for (int at = started; at >= 0;
       at = index_of(es, "started", run, at + 1))
    last_started = at;
  EXPECT_LT(last_started, term) << run;
}

// ---- sweep expansion -------------------------------------------------------

TEST(CampaignSpec, ExpandCrossesAxesScalesLoadingAndAppliesTweaks) {
  CampaignSpec spec;
  spec.base = campaign_base_config();
  spec.seeds = {1, 2};
  spec.grids = {16, 32};
  cosmology::Cosmology wcdm;
  wcdm.w = -0.9;
  spec.cosmologies = {{"lcdm", cosmology::Cosmology{}}, {"w9", wcdm}};
  spec.width = 3;
  spec.tweak = [](RunSpec& r) {
    if (r.name == "s1_g16_lcdm") r.width = 5;
  };

  const std::vector<RunSpec> runs = spec.expand();
  ASSERT_EQ(runs.size(), 8u);
  EXPECT_EQ(runs[0].name, "s1_g16_lcdm");
  EXPECT_EQ(runs[0].width, 5);  // tweaked
  EXPECT_EQ(runs[1].name, "s1_g16_w9");
  EXPECT_EQ(runs[1].width, 3);
  EXPECT_DOUBLE_EQ(runs[1].cosmo.w, -0.9);
  for (const RunSpec& r : runs) {
    if (r.name == "s2_g32_lcdm") {
      EXPECT_EQ(r.sim.seed, 2u);
      EXPECT_EQ(r.sim.grid, 32u);
      // The grid axis keeps the base particles-per-cell loading.
      EXPECT_EQ(r.sim.particles_per_dim, 24u);
    }
  }

  // Empty axes default to the base values: the smallest campaign is one run.
  CampaignSpec one;
  one.base = campaign_base_config();
  const std::vector<RunSpec> single = one.expand();
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].name, "s" + std::to_string(one.base.seed));
  EXPECT_EQ(single[0].sim.grid, one.base.grid);

  // Colliding names (two variants with the same tag) are rejected loudly.
  CampaignSpec dup;
  dup.base = campaign_base_config();
  dup.cosmologies = {{"x", cosmology::Cosmology{}},
                     {"x", cosmology::Cosmology{}}};
  EXPECT_THROW(dup.expand(), std::exception);
}

// ---- write-ahead journal ---------------------------------------------------

TEST(CampaignJournalTest, RoundTripsEntriesAndSurvivesTornTail) {
  const std::string root = fresh_root("hacc_campaign_journal");
  const std::string path = root + "/campaign.jsonl";
  {
    CampaignJournal j(path);
    j.append({"scheduled", "s1", -1, -1, 4, "sweep member"});
    j.append({"started", "s1", -1, 0, 4, "cold start"});
    j.append({"checkpointed", "s1", 3, 0, 0, "with \"quotes\"\nand newline"});
  }
  std::vector<JournalEntry> es = CampaignJournal::replay(path);
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0].event, "scheduled");
  EXPECT_EQ(es[0].width, 4);
  EXPECT_EQ(es[1].attempt, 0);
  EXPECT_EQ(es[2].step, 3);
  EXPECT_EQ(es[2].detail, "with \"quotes\"\nand newline");

  // A crash mid-append leaves an unterminated fragment: replay must drop
  // exactly that line and keep everything before it.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"event\":\"fini";
  }
  es = CampaignJournal::replay(path);
  ASSERT_EQ(es.size(), 3u);

  // Re-opening for append seals the torn tail, so the next entry is not
  // swallowed by the fragment.
  {
    CampaignJournal j(path, /*append=*/true);
    j.append({"finished", "s1", 4, 0, 4, "1 attempt(s)"});
  }
  es = CampaignJournal::replay(path);
  ASSERT_EQ(es.size(), 4u);
  EXPECT_EQ(es[3].event, "finished");

  // Blank lines and non-entry noise are skipped, not fatal.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "\n\nnot json at all\n";
  }
  es = CampaignJournal::replay(path);
  ASSERT_EQ(es.size(), 4u);

  // A missing journal is an empty campaign, not an error.
  EXPECT_TRUE(CampaignJournal::replay(root + "/absent.jsonl").empty());
  fs::remove_all(root);
}

// ---- clean sweep: scheduling, journal ordering, shared observability -------

TEST(Campaign, CleanSweepFinishesEveryRunWithSharedMetricsEndpoint) {
  const std::string root = fresh_root("hacc_campaign_clean");
  CampaignSpec spec;
  spec.base = campaign_base_config();
  spec.seeds = {5, 6, 7};
  spec.width = 2;

  std::mutex cap_mu;
  std::map<std::string, RunCapture> caps;
  CampaignConfig cfg;
  cfg.root_dir = root;
  cfg.fleet_ranks = 4;
  cfg.max_concurrent_runs = 2;
  cfg.supervisor_retries = 0;
  cfg.max_momentum_drift = 1e-2;
  cfg.metrics_port = 0;  // ephemeral: the whole fleet behind one endpoint
  cfg.on_run_finished = capture_into(cap_mu, caps);

  // Scrape /metrics while runs are still up (their per-rank sources are
  // registered only for the attempt's lifetime).
  CampaignOrchestrator* live = nullptr;
  std::mutex scrape_mu;
  std::string live_metrics;
  auto inner = cfg.on_run_finished;
  cfg.on_run_finished = [&](const RunSpec& spec_, Simulation& sim,
                            comm::Comm& c) {
    inner(spec_, sim, c);
    if (c.rank() != 0) return;
    std::lock_guard<std::mutex> lock(scrape_mu);
    if (live_metrics.empty())
      live_metrics = serve::http_get(live->metrics_port(), "/metrics");
  };

  CampaignOrchestrator orch(spec, cfg);
  live = &orch;
  ASSERT_GT(orch.metrics_port(), 0);
  const CampaignReport rep = orch.run();

  EXPECT_TRUE(rep.completed);
  EXPECT_FALSE(rep.interrupted);
  EXPECT_EQ(rep.launched, 3);
  EXPECT_EQ(rep.grants, 3);
  EXPECT_EQ(rep.finished, 3);
  EXPECT_EQ(rep.quarantined, 0);
  EXPECT_GT(rep.makespan_s, 0.0);
  EXPECT_GT(rep.utilization, 0.0);
  EXPECT_LE(rep.utilization, 1.0);
  for (const RunStatus& st : rep.runs) {
    EXPECT_EQ(st.phase, RunPhase::kFinished) << st.spec.name;
    EXPECT_EQ(st.report.attempts, 1) << st.spec.name;
    EXPECT_EQ(st.launches, 1) << st.spec.name;
  }

  // Namespaced per-run trees: checkpoints and a ledger per run.
  for (const char* name : {"s5", "s6", "s7"}) {
    EXPECT_TRUE(fs::exists(orch.run_dir(name) + "/ledger.jsonl")) << name;
    EXPECT_FALSE(core::CheckpointSet(orch.run_dir(name) + "/ckpt", 2)
                     .existing()
                     .empty())
        << name;
  }

  // Journal lifecycle ordering per run.
  const std::vector<JournalEntry> es = journal_of(root);
  for (const char* name : {"s5", "s6", "s7"})
    expect_lifecycle(es, name, "finished");

  // The mid-run scrape saw per-run labeled series from the shared hub.
  EXPECT_NE(live_metrics.find("run=\"s"), std::string::npos) << live_metrics;
  EXPECT_NE(live_metrics.find("hacc_"), std::string::npos);
  // After the sweep, the fleet's own counters are still scrapeable...
  const std::string metrics = serve::http_get(orch.metrics_port(), "/metrics");
  EXPECT_NE(metrics.find("hacc_campaign_grants_total{run=\"campaign\""),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("hacc_campaign_runs_finished_total"),
            std::string::npos);
  // ...and /healthz reports the terminal scheduler state per run.
  const std::string healthz = serve::http_get(orch.metrics_port(), "/healthz");
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"s5\":\"finished\""), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"quarantined\":0"), std::string::npos);
  int status = 0;
  serve::http_get(orch.metrics_port(), "/nope", &status);
  EXPECT_EQ(status, 404);

  // Physics: every run conservation-clean; one spot-checked against its
  // clean reference (same width, canonical order: tight tolerances).
  ASSERT_EQ(caps.size(), 3u);
  for (const auto& [name, cap] : caps) {
    EXPECT_TRUE(cap.health.finite) << name;
    EXPECT_TRUE(cap.health.counts_ok()) << name;
    EXPECT_EQ(cap.health.active, 12u * 12u * 12u) << name;
  }
  SimulationConfig ref_cfg = spec.base;
  ref_cfg.seed = 5;
  const FinalState ref = reference_run(ref_cfg, spec.cosmo, 2);
  expect_state_close(ref, caps.at("s5").state, 16.0f, 1e-4f, 1e-4f);
  expect_pk_close(ref.pk, caps.at("s5").state.pk, 1e-6);
  fs::remove_all(root);
}

// ---- orchestrator kill: journal replay resumes the campaign ----------------

TEST(Campaign, KilledOrchestratorResumesFromJournalWithoutRepeatingWork) {
  const std::string root = fresh_root("hacc_campaign_kill");
  CampaignSpec spec;
  spec.base = campaign_base_config();
  spec.seeds = {1, 2, 3};
  spec.width = 2;

  auto base_cfg = [&] {
    CampaignConfig cfg;
    cfg.root_dir = root;
    cfg.fleet_ranks = 2;  // serial: grants happen in ID order
    cfg.max_concurrent_runs = 1;
    cfg.run_retries = 2;
    cfg.supervisor_retries = 0;  // failures surface to the orchestrator
    cfg.max_momentum_drift = 1e-2;
    return cfg;
  };

  // Process 1: s1 finishes; s2 is killed at step 3 (checkpoints at 1 and 2
  // exist); then the orchestrator "dies" (max_launches).
  {
    CampaignConfig cfg = base_cfg();
    cfg.max_launches = 2;
    cfg.fault_plans = [](const RunSpec& r) -> std::shared_ptr<comm::FaultPlan> {
      if (r.name != "s2") return nullptr;
      auto plan = std::make_shared<comm::FaultPlan>();
      plan->kill_at_step(/*rank=*/0, /*step=*/3);
      return plan;
    };
    CampaignOrchestrator orch(spec, cfg);
    const CampaignReport rep = orch.run();
    EXPECT_TRUE(rep.interrupted);
    EXPECT_FALSE(rep.completed);
    EXPECT_EQ(rep.launched, 2);
    EXPECT_EQ(rep.finished, 1);
    EXPECT_EQ(rep.runs[0].phase, RunPhase::kFinished);  // s1
    EXPECT_EQ(rep.runs[1].phase, RunPhase::kQueued);    // s2: failed once
    EXPECT_EQ(rep.runs[1].failures, 1);
    EXPECT_EQ(rep.runs[2].launches, 0);                 // s3: never started
  }

  // Process 2: a new orchestrator on the same root replays the journal —
  // s1 must not re-run, s2 resumes from its newest verified checkpoint,
  // s3 cold-starts.
  std::mutex cap_mu;
  std::map<std::string, RunCapture> caps;
  CampaignConfig cfg2 = base_cfg();
  cfg2.on_run_finished = capture_into(cap_mu, caps);
  CampaignOrchestrator orch2(spec, cfg2);
  const CampaignReport rep2 = orch2.run();

  EXPECT_TRUE(rep2.completed) << rep2.runs[1].last_error;
  EXPECT_FALSE(rep2.interrupted);
  EXPECT_EQ(rep2.replay_skipped, 1);  // s1 was already terminal
  EXPECT_EQ(rep2.launched, 2);        // s2 + s3 only
  EXPECT_EQ(rep2.finished, 3);
  EXPECT_TRUE(rep2.runs[0].replayed_terminal);
  EXPECT_EQ(caps.count("s1"), 0u);  // finished work was not repeated

  const std::vector<JournalEntry> es = journal_of(root);
  for (const char* name : {"s1", "s2", "s3"})
    expect_lifecycle(es, name, "finished");
  // s1 launched exactly once, in process 1.
  EXPECT_EQ(count_of(es, "started", "s1"), 1);
  EXPECT_EQ(count_of(es, "scheduled", "s1"), 1);  // intents not re-journaled
  const int restart = index_of(es, "orchestrator_start", "",
                               index_of(es, "orchestrator_start", "") + 1);
  ASSERT_GT(restart, 0);
  EXPECT_EQ(index_of(es, "started", "s1", restart), -1);
  // s2's relaunch declared resume mode and actually restored mid-run state.
  const int s2_restarted = index_of(es, "started", "s2", restart);
  ASSERT_GE(s2_restarted, 0);
  EXPECT_NE(es[static_cast<std::size_t>(s2_restarted)].detail.find(
                "resume from newest verified checkpoint"),
            std::string::npos);
  const int s2_restore = index_of(es, "restore", "s2", restart);
  ASSERT_GE(s2_restore, 0) << "resumed run must restore, not cold-start";
  EXPECT_GE(es[static_cast<std::size_t>(s2_restore)].step, 1);

  // The interrupted-and-resumed run still lands on the clean reference.
  SimulationConfig ref_cfg = spec.base;
  ref_cfg.seed = 2;
  const FinalState ref = reference_run(ref_cfg, spec.cosmo, 2);
  expect_state_close(ref, caps.at("s2").state, 16.0f, 1e-4f, 1e-4f);
  expect_pk_close(ref.pk, caps.at("s2").state.pk, 1e-6);
  fs::remove_all(root);
}

// ---- quarantine: a poisoned config cannot starve the sweep -----------------

TEST(Campaign, DeterministicallyFailingRunIsQuarantinedNotRetriedForever) {
  const std::string root = fresh_root("hacc_campaign_quarantine");
  CampaignSpec spec;
  spec.base = campaign_base_config();
  spec.seeds = {1, 2};  // s1 is poisoned, s2 is healthy
  spec.width = 2;

  CampaignConfig cfg;
  cfg.root_dir = root;
  cfg.fleet_ranks = 2;
  cfg.max_concurrent_runs = 1;
  cfg.run_retries = 5;  // generous budget: quarantine must trip earlier
  cfg.supervisor_retries = 0;
  cfg.fault_plans = [](const RunSpec& r) -> std::shared_ptr<comm::FaultPlan> {
    if (r.name != "s1") return nullptr;
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->kill_at_step(/*rank=*/0, /*step=*/1).repeat(-1);  // dies every time
    return plan;
  };
  CampaignOrchestrator orch(spec, cfg);
  const CampaignReport rep = orch.run();

  // Zero checkpoints across two failures is the deterministic-failure
  // signature: quarantined long before the retry budget runs out.
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.quarantined, 1);
  EXPECT_EQ(rep.finished, 1);
  EXPECT_EQ(rep.runs[0].phase, RunPhase::kQuarantined);
  EXPECT_EQ(rep.runs[0].failures, 2);
  EXPECT_EQ(rep.runs[1].phase, RunPhase::kFinished);
  EXPECT_EQ(rep.runs[1].report.attempts, 1);  // the healthy run untouched

  const std::vector<JournalEntry> es = journal_of(root);
  expect_lifecycle(es, "s1", "quarantined");
  expect_lifecycle(es, "s2", "finished");
  const int q = index_of(es, "quarantined", "s1");
  ASSERT_GE(q, 0);
  EXPECT_NE(es[static_cast<std::size_t>(q)].detail.find(
                "deterministic failure suspected"),
            std::string::npos)
      << es[static_cast<std::size_t>(q)].detail;
  fs::remove_all(root);
}

// ---- elastic reallocation: shrink-freed ranks grant a queued run -----------

TEST(Campaign, ShrinkFreedCapacityIsRegrantedToQueuedRun) {
  const std::string root = fresh_root("hacc_campaign_shrink");
  CampaignSpec spec;
  spec.base = campaign_base_config();
  spec.seeds = {1, 2};
  spec.width = 4;
  // Heterogeneous fleet: s1 wants the whole pool, s2 fits in one rank —
  // s2 can only ever launch out of capacity s1 gives back.
  spec.tweak = [](RunSpec& r) {
    if (r.name == "s2") r.width = 1;
  };

  std::mutex cap_mu;
  std::map<std::string, RunCapture> caps;
  CampaignConfig cfg;
  cfg.root_dir = root;
  cfg.fleet_ranks = 4;
  cfg.max_concurrent_runs = 2;
  cfg.supervisor_retries = 1;  // the shrink happens inside s1's launch
  cfg.elastic.rule = core::ElasticRule::kShrinkByFailed;
  cfg.elastic.min_ranks = 1;
  cfg.max_momentum_drift = 1e-2;
  cfg.on_run_finished = capture_into(cap_mu, caps);
  cfg.fault_plans = [](const RunSpec& r) -> std::shared_ptr<comm::FaultPlan> {
    if (r.name != "s1") return nullptr;
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->kill_at_step(/*rank=*/3, /*step=*/2);  // one node dies once
    return plan;
  };
  CampaignOrchestrator orch(spec, cfg);
  const CampaignReport rep = orch.run();

  EXPECT_TRUE(rep.completed) << rep.runs[0].last_error;
  EXPECT_EQ(rep.finished, 2);
  EXPECT_EQ(rep.runs[0].report.shrinks, 1);
  EXPECT_EQ(rep.runs[0].report.final_width, 3);
  // The shed rank went back to the pool and s2's grant consumed it.
  EXPECT_EQ(rep.shrink_reclaimed, 1);
  EXPECT_GE(rep.shrink_regrant_ranks, 1);

  const std::vector<JournalEntry> es = journal_of(root);
  const int reclaim = index_of(es, "reclaim", "s1");
  ASSERT_GE(reclaim, 0);
  EXPECT_NE(es[static_cast<std::size_t>(reclaim)].detail.find(
                "elastic shrink 4 -> 3"),
            std::string::npos);
  const int regrant = index_of(es, "grant", "s2");
  ASSERT_GE(regrant, 0);
  EXPECT_GT(regrant, reclaim);  // s2 could not launch before the reclaim
  EXPECT_NE(es[static_cast<std::size_t>(regrant)].detail.find(
                "shrink-reclaimed capacity"),
            std::string::npos)
      << es[static_cast<std::size_t>(regrant)].detail;

  // Conservation on both sides: the shrunken run and the width-1 run.
  for (const auto& [name, cap] : caps) {
    EXPECT_TRUE(cap.health.finite) << name;
    EXPECT_TRUE(cap.health.counts_ok()) << name;
  }
  fs::remove_all(root);
}

// ---- concurrent chaos: faults in one run never leak into another -----------

TEST(Campaign, ConcurrentRunsIsolateFaults) {
  const std::string root = fresh_root("hacc_campaign_isolation");
  CampaignSpec spec;
  spec.base = campaign_base_config();
  spec.seeds = {21, 22};  // s21 chaotic, s22 clean — running side by side
  spec.width = 2;

  std::mutex cap_mu;
  std::map<std::string, RunCapture> caps;
  CampaignConfig cfg;
  cfg.root_dir = root;
  cfg.fleet_ranks = 4;
  cfg.max_concurrent_runs = 2;
  cfg.supervisor_retries = 2;
  cfg.max_momentum_drift = 1e-2;
  cfg.machine.verify_payloads = true;
  cfg.machine.recv_timeout_s = 60;
  cfg.on_run_finished = capture_into(cap_mu, caps);
  cfg.fault_plans = [](const RunSpec& r) -> std::shared_ptr<comm::FaultPlan> {
    if (r.name != "s21") return nullptr;
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->kill_at_step(/*rank=*/1, /*step=*/2);
    plan->corrupt_send(/*rank=*/0, comm::fault::kAnyTag, /*nth=*/40);
    return plan;
  };
  CampaignOrchestrator orch(spec, cfg);
  const CampaignReport rep = orch.run();

  EXPECT_TRUE(rep.completed) << rep.runs[0].last_error;
  EXPECT_EQ(rep.finished, 2);
  // The chaotic run needed recovery; the clean run never noticed.
  EXPECT_GE(rep.runs[0].report.attempts, 2);
  EXPECT_GE(rep.runs[0].report.restores, 1);
  EXPECT_EQ(rep.runs[1].report.attempts, 1);
  EXPECT_EQ(rep.runs[1].report.restores, 0);

  // Both runs end conservation-clean, and the clean run matches its
  // reference exactly as if it had run alone.
  for (const auto& [name, cap] : caps) {
    EXPECT_TRUE(cap.health.finite) << name;
    EXPECT_TRUE(cap.health.counts_ok()) << name;
    EXPECT_EQ(cap.health.active, 12u * 12u * 12u) << name;
  }
  SimulationConfig ref_cfg = spec.base;
  ref_cfg.seed = 22;
  const FinalState ref = reference_run(ref_cfg, spec.cosmo, 2);
  expect_state_close(ref, caps.at("s22").state, 16.0f, 1e-4f, 1e-4f);
  expect_pk_close(ref.pk, caps.at("s22").state.pk, 1e-6);
  fs::remove_all(root);
}

// ---- acceptance: 8-run seeded chaos sweep across an orchestrator kill ------

TEST(Campaign, EightRunChaosSweepSurvivesOrchestratorKillMidFlight) {
  const std::string root = fresh_root("hacc_campaign_acceptance");
  CampaignSpec spec;
  spec.base = campaign_base_config();
  spec.seeds = {11, 12, 13, 14};
  cosmology::Cosmology wcdm;
  wcdm.w = -0.9;
  spec.cosmologies = {{"", cosmology::Cosmology{}}, {"w9", wcdm}};
  spec.width = 2;
  // s11 wants the whole fleet (and will shed a rank); s11_w9 fits in the
  // one rank that shrink frees — a guaranteed shrink-regrant.
  spec.tweak = [](RunSpec& r) {
    if (r.name == "s11") r.width = 4;
    if (r.name == "s11_w9") r.width = 1;
  };
  // Expansion order: s11, s11_w9, s12, s12_w9, s13, s13_w9, s14, s14_w9.

  std::mutex cap_mu;
  std::map<std::string, RunCapture> caps;
  auto base_cfg = [&] {
    CampaignConfig cfg;
    cfg.root_dir = root;
    cfg.fleet_ranks = 4;
    cfg.max_concurrent_runs = 4;
    cfg.run_retries = 2;
    cfg.supervisor_retries = 1;
    cfg.elastic.rule = core::ElasticRule::kShrinkByFailed;
    cfg.elastic.min_ranks = 1;
    cfg.max_momentum_drift = 1e-2;
    cfg.machine.verify_payloads = true;
    cfg.machine.recv_timeout_s = 60;
    cfg.on_run_finished = capture_into(cap_mu, caps);
    return cfg;
  };

  // Phase 1: mixed seeded faults — a rank death that shrinks s11, a
  // repeated kill that fails s12's whole launch (with checkpoints), an
  // in-transit payload corruption on s12_w9 — then the orchestrator is
  // killed after its 4th grant.
  {
    CampaignConfig cfg = base_cfg();
    cfg.max_launches = 4;
    cfg.fault_plans =
        [](const RunSpec& r) -> std::shared_ptr<comm::FaultPlan> {
      auto plan = std::make_shared<comm::FaultPlan>();
      if (r.name == "s11") {
        plan->kill_at_step(/*rank=*/3, /*step=*/2);
      } else if (r.name == "s12") {
        // Fires in both attempts of the launch: the launch itself fails,
        // leaving verified checkpoints for the post-restart resume.
        plan->kill_at_step(/*rank=*/0, /*step=*/3).repeat(2);
      } else if (r.name == "s12_w9") {
        plan->corrupt_send(/*rank=*/0, comm::fault::kAnyTag, /*nth=*/25);
      } else {
        return nullptr;
      }
      return plan;
    };
    CampaignOrchestrator orch(spec, cfg);
    const CampaignReport rep = orch.run();

    EXPECT_TRUE(rep.interrupted);
    EXPECT_FALSE(rep.completed);
    EXPECT_EQ(rep.launched, 4);  // s11, s11_w9, s12, s12_w9
    EXPECT_GE(rep.shrink_reclaimed, 1);
    EXPECT_GE(rep.shrink_regrant_ranks, 1);  // s11_w9 ran on the shed rank
    std::map<std::string, RunPhase> phases;
    for (const RunStatus& st : rep.runs) phases[st.spec.name] = st.phase;
    EXPECT_EQ(phases.at("s11"), RunPhase::kFinished);
    EXPECT_EQ(phases.at("s11_w9"), RunPhase::kFinished);
    EXPECT_EQ(phases.at("s12"), RunPhase::kQueued);  // failed, checkpointed
    EXPECT_EQ(phases.at("s12_w9"), RunPhase::kFinished);
    EXPECT_EQ(phases.at("s13"), RunPhase::kQueued);  // never launched
    EXPECT_EQ(phases.at("s14_w9"), RunPhase::kQueued);
  }

  // Phase 2: restart on the same root. The replay skips the three finished
  // runs; s12 resumes from its newest verified checkpoint; s13 takes a
  // silent memory corruption (audits catch it, rollback repairs it);
  // s13_w9 is a poisoned config that must be quarantined; s14 rides
  // through a benign recv stall.
  CampaignConfig cfg2 = base_cfg();
  cfg2.fault_plans = [](const RunSpec& r) -> std::shared_ptr<comm::FaultPlan> {
    auto plan = std::make_shared<comm::FaultPlan>();
    if (r.name == "s13") {
      plan->flip_bits_in_particles(/*rank=*/0, /*step=*/2, /*nbits=*/1);
    } else if (r.name == "s13_w9") {
      plan->kill_at_step(/*rank=*/0, /*step=*/1).repeat(-1);
    } else if (r.name == "s14") {
      plan->stall_recv(/*rank=*/1, /*seconds=*/0.05, /*nth=*/3);
    } else {
      return nullptr;
    }
    return plan;
  };
  CampaignOrchestrator orch2(spec, cfg2);
  const CampaignReport rep2 = orch2.run();

  EXPECT_TRUE(rep2.completed);
  EXPECT_FALSE(rep2.interrupted);
  EXPECT_EQ(rep2.replay_skipped, 3);
  EXPECT_EQ(rep2.finished, 7);
  EXPECT_EQ(rep2.quarantined, 1);
  EXPECT_EQ(rep2.launched, 6);  // s12, s13, s13_w9 x2, s14, s14_w9
  std::map<std::string, const RunStatus*> by_name;
  for (const RunStatus& st : rep2.runs) by_name[st.spec.name] = &st;
  EXPECT_TRUE(by_name.at("s11")->replayed_terminal);
  EXPECT_EQ(by_name.at("s13_w9")->phase, RunPhase::kQuarantined);
  EXPECT_EQ(by_name.at("s13_w9")->failures, 2);
  EXPECT_GE(by_name.at("s13")->report.rollbacks, 1);  // SDC repaired in place
  EXPECT_GE(by_name.at("s12")->report.restores, 1);   // resumed, not re-run

  // Journal: the full per-run event ordering holds across both processes.
  const std::vector<JournalEntry> es = journal_of(root);
  for (const char* name :
       {"s11", "s11_w9", "s12", "s12_w9", "s13", "s14", "s14_w9"})
    expect_lifecycle(es, name, "finished");
  expect_lifecycle(es, "s13_w9", "quarantined");

  const int restart = index_of(es, "orchestrator_start", "",
                               index_of(es, "orchestrator_start", "") + 1);
  ASSERT_GT(restart, 0);
  // Finished work is never repeated after replay.
  for (const char* name : {"s11", "s11_w9", "s12_w9"}) {
    EXPECT_EQ(count_of(es, "started", name), 1) << name;
    EXPECT_EQ(index_of(es, "started", name, restart), -1) << name;
  }
  // The interrupted run resumed from mid-campaign state.
  const int s12_restarted = index_of(es, "started", "s12", restart);
  ASSERT_GE(s12_restarted, 0);
  EXPECT_NE(es[static_cast<std::size_t>(s12_restarted)].detail.find(
                "resume from newest verified checkpoint"),
            std::string::npos);
  const int s12_restore = index_of(es, "restore", "s12", restart);
  ASSERT_GE(s12_restore, 0);
  EXPECT_GE(es[static_cast<std::size_t>(s12_restore)].step, 1);
  // At least one shrink-freed width grant is recorded, by name.
  bool regranted = false;
  for (const JournalEntry& e : es)
    if (e.event == "grant" &&
        e.detail.find("shrink-reclaimed capacity") != std::string::npos)
      regranted = true;
  EXPECT_TRUE(regranted);
  EXPECT_GE(count_of(es, "reclaim", "s11"), 1);
  // The silent corruption was detected and repaired, audibly.
  EXPECT_GE(count_of(es, "sdc_detected", "s13"), 1);
  EXPECT_GE(count_of(es, "rollback", "s13"), 1);

  // Physics: every non-quarantined run is conservation-clean, and the
  // sweep's mass is identical across runs (same loading in every variant).
  ASSERT_EQ(caps.size(), 7u);
  const double mass0 = caps.begin()->second.state.mass_sum;
  for (const auto& [name, cap] : caps) {
    EXPECT_TRUE(cap.health.finite) << name;
    EXPECT_TRUE(cap.health.counts_ok()) << name;
    EXPECT_EQ(cap.health.active, 12u * 12u * 12u) << name;
    EXPECT_NEAR(cap.state.mass_sum, mass0, 1e-9 * std::fabs(mass0)) << name;
  }
  // Spot-check a clean run of the second process against its reference.
  SimulationConfig ref_cfg = spec.base;
  ref_cfg.seed = 14;
  const FinalState ref = reference_run(ref_cfg, wcdm, 2);
  expect_state_close(ref, caps.at("s14_w9").state, 16.0f, 1e-4f, 1e-4f);
  expect_pk_close(ref.pk, caps.at("s14_w9").state.pk, 1e-6);
  fs::remove_all(root);
}

}  // namespace
}  // namespace hacc::campaign
