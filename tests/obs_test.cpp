// Tests for the observability subsystem: tracer ring + Chrome JSON export,
// counter registry and kinds, thread binding, cross-rank reduction, the
// per-step run ledger, and the end-to-end Simulation::run acceptance
// criteria (ledger phase coverage, merged trace validity).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

// ---- allocation counting ----------------------------------------------------
//
// Replacement global operator new/delete that count allocations while armed.
// Used to prove the disabled/unbound observability paths never allocate —
// the "<2% overhead when off" contract is enforced structurally: no
// allocation, no lock, just a thread-local load and a branch.
namespace alloc_hook {
std::atomic<bool> armed{false};
std::atomic<std::size_t> count{0};

void note() {
  if (armed.load(std::memory_order_relaxed))
    count.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace alloc_hook

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  alloc_hook::note();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  alloc_hook::note();
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#include "comm/comm.h"
#include "core/simulation.h"
#include "obs/costmap.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/reduce.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "tree/force_matcher.h"
#include "tree/particles.h"
#include "tree/rcb_tree.h"
#include "util/names.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hacc::obs {
namespace {

// ---- a minimal JSON validator ----------------------------------------------
//
// Enough of RFC 8259 to prove the exported traces and ledger lines are
// well-formed without a JSON library: values, objects, arrays, strings with
// escapes, numbers, literals. Returns true iff the whole input is one valid
// JSON value (plus surrounding whitespace).
class JsonValidator {
 public:
  static bool valid(std::string_view text) {
    JsonValidator v(text);
    return v.value() && (v.skip_ws(), v.pos_ == text.size());
  }

 private:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(text_[pos_]))
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(text_[pos_]) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      if (eat('}')) return true;
      do {
        skip_ws();
        if (!string() || !eat(':') || !value()) return false;
      } while (eat(','));
      return eat('}');
    }
    if (c == '[') {
      ++pos_;
      if (eat(']')) return true;
      do {
        if (!value()) return false;
      } while (eat(','));
      return eat(']');
    }
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(Json, EscapeAndNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_TRUE(JsonValidator::valid("\"" + json_escape("\x01\t weird") + "\""));
  EXPECT_TRUE(JsonValidator::valid(json_number(1.25e-9)));
  EXPECT_EQ(json_number(std::nan("")), "0");  // non-finite must stay valid
}

TEST(Names, InternIsIdempotentAndStable) {
  const NameId a = intern_name("obs-test-phase");
  const NameId b = intern_name("obs-test-phase");
  EXPECT_EQ(a, b);
  EXPECT_EQ(name_of(a), "obs-test-phase");
  EXPECT_NE(a, intern_name("obs-test-other"));
}

// ---- tracer -----------------------------------------------------------------

TEST(Tracer, RecordsCompleteAndInstantEventsInOrder) {
  Tracer t(64);
  t.set_enabled(true);
  const NameId na = intern_name("trc-a"), nb = intern_name("trc-b");
  t.complete(na, 1000, 500);
  t.instant(nb);
  t.complete(nb, 2000, 100);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, na);
  EXPECT_EQ(events[0].type, Tracer::Type::kComplete);
  EXPECT_EQ(events[0].ts_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 500u);
  EXPECT_EQ(events[1].type, Tracer::Type::kInstant);
  EXPECT_EQ(events[2].ts_ns, 2000u);
  EXPECT_EQ(t.recorded(), 3u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t(64);
  t.complete(intern_name("trc-x"), 0, 1);
  t.instant(intern_name("trc-x"));
  EXPECT_TRUE(t.snapshot().empty());
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(Tracer, RingKeepsTheMostRecentEvents) {
  Tracer t(4);
  t.set_enabled(true);
  const NameId n = intern_name("trc-ring");
  for (std::uint64_t i = 0; i < 10; ++i) t.complete(n, i, 1);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: timestamps 6,7,8,9 survive.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].ts_ns, 6 + i);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
}

TEST(Tracer, ThreadsGetDistinctDenseTids) {
  Tracer t;
  t.set_enabled(true);
  const NameId n = intern_name("trc-threads");
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&] { t.complete(n, 0, 1); });
  for (auto& th : threads) th.join();
  t.complete(n, 0, 1);  // this thread too
  std::set<std::uint32_t> tids;
  for (const auto& e : t.snapshot()) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 5u);
  for (std::uint32_t tid : tids) EXPECT_LT(tid, 5u);  // dense indices
}

TEST(Tracer, ExportsValidChromeTraceJson) {
  Tracer t;
  t.set_enabled(true);
  t.complete(intern_name("span \"quoted\""), 1500, 2500);
  t.instant(intern_name("marker"));
  const std::string json = "[" + t.events_json(/*pid=*/7) + "]";
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);

  const std::string path = temp_path("obs_single_trace.json");
  t.write_chrome_trace(path, /*pid=*/3);
  const std::string body = read_file(path);
  EXPECT_TRUE(JsonValidator::valid(body)) << body;
  std::remove(path.c_str());
}

TEST(Tracer, ConcurrentRecordingProducesValidJson) {
  Tracer t;
  t.set_enabled(true);
  const NameId n = intern_name("trc-race");
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 200; ++i)
        t.complete(n, static_cast<std::uint64_t>(w * 1000 + i), 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.recorded(), 800u);
  EXPECT_TRUE(JsonValidator::valid("[" + t.events_json(0) + "]"));
}

// ---- counters ---------------------------------------------------------------

TEST(Counters, AddSetValueSnapshot) {
  Counters c;
  const NameId ctr = counter_id("obs-test.ctr");
  const NameId g = gauge_id("obs-test.gauge");
  c.add(ctr, 3);
  c.add(ctr, 4);
  c.set(g, 99);
  c.set(g, 42);
  EXPECT_EQ(c.value(ctr), 7u);
  EXPECT_EQ(c.value(g), 42u);
  EXPECT_EQ(kind_of(ctr), CounterKind::kCounter);
  EXPECT_EQ(kind_of(g), CounterKind::kGauge);

  bool saw_ctr = false;
  for (const auto& s : c.snapshot()) {
    if (s.id == ctr) {
      saw_ctr = true;
      EXPECT_EQ(s.value, 7u);
    }
  }
  EXPECT_TRUE(saw_ctr);
  c.clear();
  EXPECT_EQ(c.value(ctr), 0u);
}

TEST(Counters, ConcurrentAddsDoNotLoseCounts) {
  Counters c;
  const NameId ctr = counter_id("obs-test.race");
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) c.add(ctr, 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(ctr), 80000u);
}

// ---- binding + zero-allocation disabled paths -------------------------------

TEST(Binding, NestsAndRestores) {
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(counters(), nullptr);
  Tracer t1, t2;
  Counters c1;
  {
    Binding outer(&t1, &c1);
    EXPECT_EQ(tracer(), &t1);
    EXPECT_EQ(counters(), &c1);
    {
      Binding inner(&t2, nullptr);
      EXPECT_EQ(tracer(), &t2);
      EXPECT_EQ(counters(), nullptr);
    }
    EXPECT_EQ(tracer(), &t1);
    EXPECT_EQ(counters(), &c1);
  }
  EXPECT_EQ(tracer(), nullptr);
}

TEST(Binding, TimerScopesFeedTheBoundTracer) {
  Tracer t;
  t.set_enabled(true);
  TimerRegistry reg;
  const NameId phase = intern_name("obs-test.hook-phase");
  {
    Binding binding(&t, nullptr);
    auto scope = reg.scope(phase);
  }
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, phase);
  EXPECT_EQ(events[0].type, Tracer::Type::kComplete);
  EXPECT_GT(reg.total(phase), 0.0);

  // Outside the binding the same scope records time but no events.
  { auto scope = reg.scope(phase); }
  EXPECT_EQ(t.snapshot().size(), 1u);
}

TEST(Observability, DisabledPathsAllocateNothing) {
  const NameId phase = intern_name("obs-test.noalloc");
  const NameId ctr = counter_id("obs-test.noalloc.ctr");
  Tracer t;  // disabled
  Counters c;
  TimerRegistry reg;
  { auto warm = reg.scope(phase); }  // grow the registry's entry table once
  c.add(ctr, 1);

  // Unbound: TraceScope / add_counter / timer scopes must be free.
  alloc_hook::count.store(0);
  alloc_hook::armed.store(true);
  for (int i = 0; i < 1000; ++i) {
    TraceScope trace(phase);
    add_counter(ctr, 7);
    set_gauge(ctr, 7);
    auto scope = reg.scope(phase);
  }
  alloc_hook::armed.store(false);
  EXPECT_EQ(alloc_hook::count.load(), 0u);

  // Bound but tracing disabled: counters hit atomics, tracer drops events —
  // still no allocation.
  Binding binding(&t, &c);
  alloc_hook::count.store(0);
  alloc_hook::armed.store(true);
  for (int i = 0; i < 1000; ++i) {
    TraceScope trace(phase);
    add_counter(ctr, 7);
    auto scope = reg.scope(phase);
  }
  alloc_hook::armed.store(false);
  EXPECT_EQ(alloc_hook::count.load(), 0u);

  // Bound and *enabled*: the preallocated ring still records without
  // allocating per event.
  t.set_enabled(true);
  alloc_hook::count.store(0);
  alloc_hook::armed.store(true);
  for (int i = 0; i < 1000; ++i) {
    TraceScope trace(phase);
    add_counter(ctr, 7);
  }
  alloc_hook::armed.store(false);
  EXPECT_EQ(alloc_hook::count.load(), 0u);
}

TEST(Observability, PeakRssIsReported) {
  EXPECT_GT(peak_rss_bytes(), 0u);
}

// ---- cross-rank reduction ---------------------------------------------------

TEST(Reduce, CounterReduceAcrossFourRanksIsExact) {
  const NameId everyone = counter_id("obs-test.reduce.everyone");
  const NameId only0 = counter_id("obs-test.reduce.only0");
  comm::Machine::run(4, [&](comm::Comm& c) {
    Counters mine;
    mine.add(everyone, static_cast<std::uint64_t>(c.rank()) + 1);  // 1,2,3,4
    if (c.rank() == 0) mine.add(only0, 8);
    const auto rows = reduce_counters(c, mine);
    if (c.rank() != 0) {
      EXPECT_TRUE(rows.empty());
      return;
    }
    const Reduced* ev = nullptr;
    const Reduced* o0 = nullptr;
    for (const auto& r : rows) {
      if (r.name == everyone) ev = &r;
      if (r.name == only0) o0 = &r;
    }
    ASSERT_NE(ev, nullptr);
    EXPECT_DOUBLE_EQ(ev->min, 1.0);
    EXPECT_DOUBLE_EQ(ev->max, 4.0);
    EXPECT_DOUBLE_EQ(ev->sum, 10.0);
    EXPECT_DOUBLE_EQ(ev->mean, 2.5);
    EXPECT_DOUBLE_EQ(ev->imbalance(), 1.6);
    // A value only one rank reports: the other ranks contribute zero.
    ASSERT_NE(o0, nullptr);
    EXPECT_DOUBLE_EQ(o0->min, 0.0);
    EXPECT_DOUBLE_EQ(o0->max, 8.0);
    EXPECT_DOUBLE_EQ(o0->mean, 2.0);
    EXPECT_DOUBLE_EQ(o0->imbalance(), 4.0);
  });
}

TEST(Reduce, TimerReduceSortsByDescendingMean) {
  const NameId big = intern_name("obs-test.reduce.big");
  const NameId small = intern_name("obs-test.reduce.small");
  comm::Machine::run(3, [&](comm::Comm& c) {
    TimerRegistry reg;
    reg.add(big, 10.0 + c.rank());
    reg.add(small, 0.5);
    const auto rows = reduce_timers(c, reg);
    if (c.rank() != 0) return;
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, big);
    EXPECT_DOUBLE_EQ(rows[0].min, 10.0);
    EXPECT_DOUBLE_EQ(rows[0].max, 12.0);
    EXPECT_DOUBLE_EQ(rows[0].mean, 11.0);
    EXPECT_EQ(rows[1].name, small);
    EXPECT_DOUBLE_EQ(rows[1].imbalance(), 1.0);
  });
}

TEST(Reduce, MergedTraceCarriesEveryRankAsAPid) {
  const std::string path = temp_path("obs_merged_trace.json");
  const NameId n = intern_name("obs-test.merged");
  comm::Machine::run(4, [&](comm::Comm& c) {
    Tracer t;
    t.set_enabled(true);
    for (int i = 0; i <= c.rank(); ++i)
      t.complete(n, static_cast<std::uint64_t>(i) * 1000, 10);
    write_merged_trace(c, t, path);
  });
  const std::string body = read_file(path);
  ASSERT_FALSE(body.empty());
  EXPECT_TRUE(JsonValidator::valid(body)) << body.substr(0, 200);
  for (int pid = 0; pid < 4; ++pid) {
    EXPECT_NE(body.find("\"pid\":" + std::to_string(pid)), std::string::npos)
        << "rank " << pid << " missing from merged trace";
  }
  std::remove(path.c_str());
}

// ---- ledger -----------------------------------------------------------------

TEST(Ledger, PaperBreakdownRollsUpPhases) {
  std::map<std::string, PhaseStat> phases;
  auto put = [&](const char* name, double mean) {
    PhaseStat s;
    s.mean = mean;
    phases[name] = s;
  };
  put("sr-kernel", 8.0);
  put("tree-build", 1.0);
  put("poisson.fft", 0.5);
  put("cic", 0.2);
  put("lr-kick", 0.1);
  put("refresh", 0.4);
  put("grid-exchange", 0.3);
  put("poisson.remap", 0.2);
  const auto b = paper_breakdown(phases, /*wall_mean=*/11.0);
  EXPECT_DOUBLE_EQ(b.at("kernel"), 8.0);
  EXPECT_DOUBLE_EQ(b.at("walk_build"), 1.0);
  EXPECT_DOUBLE_EQ(b.at("fft"), 0.5);
  EXPECT_DOUBLE_EQ(b.at("cic"), 0.3);
  EXPECT_DOUBLE_EQ(b.at("refresh"), 0.4);
  EXPECT_DOUBLE_EQ(b.at("comm"), 0.5);
  EXPECT_NEAR(b.at("other"), 11.0 - 10.7, 1e-12);
}

TEST(Ledger, JsonlSchemaRoundTrip) {
  Ledger ledger;
  StepRecord rec;
  rec.step = 3;
  rec.a = 0.5;
  rec.z = 1.0;
  rec.wall = PhaseStat{0.9, 1.0, 1.2, 1.2};
  rec.t_per_substep_per_particle = 1.25e-7;
  rec.momentum = {1.0, -2.0, 3.0};
  rec.momentum_drift = 4.5e-6;
  rec.phases["sr-kernel"] = PhaseStat{0.7, 0.8, 0.9, 1.125};
  rec.counters["comm.alltoall.bytes_sent"] = PhaseStat{100, 150, 200, 1.33};
  rec.breakdown["kernel"] = 0.8;
  rec.peak_rss_bytes = 123456789;
  ledger.append(rec);
  rec.step = 4;
  ledger.append(rec);

  const std::string jsonl = ledger.to_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(JsonValidator::valid(line)) << line;
    for (const char* key :
         {"\"step\"", "\"a\"", "\"z\"", "\"wall_s\"",
          "\"t_per_substep_per_particle\"", "\"momentum\"",
          "\"momentum_drift\"", "\"phases\"", "\"counters\"", "\"breakdown\"",
          "\"peak_rss_bytes\""}) {
      EXPECT_NE(line.find(key), std::string::npos) << key;
    }
  }
  EXPECT_EQ(n, 2);

  const std::string path = temp_path("obs_ledger.jsonl");
  ledger.write_jsonl(path);
  EXPECT_EQ(read_file(path), jsonl);
  std::remove(path.c_str());

  std::ostringstream table;
  ledger.print_phase_table(table);
  EXPECT_NE(table.str().find("sr-kernel"), std::string::npos);
}

// ---- end-to-end: Simulation::run produces the run ledger --------------------

TEST(SimulationLedger, FourRankRunWritesLedgerAndTrace) {
  const std::string ledger_path = temp_path("obs_sim_ledger.jsonl");
  const std::string trace_path = temp_path("obs_sim_trace.json");
  core::SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.steps = 2;
  cfg.subcycles = 2;
  cfg.overload = 2.0;
  cfg.ledger_path = ledger_path;
  cfg.trace_path = trace_path;
  cosmology::Cosmology cosmo;
  comm::Machine::run(4, [&](comm::Comm& c) {
    core::Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
    if (c.rank() != 0) {
      EXPECT_TRUE(sim.ledger().empty());
      return;
    }
    const auto& records = sim.ledger().records();
    ASSERT_EQ(records.size(), 2u);
    const double np_total = std::pow(static_cast<double>(cfg.particles_per_dim), 3);
    for (const auto& rec : records) {
      EXPECT_GT(rec.wall.mean, 0.0);
      EXPECT_GE(rec.wall.max, rec.wall.mean);
      EXPECT_GE(rec.wall.mean, rec.wall.min);
      EXPECT_GE(rec.wall.imbalance, 1.0);
      // Acceptance: the top-level phases account for the step wall. The
      // structural property under test is that the instrumented phases nest
      // inside "step" and cover it — but the COVERAGE ratio is load-
      // sensitive (on an oversubscribed CI host, scheduler preemption
      // between phase scopes inflates the untimed gaps), so the floor is a
      // generous default that HACC_OBS_PHASE_COVERAGE can tighten on quiet
      // machines (e.g. 0.9 for the paper-style run).
      const char* cov_env = std::getenv("HACC_OBS_PHASE_COVERAGE");
      const double min_coverage = cov_env != nullptr ? std::atof(cov_env) : 0.5;
      double phase_sum = 0;
      for (const char* phase :
           {"cic", "grid-exchange", "poisson", "lr-kick", "stream",
            "tree-build", "sr-kernel", "refresh"}) {
        auto it = rec.phases.find(phase);
        if (it != rec.phases.end()) phase_sum += it->second.mean;
      }
      EXPECT_GT(phase_sum, 0.0);
      EXPECT_GE(phase_sum, min_coverage * rec.wall.mean);
      EXPECT_LE(phase_sum, 1.02 * rec.wall.mean);  // phases nest inside step
      // Table II's invariant is wall/subcycles/np^3.
      EXPECT_NEAR(rec.t_per_substep_per_particle,
                  rec.wall.mean / cfg.subcycles / np_total,
                  1e-12 * rec.wall.mean);
      // The instrumented layers fed counters during the step.
      EXPECT_GT(rec.counters.count("tree.pp_interactions"), 0u);
      EXPECT_GT(rec.counters.count("fft.transpose.bytes"), 0u);
      EXPECT_GT(rec.counters.count("comm.alltoall.bytes_sent"), 0u);
      EXPECT_GT(rec.peak_rss_bytes, 0u);
      // The poisson-internal phases arrive prefixed.
      EXPECT_GT(rec.phases.count("poisson.fft"), 0u);
      EXPECT_GT(rec.breakdown.at("kernel"), 0.0);
    }
    // Momentum drift is measured against the first step's momentum.
    EXPECT_DOUBLE_EQ(records[0].momentum_drift, 0.0);
  });

  // Ledger file: one valid JSON object per line; exactly one step record
  // per step (costmap and anomaly lines may interleave — see
  // SimulationObservatory below for their schema).
  const std::string jsonl = read_file(ledger_path);
  ASSERT_FALSE(jsonl.empty());
  std::istringstream lines(jsonl);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonValidator::valid(line)) << line.substr(0, 120);
    if (line.find("\"wall_s\"") != std::string::npos) ++n;
  }
  EXPECT_EQ(n, 2);

  // Merged trace: a valid Chrome trace array with all four ranks as pids
  // and at least one complete event.
  const std::string trace = read_file(trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(JsonValidator::valid(trace)) << trace.substr(0, 200);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  for (int pid = 0; pid < 4; ++pid)
    EXPECT_NE(trace.find("\"pid\":" + std::to_string(pid)), std::string::npos);
  std::remove(ledger_path.c_str());
  std::remove(trace_path.c_str());
}

// ---- metrics core: histograms + Prometheus exposition -----------------------

TEST(Metrics, HistogramRecordsCountSumAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_ns(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
  for (int i = 0; i < 100; ++i) h.record(1000);   // bucket 9: [512, 1023]... 1000
  for (int i = 0; i < 10; ++i) h.record(1 << 20);  // ~1 ms outliers
  EXPECT_EQ(h.count(), 110u);
  EXPECT_EQ(h.sum_ns(), 100u * 1000 + 10u * (1 << 20));
  EXPECT_NEAR(h.mean_ns(), static_cast<double>(h.sum_ns()) / 110.0, 1e-9);
  // p50 lands in the 1000ns bucket, p99+ in the outlier bucket; the reported
  // value is the bucket's inclusive upper bound.
  EXPECT_LE(h.quantile_ns(0.5), 1023u);
  EXPECT_GE(h.quantile_ns(0.995), static_cast<std::uint64_t>(1 << 20));
  // Monotone in q.
  EXPECT_LE(h.quantile_ns(0.1), h.quantile_ns(0.9));
  // Extremes and zero handling.
  h.record(0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  h.record(~0ULL);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_ns(Histogram::kBuckets - 1), ~0ULL);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ns(), 0u);
}

TEST(Metrics, HistogramSetDropsIdsBeyondSlots) {
  HistogramSet set;
  const NameId in_range = histogram_id("obsx.hist.in_range_ns");
  ASSERT_LT(in_range, HistogramSet::kMaxSlots);
  set.record(in_range, 42);
  EXPECT_EQ(set.find(in_range)->count(), 1u);

  const NameId beyond = static_cast<NameId>(HistogramSet::kMaxSlots + 7);
  set.record(beyond, 42);  // must not crash, must not land anywhere
  EXPECT_EQ(set.find(beyond), nullptr);
  const auto ids = set.nonempty();
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], in_range);
  set.clear();
  EXPECT_TRUE(set.nonempty().empty());
}

TEST(Counters, IdsBeyondSlotsAreSilentlyDropped) {
  Counters c;
  const NameId beyond = static_cast<NameId>(Counters::kMaxSlots + 3);
  c.add(beyond, 17);
  c.set(beyond, 17);
  EXPECT_EQ(c.value(beyond), 0u);
  for (const auto& s : c.snapshot()) EXPECT_LT(s.id, Counters::kMaxSlots);
}

TEST(Counters, KindRegistrationRoundTrips) {
  const NameId ctr = counter_id("obsx.kind.counter");
  const NameId gauge = gauge_id("obsx.kind.gauge");
  const NameId hist = histogram_id("obsx.kind.hist_ns");
  EXPECT_EQ(kind_of(ctr), CounterKind::kCounter);
  EXPECT_EQ(kind_of(gauge), CounterKind::kGauge);
  EXPECT_EQ(kind_of(hist), CounterKind::kHistogram);
  // Idempotent re-registration keeps id and kind.
  EXPECT_EQ(counter_id("obsx.kind.counter"), ctr);
  EXPECT_EQ(gauge_id("obsx.kind.gauge"), gauge);
  EXPECT_EQ(histogram_id("obsx.kind.hist_ns"), hist);
  EXPECT_EQ(kind_of(gauge), CounterKind::kGauge);
  // A plain interned name defaults to counter.
  EXPECT_EQ(kind_of(intern_name("obsx.kind.plain")), CounterKind::kCounter);
}

TEST(Metrics, PrometheusExpositionFormat) {
  Counters counters;
  HistogramSet hists;
  counters.add(counter_id("obsx.prom.bytes"), 1234);
  counters.set(gauge_id("obsx.prom.depth"), 7);
  counters.set(gauge_id("obsx.prom.share_micro"), 250000);  // 0.25 fixed-point
  counters.add(counter_id("phase.obsx-prom.ns"), 5000);
  const NameId hid = histogram_id("obsx.prom.lat_ns");
  hists.record(hid, 3);    // bucket le=3
  hists.record(hid, 3);
  hists.record(hid, 900);  // bucket le=1023

  const MetricsSource src{3, &counters, &hists, ""};
  const std::string text = export_prometheus(std::span<const MetricsSource>(&src, 1));

  // Counter: sanitized name + _total suffix + rank label.
  EXPECT_NE(text.find("# TYPE hacc_obsx_prom_bytes_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("hacc_obsx_prom_bytes_total{rank=\"3\"} 1234"),
            std::string::npos);
  // Gauge: bare name.
  EXPECT_NE(text.find("# TYPE hacc_obsx_prom_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("hacc_obsx_prom_depth{rank=\"3\"} 7"), std::string::npos);
  // _micro gauge: suffix stripped, value scaled to the real number.
  EXPECT_NE(text.find("hacc_obsx_prom_share{rank=\"3\"} 0.25"),
            std::string::npos);
  EXPECT_EQ(text.find("share_micro"), std::string::npos);
  // Phase counters fold into one family with the phase as a label.
  EXPECT_NE(text.find("# TYPE hacc_phase_ns_total counter"), std::string::npos);
  EXPECT_NE(
      text.find("hacc_phase_ns_total{phase=\"obsx-prom\",rank=\"3\"} 5000"),
      std::string::npos);
  // Histogram: cumulative buckets, +Inf terminator, _sum and _count.
  EXPECT_NE(text.find("# TYPE hacc_obsx_prom_lat_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("hacc_obsx_prom_lat_ns_bucket{rank=\"3\",le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hacc_obsx_prom_lat_ns_bucket{rank=\"3\",le=\"1023\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("hacc_obsx_prom_lat_ns_bucket{rank=\"3\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("hacc_obsx_prom_lat_ns_sum{rank=\"3\"} 906"),
            std::string::npos);
  EXPECT_NE(text.find("hacc_obsx_prom_lat_ns_count{rank=\"3\"} 3"),
            std::string::npos);
  // Exactly one # TYPE line per family.
  std::size_t types = 0;
  for (std::size_t pos = text.find("# TYPE hacc_phase_ns_total");
       pos != std::string::npos;
       pos = text.find("# TYPE hacc_phase_ns_total", pos + 1))
    ++types;
  EXPECT_EQ(types, 1u);
}

TEST(Metrics, HubRegistersRendersAndRemoves) {
  Counters c0, c1;
  c0.add(counter_id("obsx.hub.events"), 10);
  c1.add(counter_id("obsx.hub.events"), 20);
  MetricsHub hub;
  const int h0 = hub.add(MetricsSource{0, &c0, nullptr, ""});
  const int h1 = hub.add(MetricsSource{1, &c1, nullptr, ""});
  EXPECT_EQ(hub.size(), 2u);
  std::string text = hub.render();
  EXPECT_NE(text.find("hacc_obsx_hub_events_total{rank=\"0\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("hacc_obsx_hub_events_total{rank=\"1\"} 20"),
            std::string::npos);
  hub.remove(h0);
  EXPECT_EQ(hub.size(), 1u);
  text = hub.render();
  EXPECT_EQ(text.find("rank=\"0\""), std::string::npos);
  EXPECT_NE(text.find("rank=\"1\""), std::string::npos);
  hub.remove(h1);
  EXPECT_EQ(hub.render(), "");
}

// ---- cost attribution --------------------------------------------------------

tree::ParticleArray clustered_particles(std::size_t n, float box,
                                        std::uint64_t seed, bool clustered) {
  tree::ParticleArray p;
  p.reserve(n);
  Philox rng(seed);
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < n; ++i) {
    float x, y, z;
    if (clustered && i % 8 == 0) {
      // One particle in eight in one tight blob — a halo-like hot spot
      // whose leaves evaluate far more pairs than the background's, while
      // the background still dominates the mean leaf cost.
      x = std::clamp(0.5f * box + 0.04f * box * static_cast<float>(s.gaussian()),
                     0.0f, box - 1e-3f);
      y = std::clamp(0.5f * box + 0.04f * box * static_cast<float>(s.gaussian()),
                     0.0f, box - 1e-3f);
      z = std::clamp(0.5f * box + 0.04f * box * static_cast<float>(s.gaussian()),
                     0.0f, box - 1e-3f);
    } else {
      x = static_cast<float>(s.uniform(0, box));
      y = static_cast<float>(s.uniform(0, box));
      z = static_cast<float>(s.uniform(0, box));
    }
    p.push_back(x, y, z, 0.0f, 0.0f, 0.0f, 1.0f, i);
  }
  return p;
}

TEST(CostMap, ClusteredDistributionShowsLeafImbalance) {
  tree::ParticleArray p = clustered_particles(1200, 16.0f, 99, /*clustered=*/true);
  tree::ShortRangeKernel kernel;
  kernel.softening = 0.05f;
  kernel.fgrid = tree::default_fgrid_poly5();
  tree::RcbTree rcb(p, tree::RcbConfig{32});
  std::vector<float> ax(p.size()), ay(p.size()), az(p.size());

  CostMap cost;
  cost.begin_step();
  tree::InteractionStats stats;
  {
    Binding binding(nullptr, nullptr, &cost);
    stats = tree::compute_short_range(rcb, kernel, ax, ay, az);
  }

  // Every evaluated leaf left a record, and the records account for the
  // kernel's own interaction count exactly.
  const auto summary = cost.summarize();
  EXPECT_EQ(summary.leaves, rcb.leaves().size());
  EXPECT_EQ(summary.particles, p.size());
  EXPECT_EQ(summary.interactions, stats.interactions);
  EXPECT_GT(summary.kernel_ns, 0u);
  EXPECT_GE(summary.leaf_imbalance, 1.0);

  // Acceptance: the clustered blob concentrates the pairwise work — the
  // hottest leaf evaluates far more interactions than the mean leaf, and
  // the per-leaf kernel-time distribution is visibly skewed.
  std::uint64_t max_inter = 0;
  for (const auto& leaf : cost.leaves())
    max_inter = std::max(max_inter, leaf.interactions);
  const double mean_inter = static_cast<double>(summary.interactions) /
                            static_cast<double>(summary.leaves);
  EXPECT_GT(static_cast<double>(max_inter), 2.0 * mean_inter);
  EXPECT_GT(summary.leaf_imbalance, 1.2);
  EXPECT_GT(summary.top_decile_share, 0.1);
  EXPECT_GT(summary.ns_per_interaction, 0.0);

  // The same box, uniformly filled, is flatter in interaction terms.
  tree::ParticleArray u = clustered_particles(1200, 16.0f, 99, /*clustered=*/false);
  tree::RcbTree urcb(u, tree::RcbConfig{32});
  std::vector<float> ux(u.size()), uy(u.size()), uz(u.size());
  CostMap ucost;
  ucost.begin_step();
  {
    Binding binding(nullptr, nullptr, &ucost);
    tree::compute_short_range(urcb, kernel, ux, uy, uz);
  }
  std::uint64_t umax = 0;
  std::uint64_t utotal = 0;
  for (const auto& leaf : ucost.leaves()) {
    umax = std::max(umax, leaf.interactions);
    utotal += leaf.interactions;
  }
  const double umean = static_cast<double>(utotal) /
                       static_cast<double>(ucost.size());
  EXPECT_GT(static_cast<double>(max_inter) / mean_inter,
            static_cast<double>(umax) / umean);

  // begin_step drops the previous step's records but keeps working.
  cost.begin_step();
  EXPECT_EQ(cost.size(), 0u);
  EXPECT_EQ(cost.summarize().leaves, 0u);
}

TEST(CostMap, UnboundKernelRecordsNothing) {
  tree::ParticleArray p = clustered_particles(300, 8.0f, 5, false);
  tree::ShortRangeKernel kernel;
  kernel.softening = 0.05f;
  kernel.fgrid = tree::default_fgrid_poly5();
  tree::RcbTree rcb(p, tree::RcbConfig{16});
  std::vector<float> ax(p.size()), ay(p.size()), az(p.size());
  ASSERT_EQ(cost_map(), nullptr);  // no binding on this thread
  tree::compute_short_range(rcb, kernel, ax, ay, az);  // must not crash
}

TEST(Reduce, CostMapReduceNamesStragglerRank) {
  comm::Machine::run(4, [&](comm::Comm& c) {
    CostMap cm;
    cm.begin_step();
    // Rank 2 carries 10x the kernel time of everyone else.
    const std::uint64_t ns = c.rank() == 2 ? 10'000'000 : 1'000'000;
    cm.record(LeafCost{{0, 0, 0}, {1, 1, 1}, 100, 1000, ns});
    const CostMapRecord rec = reduce_cost_map(c, cm.summarize(), /*step=*/7);
    if (c.rank() != 0) {
      EXPECT_EQ(rec.leaves, 0u);  // reduced record lives on root only
      return;
    }
    EXPECT_EQ(rec.step, 7);
    EXPECT_EQ(rec.leaves, 4u);
    EXPECT_EQ(rec.interactions, 4000u);
    EXPECT_NEAR(rec.kernel_s, 13e-3, 1e-9);
    EXPECT_EQ(rec.straggler_rank, 2);
    // max/mean = 10 / (13/4).
    EXPECT_NEAR(rec.rank_kernel_s.imbalance, 40.0 / 13.0, 1e-6);
    EXPECT_NEAR(rec.rank_kernel_s.max, 10e-3, 1e-9);
    EXPECT_NEAR(rec.rank_interactions.imbalance, 1.0, 1e-9);
    EXPECT_NEAR(rec.ns_per_interaction, 13e6 / 4000.0, 1e-6);

    const std::string line = costmap_record_json(rec);
    EXPECT_TRUE(JsonValidator::valid(line)) << line;
    for (const char* key :
         {"\"costmap\"", "\"step\":7", "\"leaves\":4", "\"interactions\":4000",
          "\"kernel_s\"", "\"rank_kernel_s\"", "\"rank_interactions\"",
          "\"leaf_imbalance\"", "\"top_decile_share\"",
          "\"ns_per_interaction\"", "\"straggler_rank\":2"}) {
      EXPECT_NE(line.find(key), std::string::npos) << key;
    }
  });
}

// ---- drift watchdog ----------------------------------------------------------

TEST(Watchdog, FlagsStragglerAndNamesTheRank) {
  Watchdog wd;
  StepRecord rec;
  rec.wall = PhaseStat{1.0, 1.0, 1.0, 1.0};
  EXPECT_TRUE(wd.observe(rec).empty());  // flat run, no anomaly

  rec.wall = PhaseStat{0.5, 1.0, 2.0, 2.0};
  auto anomalies = wd.observe(rec);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "straggler");
  EXPECT_NEAR(anomalies[0].severity, 2.0 / 1.5, 1e-9);

  // The cost map's kernel-time imbalance dominates and names the rank.
  CostMapRecord cost;
  cost.rank_kernel_s = PhaseStat{0.1, 1.0, 3.0, 3.0};
  cost.straggler_rank = 2;
  anomalies = wd.observe(rec, &cost);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_NE(anomalies[0].detail.find("straggler_rank=2"), std::string::npos);
  EXPECT_EQ(wd.anomalies(), 2u);
}

TEST(Watchdog, CalibratesThenFlagsModelDrift) {
  WatchdogConfig cfg;
  cfg.calibration_steps = 2;
  cfg.model_tolerance = 0.75;
  cfg.min_interactions = 100;
  Watchdog wd(cfg);
  StepRecord rec;
  rec.wall = PhaseStat{1.0, 1.0, 1.0, 1.0};
  CostMapRecord cost;
  cost.interactions = 1000;

  cost.ns_per_interaction = 10.0;
  EXPECT_TRUE(wd.observe(rec, &cost).empty());  // calibrating
  cost.ns_per_interaction = 12.0;
  EXPECT_TRUE(wd.observe(rec, &cost).empty());  // calibrating
  EXPECT_DOUBLE_EQ(wd.calibrated_ns_per_interaction(), 11.0);

  cost.ns_per_interaction = 13.0;  // 18% off — inside tolerance
  EXPECT_TRUE(wd.observe(rec, &cost).empty());

  cost.ns_per_interaction = 30.0;  // 173% off — drift
  auto anomalies = wd.observe(rec, &cost);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "model_drift");
  EXPECT_GT(anomalies[0].severity, 1.0);
  EXPECT_NE(anomalies[0].detail.find("ns/interaction"), std::string::npos);

  // Steps too small to time reliably never count, in either direction.
  cost.interactions = 10;
  cost.ns_per_interaction = 500.0;
  EXPECT_TRUE(wd.observe(rec, &cost).empty());
}

TEST(Watchdog, FlagsPhaseCoverageGap) {
  Watchdog wd;
  StepRecord rec;
  rec.wall = PhaseStat{1.0, 1.0, 1.0, 1.0};
  rec.breakdown["other"] = 0.8;  // named phases cover only 20%
  auto anomalies = wd.observe(rec);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "phase_coverage");
  rec.breakdown["other"] = 0.1;
  EXPECT_TRUE(wd.observe(rec).empty());
}

TEST(Watchdog, AnomalyLedgerLineIsValidSchema) {
  Watchdog wd;
  StepRecord rec;
  rec.wall = PhaseStat{0.5, 1.0, 2.0, 2.0};
  const auto anomalies = wd.observe(rec);
  ASSERT_EQ(anomalies.size(), 1u);
  const EventRecord ev = Watchdog::to_event(anomalies[0], /*step=*/5);
  EXPECT_EQ(ev.kind, "anomaly");
  const std::string line = event_record_json(ev);
  EXPECT_TRUE(JsonValidator::valid(line)) << line;
  EXPECT_NE(line.find("\"event\":\"anomaly\""), std::string::npos);
  EXPECT_NE(line.find("\"step\":5"), std::string::npos);
  EXPECT_NE(line.find("straggler"), std::string::npos);

  // Streamed through a ledger file it stays one valid JSONL line.
  const std::string path = temp_path("obs_anomaly.jsonl");
  Ledger::append_event_to(path, ev);
  const std::string contents = read_file(path);
  EXPECT_EQ(contents, line + "\n");
  std::remove(path.c_str());
}

// ---- end-to-end: the observatory over a real 4-rank run ---------------------

TEST(SimulationObservatory, FourRankRunAttributesCostAndPublishesMetrics) {
  const std::string ledger_path = temp_path("obs_observatory_ledger.jsonl");
  core::SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.steps = 2;
  cfg.subcycles = 2;
  cfg.overload = 2.0;
  cfg.ledger_path = ledger_path;
  cosmology::Cosmology cosmo;
  comm::Machine::run(4, [&](comm::Comm& c) {
    core::Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();

    // Every rank published its step-wall histogram and phase gauges.
    const Histogram* wall = sim.histograms().find(histogram_id("step.wall_ns"));
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->count(), 2u);
    EXPECT_GT(sim.counters().value(counter_id("phase.sr-kernel.ns")), 0u);
    EXPECT_GT(sim.counters().value(counter_id("phase.poisson.fft.ns")), 0u);
    // Cost gauges: imbalance is fixed-point micro, >= 1.0 by construction.
    EXPECT_GE(sim.counters().value(gauge_id("cost.leaf_imbalance_micro")),
              1000000u);
    EXPECT_GT(sim.counters().value(gauge_id("cost.kernel_ns")), 0u);

    // A rank is a renderable /metrics source.
    const MetricsSource src{c.rank(), &sim.counters(), &sim.histograms(),
                            ""};
    const std::string text =
        export_prometheus(std::span<const MetricsSource>(&src, 1));
    EXPECT_NE(text.find("hacc_phase_ns_total{phase=\"sr-kernel\""),
              std::string::npos);
    EXPECT_NE(text.find("hacc_cost_leaf_imbalance{"), std::string::npos);
    EXPECT_NE(text.find("hacc_step_wall_ns_bucket{"), std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);

    if (c.rank() != 0) return;
    // Root: the reduced cost map was ledgered every step.
    const auto& costmaps = sim.ledger().costmaps();
    ASSERT_EQ(costmaps.size(), 2u);
    for (const auto& cmr : costmaps) {
      EXPECT_GT(cmr.leaves, 0u);
      EXPECT_GT(cmr.interactions, 0u);
      EXPECT_GT(cmr.kernel_s, 0.0);
      EXPECT_GE(cmr.rank_kernel_s.imbalance, 1.0);
      EXPECT_GE(cmr.leaf_imbalance, 1.0);
      EXPECT_GT(cmr.ns_per_interaction, 0.0);
      EXPECT_GE(cmr.straggler_rank, 0);
      EXPECT_LT(cmr.straggler_rank, 4);
    }
  });

  // The ledger file carries both step and costmap lines, all valid JSON.
  const std::string jsonl = read_file(ledger_path);
  ASSERT_FALSE(jsonl.empty());
  std::istringstream lines(jsonl);
  std::string line;
  int steps = 0, costmaps = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonValidator::valid(line)) << line.substr(0, 120);
    if (line.find("\"costmap\"") != std::string::npos)
      ++costmaps;
    else if (line.find("\"wall_s\"") != std::string::npos)
      ++steps;
  }
  EXPECT_EQ(steps, 2);
  EXPECT_EQ(costmaps, 2);
  std::remove(ledger_path.c_str());
}

}  // namespace
}  // namespace hacc::obs
