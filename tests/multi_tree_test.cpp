// Tests for the Sec.-VI extensions: multiple RCB trees per rank and the
// threaded CIC deposit. The contract for both: identical results to the
// single-tree / serial implementations (up to float summation order).
// Also home of the short-range steady-state allocation gate (this binary
// replaces the global allocator to count, like fft_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <set>

#include "comm/comm.h"
#include "core/simulation.h"
#include "mesh/cic.h"
#include "tree/force_matcher.h"
#include "tree/multi_tree.h"
#include "util/rng.h"

namespace alloc_hook {
std::atomic<bool> armed{false};
std::atomic<std::size_t> count{0};

void note() {
  if (armed.load(std::memory_order_relaxed))
    count.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace alloc_hook

// GCC does not model user-replaced global operators and flags the
// new-from-malloc / delete-to-free pairing, which is exactly the C++
// replacement contract here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  alloc_hook::note();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  alloc_hook::note();
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hacc::tree {
namespace {

ParticleArray random_particles(std::size_t n, float box, std::uint64_t seed) {
  ParticleArray p;
  p.reserve(n);
  Philox rng(seed);
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()), 1.0f, i);
  }
  return p;
}

// ---- sub-range tree builds ----------------------------------------------------

TEST(SubRangeTree, BuildsOnlyTheRangeAndLeavesRestUntouched) {
  ParticleArray p = random_particles(300, 10.0f, 1);
  const auto before = p;  // copy
  RcbTree tree(p, 100, 100, RcbConfig{16});
  // Nodes' index ranges stay within [100, 200).
  for (const auto& n : tree.nodes()) {
    EXPECT_GE(n.first, 100u);
    EXPECT_LE(n.first + n.count, 200u);
  }
  // Particles outside the range are untouched.
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(p.id[i], before.id[i]);
  for (std::size_t i = 200; i < 300; ++i) EXPECT_EQ(p.id[i], before.id[i]);
  // The range itself is a permutation of the original range.
  std::set<std::uint64_t> ids(p.id.begin() + 100, p.id.begin() + 200);
  std::set<std::uint64_t> expect(before.id.begin() + 100,
                                 before.id.begin() + 200);
  EXPECT_EQ(ids, expect);
}

TEST(SubRangeTree, EmptyRangeGivesEmptyTree) {
  ParticleArray p = random_particles(10, 5.0f, 2);
  RcbTree tree(p, 5, 0, RcbConfig{4});
  EXPECT_TRUE(tree.nodes().empty());
}

TEST(ThreePhasePartition, SplitsByCoordinate) {
  ParticleArray p = random_particles(200, 8.0f, 3);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps;
  const std::uint32_t below =
      three_phase_partition(p, 0, 200, /*dim=*/1, 4.0f, swaps);
  for (std::uint32_t i = 0; i < below; ++i) EXPECT_LT(p.y[i], 4.0f);
  for (std::uint32_t i = below; i < 200; ++i) EXPECT_GE(p.y[i], 4.0f);
  EXPECT_TRUE(p.consistent());
}

// ---- MultiTree ------------------------------------------------------------------

class MultiTreeSplits : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Splits, MultiTreeSplits,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST_P(MultiTreeSplits, ForcesMatchSingleTree) {
  const int splits = GetParam();
  ParticleArray p1 = random_particles(1200, 14.0f, 7);
  ParticleArray p2 = p1;
  ShortRangeKernel kernel;
  kernel.softening = 0.05f;
  kernel.fgrid = default_fgrid_poly5();

  RcbTree single(p1, RcbConfig{32});
  std::vector<float> a1x(p1.size()), a1y(p1.size()), a1z(p1.size());
  compute_short_range(single, kernel, a1x, a1y, a1z);

  MultiTree forest(p2, MultiTreeConfig{splits, RcbConfig{32}});
  EXPECT_EQ(forest.trees().size(), 1u << splits);
  std::vector<float> a2x(p2.size()), a2y(p2.size()), a2z(p2.size());
  const auto stats = compute_short_range_multi(forest, kernel, a2x, a2y, a2z);
  EXPECT_EQ(stats.particles, p2.size());

  // Compare by particle id (both builds permute).
  std::vector<std::size_t> slot1(p1.size()), slot2(p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) slot1[p1.id[i]] = i;
  for (std::size_t i = 0; i < p2.size(); ++i) slot2[p2.id[i]] = i;
  double max_err = 0, scale = 0;
  for (std::size_t id = 0; id < p1.size(); ++id) {
    const std::size_t i = slot1[id], j = slot2[id];
    max_err =
        std::max({max_err, std::abs(static_cast<double>(a1x[i] - a2x[j])),
                  std::abs(static_cast<double>(a1y[i] - a2y[j])),
                  std::abs(static_cast<double>(a1z[i] - a2z[j]))});
    scale = std::max(scale, std::abs(static_cast<double>(a1x[i])));
  }
  EXPECT_LT(max_err, 5e-4 * (scale + 1.0)) << "splits=" << splits;
}

TEST(MultiTree, BlocksAreBalanced) {
  ParticleArray p = random_particles(4000, 20.0f, 9);
  MultiTree forest(p, MultiTreeConfig{3, RcbConfig{32}});
  // Midpoint splits of a uniform set: no tree should dominate.
  EXPECT_LT(forest.build_imbalance(), 2.0);
  // Every particle in exactly one tree.
  std::size_t total = 0;
  for (const auto& t : forest.trees()) {
    if (!t.nodes().empty()) total += t.nodes().front().count;
  }
  EXPECT_EQ(total, p.size());
}

TEST(MultiTree, CoincidentParticlesDegradeGracefully) {
  ParticleArray p;
  for (int i = 0; i < 64; ++i)
    p.push_back(1.0f, 1.0f, 1.0f, 0, 0, 0, 1.0f,
                static_cast<std::uint64_t>(i));
  MultiTree forest(p, MultiTreeConfig{3, RcbConfig{8}});
  EXPECT_GE(forest.trees().size(), 1u);
}

// ---- threaded CIC -----------------------------------------------------------------

TEST(ThreadedCic, MatchesSerialDeposit) {
  const std::size_t n = 16;
  mesh::BlockDecomp3D d({n, n, n}, comm::Cart3D({1, 1, 1}));
  Philox rng(11);
  Philox::Stream s(rng);
  std::vector<float> xs, ys, zs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(static_cast<float>(s.uniform(0, n)));
    ys.push_back(static_cast<float>(s.uniform(0, n)));
    zs.push_back(static_cast<float>(s.uniform(0, n)));
  }
  mesh::DistGrid serial(d, 0, 2), threaded(d, 0, 2);
  mesh::cic_deposit(serial, xs, ys, zs, 1.5f);
  mesh::cic_deposit_threaded(threaded, xs, ys, zs, 1.5f);
  for (std::size_t i = 0; i < serial.data().size(); ++i)
    EXPECT_NEAR(threaded.data()[i], serial.data()[i],
                1e-9 * (std::abs(serial.data()[i]) + 1.0));
}

// ---- kernel variants over the forest ----------------------------------------

TEST(MultiTreeKernel, VariantsAgreeAndStatsAreIdentical) {
  // Batched and scalar dispatch must feed the kernel the exact same
  // interaction set (identical InteractionStats — padding is invisible)
  // and agree on forces to float-summation-order rounding.
  ParticleArray p = random_particles(3000, 12.0f, 21);
  MultiTree forest(p, MultiTreeConfig{2, RcbConfig{64}});
  ShortRangeKernel kernel;
  kernel.fgrid = default_fgrid_poly5();
  std::vector<float> sx(p.size()), sy(p.size()), sz(p.size());
  std::vector<float> bx(p.size()), by(p.size()), bz(p.size());
  const auto stats_s = compute_short_range_multi(
      forest, kernel, sx, sy, sz, 0.73f, KernelVariant::kScalar);
  const auto stats_b = compute_short_range_multi(
      forest, kernel, bx, by, bz, 0.73f, KernelVariant::kBatched);
  EXPECT_EQ(stats_s.leaves, stats_b.leaves);
  EXPECT_EQ(stats_s.particles, stats_b.particles);
  EXPECT_EQ(stats_s.interactions, stats_b.interactions);
  EXPECT_EQ(stats_s.walk_visits, stats_b.walk_visits);
  double max_rel = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double mag =
        std::sqrt(static_cast<double>(sx[i]) * sx[i] +
                  static_cast<double>(sy[i]) * sy[i] +
                  static_cast<double>(sz[i]) * sz[i]);
    const double dx = static_cast<double>(bx[i]) - sx[i];
    const double dy = static_cast<double>(by[i]) - sy[i];
    const double dz = static_cast<double>(bz[i]) - sz[i];
    const double diff = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (mag > 1e-20) max_rel = std::max(max_rel, diff / mag);
  }
  EXPECT_LE(max_rel, 1e-5);
}

TEST(MultiTreeKernel, SteadyStateShortRangeIsAllocationFree) {
  // Satellite guarantee: with a persistent workspace, the short-range
  // phase allocates nothing after the first (warmup) step — the flattened
  // (tree, leaf) work vector and every per-thread neighbor list are
  // reserved to their high-water marks and reused.
  ParticleArray p = random_particles(4000, 14.0f, 22);
  MultiTree forest(p, MultiTreeConfig{2, RcbConfig{48}});
  ShortRangeKernel kernel;
  kernel.fgrid = default_fgrid_poly5();
  std::vector<float> ax(p.size()), ay(p.size()), az(p.size());
  ShortRangeWorkspace ws;
  for (const auto variant : {KernelVariant::kBatched, KernelVariant::kScalar}) {
    // Warmup populates the workspace (and the OpenMP team, first time).
    compute_short_range_multi(forest, kernel, ax, ay, az, 1.0f, variant, &ws);
    alloc_hook::count.store(0);
    alloc_hook::armed.store(true);
    compute_short_range_multi(forest, kernel, ax, ay, az, 1.0f, variant, &ws);
    alloc_hook::armed.store(false);
    EXPECT_EQ(alloc_hook::count.load(), 0u)
        << "steady-state allocation in variant "
        << kernel_variant_name(variant);
  }
}

// ---- full simulation equivalence -----------------------------------------------

TEST(SimulationExtensions, MultiTreeAndThreadedCicReproduceBaseline) {
  core::SimulationConfig base;
  base.grid = 16;
  base.particles_per_dim = 16;
  base.box_mpch = 32.0;
  base.z_initial = 30.0;
  base.z_final = 10.0;
  base.steps = 2;
  base.subcycles = 2;
  base.overload = 3.0;
  base.solver = core::ShortRangeSolver::kTreePP;
  cosmology::Cosmology cosmo;

  auto run = [&](int splits, bool threaded) {
    core::SimulationConfig cfg = base;
    cfg.tree_splits = splits;
    cfg.threaded_deposit = threaded;
    std::vector<std::array<float, 3>> by_id(16 * 16 * 16);
    comm::Machine::run(1, [&](comm::Comm& c) {
      core::Simulation sim(c, cosmo, cfg);
      sim.initialize();
      sim.run();
      const auto& p = sim.particles();
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (p.role[i] == Role::kActive)
          by_id[p.id[i]] = {p.x[i], p.y[i], p.z[i]};
      }
    });
    return by_id;
  };
  const auto baseline = run(0, false);
  const auto extended = run(2, true);
  double max_err = 0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      double diff = std::abs(static_cast<double>(
          baseline[i][static_cast<std::size_t>(d)] -
          extended[i][static_cast<std::size_t>(d)]));
      diff = std::min(diff, 16.0 - diff);
      max_err = std::max(max_err, diff);
    }
  }
  EXPECT_LT(max_err, 2e-3);
}

}  // namespace
}  // namespace hacc::tree
