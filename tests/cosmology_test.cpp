// Tests for the cosmology module: FLRW background, growth, linear power
// spectra, Zel'dovich initial conditions (measured P(k) must reproduce the
// input), FOF halos and subhalos.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "comm/comm.h"
#include "cosmology/background.h"
#include "cosmology/halo_finder.h"
#include "cosmology/initial_conditions.h"
#include "cosmology/power_spectrum.h"
#include "mesh/cic.h"
#include "util/rng.h"

namespace hacc::cosmology {
namespace {

// ---- background --------------------------------------------------------------

TEST(Background, EfuncLimits) {
  Cosmology c;
  EXPECT_NEAR(c.efunc(1.0), 1.0, 1e-12);  // E(a=1) = 1 by construction
  // Deep matter domination: E ~ sqrt(Om) a^{-3/2}.
  const double a = 1e-3;
  EXPECT_NEAR(c.efunc(a) / (std::sqrt(c.omega_m) * std::pow(a, -1.5)), 1.0,
              1e-3);
}

TEST(Background, EinsteinDeSitterGrowthIsA) {
  // Om = 1: D+(a) = a exactly.
  Cosmology eds;
  eds.omega_m = 1.0;
  eds.omega_l = 0.0;
  eds.omega_b = 0.0;
  for (double a : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(eds.growth_factor(a), a, 2e-4) << "a=" << a;
    EXPECT_NEAR(eds.growth_rate(a), 1.0, 1e-3);
  }
}

TEST(Background, LcdmGrowthSuppressedAtLateTimes) {
  // In LCDM growth lags a at late times; at early times D ~ a.
  Cosmology c;
  EXPECT_NEAR(c.growth_factor(1.0), 1.0, 1e-12);
  const double early = c.growth_factor(0.02) / 0.02;
  const double late = c.growth_factor(1.0) / 1.0;
  EXPECT_GT(early, late);  // normalized growth per a declines
  // Known LCDM value: D+(a=0.5)/a ~ 1.1..1.3 relative to its z=0 value for
  // Om ~ 0.265 (growth suppression ~ 0.78 at z=0 in absolute terms).
  const double d_half = c.growth_factor(0.5);
  EXPECT_GT(d_half, 0.5);   // more growth than a (normalized at 1)
  EXPECT_LT(d_half, 0.75);
}

TEST(Background, GrowthRateApproximatesOmegaPower) {
  // f(z=0) ~ Omega_m(z=0)^0.55 for LCDM.
  Cosmology c;
  EXPECT_NEAR(c.growth_rate(1.0), std::pow(c.omega_m, 0.55), 0.01);
}

TEST(Background, KickDriftFactorsPositiveAndAdditive) {
  Cosmology c;
  const double k1 = c.kick_factor(0.2, 0.5);
  const double k2 = c.kick_factor(0.5, 0.8);
  EXPECT_GT(k1, 0);
  EXPECT_NEAR(k1 + k2, c.kick_factor(0.2, 0.8), 1e-10);
  const double d1 = c.drift_factor(0.2, 0.5);
  EXPECT_GT(d1, k1);  // 1/(a^3 E) > 1/(a^2 E) for a < 1
}

TEST(Background, EdsFactorsMatchClosedForm) {
  // Om = 1: kick = int a^{-1/2} da... E = a^{-3/2}:
  // kick: int da/(a^2 E) = int a^{-1/2} da = 2(sqrt(a1)-sqrt(a0));
  // drift: int da/(a^3 E) = int a^{-3/2} da = 2(1/sqrt(a0)-1/sqrt(a1)).
  Cosmology eds;
  eds.omega_m = 1.0;
  eds.omega_l = 0.0;
  EXPECT_NEAR(eds.kick_factor(0.25, 1.0), 2.0 * (1.0 - 0.5), 1e-9);
  EXPECT_NEAR(eds.drift_factor(0.25, 1.0), 2.0 * (2.0 - 1.0), 1e-9);
}

TEST(Background, DarkEnergyEquationOfState) {
  // w = -1 must reproduce the cosmological constant exactly.
  Cosmology lcdm;
  Cosmology w1 = lcdm;
  w1.w = -1.0;
  for (double a : {0.1, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(w1.efunc(a), lcdm.efunc(a));
  }
  // Quintessence-like w = -0.8: dark energy matters earlier, so E(a<1) is
  // larger and growth since a=0.5 is more suppressed (D(0.5)/D(1) larger).
  Cosmology q = lcdm;
  q.w = -0.8;
  EXPECT_GT(q.efunc(0.5), lcdm.efunc(0.5));
  EXPECT_GT(q.growth_factor(0.5), lcdm.growth_factor(0.5));
  // Phantom w = -1.2: the opposite ordering.
  Cosmology ph = lcdm;
  ph.w = -1.2;
  EXPECT_LT(ph.efunc(0.5), lcdm.efunc(0.5));
  EXPECT_LT(ph.growth_factor(0.5), lcdm.growth_factor(0.5));
}

TEST(Background, GrowthOdeStableAcrossWRange) {
  // The ODE growth must stay normalized and monotone for the model-space
  // scan the paper motivates.
  for (double w : {-1.4, -1.2, -1.0, -0.8, -0.6}) {
    Cosmology c;
    c.w = w;
    EXPECT_NEAR(c.growth_factor(1.0), 1.0, 1e-12) << w;
    double prev = 0;
    for (double a : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      const double d = c.growth_factor(a);
      EXPECT_GT(d, prev) << "w=" << w << " a=" << a;
      prev = d;
    }
  }
}

// ---- linear power -------------------------------------------------------------

class TransferCase : public ::testing::TestWithParam<TransferFunction> {};
INSTANTIATE_TEST_SUITE_P(Both, TransferCase,
                         ::testing::Values(TransferFunction::kBbks,
                                           TransferFunction::kEisensteinHu));

TEST_P(TransferCase, TransferIsOneAtLargeScalesAndDecays) {
  Cosmology c;
  LinearPower p(c, GetParam());
  EXPECT_NEAR(p.transfer(1e-5), 1.0, 1e-3);
  EXPECT_LT(p.transfer(1.0), 0.1);
  EXPECT_LT(p.transfer(10.0), p.transfer(1.0));
}

TEST_P(TransferCase, Sigma8NormalizationHolds) {
  Cosmology c;
  LinearPower p(c, GetParam());
  EXPECT_NEAR(sigma_r(p, 8.0), c.sigma8, 1e-6);
}

TEST_P(TransferCase, PowerPeaksAroundMatterRadiationEquality) {
  Cosmology c;
  LinearPower p(c, GetParam());
  // P(k) rises as ~k^ns at low k and falls at high k; the turnover for this
  // cosmology sits near k ~ 0.01-0.05 h/Mpc.
  const double p_low = p(1e-4);
  const double p_peak = p(0.02);
  const double p_high = p(5.0);
  EXPECT_GT(p_peak, p_low);
  EXPECT_GT(p_peak, p_high);
}

TEST(LinearPower, RedshiftScalingIsGrowthSquared) {
  Cosmology c;
  LinearPower p(c);
  const double d = c.growth_factor(Cosmology::a_of_z(2.0));
  EXPECT_NEAR(p.at_redshift(0.1, 2.0), p(0.1) * d * d, 1e-12);
}

// ---- measured P(k) of a known field ---------------------------------------------

TEST(MeasuredPower, RecoversSingleModeAmplitude) {
  // delta(x) = A cos(k1 x): P should concentrate in the k1 bin with
  // |delta_k|^2 = (A N^3 / 2)^2 in two modes -> P = A^2 V / 4 ... checked
  // against the estimator's normalization directly.
  const std::size_t n = 16;
  const double box = 100.0;  // Mpc/h
  const double amp = 0.01;
  mesh::BlockDecomp3D d({n, n, n}, comm::Cart3D({1, 1, 1}));
  comm::Machine::run(1, [&](comm::Comm& c) {
    mesh::DistGrid delta(d, 0, 1);
    for (std::size_t x = 0; x < n; ++x)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t z = 0; z < n; ++z)
          delta.at(static_cast<std::ptrdiff_t>(x),
                   static_cast<std::ptrdiff_t>(y),
                   static_cast<std::ptrdiff_t>(z)) =
              amp * std::cos(2.0 * std::numbers::pi * static_cast<double>(x) /
                             static_cast<double>(n));
    auto bins =
        measure_power_spectrum(c, delta, box, 8, /*deconvolve_cic=*/false);
    const double kf = 2.0 * std::numbers::pi / box;
    // All power in the lowest bin; expected P = A^2/4 * V ... per-mode
    // power: |delta_k|^2 = (A/2 N^3)^2 at k = +-k1; estimator averages over
    // modes in the bin.
    double total_modes = 0, weighted_p = 0, kbar = 0;
    for (const auto& b : bins) {
      total_modes += static_cast<double>(b.modes);
      weighted_p += b.power * static_cast<double>(b.modes);
      if (b.power > weighted_p / total_modes * 10) kbar = b.k;
    }
    (void)kbar;
    const double volume = box * box * box;
    const double expected_total = 2.0 * (amp / 2.0) * (amp / 2.0) * volume;
    EXPECT_NEAR(weighted_p, expected_total, 1e-6 * expected_total);
    // The hot bin is the one containing kf.
    const auto& hot = *std::max_element(
        bins.begin(), bins.end(),
        [](const PowerBin& a, const PowerBin& b) { return a.power < b.power; });
    EXPECT_NEAR(hot.k, kf, kf * 0.5);
  });
}

class MeasureRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, MeasureRanks, ::testing::Values(1, 2, 4, 8));

TEST_P(MeasureRanks, DecompositionIndependent) {
  const int nranks = GetParam();
  const std::size_t n = 16;
  const double box = 64.0;
  // Deterministic random field keyed on global cell.
  auto field = [&](std::size_t x, std::size_t y, std::size_t z) {
    return Philox(77).gaussian2((x * n + y) * n + z)[0] * 0.1;
  };
  static std::vector<PowerBin> reference;
  mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    mesh::DistGrid delta(d, c.rank(), 1);
    const auto& b = delta.interior();
    for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
      for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
        for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
          delta.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                   static_cast<std::ptrdiff_t>(y - b.y.lo),
                   static_cast<std::ptrdiff_t>(z - b.z.lo)) = field(x, y, z);
    auto bins = measure_power_spectrum(c, delta, box, 12);
    if (c.rank() == 0) {
      if (nranks == 1) {
        reference = bins;
      } else {
        ASSERT_EQ(bins.size(), reference.size());
        for (std::size_t i = 0; i < bins.size(); ++i) {
          EXPECT_NEAR(bins[i].power, reference[i].power,
                      1e-9 * (reference[i].power + 1.0));
          EXPECT_EQ(bins[i].modes, reference[i].modes);
        }
      }
    }
  });
}

// ---- initial conditions ----------------------------------------------------------

TEST(InitialConditions, LatticeCountAndDeterminism) {
  const std::size_t n = 16;
  IcConfig cfg;
  cfg.particles_per_dim = 16;
  cfg.box_mpch = 32.0;
  cfg.z_init = 30.0;
  Cosmology cosmo;
  for (int nranks : {1, 4, 8}) {
    mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({n, n, n}, nranks);
    std::vector<std::array<float, 6>> by_id(16 * 16 * 16);
    std::mutex mu;
    comm::Machine::run(nranks, [&](comm::Comm& c) {
      tree::ParticleArray p;
      generate_zeldovich(c, d, cosmo, cfg, p);
      const auto total = c.allreduce_value(
          static_cast<long long>(p.size()), comm::ReduceOp::kSum);
      EXPECT_EQ(total, 16LL * 16 * 16);
      std::lock_guard lock(mu);
      for (std::size_t i = 0; i < p.size(); ++i)
        by_id[p.id[i]] = {p.x[i], p.y[i], p.z[i], p.vx[i], p.vy[i], p.vz[i]};
    });
    static std::vector<std::array<float, 6>> reference;
    if (nranks == 1) {
      reference = by_id;
    } else {
      // Decomposition independence: same realization on 1 and 4 ranks.
      for (std::size_t i = 0; i < by_id.size(); ++i) {
        for (int c6 = 0; c6 < 6; ++c6)
          EXPECT_NEAR(by_id[i][static_cast<std::size_t>(c6)],
                      reference[i][static_cast<std::size_t>(c6)], 1e-4f)
              << "id=" << i;
      }
    }
  }
}

TEST(InitialConditions, MeasuredPowerMatchesLinearInput) {
  // Deposit the Zel'dovich particles and verify the measured P(k) tracks
  // the linear input spectrum at the IC redshift (within sampling noise).
  const std::size_t n = 32;
  IcConfig cfg;
  cfg.particles_per_dim = 32;
  cfg.box_mpch = 128.0;
  cfg.z_init = 20.0;
  cfg.seed = 99;
  Cosmology cosmo;
  LinearPower lin(cosmo, cfg.transfer);
  mesh::BlockDecomp3D d({n, n, n}, comm::Cart3D({1, 1, 1}));
  comm::Machine::run(1, [&](comm::Comm& c) {
    tree::ParticleArray p;
    generate_zeldovich(c, d, cosmo, cfg, p);
    mesh::DistGrid rho(d, 0, 1);
    mesh::cic_deposit(rho, p.x, p.y, p.z, 1.0f);
    rho.fold_ghosts(c);
    mesh::to_density_contrast(rho, c);
    auto bins = measure_power_spectrum(c, rho, cfg.box_mpch, 12);
    const double z = cfg.z_init;
    // Compare in the intermediate-k range (low k: few modes; high k near
    // Nyquist: lattice/window artifacts).
    std::size_t tested = 0;
    for (const auto& b : bins) {
      if (b.modes < 50 || b.k > 0.5) continue;
      const double expect = lin.at_redshift(b.k, z);
      EXPECT_NEAR(b.power / expect, 1.0, 0.5) << "k=" << b.k;
      ++tested;
    }
    EXPECT_GE(tested, 3u);
  });
}

TEST(InitialConditions, DisplacementFieldsAreDivergenceOfPotential) {
  // The Zel'dovich displacement is curl-free; check a discrete curl is
  // small relative to the field magnitude.
  const std::size_t n = 16;
  IcConfig cfg;
  cfg.particles_per_dim = 16;
  cfg.box_mpch = 64.0;
  Cosmology cosmo;
  mesh::BlockDecomp3D d({n, n, n}, comm::Cart3D({1, 1, 1}));
  comm::Machine::run(1, [&](comm::Comm& c) {
    std::array<mesh::DistGrid, 3> psi{mesh::DistGrid(d, 0, 1),
                                      mesh::DistGrid(d, 0, 1),
                                      mesh::DistGrid(d, 0, 1)};
    generate_displacement_fields(c, d, cosmo, cfg, psi);
    double curl = 0, mag = 0;
    for (std::ptrdiff_t x = 1; x < static_cast<std::ptrdiff_t>(n) - 1; ++x)
      for (std::ptrdiff_t y = 1; y < static_cast<std::ptrdiff_t>(n) - 1; ++y)
        for (std::ptrdiff_t z = 1; z < static_cast<std::ptrdiff_t>(n) - 1;
             ++z) {
          // curl_z = d(psi_y)/dx - d(psi_x)/dy (central differences).
          const double cz =
              0.5 * (psi[1].at(x + 1, y, z) - psi[1].at(x - 1, y, z)) -
              0.5 * (psi[0].at(x, y + 1, z) - psi[0].at(x, y - 1, z));
          curl += cz * cz;
          mag += psi[0].at(x, y, z) * psi[0].at(x, y, z) +
                 psi[1].at(x, y, z) * psi[1].at(x, y, z);
        }
    EXPECT_LT(curl, 0.05 * mag);
  });
}

// ---- halo finder ------------------------------------------------------------------

tree::ParticleArray two_blobs(double box, std::size_t per_blob,
                              std::uint64_t seed) {
  tree::ParticleArray p;
  Philox rng(seed);
  Philox::Stream s(rng);
  auto blob = [&](double cx, double cy, double cz, float sigma) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      auto wrap = [&](double v) {
        v = std::fmod(v, box);
        return static_cast<float>(v < 0 ? v + box : v);
      };
      p.push_back(wrap(cx + sigma * s.gaussian()),
                  wrap(cy + sigma * s.gaussian()),
                  wrap(cz + sigma * s.gaussian()), 1.0f, 2.0f, 3.0f, 1.0f,
                  p.size());
    }
  };
  blob(box * 0.25, box * 0.25, box * 0.25, 0.4f);
  blob(box * 0.75, box * 0.75, box * 0.75, 0.4f);
  return p;
}

TEST(HaloFinder, FindsTwoWellSeparatedBlobs) {
  const double box = 32.0;
  auto p = two_blobs(box, 200, 5);
  FofConfig cfg;
  cfg.box = box;
  cfg.mean_spacing = 2.0;  // linking radius 0.4
  cfg.linking_length = 0.2;
  cfg.min_members = 50;
  auto halos = find_halos(p, cfg);
  ASSERT_EQ(halos.size(), 2u);
  // Gaussian-tail outliers may legitimately be unlinked; require >= 95%.
  EXPECT_GE(halos[0].members.size() + halos[1].members.size(), 380u);
  // Centers near the blob centers.
  for (const auto& h : halos) {
    const bool near_a = std::abs(h.center[0] - 8.0) < 1.0;
    const bool near_b = std::abs(h.center[0] - 24.0) < 1.0;
    EXPECT_TRUE(near_a || near_b);
    EXPECT_NEAR(h.velocity[0], 1.0, 1e-4);
  }
}

TEST(HaloFinder, PeriodicWrapLinksAcrossSeam) {
  // A blob straddling the box corner must come out as ONE halo with its
  // center near the corner.
  const double box = 32.0;
  tree::ParticleArray p;
  Philox rng(6);
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < 300; ++i) {
    auto wrap = [&](double v) {
      v = std::fmod(v + box, box);
      return static_cast<float>(v);
    };
    p.push_back(wrap(0.3 * s.gaussian()), wrap(0.3 * s.gaussian()),
                wrap(0.3 * s.gaussian()), 0, 0, 0, 1.0f, i);
  }
  FofConfig cfg;
  cfg.box = box;
  cfg.mean_spacing = 2.0;
  cfg.min_members = 100;
  auto halos = find_halos(p, cfg);
  ASSERT_EQ(halos.size(), 1u);
  EXPECT_GE(halos[0].members.size(), 285u);  // tail outliers may drop
  const double cx = halos[0].center[0];
  EXPECT_TRUE(cx < 1.5 || cx > box - 1.5) << cx;
}

TEST(HaloFinder, MinMembersFiltersFieldParticles) {
  const double box = 32.0;
  tree::ParticleArray p = two_blobs(box, 100, 8);
  // Sprinkle isolated particles.
  Philox rng(9);
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < 50; ++i)
    p.push_back(static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.uniform(0, box)), 0, 0, 0, 1.0f,
                1000 + i);
  FofConfig cfg;
  cfg.box = box;
  cfg.mean_spacing = 2.0;
  cfg.min_members = 50;
  auto halos = find_halos(p, cfg);
  EXPECT_EQ(halos.size(), 2u);
}

TEST(HaloFinder, SubhalosSplitMerger) {
  // One FOF halo made of two sub-clumps connected by a thin bridge; the
  // tighter sub-linking must split them.
  const double box = 32.0;
  tree::ParticleArray p;
  Philox rng(10);
  Philox::Stream s(rng);
  auto blob = [&](double cx, float sigma, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      p.push_back(static_cast<float>(cx + sigma * s.gaussian()),
                  static_cast<float>(16.0 + sigma * s.gaussian()),
                  static_cast<float>(16.0 + sigma * s.gaussian()), 0, 0, 0,
                  1.0f, p.size());
  };
  blob(14.0, 0.25f, 150);
  blob(18.0, 0.25f, 150);
  // Bridge with spacing just under the parent linking radius (0.4).
  for (int i = 0; i < 12; ++i)
    p.push_back(14.0f + 0.35f * static_cast<float>(i), 16.0f, 16.0f, 0, 0, 0,
                1.0f, p.size());
  FofConfig cfg;
  cfg.box = box;
  cfg.mean_spacing = 2.0;
  cfg.min_members = 100;
  auto halos = find_halos(p, cfg);
  ASSERT_EQ(halos.size(), 1u);  // bridge merges everything
  auto subs = find_subhalos(p, halos[0], cfg, 0.5, 50);
  EXPECT_EQ(subs.size(), 2u);  // sub-linking severs the bridge
}

TEST(HaloFinder, MassFunctionIsCumulative) {
  std::vector<Halo> halos(3);
  halos[0].mass = 100;
  halos[1].mass = 50;
  halos[2].mass = 10;
  const auto counts = mass_function(halos, {5.0, 20.0, 60.0, 200.0});
  EXPECT_EQ(counts, (std::vector<std::size_t>{3, 2, 1, 0}));
}

TEST(HaloFinder, RequiresBoxAndSpacing) {
  tree::ParticleArray p = two_blobs(32.0, 20, 3);
  FofConfig cfg;  // box/mean_spacing unset
  EXPECT_THROW(find_halos(p, cfg), Error);
}

}  // namespace
}  // namespace hacc::cosmology
