// Tests for the silent-data-corruption defense (core/audit.h + the
// Supervisor's in-place rollback ladder):
//   * the canonical-order payload checksum is permutation-invariant and
//     sensitive to every single bit of every active payload field;
//   * the resident-memory fault hooks fire one-shot across re-runs, honor
//     pinned bits, remap victims across widths, and are seed-deterministic;
//   * sampled duplicate execution never false-positives on clean state
//     across 50 seeded draws for BOTH kernel variants, and catches a
//     flipped mantissa or exponent bit of a stored force at both variants
//     (single tree and MultiTree forest);
//   * the health gate (audits included) costs exactly ONE allreduce;
//   * end-to-end: a seeded bit flip at step N is detected within one audit
//     cadence, rolled back in place (no machine relaunch), and the run
//     completes bit-for-bit identical to an uninterrupted one; a
//     CRC-clean-but-physically-poisoned checkpoint is skipped via its audit
//     verdict; detection with no restorable checkpoint escalates to the
//     relaunch ladder.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "comm/fault.h"
#include "comm/telemetry.h"
#include "core/audit.h"
#include "core/simulation.h"
#include "core/supervisor.h"
#include "cosmology/background.h"
#include "obs/counters.h"
#include "obs/obs.h"
#include "tree/force_kernel.h"
#include "tree/multi_tree.h"
#include "tree/rcb_tree.h"
#include "util/rng.h"

namespace hacc::core {
namespace {

namespace fs = std::filesystem;

using tree::KernelVariant;
using tree::ParticleArray;
using tree::RcbConfig;
using tree::RcbTree;
using tree::Role;
using tree::ShortRangeKernel;

ParticleArray random_particles(std::size_t n, float box, std::uint64_t seed,
                               bool clustered = true) {
  ParticleArray p;
  Philox rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    Philox::Stream s(rng, i);
    float x = static_cast<float>(s.uniform(0, box));
    float y = static_cast<float>(s.uniform(0, box));
    float z = static_cast<float>(s.uniform(0, box));
    if (clustered && i % 2 == 0) {  // half the points in a dense clump
      x = box / 2 + 0.1f * x;
      y = box / 2 + 0.1f * y;
      z = box / 2 + 0.1f * z;
    }
    p.push_back(x, y, z, 0, 0, 0, 1.0f, i, Role::kActive);
  }
  return p;
}

void flip_float_bit(float& v, int bit) {
  std::uint32_t u;
  std::memcpy(&u, &v, 4);
  u ^= 1u << bit;
  std::memcpy(&v, &u, 4);
}

// ---- payload checksum ------------------------------------------------------

TEST(ParticleChecksum, InvariantUnderPermutationAndPassives) {
  ParticleArray p = random_particles(64, 10.0f, 11);
  const std::uint64_t h0 = particle_checksum(p);

  // Reverse the storage order: the canonical (id-sorted) hash is unchanged.
  ParticleArray rev;
  for (std::size_t i = p.size(); i-- > 0;)
    rev.push_back(p.x[i], p.y[i], p.z[i], p.vx[i], p.vy[i], p.vz[i],
                  p.mass[i], p.id[i], p.role[i]);
  EXPECT_EQ(particle_checksum(rev), h0);

  // Passive replicas do not contribute: adding one (with a duplicate id,
  // as real replicas have) or corrupting it leaves the hash alone.
  ParticleArray with_passive = p;
  with_passive.push_back(1, 2, 3, 4, 5, 6, 1.0f, p.id[0], Role::kPassive);
  EXPECT_EQ(particle_checksum(with_passive), h0);
  with_passive.x[with_passive.size() - 1] = 99.0f;
  EXPECT_EQ(particle_checksum(with_passive), h0);

  // The fast path for already-sorted arrays matches the sorting path.
  ParticleArray sorted;
  for (std::size_t i = 0; i < p.size(); ++i)  // ids are 0..n-1 in order
    sorted.push_back(p.x[i], p.y[i], p.z[i], p.vx[i], p.vy[i], p.vz[i],
                     p.mass[i], p.id[i], p.role[i]);
  EXPECT_EQ(particle_checksum(sorted, /*assume_id_sorted=*/true), h0);
}

TEST(ParticleChecksum, SensitiveToEverySingleBitOfEveryField) {
  ParticleArray p = random_particles(8, 10.0f, 13);
  const std::uint64_t h0 = particle_checksum(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    float* fields[7] = {&p.x[i],  &p.y[i],  &p.z[i], &p.vx[i],
                        &p.vy[i], &p.vz[i], &p.mass[i]};
    for (int f = 0; f < 7; ++f) {
      for (int bit = 0; bit < 32; ++bit) {
        flip_float_bit(*fields[f], bit);
        EXPECT_NE(particle_checksum(p), h0)
            << "particle " << i << " field " << f << " bit " << bit;
        flip_float_bit(*fields[f], bit);  // restore
      }
    }
  }
  EXPECT_EQ(particle_checksum(p), h0);  // restores were exact
}

// ---- resident-memory fault hooks -------------------------------------------

TEST(MemoryFaults, OneShotAcrossRunsAndSeedDeterministic) {
  comm::FaultPlan plan;
  plan.flip_bits_in_particles(/*rank=*/0, /*step=*/3, /*nbits=*/4);

  std::vector<comm::fault::MemoryFlip> first;
  {
    comm::fault::Scope scope(&plan, /*rank=*/0, /*width=*/1);
    comm::fault::set_step(2);  // wrong step: nothing fires
    EXPECT_TRUE(comm::fault::take_memory_flips(
                    comm::fault::MemoryTarget::kParticles, 1000, 0, 32)
                    .empty());
    comm::fault::set_step(3);
    // Wrong target: a particle spec never leaks onto the grid.
    EXPECT_TRUE(comm::fault::take_memory_flips(
                    comm::fault::MemoryTarget::kGrid, 1000, 0, 32)
                    .empty());
    first = comm::fault::take_memory_flips(
        comm::fault::MemoryTarget::kParticles, 1000, 0, 32);
    ASSERT_EQ(first.size(), 4u);
    for (const auto& f : first) {
      EXPECT_LT(f.element, 1000u);
      EXPECT_GE(f.bit, 0);
      EXPECT_LT(f.bit, 32);
    }
    // Consuming is firing: the same step never yields flips twice.
    EXPECT_TRUE(comm::fault::take_memory_flips(
                    comm::fault::MemoryTarget::kParticles, 1000, 0, 32)
                    .empty());
  }
  {
    // A fresh run (new Scope, same plan): still spent — the one-shot state
    // lives in the plan, exactly like kill_at_step across attempts.
    comm::fault::Scope scope(&plan, 0, 1);
    comm::fault::set_step(3);
    EXPECT_TRUE(comm::fault::take_memory_flips(
                    comm::fault::MemoryTarget::kParticles, 1000, 0, 32)
                    .empty());
  }

  // Same seed, fresh plan: identical damage (reproducible campaigns).
  comm::FaultPlan plan2;
  plan2.flip_bits_in_particles(0, 3, 4);
  comm::fault::Scope scope(&plan2, 0, 1);
  comm::fault::set_step(3);
  const auto second = comm::fault::take_memory_flips(
      comm::fault::MemoryTarget::kParticles, 1000, 0, 32);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].element, first[i].element);
    EXPECT_EQ(second[i].bit, first[i].bit);
  }
}

TEST(MemoryFaults, PinnedBitAndElasticVictimRemap) {
  comm::FaultPlan plan;
  // Aimed at rank 5 of a 2-wide machine: fires on rank 5 % 2 == 1.
  plan.flip_bits_in_grid(/*rank=*/5, /*step=*/2, /*nbits=*/3).pin_bit(48);
  {
    comm::fault::Scope scope(&plan, /*rank=*/0, /*width=*/2);
    comm::fault::set_step(2);
    EXPECT_TRUE(comm::fault::take_memory_flips(
                    comm::fault::MemoryTarget::kGrid, 4096, 48, 64)
                    .empty());
  }
  {
    comm::fault::Scope scope(&plan, /*rank=*/1, /*width=*/2);
    comm::fault::set_step(2);
    const auto flips = comm::fault::take_memory_flips(
        comm::fault::MemoryTarget::kGrid, 4096, 48, 64);
    ASSERT_EQ(flips.size(), 3u);
    for (const auto& f : flips) EXPECT_EQ(f.bit, 48);  // pinned
  }
}

// ---- sampled duplicate execution -------------------------------------------

class DupExecVariant : public ::testing::TestWithParam<KernelVariant> {};
INSTANTIATE_TEST_SUITE_P(Kernels, DupExecVariant,
                         ::testing::Values(KernelVariant::kScalar,
                                           KernelVariant::kBatched),
                         [](const auto& info) {
                           return tree::kernel_variant_name(info.param);
                         });

TEST_P(DupExecVariant, CleanStateNeverFalsePositivesAcross50Draws) {
  ParticleArray p = random_particles(400, 12.0f, 17);
  ShortRangeKernel kernel;
  kernel.softening = 0.05f;
  kernel.fgrid = tree::default_fgrid_poly5();
  RcbTree tree(p, RcbConfig{32});
  std::vector<float> ax(p.size()), ay(p.size()), az(p.size());
  compute_short_range(tree, kernel, ax, ay, az, /*mass_scale=*/1.0f,
                      GetParam());

  AuditConfig config;
  config.sample_leaves = 4;
  std::size_t checked = 0;
  for (std::uint64_t draw = 1; draw <= 50; ++draw) {
    const DuplicateExecutionResult r = duplicate_execution_check(
        tree, kernel, ax, ay, az, 1.0f, config, draw);
    EXPECT_EQ(r.mismatches, 0u) << "draw " << draw << ": " << r.detail;
    EXPECT_EQ(r.sampled_leaves, 4u);
    checked += r.checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(DupExecVariant, CatchesFlippedMantissaAndExponentBits) {
  // One fat leaf holds every particle, so the seeded sample always covers
  // the victim and detection is deterministic, not probabilistic.
  ParticleArray p = random_particles(300, 8.0f, 19);
  ShortRangeKernel kernel;
  kernel.softening = 0.05f;
  kernel.fgrid = tree::default_fgrid_poly5();
  RcbTree tree(p, RcbConfig{512});
  ASSERT_EQ(tree.leaves().size(), 1u);
  std::vector<float> ax(p.size()), ay(p.size()), az(p.size());
  compute_short_range(tree, kernel, ax, ay, az, 1.0f, GetParam());

  // Victim: the largest stored force component (a mantissa flip of a
  // near-zero component hides below the absolute tolerance by design).
  std::size_t k = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (std::fabs(ax[i]) > std::fabs(ax[k])) k = i;
  ASSERT_GT(std::fabs(ax[k]), 1e-2f);

  AuditConfig config;
  config.sample_leaves = 1;
  for (const int bit : {18, 27}) {  // mid-mantissa; exponent
    flip_float_bit(ax[k], bit);
    const DuplicateExecutionResult r = duplicate_execution_check(
        tree, kernel, ax, ay, az, 1.0f, config, /*draw_key=*/7);
    EXPECT_GE(r.mismatches, 1u) << "bit " << bit;
    EXPECT_FALSE(r.detail.empty()) << "bit " << bit;
    flip_float_bit(ax[k], bit);  // restore
  }
  const DuplicateExecutionResult clean = duplicate_execution_check(
      tree, kernel, ax, ay, az, 1.0f, config, 7);
  EXPECT_EQ(clean.mismatches, 0u) << clean.detail;
}

TEST_P(DupExecVariant, MultiTreeForestSamplingCatchesFlips) {
  ParticleArray p = random_particles(500, 10.0f, 23);
  ShortRangeKernel kernel;
  kernel.softening = 0.05f;
  kernel.fgrid = tree::default_fgrid_poly5();
  tree::MultiTree forest(p, tree::MultiTreeConfig{/*splits=*/2,
                                                  RcbConfig{32}});
  std::vector<float> ax(p.size()), ay(p.size()), az(p.size());
  compute_short_range_multi(forest, kernel, ax, ay, az, 1.0f, GetParam());

  AuditConfig config;
  config.sample_leaves = 4;
  const DuplicateExecutionResult clean =
      duplicate_execution_check(forest, kernel, ax, ay, az, 1.0f, config, 3);
  EXPECT_EQ(clean.mismatches, 0u) << clean.detail;
  EXPECT_EQ(clean.sampled_leaves, 4u);

  // Flip the max component; oversample so the seeded draw (with
  // replacement) deterministically covers every leaf.
  std::size_t k = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (std::fabs(ay[i]) > std::fabs(ay[k])) k = i;
  flip_float_bit(ay[k], 20);
  config.sample_leaves = 256;
  const DuplicateExecutionResult r =
      duplicate_execution_check(forest, kernel, ax, ay, az, 1.0f, config, 3);
  EXPECT_GE(r.mismatches, 1u);
}

// ---- the health gate stays a single allreduce ------------------------------

TEST(AuditCost, HealthGateWithAuditsCostsExactlyOneAllreduce) {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 8;
  cfg.steps = 2;
  cfg.subcycles = 2;
  cfg.overload = 2.0;
  cosmology::Cosmology cosmo;
  comm::Machine::run(2, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.step();
    obs::Counters counters;
    {
      obs::Binding bind(nullptr, &counters);
      const auto health = sim.health_check();
      EXPECT_TRUE(health.audited);  // default cadence 1: full suite ran
    }
    // SimMPI's allreduce = one reduce + one bcast; every other collective
    // class must be silent. The whole audit suite rides that one gate.
    using comm::telemetry::Op;
    const auto calls = [&](Op op) {
      return counters.value(comm::telemetry::ids(op).calls);
    };
    EXPECT_EQ(calls(Op::kReduce), 1u);
    EXPECT_EQ(calls(Op::kBcast), 1u);
    for (const Op op : {Op::kBarrier, Op::kGather, Op::kAllgather,
                        Op::kGatherv, Op::kAlltoall, Op::kScan,
                        Op::kNeighborAlltoall})
      EXPECT_EQ(calls(op), 0u) << comm::telemetry::op_name(op);
  });
}

// ---- end-to-end: detect, roll back in place, finish bit-for-bit ------------

SimulationConfig sdc_config() {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 6;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  return cfg;
}

using Bits = std::map<std::uint64_t, std::array<std::uint32_t, 6>>;

std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, 4);
  return u;
}

/// Collective; only rank 0 may touch `out`.
void collect_bits(Simulation& sim, comm::Comm& c, Bits* out) {
  auto all = sim.gather_active();
  if (c.rank() != 0) return;
  for (std::size_t i = 0; i < all.size(); ++i)
    (*out)[all.id[i]] = {float_bits(all.x[i]),  float_bits(all.y[i]),
                         float_bits(all.z[i]),  float_bits(all.vx[i]),
                         float_bits(all.vy[i]), float_bits(all.vz[i])};
}

Bits reference_bits(const SimulationConfig& cfg,
                    const cosmology::Cosmology& cosmo, int nranks) {
  Bits ref;
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
    collect_bits(sim, c, &ref);
  });
  return ref;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

SupervisorConfig sdc_supervisor_config(const SimulationConfig& cfg,
                                       const std::string& tag) {
  SupervisorConfig scfg;
  scfg.sim = cfg;
  scfg.nranks = 2;
  scfg.checkpoint_dir = (fs::temp_directory_path() / tag).string();
  scfg.sim.ledger_path = scfg.checkpoint_dir + "/ledger.jsonl";
  scfg.checkpoint_every = 2;
  scfg.keep = 3;
  scfg.max_retries = 2;
  fs::remove_all(scfg.checkpoint_dir);
  fs::create_directories(scfg.checkpoint_dir);
  return scfg;
}

TEST(SdcRollback, ParticleFlipDetectedAndRolledBackInPlaceBitForBit) {
  const SimulationConfig cfg = sdc_config();
  cosmology::Cosmology cosmo;
  const Bits ref = reference_bits(cfg, cosmo, 2);

  SupervisorConfig scfg = sdc_supervisor_config(cfg, "hacc_sdc_particle");
  comm::FaultPlan plan;
  plan.flip_bits_in_particles(/*rank=*/1, /*step=*/4, /*nbits=*/3);
  scfg.machine.fault_plan = &plan;

  Supervisor sup(cosmo, scfg);
  Bits got;
  sup.on_finished = [&](Simulation& sim, comm::Comm& c) {
    collect_bits(sim, c, &got);
  };
  const SupervisorReport rep = sup.run();

  // Detected within one audit cadence, repaired on the live machine: one
  // attempt, zero relaunch-path restores, one in-place rollback.
  EXPECT_TRUE(rep.completed) << rep.last_error;
  EXPECT_EQ(rep.attempts, 1);
  EXPECT_EQ(rep.restores, 0);
  EXPECT_EQ(rep.sdc_detections, 1);
  EXPECT_EQ(rep.rollbacks, 1);
  EXPECT_EQ(rep.final_step, cfg.steps);

  // The repaired run is indistinguishable from one that never saw the
  // flip: bit-for-bit identical final state at the same width.
  EXPECT_EQ(ref, got);

  // The ledger carries the whole trail, in order:
  // detection -> rollback -> resume, and no relaunch events.
  const std::string text = read_file(scfg.sim.ledger_path);
  const std::size_t at_detect = text.find("\"event\":\"sdc_detected\"");
  const std::size_t at_rollback = text.find("\"event\":\"rollback\"");
  const std::size_t at_resume = text.find("\"event\":\"resume\"");
  ASSERT_NE(at_detect, std::string::npos) << text;
  ASSERT_NE(at_rollback, std::string::npos) << text;
  ASSERT_NE(at_resume, std::string::npos) << text;
  EXPECT_LT(at_detect, at_rollback);
  EXPECT_LT(at_rollback, at_resume);
  EXPECT_NE(text.find("\"event\":\"audit\""), std::string::npos);
  EXPECT_NE(text.find("checksum mismatch"), std::string::npos) << text;
  EXPECT_EQ(text.find("\"event\":\"attempt_failed\""), std::string::npos);
  EXPECT_EQ(text.find("\"event\":\"restore\""), std::string::npos);

  // The rollback restored the step-2 checkpoint (the newest clean one).
  const std::size_t line_end = text.find('\n', at_rollback);
  const std::string rollback_line = text.substr(
      text.rfind('\n', at_rollback) + 1, line_end - text.rfind('\n', at_rollback) - 1);
  EXPECT_NE(rollback_line.find("\"step\":2"), std::string::npos)
      << rollback_line;

  fs::remove_all(scfg.checkpoint_dir);
}

TEST(SdcRollback, PoisonedButCrcCleanCheckpointIsSkipped) {
  // Audit cadence 2 + checkpoint every step: a flip at step 3 is silently
  // checkpointed into ckpt_3 (its CRCs are fine — the corruption is inside
  // the payload) and only detected at the step-4 audit gate. The verdict
  // sidecar must steer the rollback past ckpt_3 to ckpt_2.
  const SimulationConfig cfg = sdc_config();
  cosmology::Cosmology cosmo;
  const Bits ref = reference_bits(cfg, cosmo, 2);

  SupervisorConfig scfg = sdc_supervisor_config(cfg, "hacc_sdc_poisoned");
  scfg.sim.audit.cadence = 2;
  scfg.checkpoint_every = 1;
  scfg.keep = 4;
  comm::FaultPlan plan;
  plan.flip_bits_in_particles(/*rank=*/0, /*step=*/3, /*nbits=*/1);
  scfg.machine.fault_plan = &plan;

  Supervisor sup(cosmo, scfg);
  Bits got;
  sup.on_finished = [&](Simulation& sim, comm::Comm& c) {
    collect_bits(sim, c, &got);
  };
  const SupervisorReport rep = sup.run();

  EXPECT_TRUE(rep.completed) << rep.last_error;
  EXPECT_EQ(rep.attempts, 1);
  EXPECT_EQ(rep.rollbacks, 1);
  EXPECT_EQ(rep.sdc_detections, 1);
  EXPECT_EQ(ref, got);

  const std::string text = read_file(scfg.sim.ledger_path);
  // ckpt_3 was rejected on its audit verdict, not its CRC, and the
  // rollback landed on step 2.
  EXPECT_NE(text.find("audit verdict poisoned"), std::string::npos) << text;
  const std::size_t at_rollback = text.find("\"event\":\"rollback\"");
  ASSERT_NE(at_rollback, std::string::npos) << text;
  EXPECT_NE(text.find("\"step\":2", at_rollback), std::string::npos) << text;

  fs::remove_all(scfg.checkpoint_dir);
}

TEST(SdcRollback, GridFlipCaughtByMassConservation) {
  // The particle checksum cannot see grid corruption; the CIC
  // partition-of-unity audit must. Pin the flip to a high mantissa bit so
  // the damage is silent (finite, no health-guard backstop).
  const SimulationConfig cfg = sdc_config();
  cosmology::Cosmology cosmo;
  const Bits ref = reference_bits(cfg, cosmo, 2);

  SupervisorConfig scfg = sdc_supervisor_config(cfg, "hacc_sdc_grid");
  comm::FaultPlan plan;
  plan.flip_bits_in_grid(/*rank=*/0, /*step=*/3).pin_bit(48);
  scfg.machine.fault_plan = &plan;

  Supervisor sup(cosmo, scfg);
  Bits got;
  sup.on_finished = [&](Simulation& sim, comm::Comm& c) {
    collect_bits(sim, c, &got);
  };
  const SupervisorReport rep = sup.run();

  EXPECT_TRUE(rep.completed) << rep.last_error;
  EXPECT_EQ(rep.attempts, 1);
  EXPECT_EQ(rep.rollbacks, 1);
  EXPECT_EQ(ref, got);

  const std::string text = read_file(scfg.sim.ledger_path);
  const std::size_t at_detect = text.find("\"event\":\"sdc_detected\"");
  ASSERT_NE(at_detect, std::string::npos) << text;
  EXPECT_NE(text.find("mass residual"), std::string::npos) << text;

  fs::remove_all(scfg.checkpoint_dir);
}

TEST(SdcRollback, EscalatesToRelaunchWhenNothingIsRestorable) {
  // A flip before the first checkpoint exists: the in-place ladder has no
  // candidate and must hand the failure to the relaunch path, which
  // cold-starts — and the spent one-shot spec lets the retry finish clean.
  const SimulationConfig cfg = sdc_config();
  cosmology::Cosmology cosmo;
  const Bits ref = reference_bits(cfg, cosmo, 2);

  SupervisorConfig scfg = sdc_supervisor_config(cfg, "hacc_sdc_escalate");
  comm::FaultPlan plan;
  plan.flip_bits_in_particles(/*rank=*/1, /*step=*/1, /*nbits=*/2);
  scfg.machine.fault_plan = &plan;

  Supervisor sup(cosmo, scfg);
  Bits got;
  sup.on_finished = [&](Simulation& sim, comm::Comm& c) {
    collect_bits(sim, c, &got);
  };
  const SupervisorReport rep = sup.run();

  EXPECT_TRUE(rep.completed) << rep.last_error;
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_EQ(rep.restores, 1);
  EXPECT_EQ(rep.rollbacks, 0);
  EXPECT_EQ(rep.sdc_detections, 1);
  EXPECT_EQ(ref, got);  // cold restart at the same width is deterministic

  const std::string text = read_file(scfg.sim.ledger_path);
  EXPECT_NE(text.find("\"event\":\"rollback_failed\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"event\":\"attempt_failed\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"restore_cold\""), std::string::npos);

  fs::remove_all(scfg.checkpoint_dir);
}

}  // namespace
}  // namespace hacc::core
