// Tests for the FFT stack: 1-D mixed-radix + Bluestein, serial 3-D, and the
// distributed slab and pencil transforms (validated against the serial one
// over sweeps of grid sizes and process-grid shapes).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <numbers>
#include <vector>

#include "comm/comm.h"
#include "fft/decomp.h"
#include "fft/fft1d.h"
#include "fft/fft3d_local.h"
#include "fft/pencil.h"
#include "fft/slab.h"
#include "util/error.h"
#include "util/rng.h"

// ---- allocation counting ----------------------------------------------------
//
// Replacement global operator new/delete that count allocations while armed.
// Used to prove the steady-state pencil transforms are allocation-free after
// warm-up (the zero-allocation contract of the persistent FFT workspace).
namespace alloc_hook {
std::atomic<bool> armed{false};
std::atomic<std::size_t> count{0};

void note() {
  if (armed.load(std::memory_order_relaxed))
    count.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace alloc_hook

// GCC does not model user-replaced global operators and flags the
// new-from-malloc / delete-to-free pairing, which is exactly the C++
// replacement contract here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  alloc_hook::note();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  alloc_hook::note();
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hacc::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Philox rng(seed);
  std::vector<Complex> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto [re, im] = rng.gaussian2(i);
    v[i] = Complex(re, im);
  }
  return v;
}

double max_abs_diff(const std::vector<Complex>& a,
                    const std::vector<Complex>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

// ---- block decomposition ----------------------------------------------------

TEST(Decomp, BlocksPartitionTheAxis) {
  for (std::size_t n : {1u, 5u, 16u, 17u, 100u}) {
    for (int p = 1; p <= 9; ++p) {
      if (static_cast<std::size_t>(p) > n) continue;
      std::size_t covered = 0;
      for (int r = 0; r < p; ++r) {
        const Range b = block_range(n, p, r);
        EXPECT_EQ(b.lo, covered);
        covered = b.hi;
        EXPECT_GE(b.extent(), n / static_cast<std::size_t>(p));
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(Decomp, OwnerIsConsistentWithRanges) {
  for (std::size_t n : {7u, 16u, 33u}) {
    for (int p = 1; p <= 8; ++p) {
      for (std::size_t i = 0; i < n; ++i) {
        const int owner = block_owner(n, p, i);
        EXPECT_TRUE(block_range(n, p, owner).contains(i));
      }
    }
  }
}

// ---- 1-D --------------------------------------------------------------------

class Fft1DSizes : public ::testing::TestWithParam<std::size_t> {};

// Powers of two, smooth composites (incl. paper grid sizes scaled down),
// primes (Bluestein), and awkward sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, Fft1DSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 12, 15, 16,
                                           20, 27, 30, 32, 36, 45, 60, 64, 97,
                                           100, 101, 128, 160, 200, 240, 243,
                                           256, 337, 512, 1000, 1024));

TEST_P(Fft1DSizes, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 42 + n);
  auto expect = dft_reference(x, Direction::kForward);
  Fft1D plan(n);
  plan.transform(x.data(), Direction::kForward);
  EXPECT_LT(max_abs_diff(x, expect), 1e-9 * static_cast<double>(n) + 1e-12)
      << "n=" << n << " smooth=" << plan.smooth();
}

TEST_P(Fft1DSizes, InverseRoundTrip) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 7 + n);
  const auto orig = x;
  Fft1D plan(n);
  plan.transform(x.data(), Direction::kForward);
  plan.inverse_scaled(x.data());
  EXPECT_LT(max_abs_diff(x, orig), 1e-10 * static_cast<double>(n) + 1e-12);
}

TEST_P(Fft1DSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 1 + n);
  double time_energy = 0;
  for (const auto& v : x) time_energy += std::norm(v);
  Fft1D plan(n);
  plan.transform(x.data(), Direction::kForward);
  double freq_energy = 0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * (time_energy + 1.0));
}

// ---- 1-D real-to-complex ----------------------------------------------------

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  Philox rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.gaussian2(i)[0];
  return v;
}

class Fft1DR2CSizes : public ::testing::TestWithParam<std::size_t> {};

// Even (two-for-one path): powers of two, smooth composites (160 = 2^5*5 is
// the paper's 5120 grid scaled down), 2*prime Bluestein half-plans. Odd
// (full-plan fallback): smooth, awkward, and prime lengths.
INSTANTIATE_TEST_SUITE_P(Sizes, Fft1DR2CSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 15, 16, 27,
                                           30, 45, 64, 97, 100, 101, 128, 160,
                                           243, 256, 337, 674, 1024));

TEST_P(Fft1DR2CSizes, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  const auto x = random_real(n, 314 + n);
  std::vector<Complex> full(n);
  for (std::size_t j = 0; j < n; ++j) full[j] = Complex(x[j], 0.0);
  const auto expect = dft_reference(full, Direction::kForward);
  Fft1D plan(n);
  std::vector<Complex> half(plan.half_size());
  plan.forward_r2c(x.data(), half.data());
  for (std::size_t k = 0; k < half.size(); ++k) {
    EXPECT_LT(std::abs(half[k] - expect[k]),
              1e-9 * static_cast<double>(n) + 1e-12)
        << "n=" << n << " k=" << k;
  }
}

TEST_P(Fft1DR2CSizes, RoundTripRestoresSignal) {
  const std::size_t n = GetParam();
  const auto x = random_real(n, 2718 + n);
  Fft1D plan(n);
  std::vector<Complex> half(plan.half_size());
  std::vector<double> back(n);
  plan.forward_r2c(x.data(), half.data());
  plan.inverse_c2r(half.data(), back.data());
  double m = 0;
  for (std::size_t j = 0; j < n; ++j) m = std::max(m, std::abs(back[j] - x[j]));
  EXPECT_LT(m, 1e-10 * static_cast<double>(n) + 1e-12) << "n=" << n;
}

TEST(Fft1DR2C, HalfSizeIsNzOver2Plus1) {
  EXPECT_EQ(Fft1D(8).half_size(), 5u);
  EXPECT_EQ(Fft1D(7).half_size(), 4u);
  EXPECT_EQ(Fft1D(1).half_size(), 1u);
}

TEST(Fft1DR2C, SingleModeLandsInCorrectBin) {
  const std::size_t n = 32, mode = 3;
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j)
    x[j] = std::cos(2.0 * std::numbers::pi * static_cast<double>(mode * j) /
                    static_cast<double>(n));
  Fft1D plan(n);
  std::vector<Complex> half(plan.half_size());
  plan.forward_r2c(x.data(), half.data());
  for (std::size_t k = 0; k < half.size(); ++k) {
    const double expect = (k == mode) ? static_cast<double>(n) / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(half[k]), expect, 1e-9) << "k=" << k;
  }
}

TEST(Fft1D, SmoothDetection) {
  EXPECT_TRUE(Fft1D(1024).smooth());
  EXPECT_TRUE(Fft1D(10240).smooth());  // 2^11 * 5: the paper's largest grid
  EXPECT_TRUE(Fft1D(9216).smooth());   // 2^10 * 9
  EXPECT_FALSE(Fft1D(337).smooth());   // prime > 31
  EXPECT_FALSE(Fft1D(2 * 337).smooth());
}

TEST(Fft1D, DeltaTransformsToConstant) {
  const std::size_t n = 30;
  std::vector<Complex> x(n, Complex(0, 0));
  x[0] = Complex(1, 0);
  Fft1D(n).transform(x.data(), Direction::kForward);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1D, SingleModeLandsInCorrectBin) {
  const std::size_t n = 64, mode = 5;
  std::vector<Complex> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(mode * j) /
                         static_cast<double>(n);
    x[j] = Complex(std::cos(phase), std::sin(phase));
  }
  Fft1D(n).transform(x.data(), Direction::kForward);
  for (std::size_t k = 0; k < n; ++k) {
    const double expect = (k == mode) ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(x[k]), expect, 1e-9) << "k=" << k;
  }
}

TEST(Fft1D, BatchMatchesIndividual) {
  const std::size_t n = 48, count = 5;
  auto data = random_signal(n * count, 11);
  auto expect = data;
  Fft1D plan(n);
  for (std::size_t i = 0; i < count; ++i)
    plan.transform(expect.data() + i * n, Direction::kForward);
  plan.transform_batch(data.data(), count, Direction::kForward);
  EXPECT_EQ(max_abs_diff(data, expect), 0.0);
}

TEST(Fft1D, LargeBatchThreadedMatchesSerial) {
  // transform_batch threads when count >= 64; results must match per-line
  // transforms exactly.
  const std::size_t n = 64, count = 200;
  auto data = random_signal(n * count, 77);
  auto expect = data;
  Fft1D plan(n);
  for (std::size_t i = 0; i < count; ++i)
    plan.transform(expect.data() + i * n, Direction::kForward);
  plan.transform_batch(data.data(), count, Direction::kForward);
  EXPECT_EQ(max_abs_diff(data, expect), 0.0);
}

TEST(Fft1D, ConcurrentTransformsOnSharedPlanAreSafe) {
  // Hammer one plan from many threads; every result must equal the
  // single-threaded reference (thread-local scratch isolation).
  const std::size_t n = 96;
  Fft1D plan(n);
  auto base = random_signal(n, 31);
  auto expect = base;
  plan.transform(expect.data(), Direction::kForward);
#pragma omp parallel for
  for (int t = 0; t < 32; ++t) {
    auto work = base;
    plan.transform(work.data(), Direction::kForward);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(work[j], expect[j]);
    }
  }
}

TEST(Fft1D, StridedMatchesContiguous) {
  const std::size_t n = 36, stride = 7;
  auto packed = random_signal(n, 13);
  std::vector<Complex> strided(n * stride, Complex(-1, -1));
  for (std::size_t j = 0; j < n; ++j) strided[j * stride] = packed[j];
  Fft1D plan(n);
  plan.transform(packed.data(), Direction::kForward);
  plan.transform_strided(strided.data(), stride, Direction::kForward);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(std::abs(strided[j * stride] - packed[j]), 0.0, 1e-12);
  }
  // Gaps untouched.
  EXPECT_EQ(strided[1], Complex(-1, -1));
}

TEST(Fft1D, ZeroLengthRejected) { EXPECT_THROW(Fft1D(0), Error); }

// ---- serial 3-D ---------------------------------------------------------------

TEST(Fft3DLocal, MatchesBruteForceOnTinyGrid) {
  const std::size_t nx = 4, ny = 3, nz = 5;
  auto x = random_signal(nx * ny * nz, 21);
  // Brute force 3-D DFT.
  std::vector<Complex> expect(x.size(), Complex(0, 0));
  for (std::size_t kx = 0; kx < nx; ++kx)
    for (std::size_t ky = 0; ky < ny; ++ky)
      for (std::size_t kz = 0; kz < nz; ++kz) {
        Complex acc(0, 0);
        for (std::size_t jx = 0; jx < nx; ++jx)
          for (std::size_t jy = 0; jy < ny; ++jy)
            for (std::size_t jz = 0; jz < nz; ++jz) {
              const double phase =
                  -2.0 * std::numbers::pi *
                  (static_cast<double>(kx * jx) / static_cast<double>(nx) +
                   static_cast<double>(ky * jy) / static_cast<double>(ny) +
                   static_cast<double>(kz * jz) / static_cast<double>(nz));
              acc += x[(jx * ny + jy) * nz + jz] *
                     Complex(std::cos(phase), std::sin(phase));
            }
        expect[(kx * ny + ky) * nz + kz] = acc;
      }
  Fft3DLocal(nx, ny, nz).transform(x.data(), Direction::kForward);
  EXPECT_LT(max_abs_diff(x, expect), 1e-9);
}

TEST(Fft3DLocal, RoundTrip) {
  const std::size_t n = 16;
  auto x = random_signal(n * n * n, 3);
  const auto orig = x;
  Fft3DLocal fft(n, n, n);
  fft.transform(x.data(), Direction::kForward);
  fft.inverse_scaled(x.data());
  EXPECT_LT(max_abs_diff(x, orig), 1e-10);
}

// ---- distributed: shared helpers ---------------------------------------------

/// Builds the same deterministic global field on every rank.
std::vector<Complex> global_field(std::size_t nx, std::size_t ny,
                                  std::size_t nz, std::uint64_t seed) {
  return random_signal(nx * ny * nz, seed);
}

/// Serial reference spectrum of that field.
std::vector<Complex> reference_spectrum(std::vector<Complex> field,
                                        std::size_t nx, std::size_t ny,
                                        std::size_t nz) {
  Fft3DLocal(nx, ny, nz).transform(field.data(), Direction::kForward);
  return field;
}

// ---- pencil -------------------------------------------------------------------

struct PencilCase {
  std::size_t nx, ny, nz;
  int p1, p2;
};

class PencilTest : public ::testing::TestWithParam<PencilCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, PencilTest,
    ::testing::Values(PencilCase{8, 8, 8, 1, 1}, PencilCase{8, 8, 8, 2, 2},
                      PencilCase{8, 8, 8, 4, 2}, PencilCase{8, 8, 8, 2, 4},
                      PencilCase{16, 16, 16, 4, 4},
                      // uneven blocks: dims don't divide the grid
                      PencilCase{12, 10, 14, 3, 2},
                      PencilCase{9, 7, 11, 2, 3},
                      // non-cubic grids
                      PencilCase{16, 8, 4, 2, 2},
                      PencilCase{5, 6, 7, 5, 3}));

TEST_P(PencilTest, ForwardMatchesSerial) {
  const auto c = GetParam();
  const auto field = global_field(c.nx, c.ny, c.nz, 99);
  const auto expect = reference_spectrum(field, c.nx, c.ny, c.nz);
  comm::Machine::run(c.p1 * c.p2, [&](comm::Comm& world) {
    PencilFft3D fft(world, c.nx, c.ny, c.nz, c.p1, c.p2);
    const Box3D rb = fft.real_box();
    std::vector<Complex> local(rb.volume());
    std::size_t i = 0;
    for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x)
      for (std::size_t y = rb.y.lo; y < rb.y.hi; ++y)
        for (std::size_t z = rb.z.lo; z < rb.z.hi; ++z)
          local[i++] = field[(x * c.ny + y) * c.nz + z];
    fft.forward(local);
    const Box3D sb = fft.spectral_box();
    ASSERT_EQ(local.size(), sb.volume());
    i = 0;
    for (std::size_t x = sb.x.lo; x < sb.x.hi; ++x)
      for (std::size_t y = sb.y.lo; y < sb.y.hi; ++y)
        for (std::size_t z = sb.z.lo; z < sb.z.hi; ++z) {
          EXPECT_LT(std::abs(local[i] - expect[(x * c.ny + y) * c.nz + z]),
                    1e-8)
              << "k=(" << x << "," << y << "," << z << ")";
          ++i;
        }
  });
}

TEST_P(PencilTest, RoundTripRestoresField) {
  const auto c = GetParam();
  const auto field = global_field(c.nx, c.ny, c.nz, 5);
  comm::Machine::run(c.p1 * c.p2, [&](comm::Comm& world) {
    PencilFft3D fft(world, c.nx, c.ny, c.nz, c.p1, c.p2);
    const Box3D rb = fft.real_box();
    std::vector<Complex> local(rb.volume());
    std::size_t i = 0;
    for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x)
      for (std::size_t y = rb.y.lo; y < rb.y.hi; ++y)
        for (std::size_t z = rb.z.lo; z < rb.z.hi; ++z)
          local[i++] = field[(x * c.ny + y) * c.nz + z];
    const auto orig = local;
    fft.forward(local);
    fft.inverse(local);
    ASSERT_EQ(local.size(), orig.size());
    double m = 0;
    for (std::size_t j = 0; j < local.size(); ++j)
      m = std::max(m, std::abs(local[j] - orig[j]));
    EXPECT_LT(m, 1e-10);
  });
}

TEST_P(PencilTest, ForwardR2CMatchesHalfSpectrum) {
  const auto c = GetParam();
  std::vector<double> field(c.nx * c.ny * c.nz);
  {
    Philox rng(423);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] = rng.gaussian2(i)[0];
  }
  std::vector<Complex> full(field.size());
  for (std::size_t i = 0; i < field.size(); ++i)
    full[i] = Complex(field[i], 0.0);
  const auto expect = reference_spectrum(std::move(full), c.nx, c.ny, c.nz);
  comm::Machine::run(c.p1 * c.p2, [&](comm::Comm& world) {
    PencilFft3D fft(world, c.nx, c.ny, c.nz, c.p1, c.p2);
    const Box3D rb = fft.real_box();
    std::vector<double> local(rb.volume());
    std::size_t i = 0;
    for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x)
      for (std::size_t y = rb.y.lo; y < rb.y.hi; ++y)
        for (std::size_t z = rb.z.lo; z < rb.z.hi; ++z)
          local[i++] = field[(x * c.ny + y) * c.nz + z];
    std::vector<Complex> spec;
    fft.forward_r2c(std::span<const double>(local), spec);
    const Box3D sb = fft.spectral_box_r2c();
    ASSERT_EQ(spec.size(), sb.volume());
    EXPECT_EQ(sb.z.hi, std::min(sb.z.hi, fft.nzh()));
    i = 0;
    for (std::size_t x = sb.x.lo; x < sb.x.hi; ++x)
      for (std::size_t y = sb.y.lo; y < sb.y.hi; ++y)
        for (std::size_t z = sb.z.lo; z < sb.z.hi; ++z) {
          EXPECT_LT(std::abs(spec[i] - expect[(x * c.ny + y) * c.nz + z]),
                    1e-8)
              << "k=(" << x << "," << y << "," << z << ")";
          ++i;
        }
  });
}

TEST_P(PencilTest, R2CRoundTripRestoresField) {
  const auto c = GetParam();
  std::vector<double> field(c.nx * c.ny * c.nz);
  {
    Philox rng(77);
    for (std::size_t i = 0; i < field.size(); ++i)
      field[i] = rng.gaussian2(i)[0];
  }
  comm::Machine::run(c.p1 * c.p2, [&](comm::Comm& world) {
    PencilFft3D fft(world, c.nx, c.ny, c.nz, c.p1, c.p2);
    const Box3D rb = fft.real_box();
    std::vector<double> local(rb.volume());
    std::size_t i = 0;
    for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x)
      for (std::size_t y = rb.y.lo; y < rb.y.hi; ++y)
        for (std::size_t z = rb.z.lo; z < rb.z.hi; ++z)
          local[i++] = field[(x * c.ny + y) * c.nz + z];
    std::vector<Complex> spec;
    std::vector<double> back;
    fft.forward_r2c(std::span<const double>(local), spec);
    fft.inverse_c2r(spec, back);
    ASSERT_EQ(back.size(), local.size());
    double m = 0;
    for (std::size_t j = 0; j < back.size(); ++j)
      m = std::max(m, std::abs(back[j] - local[j]));
    EXPECT_LT(m, 1e-10);
  });
}

TEST(Pencil, SteadyStateTransformsDoNotAllocate) {
  // The acceptance contract of the persistent workspace: after one warm-up
  // pass, forward/inverse and forward_r2c/inverse_c2r perform no heap
  // allocations. Run single-rank so the exchange takes the self-block
  // memcpy path (multi-rank mailbox envelopes are SimMPI transport, not
  // FFT workspace). The 16^3 grid keeps every OpenMP `if` clause false, so
  // the measured path is exactly the serial steady-state code.
  comm::Machine::run(1, [](comm::Comm& world) {
    const std::size_t n = 16;
    PencilFft3D fft(world, n, n, n, 1, 1);
    std::vector<double> rin(n * n * n);
    Philox rng(99);
    for (std::size_t i = 0; i < rin.size(); ++i) rin[i] = rng.gaussian2(i)[0];
    std::vector<Complex> data, half;
    std::vector<double> rout;
    for (int pass = 0; pass < 2; ++pass) {  // warm-up sizes every buffer
      data.assign(rin.size(), Complex(1.0, 0.5));
      fft.forward(data);
      fft.inverse(data);
      fft.forward_r2c(std::span<const double>(rin), half);
      fft.inverse_c2r(half, rout);
    }
    alloc_hook::count.store(0);
    alloc_hook::armed.store(true);
    data.assign(rin.size(), Complex(1.0, 0.5));
    fft.forward(data);
    fft.inverse(data);
    fft.forward_r2c(std::span<const double>(rin), half);
    fft.inverse_c2r(half, rout);
    alloc_hook::armed.store(false);
    EXPECT_EQ(alloc_hook::count.load(), 0u);
  });
}

TEST(Pencil, StatsAccumulatePhases) {
  comm::Machine::run(4, [](comm::Comm& world) {
    const std::size_t n = 8;
    PencilFft3D fft(world, n, n, n, 2, 2);
    EXPECT_EQ(fft.stats().transforms, 0u);
    std::vector<Complex> data(fft.real_box().volume(), Complex(1, 0));
    fft.forward(data);
    fft.inverse(data);
    const auto& s = fft.stats();
    EXPECT_EQ(s.transforms, 2u);
    EXPECT_GT(s.fft_seconds, 0.0);
    EXPECT_GT(s.transpose_seconds, 0.0);
    EXPECT_GT(s.bytes_moved, 0u);
    fft.reset_stats();
    EXPECT_EQ(fft.stats().transforms, 0u);
    EXPECT_EQ(fft.stats().bytes_moved, 0u);
  });
}

TEST(Pencil, BoxesTileTheGrid) {
  const std::size_t n = 10;
  const int p1 = 3, p2 = 2;
  std::vector<int> real_cover(n * n * n, 0), spec_cover(n * n * n, 0);
  std::mutex mu;
  comm::Machine::run(p1 * p2, [&](comm::Comm& world) {
    PencilFft3D fft(world, n, n, n, p1, p2);
    std::lock_guard lock(mu);
    for (auto [box, cover] :
         {std::pair{fft.real_box(), &real_cover},
          std::pair{fft.spectral_box(), &spec_cover}}) {
      for (std::size_t x = box.x.lo; x < box.x.hi; ++x)
        for (std::size_t y = box.y.lo; y < box.y.hi; ++y)
          for (std::size_t z = box.z.lo; z < box.z.hi; ++z)
            ++(*cover)[(x * n + y) * n + z];
    }
  });
  for (std::size_t i = 0; i < real_cover.size(); ++i) {
    EXPECT_EQ(real_cover[i], 1);
    EXPECT_EQ(spec_cover[i], 1);
  }
}

TEST(Pencil, RejectsBadProcessGrid) {
  comm::Machine::run(4, [](comm::Comm& world) {
    EXPECT_THROW(PencilFft3D(world, 8, 8, 8, 3, 1), Error);
  });
}

TEST(Pencil, RejectsOversubscribedAxis) {
  comm::Machine::run(6, [](comm::Comm& world) {
    // p1 = 6 > ny = 4.
    EXPECT_THROW(PencilFft3D(world, 8, 4, 8, 6, 1), Error);
  });
}

// ---- slab ---------------------------------------------------------------------

class SlabTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, SlabTest, ::testing::Values(1, 2, 3, 4, 8));

TEST_P(SlabTest, ForwardMatchesSerial) {
  const int p = GetParam();
  const std::size_t nx = 8, ny = 12, nz = 6;
  const auto field = global_field(nx, ny, nz, 77);
  const auto expect = reference_spectrum(field, nx, ny, nz);
  comm::Machine::run(p, [&](comm::Comm& world) {
    SlabFft3D fft(world, nx, ny, nz);
    const Box3D rb = fft.real_box();
    std::vector<Complex> local(rb.volume());
    std::size_t i = 0;
    for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x)
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t z = 0; z < nz; ++z)
          local[i++] = field[(x * ny + y) * nz + z];
    fft.forward(local);
    const Box3D sb = fft.spectral_box();
    i = 0;
    for (std::size_t x = 0; x < nx; ++x)
      for (std::size_t y = sb.y.lo; y < sb.y.hi; ++y)
        for (std::size_t z = 0; z < nz; ++z) {
          EXPECT_LT(std::abs(local[i] - expect[(x * ny + y) * nz + z]), 1e-8);
          ++i;
        }
  });
}

TEST_P(SlabTest, RoundTrip) {
  const int p = GetParam();
  const std::size_t n = 8;
  const auto field = global_field(n, n, n, 31);
  comm::Machine::run(p, [&](comm::Comm& world) {
    SlabFft3D fft(world, n, n, n);
    const Box3D rb = fft.real_box();
    std::vector<Complex> local(rb.volume());
    std::size_t i = 0;
    for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t z = 0; z < n; ++z)
          local[i++] = field[(x * n + y) * n + z];
    const auto orig = local;
    fft.forward(local);
    fft.inverse(local);
    double m = 0;
    for (std::size_t j = 0; j < local.size(); ++j)
      m = std::max(m, std::abs(local[j] - orig[j]));
    EXPECT_LT(m, 1e-10);
  });
}

TEST(Slab, EnforcesRankLimit) {
  // The slab decomposition is subject to N_rank <= N_fft (paper Sec. IV-A);
  // the pencil FFT exists precisely to lift this.
  comm::Machine::run(9, [](comm::Comm& world) {
    EXPECT_THROW(SlabFft3D(world, 8, 8, 8), Error);
  });
}

}  // namespace
}  // namespace hacc::fft
