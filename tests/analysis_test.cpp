// Tests for the science-analysis tools: halo profiles, the FFT-based
// correlation function (validated against direct real-space computation and
// against its Fourier duality with P(k)), and the Press-Schechter mass
// function.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "comm/comm.h"
#include "cosmology/analysis.h"
#include "util/rng.h"

namespace hacc::cosmology {
namespace {

// ---- halo profiles -------------------------------------------------------------

TEST(HaloProfile, UniformSphereHasFlatProfile) {
  // Particles uniform inside a sphere of radius R: density flat inside,
  // zero outside.
  const double box = 32.0, radius = 4.0;
  tree::ParticleArray p;
  Philox rng(3);
  Philox::Stream s(rng);
  std::size_t count = 0;
  while (count < 4000) {
    const double x = s.uniform(-radius, radius);
    const double y = s.uniform(-radius, radius);
    const double z = s.uniform(-radius, radius);
    if (x * x + y * y + z * z > radius * radius) continue;
    p.push_back(static_cast<float>(16.0 + x), static_cast<float>(16.0 + y),
                static_cast<float>(16.0 + z), 0, 0, 0, 1.0f, count++);
  }
  Halo h;
  h.center = {16.0, 16.0, 16.0};
  const auto prof = halo_profile(p, h, box, 6.0, 12);
  // Inside (r < 3): flat within sampling noise (innermost bins are too
  // sparse for a tight check).
  const double inner = prof[3].density;
  for (std::size_t b = 2; b < 6; ++b) {
    EXPECT_NEAR(prof[b].density / inner, 1.0, 0.3) << "bin " << b;
  }
  // Outside (r > 4.5): empty.
  for (std::size_t b = 10; b < prof.size(); ++b)
    EXPECT_EQ(prof[b].count, 0u);
}

TEST(HaloProfile, ClusteredProfileDeclines) {
  // Gaussian blob: density must fall monotonically (coarse bins).
  const double box = 32.0;
  tree::ParticleArray p;
  Philox rng(5);
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < 5000; ++i) {
    p.push_back(static_cast<float>(16.0 + 1.2 * s.gaussian()),
                static_cast<float>(16.0 + 1.2 * s.gaussian()),
                static_cast<float>(16.0 + 1.2 * s.gaussian()), 0, 0, 0, 1.0f,
                i);
  }
  Halo h;
  h.center = {16.0, 16.0, 16.0};
  const auto prof = halo_profile(p, h, box, 5.0, 8);
  for (std::size_t b = 1; b < 6; ++b)
    EXPECT_LT(prof[b].density, prof[b - 1].density) << "bin " << b;
}

TEST(HaloProfile, PeriodicCenterNearEdgeWorks) {
  const double box = 16.0;
  tree::ParticleArray p;
  Philox rng(7);
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < 1000; ++i) {
    auto wrap = [&](double v) {
      v = std::fmod(v + box, box);
      return static_cast<float>(v);
    };
    p.push_back(wrap(0.5 * s.gaussian()), wrap(0.5 * s.gaussian()),
                wrap(0.5 * s.gaussian()), 0, 0, 0, 1.0f, i);
  }
  Halo h;
  h.center = {0.0, 0.0, 0.0};
  const auto prof = halo_profile(p, h, box, 3.0, 6);
  std::size_t total = 0;
  for (const auto& b : prof) total += b.count;
  EXPECT_GT(total, 950u);  // nearly all particles found despite the seam
}

// ---- correlation function --------------------------------------------------------

TEST(Correlation, SingleModeGivesCosine) {
  // delta = A cos(k x) => xi(r) = (A^2/2) sinc(k r) shell-averaged: xi(0+)
  // ~ A^2/2 > 0 and negative for k r in (pi, 2 pi). Mode 4 puts the first
  // zero crossing at r = 8 Mpc/h, well inside rmax = box/2.
  const std::size_t n = 32;
  const int mode = 4;
  const double box = 64.0, amp = 0.2;
  mesh::BlockDecomp3D d({n, n, n}, comm::Cart3D({1, 1, 1}));
  comm::Machine::run(1, [&](comm::Comm& c) {
    mesh::DistGrid delta(d, 0, 1);
    for (std::size_t x = 0; x < n; ++x)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t z = 0; z < n; ++z)
          delta.at(static_cast<std::ptrdiff_t>(x),
                   static_cast<std::ptrdiff_t>(y),
                   static_cast<std::ptrdiff_t>(z)) =
              amp * std::cos(2.0 * std::numbers::pi * mode *
                             static_cast<double>(x) / static_cast<double>(n));
    auto xi = measure_correlation_function(c, delta, box, 16);
    ASSERT_FALSE(xi.empty());
    EXPECT_NEAR(xi.front().xi, 0.5 * amp * amp, 0.2 * 0.5 * amp * amp);
    // xi at small lag positive, somewhere beyond a quarter wavelength the
    // shell-average goes negative.
    bool crossed = false;
    for (const auto& b : xi) {
      if (b.xi < 0) crossed = true;
    }
    EXPECT_TRUE(crossed);
  });
}

TEST(Correlation, ZeroLagEqualsVariance) {
  const std::size_t n = 16;
  const double box = 32.0;
  mesh::BlockDecomp3D d({n, n, n}, comm::Cart3D({1, 1, 1}));
  comm::Machine::run(1, [&](comm::Comm& c) {
    mesh::DistGrid delta(d, 0, 1);
    Philox rng(9);
    double var = 0, mean = 0;
    for (std::size_t x = 0; x < n; ++x)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t z = 0; z < n; ++z) {
          const double v = rng.gaussian2((x * n + y) * n + z)[0];
          delta.at(static_cast<std::ptrdiff_t>(x),
                   static_cast<std::ptrdiff_t>(y),
                   static_cast<std::ptrdiff_t>(z)) = v;
          mean += v;
        }
    mean /= static_cast<double>(n * n * n);
    for (std::size_t x = 0; x < n; ++x)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t z = 0; z < n; ++z) {
          const double v = delta.at(static_cast<std::ptrdiff_t>(x),
                                    static_cast<std::ptrdiff_t>(y),
                                    static_cast<std::ptrdiff_t>(z)) -= mean;
          var += v * v;
        }
    var /= static_cast<double>(n * n * n);
    // Very fine binning so the first bin contains only the zero lag.
    auto xi = measure_correlation_function(c, delta, box, 16);
    EXPECT_NEAR(xi.front().xi * static_cast<double>(xi.front().cells), var,
                0.05 * var + 1e-12);
    // White noise: all other bins ~ 0.
    for (std::size_t b = 1; b < xi.size(); ++b)
      EXPECT_LT(std::abs(xi[b].xi), 0.1 * var);
  });
}

class CorrelationRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, CorrelationRanks, ::testing::Values(1, 4, 8));

TEST_P(CorrelationRanks, DecompositionIndependent) {
  const int nranks = GetParam();
  const std::size_t n = 16;
  const double box = 32.0;
  auto field = [&](std::size_t x, std::size_t y, std::size_t z) {
    return Philox(42).gaussian2((x * n + y) * n + z)[0] * 0.3;
  };
  static std::vector<CorrelationBin> reference;
  mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    mesh::DistGrid delta(d, c.rank(), 1);
    const auto& b = delta.interior();
    for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
      for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
        for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
          delta.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                   static_cast<std::ptrdiff_t>(y - b.y.lo),
                   static_cast<std::ptrdiff_t>(z - b.z.lo)) = field(x, y, z);
    auto xi = measure_correlation_function(c, delta, box, 10);
    if (c.rank() == 0) {
      if (nranks == 1) {
        reference = xi;
      } else {
        ASSERT_EQ(xi.size(), reference.size());
        for (std::size_t i = 0; i < xi.size(); ++i) {
          EXPECT_NEAR(xi[i].xi, reference[i].xi,
                      1e-10 * (std::abs(reference[i].xi) + 1.0));
          EXPECT_EQ(xi[i].cells, reference[i].cells);
        }
      }
    }
  });
}

// ---- Press-Schechter --------------------------------------------------------------

TEST(PressSchechter, SigmaOfMassDecreases) {
  Cosmology c;
  LinearPower p(c);
  double prev = 1e9;
  for (double m : {1e11, 1e12, 1e13, 1e14, 1e15}) {
    const double s = sigma_of_mass(p, m);
    EXPECT_LT(s, prev) << m;
    prev = s;
  }
  // sigma at the 8 Mpc/h mass scale reproduces sigma8 by construction:
  // M(8 Mpc/h) = (4pi/3) rho_m 8^3.
  const double rho_m = 2.775e11 * c.omega_m;
  const double m8 = 4.0 / 3.0 * std::numbers::pi * rho_m * 512.0;
  EXPECT_NEAR(sigma_of_mass(p, m8), c.sigma8, 1e-6);
}

TEST(PressSchechter, MassFunctionShape) {
  Cosmology c;
  LinearPower p(c);
  // dn/dlnM declines steeply toward cluster masses and is exponentially
  // cut off above the knee.
  const double n12 = press_schechter_dndlnm(p, 0.0, 1e12);
  const double n14 = press_schechter_dndlnm(p, 0.0, 1e14);
  const double n16 = press_schechter_dndlnm(p, 0.0, 1e16);
  EXPECT_GT(n12, n14);
  EXPECT_GT(n14, n16);
  EXPECT_LT(n16, 1e-3 * n14);  // exponential cutoff
  // Rough normalization: ~1e-3 halos / (Mpc/h)^3 / ln M at 1e13 Msun/h.
  const double n13 = press_schechter_dndlnm(p, 0.0, 1e13);
  EXPECT_GT(n13, 1e-5);
  EXPECT_LT(n13, 1e-2);
}

TEST(PressSchechter, HighRedshiftSuppressesClusters) {
  // Clusters form late (paper Sec. V: "they form very late and are hence
  // sensitive probes of the late-time acceleration").
  Cosmology c;
  LinearPower p(c);
  const double now = press_schechter_dndlnm(p, 0.0, 1e14);
  const double early = press_schechter_dndlnm(p, 2.0, 1e14);
  EXPECT_LT(early, 0.2 * now);
}

}  // namespace
}  // namespace hacc::cosmology
