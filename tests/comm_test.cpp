// Tests for the SimMPI runtime: point-to-point semantics, every collective,
// communicator split, Cartesian topologies, failure propagation.
//
// Collectives are verified across a sweep of rank counts (powers of two and
// awkward odd sizes) via parameterized tests.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "comm/cart.h"
#include "comm/comm.h"
#include "comm/fault.h"
#include "comm/telemetry.h"
#include "obs/counters.h"
#include "obs/obs.h"
#include "util/error.h"

namespace hacc::comm {
namespace {

TEST(Machine, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> seen(8);
  Machine::run(8, [&](Comm& c) {
    count.fetch_add(1);
    seen[static_cast<std::size_t>(c.rank())].fetch_add(1);
    EXPECT_EQ(c.size(), 8);
  });
  EXPECT_EQ(count.load(), 8);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Machine, SingleRankWorks) {
  Machine::run(1, [](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    EXPECT_EQ(c.allreduce_value(5, ReduceOp::kSum), 5);
  });
}

TEST(Machine, ZeroRanksRejected) {
  EXPECT_THROW(Machine::run(0, [](Comm&) {}), Error);
}

TEST(Machine, RankFailurePropagatesWithoutDeadlock) {
  EXPECT_THROW(Machine::run(4,
                            [](Comm& c) {
                              if (c.rank() == 2) throw Error("rank 2 died");
                              // Other ranks block on a message that will
                              // never come; abort must wake them.
                              if (c.rank() == 0)
                                (void)c.recv_bytes(1, /*tag=*/77);
                              c.barrier();
                            }),
               Error);
}

TEST(PointToPoint, TypedRoundTrip) {
  Machine::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> data{1.5, 2.5, 3.5};
      c.send(1, 7, std::span<const double>(data));
      auto back = c.recv_vector<int>(1, 8);
      ASSERT_EQ(back.size(), 2u);
      EXPECT_EQ(back[0], 10);
      EXPECT_EQ(back[1], 20);
    } else {
      auto got = c.recv_vector<double>(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[1], 2.5);
      const std::vector<int> reply{10, 20};
      c.send(0, 8, std::span<const int>(reply));
    }
  });
}

TEST(PointToPoint, NonOvertakingPerSourceAndTag) {
  Machine::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) c.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(c.recv_value<int>(0, 3), i);
    }
  });
}

TEST(PointToPoint, TagsSeparateStreams) {
  Machine::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, /*tag=*/1, 100);
      c.send_value(1, /*tag=*/2, 200);
    } else {
      // Receive in the opposite order of sending: tag matching must hold.
      EXPECT_EQ(c.recv_value<int>(0, 2), 200);
      EXPECT_EQ(c.recv_value<int>(0, 1), 100);
    }
  });
}

TEST(PointToPoint, SelfSendWorks) {
  Machine::run(3, [](Comm& c) {
    c.send_value(c.rank(), 5, c.rank() * 11);
    EXPECT_EQ(c.recv_value<int>(c.rank(), 5), c.rank() * 11);
  });
}

TEST(PointToPoint, MovedPayloadRoundTrip) {
  // The rvalue send_bytes overload moves the payload into the mailbox
  // instead of copying; the receiver must see the identical bytes.
  Machine::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> payload(1024);
      for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::byte>(i * 7);
      c.send_bytes(1, 9, std::move(payload));
    } else {
      const auto got = c.recv_bytes(0, 9);
      ASSERT_EQ(got.size(), 1024u);
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], static_cast<std::byte>(i * 7));
    }
  });
}

TEST(PointToPoint, SizeMismatchThrows) {
  EXPECT_THROW(Machine::run(2,
                            [](Comm& c) {
                              if (c.rank() == 0) {
                                c.send_value<double>(1, 1, 3.0);
                              } else {
                                int wrong[3];
                                c.recv(0, 1, std::span<int>(wrong));
                              }
                            }),
               Error);
}

TEST(PointToPoint, SendRecvExchange) {
  Machine::run(4, [](Comm& c) {
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() - 1 + c.size()) % c.size();
    const std::vector<int> mine{c.rank()};
    auto got = c.sendrecv(right, left, 9, std::span<const int>(mine));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], left);
  });
}

// ---- collectives over a sweep of communicator sizes ------------------------

class CollectiveTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST_P(CollectiveTest, Barrier) {
  const int p = GetParam();
  std::atomic<int> arrived{0};
  Machine::run(p, [&](Comm& c) {
    arrived.fetch_add(1);
    c.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), p);
    c.barrier();
    c.barrier();  // repeated barriers must not interfere
  });
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int p = GetParam();
  Machine::run(p, [&](Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data(5, c.rank() == root ? root * 100 : -1);
      c.bcast(std::span<int>(data), root);
      for (int v : data) EXPECT_EQ(v, root * 100);
    }
  });
}

TEST_P(CollectiveTest, ReduceSumToEveryRoot) {
  const int p = GetParam();
  const int expect = p * (p - 1) / 2;
  Machine::run(p, [&](Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<long long> v{c.rank(), 2LL * c.rank()};
      c.reduce(std::span<long long>(v), ReduceOp::kSum, root);
      if (c.rank() == root) {
        EXPECT_EQ(v[0], expect);
        EXPECT_EQ(v[1], 2LL * expect);
      }
      c.barrier();
    }
  });
}

TEST_P(CollectiveTest, AllreduceMinMaxSum) {
  const int p = GetParam();
  Machine::run(p, [&](Comm& c) {
    EXPECT_EQ(c.allreduce_value(c.rank(), ReduceOp::kSum), p * (p - 1) / 2);
    EXPECT_EQ(c.allreduce_value(c.rank(), ReduceOp::kMin), 0);
    EXPECT_EQ(c.allreduce_value(c.rank(), ReduceOp::kMax), p - 1);
    EXPECT_DOUBLE_EQ(c.allreduce_value(1.5, ReduceOp::kSum), 1.5 * p);
  });
}

TEST_P(CollectiveTest, ExclusiveScanSum) {
  const int p = GetParam();
  Machine::run(p, [&](Comm& c) {
    // value = rank + 1 -> prefix at rank r is r(r+1)/2.
    const long long prefix = c.exscan_sum<long long>(c.rank() + 1);
    EXPECT_EQ(prefix, static_cast<long long>(c.rank()) * (c.rank() + 1) / 2);
    // Doubles work too.
    const double dp = c.exscan_sum(0.5);
    EXPECT_DOUBLE_EQ(dp, 0.5 * c.rank());
  });
}

TEST(ExScan, AssignsContiguousIdRanges) {
  // The intended use: globally contiguous id ranges from local counts.
  Machine::run(4, [](Comm& c) {
    const std::uint64_t local_count = 10 + 5 * static_cast<std::uint64_t>(c.rank());
    const std::uint64_t first_id = c.exscan_sum(local_count);
    // Rank r starts where ranks 0..r-1 ended.
    std::uint64_t expect = 0;
    for (int r = 0; r < c.rank(); ++r)
      expect += 10 + 5 * static_cast<std::uint64_t>(r);
    EXPECT_EQ(first_id, expect);
  });
}

TEST_P(CollectiveTest, GatherToEveryRoot) {
  const int p = GetParam();
  Machine::run(p, [&](Comm& c) {
    for (int root = 0; root < p; ++root) {
      const std::vector<int> mine{c.rank(), c.rank() + 1000};
      std::vector<int> all(c.rank() == root ? 2 * static_cast<std::size_t>(p)
                                            : 0);
      c.gather(std::span<const int>(mine), std::span<int>(all), root);
      if (c.rank() == root) {
        for (int r = 0; r < p; ++r) {
          EXPECT_EQ(all[2 * static_cast<std::size_t>(r)], r);
          EXPECT_EQ(all[2 * static_cast<std::size_t>(r) + 1], r + 1000);
        }
      }
      c.barrier();
    }
  });
}

TEST_P(CollectiveTest, GathervConcatenatesVariableContributions) {
  const int p = GetParam();
  Machine::run(p, [&](Comm& c) {
    // Rank r contributes r elements (rank 0 none): the fan-in used by the
    // gio aggregation layer.
    std::vector<int> mine;
    for (int i = 0; i < c.rank(); ++i) mine.push_back(c.rank() * 100 + i);
    std::vector<std::size_t> counts;
    const auto all = c.gatherv(std::span<const int>(mine), 0, &counts);
    if (c.rank() == 0) {
      ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
      std::size_t at = 0;
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(counts[static_cast<std::size_t>(r)],
                  static_cast<std::size_t>(r));
        for (int i = 0; i < r; ++i) EXPECT_EQ(all[at++], r * 100 + i);
      }
      EXPECT_EQ(all.size(), at);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveTest, Allgather) {
  const int p = GetParam();
  Machine::run(p, [&](Comm& c) {
    const std::vector<int> mine{c.rank() * 3, c.rank() * 3 + 1};
    std::vector<int> all(2 * static_cast<std::size_t>(p));
    c.allgather(std::span<const int>(mine), std::span<int>(all));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r)], r * 3);
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r) + 1], r * 3 + 1);
    }
  });
}

TEST_P(CollectiveTest, AlltoallvTransposesContributions) {
  const int p = GetParam();
  Machine::run(p, [&](Comm& c) {
    // Rank r sends r+1 copies of value r*1000+dst to each destination dst.
    std::vector<int> send;
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    for (int dst = 0; dst < p; ++dst) {
      counts[static_cast<std::size_t>(dst)] =
          static_cast<std::size_t>(c.rank() + 1);
      for (int k = 0; k <= c.rank(); ++k)
        send.push_back(c.rank() * 1000 + dst);
    }
    std::vector<std::size_t> rcounts;
    auto got = c.alltoallv(std::span<const int>(send),
                           std::span<const std::size_t>(counts), rcounts);
    ASSERT_EQ(rcounts.size(), static_cast<std::size_t>(p));
    std::size_t off = 0;
    for (int src = 0; src < p; ++src) {
      EXPECT_EQ(rcounts[static_cast<std::size_t>(src)],
                static_cast<std::size_t>(src + 1));
      for (std::size_t k = 0; k < rcounts[static_cast<std::size_t>(src)]; ++k)
        EXPECT_EQ(got[off + k], src * 1000 + c.rank());
      off += rcounts[static_cast<std::size_t>(src)];
    }
    EXPECT_EQ(off, got.size());
  });
}

TEST_P(CollectiveTest, AlltoallvIntoMatchesAndReusesBuffers) {
  const int p = GetParam();
  Machine::run(p, [&](Comm& c) {
    std::vector<double> send;
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    for (int dst = 0; dst < p; ++dst) {
      counts[static_cast<std::size_t>(dst)] =
          static_cast<std::size_t>(dst + 1);
      for (int k = 0; k <= dst; ++k)
        send.push_back(c.rank() * 100.0 + dst + 0.25 * k);
    }
    std::vector<std::size_t> rcounts_ref;
    const auto expect =
        c.alltoallv(std::span<const double>(send),
                    std::span<const std::size_t>(counts), rcounts_ref);
    // The _into form must produce identical contents, and a second call
    // must reuse the caller's buffers without growing them.
    std::vector<double> recv;
    std::vector<std::size_t> rcounts;
    c.alltoallv_into(std::span<const double>(send),
                     std::span<const std::size_t>(counts), recv, rcounts);
    EXPECT_EQ(recv, expect);
    EXPECT_EQ(rcounts, rcounts_ref);
    const auto cap = recv.capacity();
    const auto* ptr = recv.data();
    c.alltoallv_into(std::span<const double>(send),
                     std::span<const std::size_t>(counts), recv, rcounts);
    EXPECT_EQ(recv, expect);
    EXPECT_EQ(recv.capacity(), cap);
    EXPECT_EQ(recv.data(), ptr);
  });
}

TEST_P(CollectiveTest, SplitByParity) {
  const int p = GetParam();
  Machine::run(p, [&](Comm& c) {
    Comm sub = c.split(c.rank() % 2, c.rank());
    ASSERT_TRUE(sub.valid());
    const int expected_size = p / 2 + ((c.rank() % 2 == 0) ? p % 2 : 0);
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // The sub-communicator must be fully functional and isolated.
    const int sum = sub.allreduce_value(c.rank(), ReduceOp::kSum);
    int expect = 0;
    for (int r = c.rank() % 2; r < p; r += 2) expect += r;
    EXPECT_EQ(sum, expect);
    c.barrier();
  });
}

TEST(Split, NegativeColorExcluded) {
  Machine::run(4, [](Comm& c) {
    Comm sub = c.split(c.rank() == 0 ? -1 : 1, c.rank());
    if (c.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
    }
  });
}

TEST(Split, KeyControlsOrdering) {
  Machine::run(4, [](Comm& c) {
    // Reverse the rank order via the key.
    Comm sub = c.split(0, -c.rank());
    EXPECT_EQ(sub.rank(), c.size() - 1 - c.rank());
  });
}

TEST(Split, NestedSplitWorks) {
  Machine::run(8, [](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    EXPECT_EQ(quarter.allreduce_value(1, ReduceOp::kSum), 2);
  });
}

// ---- Cartesian topology -----------------------------------------------------

TEST(DimsCreate, FactorizesBalanced) {
  EXPECT_EQ(dims_create(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(dims_create(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(dims_create(1, 3), (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(dims_create(6, 1), (std::vector<int>{6}));
}

TEST(DimsCreate, ProductMatchesForManyCounts) {
  for (int n = 1; n <= 64; ++n) {
    for (int d = 1; d <= 3; ++d) {
      auto dims = dims_create(n, d);
      int prod = 1;
      for (int x : dims) prod *= x;
      EXPECT_EQ(prod, n) << "n=" << n << " d=" << d;
    }
  }
}

TEST(Cart3D, RoundTripAllRanks) {
  Cart3D topo({3, 2, 4});
  EXPECT_EQ(topo.size(), 24);
  for (int r = 0; r < topo.size(); ++r) {
    EXPECT_EQ(topo.rank_of(topo.coords(r)), r);
  }
}

TEST(Cart3D, PeriodicNeighbors) {
  Cart3D topo({2, 3, 4});
  // Wrap along each dimension.
  const int r = topo.rank_of({0, 0, 0});
  EXPECT_EQ(topo.coords(topo.neighbor(r, 0, -1))[0], 1);
  EXPECT_EQ(topo.coords(topo.neighbor(r, 1, -1))[1], 2);
  EXPECT_EQ(topo.coords(topo.neighbor(r, 2, 5))[2], 1);
}

TEST(Cart2D, BalancedMatchesDimsCreate) {
  auto topo = Cart2D::balanced(12);
  EXPECT_EQ(topo.dims()[0] * topo.dims()[1], 12);
  EXPECT_EQ(topo.dims()[0], 4);
  EXPECT_EQ(topo.dims()[1], 3);
}

// Paper Table II geometries are regular 3-D rank blocks; verify the topology
// machinery handles those exact shapes.
TEST(Cart3D, PaperGeometries) {
  const std::array<std::array<int, 3>, 3> geoms{
      {{16, 8, 16}, {64, 64, 32}, {192, 128, 64}}};
  const std::array<int, 3> cores{2048, 131072, 1572864};
  for (std::size_t i = 0; i < geoms.size(); ++i) {
    Cart3D topo(geoms[i]);
    EXPECT_EQ(topo.size(), cores[i]);
    // Interior rank round trip at scale.
    const int mid = topo.size() / 2;
    EXPECT_EQ(topo.rank_of(topo.coords(mid)), mid);
  }
}

// ---- telemetry: collective byte counters ------------------------------------
//
// The accounting contract (comm/telemetry.h): every payload that crosses the
// mailbox is counted under the innermost collective's op class, including
// zero-byte messages and control traffic (the alltoallv count pre-exchange);
// self-addressed fast-path copies are NOT counted.

TEST(Telemetry, P2pByteCountersMatchPayloadsExactly) {
  Machine::run(2, [](Comm& c) {
    obs::Counters counters;
    obs::Binding binding(nullptr, &counters);
    const std::vector<double> payload(17, 1.0);
    if (c.rank() == 0) {
      c.send(1, 7, std::span<const double>(payload));
      c.send_value(1, 8, 42);
    } else {
      (void)c.recv_vector<double>(0, 7);
      (void)c.recv_value<int>(0, 8);
    }
    const auto& ids = telemetry::ids(telemetry::Op::kP2p);
    if (c.rank() == 0) {
      EXPECT_EQ(counters.value(ids.bytes_sent), 17 * sizeof(double) + sizeof(int));
      EXPECT_EQ(counters.value(ids.msgs_sent), 2u);
      EXPECT_EQ(counters.value(ids.bytes_recv), 0u);
    } else {
      EXPECT_EQ(counters.value(ids.bytes_recv), 17 * sizeof(double) + sizeof(int));
      EXPECT_EQ(counters.value(ids.msgs_recv), 2u);
      EXPECT_EQ(counters.value(ids.bytes_sent), 0u);
    }
  });
}

TEST(Telemetry, AlltoallvByteCountersMatchACraftedExchange) {
  // Rank r sends r+1 doubles to every OTHER rank (the self block bypasses
  // the mailbox and must not be counted). Expected per rank, P = 4:
  //   payload bytes sent  = 3 * (r+1) * sizeof(double)
  //   control bytes sent  = 3 * sizeof(size_t)      (count pre-exchange)
  //   messages sent       = 3 counts + 3 payloads = 6
  //   payload bytes recv  = sum_{s != r} (s+1) * sizeof(double)
  Machine::run(4, [](Comm& c) {
    obs::Counters counters;
    obs::Binding binding(nullptr, &counters);
    const int p = c.size();
    const std::size_t mine = static_cast<std::size_t>(c.rank()) + 1;
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(p), mine);
    std::vector<double> send(mine * static_cast<std::size_t>(p),
                             static_cast<double>(c.rank()));
    std::vector<std::size_t> recv_counts;
    const auto recv = c.alltoallv(std::span<const double>(send),
                                  std::span<const std::size_t>(send_counts),
                                  recv_counts);
    EXPECT_EQ(recv.size(), 1u + 2u + 3u + 4u);

    const auto& ids = telemetry::ids(telemetry::Op::kAlltoall);
    const std::uint64_t expect_sent =
        3 * mine * sizeof(double) + 3 * sizeof(std::size_t);
    std::uint64_t expect_recv = 3 * sizeof(std::size_t);
    for (int s = 0; s < p; ++s)
      if (s != c.rank())
        expect_recv += (static_cast<std::uint64_t>(s) + 1) * sizeof(double);
    EXPECT_EQ(counters.value(ids.bytes_sent), expect_sent);
    EXPECT_EQ(counters.value(ids.bytes_recv), expect_recv);
    EXPECT_EQ(counters.value(ids.msgs_sent), 6u);
    EXPECT_EQ(counters.value(ids.msgs_recv), 6u);
    EXPECT_EQ(counters.value(ids.calls), 1u);
    // Nothing leaked into the p2p class.
    EXPECT_EQ(counters.value(telemetry::ids(telemetry::Op::kP2p).bytes_sent),
              0u);
  });
}

TEST(Telemetry, ZeroCountBlocksStillCountAsMessages) {
  // All counts zero: the pairwise schedule still moves (P-1) empty payloads
  // plus (P-1) control counts in each direction.
  Machine::run(3, [](Comm& c) {
    obs::Counters counters;
    obs::Binding binding(nullptr, &counters);
    std::vector<std::size_t> send_counts(3, 0);
    std::vector<std::size_t> recv_counts;
    (void)c.alltoallv(std::span<const double>(),
                      std::span<const std::size_t>(send_counts), recv_counts);
    const auto& ids = telemetry::ids(telemetry::Op::kAlltoall);
    EXPECT_EQ(counters.value(ids.bytes_sent), 2 * sizeof(std::size_t));
    EXPECT_EQ(counters.value(ids.msgs_sent), 4u);  // 2 counts + 2 empty blocks
  });
}

TEST(Telemetry, BcastBytesSumToTreeTraffic) {
  // A binomial broadcast of B bytes over P ranks moves exactly (P-1)*B
  // payload bytes in total; verify by summing per-rank counters outside the
  // bindings.
  constexpr int kRanks = 8;
  constexpr std::size_t kElems = 25;
  std::array<std::uint64_t, kRanks> sent{}, msgs{};
  Machine::run(kRanks, [&](Comm& c) {
    obs::Counters counters;
    {
      obs::Binding binding(nullptr, &counters);
      std::vector<float> data(kElems, c.rank() == 2 ? 3.5f : 0.0f);
      c.bcast(std::span<float>(data), /*root=*/2);
      for (float v : data) EXPECT_EQ(v, 3.5f);
    }
    const auto& ids = telemetry::ids(telemetry::Op::kBcast);
    sent[static_cast<std::size_t>(c.rank())] = counters.value(ids.bytes_sent);
    msgs[static_cast<std::size_t>(c.rank())] = counters.value(ids.msgs_sent);
    EXPECT_EQ(counters.value(ids.calls), 1u);
  });
  std::uint64_t total_sent = 0, total_msgs = 0;
  for (int r = 0; r < kRanks; ++r) {
    total_sent += sent[static_cast<std::size_t>(r)];
    total_msgs += msgs[static_cast<std::size_t>(r)];
  }
  EXPECT_EQ(total_sent, (kRanks - 1) * kElems * sizeof(float));
  EXPECT_EQ(total_msgs, kRanks - 1);
}

TEST(Telemetry, UnboundRanksCountNothing) {
  Machine::run(2, [](Comm& c) {
    // No Binding: every counter hook must be a no-op, not a crash.
    c.barrier();
    c.allreduce_value(1.0, ReduceOp::kSum);
  });
}

// ---- sparse neighbor exchange ------------------------------------------------

TEST(NeighborAlltoallv, RingExchangeDeliversBlocksInListOrder) {
  // P = 4 ring, every rank's neighbor list is {left, self, right} (sorted,
  // symmetric). Rank r sends r+1 ints of value 100*r + slot to each
  // neighbor; blocks must come back in list order with matching counts.
  Machine::run(4, [](Comm& c) {
    const int p = c.size(), r = c.rank();
    std::vector<int> neighbors{(r + p - 1) % p, r, (r + 1) % p};
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    const std::size_t mine = static_cast<std::size_t>(r) + 1;
    std::vector<std::size_t> send_counts(neighbors.size(), mine);
    std::vector<int> send;
    for (std::size_t s = 0; s < neighbors.size(); ++s)
      for (std::size_t k = 0; k < mine; ++k)
        send.push_back(100 * r + static_cast<int>(s));
    std::vector<int> recv;
    std::vector<std::size_t> recv_counts;
    c.neighbor_alltoallv(std::span<const int>(neighbors),
                         std::span<const int>(send),
                         std::span<const std::size_t>(send_counts), recv,
                         recv_counts);
    ASSERT_EQ(recv_counts.size(), neighbors.size());
    std::size_t off = 0;
    for (std::size_t s = 0; s < neighbors.size(); ++s) {
      const int src = neighbors[s];
      EXPECT_EQ(recv_counts[s], static_cast<std::size_t>(src) + 1);
      // The sender put our rank at *its* slot for us; recompute it.
      std::vector<int> their_nbrs{(src + p - 1) % p, src, (src + 1) % p};
      std::sort(their_nbrs.begin(), their_nbrs.end());
      their_nbrs.erase(
          std::unique(their_nbrs.begin(), their_nbrs.end()),
          their_nbrs.end());
      const auto it = std::find(their_nbrs.begin(), their_nbrs.end(), r);
      ASSERT_NE(it, their_nbrs.end());
      const int expect =
          100 * src + static_cast<int>(it - their_nbrs.begin());
      for (std::size_t k = 0; k < recv_counts[s]; ++k)
        EXPECT_EQ(recv[off + k], expect) << "from " << src;
      off += recv_counts[s];
    }
    EXPECT_EQ(off, recv.size());
  });
}

TEST(NeighborAlltoallv, SingleRankSelfBlockIsACopy) {
  Machine::run(1, [](Comm& c) {
    obs::Counters counters;
    obs::Binding binding(nullptr, &counters);
    const std::vector<int> neighbors{0};
    const std::vector<double> send{1.5, 2.5, 3.5};
    const std::vector<std::size_t> send_counts{3};
    std::vector<double> recv;
    std::vector<std::size_t> recv_counts;
    c.neighbor_alltoallv(std::span<const int>(neighbors),
                         std::span<const double>(send),
                         std::span<const std::size_t>(send_counts), recv,
                         recv_counts);
    EXPECT_EQ(recv, send);
    ASSERT_EQ(recv_counts.size(), 1u);
    EXPECT_EQ(recv_counts[0], 3u);
    // The self block bypasses the mailbox: a call, but no messages/bytes.
    const auto& ids = telemetry::ids(telemetry::Op::kNeighborAlltoall);
    EXPECT_EQ(counters.value(ids.calls), 1u);
    EXPECT_EQ(counters.value(ids.msgs_sent), 0u);
    EXPECT_EQ(counters.value(ids.bytes_sent), 0u);
  });
}

TEST(Telemetry, NeighborAlltoallvCountsPayloadOnlyNoControlRound) {
  // Unlike alltoallv there is NO count pre-exchange: element counts are
  // inferred from byte lengths. P = 3, full stencil incl. self; rank r
  // sends 2 floats to each of its 2 non-self neighbors.
  Machine::run(3, [](Comm& c) {
    obs::Counters counters;
    obs::Binding binding(nullptr, &counters);
    const std::vector<int> neighbors{0, 1, 2};
    std::vector<float> send(6, static_cast<float>(c.rank()));
    const std::vector<std::size_t> send_counts{2, 2, 2};
    std::vector<float> recv;
    std::vector<std::size_t> recv_counts;
    c.neighbor_alltoallv(std::span<const int>(neighbors),
                         std::span<const float>(send),
                         std::span<const std::size_t>(send_counts), recv,
                         recv_counts);
    EXPECT_EQ(recv.size(), 6u);
    const auto& ids = telemetry::ids(telemetry::Op::kNeighborAlltoall);
    EXPECT_EQ(counters.value(ids.bytes_sent), 2 * 2 * sizeof(float));
    EXPECT_EQ(counters.value(ids.msgs_sent), 2u);  // payloads only, no counts
    EXPECT_EQ(counters.value(ids.bytes_recv), 2 * 2 * sizeof(float));
    EXPECT_EQ(counters.value(ids.msgs_recv), 2u);
    EXPECT_EQ(counters.value(ids.calls), 1u);
    EXPECT_EQ(counters.value(telemetry::ids(telemetry::Op::kAlltoall).calls),
              0u);
  });
}

// ---- fault injection -------------------------------------------------------

TEST(FaultInjection, KillAtStepFiresExactlyOnceAcrossRuns) {
  FaultPlan plan;
  plan.kill_at_step(1, 5);
  MachineOptions opts;
  opts.fault_plan = &plan;

  auto stepper = [](Comm& c) {
    for (int s = 1; s <= 6; ++s) {
      fault::set_step(s);
      c.barrier();
    }
  };
  try {
    Machine::run(4, stepper, opts);
    FAIL() << "expected the injected kill to abort the machine";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("step 5"), std::string::npos) << what;
  }
  // One-shot semantics: the same plan supervising a second run must not
  // re-kill (a node dies once; the restarted run replays step 5 cleanly).
  Machine::run(4, stepper, opts);
}

TEST(FaultInjection, DropSendIsOneShot) {
  FaultPlan plan;
  plan.drop_send(/*rank=*/0, /*tag=*/5);
  MachineOptions opts;
  opts.fault_plan = &plan;
  Machine::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 5, 111);  // dropped in transit
      c.send_value(1, 5, 222);  // arrives
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 5), 222);
    }
  }, opts);
}

TEST(FaultInjection, CorruptSendCaughtByPayloadVerification) {
  FaultPlan plan;
  plan.corrupt_send(/*rank=*/0, /*tag=*/9);
  MachineOptions opts;
  opts.fault_plan = &plan;
  opts.verify_payloads = true;
  try {
    Machine::run(2, [](Comm& c) {
      if (c.rank() == 0) {
        const std::array<double, 8> payload{1, 2, 3, 4, 5, 6, 7, 8};
        c.send(1, 9, std::span<const double>(payload));
      } else {
        (void)c.recv_vector<double>(0, 9);
      }
    }, opts);
    FAIL() << "expected the checksum mismatch to abort the machine";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("payload corruption"), std::string::npos) << what;
  }
}

TEST(FaultInjection, CorruptSendInvisibleWithoutVerification) {
  // The same fault without verify_payloads: the flipped byte sails through
  // (this is the silent-corruption scenario verification exists for).
  FaultPlan plan;
  plan.corrupt_send(/*rank=*/0, /*tag=*/9);
  MachineOptions opts;
  opts.fault_plan = &plan;
  Machine::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<std::uint64_t>(1, 9, 0);
    } else {
      EXPECT_NE(c.recv_value<std::uint64_t>(0, 9), 0u);
    }
  }, opts);
}

TEST(FaultInjection, StallRecvDelaysCompletion) {
  FaultPlan plan;
  plan.stall_recv(/*rank=*/1, /*seconds=*/0.1);
  MachineOptions opts;
  opts.fault_plan = &plan;
  const auto t0 = std::chrono::steady_clock::now();
  Machine::run(2, [](Comm& c) {
    if (c.rank() == 0) c.send_value(1, 3, 7);
    if (c.rank() == 1) EXPECT_EQ(c.recv_value<int>(0, 3), 7);
  }, opts);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.1);
}

TEST(FaultInjection, FailCollectiveNamesOpAndRank) {
  FaultPlan plan;
  plan.fail_collective(/*rank=*/2, telemetry::Op::kBcast);
  MachineOptions opts;
  opts.fault_plan = &plan;
  try {
    Machine::run(4, [](Comm& c) {
      (void)c.bcast_value(42, 0);
      c.barrier();
    }, opts);
    FAIL() << "expected the injected collective failure to abort";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bcast"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
  }
}

TEST(FaultInjection, HooksAreNoOpsWithoutPlan) {
  Machine::run(2, [](Comm& c) {
    EXPECT_FALSE(fault::active());
    fault::set_step(3);  // must not throw
    EXPECT_EQ(fault::current_step(), 3);
    c.barrier();
  });
}

TEST(FaultInjection, SharedPlanOneShotFiresOnceAcrossConcurrentMachines) {
  // A campaign may drive several machines at once against one plan; the
  // single atomic fetch_add that claims a firing must hand a one-shot kill
  // to exactly one of them — never both, never neither.
  for (int round = 0; round < 8; ++round) {
    FaultPlan plan;
    plan.kill_at_step(/*rank=*/0, /*step=*/2);
    MachineOptions opts;
    opts.fault_plan = &plan;
    std::atomic<int> killed{0};
    auto machine = [&] {
      try {
        Machine::run(1, [](Comm& c) {
          fault::set_step(2);
          c.barrier();
        }, opts);
      } catch (const std::exception&) {
        killed.fetch_add(1);
      }
    };
    std::thread a(machine);
    std::thread b(machine);
    a.join();
    b.join();
    EXPECT_EQ(killed.load(), 1) << "round " << round;
  }
}

TEST(FaultInjection, CloneFreshCarriesScheduleWithFiringStateReset) {
  FaultPlan plan;
  plan.kill_at_step(/*rank=*/0, /*step=*/3);
  MachineOptions opts;
  opts.fault_plan = &plan;
  auto stepper = [](Comm& c) {
    for (int s = 1; s <= 4; ++s) {
      fault::set_step(s);
      c.barrier();
    }
  };
  EXPECT_THROW(Machine::run(2, stepper, opts), std::exception);
  // The original is spent (one-shot consumed)...
  Machine::run(2, stepper, opts);
  // ...but a fresh clone carries the whole schedule again, and fires
  // independently of the original's counters.
  FaultPlan clone = plan.clone_fresh();
  MachineOptions copts;
  copts.fault_plan = &clone;
  EXPECT_THROW(Machine::run(2, stepper, copts), std::exception);
  Machine::run(2, stepper, copts);
}

// ---- deadlock / failure detection ------------------------------------------

TEST(Detection, CraftedDeadlockProducesStuckRankReport) {
  // Both ranks receive first (classic head-to-head deadlock) on distinct
  // tags. The deadline must expire and the report must name BOTH ranks and
  // both pending tags — this is the acceptance test for the stuck-rank
  // diagnosis.
  MachineOptions opts;
  opts.recv_timeout_s = 0.25;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    Machine::run(2, [](Comm& c) {
      if (c.rank() == 0) {
        (void)c.recv_bytes(1, /*tag=*/11);
        c.send_value(1, 22, 1);
      } else {
        (void)c.recv_bytes(0, /*tag=*/22);
        c.send_value(0, 11, 1);
      }
    }, opts);
    FAIL() << "expected the deadlock to be detected";
  } catch (const DeadlockError& e) {
    const std::string report = e.what();
    EXPECT_NE(report.find("stuck-rank report"), std::string::npos) << report;
    EXPECT_NE(report.find("rank 0"), std::string::npos) << report;
    EXPECT_NE(report.find("rank 1"), std::string::npos) << report;
    EXPECT_NE(report.find("tag=11"), std::string::npos) << report;
    EXPECT_NE(report.find("tag=22"), std::string::npos) << report;
  }
  // Detected within the deadline (plus slack), not after a hang.
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0);
}

TEST(Detection, TimeoutDoesNotFireOnHealthyTraffic) {
  MachineOptions opts;
  opts.recv_timeout_s = 5.0;
  opts.verify_payloads = true;
  Machine::run(4, [](Comm& c) {
    // Checksummed collectives under a deadline: everything must pass.
    EXPECT_EQ(c.allreduce_value(c.rank() + 1, ReduceOp::kSum), 10);
    c.barrier();
    EXPECT_EQ(c.bcast_value(c.rank() == 2 ? 99 : 0, 2), 99);
  }, opts);
}

TEST(Detection, AbortCarriesFailingRankCauseToPeers) {
  // A rank failure must surface on *other* ranks as an Aborted carrying the
  // failing rank's diagnosis, not a generic shutdown.
  std::string cause_seen_by_rank0;
  try {
    Machine::run(4, [&](Comm& c) {
      if (c.rank() == 2) throw Error("boom: simulated defect");
      if (c.rank() == 0) {
        try {
          (void)c.recv_bytes(1, /*tag=*/77);
        } catch (const Aborted& a) {
          cause_seen_by_rank0 = a.what();
          throw;
        }
      }
      c.barrier();
    });
    FAIL() << "expected the machine to abort";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  EXPECT_NE(cause_seen_by_rank0.find("rank 2 failed"), std::string::npos)
      << cause_seen_by_rank0;
  EXPECT_NE(cause_seen_by_rank0.find("boom"), std::string::npos)
      << cause_seen_by_rank0;
}

}  // namespace
}  // namespace hacc::comm
