// Tests for the core framework: particle overloading (role switching,
// migration, replica correctness against a brute-force oracle) and the
// Simulation driver's basic mechanics.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include <fstream>

#include "comm/comm.h"
#include "comm/telemetry.h"
#include "obs/counters.h"
#include "obs/obs.h"
#include "core/domain.h"
#include "core/simulation.h"
#include "core/supervisor.h"
#include "gio/gio.h"
#include "util/rng.h"

namespace hacc::core {
namespace {

using tree::ParticleArray;
using tree::Role;

ParticleArray scatter_global(const OverloadDomain& dom, std::size_t n_global,
                             std::size_t box, std::uint64_t seed) {
  // Every rank takes the particles of a shared global sample that fall in
  // its domain.
  ParticleArray p;
  Philox rng(seed);
  for (std::size_t i = 0; i < n_global; ++i) {
    Philox::Stream s(rng, i);
    const auto x = static_cast<float>(s.uniform(0, static_cast<double>(box)));
    const auto y = static_cast<float>(s.uniform(0, static_cast<double>(box)));
    const auto z = static_cast<float>(s.uniform(0, static_cast<double>(box)));
    if (dom.owns(x, y, z))
      p.push_back(x, y, z, static_cast<float>(i), 0, 0, 1.0f, i,
                  Role::kActive);
  }
  return p;
}

class OverloadRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, OverloadRanks, ::testing::Values(1, 2, 4, 8));

TEST_P(OverloadRanks, RefreshConservesActives) {
  const int nranks = GetParam();
  const std::size_t n = 16, n_global = 500;
  mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    OverloadDomain dom(d, c.rank(), 2.0);
    ParticleArray p = scatter_global(dom, n_global, n, 77);
    const auto stats = dom.refresh(c, p);
    const auto total = c.allreduce_value(
        static_cast<long long>(stats.active), comm::ReduceOp::kSum);
    EXPECT_EQ(total, static_cast<long long>(n_global));
    // Active ids globally unique: each id appears exactly once as active.
    std::set<std::uint64_t> ids;
    for (std::size_t i = 0; i < p.size(); ++i)
      if (p.role[i] == Role::kActive) ids.insert(p.id[i]);
    EXPECT_EQ(ids.size(), stats.active);
  });
}

TEST_P(OverloadRanks, ReplicaSetMatchesBruteForceOracle) {
  const int nranks = GetParam();
  const std::size_t n = 16, n_global = 400;
  const double ovl = 2.5;
  mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({n, n, n}, nranks);
  // Global sample (same as scatter_global's).
  std::vector<std::array<float, 3>> all(n_global);
  {
    Philox rng(99);
    for (std::size_t i = 0; i < n_global; ++i) {
      Philox::Stream s(rng, i);
      all[i] = {static_cast<float>(s.uniform(0, 16.0)),
                static_cast<float>(s.uniform(0, 16.0)),
                static_cast<float>(s.uniform(0, 16.0))};
    }
  }
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    OverloadDomain dom(d, c.rank(), ovl);
    ParticleArray p = scatter_global(dom, n_global, n, 99);
    dom.refresh(c, p);
    // Oracle: particle id i (any periodic image) must appear as a passive
    // replica iff some image is within the overload slab and outside the
    // domain. Collect local passive (id -> unwrapped positions).
    std::multimap<std::uint64_t, std::array<float, 3>> passive;
    for (std::size_t i = 0; i < p.size(); ++i)
      if (p.role[i] == Role::kPassive)
        passive.insert({p.id[i], {p.x[i], p.y[i], p.z[i]}});
    const auto& box = dom.box();
    const double lo[3] = {static_cast<double>(box.x.lo) - ovl,
                          static_cast<double>(box.y.lo) - ovl,
                          static_cast<double>(box.z.lo) - ovl};
    const double hi[3] = {static_cast<double>(box.x.hi) + ovl,
                          static_cast<double>(box.y.hi) + ovl,
                          static_cast<double>(box.z.hi) + ovl};
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n_global; ++i) {
      for (int ix = -1; ix <= 1; ++ix)
        for (int iy = -1; iy <= 1; ++iy)
          for (int iz = -1; iz <= 1; ++iz) {
            const double q[3] = {all[i][0] + 16.0 * ix, all[i][1] + 16.0 * iy,
                                 all[i][2] + 16.0 * iz};
            const bool in_slab = q[0] >= lo[0] && q[0] < hi[0] &&
                                 q[1] >= lo[1] && q[1] < hi[1] &&
                                 q[2] >= lo[2] && q[2] < hi[2];
            const bool in_domain =
                ix == 0 && iy == 0 && iz == 0 &&
                dom.owns(all[i][0], all[i][1], all[i][2]);
            if (in_slab && !in_domain) {
              ++expected;
              // A matching replica (same unwrapped position) must exist.
              bool found = false;
              auto [first, last] = passive.equal_range(i);
              for (auto it = first; it != last; ++it) {
                if (std::abs(it->second[0] - q[0]) < 1e-3 &&
                    std::abs(it->second[1] - q[1]) < 1e-3 &&
                    std::abs(it->second[2] - q[2]) < 1e-3)
                  found = true;
              }
              EXPECT_TRUE(found)
                  << "rank " << c.rank() << " missing replica of id " << i;
            }
          }
    }
    EXPECT_EQ(passive.size(), expected) << "rank " << c.rank();
  });
}

TEST_P(OverloadRanks, RoleSwitchingOnBoundaryCrossing) {
  const int nranks = GetParam();
  const std::size_t n = 16;
  mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    OverloadDomain dom(d, c.rank(), 2.0);
    // One particle per rank near its domain's x-low edge.
    ParticleArray p;
    const auto& box = dom.box();
    p.push_back(static_cast<float>(box.x.lo) + 0.25f,
                static_cast<float>(box.y.lo) + 1.5f,
                static_cast<float>(box.z.lo) + 1.5f, 0, 0, 0, 1.0f,
                static_cast<std::uint64_t>(c.rank()), Role::kActive);
    dom.refresh(c, p);
    // Move every particle 0.5 cells in -x: it crosses into the neighbor
    // domain (or wraps) and must be re-assigned.
    for (std::size_t i = 0; i < p.size(); ++i) p.x[i] -= 0.5f;
    const auto stats = dom.refresh(c, p);
    const auto total_active = c.allreduce_value(
        static_cast<long long>(stats.active), comm::ReduceOp::kSum);
    EXPECT_EQ(total_active, static_cast<long long>(nranks));
    // Every active particle is inside its domain after refresh.
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p.role[i] == Role::kActive) {
        EXPECT_TRUE(dom.owns(p.x[i], p.y[i], p.z[i]));
      }
    }
    if (nranks > 1) {
      const auto migrated = c.allreduce_value(
          static_cast<long long>(stats.migrated), comm::ReduceOp::kSum);
      const int px = d.topology().dims()[0];
      if (px > 1) {
        EXPECT_GT(migrated, 0);
      }
    }
  });
}

TEST_P(OverloadRanks, RefreshIsExactlyOneSparseExchange) {
  // The fused refresh: migration + replication in ONE neighbor_alltoallv
  // over the stencil — no dense alltoall, no second particle round. The
  // comm telemetry counters are the witness.
  const int nranks = GetParam();
  const std::size_t n = 16, n_global = 300;
  mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    OverloadDomain dom(d, c.rank(), 2.0);
    ParticleArray p = scatter_global(dom, n_global, n, 55);
    obs::Counters counters;
    obs::Binding binding(nullptr, &counters);
    dom.refresh(c, p);
    const auto& nbr =
        comm::telemetry::ids(comm::telemetry::Op::kNeighborAlltoall);
    EXPECT_EQ(counters.value(nbr.calls), 1u);
    // Every payload message goes to a non-self stencil member, once.
    EXPECT_EQ(counters.value(nbr.msgs_sent), dom.stencil().size() - 1);
    EXPECT_EQ(
        counters.value(comm::telemetry::ids(comm::telemetry::Op::kAlltoall)
                           .calls),
        0u);
    EXPECT_EQ(
        counters.value(comm::telemetry::ids(comm::telemetry::Op::kP2p)
                           .msgs_sent),
        0u);
    // A second refresh is again exactly one exchange.
    dom.refresh(c, p);
    EXPECT_EQ(counters.value(nbr.calls), 2u);
  });
}

TEST_P(OverloadRanks, StencilIsSymmetricAndContainsSelf) {
  const int nranks = GetParam();
  mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({16, 16, 16}, nranks);
  std::vector<std::vector<int>> stencils(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    OverloadDomain dom(d, r, 2.0);
    stencils[static_cast<std::size_t>(r)] = dom.stencil();
  }
  for (int r = 0; r < nranks; ++r) {
    const auto& s = stencils[static_cast<std::size_t>(r)];
    EXPECT_TRUE(std::find(s.begin(), s.end(), r) != s.end())
        << "rank " << r << " missing from its own stencil";
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    for (const int q : s) {
      const auto& sq = stencils[static_cast<std::size_t>(q)];
      EXPECT_TRUE(std::find(sq.begin(), sq.end(), r) != sq.end())
          << "stencil asymmetric between " << r << " and " << q;
    }
  }
}

TEST(OverloadDomain, RejectsExcessiveDepth) {
  mesh::BlockDecomp3D d = mesh::BlockDecomp3D::balanced({8, 8, 8}, 8);
  EXPECT_THROW(OverloadDomain(d, 0, 5.0), Error);
  EXPECT_NO_THROW(OverloadDomain(d, 0, 4.0));
}

TEST(OverloadDomain, MemoryOverheadIsModest) {
  // The paper quotes ~10% overload memory overhead for large runs; on our
  // small boxes it is larger, but must scale like the surface/volume ratio.
  const std::size_t n = 32;
  mesh::BlockDecomp3D d({n, n, n}, comm::Cart3D({2, 1, 1}));
  comm::Machine::run(2, [&](comm::Comm& c) {
    OverloadDomain dom(d, c.rank(), 2.0);
    ParticleArray p = scatter_global(dom, 4000, n, 5);
    const auto stats = dom.refresh(c, p);
    // Overload volume / domain volume = ((16+2*2)*(32+4)*(32+4) - 16*32*32)
    // / (16*32*32) ... expect the particle ratio to be near the volume
    // ratio.
    const double vol_ratio =
        (20.0 * 36.0 * 36.0 - 16.0 * 32.0 * 32.0) / (16.0 * 32.0 * 32.0);
    EXPECT_NEAR(stats.overload_fraction(), vol_ratio, 0.25 * vol_ratio);
  });
}

// ---- Simulation mechanics -----------------------------------------------------

TEST(Simulation, InitializeProducesFullLattice) {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 16;
  cfg.steps = 2;
  cfg.overload = 2.0;
  cosmology::Cosmology cosmo;
  comm::Machine::run(4, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    const auto counts = sim.domain().census(sim.particles());
    const auto total = c.allreduce_value(static_cast<long long>(counts[0]),
                                         comm::ReduceOp::kSum);
    EXPECT_EQ(total, 16LL * 16 * 16);
    EXPECT_GT(counts[1], 0u);  // replicas exist
    EXPECT_NEAR(sim.current_z(), cfg.z_initial, 1e-9);
  });
}

TEST(Simulation, StepAdvancesScaleFactorUniformly) {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 8;
  cfg.z_initial = 9.0;   // a = 0.1
  cfg.z_final = 0.0;     // a = 1.0
  cfg.steps = 3;
  cfg.subcycles = 2;
  cfg.overload = 2.0;
  cfg.solver = ShortRangeSolver::kNone;
  cosmology::Cosmology cosmo;
  comm::Machine::run(1, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.step();
    EXPECT_NEAR(sim.current_a(), 0.4, 1e-9);
    sim.step();
    EXPECT_NEAR(sim.current_a(), 0.7, 1e-9);
    sim.step();
    EXPECT_NEAR(sim.current_a(), 1.0, 1e-9);
    EXPECT_EQ(sim.steps_taken(), 3);
  });
}

TEST(Simulation, MomentumConservedOverSteps) {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 16;
  cfg.z_initial = 20.0;
  cfg.z_final = 5.0;
  cfg.steps = 3;
  cfg.subcycles = 2;
  cfg.overload = 2.0;
  cosmology::Cosmology cosmo;
  comm::Machine::run(2, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
    const auto mom = sim.total_momentum();
    // Zel'dovich initial momenta sum to ~0; forces are pairwise
    // antisymmetric: total momentum stays ~0 relative to the typical
    // momentum magnitude.
    double typ = 0;
    const auto& p = sim.particles();
    for (std::size_t i = 0; i < p.size(); ++i)
      typ += std::abs(p.vx[i]) + std::abs(p.vy[i]) + std::abs(p.vz[i]);
    typ = c.allreduce_value(typ, comm::ReduceOp::kSum);
    for (int a = 0; a < 3; ++a)
      EXPECT_LT(std::abs(mom[static_cast<std::size_t>(a)]), 2e-3 * typ);
  });
}

TEST(Simulation, GatherActiveCollectsEverything) {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.overload = 2.0;
  cosmology::Cosmology cosmo;
  comm::Machine::run(4, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    auto all = sim.gather_active();
    if (c.rank() == 0) {
      EXPECT_EQ(all.size(), 12u * 12 * 12);
      std::set<std::uint64_t> ids(all.id.begin(), all.id.end());
      EXPECT_EQ(ids.size(), all.size());
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Simulation, CheckpointRestartReproducesRun) {
  // run(4 steps) == run(2) -> checkpoint -> restore -> run(2).
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 16;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 4;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cosmology::Cosmology cosmo;
  const std::string path =
      (std::filesystem::temp_directory_path() / "hacc_ckpt").string();

  std::map<std::uint64_t, std::array<float, 3>> straight, resumed;
  comm::Machine::run(2, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
    auto all = sim.gather_active();
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < all.size(); ++i)
        straight[all.id[i]] = {all.x[i], all.y[i], all.z[i]};
    }
  });
  comm::Machine::run(2, [&](comm::Comm& c) {
    {
      Simulation sim(c, cosmo, cfg);
      sim.initialize();
      sim.step();
      sim.step();
      sim.write_checkpoint(path);
    }
    Simulation sim2(c, cosmo, cfg);
    sim2.read_checkpoint(path);
    EXPECT_EQ(sim2.steps_taken(), 2);
    sim2.step();
    sim2.step();
    auto all = sim2.gather_active();
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < all.size(); ++i)
        resumed[all.id[i]] = {all.x[i], all.y[i], all.z[i]};
    }
  });
  std::filesystem::remove(path);
  ASSERT_EQ(straight.size(), resumed.size());
  for (const auto& [id, pos] : straight) {
    const auto& r = resumed.at(id);
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(pos[static_cast<std::size_t>(d)],
                  r[static_cast<std::size_t>(d)], 1e-4f)
          << "id " << id;
  }
}

TEST(Simulation, ReadCheckpointRejectsMismatchedConfig) {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 8;
  cfg.overload = 3.0;
  cosmology::Cosmology cosmo;
  const std::string path =
      (std::filesystem::temp_directory_path() / "hacc_ckpt_mismatch").string();
  comm::Machine::run(1, [&](comm::Comm& c) {
    {
      Simulation sim(c, cosmo, cfg);
      sim.initialize();
      sim.write_checkpoint(path);
    }
    SimulationConfig other = cfg;
    other.grid = 24;  // different grid: must be refused
    Simulation sim2(c, cosmo, other);
    EXPECT_THROW(sim2.read_checkpoint(path), Error);
    std::filesystem::remove(path);
  });
}

TEST(Simulation, CheckpointIsRankCountElastic) {
  // Satellite of the gio subsystem: a checkpoint written on 4 ranks must
  // restore bit-identically on 1, 2 and 8 ranks, and a subsequent step must
  // reproduce the uninterrupted run's power spectrum.
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 16;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 3;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cfg.io_aggregators = 2;  // exercise a non-trivial fan-in
  cosmology::Cosmology cosmo;
  const std::string path =
      (std::filesystem::temp_directory_path() / "hacc_ckpt_elastic").string();

  // Uninterrupted 4-rank reference: state at the checkpoint (bit patterns)
  // and the power spectrum one step later.
  std::map<std::uint64_t, std::array<std::uint32_t, 6>> at_ckpt;
  std::vector<cosmology::PowerBin> ref_spectrum;
  auto bits = [](float f) {
    std::uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
  };
  comm::Machine::run(4, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.step();
    sim.step();
    sim.write_checkpoint(path);
    auto all = sim.gather_active();
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < all.size(); ++i)
        at_ckpt[all.id[i]] = {bits(all.x[i]),  bits(all.y[i]),
                              bits(all.z[i]),  bits(all.vx[i]),
                              bits(all.vy[i]), bits(all.vz[i])};
    }
    sim.step();
    auto ps = sim.power_spectrum(16);
    if (c.rank() == 0) ref_spectrum = ps;
  });
  ASSERT_EQ(at_ckpt.size(), 16u * 16 * 16);

  for (int ranks : {1, 2, 8}) {
    std::map<std::uint64_t, std::array<std::uint32_t, 6>> restored;
    std::vector<cosmology::PowerBin> spectrum;
    comm::Machine::run(ranks, [&](comm::Comm& c) {
      Simulation sim(c, cosmo, cfg);
      sim.read_checkpoint(path);
      EXPECT_EQ(sim.steps_taken(), 2);
      auto all = sim.gather_active();
      if (c.rank() == 0) {
        for (std::size_t i = 0; i < all.size(); ++i)
          restored[all.id[i]] = {bits(all.x[i]),  bits(all.y[i]),
                                 bits(all.z[i]),  bits(all.vx[i]),
                                 bits(all.vy[i]), bits(all.vz[i])};
      }
      sim.step();
      auto ps = sim.power_spectrum(16);
      if (c.rank() == 0) spectrum = ps;
    });
    // Bit-identical restore of every particle, at any rank count.
    ASSERT_EQ(restored.size(), at_ckpt.size()) << ranks << " ranks";
    for (const auto& [id, f] : at_ckpt)
      ASSERT_EQ(restored.at(id), f) << "id " << id << " @ " << ranks;
    // One further step reproduces the uninterrupted spectrum (different
    // rank counts change only the float summation order).
    ASSERT_EQ(spectrum.size(), ref_spectrum.size());
    for (std::size_t b = 0; b < spectrum.size(); ++b) {
      EXPECT_EQ(spectrum[b].modes, ref_spectrum[b].modes);
      if (ref_spectrum[b].modes == 0) continue;
      EXPECT_NEAR(spectrum[b].power, ref_spectrum[b].power,
                  1e-3 * std::abs(ref_spectrum[b].power) + 1e-12)
          << "bin " << b << " @ " << ranks << " ranks";
    }
  }
  std::filesystem::remove(path);
}

TEST(Simulation, ReadCheckpointRefusesCorruptBlocks) {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 8;
  cfg.overload = 3.0;
  cosmology::Cosmology cosmo;
  const std::string path =
      (std::filesystem::temp_directory_path() / "hacc_ckpt_corrupt").string();
  comm::Machine::run(2, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.write_checkpoint(path);
  });
  gio::flip_byte_in_variable(path, 1, "vx", 7);
  comm::Machine::run(2, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    try {
      sim.read_checkpoint(path);
      FAIL() << "corrupt checkpoint must be refused";
    } catch (const Error& e) {
      // The refusal names the damaged block so operators can react.
      EXPECT_NE(std::string(e.what()).find("vx"), std::string::npos);
    }
  });
  std::filesystem::remove(path);
}

TEST(Simulation, TimersCoverTheExpectedPhases) {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.steps = 1;
  cfg.overload = 2.0;
  cosmology::Cosmology cosmo;
  comm::Machine::run(1, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.step();
    const auto& t = sim.timers();
    for (const char* phase : {"poisson", "sr-kernel", "tree-build", "stream",
                              "refresh", "cic", "lr-kick"}) {
      EXPECT_GT(t.count(phase), 0u) << phase;
    }
    EXPECT_GT(sim.last_stats().interactions, 0u);
  });
}

TEST(Simulation, HealthCheckPassesOnHealthyStateAndFlagsDamage) {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 2;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cosmology::Cosmology cosmo;
  comm::Machine::run(2, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.step();

    Simulation::HealthReport h = sim.health_check();
    EXPECT_TRUE(h.ok());
    EXPECT_TRUE(h.finite);
    EXPECT_EQ(h.active, 12u * 12u * 12u);
    EXPECT_TRUE(h.counts_ok());
    EXPECT_EQ(h.describe(), "");
    // First call records the momentum baseline; an immediate re-check has
    // zero drift, so even a tight budget passes.
    h = sim.health_check();
    EXPECT_EQ(h.momentum_drift, 0.0);
    EXPECT_TRUE(h.ok(1e-12));

    // Damage one rank's state: every rank must see the identical diagnosis
    // (the check is one collective allreduce).
    auto& p = sim.mutable_particles();
    std::size_t hit = p.size();
    if (c.rank() == 1) {
      for (std::size_t i = 0; i < p.size(); ++i)
        if (p.role[i] == tree::Role::kActive) {
          hit = i;
          p.vx[i] = std::numeric_limits<float>::quiet_NaN();
          break;
        }
    }
    h = sim.health_check();
    EXPECT_FALSE(h.finite);
    EXPECT_FALSE(h.ok());
    EXPECT_NE(h.describe().find("non-finite"), std::string::npos);
    if (hit < p.size()) p.vx[hit] = 0.0f;  // heal for the count test

    // Lose an active on rank 0: the global count invariant trips.
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < p.size(); ++i)
        if (p.role[i] == tree::Role::kActive) {
          p.role[i] = tree::Role::kPassive;
          break;
        }
    }
    h = sim.health_check();
    EXPECT_FALSE(h.counts_ok());
    EXPECT_EQ(h.active, 12u * 12u * 12u - 1);
    EXPECT_NE(h.describe().find("count"), std::string::npos);
  });
}

TEST(CheckpointSet, RotationAndLatestPointer) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hacc_ckpt_set").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  CheckpointSet set(dir, /*keep=*/2);

  EXPECT_EQ(set.latest(), -1);  // no pointer yet
  EXPECT_TRUE(set.existing().empty());

  const auto touch = [&](int step) {
    std::ofstream(set.path_for_step(step)) << "x";
  };
  touch(2);
  set.publish(2);
  EXPECT_EQ(set.latest(), 2);
  touch(4);
  set.publish(4);
  touch(6);
  set.publish(6);

  // Rotation keeps only the newest `keep` files; the pointer tracks the
  // newest; existing() lists newest first from the directory itself.
  EXPECT_EQ(set.latest(), 6);
  EXPECT_EQ(set.existing(), (std::vector<int>{6, 4}));
  EXPECT_FALSE(std::filesystem::exists(set.path_for_step(2)));
  EXPECT_TRUE(std::filesystem::exists(set.path_for_step(4)));

  // Foreign files in the directory are ignored by the scan.
  std::ofstream(dir + "/ckpt_junk.gio") << "x";
  std::ofstream(dir + "/notes.txt") << "x";
  EXPECT_EQ(set.existing(), (std::vector<int>{6, 4}));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointSet, RecoversFromMissingLatestPointer) {
  // A power-loss-style crash can lose the `latest` pointer entirely (the
  // rename not yet durable in the directory — publish() fsyncs the
  // directory to close exactly that window, but an already-written tree
  // may predate it). Recovery must not depend on the pointer: existing()
  // scans the directory itself, so the checkpoint chain is still found and
  // ordered newest first.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hacc_ckpt_nolatest").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  CheckpointSet set(dir, /*keep=*/3);

  const auto touch = [&](int step) {
    std::ofstream(set.path_for_step(step)) << "x";
  };
  touch(2);
  set.publish(2);
  touch(5);
  set.publish(5);
  ASSERT_EQ(set.latest(), 5);

  // The crash: `latest` is gone; the checkpoint files survived.
  ASSERT_TRUE(std::filesystem::remove(set.latest_path()));
  EXPECT_EQ(set.latest(), -1);
  EXPECT_EQ(set.existing(), (std::vector<int>{5, 2}));

  // The next publish re-creates the pointer and keeps rotating.
  touch(7);
  set.publish(7);
  EXPECT_EQ(set.latest(), 7);
  EXPECT_EQ(set.existing(), (std::vector<int>{7, 5, 2}));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointSet, AuditVerdictSidecars) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hacc_ckpt_verdict").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  CheckpointSet set(dir, /*keep=*/1);

  const auto touch = [&](int step) {
    std::ofstream(set.path_for_step(step)) << "x";
  };
  touch(2);
  set.publish(2);

  // No sidecar yet: the verdict is the empty string (read as "unaudited").
  EXPECT_EQ(set.verdict(2), "");

  // Record, read back, and overwrite in place — a checkpoint written clean
  // can later be implicated in a detected corruption window.
  set.record_verdict(2, "clean");
  EXPECT_EQ(set.verdict(2), "clean");
  set.record_verdict(2, "poisoned");
  EXPECT_EQ(set.verdict(2), "poisoned");
  EXPECT_TRUE(std::filesystem::exists(set.verdict_path_for_step(2)));

  // Sidecars never pollute the checkpoint scan.
  EXPECT_EQ(set.existing(), (std::vector<int>{2}));

  // Rotation prunes the sidecar together with its checkpoint (keep=1).
  touch(4);
  set.publish(4);
  set.record_verdict(4, "clean");
  EXPECT_FALSE(std::filesystem::exists(set.path_for_step(2)));
  EXPECT_FALSE(std::filesystem::exists(set.verdict_path_for_step(2)));
  EXPECT_EQ(set.verdict(2), "");
  EXPECT_EQ(set.verdict(4), "clean");
  std::filesystem::remove_all(dir);
}

TEST(Supervisor, CompletesCleanRunWithRotatedCheckpoints) {
  SupervisorConfig scfg;
  scfg.sim.grid = 16;
  scfg.sim.particles_per_dim = 12;
  scfg.sim.box_mpch = 32.0;
  scfg.sim.z_initial = 30.0;
  scfg.sim.z_final = 10.0;
  scfg.sim.steps = 3;
  scfg.sim.subcycles = 2;
  scfg.sim.overload = 3.0;
  scfg.nranks = 2;
  scfg.checkpoint_every = 1;
  scfg.keep = 2;
  scfg.checkpoint_dir =
      (std::filesystem::temp_directory_path() / "hacc_sup_clean").string();
  std::filesystem::remove_all(scfg.checkpoint_dir);
  cosmology::Cosmology cosmo;

  Supervisor sup(cosmo, scfg);
  int finished_step = -1;
  sup.on_finished = [&](Simulation& sim, comm::Comm& c) {
    if (c.rank() == 0) finished_step = sim.steps_taken();
  };
  const SupervisorReport report = sup.run();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.restores, 0);
  EXPECT_EQ(report.final_step, 3);
  EXPECT_EQ(report.last_error, "");
  EXPECT_EQ(finished_step, 3);
  EXPECT_EQ(sup.checkpoints().latest(), 3);
  EXPECT_EQ(sup.checkpoints().existing(), (std::vector<int>{3, 2}));
  std::filesystem::remove_all(scfg.checkpoint_dir);
}

}  // namespace
}  // namespace hacc::core
