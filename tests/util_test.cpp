// Unit tests for src/util: RNG, statistics/fitting, tables, timers, memory.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "util/aligned.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace hacc {
namespace {

// ---- aligned --------------------------------------------------------------

TEST(Aligned, VectorStorageIsAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    aligned_vector<float> v(n);
    EXPECT_TRUE(is_aligned(v.data()));
    aligned_vector<double> w(n);
    EXPECT_TRUE(is_aligned(w.data()));
  }
}

TEST(Aligned, AllocatorEqualityIsStateless) {
  AlignedAllocator<int> a, b;
  EXPECT_TRUE(a == b);
}

// ---- rng ------------------------------------------------------------------

TEST(Philox, DeterministicInKeyAndCounter) {
  Philox a(42, 7), b(42, 7);
  EXPECT_EQ(a.block(123, 9), b.block(123, 9));
}

TEST(Philox, DifferentCountersDiffer) {
  Philox rng(42);
  EXPECT_NE(rng.block(0), rng.block(1));
  EXPECT_NE(rng.block(0, 0), rng.block(0, 1));
}

TEST(Philox, DifferentSeedsDiffer) {
  EXPECT_NE(Philox(1).block(0), Philox(2).block(0));
  EXPECT_NE(Philox(1, 0).block(0), Philox(1, 1).block(0));
}

TEST(Philox, UniformInUnitInterval) {
  Philox rng(7);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto [u1, u2] = rng.uniform2(i);
    EXPECT_GE(u1, 0.0);
    EXPECT_LT(u1, 1.0);
    EXPECT_GE(u2, 0.0);
    EXPECT_LT(u2, 1.0);
  }
}

TEST(Philox, UniformMomentsMatch) {
  Philox rng(123);
  RunningStats s;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    auto [u1, u2] = rng.uniform2(i);
    s.add(u1);
    s.add(u2);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Philox, GaussianMomentsMatch) {
  Philox rng(99);
  RunningStats s;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    auto [g1, g2] = rng.gaussian2(i);
    s.add(g1);
    s.add(g2);
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
}

TEST(Philox, StreamDrawsAreReproducible) {
  Philox rng(5);
  Philox::Stream s1(rng), s2(rng);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1.uniform(), s2.uniform());
}

TEST(Philox, StreamIndexInRange) {
  Philox rng(5);
  Philox::Stream s(rng);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto idx = s.index(17);
    EXPECT_LT(idx, 17u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 17u);  // all bins hit with 1000 draws
}

TEST(SplitMix, MixesAndIsConstexpr) {
  static_assert(splitmix64(1) != splitmix64(2));
  EXPECT_NE(splitmix64(0), 0u);
}

// ---- stats ----------------------------------------------------------------

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(SolveLinear, Identity) {
  auto x = solve_linear({1, 0, 0, 1}, {3, 4});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(SolveLinear, RequiresPivoting) {
  // First pivot is zero: forces a row swap.
  auto x = solve_linear({0, 1, 1, 0}, {5, 7});
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 5.0);
}

TEST(SolveLinear, SingularThrows) {
  EXPECT_THROW(solve_linear({1, 2, 2, 4}, {1, 1}), Error);
}

TEST(Polyfit, RecoversExactPolynomial) {
  // y = 2 - 3x + 0.5 x^3
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    const double x = -1.0 + 0.2 * i;
    xs.push_back(x);
    ys.push_back(2.0 - 3.0 * x + 0.5 * x * x * x);
  }
  auto c = polyfit(xs, ys, 3);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c[0], 2.0, 1e-9);
  EXPECT_NEAR(c[1], -3.0, 1e-9);
  EXPECT_NEAR(c[2], 0.0, 1e-9);
  EXPECT_NEAR(c[3], 0.5, 1e-9);
}

TEST(Polyfit, PolyvalHorner) {
  const std::vector<double> c{1.0, -2.0, 3.0};  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(polyval(c, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(polyval(c, 2.0), 1.0 - 4.0 + 12.0);
}

TEST(Polyfit, RejectsUnderdeterminedFit) {
  std::vector<double> xs{0.0, 1.0}, ys{0.0, 1.0};
  EXPECT_THROW(polyfit(xs, ys, 2), Error);
}

TEST(Linefit, ExactLine) {
  std::vector<double> xs{0, 1, 2, 3}, ys{1, 3, 5, 7};
  auto f = linefit(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(Linefit, DegenerateThrows) {
  std::vector<double> xs{2, 2, 2}, ys{1, 2, 3};
  EXPECT_THROW(linefit(xs, ys), Error);
}

// ---- table ----------------------------------------------------------------

TEST(Table, FormatsAlignedColumns) {
  Table t({"Cores", "PFlops"});
  t.add_row({"2,048", "0.018"});
  t.add_row({"1,572,864", "13.94"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Cores"), std::string::npos);
  EXPECT_NE(s.find("13.94"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRoundTrips) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::integer(1572864), "1,572,864");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::sci(0.000596, 2), "5.96e-04");
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

// ---- timer ----------------------------------------------------------------

TEST(Timer, ElapsedGrows) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(t.elapsed(), 0.0);
}

TEST(TimerRegistry, AccumulatesPhases) {
  TimerRegistry reg;
  reg.add("kernel", 0.8);
  reg.add("walk", 0.1);
  reg.add("kernel", 0.8);
  EXPECT_DOUBLE_EQ(reg.total("kernel"), 1.6);
  EXPECT_EQ(reg.count("kernel"), 2u);
  EXPECT_DOUBLE_EQ(reg.grand_total(), 1.7);
  auto rows = reg.report();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "kernel");  // sorted by time descending
  EXPECT_NEAR(rows[0].fraction, 1.6 / 1.7, 1e-12);
}

TEST(TimerRegistry, ScopeAccumulates) {
  TimerRegistry reg;
  {
    auto s = reg.scope("phase");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(reg.total("phase"), 0.0);
  EXPECT_EQ(reg.count("phase"), 1u);
}

// ---- error ----------------------------------------------------------------

TEST(Error, CheckThrowsWithLocation) {
  try {
    HACC_CHECK_MSG(false, "boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace hacc
