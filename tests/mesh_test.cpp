// Tests for the PM mesh layer: block decomposition, ghost exchanges, CIC,
// the remap, the spectral kernels, and the full Poisson solve (validated
// against analytic single modes and against the single-rank solve).
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <numbers>

#include "comm/comm.h"
#include "mesh/cic.h"
#include "mesh/grid.h"
#include "mesh/kernels.h"
#include "mesh/poisson.h"
#include "mesh/remap.h"
#include "util/rng.h"

namespace hacc::mesh {
namespace {

// ---- decomposition ----------------------------------------------------------

TEST(BlockDecomp, BoxesTileTheGrid) {
  for (int nranks : {1, 2, 3, 6, 8, 12}) {
    BlockDecomp3D d = BlockDecomp3D::balanced({8, 9, 10}, nranks);
    std::vector<int> cover(8 * 9 * 10, 0);
    for (int r = 0; r < nranks; ++r) {
      const auto b = d.box_of(r);
      for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
        for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
          for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
            ++cover[(x * 9 + y) * 10 + z];
    }
    for (int c : cover) EXPECT_EQ(c, 1) << "nranks=" << nranks;
  }
}

TEST(BlockDecomp, OwnerMatchesBox) {
  BlockDecomp3D d = BlockDecomp3D::balanced({8, 8, 8}, 8);
  for (std::size_t x = 0; x < 8; ++x)
    for (std::size_t y = 0; y < 8; ++y)
      for (std::size_t z = 0; z < 8; ++z) {
        const int r = d.owner_of(x, y, z);
        const auto b = d.box_of(r);
        EXPECT_TRUE(b.x.contains(x) && b.y.contains(y) && b.z.contains(z));
      }
}

TEST(BlockDecomp, RejectsOversubscription) {
  EXPECT_THROW(BlockDecomp3D({2, 2, 2}, comm::Cart3D({4, 2, 1})), Error);
}

// ---- DistGrid ghost exchange --------------------------------------------------

TEST(DistGrid, GhostWidthValidated) {
  BlockDecomp3D d = BlockDecomp3D::balanced({8, 8, 8}, 8);  // 4x4x4 blocks
  EXPECT_NO_THROW(DistGrid(d, 0, 4));
  EXPECT_THROW(DistGrid(d, 0, 5), Error);
}

TEST(DistGrid, FoldConservesTotalAcrossRankCounts) {
  const std::size_t n = 8;
  for (int nranks : {1, 2, 4, 8}) {
    BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, nranks);
    std::vector<double> totals;
    std::mutex mu;
    comm::Machine::run(nranks, [&](comm::Comm& c) {
      DistGrid g(d, c.rank(), 2);
      // Fill everything, ghosts included, with rank-dependent values.
      Philox::Stream rs(Philox(17, static_cast<std::uint64_t>(c.rank())));
      double local_total = 0;
      for (auto& v : g.data()) {
        v = rs.uniform();
        local_total += v;
      }
      g.fold_ghosts(c);
      // After folding, all ghost cells must be zero...
      double interior = g.interior_sum();
      double full = 0;
      for (const auto& v : g.data()) full += v;
      EXPECT_NEAR(interior, full, 1e-9);
      // ...and the global total is conserved.
      const double sum_before =
          c.allreduce_value(local_total, comm::ReduceOp::kSum);
      const double sum_after =
          c.allreduce_value(interior, comm::ReduceOp::kSum);
      EXPECT_NEAR(sum_before, sum_after, 1e-9);
      std::lock_guard lock(mu);
      totals.push_back(sum_after);
    });
  }
}

TEST(DistGrid, FillGhostsMatchesPeriodicGlobalField) {
  const std::size_t n = 6;
  for (int nranks : {1, 2, 4, 8}) {
    BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, nranks);
    auto field = [&](std::size_t x, std::size_t y, std::size_t z) {
      return static_cast<double>((x * n + y) * n + z + 1);
    };
    comm::Machine::run(nranks, [&](comm::Comm& c) {
      DistGrid g(d, c.rank(), 2);
      const auto& b = g.interior();
      for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
        for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
          for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
            g.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                 static_cast<std::ptrdiff_t>(y - b.y.lo),
                 static_cast<std::ptrdiff_t>(z - b.z.lo)) = field(x, y, z);
      g.fill_ghosts(c);
      // Every local cell (ghosts included) must equal the periodic field.
      const auto gst = static_cast<std::ptrdiff_t>(g.ghost());
      for (std::ptrdiff_t i = -gst;
           i < static_cast<std::ptrdiff_t>(b.x.extent()) + gst; ++i)
        for (std::ptrdiff_t j = -gst;
             j < static_cast<std::ptrdiff_t>(b.y.extent()) + gst; ++j)
          for (std::ptrdiff_t k = -gst;
               k < static_cast<std::ptrdiff_t>(b.z.extent()) + gst; ++k) {
            const auto wrap = [&](std::ptrdiff_t v, std::size_t lo) {
              auto w = (static_cast<std::ptrdiff_t>(lo) + v) %
                       static_cast<std::ptrdiff_t>(n);
              if (w < 0) w += static_cast<std::ptrdiff_t>(n);
              return static_cast<std::size_t>(w);
            };
            EXPECT_DOUBLE_EQ(
                g.at(i, j, k),
                field(wrap(i, b.x.lo), wrap(j, b.y.lo), wrap(k, b.z.lo)))
                << "rank=" << c.rank() << " ijk=" << i << "," << j << ","
                << k;
          }
    });
  }
}

// ---- CIC ---------------------------------------------------------------------

TEST(Cic, ParticleOnGridPointDepositsToOneCell) {
  BlockDecomp3D d = BlockDecomp3D::balanced({8, 8, 8}, 1);
  comm::Machine::run(1, [&](comm::Comm& c) {
    DistGrid g(d, 0, 1);
    const std::vector<float> x{3.0f}, y{4.0f}, z{5.0f};
    cic_deposit(g, x, y, z, 2.5f);
    g.fold_ghosts(c);
    EXPECT_DOUBLE_EQ(g.at(3, 4, 5), 2.5);
    EXPECT_NEAR(g.interior_sum(), 2.5, 1e-12);
  });
}

TEST(Cic, MidCellParticleSplitsEvenly) {
  BlockDecomp3D d = BlockDecomp3D::balanced({8, 8, 8}, 1);
  comm::Machine::run(1, [&](comm::Comm& c) {
    DistGrid g(d, 0, 1);
    const std::vector<float> x{2.5f}, y{3.5f}, z{6.5f};
    cic_deposit(g, x, y, z, 8.0f);
    g.fold_ghosts(c);
    for (std::ptrdiff_t di = 0; di <= 1; ++di)
      for (std::ptrdiff_t dj = 0; dj <= 1; ++dj)
        for (std::ptrdiff_t dk = 0; dk <= 1; ++dk)
          EXPECT_NEAR(g.at(2 + di, 3 + dj, 6 + dk), 1.0, 1e-12);
  });
}

class CicRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, CicRanks, ::testing::Values(1, 2, 4, 8));

TEST_P(CicRanks, MassConservedIncludingSeamCrossers) {
  const int nranks = GetParam();
  const std::size_t n = 8;
  const std::size_t npart = 200;
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    DistGrid g(d, c.rank(), 1);
    // Each rank deposits the particles inside its own box (global sample).
    Philox rng(4242);
    std::vector<float> xs, ys, zs;
    const auto& b = g.interior();
    for (std::size_t p = 0; p < npart; ++p) {
      Philox::Stream s(rng, p);
      const float x = static_cast<float>(s.uniform(0, n));
      const float y = static_cast<float>(s.uniform(0, n));
      const float z = static_cast<float>(s.uniform(0, n));
      if (b.x.contains(static_cast<std::size_t>(x)) &&
          b.y.contains(static_cast<std::size_t>(y)) &&
          b.z.contains(static_cast<std::size_t>(z))) {
        xs.push_back(x);
        ys.push_back(y);
        zs.push_back(z);
      }
    }
    const auto nmine = c.allreduce_value(
        static_cast<long long>(xs.size()), comm::ReduceOp::kSum);
    EXPECT_EQ(nmine, static_cast<long long>(npart));
    cic_deposit(g, xs, ys, zs, 1.0f);
    g.fold_ghosts(c);
    const double total =
        c.allreduce_value(g.interior_sum(), comm::ReduceOp::kSum);
    EXPECT_NEAR(total, static_cast<double>(npart), 1e-9);
  });
}

TEST_P(CicRanks, DepositMatchesSingleRankReference) {
  const int nranks = GetParam();
  const std::size_t n = 8;
  const std::size_t npart = 100;
  // Reference: single-rank deposit.
  std::vector<double> reference(n * n * n, 0.0);
  std::vector<float> gx, gy, gz;
  {
    Philox rng(99);
    for (std::size_t p = 0; p < npart; ++p) {
      Philox::Stream s(rng, p);
      gx.push_back(static_cast<float>(s.uniform(0, n)));
      gy.push_back(static_cast<float>(s.uniform(0, n)));
      gz.push_back(static_cast<float>(s.uniform(0, n)));
    }
    BlockDecomp3D d1 = BlockDecomp3D::balanced({n, n, n}, 1);
    comm::Machine::run(1, [&](comm::Comm& c) {
      DistGrid g(d1, 0, 1);
      cic_deposit(g, gx, gy, gz, 1.0f);
      g.fold_ghosts(c);
      for (std::size_t x = 0; x < n; ++x)
        for (std::size_t y = 0; y < n; ++y)
          for (std::size_t z = 0; z < n; ++z)
            reference[(x * n + y) * n + z] =
                g.at(static_cast<std::ptrdiff_t>(x),
                     static_cast<std::ptrdiff_t>(y),
                     static_cast<std::ptrdiff_t>(z));
    });
  }
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    DistGrid g(d, c.rank(), 1);
    std::vector<float> xs, ys, zs;
    const auto& b = g.interior();
    for (std::size_t p = 0; p < npart; ++p) {
      if (b.x.contains(static_cast<std::size_t>(gx[p])) &&
          b.y.contains(static_cast<std::size_t>(gy[p])) &&
          b.z.contains(static_cast<std::size_t>(gz[p]))) {
        xs.push_back(gx[p]);
        ys.push_back(gy[p]);
        zs.push_back(gz[p]);
      }
    }
    cic_deposit(g, xs, ys, zs, 1.0f);
    g.fold_ghosts(c);
    for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
      for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
        for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
          EXPECT_NEAR(g.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                           static_cast<std::ptrdiff_t>(y - b.y.lo),
                           static_cast<std::ptrdiff_t>(z - b.z.lo)),
                      reference[(x * n + y) * n + z], 1e-10);
  });
}

TEST(Cic, InterpolationReproducesLinearField) {
  // CIC interpolation is exact for fields linear in the coordinates.
  const std::size_t n = 8;
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, 1);
  comm::Machine::run(1, [&](comm::Comm& c) {
    DistGrid g(d, 0, 1);
    auto f = [](double x, double y, double z) {
      return 1.0 + 2.0 * x - 0.5 * y + 0.25 * z;
    };
    for (std::ptrdiff_t i = -1; i < static_cast<std::ptrdiff_t>(n) + 1; ++i)
      for (std::ptrdiff_t j = -1; j < static_cast<std::ptrdiff_t>(n) + 1; ++j)
        for (std::ptrdiff_t k = -1; k < static_cast<std::ptrdiff_t>(n) + 1;
             ++k)
          g.at(i, j, k) = f(static_cast<double>(i), static_cast<double>(j),
                            static_cast<double>(k));
    (void)c;
    Philox rng(5);
    std::vector<float> xs, ys, zs;
    for (std::size_t p = 0; p < 50; ++p) {
      Philox::Stream s(rng, p);
      // Keep clouds off the seam: the linear field is not periodic.
      xs.push_back(static_cast<float>(s.uniform(0.0, n - 1.0)));
      ys.push_back(static_cast<float>(s.uniform(0.0, n - 1.0)));
      zs.push_back(static_cast<float>(s.uniform(0.0, n - 1.0)));
    }
    std::vector<float> out(xs.size());
    cic_interpolate(g, xs, ys, zs, out);
    for (std::size_t p = 0; p < xs.size(); ++p)
      EXPECT_NEAR(out[p], f(xs[p], ys[p], zs[p]), 1e-4);
  });
}

TEST(Cic, DensityContrastHasZeroMean) {
  const std::size_t n = 8;
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, 4);
  comm::Machine::run(4, [&](comm::Comm& c) {
    DistGrid g(d, c.rank(), 1);
    Philox::Stream s(Philox(3, static_cast<std::uint64_t>(c.rank())));
    const auto& b = g.interior();
    for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
      for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
        for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
          g.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
               static_cast<std::ptrdiff_t>(y - b.y.lo),
               static_cast<std::ptrdiff_t>(z - b.z.lo)) = 0.5 + s.uniform();
    to_density_contrast(g, c);
    const double total =
        c.allreduce_value(g.interior_sum(), comm::ReduceOp::kSum);
    EXPECT_NEAR(total, 0.0, 1e-9);
  });
}

// ---- Redistributor -------------------------------------------------------------

TEST(Redistributor, BlockToPencilRoundTrip) {
  const std::size_t n = 6;
  const int nranks = 4;
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    // Destination layout: z-pencils on a 2x2 grid.
    std::vector<fft::Box3D> src, dst;
    for (int r = 0; r < nranks; ++r) {
      src.push_back(d.box_of(r));
      const int q1 = r / 2, q2 = r % 2;
      dst.push_back(fft::Box3D{fft::block_range(n, 2, q1),
                               fft::block_range(n, 2, q2), fft::Range{0, n}});
    }
    Redistributor re(src, dst);
    const auto& mine = src[static_cast<std::size_t>(c.rank())];
    std::vector<double> data;
    for (std::size_t x = mine.x.lo; x < mine.x.hi; ++x)
      for (std::size_t y = mine.y.lo; y < mine.y.hi; ++y)
        for (std::size_t z = mine.z.lo; z < mine.z.hi; ++z)
          data.push_back(static_cast<double>((x * n + y) * n + z));
    auto pencil = re.forward(c, data);
    // Values must land at the right global cells in the pencil layout.
    const auto& pb = dst[static_cast<std::size_t>(c.rank())];
    std::size_t idx = 0;
    for (std::size_t x = pb.x.lo; x < pb.x.hi; ++x)
      for (std::size_t y = pb.y.lo; y < pb.y.hi; ++y)
        for (std::size_t z = pb.z.lo; z < pb.z.hi; ++z)
          EXPECT_DOUBLE_EQ(pencil[idx++],
                           static_cast<double>((x * n + y) * n + z));
    // And the backward remap restores the original block.
    auto back = re.backward(c, pencil);
    ASSERT_EQ(back.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
      EXPECT_DOUBLE_EQ(back[i], data[i]);
  });
}

TEST(Redistributor, IntersectHandlesDisjointBoxes) {
  const fft::Box3D a{{0, 4}, {0, 4}, {0, 4}};
  const fft::Box3D b{{4, 8}, {0, 4}, {0, 4}};
  EXPECT_EQ(intersect(a, b).volume(), 0u);
  const fft::Box3D c{{2, 6}, {1, 3}, {0, 4}};
  EXPECT_EQ(intersect(a, c).volume(), 2u * 2u * 4u);
}

// ---- spectral kernels ----------------------------------------------------------

TEST(Kernels, SignedModeWrapsNyquist) {
  EXPECT_EQ(signed_mode(0, 8), 0);
  EXPECT_EQ(signed_mode(3, 8), 3);
  EXPECT_EQ(signed_mode(4, 8), -4);  // Nyquist maps negative
  EXPECT_EQ(signed_mode(7, 8), -1);
}

TEST(Kernels, GreensApproachesContinuumAtSmallK) {
  const std::array<double, 3> k{0.05, 0.02, -0.03};
  const double exact = greens_function(k, GreenOrder::kExact);
  EXPECT_NEAR(greens_function(k, GreenOrder::kOrder2) / exact, 1.0, 1e-3);
  EXPECT_NEAR(greens_function(k, GreenOrder::kOrder6) / exact, 1.0, 1e-8);
}

TEST(Kernels, SixthOrderGreensConvergesFasterThanSecond) {
  // Error scaling: order-2 ~ k^2 relative error, order-6 ~ k^6.
  for (double kk : {0.2, 0.4, 0.8}) {
    const std::array<double, 3> k{kk, 0.0, 0.0};
    const double exact = greens_function(k, GreenOrder::kExact);
    const double e2 =
        std::abs(greens_function(k, GreenOrder::kOrder2) / exact - 1.0);
    const double e6 =
        std::abs(greens_function(k, GreenOrder::kOrder6) / exact - 1.0);
    EXPECT_LT(e6, 0.05 * e2) << "k=" << kk;
  }
}

TEST(Kernels, GreensZeroModeIsZero) {
  EXPECT_EQ(greens_function({0, 0, 0}, GreenOrder::kOrder6), 0.0);
  EXPECT_EQ(greens_function({0, 0, 0}, GreenOrder::kExact), 0.0);
}

TEST(Kernels, FilterIsUnityAtZeroAndDecays) {
  EXPECT_DOUBLE_EQ(spectral_filter({0, 0, 0}, 0.8, 3), 1.0);
  const double f1 = spectral_filter({0.5, 0, 0}, 0.8, 3);
  const double f2 = spectral_filter({1.5, 0, 0}, 0.8, 3);
  EXPECT_LT(f2, f1);
  EXPECT_LT(f1, 1.0);
  EXPECT_GT(f2, 0.0);
}

TEST(Kernels, FilterReducesToGaussianWhenNsZero) {
  const std::array<double, 3> k{0.7, -0.2, 0.1};
  const double k2 = k[0] * k[0] + k[1] * k[1] + k[2] * k[2];
  EXPECT_NEAR(spectral_filter(k, 0.8, 0), std::exp(-0.25 * k2 * 0.64), 1e-12);
}

TEST(Kernels, GradientMultipliersMatchSmallK) {
  for (double k : {0.01, 0.05}) {
    EXPECT_NEAR(gradient_multiplier(k, GradientOrder::kOrder2).imag(), k,
                1e-4);
    EXPECT_NEAR(gradient_multiplier(k, GradientOrder::kSuperLanczos4).imag(),
                k, 1e-7);
  }
}

TEST(Kernels, SuperLanczosIsFourthOrder) {
  // err(k) ~ C k^5 => err(2k)/err(k) ~ 32.
  auto err = [](double k) {
    return std::abs(
        gradient_multiplier(k, GradientOrder::kSuperLanczos4).imag() - k);
  };
  const double ratio = err(0.2) / err(0.1);
  EXPECT_NEAR(ratio, 32.0, 4.0);
}

// ---- Poisson solver -------------------------------------------------------------

/// Fill the interior of `g` with delta(x) = cos(2 pi m x / n).
void fill_single_mode(DistGrid& g, std::size_t n, int axis, int mode) {
  const auto& b = g.interior();
  for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
    for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
      for (std::size_t z = b.z.lo; z < b.z.hi; ++z) {
        const std::size_t coord = axis == 0 ? x : axis == 1 ? y : z;
        g.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
             static_cast<std::ptrdiff_t>(y - b.y.lo),
             static_cast<std::ptrdiff_t>(z - b.z.lo)) =
            std::cos(2.0 * std::numbers::pi * static_cast<double>(mode) *
                     static_cast<double>(coord) / static_cast<double>(n));
      }
}

TEST(Poisson, SingleModeMatchesAnalyticForce) {
  // With exact kernels and no filter, delta = cos(kx) gives
  // f_x = -sin(kx)/k, f_y = f_z = 0.
  const std::size_t n = 16;
  const int mode = 2;
  const double k = 2.0 * std::numbers::pi * mode / static_cast<double>(n);
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, 1);
  comm::Machine::run(1, [&](comm::Comm& c) {
    SpectralConfig cfg;
    cfg.sigma = 0.0;
    cfg.ns = 0;
    cfg.green = GreenOrder::kExact;
    cfg.gradient = GradientOrder::kExact;
    PoissonSolver solver(c, d, cfg);
    DistGrid delta(d, 0, 1);
    fill_single_mode(delta, n, 0, mode);
    std::array<DistGrid, 3> f{DistGrid(d, 0, 1), DistGrid(d, 0, 1),
                              DistGrid(d, 0, 1)};
    DistGrid phi(d, 0, 1);
    solver.solve(c, delta, f, &phi);
    for (std::size_t x = 0; x < n; ++x) {
      const double expect_fx =
          -std::sin(k * static_cast<double>(x)) / k;
      const double expect_phi =
          -std::cos(k * static_cast<double>(x)) / (k * k);
      EXPECT_NEAR(f[0].at(static_cast<std::ptrdiff_t>(x), 3, 5), expect_fx,
                  1e-9)
          << "x=" << x;
      EXPECT_NEAR(f[1].at(static_cast<std::ptrdiff_t>(x), 3, 5), 0.0, 1e-10);
      EXPECT_NEAR(f[2].at(static_cast<std::ptrdiff_t>(x), 3, 5), 0.0, 1e-10);
      EXPECT_NEAR(phi.at(static_cast<std::ptrdiff_t>(x), 3, 5), expect_phi,
                  1e-9);
    }
  });
}

TEST(Poisson, DiscreteKernelsCloseToExactForLowModes) {
  // The default (6th-order Green's + Super-Lanczos) solve of a low-k mode
  // must agree with the continuum answer to high accuracy.
  const std::size_t n = 32;
  const int mode = 1;
  const double k = 2.0 * std::numbers::pi * mode / static_cast<double>(n);
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, 1);
  comm::Machine::run(1, [&](comm::Comm& c) {
    SpectralConfig cfg;  // defaults, but without the smoothing filter
    cfg.sigma = 0.0;
    cfg.ns = 0;
    PoissonSolver solver(c, d, cfg);
    DistGrid delta(d, 0, 1);
    fill_single_mode(delta, n, 2, mode);
    std::array<DistGrid, 3> f{DistGrid(d, 0, 1), DistGrid(d, 0, 1),
                              DistGrid(d, 0, 1)};
    solver.solve(c, delta, f);
    for (std::size_t z = 0; z < n; ++z) {
      const double expect = -std::sin(k * static_cast<double>(z)) / k;
      EXPECT_NEAR(f[2].at(1, 2, static_cast<std::ptrdiff_t>(z)), expect,
                  5e-4 * (std::abs(expect) + 1.0));
    }
  });
}

class PoissonRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, PoissonRanks, ::testing::Values(1, 2, 4, 8));

TEST_P(PoissonRanks, MultiRankMatchesSingleRank) {
  const int nranks = GetParam();
  const std::size_t n = 8;
  // Random (deterministic) density contrast.
  std::vector<double> delta_global(n * n * n);
  {
    Philox rng(2024);
    double mean = 0;
    for (std::size_t i = 0; i < delta_global.size(); ++i) {
      delta_global[i] = rng.uniform2(i)[0];
      mean += delta_global[i];
    }
    mean /= static_cast<double>(delta_global.size());
    for (auto& v : delta_global) v -= mean;
  }
  // Reference on one rank.
  std::vector<double> ref_fx(n * n * n), ref_fy(n * n * n), ref_fz(n * n * n);
  {
    BlockDecomp3D d1 = BlockDecomp3D::balanced({n, n, n}, 1);
    comm::Machine::run(1, [&](comm::Comm& c) {
      PoissonSolver solver(c, d1);
      DistGrid delta(d1, 0, 1);
      for (std::size_t x = 0; x < n; ++x)
        for (std::size_t y = 0; y < n; ++y)
          for (std::size_t z = 0; z < n; ++z)
            delta.at(static_cast<std::ptrdiff_t>(x),
                     static_cast<std::ptrdiff_t>(y),
                     static_cast<std::ptrdiff_t>(z)) =
                delta_global[(x * n + y) * n + z];
      std::array<DistGrid, 3> f{DistGrid(d1, 0, 1), DistGrid(d1, 0, 1),
                                DistGrid(d1, 0, 1)};
      solver.solve(c, delta, f);
      for (std::size_t x = 0; x < n; ++x)
        for (std::size_t y = 0; y < n; ++y)
          for (std::size_t z = 0; z < n; ++z) {
            const std::size_t i = (x * n + y) * n + z;
            ref_fx[i] = f[0].at(static_cast<std::ptrdiff_t>(x),
                                static_cast<std::ptrdiff_t>(y),
                                static_cast<std::ptrdiff_t>(z));
            ref_fy[i] = f[1].at(static_cast<std::ptrdiff_t>(x),
                                static_cast<std::ptrdiff_t>(y),
                                static_cast<std::ptrdiff_t>(z));
            ref_fz[i] = f[2].at(static_cast<std::ptrdiff_t>(x),
                                static_cast<std::ptrdiff_t>(y),
                                static_cast<std::ptrdiff_t>(z));
          }
    });
  }
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    PoissonSolver solver(c, d);
    DistGrid delta(d, c.rank(), 1);
    const auto& b = delta.interior();
    for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
      for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
        for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
          delta.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                   static_cast<std::ptrdiff_t>(y - b.y.lo),
                   static_cast<std::ptrdiff_t>(z - b.z.lo)) =
              delta_global[(x * n + y) * n + z];
    std::array<DistGrid, 3> f{DistGrid(d, c.rank(), 1),
                              DistGrid(d, c.rank(), 1),
                              DistGrid(d, c.rank(), 1)};
    solver.solve(c, delta, f);
    for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
      for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
        for (std::size_t z = b.z.lo; z < b.z.hi; ++z) {
          const std::size_t i = (x * n + y) * n + z;
          EXPECT_NEAR(f[0].at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                              static_cast<std::ptrdiff_t>(y - b.y.lo),
                              static_cast<std::ptrdiff_t>(z - b.z.lo)),
                      ref_fx[i], 1e-9);
          EXPECT_NEAR(f[1].at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                              static_cast<std::ptrdiff_t>(y - b.y.lo),
                              static_cast<std::ptrdiff_t>(z - b.z.lo)),
                      ref_fy[i], 1e-9);
          EXPECT_NEAR(f[2].at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                              static_cast<std::ptrdiff_t>(y - b.y.lo),
                              static_cast<std::ptrdiff_t>(z - b.z.lo)),
                      ref_fz[i], 1e-9);
        }
  });
}

TEST_P(PoissonRanks, R2CSolveMatchesC2C) {
  // The default r2c half-spectrum pipeline must reproduce the full complex
  // solve to round-off: the two paths share kernels and differ only in the
  // transform. ISSUE acceptance: <= 1e-10 relative.
  const int nranks = GetParam();
  const std::size_t n = 12;
  std::vector<double> delta_global(n * n * n);
  {
    Philox rng(555);
    double mean = 0;
    for (std::size_t i = 0; i < delta_global.size(); ++i) {
      delta_global[i] = rng.uniform2(i)[0];
      mean += delta_global[i];
    }
    mean /= static_cast<double>(delta_global.size());
    for (auto& v : delta_global) v -= mean;
  }
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, nranks);
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    SpectralConfig cfg_r2c;  // defaults: use_r2c = true
    SpectralConfig cfg_c2c;
    cfg_c2c.use_r2c = false;
    PoissonSolver solver_r2c(c, d, cfg_r2c);
    PoissonSolver solver_c2c(c, d, cfg_c2c);
    DistGrid delta(d, c.rank(), 1);
    const auto& b = delta.interior();
    for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
      for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
        for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
          delta.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                   static_cast<std::ptrdiff_t>(y - b.y.lo),
                   static_cast<std::ptrdiff_t>(z - b.z.lo)) =
              delta_global[(x * n + y) * n + z];
    std::array<DistGrid, 3> fr{DistGrid(d, c.rank(), 1),
                               DistGrid(d, c.rank(), 1),
                               DistGrid(d, c.rank(), 1)};
    std::array<DistGrid, 3> fc{DistGrid(d, c.rank(), 1),
                               DistGrid(d, c.rank(), 1),
                               DistGrid(d, c.rank(), 1)};
    DistGrid phi_r(d, c.rank(), 1), phi_c(d, c.rank(), 1);
    solver_r2c.solve(c, delta, fr, &phi_r);
    solver_c2c.solve(c, delta, fc, &phi_c);
    const auto ex = static_cast<std::ptrdiff_t>(b.x.extent());
    const auto ey = static_cast<std::ptrdiff_t>(b.y.extent());
    const auto ez = static_cast<std::ptrdiff_t>(b.z.extent());
    for (std::ptrdiff_t i = 0; i < ex; ++i)
      for (std::ptrdiff_t j = 0; j < ey; ++j)
        for (std::ptrdiff_t k = 0; k < ez; ++k) {
          for (int axis = 0; axis < 3; ++axis) {
            const double ref = fc[static_cast<std::size_t>(axis)].at(i, j, k);
            EXPECT_NEAR(fr[static_cast<std::size_t>(axis)].at(i, j, k), ref,
                        1e-10 * (std::abs(ref) + 1.0))
                << "axis=" << axis;
          }
          EXPECT_NEAR(phi_r.at(i, j, k), phi_c.at(i, j, k),
                      1e-10 * (std::abs(phi_c.at(i, j, k)) + 1.0));
        }
  });
}

TEST(Poisson, ForceSumsToZero) {
  // The zero mode is projected out, so the net grid force must vanish
  // (momentum conservation of the PM sector).
  const std::size_t n = 8;
  BlockDecomp3D d = BlockDecomp3D::balanced({n, n, n}, 2);
  comm::Machine::run(2, [&](comm::Comm& c) {
    PoissonSolver solver(c, d);
    DistGrid delta(d, c.rank(), 1);
    Philox rng(7);
    const auto& b = delta.interior();
    for (std::size_t x = b.x.lo; x < b.x.hi; ++x)
      for (std::size_t y = b.y.lo; y < b.y.hi; ++y)
        for (std::size_t z = b.z.lo; z < b.z.hi; ++z)
          delta.at(static_cast<std::ptrdiff_t>(x - b.x.lo),
                   static_cast<std::ptrdiff_t>(y - b.y.lo),
                   static_cast<std::ptrdiff_t>(z - b.z.lo)) =
              rng.uniform2((x * n + y) * n + z)[0] - 0.5;
    std::array<DistGrid, 3> f{DistGrid(d, c.rank(), 1),
                              DistGrid(d, c.rank(), 1),
                              DistGrid(d, c.rank(), 1)};
    solver.solve(c, delta, f);
    for (auto& grid : f) {
      const double total =
          c.allreduce_value(grid.interior_sum(), comm::ReduceOp::kSum);
      EXPECT_NEAR(total, 0.0, 1e-8);
    }
  });
}

}  // namespace
}  // namespace hacc::mesh
