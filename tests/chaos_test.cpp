// Chaos campaign harness: elastic degraded-mode recovery under randomized,
// seeded fault schedules.
//
// PR 4 proved the Supervisor survives ONE scripted failure at fixed width.
// This suite turns that into the property production actually needs
// (Heitmann et al., arXiv:1904.11970: multi-month campaigns surviving
// repeated node losses): a seeded RNG generates hostile FaultPlan campaigns
// — rank kills, dropped/corrupted sends, receive stalls, collective
// failures, post-write checkpoint damage — and every campaign must
// *terminate* (complete, or give up cleanly after the retry budget) with
// conservation intact, while the ElasticPolicy sheds capacity instead of
// retrying forever at a width that keeps dying.
//
// Invariants per campaign:
//   * termination: Supervisor::run returns (the receive deadline converts
//     any induced hang into a diagnosed DeadlockError);
//   * conservation: global active count and total mass match the reference
//     always; momentum drift stays within the health budget;
//   * trajectory: bit-for-bit against a clean fixed-width reference when
//     the run finished at the launch width (canonical ordering), and within
//     tight tolerances after a width change (different decompositions
//     reorder float sums, so bit-identity across widths is not defined);
//   * audit: the ledger records the full shrink/restore/resume trail.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "comm/fault.h"
#include "core/simulation.h"
#include "core/supervisor.h"
#include "cosmology/background.h"
#include "gio/gio.h"
#include "util/rng.h"

namespace hacc::core {
namespace {

namespace fs = std::filesystem;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// The small deterministic workload every test here evolves: big enough to
/// exercise every phase (tree, FFT, refresh, checkpoint), small enough that
/// a 20-campaign sweep stays in CI budget.
SimulationConfig chaos_config() {
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 12;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 5;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  return cfg;
}

struct FinalState {
  /// id -> raw float bits of (x y z vx vy vz): exact comparison currency.
  std::map<std::uint64_t, std::array<std::uint32_t, 6>> bits;
  /// id -> (x y z vx vy vz) values for tolerance comparison across widths.
  std::map<std::uint64_t, std::array<float, 6>> values;
  double mass_sum = 0;
  std::array<double, 3> momentum{};
  std::vector<cosmology::PowerBin> pk;
};

std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, 4);
  return u;
}

/// Collective: gathers the final particle state and spectra to rank 0's
/// `out` (untouched on other ranks).
void collect_state(Simulation& sim, comm::Comm& c, FinalState* out) {
  // Collectives run on every rank, but only rank 0 may touch `out` — the
  // other rank threads racing the assignments would be a data race.
  auto pk = sim.power_spectrum(/*bins=*/8);
  auto momentum = sim.total_momentum();
  auto all = sim.gather_active();
  if (c.rank() != 0) return;
  out->pk = std::move(pk);
  out->momentum = momentum;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::array<float, 6> v{all.x[i],  all.y[i],  all.z[i],
                                 all.vx[i], all.vy[i], all.vz[i]};
    out->values[all.id[i]] = v;
    out->bits[all.id[i]] = {float_bits(v[0]), float_bits(v[1]),
                            float_bits(v[2]), float_bits(v[3]),
                            float_bits(v[4]), float_bits(v[5])};
    out->mass_sum += all.mass[i];
  }
}

/// Clean uninterrupted run at `nranks`: the truth a chaotic run must match.
FinalState reference_run(const SimulationConfig& cfg,
                         const cosmology::Cosmology& cosmo, int nranks) {
  FinalState ref;
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
    collect_state(sim, c, &ref);
  });
  return ref;
}

/// Minimum-image distance along one axis of a periodic grid of side n.
float periodic_delta(float a, float b, float n) {
  float d = std::fabs(a - b);
  while (d > n) d -= n;
  return std::min(d, n - d);
}

/// Cross-width comparison: same particles, conserved mass, and positions/
/// velocities within `pos_tol`/`vel_tol` (different widths re-order float
/// sums in the FFT and deposit, so exact identity is not defined).
void expect_state_close(const FinalState& ref, const FinalState& got,
                        float grid, float pos_tol, float vel_tol) {
  ASSERT_EQ(ref.values.size(), got.values.size());
  EXPECT_NEAR(got.mass_sum, ref.mass_sum, 1e-9 * std::fabs(ref.mass_sum));
  float worst_pos = 0, worst_vel = 0;
  for (const auto& [id, rv] : ref.values) {
    const auto it = got.values.find(id);
    ASSERT_NE(it, got.values.end()) << "id " << id;
    const auto& gv = it->second;
    for (int a = 0; a < 3; ++a) {
      worst_pos = std::max(worst_pos, periodic_delta(rv[a], gv[a], grid));
      worst_vel = std::max(worst_vel,
                           std::fabs(rv[a + 3] - gv[a + 3]));
    }
  }
  EXPECT_LE(worst_pos, pos_tol);
  EXPECT_LE(worst_vel, vel_tol);
}

/// Bin-by-bin relative power spectrum agreement on populated bins.
void expect_pk_close(const std::vector<cosmology::PowerBin>& ref,
                     const std::vector<cosmology::PowerBin>& got,
                     double rtol) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i].modes == 0) continue;
    EXPECT_EQ(ref[i].modes, got[i].modes) << "bin " << i;
    EXPECT_NEAR(got[i].power, ref[i].power, rtol * ref[i].power)
        << "bin " << i << " k=" << ref[i].k;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// ---- elastic shrink: one rank dies, the run finishes narrower --------------

TEST(ElasticShrink, KilledRankResumesAtReducedWidthWithAuditTrail) {
  const SimulationConfig cfg = chaos_config();
  cosmology::Cosmology cosmo;
  const FinalState ref = reference_run(cfg, cosmo, 4);

  SupervisorConfig scfg;
  scfg.sim = cfg;
  scfg.nranks = 4;
  scfg.elastic.rule = ElasticRule::kShrinkByFailed;
  scfg.elastic.min_ranks = 2;
  scfg.checkpoint_dir =
      (fs::temp_directory_path() / "hacc_chaos_shrink").string();
  scfg.sim.ledger_path = scfg.checkpoint_dir + "/ledger.jsonl";
  scfg.checkpoint_every = 2;
  scfg.keep = 2;
  scfg.max_retries = 3;
  scfg.max_momentum_drift = 1e-2;
  scfg.machine.verify_payloads = true;
  scfg.machine.recv_timeout_s = 60;
  fs::remove_all(scfg.checkpoint_dir);
  fs::create_directories(scfg.checkpoint_dir);

  comm::FaultPlan plan;
  plan.kill_at_step(/*rank=*/3, /*step=*/4);  // checkpoint at step 2 exists
  scfg.machine.fault_plan = &plan;

  Supervisor sup(cosmo, scfg);
  FinalState got;
  Simulation::HealthReport health;
  sup.on_finished = [&](Simulation& sim, comm::Comm& c) {
    health = sim.health_check();
    collect_state(sim, c, &got);
    EXPECT_EQ(c.size(), 3);  // resumed one rank short
  };
  const SupervisorReport rep = sup.run();

  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_EQ(rep.restores, 1);
  EXPECT_EQ(rep.shrinks, 1);
  EXPECT_EQ(rep.final_width, 3);
  EXPECT_EQ(rep.width_history, (std::vector<int>{4, 3}));
  EXPECT_EQ(rep.final_step, cfg.steps);
  // Per-width throughput was captured on both sides of the shrink.
  ASSERT_EQ(rep.step_stats.size(), 2u);
  EXPECT_EQ(rep.step_stats[0].width, 4);
  EXPECT_EQ(rep.step_stats[1].width, 3);
  EXPECT_GT(rep.step_stats[0].steps, 0);
  EXPECT_GT(rep.step_stats[1].steps, 0);
  EXPECT_GT(rep.step_stats[1].steps_per_sec(), 0.0);

  // Conservation at the reduced width.
  EXPECT_TRUE(health.finite);
  EXPECT_TRUE(health.counts_ok());
  EXPECT_EQ(health.active, 12u * 12u * 12u);
  expect_state_close(ref, got, static_cast<float>(cfg.grid),
                     /*pos_tol=*/1e-3f, /*vel_tol=*/1e-3f);
  expect_pk_close(ref.pk, got.pk, /*rtol=*/1e-3);

  // The ledger records the whole degradation history, durably.
  const std::string text = read_file(scfg.sim.ledger_path);
  for (const char* kind :
       {"attempt_start", "checkpoint", "attempt_failed", "shrink",
        "restore", "resume_at_width", "run_complete"}) {
    EXPECT_NE(text.find(std::string("\"event\":\"") + kind + '"'),
              std::string::npos)
        << kind << "\n" << text;
  }
  EXPECT_NE(text.find("width 4 -> 3"), std::string::npos) << text;
  EXPECT_NE(text.find("\"event\":\"resume_at_width\""), std::string::npos);

  fs::remove_all(scfg.checkpoint_dir);
}

// ---- satellite: the 4-rank checkpoint restores onto 2 AND 3 ranks ----------

TEST(ElasticShrink, CheckpointRestoresOntoTwoAndThreeRanks) {
  // The gio elastic read + alltoallv redistribution must work INSIDE the
  // recovery loop (gio_test only proves it in isolation): a 4-rank run is
  // killed mid-flight and must resume on 3 ranks (shrink_by_failed) and on
  // 2 ranks (halve), each conserving mass/active count and reproducing the
  // reference power spectrum.
  const SimulationConfig cfg = chaos_config();
  cosmology::Cosmology cosmo;
  const FinalState ref = reference_run(cfg, cosmo, 4);

  struct Case {
    ElasticRule rule;
    int expect_width;
  };
  for (const Case c : {Case{ElasticRule::kShrinkByFailed, 3},
                       Case{ElasticRule::kHalve, 2}}) {
    SCOPED_TRACE(elastic_rule_name(c.rule));
    SupervisorConfig scfg;
    scfg.sim = cfg;
    scfg.nranks = 4;
    scfg.elastic.rule = c.rule;
    scfg.elastic.min_ranks = 2;
    scfg.checkpoint_dir =
        (fs::temp_directory_path() / "hacc_chaos_widths").string();
    scfg.checkpoint_every = 2;
    scfg.keep = 2;
    scfg.max_retries = 3;
    scfg.max_momentum_drift = 1e-2;
    fs::remove_all(scfg.checkpoint_dir);

    comm::FaultPlan plan;
    plan.kill_at_step(/*rank=*/1, /*step=*/3);
    scfg.machine.fault_plan = &plan;

    Supervisor sup(cosmo, scfg);
    FinalState got;
    Simulation::HealthReport health;
    sup.on_finished = [&](Simulation& sim, comm::Comm& comm) {
      health = sim.health_check();
      collect_state(sim, comm, &got);
    };
    const SupervisorReport rep = sup.run();

    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.final_width, c.expect_width);
    EXPECT_EQ(rep.shrinks, 1);
    EXPECT_TRUE(health.finite);
    EXPECT_TRUE(health.counts_ok());
    expect_state_close(ref, got, static_cast<float>(cfg.grid),
                       /*pos_tol=*/1e-3f, /*vel_tol=*/1e-3f);
    expect_pk_close(ref.pk, got.pk, /*rtol=*/1e-3);
    fs::remove_all(scfg.checkpoint_dir);
  }
}

// ---- fault-plan width remapping --------------------------------------------

TEST(ElasticShrink, FaultPlanRemapsVictimsAcrossWidths) {
  // A campaign planned at width 4 must keep firing after the machine
  // shrinks: a kill aimed at rank 3 of a 2-rank machine folds onto rank
  // 3 % 2 == 1. Two kills: the first shrinks 4 -> 2 (halve), the second —
  // aimed at a rank that no longer exists — must still fire on a survivor
  // and shrink the run to the min_ranks floor of 1.
  const SimulationConfig cfg = chaos_config();
  cosmology::Cosmology cosmo;

  SupervisorConfig scfg;
  scfg.sim = cfg;
  scfg.nranks = 4;
  scfg.elastic.rule = ElasticRule::kHalve;
  scfg.elastic.min_ranks = 1;
  scfg.checkpoint_dir =
      (fs::temp_directory_path() / "hacc_chaos_remap").string();
  scfg.checkpoint_every = 1;
  scfg.keep = 3;
  scfg.max_retries = 4;
  fs::remove_all(scfg.checkpoint_dir);

  comm::FaultPlan plan;
  plan.kill_at_step(/*rank=*/2, /*step=*/2);
  plan.kill_at_step(/*rank=*/3, /*step=*/4);  // fires as rank 3 % 2 == 1
  scfg.machine.fault_plan = &plan;

  Supervisor sup(cosmo, scfg);
  int finish_width = 0;
  sup.on_finished = [&](Simulation&, comm::Comm& c) {
    if (c.rank() == 0) finish_width = c.size();
  };
  const SupervisorReport rep = sup.run();

  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.shrinks, 2);
  EXPECT_EQ(rep.final_width, 1);
  EXPECT_EQ(finish_width, 1);
  EXPECT_EQ(rep.width_history, (std::vector<int>{4, 2, 1}));
  // The second kill's diagnosis names the *remapped* victim.
  EXPECT_NE(rep.last_error.find("rank 1"), std::string::npos)
      << rep.last_error;
  fs::remove_all(scfg.checkpoint_dir);
}

// ---- the chaos campaign ----------------------------------------------------

/// One randomized campaign: builds a FaultPlan + checkpoint-damage schedule
/// from `seed`, runs it under an elastic Supervisor, and checks the
/// termination/conservation/trajectory invariants against `ref`.
struct CampaignOutcome {
  bool completed = false;
  int attempts = 0;
  int final_width = 0;
  int shrinks = 0;
  int faults_planned = 0;
  int checkpoints_damaged = 0;
  bool sdc_detected = false;
  bool rolled_back = false;
};

CampaignOutcome run_campaign(std::uint64_t seed, const SimulationConfig& cfg,
                             const cosmology::Cosmology& cosmo,
                             const FinalState& ref) {
  Philox philox(seed, /*stream=*/0xC4A05);
  Philox::Stream rng(philox);

  SupervisorConfig scfg;
  scfg.sim = cfg;
  scfg.nranks = 4;
  scfg.elastic.rule = rng.uniform() < 0.5 ? ElasticRule::kShrinkByFailed
                                          : ElasticRule::kHalve;
  scfg.elastic.min_ranks = 1 + static_cast<int>(rng.index(2));  // 1 or 2
  scfg.checkpoint_dir =
      (fs::temp_directory_path() / ("hacc_chaos_" + std::to_string(seed)))
          .string();
  scfg.checkpoint_every = 1 + static_cast<int>(rng.index(2));  // 1 or 2
  scfg.keep = 2;
  scfg.max_retries = 4;
  scfg.max_momentum_drift = 1e-2;
  scfg.machine.verify_payloads = true;
  // The termination guarantee: any induced hang (dropped message, stalled
  // peer) dies with a DeadlockError at this deadline instead of wedging
  // the campaign.
  scfg.machine.recv_timeout_s = 3.0;
  scfg.sim.ledger_path = scfg.checkpoint_dir + "/ledger.jsonl";
  fs::remove_all(scfg.checkpoint_dir);
  fs::create_directories(scfg.checkpoint_dir);

  comm::FaultPlan plan;
  CampaignOutcome out;
  // 1-2 scheduled rank kills at random (rank, step) — ranks are drawn from
  // the LAUNCH width; the remap keeps late kills live after shrinks.
  const int kills = 1 + static_cast<int>(rng.index(2));
  for (int k = 0; k < kills; ++k) {
    plan.kill_at_step(static_cast<int>(rng.index(4)),
                      1 + static_cast<int>(rng.index(
                              static_cast<std::uint64_t>(cfg.steps))));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.4) {  // corrupted payload (verify_payloads catches)
    plan.corrupt_send(static_cast<int>(rng.index(4)), comm::fault::kAnyTag,
                      static_cast<int>(rng.index(64)));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.3) {  // dropped message -> diagnosed timeout
    plan.drop_send(static_cast<int>(rng.index(4)), comm::fault::kAnyTag,
                   static_cast<int>(rng.index(64)));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.3) {  // benign stall, below the deadline
    plan.stall_recv(static_cast<int>(rng.index(4)), /*seconds=*/0.2,
                    static_cast<int>(rng.index(64)));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.3) {  // collective entry failure
    plan.fail_collective(static_cast<int>(rng.index(4)),
                         rng.uniform() < 0.5 ? comm::telemetry::Op::kBarrier
                                             : comm::telemetry::Op::kAlltoall,
                         static_cast<int>(rng.index(16)));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.5) {  // resident particle memory flip (ABFT checksum)
    plan.flip_bits_in_particles(
        static_cast<int>(rng.index(4)),
        1 + static_cast<int>(
                rng.index(static_cast<std::uint64_t>(cfg.steps))),
        1 + static_cast<int>(rng.index(2)));
    ++out.faults_planned;
  }
  if (rng.uniform() < 0.25) {  // resident grid memory flip (mass audit)
    plan.flip_bits_in_grid(
        static_cast<int>(rng.index(4)),
        1 + static_cast<int>(
                rng.index(static_cast<std::uint64_t>(cfg.steps))));
    ++out.faults_planned;
  }
  scfg.machine.fault_plan = &plan;

  Supervisor sup(cosmo, scfg);
  sup.between_attempts = [&](int /*attempt*/) {
    // Post-write damage: with probability 0.4 the newest checkpoint is
    // corrupted on disk while the machine is down, forcing the chain
    // re-verification to reject it and fall back.
    if (rng.uniform() >= 0.4) return;
    const auto steps = sup.checkpoints().existing();
    if (steps.empty()) return;
    gio::flip_byte_in_variable(sup.checkpoints().path_for_step(steps.front()),
                               /*block=*/0, "x",
                               /*byte_in_block=*/rng.index(256));
    ++out.checkpoints_damaged;
  };
  FinalState got;
  Simulation::HealthReport health;
  sup.on_finished = [&](Simulation& sim, comm::Comm& c) {
    health = sim.health_check();
    collect_state(sim, c, &got);
  };
  const SupervisorReport rep = sup.run();  // termination == this returns

  out.completed = rep.completed;
  out.attempts = rep.attempts;
  out.final_width = rep.final_width;
  out.shrinks = rep.shrinks;

  if (!rep.completed) {
    // Clean give-up: the whole retry budget was consumed and said so.
    EXPECT_EQ(rep.attempts, scfg.max_retries + 1) << "seed " << seed;
    EXPECT_FALSE(rep.last_error.empty()) << "seed " << seed;
  } else {
    EXPECT_TRUE(health.finite) << "seed " << seed;
    EXPECT_TRUE(health.counts_ok()) << "seed " << seed;
    EXPECT_NEAR(got.mass_sum, ref.mass_sum, 1e-9 * std::fabs(ref.mass_sum))
        << "seed " << seed;
    if (rep.final_width == scfg.nranks) {
      // Same width all along: canonical ordering makes recovery exact.
      EXPECT_EQ(ref.bits, got.bits) << "seed " << seed;
    } else {
      expect_state_close(ref, got, static_cast<float>(cfg.grid),
                         /*pos_tol=*/1e-3f, /*vel_tol=*/1e-3f);
      expect_pk_close(ref.pk, got.pk, /*rtol=*/1e-3);
    }
  }

  // SDC trail: whenever a campaign repaired corruption in place, the ledger
  // must show the full escalation story in order — detection, then the
  // in-place rollback, then the no-relaunch resume. (A campaign may instead
  // escalate to relaunch or give up; only the in-place path is ordered.)
  const std::string text = read_file(scfg.sim.ledger_path);
  const std::size_t at_detect = text.find("\"event\":\"sdc_detected\"");
  const std::size_t at_rollback = text.find("\"event\":\"rollback\"");
  const std::size_t at_resume = text.find("\"event\":\"resume\"");
  out.sdc_detected = at_detect != std::string::npos;
  if (at_rollback != std::string::npos) {
    out.rolled_back = true;
    EXPECT_NE(at_detect, std::string::npos) << "seed " << seed;
    EXPECT_LT(at_detect, at_rollback) << "seed " << seed;
    EXPECT_NE(at_resume, std::string::npos) << "seed " << seed;
    if (at_resume != std::string::npos)
      EXPECT_LT(at_rollback, at_resume) << "seed " << seed;
  }

  fs::remove_all(scfg.checkpoint_dir);
  return out;
}

TEST(ChaosCampaign, SeededCampaignsAllTerminateAndConserve) {
  // HACC_CHAOS_CAMPAIGNS trims the sweep for sanitizer builds (check.sh);
  // the default matches the acceptance bar of >= 20 campaigns.
  const int campaigns = env_int("HACC_CHAOS_CAMPAIGNS", 20);
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(env_int("HACC_CHAOS_SEED", 20120));

  SimulationConfig cfg = chaos_config();
  cfg.steps = 4;  // keep each campaign cheap; faults land on steps 1..4
  cosmology::Cosmology cosmo;
  const FinalState ref = reference_run(cfg, cosmo, 4);

  int completed = 0, gave_up = 0, shrunk = 0, sdc = 0, rolled = 0;
  for (int i = 0; i < campaigns; ++i) {
    SCOPED_TRACE("campaign " + std::to_string(i));
    const CampaignOutcome out = run_campaign(base_seed + static_cast<std::uint64_t>(i), cfg, cosmo, ref);
    completed += out.completed ? 1 : 0;
    gave_up += out.completed ? 0 : 1;
    shrunk += out.shrinks > 0 ? 1 : 0;
    sdc += out.sdc_detected ? 1 : 0;
    rolled += out.rolled_back ? 1 : 0;
  }
  std::printf(
      "chaos: %d campaigns, %d completed, %d gave up, %d shrank, "
      "%d caught SDC (%d repaired in place)\n",
      campaigns, completed, gave_up, shrunk, sdc, rolled);
  // Every campaign terminated (we got here). The sweep must not be
  // degenerate: most campaigns finish, and the elastic path was exercised.
  EXPECT_GE(completed, (2 * campaigns) / 3);
  if (campaigns >= 10) {
    EXPECT_GT(shrunk, 0);
    // Memory flips land with probability ~0.6 per campaign; the ABFT
    // audits must have fired on some of them.
    EXPECT_GT(sdc, 0);
  }
}

}  // namespace
}  // namespace hacc::core
