// Tests for the P3M chaining-mesh short-range solver: correctness vs direct
// summation, agreement with the RCB tree solver (the paper's
// cross-algorithm validation, Sec. II), and configuration checks.
#include <gtest/gtest.h>

#include <cmath>

#include "p3m/chaining_mesh.h"
#include "tree/direct.h"
#include "tree/force_matcher.h"
#include "tree/rcb_tree.h"
#include "util/rng.h"

namespace hacc::p3m {
namespace {

using tree::ParticleArray;
using tree::ShortRangeKernel;

ParticleArray random_particles(std::size_t n, float box, std::uint64_t seed) {
  ParticleArray p;
  p.reserve(n);
  Philox rng(seed);
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.uniform(0, box)),
                static_cast<float>(s.uniform(0, box)), 0, 0, 0, 1.0f, i);
  }
  return p;
}

ShortRangeKernel default_kernel() {
  ShortRangeKernel k;
  k.softening = 0.05f;
  k.fgrid = tree::default_fgrid_poly5();
  return k;
}

class P3mSizes : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Counts, P3mSizes,
                         ::testing::Values(1, 10, 100, 500, 2000));

TEST_P(P3mSizes, MatchesDirectSummation) {
  const std::size_t n = GetParam();
  ParticleArray p = random_particles(n, 15.0f, 7 + n);
  const auto kernel = default_kernel();
  std::vector<float> ax(n), ay(n), az(n), dx(n), dy(n), dz(n);
  const auto stats = compute_short_range_p3m(p, kernel, ax, ay, az);
  EXPECT_EQ(stats.particles, n);
  tree::direct_short_range(p, kernel, dx, dy, dz);
  double max_err = 0, scale = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max({max_err, std::abs(static_cast<double>(ax[i] - dx[i])),
                        std::abs(static_cast<double>(ay[i] - dy[i])),
                        std::abs(static_cast<double>(az[i] - dz[i]))});
    scale = std::max({scale, std::abs(static_cast<double>(dx[i])),
                      std::abs(static_cast<double>(dy[i])),
                      std::abs(static_cast<double>(dz[i]))});
  }
  EXPECT_LT(max_err, 2e-4 * (scale + 1.0));
}

TEST(P3m, AgreesWithRcbTreeSolver) {
  // The paper validates P3M against PPTreePM; at the force level the two
  // must agree to round-off, since both sum the identical kernel over all
  // pairs within the hand-over radius.
  const std::size_t n = 1500;
  ParticleArray p1 = random_particles(n, 20.0f, 42);
  ParticleArray p2 = p1;
  const auto kernel = default_kernel();
  std::vector<float> ax1(n), ay1(n), az1(n), ax2(n), ay2(n), az2(n);
  compute_short_range_p3m(p1, kernel, ax1, ay1, az1);
  tree::RcbTree tr(p2, tree::RcbConfig{64});
  tree::compute_short_range(tr, kernel, ax2, ay2, az2);
  // p2 was permuted by the build: compare by particle id.
  std::vector<std::size_t> slot(n);
  for (std::size_t i = 0; i < n; ++i) slot[p2.id[i]] = i;
  double max_err = 0, scale = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = slot[p1.id[i]];
    max_err =
        std::max({max_err, std::abs(static_cast<double>(ax1[i] - ax2[j])),
                  std::abs(static_cast<double>(ay1[i] - ay2[j])),
                  std::abs(static_cast<double>(az1[i] - az2[j]))});
    scale = std::max(scale, std::abs(static_cast<double>(ax1[i])));
  }
  EXPECT_LT(max_err, 5e-4 * (scale + 1.0));
}

TEST(P3m, LargerCellsAllowed) {
  // Any cell size >= rmax is valid; forces must be identical.
  const std::size_t n = 400;
  ParticleArray p = random_particles(n, 12.0f, 3);
  const auto kernel = default_kernel();
  std::vector<float> a1(n), a2(n), tmp(n), tmp2(n), tmp3(n), tmp4(n);
  compute_short_range_p3m(p, kernel, a1, tmp, tmp2, 1.0f, P3mConfig{3.0f});
  compute_short_range_p3m(p, kernel, a2, tmp3, tmp4, 1.0f, P3mConfig{5.5f});
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(a1[i], a2[i], 1e-4f * (std::abs(a1[i]) + 1e-3f));
}

TEST(P3m, RejectsCellSmallerThanCutoff) {
  ParticleArray p = random_particles(10, 5.0f, 1);
  const auto kernel = default_kernel();
  std::vector<float> a(10), b(10), c(10);
  EXPECT_THROW(
      compute_short_range_p3m(p, kernel, a, b, c, 1.0f, P3mConfig{2.0f}),
      Error);
}

TEST(P3m, EmptyInputIsFine) {
  ParticleArray p;
  const auto kernel = default_kernel();
  std::vector<float> a, b, c;
  const auto stats = compute_short_range_p3m(p, kernel, a, b, c);
  EXPECT_EQ(stats.interactions, 0u);
}

TEST(P3m, MomentumConserved) {
  const std::size_t n = 800;
  ParticleArray p = random_particles(n, 10.0f, 55);
  const auto kernel = default_kernel();
  std::vector<float> ax(n), ay(n), az(n);
  compute_short_range_p3m(p, kernel, ax, ay, az);
  double sx = 0, sy = 0, sz = 0, scale = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += ax[i];
    sy += ay[i];
    sz += az[i];
    scale += std::abs(ax[i]) + std::abs(ay[i]) + std::abs(az[i]);
  }
  EXPECT_LT(std::abs(sx), 1e-5 * scale + 1e-6);
  EXPECT_LT(std::abs(sy), 1e-5 * scale + 1e-6);
  EXPECT_LT(std::abs(sz), 1e-5 * scale + 1e-6);
}

}  // namespace
}  // namespace hacc::p3m
