// Physics integration tests for the full code.
//
// These are the end-to-end validations that the pieces compose correctly:
//   * a single Zel'dovich mode must grow at the linear growth rate
//     (validates the PM force + kick/drift factors + time stepper);
//   * multi-rank runs must reproduce the single-rank run (validates
//     overloading + grid exchanges + distributed FFT);
//   * PPTreePM and P3M must agree on the nonlinear power spectrum (the
//     paper's own cross-algorithm error analysis, Sec. II);
//   * the measured P(k) must grow as D+^2 in the linear regime.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <numbers>
#include <string>

#include "comm/comm.h"
#include "comm/fault.h"
#include "core/simulation.h"
#include "core/supervisor.h"
#include "gio/gio.h"
#include "mesh/cic.h"

namespace hacc::core {
namespace {

using cosmology::Cosmology;
using tree::ParticleArray;
using tree::Role;

/// Amplitude of the sine displacement mode `mode` along x, extracted from
/// active particles relative to their lattice sites (encoded in the id).
double measure_mode_amplitude(const ParticleArray& p, std::size_t np,
                              std::size_t n, int mode) {
  // Particle id = (ix*np + iy)*np + iz; lattice spacing n/np.
  const double spacing =
      static_cast<double>(n) / static_cast<double>(np);
  double amp = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p.role[i] != Role::kActive) continue;
    const std::uint64_t id = p.id[i];
    const auto ix = static_cast<double>(id / (np * np));
    const double qx = ix * spacing;
    double dx = static_cast<double>(p.x[i]) - qx;
    // Periodic wrap of the displacement.
    const auto nn = static_cast<double>(n);
    dx -= nn * std::round(dx / nn);
    amp += 2.0 * dx *
           std::sin(2.0 * std::numbers::pi * static_cast<double>(mode) * qx /
                    nn);
    ++count;
  }
  return amp / static_cast<double>(count);
}

TEST(LinearGrowth, SingleModeGrowsAtLinearRate) {
  // Einstein-de-Sitter: D+(a) = a exactly, so evolving a0 -> 4*a0 must
  // quadruple the displacement amplitude of a small single mode.
  const std::size_t n = 32, np = 32;
  const int mode = 2;
  const double a0 = 0.05, a1 = 0.2;
  const float amp0 = 0.05f;  // cells: deeply linear
  Cosmology eds;
  eds.omega_m = 1.0;
  eds.omega_l = 0.0;
  eds.omega_b = 0.0;

  SimulationConfig cfg;
  cfg.grid = n;
  cfg.particles_per_dim = np;
  cfg.z_initial = Cosmology::z_of_a(a0);
  cfg.z_final = Cosmology::z_of_a(a1);
  cfg.steps = 20;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cfg.solver = ShortRangeSolver::kNone;  // pure PM: linear-regime test

  comm::Machine::run(1, [&](comm::Comm& c) {
    Simulation sim(c, eds, cfg);
    // Hand-built single-mode Zel'dovich ICs (bypasses the random ICs).
    ParticleArray& p = sim.mutable_particles();
    p.clear();
    // EdS Zel'dovich momentum: p = a^2 E f D psi; with D(a) = a,
    // E = a^{-3/2}, f = 1 this is a^{1/2} * (a psi) = a^{3/2} psi.
    for (std::size_t ix = 0; ix < np; ++ix)
      for (std::size_t iy = 0; iy < np; ++iy)
        for (std::size_t iz = 0; iz < np; ++iz) {
          const double qx = static_cast<double>(ix);
          const double psi =
              amp0 / a0 *  // displacement at a0 is amp0
              std::sin(2.0 * std::numbers::pi * mode * qx /
                       static_cast<double>(n));
          const double x = qx + a0 * psi;
          const double mom = std::pow(a0, 1.5) * psi;
          p.push_back(static_cast<float>(x < 0 ? x + n : x),
                      static_cast<float>(iy), static_cast<float>(iz),
                      static_cast<float>(mom), 0.0f, 0.0f, 1.0f,
                      (ix * np + iy) * np + iz, Role::kActive);
        }
    sim.domain().refresh(c, p);

    const double before = measure_mode_amplitude(sim.particles(), np, n, mode);
    EXPECT_NEAR(before, amp0, 0.05 * amp0);
    sim.run();
    const double after = measure_mode_amplitude(sim.particles(), np, n, mode);
    const double expect_ratio = a1 / a0;  // D ratio in EdS
    EXPECT_NEAR(after / before, expect_ratio, 0.05 * expect_ratio)
        << "amplitude " << before << " -> " << after;
  });
}

TEST(LinearGrowth, LcdmModeGrowsAtDPlus) {
  // Same test in LCDM where D+(a) != a.
  const std::size_t n = 32, np = 32;
  const int mode = 1;
  const double a0 = 0.2, a1 = 0.8;
  const float amp0 = 0.05f;
  Cosmology lcdm;  // defaults

  SimulationConfig cfg;
  cfg.grid = n;
  cfg.particles_per_dim = np;
  cfg.z_initial = Cosmology::z_of_a(a0);
  cfg.z_final = Cosmology::z_of_a(a1);
  cfg.steps = 25;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cfg.solver = ShortRangeSolver::kNone;

  comm::Machine::run(1, [&](comm::Comm& c) {
    Simulation sim(c, lcdm, cfg);
    ParticleArray& p = sim.mutable_particles();
    p.clear();
    const double d0 = lcdm.growth_factor(a0);
    const double f0 = lcdm.growth_rate(a0);
    const double e0 = lcdm.efunc(a0);
    for (std::size_t ix = 0; ix < np; ++ix)
      for (std::size_t iy = 0; iy < np; ++iy)
        for (std::size_t iz = 0; iz < np; ++iz) {
          const double qx = static_cast<double>(ix);
          const double psi = amp0 / d0 *
                             std::sin(2.0 * std::numbers::pi * mode * qx /
                                      static_cast<double>(n));
          const double x = qx + d0 * psi;
          const double mom = a0 * a0 * e0 * f0 * d0 * psi;
          p.push_back(static_cast<float>(x < 0 ? x + n : x),
                      static_cast<float>(iy), static_cast<float>(iz),
                      static_cast<float>(mom), 0.0f, 0.0f, 1.0f,
                      (ix * np + iy) * np + iz, Role::kActive);
        }
    sim.domain().refresh(c, p);
    const double before = measure_mode_amplitude(sim.particles(), np, n, mode);
    sim.run();
    const double after = measure_mode_amplitude(sim.particles(), np, n, mode);
    const double expect_ratio = lcdm.growth_factor(a1) / d0;
    EXPECT_NEAR(after / before, expect_ratio, 0.05 * expect_ratio);
  });
}

TEST(Distributed, MultiRankMatchesSingleRank) {
  // A short full-physics run must give the same particle positions on 1 and
  // 8 ranks (same ICs by construction; float round-off differences only).
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 16;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 3;
  cfg.subcycles = 3;
  cfg.overload = 3.0;
  cfg.solver = ShortRangeSolver::kTreePP;
  Cosmology cosmo;

  std::map<std::uint64_t, std::array<float, 3>> reference;
  for (int nranks : {1, 8}) {
    std::map<std::uint64_t, std::array<float, 3>> result;
    std::mutex mu;
    comm::Machine::run(nranks, [&](comm::Comm& c) {
      Simulation sim(c, cosmo, cfg);
      sim.initialize();
      sim.run();
      auto all = sim.gather_active();
      if (c.rank() == 0) {
        std::lock_guard lock(mu);
        for (std::size_t i = 0; i < all.size(); ++i)
          result[all.id[i]] = {all.x[i], all.y[i], all.z[i]};
      }
    });
    if (nranks == 1) {
      reference = std::move(result);
    } else {
      ASSERT_EQ(result.size(), reference.size());
      double max_err = 0;
      for (const auto& [id, pos] : result) {
        const auto& ref = reference.at(id);
        for (int d = 0; d < 3; ++d) {
          double diff = std::abs(static_cast<double>(
              pos[static_cast<std::size_t>(d)] -
              ref[static_cast<std::size_t>(d)]));
          diff = std::min(diff, 16.0 - diff);  // periodic
          max_err = std::max(max_err, diff);
        }
      }
      // Float arithmetic orders differ (tree traversal, reductions); demand
      // agreement to ~1e-3 cells.
      EXPECT_LT(max_err, 2e-3);
    }
  }
}

TEST(Distributed, TreePmMatchesP3mEvolution) {
  // The paper: "the P3M and the PPTreePM versions agree to within 0.1% for
  // the nonlinear power spectrum test". Our two solvers share the kernel,
  // so their evolved states agree to float round-off; verify both particle
  // positions and P(k).
  SimulationConfig base;
  base.grid = 16;
  base.particles_per_dim = 16;
  base.box_mpch = 24.0;  // small box: some nonlinearity by z=5
  base.z_initial = 30.0;
  base.z_final = 5.0;
  base.steps = 4;
  base.subcycles = 3;
  base.overload = 3.5;
  Cosmology cosmo;

  std::vector<double> pk_tree, pk_p3m;
  for (auto solver : {ShortRangeSolver::kTreePP, ShortRangeSolver::kP3m}) {
    SimulationConfig cfg = base;
    cfg.solver = solver;
    std::vector<double>& sink =
        solver == ShortRangeSolver::kTreePP ? pk_tree : pk_p3m;
    comm::Machine::run(2, [&](comm::Comm& c) {
      Simulation sim(c, cosmo, cfg);
      sim.initialize();
      sim.run();
      auto bins = sim.power_spectrum(10);
      if (c.rank() == 0) {
        for (const auto& b : bins) sink.push_back(b.power);
      }
    });
  }
  ASSERT_EQ(pk_tree.size(), pk_p3m.size());
  ASSERT_FALSE(pk_tree.empty());
  for (std::size_t i = 0; i < pk_tree.size(); ++i) {
    EXPECT_NEAR(pk_p3m[i] / pk_tree[i], 1.0, 1e-3) << "bin " << i;
  }
}

TEST(LinearGrowth, PowerSpectrumGrowsAsDSquared) {
  // Random ICs, linear regime: P(k, a1)/P(k, a0) = (D(a1)/D(a0))^2 at low k.
  SimulationConfig cfg;
  cfg.grid = 32;
  cfg.particles_per_dim = 32;
  cfg.box_mpch = 256.0;  // big box: everything linear
  cfg.z_initial = 20.0;
  cfg.z_final = 5.0;
  cfg.steps = 8;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cfg.solver = ShortRangeSolver::kTreePP;
  Cosmology cosmo;

  comm::Machine::run(1, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    auto before = sim.power_spectrum(10);
    sim.run();
    auto after = sim.power_spectrum(10);
    const double d0 = cosmo.growth_factor(Cosmology::a_of_z(cfg.z_initial));
    const double d1 = cosmo.growth_factor(Cosmology::a_of_z(cfg.z_final));
    const double expect = (d1 / d0) * (d1 / d0);
    ASSERT_EQ(before.size(), after.size());
    std::size_t tested = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      if (before[i].modes < 100 || before[i].k > 0.16) continue;
      EXPECT_NEAR(after[i].power / before[i].power / expect, 1.0, 0.12)
          << "k=" << before[i].k;
      ++tested;
    }
    EXPECT_GE(tested, 2u);
  });
}

TEST(Energy, LayzerIrvineConservation) {
  // The cosmic energy equation d(T+W)/dtau = -E(a)(2T+W) must hold for the
  // PM dynamics: the monitor I = T + W + int E(2T+W) dtau stays constant.
  // This is the classic global validation of cosmological N-body
  // integrators (it probes the force, the kick/drift factors, and the
  // expansion coupling together).
  SimulationConfig cfg;
  cfg.grid = 24;
  cfg.particles_per_dim = 24;
  cfg.box_mpch = 48.0;
  cfg.z_initial = 20.0;
  cfg.z_final = 2.0;
  cfg.steps = 12;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cfg.solver = ShortRangeSolver::kNone;  // the diagnostic uses the PM
                                         // potential only
  Cosmology cosmo;
  comm::Machine::run(2, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    auto e = sim.energy();
    double a_prev = sim.current_a();
    double sum_prev = 2.0 * e.kinetic + e.potential;
    const double monitor0 = e.kinetic + e.potential;
    double integral = 0.0;
    double wmax = std::abs(e.potential);
    for (int s = 0; s < cfg.steps; ++s) {
      sim.step();
      e = sim.energy();
      const double a_now = sim.current_a();
      const double dtau = cosmo.tau_of(a_prev, a_now);
      const double sum_now = 2.0 * e.kinetic + e.potential;
      // Trapezoid in tau of E(a)(2T+W); E evaluated at the midpoint.
      integral += cosmo.efunc(0.5 * (a_prev + a_now)) * 0.5 *
                  (sum_prev + sum_now) * dtau;
      a_prev = a_now;
      sum_prev = sum_now;
      wmax = std::max(wmax, std::abs(e.potential));
    }
    const double monitor1 = e.kinetic + e.potential + integral;
    if (c.rank() == 0) {
      EXPECT_LT(std::abs(monitor1 - monitor0), 0.05 * wmax)
          << "T+W drifted: " << monitor0 << " -> " << monitor1
          << " (scale " << wmax << ")";
    }
  });
}

TEST(Clustering, VarianceGrowsUnderGravity) {
  // Nonlinear sanity: by z ~ 1 in a small box the density variance must
  // have grown substantially beyond the initial value.
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 16;
  cfg.box_mpch = 16.0;  // very small box: strong clustering
  cfg.z_initial = 30.0;
  cfg.z_final = 1.0;
  cfg.steps = 8;
  cfg.subcycles = 3;
  cfg.overload = 3.5;
  Cosmology cosmo;
  comm::Machine::run(1, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    auto var_of = [&]() {
      auto delta = sim.density_contrast();
      double v = 0;
      const auto& b = delta.interior();
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(b.x.extent());
           ++i)
        for (std::ptrdiff_t j = 0;
             j < static_cast<std::ptrdiff_t>(b.y.extent()); ++j)
          for (std::ptrdiff_t k = 0;
               k < static_cast<std::ptrdiff_t>(b.z.extent()); ++k)
            v += delta.at(i, j, k) * delta.at(i, j, k);
      return v / static_cast<double>(b.volume());
    };
    const double var0 = var_of();
    sim.run();
    const double var1 = var_of();
    EXPECT_GT(var1, 10.0 * var0);
  });
}

TEST(FaultMatrix, KilledRankAndCorruptCheckpointRecoverBitForBit) {
  // The full recovery story in one scenario (paper Sec. V: checkpoint-
  // restart as the survival strategy at 1.6M-rank scale):
  //   1. rank 2 dies at step 5 of 6 (scheduled kill),
  //   2. while the machine is down, the newest checkpoint (step 4) is
  //      corrupted on disk,
  //   3. the Supervisor must reject the damaged file, restore from the
  //      previous good checkpoint (step 2), and finish the run —
  // and the recovered run must match an uninterrupted reference run
  // BIT-FOR-BIT at the final step (canonical ordering makes float
  // summation order restart-invariant).
  namespace fs = std::filesystem;
  SimulationConfig cfg;
  cfg.grid = 16;
  cfg.particles_per_dim = 16;
  cfg.box_mpch = 32.0;
  cfg.z_initial = 30.0;
  cfg.z_final = 10.0;
  cfg.steps = 6;
  cfg.subcycles = 2;
  cfg.overload = 3.0;
  cosmology::Cosmology cosmo;
  const int nranks = 4;

  const auto bits = [](float f) {
    std::uint32_t u;
    std::memcpy(&u, &f, 4);
    return u;
  };
  using Bits = std::array<std::uint32_t, 6>;
  std::map<std::uint64_t, Bits> reference, recovered;
  const auto collect = [&](Simulation& sim, comm::Comm& c,
                           std::map<std::uint64_t, Bits>& out) {
    auto all = sim.gather_active();
    if (c.rank() != 0) return;
    for (std::size_t i = 0; i < all.size(); ++i)
      out[all.id[i]] = {bits(all.x[i]),  bits(all.y[i]),  bits(all.z[i]),
                        bits(all.vx[i]), bits(all.vy[i]), bits(all.vz[i])};
  };

  // Uninterrupted reference run.
  comm::Machine::run(nranks, [&](comm::Comm& c) {
    Simulation sim(c, cosmo, cfg);
    sim.initialize();
    sim.run();
    collect(sim, c, reference);
  });

  SupervisorConfig scfg;
  scfg.sim = cfg;
  scfg.sim.ledger_path =
      (fs::temp_directory_path() / "hacc_fault_ledger.jsonl").string();
  scfg.nranks = nranks;
  scfg.checkpoint_dir =
      (fs::temp_directory_path() / "hacc_fault_matrix").string();
  scfg.checkpoint_every = 2;
  scfg.keep = 2;
  scfg.max_retries = 3;
  fs::remove_all(scfg.checkpoint_dir);
  fs::remove(scfg.sim.ledger_path);

  comm::FaultPlan plan;
  plan.kill_at_step(/*rank=*/2, /*step=*/5);
  scfg.machine.fault_plan = &plan;
  // Paranoia mode: end-to-end payload checksums and a receive deadline must
  // not fire on the healthy portions of the run.
  scfg.machine.verify_payloads = true;
  scfg.machine.recv_timeout_s = 60;

  Supervisor sup(cosmo, scfg);
  int corrupted = 0;
  sup.between_attempts = [&](int attempt) {
    if (attempt != 0) return;
    // The machine is down; damage the newest checkpoint on disk. `latest`
    // now points at a file that no longer reads back clean.
    const auto steps = sup.checkpoints().existing();
    ASSERT_FALSE(steps.empty());
    EXPECT_EQ(steps.front(), 4);
    gio::flip_byte_in_variable(sup.checkpoints().path_for_step(steps.front()),
                               /*block=*/0, "x", /*byte_in_block=*/11);
    ++corrupted;
  };
  sup.on_finished = [&](Simulation& sim, comm::Comm& c) {
    collect(sim, c, recovered);
  };
  const SupervisorReport report = sup.run();

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.attempts, 2);   // one failure, one successful recovery
  EXPECT_EQ(report.restores, 1);
  EXPECT_EQ(report.final_step, cfg.steps);
  EXPECT_EQ(corrupted, 1);
  // The failed attempt's diagnosis names the victim rank and the step.
  EXPECT_NE(report.last_error.find("rank 2"), std::string::npos)
      << report.last_error;
  EXPECT_NE(report.last_error.find("step 5"), std::string::npos)
      << report.last_error;
  EXPECT_GT(report.verify_seconds, 0.0);
  EXPECT_GT(report.detect_to_resume_seconds, 0.0);

  // Bit-for-bit: every particle of the recovered run matches the reference.
  ASSERT_EQ(reference.size(), recovered.size());
  std::size_t mismatches = 0;
  for (const auto& [id, ref] : reference) {
    const auto it = recovered.find(id);
    ASSERT_NE(it, recovered.end()) << "id " << id;
    if (it->second != ref) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);

  // The fsync'd ledger tells the whole story, including the records the
  // failed attempt made durable before dying.
  std::ifstream in(scfg.sim.ledger_path);
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  for (const char* kind :
       {"attempt_start", "checkpoint", "attempt_failed",
        "checkpoint_rejected", "restore", "run_complete"}) {
    EXPECT_NE(text.find(std::string("\"event\":\"") + kind + '"'),
              std::string::npos)
        << kind << "\n" << text;
  }

  fs::remove_all(scfg.checkpoint_dir);
  fs::remove(scfg.sim.ledger_path);
}

}  // namespace
}  // namespace hacc::core
