// Tests for the short-range sector: SoA particles, the force kernel, the RCB
// tree (invariants + force correctness vs direct summation), and the
// numerical force matcher.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <vector>

#include "tree/direct.h"
#include "tree/force_kernel.h"
#include "tree/interaction_batch.h"
#include "tree/force_matcher.h"
#include "tree/particles.h"
#include "tree/rcb_tree.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hacc::tree {
namespace {

ParticleArray random_particles(std::size_t n, float box, std::uint64_t seed,
                               bool clustered = false) {
  ParticleArray p;
  p.reserve(n);
  Philox rng(seed);
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < n; ++i) {
    float x, y, z;
    if (clustered && i % 2 == 0) {
      // Half the particles in a tight Gaussian blob (mimics a halo).
      x = 0.5f * box + 0.05f * box * static_cast<float>(s.gaussian());
      y = 0.5f * box + 0.05f * box * static_cast<float>(s.gaussian());
      z = 0.5f * box + 0.05f * box * static_cast<float>(s.gaussian());
      x = std::clamp(x, 0.0f, box - 1e-3f);
      y = std::clamp(y, 0.0f, box - 1e-3f);
      z = std::clamp(z, 0.0f, box - 1e-3f);
    } else {
      x = static_cast<float>(s.uniform(0, box));
      y = static_cast<float>(s.uniform(0, box));
      z = static_cast<float>(s.uniform(0, box));
    }
    p.push_back(x, y, z, static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()), 1.0f, i);
  }
  return p;
}

// ---- ParticleArray -----------------------------------------------------------

TEST(ParticleArray, SwapMovesEveryField) {
  ParticleArray p;
  p.push_back(1, 2, 3, 4, 5, 6, 7, 100, Role::kActive);
  p.push_back(10, 20, 30, 40, 50, 60, 70, 200, Role::kPassive);
  p.swap_particles(0, 1);
  EXPECT_EQ(p.x[0], 10);
  EXPECT_EQ(p.vz[0], 60);
  EXPECT_EQ(p.mass[0], 70);
  EXPECT_EQ(p.id[0], 200u);
  EXPECT_EQ(p.role[0], Role::kPassive);
  EXPECT_EQ(p.id[1], 100u);
  EXPECT_TRUE(p.consistent());
}

TEST(ParticleArray, RemoveUnorderedKeepsRest) {
  ParticleArray p;
  for (int i = 0; i < 5; ++i)
    p.push_back(static_cast<float>(i), 0, 0, 0, 0, 0, 1,
                static_cast<std::uint64_t>(i));
  p.remove_unordered(1);
  EXPECT_EQ(p.size(), 4u);
  std::set<std::uint64_t> ids(p.id.begin(), p.id.end());
  EXPECT_EQ(ids, (std::set<std::uint64_t>{0, 2, 3, 4}));
  EXPECT_TRUE(p.consistent());
}

TEST(ParticleArray, StorageIsAligned) {
  ParticleArray p = random_particles(100, 10.0f, 1);
  EXPECT_TRUE(is_aligned(p.x.data()));
  EXPECT_TRUE(is_aligned(p.mass.data()));
}

// ---- force kernel --------------------------------------------------------------

TEST(ForceKernel, Poly5HornerMatchesDirect) {
  Poly5 poly{{1.0f, -2.0f, 0.5f, 0.25f, -0.125f, 0.0625f}};
  for (float s : {0.0f, 0.5f, 1.0f, 3.0f, 8.9f}) {
    double expect = 0;
    double pw = 1;
    for (int i = 0; i < 6; ++i) {
      expect += static_cast<double>(poly.c[static_cast<std::size_t>(i)]) * pw;
      pw *= s;
    }
    EXPECT_NEAR(poly(s), expect, 1e-4 * (std::abs(expect) + 1));
  }
}

TEST(ForceKernel, CutoffAndSelfFiltering) {
  ShortRangeKernel k;
  k.softening = 0.0f;
  EXPECT_EQ(k.fsr(0.0f), 0.0f);               // self interaction
  EXPECT_EQ(k.fsr(k.rmax2()), 0.0f);          // at cutoff
  EXPECT_EQ(k.fsr(k.rmax2() + 1.0f), 0.0f);   // beyond
  EXPECT_GT(k.fsr(1.0f), 0.0f);               // inside: attractive
}

TEST(ForceKernel, MatchesNewtonWithZeroPoly) {
  ShortRangeKernel k;
  k.softening = 0.01f;
  for (float s : {0.3f, 1.0f, 4.0f, 8.0f}) {
    EXPECT_FLOAT_EQ(k.fsr(s), newtonian_fscalar(s, 0.01f));
  }
}

TEST(ForceKernel, NeighborListMatchesScalarSum) {
  ShortRangeKernel k;
  k.softening = 0.05f;
  k.fgrid = Poly5{{0.1f, -0.01f, 0.001f, 0, 0, 0}};
  ParticleArray p = random_particles(64, 5.0f, 3);
  const float xi = 2.5f, yi = 2.5f, zi = 2.5f;
  const Force3 f =
      evaluate_neighbor_list(k, xi, yi, zi, p.x.data(), p.y.data(),
                             p.z.data(), p.mass.data(), p.size());
  double ex = 0, ey = 0, ez = 0;
  for (std::size_t j = 0; j < p.size(); ++j) {
    const float dx = p.x[j] - xi, dy = p.y[j] - yi, dz = p.z[j] - zi;
    const float s = dx * dx + dy * dy + dz * dz;
    const float fs = k.fsr(s) * p.mass[j];
    ex += fs * dx;
    ey += fs * dy;
    ez += fs * dz;
  }
  EXPECT_NEAR(f.x, ex, 1e-3 * (std::abs(ex) + 1));
  EXPECT_NEAR(f.y, ey, 1e-3 * (std::abs(ey) + 1));
  EXPECT_NEAR(f.z, ez, 1e-3 * (std::abs(ez) + 1));
}

TEST(ForceKernel, TargetInListIsIgnored) {
  // A particle evaluating its own leaf's list must not feel itself.
  ShortRangeKernel k;
  ParticleArray p;
  p.push_back(1, 1, 1, 0, 0, 0, 5.0f, 0);
  const Force3 f = evaluate_neighbor_list(k, 1, 1, 1, p.x.data(), p.y.data(),
                                          p.z.data(), p.mass.data(), 1);
  EXPECT_EQ(f.x, 0.0f);
  EXPECT_EQ(f.y, 0.0f);
  EXPECT_EQ(f.z, 0.0f);
}

// ---- RCB tree invariants --------------------------------------------------------

class RcbLeafSizes : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(LeafSizes, RcbLeafSizes,
                         ::testing::Values(1, 4, 16, 64, 128));

TEST_P(RcbLeafSizes, LeavesPartitionParticles) {
  ParticleArray p = random_particles(500, 16.0f, 7);
  RcbTree tree(p, RcbConfig{GetParam()});
  // Every particle index covered exactly once by the leaves.
  std::vector<int> covered(p.size(), 0);
  for (auto leaf : tree.leaves()) {
    const RcbNode& n = tree.nodes()[leaf];
    EXPECT_TRUE(n.is_leaf());
    for (std::uint32_t i = n.first; i < n.first + n.count; ++i)
      ++covered[i];
  }
  for (int c : covered) EXPECT_EQ(c, 1);
}

TEST_P(RcbLeafSizes, BoxesContainTheirParticles) {
  ParticleArray p = random_particles(500, 16.0f, 8, /*clustered=*/true);
  RcbTree tree(p, RcbConfig{GetParam()});
  for (const auto& n : tree.nodes()) {
    for (std::uint32_t i = n.first; i < n.first + n.count; ++i) {
      EXPECT_GE(p.x[i], n.lo[0]);
      EXPECT_LE(p.x[i], n.hi[0]);
      EXPECT_GE(p.y[i], n.lo[1]);
      EXPECT_LE(p.y[i], n.hi[1]);
      EXPECT_GE(p.z[i], n.lo[2]);
      EXPECT_LE(p.z[i], n.hi[2]);
    }
  }
}

TEST_P(RcbLeafSizes, PermutationPreservesParticles) {
  ParticleArray p = random_particles(300, 8.0f, 9);
  // Record (id -> position) before the build.
  std::vector<std::array<float, 3>> before(p.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    before[p.id[i]] = {p.x[i], p.y[i], p.z[i]};
  RcbTree tree(p, RcbConfig{GetParam()});
  ASSERT_TRUE(p.consistent());
  std::set<std::uint64_t> ids(p.id.begin(), p.id.end());
  EXPECT_EQ(ids.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.x[i], before[p.id[i]][0]);
    EXPECT_EQ(p.y[i], before[p.id[i]][1]);
    EXPECT_EQ(p.z[i], before[p.id[i]][2]);
  }
}

TEST(RcbTree, ChildrenSpatiallyDisjointAlongSplit) {
  ParticleArray p = random_particles(1000, 32.0f, 10);
  RcbTree tree(p, RcbConfig{32});
  for (const auto& n : tree.nodes()) {
    if (n.is_leaf()) continue;
    const RcbNode& l = tree.nodes()[static_cast<std::size_t>(n.left)];
    const RcbNode& r = tree.nodes()[static_cast<std::size_t>(n.right)];
    EXPECT_EQ(l.count + r.count, n.count);
    EXPECT_EQ(l.first, n.first);
    EXPECT_EQ(r.first, n.first + l.count);
    // Along at least one axis the boxes must not interleave: the split
    // axis has l's max <= r's min.
    bool disjoint = false;
    for (int d = 0; d < 3; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      if (l.hi[sd] <= r.lo[sd] || r.hi[sd] <= l.lo[sd]) disjoint = true;
    }
    EXPECT_TRUE(disjoint);
  }
}

TEST(RcbTree, SpatialLocalityAfterBuild) {
  // The point of the RCB build: particles adjacent in memory are close in
  // space. Check that the mean distance between memory-neighbors is much
  // smaller than between random pairs.
  ParticleArray p = random_particles(2000, 64.0f, 11, /*clustered=*/true);
  auto mean_adjacent_distance = [](const ParticleArray& q) {
    double adj = 0;
    for (std::size_t i = 0; i + 1 < q.size(); ++i) {
      const double dx = q.x[i + 1] - q.x[i];
      const double dy = q.y[i + 1] - q.y[i];
      const double dz = q.z[i + 1] - q.z[i];
      adj += std::sqrt(dx * dx + dy * dy + dz * dz);
    }
    return adj / static_cast<double>(q.size() - 1);
  };
  const double before = mean_adjacent_distance(p);
  RcbTree tree(p, RcbConfig{64});
  const double after = mean_adjacent_distance(p);
  EXPECT_LT(after, 0.5 * before);
}

TEST(RcbTree, CoincidentParticlesTerminate) {
  ParticleArray p;
  for (int i = 0; i < 100; ++i)
    p.push_back(1.0f, 2.0f, 3.0f, 0, 0, 0, 1.0f,
                static_cast<std::uint64_t>(i));
  RcbTree tree(p, RcbConfig{8});  // must not loop forever
  EXPECT_GE(tree.leaves().size(), 1u);
}

TEST(RcbTree, EmptyParticlesGiveEmptyTree) {
  ParticleArray p;
  RcbTree tree(p);
  EXPECT_TRUE(tree.nodes().empty());
  EXPECT_TRUE(tree.leaves().empty());
}

TEST(RcbTree, GatherNeighborsFindsExactlyTheBallPlusLeaf) {
  ParticleArray p = random_particles(800, 20.0f, 13);
  RcbTree tree(p, RcbConfig{16});
  const float rcut = 3.0f;
  NeighborList list;
  for (auto leaf_id : tree.leaves()) {
    const RcbNode& leaf = tree.nodes()[leaf_id];
    tree.gather_neighbors(leaf_id, rcut, list);
    // Everything within rcut of the leaf box must be present...
    std::size_t required = 0;
    for (std::size_t j = 0; j < p.size(); ++j) {
      float d2 = 0;
      const std::array<float, 3> q{p.x[j], p.y[j], p.z[j]};
      for (int d = 0; d < 3; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        const float gap =
            std::max({0.0f, leaf.lo[sd] - q[sd], q[sd] - leaf.hi[sd]});
        d2 += gap * gap;
      }
      if (d2 <= rcut * rcut) ++required;
    }
    EXPECT_GE(list.size(), required);
    EXPECT_LE(list.size(), p.size());
  }
}

// ---- tree force vs direct summation ----------------------------------------------

class TreeForceCase
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};
INSTANTIATE_TEST_SUITE_P(
    LeafAndClustering, TreeForceCase,
    ::testing::Combine(::testing::Values<std::size_t>(1, 8, 32, 128),
                       ::testing::Bool()));

TEST_P(TreeForceCase, MatchesDirectShortRange) {
  const auto [leaf_size, clustered] = GetParam();
  ParticleArray p = random_particles(400, 12.0f, 17, clustered);
  ShortRangeKernel kernel;
  kernel.softening = 0.05f;
  kernel.fgrid = default_fgrid_poly5();
  RcbTree tree(p, RcbConfig{leaf_size});
  std::vector<float> ax(p.size()), ay(p.size()), az(p.size());
  const auto stats = compute_short_range(tree, kernel, ax, ay, az);
  EXPECT_EQ(stats.particles, p.size());
  EXPECT_GT(stats.interactions, 0u);
  std::vector<float> dx(p.size()), dy(p.size()), dz(p.size());
  direct_short_range(p, kernel, dx, dy, dz);
  // The tree gathers every particle within rcut, so agreement is to float
  // round-off (summation order differs).
  double max_err = 0, max_force = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    max_err = std::max({max_err, std::abs(static_cast<double>(ax[i] - dx[i])),
                        std::abs(static_cast<double>(ay[i] - dy[i])),
                        std::abs(static_cast<double>(az[i] - dz[i]))});
    max_force = std::max({max_force, std::abs(static_cast<double>(dx[i])),
                          std::abs(static_cast<double>(dy[i])),
                          std::abs(static_cast<double>(dz[i]))});
  }
  EXPECT_LT(max_err, 2e-4 * (max_force + 1.0));
}

TEST(TreeForce, NewtonThirdLawMomentumConservation) {
  ParticleArray p = random_particles(500, 10.0f, 23, /*clustered=*/true);
  ShortRangeKernel kernel;
  kernel.softening = 0.1f;
  kernel.fgrid = default_fgrid_poly5();
  RcbTree tree(p, RcbConfig{32});
  std::vector<float> ax(p.size()), ay(p.size()), az(p.size());
  compute_short_range(tree, kernel, ax, ay, az);
  // Equal masses: sum of accelerations ~ 0 (pairwise antisymmetric kernel).
  double sx = 0, sy = 0, sz = 0, scale = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    sx += ax[i];
    sy += ay[i];
    sz += az[i];
    scale += std::abs(ax[i]) + std::abs(ay[i]) + std::abs(az[i]);
  }
  EXPECT_LT(std::abs(sx), 1e-5 * scale + 1e-6);
  EXPECT_LT(std::abs(sy), 1e-5 * scale + 1e-6);
  EXPECT_LT(std::abs(sz), 1e-5 * scale + 1e-6);
}

TEST(TreeForce, MassScaleScalesLinearly) {
  ParticleArray p = random_particles(100, 6.0f, 29);
  ShortRangeKernel kernel;
  RcbTree tree(p, RcbConfig{16});
  std::vector<float> a1(p.size()), a2(p.size()), tmp(p.size()), t2(p.size()),
      t3(p.size());
  compute_short_range(tree, kernel, a1, tmp, t2, 1.0f);
  compute_short_range(tree, kernel, a2, t3, tmp, 2.5f);
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_NEAR(a2[i], 2.5f * a1[i], 1e-4f * (std::abs(a1[i]) + 1e-3f));
}

TEST(TreeForce, FatterLeavesMoreInteractionsFewerWalkVisits) {
  // The walk-minimization tradeoff (paper Sec. III): growing the leaf size
  // shifts work from the walk into the kernel.
  ParticleArray p1 = random_particles(2000, 16.0f, 31);
  ParticleArray p2 = p1;
  ShortRangeKernel kernel;
  RcbTree small_leaves(p1, RcbConfig{8});
  RcbTree fat_leaves(p2, RcbConfig{128});
  std::vector<float> ax(p1.size()), ay(p1.size()), az(p1.size());
  const auto s_small = compute_short_range(small_leaves, kernel, ax, ay, az);
  const auto s_fat = compute_short_range(fat_leaves, kernel, ax, ay, az);
  EXPECT_GT(s_fat.interactions, s_small.interactions);
  EXPECT_LT(s_fat.walk_visits, s_small.walk_visits);
}

// ---- force matcher -----------------------------------------------------------------

TEST(ForceMatcher, GridForceApproachesNewtonAtHandOver) {
  // Near r = rmax the filtered grid force must approach the continuum
  // 1/r^2, i.e. fscalar(s) ~ s^{-3/2}: that is what makes the hand-over at
  // 3 grid spacings possible.
  ForceMatchConfig cfg;
  cfg.sources = 2;
  cfg.samples = 24;
  cfg.radii = 12;
  auto samples = measure_grid_force(cfg);
  ASSERT_FALSE(samples.empty());
  RunningStats ratio;
  for (const auto& smp : samples) {
    if (smp.s > 7.0) ratio.add(smp.fscalar * std::pow(smp.s, 1.5));
  }
  ASSERT_GT(ratio.count(), 10u);
  EXPECT_NEAR(ratio.mean(), 1.0, 0.08);
}

TEST(ForceMatcher, GridForceVanishesAtOrigin) {
  // Small-r samples: the filtered grid force is finite (no 1/r^2
  // divergence), so fscalar stays bounded.
  ForceMatchConfig cfg;
  cfg.sources = 2;
  cfg.samples = 16;
  cfg.radii = 16;
  auto samples = measure_grid_force(cfg);
  for (const auto& smp : samples) {
    EXPECT_LT(std::abs(smp.fscalar), 1.0) << "s=" << smp.s;
  }
}

TEST(ForceMatcher, FitResidualsAreSmall) {
  ForceMatchConfig cfg;
  cfg.sources = 4;
  cfg.samples = 32;
  cfg.radii = 24;
  auto samples = measure_grid_force(cfg);
  const Poly5 poly = fit_poly5(samples);
  RunningStats resid;
  for (const auto& smp : samples)
    resid.add(poly(static_cast<float>(smp.s)) - smp.fscalar);
  EXPECT_LT(std::abs(resid.mean()), 2e-3);
  EXPECT_LT(resid.stddev(), 2e-2);
}

TEST(ForceMatcher, DefaultPolyMatchesFreshFit) {
  // Guards the shipped coefficients against drift: refit with the default
  // configuration and compare on the fit interval.
  const Poly5 fresh = match_grid_force(ForceMatchConfig{});
  const Poly5 shipped = default_fgrid_poly5();
  for (float s = 0.25f; s < 9.0f; s += 0.25f) {
    EXPECT_NEAR(fresh(s), shipped(s), 5e-3) << "s=" << s;
  }
}

TEST(ForceMatcher, ShortRangeVanishesBeyondHandOverByConstruction) {
  // f_SR(s) = newton - poly must be small near the hand-over scale.
  ShortRangeKernel kernel;
  kernel.softening = 0.0f;
  kernel.fgrid = default_fgrid_poly5();
  const float near_cut = 8.7f;
  EXPECT_LT(std::abs(newtonian_fscalar(near_cut, 0.0f) -
                     kernel.fgrid(near_cut)),
            0.15f * newtonian_fscalar(near_cut, 0.0f));
}

// ---- Tile-batched kernel (interaction_batch.h) -------------------------------

// Run one leaf through evaluate_leaf with the given variant. The batched
// path pads the list in place, so each call gets a private copy.
std::array<std::vector<float>, 3> leaf_forces(KernelVariant variant,
                                              const ShortRangeKernel& kernel,
                                              const ParticleArray& p,
                                              const NeighborList& list_in,
                                              float mass_scale) {
  NeighborList list;
  list.x = list_in.x;
  list.y = list_in.y;
  list.z = list_in.z;
  list.m = list_in.m;
  std::array<std::vector<float>, 3> f;
  for (auto& v : f) v.assign(p.size(), 0.0f);
  evaluate_leaf(variant, kernel, p, 0, static_cast<std::uint32_t>(p.size()),
                list, mass_scale, f[0], f[1], f[2]);
  return f;
}

TEST(InteractionBatch, BatchedMatchesScalarOnRandomLeaves) {
  // Property test over random leaves: every combination of ragged target
  // blocks (nt % 4 != 0) and ragged neighbor tiles (nn % 8 != 0), with a
  // non-unit mass scale. Positions in [0, 6)^3 put pair separations on both
  // sides of the rmax = 3 cutoff.
  ShortRangeKernel kernel;
  kernel.fgrid = default_fgrid_poly5();
  Philox rng(91);
  Philox::Stream s(rng);
  for (const std::size_t nt : {1u, 3u, 4u, 5u, 17u, 64u}) {
    for (const std::size_t nn : {1u, 7u, 8u, 9u, 33u, 256u}) {
      ParticleArray p;
      NeighborList list;
      for (std::size_t i = 0; i < nt; ++i)
        p.push_back(static_cast<float>(s.uniform(0, 6)),
                    static_cast<float>(s.uniform(0, 6)),
                    static_cast<float>(s.uniform(0, 6)), 0, 0, 0, 1.0f, i);
      for (std::size_t j = 0; j < nn; ++j) {
        list.x.push_back(static_cast<float>(s.uniform(0, 6)));
        list.y.push_back(static_cast<float>(s.uniform(0, 6)));
        list.z.push_back(static_cast<float>(s.uniform(0, 6)));
        list.m.push_back(0.5f + static_cast<float>(s.uniform(0, 1)));
      }
      const auto fs = leaf_forces(KernelVariant::kScalar, kernel, p, list,
                                  0.37f);
      const auto fb = leaf_forces(KernelVariant::kBatched, kernel, p, list,
                                  0.37f);
      for (std::size_t i = 0; i < nt; ++i) {
        const double mag = std::sqrt(
            static_cast<double>(fs[0][i]) * fs[0][i] +
            static_cast<double>(fs[1][i]) * fs[1][i] +
            static_cast<double>(fs[2][i]) * fs[2][i]);
        for (int d = 0; d < 3; ++d) {
          const double diff = std::abs(static_cast<double>(fb[d][i]) -
                                       static_cast<double>(fs[d][i]));
          EXPECT_LE(diff, 1e-5 * std::max(mag, 1e-20))
              << "nt=" << nt << " nn=" << nn << " i=" << i << " d=" << d;
        }
      }
    }
  }
}

TEST(InteractionBatch, SelfInteractionAndCutoffEdges) {
  // The two branchless-cutoff edges: s = 0 (a neighbor exactly on the
  // target — the gathered leaf always contains the target itself) must be
  // suppressed, and neighbors at s >= rmax^2 contribute nothing, in both
  // variants identically.
  ShortRangeKernel kernel;
  kernel.fgrid = default_fgrid_poly5();
  ParticleArray p;
  p.push_back(3.0f, 3.0f, 3.0f, 0, 0, 0, 1.0f, 0);
  NeighborList list;
  auto add = [&](float x, float y, float z) {
    list.x.push_back(x);
    list.y.push_back(y);
    list.z.push_back(z);
    list.m.push_back(1.0f);
  };
  add(3.0f, 3.0f, 3.0f);             // s = 0: the target itself
  add(3.0f, 3.0f, 3.0f);             // a true coincident pair, also s = 0
  add(6.0f, 3.0f, 3.0f);             // s = 9 = rmax^2 exactly: outside
  add(3.0f + 2.9999f, 3.0f, 3.0f);   // just inside the cutoff
  add(3.0f + 3.0001f, 3.0f, 3.0f);   // just outside
  const auto fs = leaf_forces(KernelVariant::kScalar, kernel, p, list, 1.0f);
  const auto fb = leaf_forces(KernelVariant::kBatched, kernel, p, list, 1.0f);
  // Only the "just inside" neighbor may contribute. It acts along x alone
  // (the sign is the poly-fit residual's near the hand-over, not Newton's).
  EXPECT_NE(fs[0][0], 0.0f);
  EXPECT_EQ(fs[1][0], 0.0f);
  EXPECT_EQ(fs[2][0], 0.0f);
  for (int d = 0; d < 3; ++d)
    EXPECT_NEAR(fb[d][0], fs[d][0], 1e-5 * std::abs(fs[0][0])) << "d=" << d;
  // With ONLY edge neighbors (s = 0 and s >= rmax^2) both variants give an
  // exact zero — the mask must kill the padded/marginal lanes bit-for-bit.
  NeighborList edges;
  edges.x = {3.0f, 6.0f};
  edges.y = {3.0f, 3.0f};
  edges.z = {3.0f, 3.0f};
  edges.m = {1.0f, 1.0f};
  const auto zs = leaf_forces(KernelVariant::kScalar, kernel, p, edges, 1.0f);
  const auto zb = leaf_forces(KernelVariant::kBatched, kernel, p, edges, 1.0f);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(zs[d][0], 0.0f);
    EXPECT_EQ(zb[d][0], 0.0f);
  }
}

TEST(InteractionBatch, ScalarVariantBitIdenticalToDirectLoop) {
  // KernelVariant::kScalar must stay bit-for-bit the historical kernel:
  // evaluate_leaf dispatching to the scalar loop gives exactly
  // evaluate_neighbor_list per target, including the mass_scale fold
  // ((m * scale) * f associates identically to the old list-rewrite pass).
  ShortRangeKernel kernel;
  kernel.fgrid = default_fgrid_poly5();
  Philox rng(17);
  Philox::Stream s(rng);
  ParticleArray p;
  NeighborList list;
  for (std::size_t i = 0; i < 13; ++i)
    p.push_back(static_cast<float>(s.uniform(0, 6)),
                static_cast<float>(s.uniform(0, 6)),
                static_cast<float>(s.uniform(0, 6)), 0, 0, 0, 1.0f, i);
  for (std::size_t j = 0; j < 67; ++j) {
    list.x.push_back(static_cast<float>(s.uniform(0, 6)));
    list.y.push_back(static_cast<float>(s.uniform(0, 6)));
    list.z.push_back(static_cast<float>(s.uniform(0, 6)));
    list.m.push_back(0.5f + static_cast<float>(s.uniform(0, 1)));
  }
  const float scale = 1.618f;
  const auto f = leaf_forces(KernelVariant::kScalar, kernel, p, list, scale);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Force3 ref = evaluate_neighbor_list(
        kernel, p.x[i], p.y[i], p.z[i], list.x.data(), list.y.data(),
        list.z.data(), list.m.data(), list.x.size(), scale);
    EXPECT_EQ(f[0][i], ref.x) << i;
    EXPECT_EQ(f[1][i], ref.y) << i;
    EXPECT_EQ(f[2][i], ref.z) << i;
  }
}

TEST(InteractionBatch, BatchedLeavesTrueInteractionsVisible) {
  // The batched path may pad the list in place; callers capture the true
  // size before the call (InteractionStats exactness depends on it). The
  // pad is zero-mass, multiple-of-kTileNeighbors, and appended — never
  // reordering the real entries.
  ShortRangeKernel kernel;
  kernel.fgrid = default_fgrid_poly5();
  ParticleArray p;
  p.push_back(1.0f, 1.0f, 1.0f, 0, 0, 0, 1.0f, 0);
  NeighborList list;
  for (int j = 0; j < 5; ++j) {
    list.x.push_back(1.5f + 0.1f * static_cast<float>(j));
    list.y.push_back(1.0f);
    list.z.push_back(1.0f);
    list.m.push_back(1.0f);
  }
  std::vector<float> ax(1, 0.0f), ay(1, 0.0f), az(1, 0.0f);
  const std::size_t true_n = list.size();
  evaluate_leaf(KernelVariant::kBatched, kernel, p, 0, 1, list, 1.0f, ax, ay,
                az);
  EXPECT_EQ(true_n, 5u);
  if (batched_kernel_available()) {
    EXPECT_EQ(list.size() % kTileNeighbors, 0u);
    for (std::size_t j = true_n; j < list.size(); ++j)
      EXPECT_EQ(list.m[j], 0.0f) << "padding must be massless";
    for (std::size_t j = 0; j < true_n; ++j)
      EXPECT_EQ(list.x[j], 1.5f + 0.1f * static_cast<float>(j));
  }
}

TEST(KernelVariantDispatch, ParseAndEnvOverride) {
  EXPECT_EQ(parse_kernel_variant("scalar", KernelVariant::kBatched),
            KernelVariant::kScalar);
  EXPECT_EQ(parse_kernel_variant("batched", KernelVariant::kScalar),
            KernelVariant::kBatched);
  EXPECT_EQ(parse_kernel_variant("nonsense", KernelVariant::kScalar),
            KernelVariant::kScalar);
  EXPECT_EQ(parse_kernel_variant(nullptr, KernelVariant::kBatched),
            KernelVariant::kBatched);
  EXPECT_STREQ(kernel_variant_name(KernelVariant::kScalar), "scalar");
  EXPECT_STREQ(kernel_variant_name(KernelVariant::kBatched), "batched");
  // HACC_KERNEL is read afresh on every call.
  ::setenv("HACC_KERNEL", "scalar", 1);
  EXPECT_EQ(kernel_variant_from_env(KernelVariant::kBatched),
            KernelVariant::kScalar);
  ::setenv("HACC_KERNEL", "batched", 1);
  EXPECT_EQ(kernel_variant_from_env(KernelVariant::kScalar),
            KernelVariant::kBatched);
  ::unsetenv("HACC_KERNEL");
  EXPECT_EQ(kernel_variant_from_env(KernelVariant::kScalar),
            KernelVariant::kScalar);
}

}  // namespace
}  // namespace hacc::tree
