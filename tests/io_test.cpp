// Tests for snapshot I/O (round trip, corruption detection) and density
// imaging (projection weights, scaling, file formats).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/image.h"
#include "io/snapshot.h"
#include "util/rng.h"

namespace hacc::io {
namespace {

namespace fs = std::filesystem;

tree::ParticleArray sample_particles(std::size_t n) {
  tree::ParticleArray p;
  Philox rng(11);
  Philox::Stream s(rng);
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(static_cast<float>(s.uniform(0, 16)),
                static_cast<float>(s.uniform(0, 16)),
                static_cast<float>(s.uniform(0, 16)),
                static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()),
                static_cast<float>(s.gaussian()), 1.5f, i,
                i % 3 == 0 ? tree::Role::kPassive : tree::Role::kActive);
  }
  return p;
}

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(Snapshot, RoundTripsAllFields) {
  const std::string path = temp_path("hacc_snap_rt.bin");
  auto p = sample_particles(500);
  SnapshotHeader h;
  h.scale_factor = 0.25;
  h.box_mpch = 64.0;
  h.grid = 32;
  write_snapshot(path, p, h);

  tree::ParticleArray q;
  const SnapshotHeader r = read_snapshot(path, q);
  EXPECT_EQ(r.count, 500u);
  EXPECT_DOUBLE_EQ(r.scale_factor, 0.25);
  EXPECT_DOUBLE_EQ(r.box_mpch, 64.0);
  EXPECT_EQ(r.grid, 32u);
  ASSERT_EQ(q.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(q.x[i], p.x[i]);
    EXPECT_EQ(q.vz[i], p.vz[i]);
    EXPECT_EQ(q.mass[i], p.mass[i]);
    EXPECT_EQ(q.id[i], p.id[i]);
    EXPECT_EQ(q.role[i], p.role[i]);
  }
  fs::remove(path);
}

TEST(Snapshot, EmptySnapshotOk) {
  const std::string path = temp_path("hacc_snap_empty.bin");
  tree::ParticleArray p;
  write_snapshot(path, p, SnapshotHeader{});
  tree::ParticleArray q;
  q.push_back(1, 2, 3, 4, 5, 6, 7, 8);  // must be cleared by the read
  EXPECT_EQ(read_snapshot(path, q).count, 0u);
  EXPECT_TRUE(q.empty());
  fs::remove(path);
}

TEST(Snapshot, DetectsCorruption) {
  const std::string path = temp_path("hacc_snap_corrupt.bin");
  auto p = sample_particles(100);
  write_snapshot(path, p, SnapshotHeader{});
  // Flip a byte in the middle of the payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    char c;
    f.seekg(200);
    f.get(c);
    f.seekp(200);
    f.put(static_cast<char>(c ^ 0x5a));
  }
  tree::ParticleArray q;
  EXPECT_THROW(read_snapshot(path, q), Error);
  fs::remove(path);
}

TEST(Snapshot, RejectsBadMagic) {
  const std::string path = temp_path("hacc_snap_magic.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a snapshot at all, not even close to one......";
  }
  tree::ParticleArray q;
  EXPECT_THROW(read_snapshot(path, q), Error);
  fs::remove(path);
}

TEST(Snapshot, HeaderIsFixedWidthLittleEndianAndWriteIsAtomic) {
  const std::string path = temp_path("hacc_snap_wire.bin");
  auto p = sample_particles(3);
  SnapshotHeader h;
  h.scale_factor = 1.0;
  write_snapshot(path, p, h);
  // Atomic publish: the staging file must be gone.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // The header is defined little-endian field by field (44 bytes), not a
  // struct dump: magic, then version 2 immediately after (no padding).
  std::ifstream f(path, std::ios::binary);
  unsigned char head[12];
  f.read(reinterpret_cast<char*>(head), sizeof(head));
  std::uint64_t magic = 0;
  for (int i = 0; i < 8; ++i)
    magic |= static_cast<std::uint64_t>(head[i]) << (8 * i);
  EXPECT_EQ(magic, SnapshotHeader{}.magic);
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i)
    version |= static_cast<std::uint32_t>(head[8 + i]) << (8 * i);
  EXPECT_EQ(version, 2u);
  const std::size_t payload = 3 * (7 * 4 + 8 + 1);
  EXPECT_EQ(fs::file_size(path), 44 + payload + 8);
  fs::remove(path);
}

TEST(Fnv, KnownVector) {
  // FNV-1a of "a" from the reference implementation.
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a("ab", 2), fnv1a("ba", 2));
}

// ---- imaging ----------------------------------------------------------------

TEST(Image, ProjectionConservesSlabMass) {
  std::vector<float> x{2.5f, 8.0f, 12.25f}, y{3.5f, 9.0f, 1.75f},
      z{1.0f, 5.0f, 14.0f};
  SliceSpec spec;
  spec.box = 16.0;
  spec.axis = 2;
  spec.slab_lo = 0.0;
  spec.slab_hi = 8.0;  // includes z = 1 and 5, excludes 14
  spec.pixels = 64;
  const Image2D img = project_slice(x, y, z, spec);
  double total = 0;
  for (double v : img.pixels) total += v;
  EXPECT_NEAR(total, 2.0, 1e-9);
}

TEST(Image, WindowZoomSelectsParticles) {
  std::vector<float> x{2.0f, 12.0f}, y{2.0f, 12.0f}, z{1.0f, 1.0f};
  SliceSpec spec;
  spec.box = 16.0;
  spec.slab_lo = 0.0;
  spec.slab_hi = 2.0;
  spec.win_lo0 = 0.0;
  spec.win_hi0 = 8.0;
  spec.win_lo1 = 0.0;
  spec.win_hi1 = 8.0;
  spec.pixels = 32;
  const Image2D img = project_slice(x, y, z, spec);
  double total = 0;
  for (double v : img.pixels) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);  // only the (2,2) particle is in view
}

TEST(Image, LogScaleNormalizesToUnit) {
  Image2D img;
  img.width = img.height = 4;
  img.pixels.assign(16, 0.0);
  img.at(1, 1) = 100.0;
  img.at(2, 2) = 10.0;
  const Image2D out = log_scale(img);
  double vmax = 0;
  for (double v : out.pixels) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    vmax = std::max(vmax, v);
  }
  EXPECT_DOUBLE_EQ(vmax, 1.0);
  EXPECT_GT(out.at(1, 1), out.at(2, 2));
}

TEST(Image, LogScaleOfEmptyImageIsZero) {
  Image2D img;
  img.width = img.height = 2;
  img.pixels.assign(4, 0.0);
  const Image2D out = log_scale(img);
  for (double v : out.pixels) EXPECT_EQ(v, 0.0);
}

TEST(Image, WritesValidPgmAndPpm) {
  Image2D img;
  img.width = 3;
  img.height = 2;
  img.pixels = {0.0, 0.5, 1.0, 0.25, 0.75, 0.1};
  const std::string pgm = temp_path("hacc_img.pgm");
  const std::string ppm = temp_path("hacc_img.ppm");
  write_pgm(pgm, img);
  write_ppm(ppm, img);
  // Header + exact payload sizes.
  EXPECT_EQ(fs::file_size(pgm), std::string("P5\n3 2\n255\n").size() + 6);
  EXPECT_EQ(fs::file_size(ppm), std::string("P6\n3 2\n255\n").size() + 18);
  fs::remove(pgm);
  fs::remove(ppm);
}

}  // namespace
}  // namespace hacc::io
