// Density-slice imaging (stand-in for the paper's Figs. 2 and 9).
//
// Projects particles inside a slab onto a 2-D pixel grid (CIC in 2-D),
// applies log scaling, and writes a grayscale PGM or false-color PPM. The
// zoom sequence of Fig. 2 is reproduced by calling project_slice with
// successively smaller windows.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hacc::io {

/// A 2-D scalar field with row-major pixels.
struct Image2D {
  std::size_t width = 0, height = 0;
  std::vector<double> pixels;  // width*height

  double& at(std::size_t x, std::size_t y) { return pixels[y * width + x]; }
  double at(std::size_t x, std::size_t y) const {
    return pixels[y * width + x];
  }
};

struct SliceSpec {
  int axis = 2;           ///< projection axis (slab thickness along it)
  double slab_lo = 0;     ///< slab range along `axis` (grid units)
  double slab_hi = 1;
  double win_lo0 = 0;     ///< window in the first transverse axis
  double win_hi0 = 0;     ///< (0,0 means the full box)
  double win_lo1 = 0;
  double win_hi1 = 0;
  std::size_t pixels = 256;
  double box = 0;         ///< periodic box (grid units); required
};

/// 2-D CIC deposit of the particles in the slab onto the window.
Image2D project_slice(std::span<const float> x, std::span<const float> y,
                      std::span<const float> z, const SliceSpec& spec);

/// log10(1 + v/mean) scaling into [0, 1], robust to empty images.
Image2D log_scale(const Image2D& in);

/// 8-bit grayscale PGM.
void write_pgm(const std::string& path, const Image2D& normalized);

/// False-color (blue-magenta-yellow) PPM from a [0,1] field.
void write_ppm(const std::string& path, const Image2D& normalized);

}  // namespace hacc::io
