// Fixed-width little-endian (de)serialization helpers.
//
// File headers are written field by field through these, never as raw
// struct dumps, so the on-disk layout is independent of compiler padding
// and host byte order. Bulk data arrays (float/u64/u8 SoA blocks) are
// still written raw and are *defined* to be little-endian; the writers
// static_assert a little-endian IEEE host before using that fast path.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "util/error.h"

namespace hacc::io::wire {

inline void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

inline void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

inline void put_f64(std::vector<std::byte>& out, double v) {
  static_assert(sizeof(double) == 8 && std::numeric_limits<double>::is_iec559);
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Zero-padded fixed-width byte field (e.g. variable names).
inline void put_bytes_padded(std::vector<std::byte>& out, const void* data,
                             std::size_t len, std::size_t width) {
  HACC_CHECK_MSG(len <= width, "wire field exceeds its fixed width");
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + len);
  out.insert(out.end(), width - len, std::byte{0});
}

/// Sequential reader over a serialized blob; throws hacc::Error on overrun.
class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> data) : data_(data) {}

  std::size_t offset() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  void bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }

  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

 private:
  void need(std::size_t n) const {
    HACC_CHECK_MSG(pos_ + n <= data_.size(), "wire blob truncated");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace hacc::io::wire
