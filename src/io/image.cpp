#include "io/image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "util/error.h"

namespace hacc::io {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Image2D project_slice(std::span<const float> x, std::span<const float> y,
                      std::span<const float> z, const SliceSpec& spec) {
  HACC_CHECK(x.size() == y.size() && y.size() == z.size());
  HACC_CHECK_MSG(spec.box > 0, "SliceSpec.box must be set");
  HACC_CHECK(spec.axis >= 0 && spec.axis < 3);
  HACC_CHECK(spec.pixels >= 2);
  double w0lo = spec.win_lo0, w0hi = spec.win_hi0;
  double w1lo = spec.win_lo1, w1hi = spec.win_hi1;
  if (w0hi <= w0lo) {
    w0lo = 0;
    w0hi = spec.box;
  }
  if (w1hi <= w1lo) {
    w1lo = 0;
    w1hi = spec.box;
  }
  Image2D img;
  img.width = spec.pixels;
  img.height = spec.pixels;
  img.pixels.assign(img.width * img.height, 0.0);
  const double sx = static_cast<double>(img.width) / (w0hi - w0lo);
  const double sy = static_cast<double>(img.height) / (w1hi - w1lo);

  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pos[3] = {x[i], y[i], z[i]};
    const double depth = pos[spec.axis];
    if (depth < spec.slab_lo || depth >= spec.slab_hi) continue;
    const int t0 = spec.axis == 0 ? 1 : 0;
    const int t1 = spec.axis == 2 ? 1 : 2;
    const double u = (pos[t0] - w0lo) * sx;
    const double v = (pos[t1] - w1lo) * sy;
    if (u < 0 || v < 0 || u >= static_cast<double>(img.width) ||
        v >= static_cast<double>(img.height))
      continue;
    // 2-D CIC.
    const auto iu = static_cast<std::size_t>(u);
    const auto iv = static_cast<std::size_t>(v);
    const double fu = u - static_cast<double>(iu);
    const double fv = v - static_cast<double>(iv);
    const std::size_t iu1 = (iu + 1) % img.width;
    const std::size_t iv1 = (iv + 1) % img.height;
    img.at(iu, iv) += (1 - fu) * (1 - fv);
    img.at(iu1, iv) += fu * (1 - fv);
    img.at(iu, iv1) += (1 - fu) * fv;
    img.at(iu1, iv1) += fu * fv;
  }
  return img;
}

Image2D log_scale(const Image2D& in) {
  Image2D out = in;
  double mean = 0;
  for (double v : in.pixels) mean += v;
  mean /= static_cast<double>(in.pixels.size());
  if (mean <= 0) {
    std::fill(out.pixels.begin(), out.pixels.end(), 0.0);
    return out;
  }
  double vmax = 0;
  for (auto& v : out.pixels) {
    v = std::log10(1.0 + v / mean);
    vmax = std::max(vmax, v);
  }
  if (vmax > 0) {
    for (auto& v : out.pixels) v /= vmax;
  }
  return out;
}

void write_pgm(const std::string& path, const Image2D& img) {
  File f(std::fopen(path.c_str(), "wb"));
  HACC_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::fprintf(f.get(), "P5\n%zu %zu\n255\n", img.width, img.height);
  for (double v : img.pixels) {
    const auto byte = static_cast<unsigned char>(
        std::clamp(v, 0.0, 1.0) * 255.0);
    std::fputc(byte, f.get());
  }
}

void write_ppm(const std::string& path, const Image2D& img) {
  File f(std::fopen(path.c_str(), "wb"));
  HACC_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::fprintf(f.get(), "P6\n%zu %zu\n255\n", img.width, img.height);
  for (double v : img.pixels) {
    const double t = std::clamp(v, 0.0, 1.0);
    // Blue -> magenta -> yellow ramp (echoes the paper's renderings).
    const double r = std::clamp(2.0 * t, 0.0, 1.0);
    const double g = std::clamp(2.0 * t - 1.0, 0.0, 1.0);
    const double b = std::clamp(1.0 - 1.5 * (t - 0.4), 0.2, 1.0) * (t > 0.02 ? 1.0 : 5.0 * t);
    std::fputc(static_cast<unsigned char>(r * 255), f.get());
    std::fputc(static_cast<unsigned char>(g * 255), f.get());
    std::fputc(static_cast<unsigned char>(b * 255), f.get());
  }
}

}  // namespace hacc::io
