// Binary particle snapshots.
//
// The paper's science runs store particle subsets and density slices at
// intermediate snapshots (Sec. V). This is a simple, self-describing
// single-file format: fixed header, SoA blocks (so readers can pull one
// component without touching the rest), and an FNV-1a checksum trailer for
// corruption detection.
//
// Version 2: the header is serialized field by field with fixed-width
// little-endian writes (io/wire.h) instead of a raw struct dump, so files
// are portable across compilers/ABIs, and the writer publishes atomically
// (write `<path>.tmp`, rename on success). Parallel checkpoints use the
// gio/ subsystem; this single-file path remains for rank-local tooling and
// analysis dumps.
#pragma once

#include <cstdint>
#include <string>

#include "tree/particles.h"

namespace hacc::io {

struct SnapshotHeader {
  std::uint64_t magic = 0x48414343534e4150ULL;  // "HACCSNAP"
  std::uint32_t version = 2;
  std::uint64_t count = 0;
  double scale_factor = 0;
  double box_mpch = 0;
  std::uint64_t grid = 0;
};

/// Write active+passive particles as-is. The file appears atomically
/// (tmp + rename). Throws hacc::Error on I/O failure.
void write_snapshot(const std::string& path,
                    const tree::ParticleArray& particles,
                    const SnapshotHeader& header);

/// Read a snapshot; validates magic, version and checksum.
SnapshotHeader read_snapshot(const std::string& path,
                             tree::ParticleArray& particles);

/// FNV-1a over a byte range (exposed for tests).
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace hacc::io
