#include "io/snapshot.h"

#include <cstdio>
#include <memory>

#include "util/error.h"

namespace hacc::io {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t bytes,
                 std::uint64_t& sum) {
  HACC_CHECK_MSG(std::fwrite(data, 1, bytes, f) == bytes, "short write");
  sum = fnv1a(data, bytes, sum);
}

void read_bytes(std::FILE* f, void* data, std::size_t bytes,
                std::uint64_t& sum) {
  HACC_CHECK_MSG(std::fread(data, 1, bytes, f) == bytes, "short read");
  sum = fnv1a(data, bytes, sum);
}
}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void write_snapshot(const std::string& path,
                    const tree::ParticleArray& particles,
                    const SnapshotHeader& header) {
  HACC_CHECK(particles.consistent());
  SnapshotHeader h = header;
  h.count = particles.size();
  File f(std::fopen(path.c_str(), "wb"));
  HACC_CHECK_MSG(f != nullptr, "cannot open " + path + " for writing");
  std::uint64_t sum = 0xcbf29ce484222325ULL;
  write_bytes(f.get(), &h, sizeof(h), sum);
  const std::size_t n = particles.size();
  auto block = [&](const auto& v) {
    write_bytes(f.get(), v.data(), n * sizeof(v[0]), sum);
  };
  if (n > 0) {
    block(particles.x);
    block(particles.y);
    block(particles.z);
    block(particles.vx);
    block(particles.vy);
    block(particles.vz);
    block(particles.mass);
    block(particles.id);
    block(particles.role);
  }
  HACC_CHECK(std::fwrite(&sum, 1, sizeof(sum), f.get()) == sizeof(sum));
}

SnapshotHeader read_snapshot(const std::string& path,
                             tree::ParticleArray& particles) {
  File f(std::fopen(path.c_str(), "rb"));
  HACC_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::uint64_t sum = 0xcbf29ce484222325ULL;
  SnapshotHeader h;
  read_bytes(f.get(), &h, sizeof(h), sum);
  HACC_CHECK_MSG(h.magic == SnapshotHeader{}.magic, "bad snapshot magic");
  HACC_CHECK_MSG(h.version == 1, "unsupported snapshot version");
  particles.clear();
  const auto n = static_cast<std::size_t>(h.count);
  particles.x.resize(n);
  particles.y.resize(n);
  particles.z.resize(n);
  particles.vx.resize(n);
  particles.vy.resize(n);
  particles.vz.resize(n);
  particles.mass.resize(n);
  particles.id.resize(n);
  particles.role.resize(n);
  auto block = [&](auto& v) {
    read_bytes(f.get(), v.data(), n * sizeof(v[0]), sum);
  };
  if (n > 0) {
    block(particles.x);
    block(particles.y);
    block(particles.z);
    block(particles.vx);
    block(particles.vy);
    block(particles.vz);
    block(particles.mass);
    block(particles.id);
    block(particles.role);
  }
  std::uint64_t stored = 0;
  HACC_CHECK(std::fread(&stored, 1, sizeof(stored), f.get()) ==
             sizeof(stored));
  HACC_CHECK_MSG(stored == sum, "snapshot checksum mismatch");
  HACC_CHECK(particles.consistent());
  return h;
}

}  // namespace hacc::io
