#include "io/snapshot.h"

#include <bit>
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "io/wire.h"
#include "util/error.h"

namespace hacc::io {

namespace {

// SoA payload blocks are raw element streams, defined little-endian IEEE;
// pin the layout so a compiler/ABI change cannot silently corrupt files.
static_assert(std::endian::native == std::endian::little,
              "snapshot bulk writes assume a little-endian host");
static_assert(sizeof(float) == 4 && std::numeric_limits<float>::is_iec559,
              "snapshot requires 32-bit IEEE float");
static_assert(sizeof(std::uint64_t) == 8);
static_assert(sizeof(tree::Role) == 1,
              "snapshot role block requires a 1-byte Role");

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t bytes,
                 std::uint64_t& sum) {
  HACC_CHECK_MSG(std::fwrite(data, 1, bytes, f) == bytes, "short write");
  sum = fnv1a(data, bytes, sum);
}

void read_bytes(std::FILE* f, void* data, std::size_t bytes,
                std::uint64_t& sum) {
  HACC_CHECK_MSG(std::fread(data, 1, bytes, f) == bytes, "short read");
  sum = fnv1a(data, bytes, sum);
}

constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8 + 8;

std::vector<std::byte> serialize_header(const SnapshotHeader& h) {
  std::vector<std::byte> blob;
  blob.reserve(kHeaderBytes);
  wire::put_u64(blob, h.magic);
  wire::put_u32(blob, h.version);
  wire::put_u64(blob, h.count);
  wire::put_f64(blob, h.scale_factor);
  wire::put_f64(blob, h.box_mpch);
  wire::put_u64(blob, h.grid);
  return blob;
}

SnapshotHeader parse_header(std::span<const std::byte> blob) {
  wire::Cursor c(blob);
  SnapshotHeader h;
  h.magic = c.u64();
  h.version = c.u32();
  h.count = c.u64();
  h.scale_factor = c.f64();
  h.box_mpch = c.f64();
  h.grid = c.u64();
  return h;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void write_snapshot(const std::string& path,
                    const tree::ParticleArray& particles,
                    const SnapshotHeader& header) {
  HACC_CHECK(particles.consistent());
  SnapshotHeader h = header;
  h.count = particles.size();
  // Atomic publish: a crash mid-write leaves `<path>.tmp`, never a
  // truncated snapshot that parses as current.
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    HACC_CHECK_MSG(f != nullptr, "cannot open " + tmp + " for writing");
    std::uint64_t sum = 0xcbf29ce484222325ULL;
    const auto blob = serialize_header(h);
    write_bytes(f.get(), blob.data(), blob.size(), sum);
    const std::size_t n = particles.size();
    auto block = [&](const auto& v) {
      write_bytes(f.get(), v.data(), n * sizeof(v[0]), sum);
    };
    if (n > 0) {
      block(particles.x);
      block(particles.y);
      block(particles.z);
      block(particles.vx);
      block(particles.vy);
      block(particles.vz);
      block(particles.mass);
      block(particles.id);
      block(particles.role);
    }
    std::vector<std::byte> trailer;
    wire::put_u64(trailer, sum);
    HACC_CHECK(std::fwrite(trailer.data(), 1, trailer.size(), f.get()) ==
               trailer.size());
  }
  HACC_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "cannot rename " + tmp + " to " + path);
}

SnapshotHeader read_snapshot(const std::string& path,
                             tree::ParticleArray& particles) {
  File f(std::fopen(path.c_str(), "rb"));
  HACC_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::uint64_t sum = 0xcbf29ce484222325ULL;
  std::vector<std::byte> blob(kHeaderBytes);
  read_bytes(f.get(), blob.data(), blob.size(), sum);
  const SnapshotHeader h = parse_header(blob);
  HACC_CHECK_MSG(h.magic == SnapshotHeader{}.magic, "bad snapshot magic");
  HACC_CHECK_MSG(h.version == 2, "unsupported snapshot version");
  particles.clear();
  const auto n = static_cast<std::size_t>(h.count);
  particles.x.resize(n);
  particles.y.resize(n);
  particles.z.resize(n);
  particles.vx.resize(n);
  particles.vy.resize(n);
  particles.vz.resize(n);
  particles.mass.resize(n);
  particles.id.resize(n);
  particles.role.resize(n);
  auto block = [&](auto& v) {
    read_bytes(f.get(), v.data(), n * sizeof(v[0]), sum);
  };
  if (n > 0) {
    block(particles.x);
    block(particles.y);
    block(particles.z);
    block(particles.vx);
    block(particles.vy);
    block(particles.vz);
    block(particles.mass);
    block(particles.id);
    block(particles.role);
  }
  std::vector<std::byte> trailer(8);
  HACC_CHECK(std::fread(trailer.data(), 1, trailer.size(), f.get()) ==
             trailer.size());
  HACC_CHECK_MSG(wire::Cursor(trailer).u64() == sum,
                 "snapshot checksum mismatch");
  HACC_CHECK(particles.consistent());
  return h;
}

}  // namespace hacc::io
