// Particle overloading (paper Sec. II, Fig. 4).
//
// HACC's spatial domain decomposition is regular (non-cubic) 3-D blocks,
// but unlike the guard zones of a typical PM method, *full particle
// replication* is employed across domain boundaries: every rank stores,
// besides its own ("active", green in Fig. 4) particles, complete copies of
// all neighbor particles within the overload depth of its boundary
// ("passive", red). Passive particles are moved by interpolated forces but
// never deposited in the Poisson solve; they switch roles as they cross
// domain boundaries. The payoff: medium/long-range force calculations need
// no particle communication at all, and the short-range solver becomes a
// purely rank-local ("on-node") method that can be swapped per architecture
// with guaranteed scalability.
//
// Passive replicas are stored with *unwrapped* coordinates in the receiving
// rank's frame (a replica from across the periodic seam sits at x < 0 or
// x >= N), so short-range pair distances need no minimum-image logic.
#pragma once

#include <array>
#include <cstdint>

#include "comm/comm.h"
#include "mesh/grid.h"
#include "tree/particles.h"

namespace hacc::core {

struct RefreshStats {
  std::size_t active = 0;     ///< active particles after the refresh
  std::size_t passive = 0;    ///< passive replicas after the refresh
  std::size_t migrated = 0;   ///< actives that changed owner
  double overload_fraction() const noexcept {
    return active ? static_cast<double>(passive) / static_cast<double>(active)
                  : 0.0;
  }
};

class OverloadDomain {
 public:
  /// `overload` is the replication depth in grid units; it must not exceed
  /// the smallest domain extent along any axis.
  OverloadDomain(const mesh::BlockDecomp3D& decomp, int rank,
                 double overload);

  const mesh::BlockDecomp3D& decomp() const noexcept { return decomp_; }
  const fft::Box3D& box() const noexcept { return box_; }
  double overload() const noexcept { return overload_; }
  int rank() const noexcept { return rank_; }

  /// True if a (wrapped, in [0,N)) position belongs to this rank's domain.
  bool owns(float x, float y, float z) const noexcept;

  /// Full overloading refresh (collective):
  ///  1. drop all passive replicas,
  ///  2. wrap active positions into [0, N) and migrate those that left the
  ///     domain to their new owner (role switching at boundary crossings),
  ///  3. rebuild the passive layer: for each of the 26 neighbor images,
  ///     send shifted copies of actives that fall inside the image's
  ///     overload region.
  RefreshStats refresh(comm::Comm& comm, tree::ParticleArray& particles) const;

  /// Count (active, passive) without modifying anything.
  std::array<std::size_t, 2> census(const tree::ParticleArray& p) const;

  /// When set, refresh() re-sorts the actives into canonical (id) order
  /// after migrant delivery, before replicas are rebuilt. This decouples
  /// the particle ordering — and with it every float summation order
  /// downstream — from the arrival/removal history, so a run restored from
  /// a checkpoint (which permutes particles through the elastic read and
  /// redistribution) evolves bit-for-bit like the uninterrupted one.
  void set_canonical_order(bool on) noexcept { canonical_order_ = on; }
  bool canonical_order() const noexcept { return canonical_order_; }

 private:
  mesh::BlockDecomp3D decomp_;
  int rank_;
  fft::Box3D box_;
  double overload_;
  bool canonical_order_ = false;
};

}  // namespace hacc::core
