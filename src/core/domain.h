// Particle overloading (paper Sec. II, Fig. 4).
//
// HACC's spatial domain decomposition is regular (non-cubic) 3-D blocks,
// but unlike the guard zones of a typical PM method, *full particle
// replication* is employed across domain boundaries: every rank stores,
// besides its own ("active", green in Fig. 4) particles, complete copies of
// all neighbor particles within the overload depth of its boundary
// ("passive", red). Passive particles are moved by interpolated forces but
// never deposited in the Poisson solve; they switch roles as they cross
// domain boundaries. The payoff: medium/long-range force calculations need
// no particle communication at all, and the short-range solver becomes a
// purely rank-local ("on-node") method that can be swapped per architecture
// with guaranteed scalability.
//
// Passive replicas are stored with *unwrapped* coordinates in the receiving
// rank's frame (a replica from across the periodic seam sits at x < 0 or
// x >= N), so short-range pair distances need no minimum-image logic.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "comm/comm.h"
#include "mesh/grid.h"
#include "tree/particles.h"

namespace hacc::core {

struct RefreshStats {
  std::size_t active = 0;     ///< active particles after the refresh
  std::size_t passive = 0;    ///< passive replicas after the refresh
  std::size_t migrated = 0;   ///< actives that changed owner
  double overload_fraction() const noexcept {
    return active ? static_cast<double>(passive) / static_cast<double>(active)
                  : 0.0;
  }
};

class OverloadDomain {
 public:
  /// `overload` is the replication depth in grid units; it must not exceed
  /// the smallest domain extent along any axis.
  OverloadDomain(const mesh::BlockDecomp3D& decomp, int rank,
                 double overload);

  const mesh::BlockDecomp3D& decomp() const noexcept { return decomp_; }
  const fft::Box3D& box() const noexcept { return box_; }
  double overload() const noexcept { return overload_; }
  int rank() const noexcept { return rank_; }

  /// True if a (wrapped, in [0,N)) position belongs to this rank's domain.
  bool owns(float x, float y, float z) const noexcept;

  /// Full overloading refresh (collective):
  ///  1. drop all passive replicas and wrap active positions into [0, N),
  ///  2. for every active, work out its (possibly new) owner and all
  ///     passive-replica destinations — the owner's 26 neighbor images
  ///     whose overload slab contains it — and pack role-tagged packets
  ///     directly into one flat send buffer,
  ///  3. perform ONE sparse neighbor_alltoallv over the refresh stencil
  ///     (migration + replication fused: a single exchange per refresh,
  ///     cost scaling with the neighbor count, not the world size).
  /// Migrant replicas are computed by the *sender* on the new owner's
  /// behalf — the decomposition is globally known — which is what makes the
  /// historical deliver-then-replicate second round unnecessary.
  RefreshStats refresh(comm::Comm& comm, tree::ParticleArray& particles) const;

  /// The sparse exchange stencil: every rank within L-inf min-image box
  /// distance <= 2*overload of this rank's domain (touching boxes — the 26
  /// Cartesian neighbors and self — always qualify, so the stencil is
  /// never empty). Self is a member because a migrant's replicas, built by
  /// the sender on the new owner's behalf, can target the sender itself;
  /// its block never crosses a rank boundary (memcpy fast path).
  /// 2*overload covers replicas of migrants that drifted up to one
  /// overload depth past the boundary; refresh HACC_CHECKs at pack time
  /// that no particle needs a rank outside it. Symmetric across ranks by
  /// construction (the distance is symmetric and exact — integer box
  /// bounds in double).
  const std::vector<int>& stencil() const noexcept { return stencil_; }

  /// Count (active, passive) without modifying anything.
  std::array<std::size_t, 2> census(const tree::ParticleArray& p) const;

  /// When set, refresh() re-sorts the actives into canonical (id) order
  /// after migrant delivery, before replicas are rebuilt. This decouples
  /// the particle ordering — and with it every float summation order
  /// downstream — from the arrival/removal history, so a run restored from
  /// a checkpoint (which permutes particles through the elastic read and
  /// redistribution) evolves bit-for-bit like the uninterrupted one.
  void set_canonical_order(bool on) noexcept { canonical_order_ = on; }
  bool canonical_order() const noexcept { return canonical_order_; }

 private:
  /// Wire format for the fused particle exchange (trivially copyable).
  /// `role` tags the packet: 0 = migrating active, 1 = passive replica.
  struct PackedParticle {
    float x, y, z, vx, vy, vz, mass;
    std::uint32_t role;
    std::uint64_t id;
  };

  /// One neighbor image: a rank viewed at a periodic offset, with its
  /// overload slab [lo, hi) expressed in the sending owner's frame and the
  /// shift to subtract when expressing a position in the receiver's frame.
  struct Image {
    int nbr = 0;
    std::array<double, 3> lo{}, hi{}, shift{};
  };

  /// The 26 neighbor images of `owner`'s domain (periodic offsets of the
  /// Cartesian topology), slabs widened by the overload depth.
  void build_images(int owner, std::array<Image, 26>& out) const;
  void build_stencil();

  mesh::BlockDecomp3D decomp_;
  int rank_;
  fft::Box3D box_;
  double overload_;
  bool canonical_order_ = false;
  std::vector<int> stencil_;            ///< sparse exchange peers (sorted)
  std::vector<int> slot_of_;            ///< rank -> stencil slot, -1 absent
  std::array<Image, 26> my_images_{};   ///< this rank's images, precomputed
  // Refresh scratch, reused across calls so the steady state allocates
  // nothing (one OverloadDomain per rank thread; refresh is not reentrant).
  mutable std::vector<int> owners_;
  mutable std::vector<PackedParticle> send_buf_, recv_buf_;
  mutable std::vector<std::size_t> send_counts_, recv_counts_, cursors_;
};

}  // namespace hacc::core
