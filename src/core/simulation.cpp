#include "core/simulation.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <numbers>

#include "comm/fault.h"
#include "gio/particle_io.h"
#include "mesh/cic.h"
#include "obs/obs.h"
#include "obs/reduce.h"

namespace hacc::core {

using cosmology::Cosmology;

namespace {

// Pre-interned phase ids: scope() on a string re-probes the intern table;
// these run every (sub)step.
const NameId kPhaseStep = intern_name(TimerRegistry::kRootPhase);
const NameId kPhaseInit = intern_name("init");
const NameId kPhaseCic = intern_name("cic");
const NameId kPhaseGridExchange = intern_name("grid-exchange");
const NameId kPhasePoisson = intern_name("poisson");
const NameId kPhaseLrKick = intern_name("lr-kick");
const NameId kPhaseTreeBuild = intern_name("tree-build");
const NameId kPhaseSrKernel = intern_name("sr-kernel");
const NameId kPhaseStream = intern_name("stream");
const NameId kPhaseRefresh = intern_name("refresh");
const NameId kPhaseCheckpoint = intern_name("checkpoint");
const NameId kPhaseInsitu = intern_name("insitu");
const NameId kPhaseAudit = intern_name("audit");

const NameId kCtrInteractions = obs::counter_id("tree.pp_interactions");
const NameId kCtrWalkVisits = obs::counter_id("tree.walk_visits");
const NameId kGaugePeakRss = obs::gauge_id("mem.peak_rss_bytes");

// SDC audit observability: per-gate totals plus the injection count (so a
// chaos run's ledger shows the flips that were actually applied).
const NameId kCtrAuditRuns = obs::counter_id("audit.runs");
const NameId kCtrAuditChecksum = obs::counter_id("audit.checksum_mismatches");
const NameId kCtrAuditDup = obs::counter_id("audit.dup_mismatches");
const NameId kCtrAuditDupSamples = obs::counter_id("audit.dup_samples");
const NameId kGaugeAuditMassResidual =
    obs::gauge_id("audit.mass_residual_nano");
const NameId kCtrMemoryFlips = obs::counter_id("fault.memory_flips");

/// Flip one bit of a float (SDC injection applied to resident state).
inline void flip_float_bit(float& v, int bit) noexcept {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  u ^= std::uint32_t{1} << (bit & 31);
  std::memcpy(&v, &u, sizeof(v));
}

/// Flip one bit of a double (grid cells are double).
inline void flip_double_bit(double& v, int bit) noexcept {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  u ^= std::uint64_t{1} << (bit & 63);
  std::memcpy(&v, &u, sizeof(v));
}

// Live-scrape slots: step wall-time distribution plus the cost-map summary
// gauges (the _micro suffix is the fixed-point convention for fractional
// values in uint64 counter slots; the Prometheus exporter divides by 1e6).
const NameId kHistStepWall = obs::histogram_id("step.wall_ns");
const NameId kGaugeCostKernelNs = obs::gauge_id("cost.kernel_ns");
const NameId kGaugeCostLeaves = obs::gauge_id("cost.leaves");
const NameId kGaugeCostLeafImbalance = obs::gauge_id("cost.leaf_imbalance_micro");
const NameId kGaugeCostNsPerInteraction =
    obs::gauge_id("cost.ns_per_interaction_micro");
const NameId kGaugeCostTopDecile = obs::gauge_id("cost.top_decile_share_micro");

}  // namespace

Simulation::Simulation(comm::Comm& world, const Cosmology& cosmo,
                       const SimulationConfig& config)
    : world_(world),
      cosmo_(cosmo),
      config_(config),
      decomp_(mesh::BlockDecomp3D::balanced(
          {config.grid, config.grid, config.grid}, world.size())) {
  HACC_CHECK(config.steps >= 1 && config.subcycles >= 1);
  HACC_CHECK(config.particles_per_dim >= 1);
  HACC_CHECK_MSG(config.z_initial > config.z_final,
                 "z must decrease over the run");

  watchdog_ = obs::Watchdog(config.watchdog_config);
  domain_ = std::make_unique<OverloadDomain>(decomp_, world.rank(),
                                             config.overload);
  domain_->set_canonical_order(config.canonical_order);
  poisson_ = std::make_unique<mesh::PoissonSolver>(world, decomp_,
                                                   config.spectral);
  // Ghost layer: passive particles live up to `overload` outside the
  // domain, drift slightly further between refreshes, and their CIC cloud
  // reaches one more cell: overload + 2 covers all three.
  grid_ghost_ = static_cast<std::size_t>(std::ceil(config.overload)) + 2;

  // Short-range kernel: subtract the force-matched filtered grid force.
  kernel_.softening = config.softening;
  kernel_.rmax = 3.0f;  // the paper's hand-over scale (3 grid spacings)
  const mesh::SpectralConfig def{};
  const bool default_spectral =
      config.spectral.sigma == def.sigma && config.spectral.ns == def.ns &&
      config.spectral.green == def.green &&
      config.spectral.gradient == def.gradient;
  if (default_spectral) {
    kernel_.fgrid = tree::default_fgrid_poly5();
  } else {
    tree::ForceMatchConfig fm;
    fm.spectral = config.spectral;
    fm.rmax = kernel_.rmax;
    kernel_.fgrid = tree::match_grid_force(fm);
  }

  // Inner-loop choice: the config knob, unless HACC_KERNEL overrides it.
  kernel_variant_ = tree::kernel_variant_from_env(config.kernel);

  const double np_total = std::pow(
      static_cast<double>(config.particles_per_dim), 3);
  const double cells = std::pow(static_cast<double>(config.grid), 3);
  const double rho_bar = np_total / cells;  // unit particle masses
  mass_scale_ =
      static_cast<float>(1.0 / (4.0 * std::numbers::pi * rho_bar));

  a_ = Cosmology::a_of_z(config.z_initial);
}

void Simulation::initialize() {
  obs::Binding binding(&tracer_, &counters_);
  auto scope = timers_.scope(kPhaseInit);
  cosmology::IcConfig ic = config_.ic;
  ic.particles_per_dim = config_.particles_per_dim;
  ic.box_mpch = config_.box_mpch;
  ic.z_init = config_.z_initial;
  ic.seed = config_.seed;
  cosmology::generate_zeldovich(world_, decomp_, cosmo_, ic, particles_);
  domain_->refresh(world_, particles_);
  steps_taken_ = 0;
  a_ = Cosmology::a_of_z(config_.z_initial);
  // Open the first invariance window over the freshly initialized state,
  // so a flip at step 1 is already caught.
  reset_audit_window();
  audit_end_step();
}

mesh::DistGrid Simulation::density_contrast() {
  mesh::DistGrid rho(decomp_, world_.rank(), grid_ghost_);
  {
    auto scope = timers_.scope(kPhaseCic);
    // Deposit *active* particles only (passives are someone else's mass).
    std::vector<float> xs, ys, zs;
    xs.reserve(particles_.size());
    ys.reserve(particles_.size());
    zs.reserve(particles_.size());
    for (std::size_t i = 0; i < particles_.size(); ++i) {
      if (particles_.role[i] != tree::Role::kActive) continue;
      xs.push_back(particles_.x[i]);
      ys.push_back(particles_.y[i]);
      zs.push_back(particles_.z[i]);
    }
    if (config_.threaded_deposit) {
      mesh::cic_deposit_threaded(rho, xs, ys, zs, 1.0f);
    } else {
      mesh::cic_deposit(rho, xs, ys, zs, 1.0f);
    }
  }
  {
    auto scope = timers_.scope(kPhaseGridExchange);
    rho.fold_ghosts(world_);
  }
  // Grid-resident fault injection fires here — after the fold, before the
  // mass audit captures the interior sum, so the damage both corrupts the
  // physics downstream and is visible to the conservation check. Flips are
  // drawn from the high mantissa/exponent/sign bits (the physically
  // consequential ones; a low-mantissa flip is below deposit rounding).
  if (comm::fault::active()) {
    const auto& box = rho.interior();
    const std::uint64_t ex = box.x.extent();
    const std::uint64_t ey = box.y.extent();
    const std::uint64_t ez = box.z.extent();
    const auto flips = comm::fault::take_memory_flips(
        comm::fault::MemoryTarget::kGrid, ex * ey * ez, 48, 64);
    for (const auto& flip : flips) {
      const auto i = static_cast<std::ptrdiff_t>(flip.element / (ey * ez));
      const auto j =
          static_cast<std::ptrdiff_t>((flip.element / ez) % ey);
      const auto k = static_cast<std::ptrdiff_t>(flip.element % ez);
      flip_double_bit(rho.at(i, j, k), flip.bit);
    }
    if (!flips.empty()) counters_.add(kCtrMemoryFlips, flips.size());
  }
  if (config_.audit.cadence > 0 && config_.audit.mass_conservation) {
    audit_.grid_mass += rho.interior_sum();
    audit_.deposits += 1.0;
  }
  mesh::to_density_contrast(rho, world_);
  return rho;
}

void Simulation::long_range_kick(double a0, double a1) {
  mesh::DistGrid delta = density_contrast();
  std::array<mesh::DistGrid, 3> force{
      mesh::DistGrid(decomp_, world_.rank(), grid_ghost_),
      mesh::DistGrid(decomp_, world_.rank(), grid_ghost_),
      mesh::DistGrid(decomp_, world_.rank(), grid_ghost_)};
  {
    auto scope = timers_.scope(kPhasePoisson);
    poisson_->solve(world_, delta, force);
  }
  {
    auto scope = timers_.scope(kPhaseGridExchange);
    for (auto& f : force) f.fill_ghosts(world_);
  }
  // Kick every local particle (active and passive).
  auto scope = timers_.scope(kPhaseLrKick);
  const double factor = 1.5 * cosmo_.omega_m * cosmo_.kick_factor(a0, a1);
  std::vector<float> gx(particles_.size()), gy(particles_.size()),
      gz(particles_.size());
  // Clamped: the deepest passives may have drifted past the ghost layer
  // since the last refresh (their skin forces are approximate by design).
  mesh::cic_interpolate(force[0], particles_.x, particles_.y, particles_.z,
                        gx, /*clamp_to_storage=*/true);
  mesh::cic_interpolate(force[1], particles_.x, particles_.y, particles_.z,
                        gy, /*clamp_to_storage=*/true);
  mesh::cic_interpolate(force[2], particles_.x, particles_.y, particles_.z,
                        gz, /*clamp_to_storage=*/true);
  const auto f = static_cast<float>(factor);
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    particles_.vx[i] += f * gx[i];
    particles_.vy[i] += f * gy[i];
    particles_.vz[i] += f * gz[i];
  }
}

void Simulation::apply_short_kick(double coeff) {
  if (config_.solver == ShortRangeSolver::kNone || particles_.empty())
    return;
  sr_ax_.assign(particles_.size(), 0.0f);
  sr_ay_.assign(particles_.size(), 0.0f);
  sr_az_.assign(particles_.size(), 0.0f);
  if (config_.solver == ShortRangeSolver::kTreePP) {
    if (config_.tree_splits > 0) {
      // Multiple trees per rank (Sec. VI): parallel builds, same physics.
      std::unique_ptr<tree::MultiTree> forest;
      {
        auto scope = timers_.scope(kPhaseTreeBuild);
        forest = std::make_unique<tree::MultiTree>(
            particles_, tree::MultiTreeConfig{
                            config_.tree_splits,
                            tree::RcbConfig{config_.leaf_size}});
      }
      auto scope = timers_.scope(kPhaseSrKernel);
      stats_ = tree::compute_short_range_multi(*forest, kernel_, sr_ax_,
                                               sr_ay_, sr_az_, mass_scale_,
                                               kernel_variant_,
                                               &sr_workspace_);
      obs::add_counter(kCtrInteractions, stats_.interactions);
      obs::add_counter(kCtrWalkVisits, stats_.walk_visits);
      if (audit_.dup_pending) {
        // Duplicate-execution audit while the forest is live: re-run
        // sampled leaves through the scalar reference and compare against
        // the accumulators before the kick consumes them.
        audit_.dup_pending = false;
        auto audit_scope = timers_.scope(kPhaseAudit);
        const DuplicateExecutionResult dup = duplicate_execution_check(
            *forest, kernel_, sr_ax_, sr_ay_, sr_az_, mass_scale_,
            config_.audit, static_cast<std::uint64_t>(steps_taken_ + 1));
        audit_.dup_mismatches += static_cast<double>(dup.mismatches);
        audit_.dup_samples += static_cast<double>(dup.checked);
      }
      const auto c2 = static_cast<float>(coeff);
      for (std::size_t i = 0; i < particles_.size(); ++i) {
        particles_.vx[i] += c2 * sr_ax_[i];
        particles_.vy[i] += c2 * sr_ay_[i];
        particles_.vz[i] += c2 * sr_az_[i];
      }
      return;
    }
    std::unique_ptr<tree::RcbTree> rcb;
    {
      auto scope = timers_.scope(kPhaseTreeBuild);
      rcb = std::make_unique<tree::RcbTree>(
          particles_, tree::RcbConfig{config_.leaf_size});
    }
    auto scope = timers_.scope(kPhaseSrKernel);
    stats_ = tree::compute_short_range(*rcb, kernel_, sr_ax_, sr_ay_, sr_az_,
                                       mass_scale_, kernel_variant_,
                                       &sr_workspace_);
    obs::add_counter(kCtrInteractions, stats_.interactions);
    obs::add_counter(kCtrWalkVisits, stats_.walk_visits);
    if (audit_.dup_pending) {
      audit_.dup_pending = false;
      auto audit_scope = timers_.scope(kPhaseAudit);
      const DuplicateExecutionResult dup = duplicate_execution_check(
          *rcb, kernel_, sr_ax_, sr_ay_, sr_az_, mass_scale_, config_.audit,
          static_cast<std::uint64_t>(steps_taken_ + 1));
      audit_.dup_mismatches += static_cast<double>(dup.mismatches);
      audit_.dup_samples += static_cast<double>(dup.checked);
    }
  } else {
    auto scope = timers_.scope(kPhaseSrKernel);
    stats_ = p3m::compute_short_range_p3m(particles_, kernel_, sr_ax_, sr_ay_,
                                          sr_az_, mass_scale_, {},
                                          kernel_variant_);
    obs::add_counter(kCtrInteractions, stats_.interactions);
    obs::add_counter(kCtrWalkVisits, stats_.walk_visits);
  }
  const auto c = static_cast<float>(coeff);
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    particles_.vx[i] += c * sr_ax_[i];
    particles_.vy[i] += c * sr_ay_[i];
    particles_.vz[i] += c * sr_az_[i];
  }
}

void Simulation::drift(double factor) {
  auto scope = timers_.scope(kPhaseStream);
  const auto f = static_cast<float>(factor);
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    particles_.x[i] += f * particles_.vx[i];
    particles_.y[i] += f * particles_.vy[i];
    particles_.z[i] += f * particles_.vz[i];
  }
  // Positions are NOT wrapped here: passive replicas must stay in the
  // receiver's unwrapped frame. The refresh wraps actives.
}

void Simulation::short_range_subcycles(double a0, double a1) {
  const int nc = config_.subcycles;
  const double prefac = 1.5 * cosmo_.omega_m;
  for (int c = 0; c < nc; ++c) {
    const double b0 =
        a0 + (a1 - a0) * static_cast<double>(c) / static_cast<double>(nc);
    const double b1 = a0 + (a1 - a0) * static_cast<double>(c + 1) /
                               static_cast<double>(nc);
    const double bm = 0.5 * (b0 + b1);
    // S K S: stream - short-range kick - stream.
    drift(cosmo_.drift_factor(b0, bm));
    apply_short_kick(prefac * cosmo_.kick_factor(b0, b1));
    drift(cosmo_.drift_factor(bm, b1));
  }
}

void Simulation::step() {
  obs::CostMap* cost = config_.cost_attribution ? &cost_map_ : nullptr;
  if (cost != nullptr) cost->begin_step();
  const std::uint64_t wall_t0 = util::now_ns();
  {
    obs::Binding binding(&tracer_, &counters_, cost);
    auto step_scope = timers_.scope(kPhaseStep);
    // SDC window: fire any due resident-memory faults, then verify the
    // state is bit-identical to the end of the previous step.
    audit_begin_step();
    const double a0 = a_;
    const double a_final = Cosmology::a_of_z(config_.z_final);
    const double a_init = Cosmology::a_of_z(config_.z_initial);
    const double da = (a_final - a_init) / static_cast<double>(config_.steps);
    const double a1 = std::min(a0 + da, a_final);
    const double am = 0.5 * (a0 + a1);

    long_range_kick(a0, am);        // M_lr(t/2)
    short_range_subcycles(a0, a1);  // (M_sr(t/n_c))^{n_c}
    long_range_kick(am, a1);        // M_lr(t/2)
    {
      auto scope = timers_.scope(kPhaseRefresh);
      domain_->refresh(world_, particles_);
    }
    a_ = a1;
    ++steps_taken_;
    // In-situ hook lives here (not in run()) so supervised/chaos-driven
    // stepping streams catalogs too.
    if (config_.insitu.cadence > 0 &&
        steps_taken_ % config_.insitu.cadence == 0)
      run_insitu();
    // Open the next invariance window over the post-refresh state.
    audit_end_step();
  }
  // Outside the step scope so the published "step" total includes the step
  // that just ended; both sinks are atomics, safe against a live scrape.
  histograms_.record(kHistStepWall, util::now_ns() - wall_t0);
  publish_metric_gauges();
}

void Simulation::apply_particle_memory_faults() {
  if (!comm::fault::active()) return;
  // Actives only: passive replicas are rebuilt at every refresh, so a flip
  // there models a transient the next exchange heals; the actives are the
  // authoritative state the audit defends.
  std::vector<std::size_t> actives;
  actives.reserve(particles_.size());
  for (std::size_t i = 0; i < particles_.size(); ++i)
    if (particles_.role[i] == tree::Role::kActive) actives.push_back(i);
  if (actives.empty()) return;
  // 7 float fields per particle: x, y, z, vx, vy, vz, mass.
  const auto flips = comm::fault::take_memory_flips(
      comm::fault::MemoryTarget::kParticles, actives.size() * 7, 0, 32);
  for (const auto& flip : flips) {
    const std::size_t i = actives[flip.element / 7];
    float* fields[7] = {&particles_.x[i],  &particles_.y[i],
                        &particles_.z[i],  &particles_.vx[i],
                        &particles_.vy[i], &particles_.vz[i],
                        &particles_.mass[i]};
    flip_float_bit(*fields[flip.element % 7], flip.bit);
  }
  if (!flips.empty()) counters_.add(kCtrMemoryFlips, flips.size());
}

void Simulation::audit_begin_step() {
  apply_particle_memory_faults();
  const AuditConfig& audit = config_.audit;
  if (audit.cadence > 0 && audit.checksum && audit_.stash_valid) {
    auto scope = timers_.scope(kPhaseAudit);
    // The inter-step window is idle: nothing legitimately mutates particle
    // state between the end-of-step stash and here, so any difference is
    // resident-memory corruption.
    if (particle_checksum(particles_, config_.canonical_order) !=
        audit_.stash)
      audit_.checksum_mismatches += 1.0;
  }
  audit_.stash_valid = false;  // consumed; re-stashed at end of step
  audit_.dup_pending = audit.cadence > 0 && audit.duplicate_execution &&
                       config_.solver == ShortRangeSolver::kTreePP &&
                       audit_due(steps_taken_ + 1);
}

void Simulation::audit_end_step() {
  const AuditConfig& audit = config_.audit;
  if (audit.cadence > 0 && audit.checksum) {
    auto scope = timers_.scope(kPhaseAudit);
    audit_.stash = particle_checksum(particles_, config_.canonical_order);
    audit_.stash_valid = true;
  }
}

void Simulation::reset_audit_window() {
  audit_ = AuditScratch{};
  prev_audit_kinetic_ = 0;
}

void Simulation::publish_metric_gauges() {
  // Phase totals as counters: a /metrics scrape must never read the
  // race-unsafe TimerRegistry, so each step republishes the totals into
  // atomic counter slots under phase.<name>.ns (the exporter folds them
  // into one hacc_phase_ns_total family labeled by phase).
  constexpr NameId kUnmapped = ~NameId{0};
  auto publish = [&](NameId phase, double seconds, const char* prefix) {
    if (phase_metric_ids_.size() <= phase)
      phase_metric_ids_.resize(static_cast<std::size_t>(phase) + 1, kUnmapped);
    if (phase_metric_ids_[phase] == kUnmapped)
      phase_metric_ids_[phase] = obs::counter_id(
          std::string("phase.") + prefix + std::string(name_of(phase)) + ".ns");
    counters_.set(phase_metric_ids_[phase],
                  static_cast<std::uint64_t>(seconds * 1e9));
  };
  for (const auto& t : timers_.totals()) publish(t.id, t.seconds, "");
  for (const auto& t : poisson_->timers().totals())
    publish(t.id, t.seconds, "poisson.");

  if (config_.cost_attribution) {
    const obs::CostMap::Summary s = cost_map_.summarize();
    counters_.set(kGaugeCostKernelNs, s.kernel_ns);
    counters_.set(kGaugeCostLeaves, s.leaves);
    counters_.set(kGaugeCostLeafImbalance,
                  static_cast<std::uint64_t>(s.leaf_imbalance * 1e6));
    counters_.set(kGaugeCostNsPerInteraction,
                  static_cast<std::uint64_t>(s.ns_per_interaction * 1e6));
    counters_.set(kGaugeCostTopDecile,
                  static_cast<std::uint64_t>(s.top_decile_share * 1e6));
  }
}

serve::InSituReport Simulation::run_insitu() {
  obs::Binding binding(&tracer_, &counters_);
  auto scope = timers_.scope(kPhaseInsitu);
  // Products see actives only — passives are replicas of someone else's
  // mass and would double-count.
  tree::ParticleArray actives;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_.role[i] == tree::Role::kActive)
      actives.append_from(particles_, i);
  }
  std::vector<cosmology::PowerBin> spectrum;
  if (config_.insitu.spectrum)
    spectrum = power_spectrum(config_.insitu.spectrum_bins);
  gio::GlobalMeta meta;
  meta.scale_factor = a_;
  meta.box_mpch = config_.box_mpch;
  meta.grid = config_.grid;
  gio::GioConfig gcfg;
  gcfg.aggregators = config_.io_aggregators;
  gcfg.verify_after_write = config_.checkpoint_verify;
  return serve::write_catalogs(world_, config_.insitu, steps_taken_, meta,
                               actives, spectrum, gcfg);
}

void Simulation::run() {
  const bool ledger_on = !config_.ledger_path.empty();
  const bool trace_on = !config_.trace_path.empty();
  if (trace_on) tracer_.set_enabled(true);
  if (ledger_on) {
    // Stream records as they are produced (one fsync'd JSONL line per
    // step) instead of writing the file at end of run: a crashed run keeps
    // every completed step's record on disk.
    if (world_.rank() == 0 && !ledger_.streaming())
      ledger_.stream_to(config_.ledger_path);
    // Reset the delta baselines so constructor/initialize() phases and
    // counters do not leak into the first step's record.
    (void)ledger_phase_deltas();
    (void)ledger_counter_samples();
  }
  for (int s = 0; s < config_.steps; ++s) {
    step();
    if (ledger_on) record_step_ledger();
  }
  if (ledger_on && world_.rank() == 0) ledger_.print_phase_table(std::cout);
  if (trace_on) obs::write_merged_trace(world_, tracer_, config_.trace_path);
}

std::vector<std::pair<NameId, double>> Simulation::ledger_phase_deltas() {
  std::vector<std::pair<NameId, double>> out;
  auto emit = [&](NameId id, double total_now) {
    if (prev_phase_seconds_.size() <= id)
      prev_phase_seconds_.resize(static_cast<std::size_t>(id) + 1, 0.0);
    const double delta = total_now - prev_phase_seconds_[id];
    prev_phase_seconds_[id] = total_now;
    if (delta > 0) out.emplace_back(id, delta);
  };
  for (const auto& t : timers_.totals()) emit(t.id, t.seconds);
  // The Poisson solver's internal registry uses bare names ("remap", "fft",
  // "kernel"); re-key them under a "poisson." prefix so the ledger keeps
  // solver-internal and driver phases apart.
  for (const auto& t : poisson_->timers().totals()) {
    const std::string prefixed = "poisson." + std::string(name_of(t.id));
    emit(intern_name(prefixed), t.seconds);
  }
  return out;
}

std::vector<std::pair<NameId, double>> Simulation::ledger_counter_samples() {
  counters_.set(kGaugePeakRss, obs::peak_rss_bytes());
  std::vector<std::pair<NameId, double>> out;
  for (const auto& s : counters_.snapshot()) {
    // phase.<x>.ns slots are republished timer totals for the live scrape;
    // the ledger already carries the same data in its phases map.
    if (name_of(s.id).rfind("phase.", 0) == 0) continue;
    if (obs::kind_of(s.id) == obs::CounterKind::kGauge) {
      out.emplace_back(s.id, static_cast<double>(s.value));
      continue;
    }
    if (prev_counters_.size() <= s.id)
      prev_counters_.resize(static_cast<std::size_t>(s.id) + 1, 0);
    const std::uint64_t delta = s.value - prev_counters_[s.id];
    prev_counters_[s.id] = s.value;
    if (delta != 0) out.emplace_back(s.id, static_cast<double>(delta));
  }
  return out;
}

void Simulation::record_step_ledger() {
  // Deliberately *not* bound to the counters: the ledger's own reductions
  // would otherwise pollute the next step's comm deltas.
  const auto phase_samples = ledger_phase_deltas();
  const auto counter_samples = ledger_counter_samples();
  const std::array<double, 3> momentum = total_momentum();
  if (!momentum0_) momentum0_ = momentum;
  const auto phases = obs::reduce_samples(
      world_, std::span<const std::pair<NameId, double>>(phase_samples));
  const auto counters = obs::reduce_samples(
      world_, std::span<const std::pair<NameId, double>>(counter_samples));
  // Cost attribution is reduced collectively too (even though only the
  // root keeps the record) — every rank must participate.
  obs::CostMapRecord cost_rec;
  if (config_.cost_attribution)
    cost_rec =
        obs::reduce_cost_map(world_, cost_map_.summarize(), steps_taken_);
  if (world_.rank() != 0) return;  // reductions land on the root only

  obs::StepRecord rec;
  rec.step = steps_taken_;
  rec.a = a_;
  rec.z = current_z();
  rec.momentum = momentum;
  double drift = 0;
  for (int d = 0; d < 3; ++d)
    drift = std::max(drift, std::abs(momentum[static_cast<std::size_t>(d)] -
                                     (*momentum0_)[static_cast<std::size_t>(d)]));
  rec.momentum_drift = drift;
  for (const auto& r : phases) {
    const obs::PhaseStat ps{r.min, r.mean, r.max, r.imbalance()};
    if (r.name == kPhaseStep)
      rec.wall = ps;
    else
      rec.phases.emplace(std::string(name_of(r.name)), ps);
  }
  for (const auto& r : counters) {
    const obs::PhaseStat ps{r.min, r.mean, r.max, r.imbalance()};
    if (r.name == kGaugePeakRss)
      rec.peak_rss_bytes = static_cast<std::uint64_t>(r.max);
    rec.counters.emplace(std::string(name_of(r.name)), ps);
  }
  const double np_total =
      std::pow(static_cast<double>(config_.particles_per_dim), 3);
  if (rec.wall.mean > 0 && np_total > 0)
    rec.t_per_substep_per_particle =
        rec.wall.mean / static_cast<double>(config_.subcycles) / np_total;
  rec.breakdown = obs::paper_breakdown(rec.phases, rec.wall.mean);

  // Watchdog inspects the reduced record before it is consumed; anomalies
  // interleave with the step/costmap lines in the streamed ledger.
  std::vector<obs::Anomaly> anomalies;
  if (config_.watchdog)
    anomalies = watchdog_.observe(
        rec, config_.cost_attribution ? &cost_rec : nullptr);

  ledger_.append(std::move(rec));
  if (config_.cost_attribution) ledger_.append_costmap(cost_rec);
  for (const obs::Anomaly& a : anomalies)
    ledger_.append_event(obs::Watchdog::to_event(a, steps_taken_));
}

std::vector<cosmology::PowerBin> Simulation::power_spectrum(
    std::size_t bins) {
  mesh::DistGrid delta = density_contrast();
  return cosmology::measure_power_spectrum(world_, delta, config_.box_mpch,
                                           bins);
}

tree::ParticleArray Simulation::gather_active() {
  // Serialize actives and funnel them to rank 0.
  struct Packed {
    float x, y, z, vx, vy, vz, mass;
    std::uint64_t id;
  };
  std::vector<Packed> mine;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_.role[i] != tree::Role::kActive) continue;
    mine.push_back(Packed{particles_.x[i], particles_.y[i], particles_.z[i],
                          particles_.vx[i], particles_.vy[i],
                          particles_.vz[i], particles_.mass[i],
                          particles_.id[i]});
  }
  tree::ParticleArray out;
  constexpr int kTagGatherActive = -400;
  if (world_.rank() == 0) {
    auto append = [&out](const std::vector<Packed>& v) {
      for (const auto& q : v)
        out.push_back(q.x, q.y, q.z, q.vx, q.vy, q.vz, q.mass, q.id,
                      tree::Role::kActive);
    };
    append(mine);
    for (int r = 1; r < world_.size(); ++r)
      append(world_.recv_vector<Packed>(r, kTagGatherActive));
  } else {
    world_.send(0, kTagGatherActive, std::span<const Packed>(mine));
  }
  return out;
}

void Simulation::write_checkpoint(const std::string& path) {
  obs::Binding binding(&tracer_, &counters_);
  auto scope = timers_.scope(kPhaseCheckpoint);
  // Strip passives: they are someone else's actives and get rebuilt.
  tree::ParticleArray actives;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_.role[i] == tree::Role::kActive)
      actives.append_from(particles_, i);
  }
  gio::GlobalMeta meta;
  meta.scale_factor = a_;
  meta.box_mpch = config_.box_mpch;
  meta.grid = config_.grid;
  gio::GioConfig gcfg;
  gcfg.aggregators = config_.io_aggregators;
  gcfg.verify_after_write = config_.checkpoint_verify;
  gio::write_particles(world_, path, meta, actives, gcfg);
}

void Simulation::read_checkpoint(const std::string& path) {
  obs::Binding binding(&tracer_, &counters_);
  auto scope = timers_.scope(kPhaseCheckpoint);
  const gio::ReadReport report =
      gio::read_particles(world_, path, particles_);
  if (!report.corrupt.empty()) {
    // Restarting from zero-filled physics would be silently wrong; refuse
    // and name the damage (the gio read itself never aborts).
    std::string what = "checkpoint " + path + " has corrupt blocks:";
    for (const auto& c : report.corrupt)
      what += " [block " + std::to_string(c.block) + " var " + c.var_name +
              "]";
    throw Error(what);
  }
  HACC_CHECK_MSG(report.meta.grid == config_.grid &&
                     report.meta.box_mpch == config_.box_mpch,
                 "checkpoint does not match the simulation configuration");
  a_ = report.meta.scale_factor;
  // Recompute how many steps the restored state corresponds to.
  const double a_init = Cosmology::a_of_z(config_.z_initial);
  const double a_final = Cosmology::a_of_z(config_.z_final);
  const double da = (a_final - a_init) / static_cast<double>(config_.steps);
  steps_taken_ = static_cast<int>(std::lround((a_ - a_init) / da));
  // Elastic restore: the blocks just read are partitioned by file order,
  // not by domain — route every particle to its owner, then rebuild the
  // passive layer.
  gio::redistribute_by_domain(world_, decomp_, particles_);
  domain_->refresh(world_, particles_);
  // The restored state seeds fresh audit baselines: stale windows or
  // accumulated findings from the abandoned trajectory must not trip the
  // next gate.
  reset_audit_window();
  audit_end_step();
}

void Simulation::rollback(const std::string& path) {
  // In-place restore: same machine, same width, no teardown — the elastic
  // gio read routes blocks to the live ranks and the refresh rebuilds the
  // passive layer. read_checkpoint also re-arms the audit window.
  read_checkpoint(path);
}

Simulation::EnergyDiagnostics Simulation::energy() {
  mesh::DistGrid delta = density_contrast();
  std::array<mesh::DistGrid, 3> force{
      mesh::DistGrid(decomp_, world_.rank(), grid_ghost_),
      mesh::DistGrid(decomp_, world_.rank(), grid_ghost_),
      mesh::DistGrid(decomp_, world_.rank(), grid_ghost_)};
  mesh::DistGrid phi(decomp_, world_.rank(), grid_ghost_);
  poisson_->solve(world_, delta, force, &phi);
  phi.fill_ghosts(world_);

  std::vector<float> xs, ys, zs, ps;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_.role[i] != tree::Role::kActive) continue;
    xs.push_back(particles_.x[i]);
    ys.push_back(particles_.y[i]);
    zs.push_back(particles_.z[i]);
    ps.push_back(particles_.vx[i] * particles_.vx[i] +
                 particles_.vy[i] * particles_.vy[i] +
                 particles_.vz[i] * particles_.vz[i]);
  }
  std::vector<float> phi_at(xs.size());
  mesh::cic_interpolate(phi, xs, ys, zs, phi_at, /*clamp_to_storage=*/true);

  EnergyDiagnostics e;
  for (float p2 : ps) e.kinetic += 0.5 * static_cast<double>(p2);
  e.kinetic /= a_ * a_;
  for (float ph : phi_at) e.potential += ph;
  e.potential *= 0.5 * 1.5 * cosmo_.omega_m / a_;
  e.kinetic = world_.allreduce_value(e.kinetic, comm::ReduceOp::kSum);
  e.potential = world_.allreduce_value(e.potential, comm::ReduceOp::kSum);
  return e;
}

std::array<double, 3> Simulation::total_momentum() {
  std::array<double, 3> sum{0, 0, 0};
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_.role[i] != tree::Role::kActive) continue;
    sum[0] += particles_.vx[i];
    sum[1] += particles_.vy[i];
    sum[2] += particles_.vz[i];
  }
  world_.allreduce(std::span<double>(sum), comm::ReduceOp::kSum);
  return sum;
}

std::string Simulation::HealthReport::describe(double max_drift) const {
  std::string what;
  if (!finite) what += "non-finite particle state; ";
  if (!counts_ok())
    what += "active particle count " + std::to_string(active) + " != " +
            std::to_string(expected) + "; ";
  if (max_drift > 0 && momentum_drift > max_drift)
    what += "momentum drift " + std::to_string(momentum_drift) +
            " exceeds budget " + std::to_string(max_drift) + "; ";
  if (!what.empty()) what.resize(what.size() - 2);  // trailing "; "
  return what;
}

std::string Simulation::HealthReport::describe_sdc(
    const AuditConfig& audit) const {
  std::string what;
  if (checksum_mismatches > 0)
    what += std::to_string(checksum_mismatches) +
            " payload checksum mismatch(es); ";
  if (dup_mismatches > 0)
    what += std::to_string(dup_mismatches) + " of " +
            std::to_string(dup_samples) +
            " duplicate-execution sample(s) disagree; ";
  if (mass_residual > audit.mass_rtol)
    what += "CIC mass residual " + std::to_string(mass_residual) +
            " exceeds " + std::to_string(audit.mass_rtol) + "; ";
  if (audit.kinetic_jump > 0 && kinetic_jump > 0 &&
      (kinetic_jump > audit.kinetic_jump ||
       kinetic_jump < 1.0 / audit.kinetic_jump))
    what += "kinetic energy jumped " + std::to_string(kinetic_jump) +
            "x between audits (budget " +
            std::to_string(audit.kinetic_jump) + "x); ";
  if (!what.empty()) what.resize(what.size() - 2);  // trailing "; "
  return what;
}

Simulation::HealthReport Simulation::health_check() {
  const auto finite = [](float v) { return std::isfinite(v); };
  // Local scan, then ONE 10-wide allreduce: {nonfinite particles, actives,
  // momentum x/y/z, kinetic p^2 sum} plus the SDC audit accumulators
  // {checksum mismatches, dup mismatches, dup samples, grid mass}. The
  // audits ride the existing gate collective — a gated step still costs
  // exactly one allreduce.
  std::array<double, 10> agg{};
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_.role[i] != tree::Role::kActive) continue;
    agg[1] += 1.0;
    if (!finite(particles_.x[i]) || !finite(particles_.y[i]) ||
        !finite(particles_.z[i]) || !finite(particles_.vx[i]) ||
        !finite(particles_.vy[i]) || !finite(particles_.vz[i]) ||
        !finite(particles_.mass[i]))
      agg[0] += 1.0;
    agg[2] += particles_.vx[i];
    agg[3] += particles_.vy[i];
    agg[4] += particles_.vz[i];
    agg[5] += 0.5 * (static_cast<double>(particles_.vx[i]) * particles_.vx[i] +
                     static_cast<double>(particles_.vy[i]) * particles_.vy[i] +
                     static_cast<double>(particles_.vz[i]) * particles_.vz[i]);
  }
  agg[6] = audit_.checksum_mismatches;
  agg[7] = audit_.dup_mismatches;
  agg[8] = audit_.dup_samples;
  agg[9] = audit_.grid_mass;
  world_.allreduce(std::span<double>(agg), comm::ReduceOp::kSum);

  HealthReport report;
  report.finite = agg[0] == 0;
  report.active = static_cast<std::uint64_t>(agg[1]);
  const double np = static_cast<double>(config_.particles_per_dim);
  report.expected = static_cast<std::uint64_t>(np * np * np);
  report.momentum = {agg[2], agg[3], agg[4]};
  if (!momentum0_) momentum0_ = report.momentum;
  for (int d = 0; d < 3; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    report.momentum_drift = std::max(
        report.momentum_drift,
        std::abs(report.momentum[sd] - (*momentum0_)[sd]));
  }
  report.kinetic = a_ > 0 ? agg[5] / (a_ * a_) : agg[5];
  report.checksum_mismatches = static_cast<std::uint64_t>(agg[6]);
  report.dup_mismatches = static_cast<std::uint64_t>(agg[7]);
  report.dup_samples = static_cast<std::uint64_t>(agg[8]);
  if (audit_.deposits > 0) {
    // Each deposit's global grid sum must equal the global active count
    // (CIC is a partition of unity); the accumulated residual is relative
    // to the accumulated expectation, so it is cadence-independent.
    const double expected_mass =
        audit_.deposits * static_cast<double>(report.expected);
    if (expected_mass > 0)
      report.mass_residual = std::abs(agg[9] - expected_mass) / expected_mass;
  }
  report.audited = audit_due(steps_taken_);
  if (report.audited) {
    if (config_.audit.energy_tracker && prev_audit_kinetic_ > 0 &&
        report.kinetic > 0)
      report.kinetic_jump = report.kinetic / prev_audit_kinetic_;
    prev_audit_kinetic_ = report.kinetic;
    // This gate consumed the accumulated findings; publish them to the
    // live counters and start the next accumulation window.
    counters_.add(kCtrAuditRuns, 1);
    counters_.add(kCtrAuditChecksum, report.checksum_mismatches);
    counters_.add(kCtrAuditDup, report.dup_mismatches);
    counters_.add(kCtrAuditDupSamples, report.dup_samples);
    counters_.set(kGaugeAuditMassResidual,
                  static_cast<std::uint64_t>(report.mass_residual * 1e9));
    audit_.checksum_mismatches = 0;
    audit_.dup_mismatches = 0;
    audit_.dup_samples = 0;
    audit_.grid_mass = 0;
    audit_.deposits = 0;
  }
  return report;
}

}  // namespace hacc::core
