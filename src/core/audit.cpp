#include "core/audit.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace hacc::core {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                           std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// One component comparison under the audit tolerance.
inline bool component_mismatch(float recomputed, float stored,
                               const AuditConfig& config) noexcept {
  const float d = std::fabs(recomputed - stored);
  const float scale = std::max(std::fabs(recomputed), std::fabs(stored));
  return d > config.dup_atol + config.dup_rtol * scale;
}

/// Compare one leaf's particles against the stored accumulators; the
/// neighbor list has already been gathered by the caller.
void check_leaf(const tree::ParticleArray& p, const tree::RcbNode& node,
                const tree::NeighborList& list,
                const tree::ShortRangeKernel& kernel, float mass_scale,
                std::span<const float> ax, std::span<const float> ay,
                std::span<const float> az, const AuditConfig& config,
                DuplicateExecutionResult& out) {
  for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
    const tree::Force3 f = tree::evaluate_neighbor_list(
        kernel, p.x[i], p.y[i], p.z[i], list.x.data(), list.y.data(),
        list.z.data(), list.m.data(), list.size(), mass_scale);
    ++out.checked;
    if (component_mismatch(f.x, ax[i], config) ||
        component_mismatch(f.y, ay[i], config) ||
        component_mismatch(f.z, az[i], config)) {
      ++out.mismatches;
      if (out.detail.empty()) {
        out.detail = "particle " + std::to_string(i) + ": scalar (" +
                     std::to_string(f.x) + "," + std::to_string(f.y) + "," +
                     std::to_string(f.z) + ") vs stored (" +
                     std::to_string(ax[i]) + "," + std::to_string(ay[i]) +
                     "," + std::to_string(az[i]) + ")";
      }
    }
  }
}

}  // namespace

std::uint64_t particle_checksum(const tree::ParticleArray& particles,
                                bool assume_id_sorted) {
  // Canonical order: actives sorted by id (unique among actives), so the
  // hash is invariant under the permutations refresh/restore perform.
  std::vector<std::size_t> order;
  order.reserve(particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i)
    if (particles.role[i] == tree::Role::kActive) order.push_back(i);
  if (!assume_id_sorted) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return particles.id[a] < particles.id[b];
    });
  }
  std::uint64_t h = kFnvOffset;
  for (const std::size_t i : order) {
    const float payload[7] = {particles.x[i],  particles.y[i],
                              particles.z[i],  particles.vx[i],
                              particles.vy[i], particles.vz[i],
                              particles.mass[i]};
    h = fnv1a(h, payload, sizeof(payload));
    h = fnv1a(h, &particles.id[i], sizeof(particles.id[i]));
  }
  return h;
}

DuplicateExecutionResult duplicate_execution_check(
    const tree::RcbTree& tree, const tree::ShortRangeKernel& kernel,
    std::span<const float> ax, std::span<const float> ay,
    std::span<const float> az, float mass_scale, const AuditConfig& config,
    std::uint64_t draw_key) {
  DuplicateExecutionResult out;
  const auto& leaves = tree.leaves();
  if (leaves.empty() || config.sample_leaves <= 0) return out;
  Philox::Stream draw(Philox(config.seed, draw_key));
  tree::NeighborList list;
  // A budget that covers the whole leaf set means "audit everything":
  // sweep exhaustively rather than drawing with replacement (which would
  // leave ~1/e of the leaves uncovered even at budget == leaf count).
  const bool exhaustive =
      static_cast<std::size_t>(config.sample_leaves) >= leaves.size();
  const std::size_t samples = std::min<std::size_t>(
      static_cast<std::size_t>(config.sample_leaves), leaves.size());
  for (std::size_t s = 0; s < samples; ++s) {
    const std::uint32_t leaf =
        exhaustive ? leaves[s] : leaves[draw.index(leaves.size())];
    list.clear();
    tree.gather_neighbors(leaf, kernel.rmax, list);
    ++out.sampled_leaves;
    check_leaf(tree.particles(), tree.nodes()[leaf], list, kernel,
               mass_scale, ax, ay, az, config, out);
  }
  return out;
}

DuplicateExecutionResult duplicate_execution_check(
    const tree::MultiTree& forest, const tree::ShortRangeKernel& kernel,
    std::span<const float> ax, std::span<const float> ay,
    std::span<const float> az, float mass_scale, const AuditConfig& config,
    std::uint64_t draw_key) {
  DuplicateExecutionResult out;
  // Flatten (tree, leaf) pairs so the draw is uniform over all leaves.
  std::vector<std::pair<std::size_t, std::uint32_t>> pairs;
  for (std::size_t t = 0; t < forest.trees().size(); ++t)
    for (const std::uint32_t leaf : forest.trees()[t].leaves())
      pairs.emplace_back(t, leaf);
  if (pairs.empty() || config.sample_leaves <= 0) return out;
  Philox::Stream draw(Philox(config.seed, draw_key));
  tree::NeighborList list;
  const bool exhaustive =
      static_cast<std::size_t>(config.sample_leaves) >= pairs.size();
  const std::size_t samples = std::min<std::size_t>(
      static_cast<std::size_t>(config.sample_leaves), pairs.size());
  for (std::size_t s = 0; s < samples; ++s) {
    const auto [t, leaf] =
        exhaustive ? pairs[s] : pairs[draw.index(pairs.size())];
    list.clear();
    forest.gather_neighbors(t, leaf, kernel.rmax, list);
    ++out.sampled_leaves;
    check_leaf(forest.particles(), forest.trees()[t].nodes()[leaf], list,
               kernel, mass_scale, ax, ay, az, config, out);
  }
  return out;
}

}  // namespace hacc::core
