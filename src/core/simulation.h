// The HACC simulation driver: spectral PM long/medium-range force +
// pluggable rank-local short-range solver + sub-cycled symplectic stepping
// + particle overloading.
//
// Time stepping (paper Sec. II, Eq. 6): a 2nd-order split-operator
// symplectic scheme that sub-cycles the short/close-range evolution within
// long/medium-range 'kick' maps,
//
//   M_full(t) = M_lr(t/2) (M_sr(t/n_c))^{n_c} M_lr(t/2),
//
// where M_lr updates only momenta (positions frozen) from the PM force, and
// each M_sr is itself a symmetric stream-kick-stream (SKS) composition for
// the short-range force. n_c is typically 5-10.
//
// Units and equations of motion (derivation in cosmology/background.h):
// lengths in grid cells, tau = H0 t, p = a^2 dx/dtau. Then
//     dx/dtau = p / a^2,
//     dp/dtau = (3/2) Omega_m a^{-1} g(x),
// with g = -grad phi_c and nabla^2 phi_c = delta (the code-unit Poisson
// solve). The short-range kernel carries the same normalization through the
// mass scale mu = m / (4 pi rho_bar).
//
// Mixed precision per the paper: the spectral solve is double; particle
// state, short-range forces and the kick/drift updates are float.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "core/audit.h"
#include "core/domain.h"
#include "cosmology/background.h"
#include "cosmology/initial_conditions.h"
#include "cosmology/power_spectrum.h"
#include "mesh/poisson.h"
#include "obs/costmap.h"
#include "obs/counters.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "p3m/chaining_mesh.h"
#include "serve/insitu.h"
#include "tree/force_matcher.h"
#include "tree/multi_tree.h"
#include "tree/rcb_tree.h"

namespace hacc::core {

/// Which short/close-range algorithm backs the long-range solver
/// (paper Sec. II: P3M on accelerated systems, PPTreePM on Blue Gene).
enum class ShortRangeSolver {
  kNone,    ///< pure PM (long/medium range only)
  kTreePP,  ///< RCB tree + particle-particle kernel ("PPTreePM")
  kP3m,     ///< chaining-mesh direct particle-particle ("P3M")
};

struct SimulationConfig {
  std::size_t grid = 32;               ///< PM grid cells per dimension
  std::size_t particles_per_dim = 32;  ///< np^3 particles
  double box_mpch = 64.0;              ///< box side [Mpc/h]
  double z_initial = 50.0;
  double z_final = 0.0;
  int steps = 10;          ///< long-range steps
  int subcycles = 5;       ///< n_c short-range sub-cycles per step
  double overload = 4.0;   ///< particle replication depth [grid units]
  ShortRangeSolver solver = ShortRangeSolver::kTreePP;
  std::size_t leaf_size = 64;   ///< RCB fat-leaf size
  /// Binary spatial splits for multiple trees per rank (paper Sec. VI
  /// future work); 0 = one tree per rank.
  int tree_splits = 0;
  /// Use the OpenMP-threaded forward CIC (paper Sec. VI future work).
  bool threaded_deposit = false;
  /// Checkpoint writer aggregation width M (gio fan-in); 0 = gio default.
  int io_aggregators = 0;
  /// Write-then-verify checkpoints: rank 0 re-reads and CRC-validates the
  /// tmp file before the atomic rename publishes it (gio
  /// GioConfig::verify_after_write). A checkpoint that cannot be read back
  /// clean is refused instead of published.
  bool checkpoint_verify = true;
  /// Keep particles in canonical (id) order at every refresh, so float
  /// summation order — and the whole trajectory — is independent of
  /// arrival/removal history. Required for bit-for-bit restart
  /// reproducibility (a restore permutes particles); costs one O(n log n)
  /// sort per refresh.
  bool canonical_order = true;
  /// Short-range inner-loop implementation: the tile-batched explicit
  /// vector kernel (default) or the scalar `omp simd` reference loop. The
  /// HACC_KERNEL environment variable ("scalar"|"batched") overrides this.
  tree::KernelVariant kernel = tree::KernelVariant::kBatched;
  float softening = 0.1f;       ///< eps in (s + eps)^{-3/2} [grid units^2]
  mesh::SpectralConfig spectral{};
  cosmology::IcConfig ic{};     ///< particles_per_dim/box are overwritten
  std::uint64_t seed = 2012;
  /// When non-empty, run() reduces a per-step StepRecord across ranks and
  /// rank 0 writes the run ledger (JSONL, one object per step) here, plus a
  /// phase table to stdout. Empty = no extra collectives per step.
  std::string ledger_path;
  /// When non-empty, run() enables the per-rank tracer and rank 0 writes a
  /// merged Chrome trace_event JSON (pid = rank) here at end of run.
  std::string trace_path;
  /// In-situ analysis pipeline: when insitu.cadence > 0, every cadence-th
  /// completed step streams halo/spectrum/slice catalogs into
  /// insitu.output_dir (see serve/insitu.h). Runs inside step(), so
  /// supervised/chaos-driven runs stream catalogs too.
  serve::InSituConfig insitu;
  /// Per-leaf cost attribution: bind the rank's CostMap during step() so
  /// the short-range kernels record {leaf box, interactions, kernel ns}
  /// per leaf, and (when the ledger is on) reduce + stream a per-step
  /// {"costmap":...} record — the measured-cost input for the roadmap's
  /// cost-based rebalancer.
  bool cost_attribution = true;
  /// Drift watchdog: inspect each reduced step record (straggler
  /// imbalance, model-vs-measured ns/interaction drift, phase-coverage
  /// gaps) and ledger {"event":"anomaly"} lines. Only active when the
  /// ledger is on (the watchdog reads reduced records).
  bool watchdog = true;
  obs::WatchdogConfig watchdog_config{};
  /// Silent-data-corruption audits (core/audit.h): payload-invariance
  /// checksums, CIC mass conservation, kinetic-energy drift, and sampled
  /// duplicate execution, all folded into health_check()'s one allreduce.
  AuditConfig audit{};
};

class Simulation {
 public:
  /// Collective over `world`; builds the decomposition, the Poisson solver,
  /// the short-range kernel (shipped force-matched poly5 for the default
  /// spectral config, freshly matched otherwise).
  Simulation(comm::Comm& world, const cosmology::Cosmology& cosmo,
             const SimulationConfig& config);

  /// Generate Zel'dovich initial conditions and perform the first
  /// overloading refresh. Collective.
  void initialize();

  /// Advance one full long-range step (kick-subcycle-kick + refresh).
  void step();

  /// Run all configured steps.
  void run();

  double current_a() const noexcept { return a_; }
  double current_z() const noexcept {
    return cosmology::Cosmology::z_of_a(a_);
  }
  int steps_taken() const noexcept { return steps_taken_; }

  const tree::ParticleArray& particles() const noexcept { return particles_; }
  tree::ParticleArray& mutable_particles() noexcept { return particles_; }
  const OverloadDomain& domain() const noexcept { return *domain_; }
  const SimulationConfig& config() const noexcept { return config_; }
  const cosmology::Cosmology& cosmology() const noexcept { return cosmo_; }
  const tree::ShortRangeKernel& kernel() const noexcept { return kernel_; }

  /// Mass normalization mu = 1/(4 pi rho_bar) applied to short-range
  /// neighbor masses (rho_bar = mean particle mass per grid cell).
  float mass_scale() const noexcept { return mass_scale_; }

  /// Deposit active particles and return the density contrast (collective).
  mesh::DistGrid density_contrast();

  /// Measured matter power spectrum of the current state (collective).
  std::vector<cosmology::PowerBin> power_spectrum(std::size_t bins = 32);

  /// Gather every *active* particle to rank 0 (empty elsewhere). Collective.
  tree::ParticleArray gather_active();

  /// Run the in-situ analysis pipeline on the current state: FOF halos,
  /// P(k), and a region slice streamed as gio catalogs into
  /// config().insitu.output_dir (products per the config). Collective;
  /// step() calls this automatically at the configured cadence, and drivers
  /// may invoke it directly for an on-demand catalog.
  serve::InSituReport run_insitu();

  /// Per-phase wall-clock accumulators ("kernel", "walk+build", "fft",
  /// "cic", "refresh", ...).
  const TimerRegistry& timers() const noexcept { return timers_; }
  TimerRegistry& mutable_timers() noexcept { return timers_; }

  /// Interaction statistics of the last short-range evaluation.
  const tree::InteractionStats& last_stats() const noexcept { return stats_; }

  /// This rank's event tracer / counter registry. step() binds both to the
  /// calling thread, so all instrumented layers (comm, fft, tree, gio)
  /// record here while the simulation runs.
  obs::Tracer& tracer() noexcept { return tracer_; }
  obs::Counters& counters() noexcept { return counters_; }
  /// Per-leaf kernel cost of the latest step (cost_attribution on).
  const obs::CostMap& cost_map() const noexcept { return cost_map_; }
  /// Histogram slots (step.wall_ns, plus anything a driver mirrors in);
  /// together with counters() this is the rank's live /metrics source.
  obs::HistogramSet& histograms() noexcept { return histograms_; }
  const obs::HistogramSet& histograms() const noexcept { return histograms_; }
  /// Drift watchdog state (anomaly totals feed /healthz).
  const obs::Watchdog& watchdog() const noexcept { return watchdog_; }
  /// Mutable access for drivers: the Supervisor notes SDC detections here
  /// so /healthz anomaly totals include them.
  obs::Watchdog& mutable_watchdog() noexcept { return watchdog_; }
  std::uint64_t anomaly_count() const noexcept { return watchdog_.anomalies(); }

  /// The per-step run ledger (populated by run() when config().ledger_path
  /// is set, or explicitly via record_step_ledger()).
  const obs::Ledger& ledger() const noexcept { return ledger_; }
  /// Mutable access for drivers (the Supervisor streams events into it and
  /// re-opens the sink in append mode across recovery attempts).
  obs::Ledger& mutable_ledger() noexcept { return ledger_; }

  /// Reduce this step's telemetry across ranks and append a StepRecord on
  /// rank 0 (no-op record elsewhere). Collective; called by run() after
  /// every step when config().ledger_path is non-empty.
  void record_step_ledger();

  /// Sum of momenta over active particles (collective; conservation checks).
  std::array<double, 3> total_momentum();

  /// Cross-rank state invariants, combined in ONE allreduce: a NaN/inf scan
  /// over active particle state, the global active count against the
  /// configured particle total, the global momentum sum and its drift from
  /// the first recorded value. The Supervisor runs this after every step —
  /// a checkpoint of sick state would poison recovery. Collective;
  /// identical result on every rank.
  struct HealthReport {
    bool finite = true;          ///< no NaN/inf in any active's state
    std::uint64_t active = 0;    ///< global active particle count
    std::uint64_t expected = 0;  ///< configured particles_per_dim^3
    std::array<double, 3> momentum{};
    double momentum_drift = 0;   ///< max |component - first recorded|
    // ---- SDC audit findings, accumulated since the last audited gate and
    // reduced in the SAME allreduce (zeros when the audit is off) ----
    bool audited = false;  ///< this gate falls on the audit cadence
    std::uint64_t checksum_mismatches = 0;  ///< payload-invariance breaks
    std::uint64_t dup_mismatches = 0;  ///< duplicate-execution disagreements
    std::uint64_t dup_samples = 0;     ///< particles re-executed
    double mass_residual = 0;  ///< relative CIC grid-mass error (worst case)
    double kinetic = 0;        ///< global kinetic energy sum p^2 / 2a^2
    double kinetic_jump = 0;   ///< ratio vs previous audited gate (0 = n/a)
    bool counts_ok() const noexcept { return active == expected; }
    /// Healthy under a drift budget (<= 0 disables the drift test).
    bool ok(double max_drift = 0) const noexcept {
      return finite && counts_ok() &&
             (max_drift <= 0 || momentum_drift <= max_drift);
    }
    /// Human-readable diagnosis of what failed ("" when ok()).
    std::string describe(double max_drift = 0) const;
    /// No audit tripped: checksums held, mass conserved, duplicate
    /// execution agreed, kinetic energy within the jump budget. Evaluated
    /// by the Supervisor on audited gates only.
    bool sdc_clean(const AuditConfig& audit) const noexcept {
      return checksum_mismatches == 0 && dup_mismatches == 0 &&
             mass_residual <= audit.mass_rtol &&
             (audit.kinetic_jump <= 0 || kinetic_jump <= 0 ||
              (kinetic_jump <= audit.kinetic_jump &&
               kinetic_jump >= 1.0 / audit.kinetic_jump));
    }
    /// Human-readable diagnosis of the audit findings ("" when clean).
    std::string describe_sdc(const AuditConfig& audit) const;
  };
  HealthReport health_check();

  /// In-place SDC recovery: restore the checkpoint at `path` on the live
  /// machine (elastic gio read + redistribution + overload refresh — no
  /// Machine teardown) and reset the audit window so the restored state
  /// seeds fresh baselines. Collective; throws if the checkpoint refuses
  /// to read back clean.
  void rollback(const std::string& path);

  /// Cosmic energy (Layzer-Irvine) diagnostics over active particles.
  /// kinetic  T = sum p^2 / (2 a^2),
  /// potential W = (1/2) sum Phi(x_i) with Phi = (3/2)(Omega_m/a) phi_c
  /// (PM potential only; the LI monitor T + W + int E (2T + W) dtau is
  /// conserved for PM-only runs — see tests/integration_test.cpp).
  struct EnergyDiagnostics {
    double kinetic = 0;
    double potential = 0;
  };
  EnergyDiagnostics energy();

  /// Checkpoint: one self-describing gio file at `path` (actives only;
  /// replicas are rebuilt on restore), written collectively through
  /// config().io_aggregators writer ranks with per-block CRC64 protection
  /// and an atomic tmp+rename publish. Collective.
  void write_checkpoint(const std::string& path);

  /// Restore from a checkpoint written with the *same configuration but any
  /// rank count*: blocks are read elastically, every CRC is verified (a
  /// corrupt checkpoint is refused with the damaged blocks listed),
  /// particles are redistributed to their domain owners, and the
  /// overloading refresh rebuilds the passive layer. Collective.
  void read_checkpoint(const std::string& path);

 private:
  void long_range_kick(double a0, double a1);
  void short_range_subcycles(double a0, double a1);
  void apply_short_kick(double coeff);
  void drift(double factor);

  /// Fire any due kFlipParticleMemory specs on this rank: flip the drawn
  /// bits in resident active particle state. Called at the top of step(),
  /// before the audit recomputes the invariance checksum.
  void apply_particle_memory_faults();
  /// Local audit work at the start of a step: memory-fault injection, then
  /// the payload-invariance recompute against the stash.
  void audit_begin_step();
  /// Local audit work at the end of a step: stash the post-refresh
  /// canonical checksum for the next step's window.
  void audit_end_step();
  /// Drop the stash and accumulated findings (initialize/rollback): the
  /// restored state seeds fresh baselines instead of tripping the window.
  void reset_audit_window();
  /// True when the gate after `step` falls on the audit cadence.
  bool audit_due(int step) const noexcept {
    return config_.audit.cadence > 0 && step > 0 &&
           step % config_.audit.cadence == 0;
  }

  /// Per-phase seconds since the previous call (sim + "poisson."-prefixed
  /// solver phases); advances the baseline.
  std::vector<std::pair<NameId, double>> ledger_phase_deltas();
  /// Counter deltas (gauges: absolute values) since the previous call;
  /// advances the baseline.
  std::vector<std::pair<NameId, double>> ledger_counter_samples();
  /// Publish per-phase timer totals (as phase.<name>.ns counters) and cost
  /// summary gauges into counters_, so a live /metrics scrape sees them
  /// without touching the race-unsafe TimerRegistry.
  void publish_metric_gauges();

  comm::Comm world_;
  cosmology::Cosmology cosmo_;
  SimulationConfig config_;
  mesh::BlockDecomp3D decomp_;
  std::unique_ptr<OverloadDomain> domain_;
  std::unique_ptr<mesh::PoissonSolver> poisson_;
  std::size_t grid_ghost_;
  tree::ShortRangeKernel kernel_;
  tree::ParticleArray particles_;
  float mass_scale_ = 1.0f;
  double a_ = 0.0;
  int steps_taken_ = 0;
  TimerRegistry timers_;
  tree::InteractionStats stats_;
  // Scratch short-range force accumulators.
  std::vector<float> sr_ax_, sr_ay_, sr_az_;
  // Resolved kernel variant (config knob, overridable by HACC_KERNEL) and
  // the persistent workspace that keeps the kernel phase allocation-free.
  tree::KernelVariant kernel_variant_ = tree::KernelVariant::kBatched;
  tree::ShortRangeWorkspace sr_workspace_;
  // Observability: per-rank sinks, the run ledger, and the delta baselines
  // record_step_ledger() differences against.
  obs::Tracer tracer_;
  obs::Counters counters_;
  obs::Ledger ledger_;
  obs::CostMap cost_map_;
  obs::HistogramSet histograms_;
  obs::Watchdog watchdog_;
  std::optional<std::array<double, 3>> momentum0_;
  std::vector<double> prev_phase_seconds_;     // indexed by NameId
  std::vector<std::uint64_t> prev_counters_;   // indexed by NameId
  std::vector<NameId> phase_metric_ids_;       // phase id -> phase.<x>.ns id
  // ---- SDC audit state ----
  // Local findings accumulate here between audited gates; health_check()
  // folds them into its allreduce and clears them once a gate on the audit
  // cadence has consumed them.
  struct AuditScratch {
    bool stash_valid = false;    ///< a checksum window is open
    std::uint64_t stash = 0;     ///< canonical checksum at last step end
    double checksum_mismatches = 0;
    double grid_mass = 0;        ///< sum of local interior sums per deposit
    double deposits = 0;         ///< deposits captured (same on all ranks)
    double dup_mismatches = 0;
    double dup_samples = 0;
    bool dup_pending = false;    ///< run duplicate execution this step
  };
  AuditScratch audit_;
  double prev_audit_kinetic_ = 0;  ///< KE at the previous audited gate
};

}  // namespace hacc::core
