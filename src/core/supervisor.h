// Supervised checkpoint-restart recovery (paper Sec. V).
//
// At the paper's scale — 1.6M ranks, multi-day campaigns — the mean time
// between failures is shorter than a run, so production HACC wraps the
// stepping loop in checkpoint/restart: periodic defensive checkpoints, and
// on failure an automatic restore from the newest checkpoint that still
// reads back clean. This module reproduces that control loop over the
// SimMPI runtime:
//
//   attempt:  restore newest *verified* checkpoint (or cold-start from ICs)
//             -> step; after each step run the cross-rank health check and
//                write a rotated, write-then-verified checkpoint on schedule
//   failure:  any rank death / deadlock timeout / payload corruption /
//             health violation aborts the machine with a diagnosis
//   recover:  re-verify the checkpoint chain newest-first (a checkpoint can
//             be damaged *after* it was written), restore from the first
//             good one, resume; capped retries with linear backoff.
//
// Elastic degraded mode: at scale the realistic failure mode is *losing
// capacity* — a replacement partition at the same width may simply not be
// there, and the campaign must keep making progress on fewer ranks rather
// than stall. When an ElasticPolicy other than kSameWidth is configured,
// the recovery step relaunches the machine at a reduced width chosen by the
// policy; the rank-count-elastic gio read path restores the last good
// checkpoint onto the new width (blocks re-partitioned, particles routed to
// their new domain owners by one alltoallv), the Cartesian decomposition and
// overload zones are rebuilt for the new width by the Simulation
// constructor, and the run resumes. Every width transition is recorded as
// fsync'd ledger events ("shrink", "resume_at_width"), so the degradation
// history of a campaign is auditable after the fact.
//
// Every decision is recorded as an event line in the run ledger, fsync'd
// before the run proceeds, so the recovery history survives the failures it
// documents. With SimulationConfig::canonical_order on (the default), a
// recovered run is bit-for-bit identical to an uninterrupted one.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "core/simulation.h"
#include "cosmology/background.h"
#include "obs/metrics.h"
#include "serve/metrics_server.h"

namespace hacc::core {

/// The rotated checkpoint chain of one run: `dir/ckpt_<step>.gio` files,
/// a `dir/latest` pointer (atomically updated via tmp+rename), and last-K
/// pruning. Path bookkeeping is serial; the checkpoint files themselves are
/// written collectively by Simulation::write_checkpoint.
class CheckpointSet {
 public:
  CheckpointSet(std::string dir, int keep);

  const std::string& dir() const noexcept { return dir_; }
  int keep() const noexcept { return keep_; }

  std::string path_for_step(int step) const;
  std::string latest_path() const;  ///< the `latest` pointer file

  /// Record `step` as the newest checkpoint: atomically rewrite `latest`
  /// (tmp+rename, both the file and the containing directory fsync'd — the
  /// rename itself must survive a power loss, not just the bytes) and
  /// unlink checkpoints beyond the last `keep`. Call on one rank only,
  /// after the checkpoint file is published.
  void publish(int step);

  /// Step named by the `latest` pointer, or -1 when absent/unreadable.
  int latest() const;

  /// Durably record an ABFT audit verdict for `step`'s checkpoint in a
  /// `ckpt_<step>.audit` sidecar (tmp+rename+fsync, like `latest`). The
  /// storage CRC says the *bytes* survived; the verdict says whether the
  /// *physics* they encode had passed an audit when written ("clean"), had
  /// not been audited yet ("unaudited"), or has since been implicated in a
  /// detected corruption window ("poisoned"). Restores skip "poisoned"
  /// checkpoints even though their CRCs verify — that is the whole point:
  /// a flip that happened *before* the checkpoint was written is inside
  /// the checksummed payload and invisible to gio::verify_file.
  void record_verdict(int step, const std::string& verdict);

  /// The recorded verdict for `step`, or "" when no sidecar exists
  /// (treat as "unaudited").
  std::string verdict(int step) const;

  std::string verdict_path_for_step(int step) const;

  /// Steps of all existing checkpoint files in `dir`, newest first. Scans
  /// the directory, not the pointer: recovery must see checkpoints even
  /// when `latest` itself was lost or points at a damaged file.
  std::vector<int> existing() const;

 private:
  std::string dir_;
  int keep_;
};

/// How the Supervisor picks the relaunch width after a failed attempt.
enum class ElasticRule {
  kSameWidth,       ///< always retry at the launch width (PR 4 behavior)
  kShrinkByFailed,  ///< drop as many ranks as actually died this attempt
  kHalve,           ///< halve the width (coarse but fast convergence)
};

/// Elastic degraded-mode policy: when and how far to shrink. The policy is
/// consulted once per failed attempt; it never grows the width back (a
/// shrink models capacity that is gone for the rest of the campaign).
struct ElasticPolicy {
  ElasticRule rule = ElasticRule::kSameWidth;
  /// Hard floor: never relaunch below this many ranks.
  int min_ranks = 1;
  /// Consecutive failures tolerated at a width before the policy shrinks;
  /// 1 = shrink on the first failure. A same-width transient (e.g. one
  /// corrupted message) then gets `failures_before_shrink - 1` full-width
  /// retries before capacity is given up.
  int failures_before_shrink = 1;

  /// Width of the next attempt after `failures_at_width` consecutive
  /// failures at `width`, of which `failed_ranks` ranks were root causes in
  /// the latest attempt (>= 1; collateral aborts are not counted).
  int next_width(int width, int failed_ranks, int failures_at_width) const;
};

/// Stable name of a rule ("same_width", "shrink_by_failed", "halve").
const char* elastic_rule_name(ElasticRule rule);

struct SupervisorConfig {
  SimulationConfig sim;    ///< sim.steps is the run target
  int nranks = 4;          ///< SimMPI machine width (the launch width)
  /// Degraded-mode recovery: how to reduce the width after failures.
  ElasticPolicy elastic;
  std::string checkpoint_dir;
  int checkpoint_every = 1;  ///< steps between defensive checkpoints
  int keep = 2;              ///< checkpoint rotation depth (last K)
  int max_retries = 3;       ///< recovery attempts after the first run
  double retry_backoff_s = 0;  ///< sleep attempt*backoff before retrying
  /// Health budget: max momentum-component drift from the first recorded
  /// value before the state is declared sick (<= 0 disables).
  double max_momentum_drift = 0;
  // ---- silent-data-corruption response (sim.audit is the detection side) --
  /// Extra scans of the checkpoint chain for a rollback candidate when the
  /// first scan finds none (covers transient shared-FS hiccups).
  int rollback_retries = 2;
  /// Sleep `try * rollback_backoff_s` between those scans.
  double rollback_backoff_s = 0;
  /// In-place rollbacks tolerated per attempt before an SDC detection
  /// escalates to the relaunch path instead — a state that keeps failing
  /// its audits after restore means the damage is upstream of this
  /// machine's memory (e.g. every surviving checkpoint is bad).
  int max_rollbacks = 4;
  /// Runtime options for every attempt (receive deadline, payload
  /// verification, fault plan).
  comm::MachineOptions machine;
  /// Live observability endpoint: -1 = off, 0 = bind an ephemeral loopback
  /// port (see Supervisor::metrics_port()), otherwise the port to bind.
  /// The server outlives individual attempts, so a campaign stays
  /// scrapeable through failures and degraded-width phases.
  int metrics_port = -1;
  /// Resume mode: scan the checkpoint chain on the *first* attempt too and
  /// restore the newest verified checkpoint instead of cold-starting — how
  /// a campaign orchestrator relaunches a run a previous process already
  /// advanced. A run with no usable checkpoint still cold-starts.
  bool resume = false;
  /// When set, each attempt's per-rank metrics sources register in this
  /// external hub (labeled `run_label`) instead of the Supervisor's own,
  /// and no private metrics server is started even when metrics_port >= 0:
  /// a campaign exposes one endpoint for all of its runs. Must outlive the
  /// Supervisor.
  obs::MetricsHub* shared_hub = nullptr;
  /// run="..." label attached to this run's series in a shared hub.
  std::string run_label;
};

struct SupervisorReport {
  bool completed = false;  ///< the run reached sim.steps
  int attempts = 0;        ///< machine launches (1 = no failure)
  int restores = 0;        ///< warm restarts from a checkpoint
  int sdc_detections = 0;  ///< audited gates that reported corruption
  int rollbacks = 0;       ///< in-place restores (no machine relaunch)
  int final_step = 0;
  std::string last_error;  ///< diagnosis of the last failed attempt ("")
  /// Wall seconds of failed attempts (failure detection latency included).
  double failed_attempt_seconds = 0;
  /// Wall seconds spent re-verifying the checkpoint chain before restores.
  double verify_seconds = 0;
  /// Wall seconds from the last failure being detected to the resumed
  /// machine running (verification + backoff; the bench's headline).
  double detect_to_resume_seconds = 0;
  // ---- elastic degraded-mode accounting ----
  int final_width = 0;  ///< rank count of the last attempt
  int shrinks = 0;      ///< width reductions taken by the policy
  /// Rank count of each attempt, in attempt order (size == attempts).
  std::vector<int> width_history;
  /// Per-width stepping throughput, first-use order: the degradation cost
  /// of running on fewer ranks (steps/sec before vs after a shrink).
  struct WidthStepStats {
    int width = 0;
    int steps = 0;          ///< steps completed at this width (all attempts)
    double step_seconds = 0;  ///< rank-0 wall seconds inside those steps
    double steps_per_sec() const noexcept {
      return step_seconds > 0 ? steps / step_seconds : 0;
    }
  };
  std::vector<WidthStepStats> step_stats;
};

/// Drives a whole simulation to completion across failures. Construct,
/// optionally set the test hooks, call run().
class Supervisor {
 public:
  Supervisor(const cosmology::Cosmology& cosmo, SupervisorConfig config);

  /// Test hook: called after attempt `attempt` failed, before the next
  /// attempt picks its restore candidate — the window in which real-world
  /// damage (e.g. a checkpoint corrupted on disk) is injected in tests.
  std::function<void(int attempt)> between_attempts;
  /// Test hook: called on every rank at the end of the successful attempt,
  /// with the machine still up (gather final state, assert invariants).
  std::function<void(Simulation&, comm::Comm&)> on_finished;
  /// Observer hook: every lifecycle event the Supervisor records
  /// (attempt_start, checkpoint, restore, shrink, ...), fired whether or
  /// not a ledger path is configured — a campaign orchestrator rolls these
  /// up into its fleet journal. Called from the control thread *and* from
  /// the rank-0 machine thread, so the observer must be thread-safe.
  std::function<void(const obs::EventRecord&)> on_event;
  /// Fired when the elastic policy shrinks the relaunch width
  /// (from_width > to_width), before the narrower attempt launches — a
  /// campaign pool reclaims the shed ranks here. Called on the control
  /// thread.
  std::function<void(int from_width, int to_width)> on_width_change;

  SupervisorReport run();

  const CheckpointSet& checkpoints() const noexcept { return checkpoints_; }

  /// The bound metrics port (-1 when config.metrics_port is -1 or run()
  /// has not started the server yet).
  int metrics_port() const noexcept {
    return metrics_server_ ? metrics_server_->port() : -1;
  }
  /// The live source registry behind /metrics: each attempt's ranks
  /// register their counter/histogram sinks here; drivers (e.g. a query
  /// service riding on the run) may add their own sources. With
  /// config.shared_hub set this *is* that shared hub.
  obs::MetricsHub& metrics_hub() noexcept {
    return config_.shared_hub != nullptr ? *config_.shared_hub : hub_;
  }

 private:
  void rank_main(comm::Comm& comm, const std::string& restore_path,
                 int restore_step, int attempt);
  void start_metrics_server();
  void record_event(const std::string& kind, int step, int attempt,
                    const std::string& detail);
  /// Accumulate one completed step into the per-width throughput stats
  /// (called on the rank-0 thread only; attempts are serial).
  void note_step(int width, double seconds);

  cosmology::Cosmology cosmo_;
  SupervisorConfig config_;
  CheckpointSet checkpoints_;
  SupervisorReport report_;
  int width_ = 0;  ///< rank count of the current/next attempt

  /// /healthz state: every field an atomic so the server threads read it
  /// while rank threads advance the run.
  struct HealthState {
    std::atomic<int> attempt{-1};
    std::atomic<int> width{0};
    std::atomic<int> step{0};
    std::atomic<int> last_checkpoint{-1};
    std::atomic<std::uint64_t> anomalies{0};
    std::atomic<bool> completed{false};
  };
  HealthState health_;
  obs::MetricsHub hub_;
  std::unique_ptr<serve::MetricsServer> metrics_server_;
};

}  // namespace hacc::core
