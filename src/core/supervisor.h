// Supervised checkpoint-restart recovery (paper Sec. V).
//
// At the paper's scale — 1.6M ranks, multi-day campaigns — the mean time
// between failures is shorter than a run, so production HACC wraps the
// stepping loop in checkpoint/restart: periodic defensive checkpoints, and
// on failure an automatic restore from the newest checkpoint that still
// reads back clean. This module reproduces that control loop over the
// SimMPI runtime:
//
//   attempt:  restore newest *verified* checkpoint (or cold-start from ICs)
//             -> step; after each step run the cross-rank health check and
//                write a rotated, write-then-verified checkpoint on schedule
//   failure:  any rank death / deadlock timeout / payload corruption /
//             health violation aborts the machine with a diagnosis
//   recover:  re-verify the checkpoint chain newest-first (a checkpoint can
//             be damaged *after* it was written), restore from the first
//             good one, resume; capped retries with linear backoff.
//
// Every decision is recorded as an event line in the run ledger, fsync'd
// before the run proceeds, so the recovery history survives the failures it
// documents. With SimulationConfig::canonical_order on (the default), a
// recovered run is bit-for-bit identical to an uninterrupted one.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "core/simulation.h"
#include "cosmology/background.h"

namespace hacc::core {

/// The rotated checkpoint chain of one run: `dir/ckpt_<step>.gio` files,
/// a `dir/latest` pointer (atomically updated via tmp+rename), and last-K
/// pruning. Path bookkeeping is serial; the checkpoint files themselves are
/// written collectively by Simulation::write_checkpoint.
class CheckpointSet {
 public:
  CheckpointSet(std::string dir, int keep);

  const std::string& dir() const noexcept { return dir_; }
  int keep() const noexcept { return keep_; }

  std::string path_for_step(int step) const;
  std::string latest_path() const;  ///< the `latest` pointer file

  /// Record `step` as the newest checkpoint: atomically rewrite `latest`
  /// (tmp+rename, fsync'd) and unlink checkpoints beyond the last `keep`.
  /// Call on one rank only, after the checkpoint file is published.
  void publish(int step);

  /// Step named by the `latest` pointer, or -1 when absent/unreadable.
  int latest() const;

  /// Steps of all existing checkpoint files in `dir`, newest first. Scans
  /// the directory, not the pointer: recovery must see checkpoints even
  /// when `latest` itself was lost or points at a damaged file.
  std::vector<int> existing() const;

 private:
  std::string dir_;
  int keep_;
};

struct SupervisorConfig {
  SimulationConfig sim;    ///< sim.steps is the run target
  int nranks = 4;          ///< SimMPI machine width
  std::string checkpoint_dir;
  int checkpoint_every = 1;  ///< steps between defensive checkpoints
  int keep = 2;              ///< checkpoint rotation depth (last K)
  int max_retries = 3;       ///< recovery attempts after the first run
  double retry_backoff_s = 0;  ///< sleep attempt*backoff before retrying
  /// Health budget: max momentum-component drift from the first recorded
  /// value before the state is declared sick (<= 0 disables).
  double max_momentum_drift = 0;
  /// Runtime options for every attempt (receive deadline, payload
  /// verification, fault plan).
  comm::MachineOptions machine;
};

struct SupervisorReport {
  bool completed = false;  ///< the run reached sim.steps
  int attempts = 0;        ///< machine launches (1 = no failure)
  int restores = 0;        ///< warm restarts from a checkpoint
  int final_step = 0;
  std::string last_error;  ///< diagnosis of the last failed attempt ("")
  /// Wall seconds of failed attempts (failure detection latency included).
  double failed_attempt_seconds = 0;
  /// Wall seconds spent re-verifying the checkpoint chain before restores.
  double verify_seconds = 0;
  /// Wall seconds from the last failure being detected to the resumed
  /// machine running (verification + backoff; the bench's headline).
  double detect_to_resume_seconds = 0;
};

/// Drives a whole simulation to completion across failures. Construct,
/// optionally set the test hooks, call run().
class Supervisor {
 public:
  Supervisor(const cosmology::Cosmology& cosmo, SupervisorConfig config);

  /// Test hook: called after attempt `attempt` failed, before the next
  /// attempt picks its restore candidate — the window in which real-world
  /// damage (e.g. a checkpoint corrupted on disk) is injected in tests.
  std::function<void(int attempt)> between_attempts;
  /// Test hook: called on every rank at the end of the successful attempt,
  /// with the machine still up (gather final state, assert invariants).
  std::function<void(Simulation&, comm::Comm&)> on_finished;

  SupervisorReport run();

  const CheckpointSet& checkpoints() const noexcept { return checkpoints_; }

 private:
  void rank_main(comm::Comm& comm, const std::string& restore_path,
                 int attempt);
  void record_event(const std::string& kind, int step, int attempt,
                    const std::string& detail);

  cosmology::Cosmology cosmo_;
  SupervisorConfig config_;
  CheckpointSet checkpoints_;
  SupervisorReport report_;
};

}  // namespace hacc::core
