#include "core/domain.h"

#include <cmath>
#include <limits>
#include <vector>

#include "obs/obs.h"

namespace hacc::core {

namespace {

const NameId kTrcRefresh = intern_name("refresh");
const NameId kCtrMigrated = obs::counter_id("refresh.migrated");
const NameId kCtrRefreshed = obs::counter_id("refresh.particles");
const NameId kGaugeActive = obs::gauge_id("refresh.active");
const NameId kGaugePassive = obs::gauge_id("refresh.passive");

}  // namespace

OverloadDomain::OverloadDomain(const mesh::BlockDecomp3D& decomp, int rank,
                               double overload)
    : decomp_(decomp),
      rank_(rank),
      box_(decomp.box_of(rank)),
      overload_(overload) {
  HACC_CHECK_MSG(overload_ >= 0.0, "negative overload depth");
  for (int d = 0; d < 3; ++d) {
    const std::size_t n = decomp.grid_dims()[static_cast<std::size_t>(d)];
    const int p = decomp.topology().dims()[static_cast<std::size_t>(d)];
    HACC_CHECK_MSG(
        overload_ <= static_cast<double>(n / static_cast<std::size_t>(p)),
        "overload depth exceeds the smallest domain extent");
  }
  build_images(rank_, my_images_);
  build_stencil();
}

void OverloadDomain::build_images(int owner,
                                  std::array<Image, 26>& out) const {
  const auto& dims = decomp_.grid_dims();
  const auto& topo = decomp_.topology();
  const auto coords = topo.coords(owner);
  std::size_t w = 0;
  for (int ox = -1; ox <= 1; ++ox) {
    for (int oy = -1; oy <= 1; ++oy) {
      for (int oz = -1; oz <= 1; ++oz) {
        if (ox == 0 && oy == 0 && oz == 0) continue;
        const std::array<int, 3> offset{ox, oy, oz};
        std::array<int, 3> ncoord{};
        Image& im = out[w++];
        for (int d = 0; d < 3; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          ncoord[sd] = coords[sd] + offset[sd];
          const int pd = topo.dims()[sd];
          im.shift[sd] = 0.0;
          if (ncoord[sd] < 0)
            im.shift[sd] = -static_cast<double>(dims[sd]);
          else if (ncoord[sd] >= pd)
            im.shift[sd] = static_cast<double>(dims[sd]);
        }
        im.nbr = topo.rank_of(ncoord);
        // The image's overload slab, in the owner's coordinate frame.
        const auto nbox = decomp_.box_of(im.nbr);
        const fft::Range* ranges[3] = {&nbox.x, &nbox.y, &nbox.z};
        for (int d = 0; d < 3; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          im.lo[sd] =
              static_cast<double>(ranges[d]->lo) + im.shift[sd] - overload_;
          im.hi[sd] =
              static_cast<double>(ranges[d]->hi) + im.shift[sd] + overload_;
        }
      }
    }
  }
}

void OverloadDomain::build_stencil() {
  const int p = decomp_.nranks();
  const auto& dims = decomp_.grid_dims();
  stencil_.clear();
  slot_of_.assign(static_cast<std::size_t>(p), -1);
  // All box bounds and shifts are integers, so the L-inf min-image distance
  // is exact in double and the <= threshold comparison has no rounding edge
  // (touching boxes have distance exactly 0 and always qualify).
  const double threshold = 2.0 * overload_;
  const fft::Range* mine[3] = {&box_.x, &box_.y, &box_.z};
  for (int r = 0; r < p; ++r) {
    const auto rbox = decomp_.box_of(r);
    const fft::Range* theirs[3] = {&rbox.x, &rbox.y, &rbox.z};
    double best = std::numeric_limits<double>::infinity();
    for (int sx = -1; sx <= 1; ++sx) {
      for (int sy = -1; sy <= 1; ++sy) {
        for (int sz = -1; sz <= 1; ++sz) {
          const std::array<int, 3> s{sx, sy, sz};
          double dist = 0.0;
          for (int d = 0; d < 3; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            const double shift = static_cast<double>(s[sd]) *
                                 static_cast<double>(dims[sd]);
            const double alo = static_cast<double>(mine[d]->lo);
            const double ahi = static_cast<double>(mine[d]->hi);
            const double blo = static_cast<double>(theirs[d]->lo) + shift;
            const double bhi = static_cast<double>(theirs[d]->hi) + shift;
            const double gap = std::max(blo - ahi, alo - bhi);
            if (gap > dist) dist = gap;
          }
          if (dist < best) best = dist;
        }
      }
    }
    if (best <= threshold) {
      slot_of_[static_cast<std::size_t>(r)] =
          static_cast<int>(stencil_.size());
      stencil_.push_back(r);
    }
  }
}

bool OverloadDomain::owns(float x, float y, float z) const noexcept {
  return static_cast<double>(x) >= static_cast<double>(box_.x.lo) &&
         static_cast<double>(x) < static_cast<double>(box_.x.hi) &&
         static_cast<double>(y) >= static_cast<double>(box_.y.lo) &&
         static_cast<double>(y) < static_cast<double>(box_.y.hi) &&
         static_cast<double>(z) >= static_cast<double>(box_.z.lo) &&
         static_cast<double>(z) < static_cast<double>(box_.z.hi);
}

std::array<std::size_t, 2> OverloadDomain::census(
    const tree::ParticleArray& p) const {
  std::array<std::size_t, 2> counts{0, 0};
  for (std::size_t i = 0; i < p.size(); ++i)
    ++counts[p.role[i] == tree::Role::kActive ? 0 : 1];
  return counts;
}

RefreshStats OverloadDomain::refresh(comm::Comm& comm,
                                     tree::ParticleArray& particles) const {
  obs::TraceScope trace(kTrcRefresh);
  const auto& dims = decomp_.grid_dims();
  HACC_CHECK(comm.size() == decomp_.nranks());

  auto wrap = [&](float v, int axis) {
    const auto n = static_cast<double>(dims[static_cast<std::size_t>(axis)]);
    double w = std::fmod(static_cast<double>(v), n);
    if (w < 0) w += n;
    if (w >= n) w = 0.0;
    // The float cast can round w = n - epsilon back up to exactly n,
    // escaping the half-open [0, n); re-check after the narrowing.
    auto f = static_cast<float>(w);
    if (f >= static_cast<float>(n)) f = 0.0f;
    return f;
  };

  // Pass 0: drop all passive replicas and wrap actives into [0, N).
  for (std::size_t i = 0; i < particles.size();) {
    if (particles.role[i] == tree::Role::kPassive) {
      particles.remove_unordered(i);
      continue;
    }
    particles.x[i] = wrap(particles.x[i], 0);
    particles.y[i] = wrap(particles.y[i], 1);
    particles.z[i] = wrap(particles.z[i], 2);
    ++i;
  }

  const std::size_t n = particles.size();
  const std::size_t nslots = stencil_.size();
  auto slot = [&](int r) {
    const int s = slot_of_[static_cast<std::size_t>(r)];
    HACC_CHECK_MSG(s >= 0, "particle drifted beyond the refresh stencil");
    return static_cast<std::size_t>(s);
  };

  // Pass A: resolve every active's owner and count the packets each stencil
  // slot will carry: a role-0 migrant packet for leavers, plus one role-1
  // replica packet per owner image whose overload slab contains the
  // particle. Migrant replicas are computed here, on the new owner's
  // behalf, from *its* images — that fuses the historical second exchange
  // into this one.
  owners_.resize(n);
  send_counts_.assign(nslots, 0);
  std::array<Image, 26> mig_images;
  std::size_t migrated = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double px = particles.x[i], py = particles.y[i],
                 pz = particles.z[i];
    int owner = rank_;
    const std::array<Image, 26>* imgs = &my_images_;
    if (!owns(particles.x[i], particles.y[i], particles.z[i])) {
      owner = decomp_.owner_of(static_cast<std::size_t>(particles.x[i]),
                               static_cast<std::size_t>(particles.y[i]),
                               static_cast<std::size_t>(particles.z[i]));
      ++migrated;
      ++send_counts_[slot(owner)];
      build_images(owner, mig_images);
      imgs = &mig_images;
    }
    owners_[i] = owner;
    for (const Image& im : *imgs) {
      if (px < im.lo[0] || px >= im.hi[0] || py < im.lo[1] ||
          py >= im.hi[1] || pz < im.lo[2] || pz >= im.hi[2])
        continue;
      ++send_counts_[slot(im.nbr)];
    }
  }

  // Pass B: pack directly into the flat send buffer at precomputed cursor
  // offsets — no per-rank staging vectors, no concatenation copy.
  cursors_.resize(nslots);
  std::size_t total = 0;
  for (std::size_t s = 0; s < nslots; ++s) {
    cursors_[s] = total;
    total += send_counts_[s];
  }
  send_buf_.resize(total);
  for (std::size_t i = 0; i < n; ++i) {
    const double px = particles.x[i], py = particles.y[i],
                 pz = particles.z[i];
    const int owner = owners_[i];
    const std::array<Image, 26>* imgs = &my_images_;
    if (owner != rank_) {
      send_buf_[cursors_[slot(owner)]++] = PackedParticle{
          particles.x[i], particles.y[i], particles.z[i], particles.vx[i],
          particles.vy[i], particles.vz[i], particles.mass[i], 0,
          particles.id[i]};
      build_images(owner, mig_images);
      imgs = &mig_images;
    }
    for (const Image& im : *imgs) {
      if (px < im.lo[0] || px >= im.hi[0] || py < im.lo[1] ||
          py >= im.hi[1] || pz < im.lo[2] || pz >= im.hi[2])
        continue;
      // Position expressed in the receiver's frame.
      send_buf_[cursors_[slot(im.nbr)]++] = PackedParticle{
          static_cast<float>(px - im.shift[0]),
          static_cast<float>(py - im.shift[1]),
          static_cast<float>(pz - im.shift[2]), particles.vx[i],
          particles.vy[i], particles.vz[i], particles.mass[i], 1,
          particles.id[i]};
    }
  }

  // Migrants are packed; drop them (mirroring each swap-with-last in
  // owners_ keeps the two arrays aligned).
  for (std::size_t i = 0; i < particles.size();) {
    if (owners_[i] != rank_) {
      particles.remove_unordered(i);
      owners_[i] = owners_.back();
      owners_.pop_back();
      continue;
    }
    ++i;
  }

  // THE exchange: one sparse neighbor_alltoallv carrying both roles.
  comm.neighbor_alltoallv(std::span<const int>(stencil_),
                          std::span<const PackedParticle>(send_buf_),
                          std::span<const std::size_t>(send_counts_),
                          recv_buf_, recv_counts_);
  for (const PackedParticle& q : recv_buf_) {
    if (q.role == 0) {
      HACC_ASSERT(owns(q.x, q.y, q.z));
      particles.push_back(q.x, q.y, q.z, q.vx, q.vy, q.vz, q.mass, q.id,
                          tree::Role::kActive);
    } else {
      particles.push_back(q.x, q.y, q.z, q.vx, q.vy, q.vz, q.mass, q.id,
                          tree::Role::kPassive);
    }
  }

  // Canonical order now covers the whole array (actives and passives were
  // delivered together), so every float summation order until the next
  // refresh — and across restarts — is independent of arrival history.
  if (canonical_order_) particles.sort_by_id();

  RefreshStats stats;
  const auto counts2 = census(particles);
  stats.active = counts2[0];
  stats.passive = counts2[1];
  stats.migrated = migrated;
  obs::add_counter(kCtrMigrated, stats.migrated);
  obs::add_counter(kCtrRefreshed, stats.active + stats.passive);
  obs::set_gauge(kGaugeActive, stats.active);
  obs::set_gauge(kGaugePassive, stats.passive);
  return stats;
}

}  // namespace hacc::core
