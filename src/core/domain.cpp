#include "core/domain.h"

#include <cmath>
#include <vector>

#include "obs/obs.h"

namespace hacc::core {

namespace {

const NameId kTrcRefresh = intern_name("refresh");
const NameId kCtrMigrated = obs::counter_id("refresh.migrated");
const NameId kCtrRefreshed = obs::counter_id("refresh.particles");
const NameId kGaugeActive = obs::gauge_id("refresh.active");
const NameId kGaugePassive = obs::gauge_id("refresh.passive");

/// Wire format for particle exchange (trivially copyable).
struct PackedParticle {
  float x, y, z, vx, vy, vz, mass;
  std::uint32_t role;
  std::uint64_t id;
};

}  // namespace

OverloadDomain::OverloadDomain(const mesh::BlockDecomp3D& decomp, int rank,
                               double overload)
    : decomp_(decomp),
      rank_(rank),
      box_(decomp.box_of(rank)),
      overload_(overload) {
  HACC_CHECK_MSG(overload_ >= 0.0, "negative overload depth");
  for (int d = 0; d < 3; ++d) {
    const std::size_t n = decomp.grid_dims()[static_cast<std::size_t>(d)];
    const int p = decomp.topology().dims()[static_cast<std::size_t>(d)];
    HACC_CHECK_MSG(
        overload_ <= static_cast<double>(n / static_cast<std::size_t>(p)),
        "overload depth exceeds the smallest domain extent");
  }
}

bool OverloadDomain::owns(float x, float y, float z) const noexcept {
  return static_cast<double>(x) >= static_cast<double>(box_.x.lo) &&
         static_cast<double>(x) < static_cast<double>(box_.x.hi) &&
         static_cast<double>(y) >= static_cast<double>(box_.y.lo) &&
         static_cast<double>(y) < static_cast<double>(box_.y.hi) &&
         static_cast<double>(z) >= static_cast<double>(box_.z.lo) &&
         static_cast<double>(z) < static_cast<double>(box_.z.hi);
}

std::array<std::size_t, 2> OverloadDomain::census(
    const tree::ParticleArray& p) const {
  std::array<std::size_t, 2> counts{0, 0};
  for (std::size_t i = 0; i < p.size(); ++i)
    ++counts[p.role[i] == tree::Role::kActive ? 0 : 1];
  return counts;
}

RefreshStats OverloadDomain::refresh(comm::Comm& comm,
                                     tree::ParticleArray& particles) const {
  obs::TraceScope trace(kTrcRefresh);
  const auto& dims = decomp_.grid_dims();
  const auto& topo = decomp_.topology();
  const int p = comm.size();
  HACC_CHECK(p == decomp_.nranks());

  auto wrap = [&](float v, int axis) {
    const auto n = static_cast<double>(dims[static_cast<std::size_t>(axis)]);
    double w = std::fmod(static_cast<double>(v), n);
    if (w < 0) w += n;
    if (w >= n) w = 0.0;
    // The float cast can round w = n - epsilon back up to exactly n,
    // escaping the half-open [0, n); re-check after the narrowing.
    auto f = static_cast<float>(w);
    if (f >= static_cast<float>(n)) f = 0.0f;
    return f;
  };

  // Exchange helper: route per-destination packets through one all-to-all.
  auto exchange = [&](std::vector<std::vector<PackedParticle>>& outbound) {
    std::vector<PackedParticle> send;
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] =
          outbound[static_cast<std::size_t>(r)].size();
      send.insert(send.end(), outbound[static_cast<std::size_t>(r)].begin(),
                  outbound[static_cast<std::size_t>(r)].end());
    }
    std::vector<std::size_t> rcounts;
    return comm.alltoallv(std::span<const PackedParticle>(send),
                          std::span<const std::size_t>(counts), rcounts);
  };

  // Phase 1: drop passives, wrap actives, route leavers to their owner.
  std::vector<std::vector<PackedParticle>> outbound(
      static_cast<std::size_t>(p));
  std::size_t migrated = 0;
  for (std::size_t i = 0; i < particles.size();) {
    if (particles.role[i] == tree::Role::kPassive) {
      particles.remove_unordered(i);
      continue;
    }
    particles.x[i] = wrap(particles.x[i], 0);
    particles.y[i] = wrap(particles.y[i], 1);
    particles.z[i] = wrap(particles.z[i], 2);
    if (!owns(particles.x[i], particles.y[i], particles.z[i])) {
      const int owner = decomp_.owner_of(
          static_cast<std::size_t>(particles.x[i]),
          static_cast<std::size_t>(particles.y[i]),
          static_cast<std::size_t>(particles.z[i]));
      outbound[static_cast<std::size_t>(owner)].push_back(PackedParticle{
          particles.x[i], particles.y[i], particles.z[i], particles.vx[i],
          particles.vy[i], particles.vz[i], particles.mass[i], 0,
          particles.id[i]});
      particles.remove_unordered(i);
      ++migrated;
      continue;
    }
    ++i;
  }
  // Deliver migrants *before* building replicas, so arrivals are replicated
  // to their new neighbors in the same refresh.
  for (const auto& q : exchange(outbound)) {
    HACC_ASSERT(owns(q.x, q.y, q.z));
    particles.push_back(q.x, q.y, q.z, q.vx, q.vy, q.vz, q.mass, q.id,
                        tree::Role::kActive);
  }
  for (auto& v : outbound) v.clear();

  // The array holds exactly the actives at this point; sorting them by id
  // makes phases 2/3 — and every force summation until the next refresh —
  // independent of arrival/removal history (restart reproducibility).
  if (canonical_order_) particles.sort_by_id();

  // Phase 2: for every neighbor image, queue shifted passive replicas.
  // An image is a neighbor rank viewed at a periodic offset: its domain box
  // shifted by (sx, sy, sz) in {-N, 0, +N}^3 so that it is adjacent to ours.
  const auto my_coords = topo.coords(rank_);
  for (int ox = -1; ox <= 1; ++ox) {
    for (int oy = -1; oy <= 1; ++oy) {
      for (int oz = -1; oz <= 1; ++oz) {
        if (ox == 0 && oy == 0 && oz == 0) continue;
        const std::array<int, 3> offset{ox, oy, oz};
        std::array<int, 3> ncoord{};
        std::array<double, 3> shift{};
        for (int d = 0; d < 3; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          ncoord[sd] = my_coords[sd] + offset[sd];
          const int pd = topo.dims()[sd];
          shift[sd] = 0.0;
          if (ncoord[sd] < 0)
            shift[sd] = -static_cast<double>(dims[sd]);
          else if (ncoord[sd] >= pd)
            shift[sd] = static_cast<double>(dims[sd]);
        }
        const int nbr = topo.rank_of(ncoord);
        const auto nbox = decomp_.box_of(nbr);
        // The image's overload slab, in MY coordinate frame.
        std::array<double, 3> lo{}, hi{};
        const fft::Range* ranges[3] = {&nbox.x, &nbox.y, &nbox.z};
        for (int d = 0; d < 3; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          lo[sd] = static_cast<double>(ranges[d]->lo) + shift[sd] - overload_;
          hi[sd] = static_cast<double>(ranges[d]->hi) + shift[sd] + overload_;
        }
        for (std::size_t i = 0; i < particles.size(); ++i) {
          const double px = particles.x[i], py = particles.y[i],
                       pz = particles.z[i];
          if (px < lo[0] || px >= hi[0] || py < lo[1] || py >= hi[1] ||
              pz < lo[2] || pz >= hi[2])
            continue;
          // Position expressed in the receiver's frame.
          outbound[static_cast<std::size_t>(nbr)].push_back(PackedParticle{
              static_cast<float>(px - shift[0]),
              static_cast<float>(py - shift[1]),
              static_cast<float>(pz - shift[2]), particles.vx[i],
              particles.vy[i], particles.vz[i], particles.mass[i], 1,
              particles.id[i]});
        }
      }
    }
  }

  // Phase 3: deliver the passive replicas.
  for (const auto& q : exchange(outbound)) {
    particles.push_back(q.x, q.y, q.z, q.vx, q.vy, q.vz, q.mass, q.id,
                        tree::Role::kPassive);
  }

  RefreshStats stats;
  const auto counts2 = census(particles);
  stats.active = counts2[0];
  stats.passive = counts2[1];
  stats.migrated = migrated;
  obs::add_counter(kCtrMigrated, stats.migrated);
  obs::add_counter(kCtrRefreshed, stats.active + stats.passive);
  obs::set_gauge(kGaugeActive, stats.active);
  obs::set_gauge(kGaugePassive, stats.passive);
  return stats;
}

}  // namespace hacc::core
