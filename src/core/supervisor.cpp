#include "core/supervisor.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <thread>

#include "comm/fault.h"
#include "gio/gio.h"
#include "obs/ledger.h"
#include "util/error.h"
#include "util/timer.h"

namespace hacc::core {

namespace fs = std::filesystem;

namespace {
constexpr const char* kCkptPrefix = "ckpt_";
constexpr const char* kCkptSuffix = ".gio";

/// Durably record a completed rename in its directory: the fsync of the
/// renamed *file* makes the bytes durable, but the directory entry created
/// by the rename lives in the directory's own metadata — without this a
/// power loss can roll the rename back and leave a stale (or no) pointer.
void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: not all filesystems allow dir opens
  ::fsync(fd);
  ::close(fd);
}
}  // namespace

CheckpointSet::CheckpointSet(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(std::max(keep, 1)) {}

std::string CheckpointSet::path_for_step(int step) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%06d%s", kCkptPrefix, step,
                kCkptSuffix);
  return dir_ + "/" + name;
}

std::string CheckpointSet::latest_path() const { return dir_ + "/latest"; }

void CheckpointSet::publish(int step) {
  // Atomic pointer update: the `latest` file always names a checkpoint
  // that was completely written and verified, never a partial state.
  const std::string tmp = latest_path() + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    HACC_CHECK_MSG(f != nullptr, "cannot write " + tmp);
    const std::string body = std::to_string(step) + "\n";
    std::fwrite(body.data(), 1, body.size(), f);
    std::fflush(f);
    ::fsync(fileno(f));
    std::fclose(f);
  }
  HACC_CHECK_MSG(std::rename(tmp.c_str(), latest_path().c_str()) == 0,
                 "cannot publish " + latest_path());
  fsync_directory(dir_);  // make the rename itself crash-durable
  // Rotate: drop everything older than the last `keep_` checkpoints,
  // including their audit-verdict sidecars.
  const std::vector<int> steps = existing();
  for (std::size_t i = static_cast<std::size_t>(keep_); i < steps.size(); ++i) {
    std::remove(path_for_step(steps[i]).c_str());
    std::remove(verdict_path_for_step(steps[i]).c_str());
  }
}

std::string CheckpointSet::verdict_path_for_step(int step) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%06d.audit", kCkptPrefix, step);
  return dir_ + "/" + name;
}

void CheckpointSet::record_verdict(int step, const std::string& verdict) {
  const std::string path = verdict_path_for_step(step);
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    HACC_CHECK_MSG(f != nullptr, "cannot write " + tmp);
    const std::string body = verdict + "\n";
    std::fwrite(body.data(), 1, body.size(), f);
    std::fflush(f);
    ::fsync(fileno(f));
    std::fclose(f);
  }
  HACC_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "cannot publish " + path);
  fsync_directory(dir_);
}

std::string CheckpointSet::verdict(int step) const {
  std::FILE* f = std::fopen(verdict_path_for_step(step).c_str(), "rb");
  if (f == nullptr) return "";
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string v(buf, n);
  while (!v.empty() && (v.back() == '\n' || v.back() == '\r')) v.pop_back();
  return v;
}

int CheckpointSet::latest() const {
  std::FILE* f = std::fopen(latest_path().c_str(), "rb");
  if (f == nullptr) return -1;
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return -1;
  return std::atoi(buf);
}

std::vector<int> CheckpointSet::existing() const {
  std::vector<int> steps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const std::size_t plen = std::char_traits<char>::length(kCkptPrefix);
    const std::size_t slen = std::char_traits<char>::length(kCkptSuffix);
    if (name.size() <= plen + slen || name.compare(0, plen, kCkptPrefix) != 0 ||
        name.compare(name.size() - slen, slen, kCkptSuffix) != 0)
      continue;
    const std::string digits = name.substr(plen, name.size() - plen - slen);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    steps.push_back(std::atoi(digits.c_str()));
  }
  std::sort(steps.rbegin(), steps.rend());
  return steps;
}

int ElasticPolicy::next_width(int width, int failed_ranks,
                              int failures_at_width) const {
  if (rule == ElasticRule::kSameWidth) return width;
  if (failures_at_width < failures_before_shrink) return width;
  int next = width;
  switch (rule) {
    case ElasticRule::kSameWidth:
      break;
    case ElasticRule::kShrinkByFailed:
      next = width - std::max(failed_ranks, 1);
      break;
    case ElasticRule::kHalve:
      next = width / 2;
      break;
  }
  return std::clamp(next, std::max(min_ranks, 1), width);
}

const char* elastic_rule_name(ElasticRule rule) {
  switch (rule) {
    case ElasticRule::kSameWidth: return "same_width";
    case ElasticRule::kShrinkByFailed: return "shrink_by_failed";
    case ElasticRule::kHalve: return "halve";
  }
  return "?";
}

Supervisor::Supervisor(const cosmology::Cosmology& cosmo,
                       SupervisorConfig config)
    : cosmo_(cosmo),
      config_(std::move(config)),
      checkpoints_(config_.checkpoint_dir, config_.keep),
      width_(config_.nranks) {
  HACC_CHECK_MSG(!config_.checkpoint_dir.empty(),
                 "Supervisor needs a checkpoint directory");
  HACC_CHECK(config_.checkpoint_every >= 1 && config_.nranks >= 1);
  HACC_CHECK_MSG(config_.elastic.min_ranks >= 1 &&
                     config_.elastic.min_ranks <= config_.nranks,
                 "ElasticPolicy::min_ranks must be in [1, nranks]");
  HACC_CHECK(config_.elastic.failures_before_shrink >= 1);
  fs::create_directories(config_.checkpoint_dir);
}

void Supervisor::note_step(int width, double seconds) {
  for (auto& s : report_.step_stats) {
    if (s.width != width) continue;
    ++s.steps;
    s.step_seconds += seconds;
    return;
  }
  report_.step_stats.push_back({width, 1, seconds});
}

void Supervisor::record_event(const std::string& kind, int step, int attempt,
                              const std::string& detail) {
  const obs::EventRecord e{kind, step, attempt, detail};
  if (on_event) on_event(e);
  if (config_.sim.ledger_path.empty()) return;
  obs::Ledger::append_event_to(config_.sim.ledger_path, e);
}

void Supervisor::start_metrics_server() {
  // With a shared hub the campaign owns the one endpoint for all runs.
  if (config_.shared_hub != nullptr) return;
  if (config_.metrics_port < 0 || metrics_server_) return;
  serve::MetricsServer::Config mcfg;
  mcfg.port = config_.metrics_port;
  metrics_server_ = std::make_unique<serve::MetricsServer>(mcfg);
  metrics_server_->set_metrics_handler([this] { return hub_.render(); });
  metrics_server_->set_healthz_handler([this] {
    const bool done = health_.completed.load(std::memory_order_relaxed);
    std::string body = "{\"status\":\"";
    body += done ? "ok" : "running";
    body += "\",\"attempt\":" +
            std::to_string(health_.attempt.load(std::memory_order_relaxed));
    body += ",\"width\":" +
            std::to_string(health_.width.load(std::memory_order_relaxed));
    body += ",\"step\":" +
            std::to_string(health_.step.load(std::memory_order_relaxed));
    body += ",\"last_checkpoint_step\":" +
            std::to_string(
                health_.last_checkpoint.load(std::memory_order_relaxed));
    body += ",\"anomalies\":" +
            std::to_string(health_.anomalies.load(std::memory_order_relaxed));
    body += ",\"completed\":";
    body += done ? "true" : "false";
    body += "}";
    return body;
  });
}

void Supervisor::rank_main(comm::Comm& comm, const std::string& restore_path,
                           int restore_step, int attempt) {
  Simulation sim(comm, cosmo_, config_.sim);
  // Register this rank's scrape sinks for the lifetime of the attempt.
  // Declared after `sim`, so unwinding removes the source from the hub
  // before the sinks it points at are destroyed.
  struct HubGuard {
    obs::MetricsHub* hub;
    int handle;
    ~HubGuard() {
      if (hub != nullptr) hub->remove(handle);
    }
  } hub_guard{nullptr, -1};
  if (metrics_server_ || config_.shared_hub != nullptr) {
    obs::MetricsHub& hub = metrics_hub();
    hub_guard.hub = &hub;
    hub_guard.handle = hub.add(obs::MetricsSource{
        comm.rank(), &sim.counters(), &sim.histograms(), config_.run_label});
  }
  const bool ledger_on = !config_.sim.ledger_path.empty();
  const bool root = comm.rank() == 0;
  // Root-side event sink: the run ledger (when configured) plus the
  // on_event observer (always) — call sites guard on `root` so each event
  // is emitted exactly once per machine.
  auto emit = [&](const obs::EventRecord& e) {
    if (ledger_on) sim.mutable_ledger().append_event(e);
    if (on_event) on_event(e);
  };
  if (ledger_on && root) {
    // Attempt 0 of a fresh run owns the file; recovery attempts (and
    // resume-mode relaunches) append below the records the earlier attempts
    // already made durable.
    sim.mutable_ledger().stream_to(config_.sim.ledger_path,
                                   /*append=*/attempt > 0 || config_.resume);
  }
  if (root)
    emit(obs::EventRecord{
        "attempt_start", -1, attempt,
        restore_path.empty() ? std::string("cold start")
                             : "restore from " + restore_path});
  if (restore_path.empty()) {
    sim.initialize();
  } else {
    sim.read_checkpoint(restore_path);
  }

  // SDC bookkeeping. Both are per-rank locals that stay in lockstep: every
  // rank sees the same reduced HealthReport, so every rank takes the same
  // branches. `last_clean_audit` bounds the corruption window a detection
  // poisons: anything checkpointed after the last audited-clean gate may
  // hold the flip inside a CRC-clean payload.
  int last_clean_audit = std::max(0, restore_step);
  int rollbacks_taken = 0;

  while (sim.steps_taken() < config_.sim.steps) {
    // Announce the step to fault injection: a scheduled kill fires here, on
    // the victim rank, exactly once across all supervisor attempts.
    comm::fault::set_step(sim.steps_taken() + 1);
    Timer step_timer;
    sim.step();
    // Per-width throughput: the degradation cost of a shrink (attempts are
    // serial, so the rank-0 thread is the only writer).
    if (root) note_step(comm.size(), step_timer.elapsed());
    if (ledger_on) sim.record_step_ledger();
    if (root) {
      health_.step.store(sim.steps_taken(), std::memory_order_relaxed);
      health_.anomalies.store(sim.anomaly_count(), std::memory_order_relaxed);
    }

    // Health guards before the state can be checkpointed: a checkpoint of
    // sick state would poison every later recovery. The report is
    // identical on all ranks, so all ranks take the same branch below.
    const Simulation::HealthReport health = sim.health_check();
    const bool sdc_ok =
        !health.audited || health.sdc_clean(config_.sim.audit);
    if (health.audited && root) {
      emit(obs::EventRecord{
          "audit", sim.steps_taken(), attempt,
          sdc_ok ? "clean" : health.describe_sdc(config_.sim.audit)});
    }
    if (health.audited && sdc_ok) last_clean_audit = sim.steps_taken();

    // SDC response ladder, evaluated *before* the hard health throw: an
    // in-place rollback on the live machine is far cheaper than tearing it
    // down and relaunching, and a flip large enough to also trip the
    // momentum/nonfinite guards is still just corrupted state — restore it.
    if (!sdc_ok) {
      const int detect_step = sim.steps_taken();
      const std::string what = health.describe_sdc(config_.sim.audit);
      if (root) {
        ++report_.sdc_detections;
        sim.mutable_watchdog().note(obs::Anomaly{"sdc", 1.0, what});
        health_.anomalies.store(sim.anomaly_count(),
                                std::memory_order_relaxed);
        emit(obs::EventRecord{"sdc_detected", detect_step, attempt, what});
        // The flip happened somewhere in (last clean audit, now]: every
        // checkpoint written in that window may hold the corruption inside
        // a CRC-clean payload. Poison them durably so neither this ladder
        // nor a later relaunch restores one.
        for (const int cs : checkpoints_.existing())
          if (cs > last_clean_audit && cs <= detect_step)
            checkpoints_.record_verdict(cs, "poisoned");
      }
      if (++rollbacks_taken > config_.max_rollbacks) {
        const std::string msg =
            "SDC rollback budget exhausted (" +
            std::to_string(config_.max_rollbacks) + ") after step " +
            std::to_string(detect_step) + ": " + what;
        if (root)
          emit(obs::EventRecord{"rollback_failed", detect_step, attempt, msg});
        throw Error(msg);
      }
      // Pick the newest checkpoint that is neither poisoned nor damaged on
      // disk; rescan with backoff to ride out transient FS trouble.
      int candidate = -1;
      for (int t = 0; t <= config_.rollback_retries && candidate < 0; ++t) {
        if (t > 0 && config_.rollback_backoff_s > 0)
          std::this_thread::sleep_for(std::chrono::duration<double>(
              config_.rollback_backoff_s * t));
        if (root) {
          for (const int cs : checkpoints_.existing()) {
            const std::string path = checkpoints_.path_for_step(cs);
            if (checkpoints_.verdict(cs) == "poisoned") {
              if (t == 0)
                emit(obs::EventRecord{"checkpoint_rejected", cs, attempt,
                                      path + ": audit verdict poisoned"});
              continue;
            }
            if (!gio::verify_file(path).ok) {
              if (t == 0)
                emit(obs::EventRecord{"checkpoint_rejected", cs, attempt,
                                      path + ": failed re-verification"});
              continue;
            }
            candidate = cs;
            break;
          }
        }
        candidate = comm.bcast_value(candidate, 0);
      }
      if (candidate < 0) {
        // Escalate: no state on disk is trustworthy at this width. The
        // machine-level catch in run() owns what happens next (relaunch,
        // possibly elastic, possibly cold).
        const std::string msg =
            "SDC detected after step " + std::to_string(detect_step) +
            " and no audit-clean checkpoint is restorable: " + what;
        if (root)
          emit(obs::EventRecord{"rollback_failed", detect_step, attempt, msg});
        throw Error(msg);
      }
      // In-place restore on the live machine: no teardown, no relaunch. A
      // read failure here (the file died between verify and read) escapes
      // to run()'s catch and escalates exactly like any other rank fault.
      sim.rollback(checkpoints_.path_for_step(candidate));
      last_clean_audit = candidate;
      if (root) {
        ++report_.rollbacks;
        health_.step.store(sim.steps_taken(), std::memory_order_relaxed);
        emit(obs::EventRecord{"rollback", candidate, attempt,
                              checkpoints_.path_for_step(candidate)});
        emit(obs::EventRecord{
            "resume", candidate, attempt,
            "in-place resume at step " + std::to_string(candidate) +
                " (no relaunch)"});
      }
      continue;  // the corrupted step is never checkpointed
    }

    if (!health.ok(config_.max_momentum_drift)) {
      const std::string what =
          "health check failed after step " +
          std::to_string(sim.steps_taken()) + ": " +
          health.describe(config_.max_momentum_drift);
      if (root)
        emit(obs::EventRecord{"health_check_failed", sim.steps_taken(),
                              attempt, what});
      throw Error(what);
    }

    const int s = sim.steps_taken();
    if (s % config_.checkpoint_every == 0 || s == config_.sim.steps) {
      const std::string path = checkpoints_.path_for_step(s);
      sim.write_checkpoint(path);  // write-then-verify inside (collective)
      if (root) {
        checkpoints_.publish(s);
        // The verdict rides with the checkpoint: restores prefer state
        // that had passed a full audit at the moment it was written.
        checkpoints_.record_verdict(
            s, health.audited && sdc_ok ? "clean" : "unaudited");
        health_.last_checkpoint.store(s, std::memory_order_relaxed);
        emit(obs::EventRecord{"checkpoint", s, attempt, path});
      }
      comm.barrier();  // pointer update + rotation visible everywhere
    }
  }
  if (on_finished) on_finished(sim, comm);
}

SupervisorReport Supervisor::run() {
  report_ = SupervisorReport{};
  width_ = config_.nranks;
  start_metrics_server();  // outlives attempts: scrapeable through failures
  health_.completed.store(false, std::memory_order_relaxed);
  int failures_at_width = 0;
  std::optional<Timer> recover_timer;  // starts when a failure is detected
  for (int attempt = 0;; ++attempt) {
    report_.attempts = attempt + 1;
    report_.width_history.push_back(width_);
    report_.final_width = width_;
    health_.attempt.store(attempt, std::memory_order_relaxed);
    health_.width.store(width_, std::memory_order_relaxed);
    std::string restore;
    int restore_step = -1;
    if (attempt > 0 || config_.resume) {
      // Re-verify the chain newest-first: a checkpoint that was good when
      // written can be damaged on disk afterwards, and `latest` may point
      // at exactly that file. Restore from the first one that still reads
      // back clean. Resume mode (a campaign relaunching a run a previous
      // process advanced) takes the same path on the very first attempt.
      Timer verify_timer;
      for (const int step : checkpoints_.existing()) {
        const std::string path = checkpoints_.path_for_step(step);
        // An audit verdict outranks the CRC: a "poisoned" checkpoint holds
        // corruption *inside* its checksummed payload, so verify_file
        // passing it proves nothing.
        if (checkpoints_.verdict(step) == "poisoned") {
          record_event("checkpoint_rejected", step, attempt,
                       path + ": audit verdict poisoned");
          continue;
        }
        const gio::VerifyReport vr = gio::verify_file(path);
        if (vr.ok) {
          restore = path;
          restore_step = step;
          record_event("restore", step, attempt, path);
          break;
        }
        record_event("checkpoint_rejected", step, attempt,
                     path + (vr.header_ok ? ": sub-block CRC mismatch"
                                          : ": header unreadable"));
      }
      report_.verify_seconds += verify_timer.elapsed();
      // A resume-mode warm start is a restore too (attempt > 0 relaunches
      // are counted on their failure path below).
      if (attempt == 0 && !restore.empty()) ++report_.restores;
      if (restore.empty())
        record_event("restore_cold", -1, attempt,
                     "no usable checkpoint; restarting from initial "
                     "conditions");
      // Audit trail: every recovery attempt names the width it resumes at,
      // so a shrinking campaign's degradation history reads straight off
      // the ledger.
      record_event("resume_at_width", restore_step, attempt,
                   "width " + std::to_string(width_));
    }
    if (recover_timer) {
      report_.detect_to_resume_seconds = recover_timer->elapsed();
      recover_timer.reset();
    }

    Timer attempt_timer;
    comm::MachineReport machine_report;
    try {
      comm::Machine::run(
          width_,
          [&](comm::Comm& comm) {
            rank_main(comm, restore, restore_step, attempt);
          },
          config_.machine, &machine_report);
      report_.completed = true;
      report_.final_step = config_.sim.steps;
      health_.completed.store(true, std::memory_order_relaxed);
      record_event("run_complete", config_.sim.steps, attempt, "");
      return report_;
    } catch (const std::exception& e) {
      report_.failed_attempt_seconds += attempt_timer.elapsed();
      report_.last_error = e.what();
      recover_timer.emplace();
      record_event("attempt_failed", -1, attempt, e.what());
      if (attempt >= config_.max_retries) {
        record_event("giveup", -1, attempt, "retry budget exhausted");
        return report_;
      }
      ++report_.restores;
      // Elastic policy: shrink instead of retrying at a width that keeps
      // failing. The failed-rank count comes from the machine post-mortem
      // (root causes only, not collateral aborts).
      ++failures_at_width;
      const int failed =
          std::max<int>(1, static_cast<int>(machine_report.failed_ranks.size()));
      const int next =
          config_.elastic.next_width(width_, failed, failures_at_width);
      if (next < width_) {
        ++report_.shrinks;
        record_event(
            "shrink", restore_step, attempt,
            "width " + std::to_string(width_) + " -> " + std::to_string(next) +
                " (" + elastic_rule_name(config_.elastic.rule) + ", " +
                std::to_string(failed) + " failed rank(s), " +
                std::to_string(failures_at_width) + " failure(s) at width " +
                std::to_string(width_) + ")");
        // A campaign pool reclaims the shed ranks before the narrower
        // attempt launches.
        if (on_width_change) on_width_change(width_, next);
        width_ = next;
        failures_at_width = 0;
      }
      if (config_.retry_backoff_s > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            config_.retry_backoff_s * (attempt + 1)));
      }
      if (between_attempts) between_attempts(attempt);
    }
  }
}

}  // namespace hacc::core
