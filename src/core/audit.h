// Algorithm-based fault tolerance (ABFT) audits for silent data corruption.
//
// The crash-tolerance stack (supervised checkpoint-restart, payload
// checksums, storage CRCs) only defends against *loud* failures. At the
// paper's scale — ~1.5M BG/Q cores for weeks — undetected memory/FPU bit
// flips are a statistical certainty, and a flip in resident particle or
// mesh memory is silently computed on, silently checkpointed
// (verify_after_write checks bytes, not physics), and silently served.
// This module supplies the *detection* half of the SDC defense:
//
//   * payload-invariance checksum — a canonical-order FNV-1a over each
//     rank's active particle payloads, stashed at the end of every step
//     (after the overload exchange) and recomputed at the start of the
//     next, before any physics touches the state. The inter-step window is
//     idle by construction, so any difference is memory corruption — every
//     bit of every field is covered, exactly.
//   * CIC mass conservation — the deposit is a partition of unity, so the
//     global grid sum must equal the global active count to within float
//     deposit rounding. Catches grid-resident corruption the particle
//     checksum cannot see.
//   * energy drift tracker — the global kinetic energy is compared across
//     audited steps; a jump beyond a generous factor flags exponent-scale
//     velocity corruption that momentum sums can cancel away.
//   * sampled duplicate execution — a few randomly chosen RCB leaves are
//     re-run through the scalar reference kernel against a freshly
//     gathered neighbor list and compared with the accumulated short-range
//     forces within tolerance. Catches FPU/accumulator corruption inside
//     the force phase itself, for every HACC_KERNEL variant.
//
// All findings are *local accumulations*: Simulation::health_check() folds
// them into its existing single allreduce, so the whole audit suite adds
// zero collectives to a gated step. The Supervisor evaluates the reduced
// verdict on the audit cadence and responds with the in-place rollback
// ladder (see core/supervisor.h).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "tree/force_kernel.h"
#include "tree/multi_tree.h"
#include "tree/particles.h"
#include "tree/rcb_tree.h"

namespace hacc::core {

/// Knobs of the ABFT audit suite (SimulationConfig::audit).
struct AuditConfig {
  /// Steps between full audit evaluations at the health gate; 0 disables
  /// the whole suite. The checksum window and the cheap local captures run
  /// every step regardless (they must — the invariance window is
  /// per-step); the cadence controls duplicate execution and when the
  /// Supervisor *acts* on accumulated findings.
  int cadence = 1;
  bool checksum = true;        ///< payload-invariance FNV-1a window
  bool mass_conservation = true;
  bool duplicate_execution = true;
  bool energy_tracker = true;
  /// Leaves re-executed through the scalar kernel per audited step.
  int sample_leaves = 2;
  /// Relative tolerance on |grid sum - active count| / active count. CIC
  /// partition-of-unity rounding is ~1e-9 relative at test sizes (float
  /// weight error ~1e-7 per particle, accumulating as sqrt(N)); 1e-6
  /// leaves two decades of margin while catching any flip of a high
  /// mantissa / exponent / sign bit of a grid double.
  double mass_rtol = 1e-6;
  /// Kinetic-energy ratio between audited steps beyond which the state is
  /// declared corrupt (checked both ways; <= 0 disables). Physical KE
  /// evolves by a few percent per step, so 10x only fires on
  /// exponent-scale damage.
  double kinetic_jump = 10.0;
  /// Duplicate-execution comparison: mismatch when
  /// |recomputed - stored| > dup_atol + dup_rtol * max(|recomputed|,
  /// |stored|). The batched and scalar kernels agree to ~3e-6 relative
  /// (tests/kernel), so 1e-3 is two-plus decades of margin; the absolute
  /// floor absorbs summation-order noise on cancellation-dominated
  /// components.
  float dup_rtol = 1e-3f;
  float dup_atol = 1e-4f;
  /// Philox seed for the leaf-sampling draws (keyed further by step).
  std::uint64_t seed = 0x5DCau;
};

/// Canonical-order FNV-1a checksum over the *active* particle payloads
/// (x, y, z, vx, vy, vz, mass, id). Actives are hashed in ascending-id
/// order — ids are unique among actives — so the value is independent of
/// the array's arrival/removal permutation and comparable across the
/// overload exchanges a refresh performs. `assume_id_sorted` skips the
/// O(n log n) ordering pass when the array is already in canonical order
/// (SimulationConfig::canonical_order keeps it so at every refresh).
std::uint64_t particle_checksum(const tree::ParticleArray& particles,
                                bool assume_id_sorted = false);

/// Outcome of one sampled duplicate-execution audit.
struct DuplicateExecutionResult {
  std::size_t sampled_leaves = 0;
  std::size_t checked = 0;     ///< particles re-executed and compared
  std::size_t mismatches = 0;  ///< particles disagreeing beyond tolerance
  /// First disagreement, for the ledger ("" when clean).
  std::string detail;
};

/// Re-run `config.sample_leaves` seeded-random leaves of `tree` through the
/// scalar reference kernel (fresh neighbor gather, evaluate_neighbor_list)
/// and compare against the accumulated short-range forces ax/ay/az (indexed
/// like the tree-permuted particle array). `draw_key` (e.g. the step
/// number) varies the sample across calls while keeping it reproducible.
DuplicateExecutionResult duplicate_execution_check(
    const tree::RcbTree& tree, const tree::ShortRangeKernel& kernel,
    std::span<const float> ax, std::span<const float> ay,
    std::span<const float> az, float mass_scale, const AuditConfig& config,
    std::uint64_t draw_key);

/// MultiTree overload: samples (tree, leaf) pairs across the forest; the
/// neighbor gather searches all trees, exactly like the production walk.
DuplicateExecutionResult duplicate_execution_check(
    const tree::MultiTree& forest, const tree::ShortRangeKernel& kernel,
    std::span<const float> ax, std::span<const float> ay,
    std::span<const float> az, float mass_scale, const AuditConfig& config,
    std::uint64_t draw_key);

}  // namespace hacc::core
