// Cross-rank reduction of timers and counters, and merged trace export.
//
// The paper's evaluation tables are *reduced* quantities: per-phase time is
// only meaningful as min/mean/max over ranks, and the gap between max and
// mean is the load imbalance that Sec. V's scaling analysis tracks. The
// reducer gathers every rank's (NameId, value) samples to a root over
// comm::Comm and merges them by name — ranks missing an entry contribute
// zero, so a phase only one rank runs shows up with min 0 and imbalance P.
//
// NameIds travel directly because SimMPI ranks share one process (see
// util/names.h); a real-MPI port would exchange the strings instead.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "comm/comm.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace hacc::obs {

/// One name's statistics over all ranks of the communicator.
struct Reduced {
  NameId name = 0;
  double min = 0;   ///< smallest per-rank value (0 if any rank lacks it)
  double mean = 0;  ///< sum / comm.size()
  double max = 0;
  double sum = 0;
  /// max/mean: 1.0 = perfectly balanced, P = one rank does everything.
  double imbalance() const noexcept { return mean > 0 ? max / mean : 0.0; }
};

/// Reduce caller-provided samples; collective. Returns rows sorted by
/// descending mean on `root`, empty elsewhere.
std::vector<Reduced> reduce_samples(
    comm::Comm& comm, std::span<const std::pair<NameId, double>> samples,
    int root = 0);

/// Reduce a timer registry's per-phase seconds; collective.
std::vector<Reduced> reduce_timers(comm::Comm& comm,
                                   const TimerRegistry& timers, int root = 0);

/// Reduce a counter snapshot (values as doubles); collective.
std::vector<Reduced> reduce_counters(comm::Comm& comm,
                                     const Counters& counters, int root = 0);

/// Gather every rank's trace fragment and write one Chrome trace_event
/// array at `path` ("pid" = rank; rank `root` writes). Collective.
void write_merged_trace(comm::Comm& comm, const Tracer& tracer,
                        const std::string& path, int root = 0);

}  // namespace hacc::obs
