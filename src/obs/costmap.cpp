#include "obs/costmap.h"

#include <algorithm>

namespace hacc::obs {

void CostMap::begin_step() {
  std::lock_guard<std::mutex> lock(mu_);
  leaves_.clear();  // capacity retained
}

void CostMap::record(const LeafCost& leaf) {
  std::lock_guard<std::mutex> lock(mu_);
  leaves_.push_back(leaf);
}

std::vector<LeafCost> CostMap::leaves() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leaves_;
}

std::size_t CostMap::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leaves_.size();
}

CostMap::Summary CostMap::summarize() const {
  std::vector<std::uint64_t> ns;
  Summary s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ns.reserve(leaves_.size());
    for (const LeafCost& l : leaves_) {
      s.particles += l.particles;
      s.interactions += l.interactions;
      s.kernel_ns += l.kernel_ns;
      ns.push_back(l.kernel_ns);
    }
  }
  s.leaves = ns.size();
  if (s.leaves == 0) return s;

  s.max_leaf_ns = *std::max_element(ns.begin(), ns.end());
  s.mean_leaf_ns =
      static_cast<double>(s.kernel_ns) / static_cast<double>(s.leaves);
  s.leaf_imbalance = s.mean_leaf_ns > 0
                         ? static_cast<double>(s.max_leaf_ns) / s.mean_leaf_ns
                         : 0.0;
  if (s.interactions > 0)
    s.ns_per_interaction =
        static_cast<double>(s.kernel_ns) / static_cast<double>(s.interactions);

  // Share of kernel time in the costliest 10% of leaves (at least one).
  const std::size_t top = std::max<std::size_t>(1, ns.size() / 10);
  std::nth_element(ns.begin(), ns.begin() + (ns.size() - top), ns.end());
  std::uint64_t top_ns = 0;
  for (std::size_t i = ns.size() - top; i < ns.size(); ++i) top_ns += ns[i];
  if (s.kernel_ns > 0)
    s.top_decile_share =
        static_cast<double>(top_ns) / static_cast<double>(s.kernel_ns);
  return s;
}

}  // namespace hacc::obs
