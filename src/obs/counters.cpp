#include "obs/counters.h"

#include <mutex>

namespace hacc::obs {

namespace {

struct KindTable {
  std::mutex mu;
  std::vector<std::uint8_t> kinds;  // indexed by NameId; default kCounter
};

KindTable& kind_table() {
  static KindTable t;
  return t;
}

NameId intern_with_kind(std::string_view name, CounterKind kind) {
  const NameId id = intern_name(name);
  KindTable& t = kind_table();
  std::lock_guard<std::mutex> lock(t.mu);
  if (id >= t.kinds.size()) t.kinds.resize(id + 1, 0);
  t.kinds[id] = static_cast<std::uint8_t>(kind);
  return id;
}

}  // namespace

NameId counter_id(std::string_view name) {
  return intern_with_kind(name, CounterKind::kCounter);
}

NameId gauge_id(std::string_view name) {
  return intern_with_kind(name, CounterKind::kGauge);
}

NameId histogram_id(std::string_view name) {
  return intern_with_kind(name, CounterKind::kHistogram);
}

CounterKind kind_of(NameId id) {
  KindTable& t = kind_table();
  std::lock_guard<std::mutex> lock(t.mu);
  return id < t.kinds.size() ? static_cast<CounterKind>(t.kinds[id])
                             : CounterKind::kCounter;
}

std::vector<Counters::Sample> Counters::snapshot() const {
  std::vector<Sample> out;
  for (std::size_t id = 0; id < kMaxSlots; ++id) {
    const std::uint64_t v = slots_[id].load(std::memory_order_relaxed);
    if (v != 0) out.push_back(Sample{static_cast<NameId>(id), v});
  }
  return out;
}

void Counters::clear() noexcept {
  for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
}

}  // namespace hacc::obs
