// Model-vs-measured drift watchdog.
//
// Every step the watchdog inspects the reduced StepRecord (and the reduced
// CostMapRecord when cost attribution is on) and emits anomalies for the
// three failure smells the paper's performance methodology watches for:
//
//   * straggler — cross-rank wall or kernel-time imbalance past a
//     threshold: one rank (named in the detail when the cost map knows it)
//     is holding the step hostage. The signal the elastic Supervisor and
//     the future cost-based rebalancer act on.
//   * model_drift — the measured ns-per-interaction wanders away from the
//     calibrated expectation. The perfmodel's TileKernelModel fixes the
//     instruction count per interaction (~6.8); the host's effective issue
//     rate is the one free parameter, calibrated over the first few steps.
//     A later excursion means the kernel is no longer running at the speed
//     the machine demonstrated it can — cache pollution, thermal
//     throttling, a co-tenant, or a regression.
//   * phase_coverage — the named phases stop accounting for the step
//     ("other" grows past the floor): time is going somewhere the
//     telemetry cannot see, so every other number is suspect.
//
// The watchdog only reads reduced records, so it runs on rank 0 (wherever
// the ledger is written); anomalies are appended to the same ledger as
// {"event":"anomaly"} lines.
#pragma once

#include <string>
#include <vector>

#include "obs/ledger.h"
#include "perfmodel/kernel_model.h"

namespace hacc::obs {

struct WatchdogConfig {
  /// Cross-rank max/mean wall (or rank kernel time) above this flags a
  /// straggler. 1 = perfectly flat; SimMPI rank threads share cores, so
  /// leave headroom above the benign jitter.
  double straggler_imbalance = 1.5;
  /// Fractional deviation of measured ns/interaction from the calibrated
  /// value that flags model drift (0.75 = measured 75% off calibration).
  double model_tolerance = 0.75;
  /// Steps whose ns/interaction seed the calibration (their mean becomes
  /// the expectation; no drift check is made while calibrating).
  int calibration_steps = 2;
  /// Minimum fraction of step wall the named phases must cover.
  double phase_coverage_floor = 0.5;
  /// Steps with fewer total interactions than this are too small to
  /// calibrate or drift-check (timer noise dominates).
  std::uint64_t min_interactions = 10000;
};

struct Anomaly {
  std::string kind;    ///< "straggler" | "model_drift" | "phase_coverage"
  double severity = 0; ///< how far past the threshold (ratio, >= 1)
  std::string detail;  ///< human-readable context for the ledger line
};

class Watchdog {
 public:
  Watchdog() = default;
  explicit Watchdog(const WatchdogConfig& config) : config_(config) {}

  /// Inspect one step's reduced telemetry; `cost` may be null (cost
  /// attribution off). Returns the anomalies found this step.
  std::vector<Anomaly> observe(const StepRecord& record,
                               const CostMapRecord* cost = nullptr);

  /// Total anomalies over the run (the /healthz counter).
  std::uint64_t anomalies() const noexcept { return total_; }
  /// Fold an externally detected anomaly (e.g. the Supervisor's "sdc"
  /// class from the ABFT audits) into the run total, so /healthz counts
  /// it alongside the watchdog's own telemetry findings.
  void note(const Anomaly&) noexcept { ++total_; }
  /// Calibrated ns/interaction expectation (0 until calibrated).
  double calibrated_ns_per_interaction() const noexcept { return calibrated_; }
  const WatchdogConfig& config() const noexcept { return config_; }

  /// The anomaly as a ledger EventRecord ({"event":"anomaly"} line).
  static EventRecord to_event(const Anomaly& a, int step);

 private:
  WatchdogConfig config_{};
  perfmodel::TileKernelModel model_{};
  int calibration_seen_ = 0;
  double calibration_sum_ = 0;
  double calibrated_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace hacc::obs
