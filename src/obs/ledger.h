// Per-step run ledger: the paper's evaluation tables, one JSON object per
// step.
//
// Each StepRecord is the fully reduced telemetry of one Simulation::step —
// per-phase min/mean/max seconds over ranks, the paper-style breakdown
// rollup (kernel / walk+build / fft / cic / refresh / comm), time per
// substep per particle (the paper's headline weak-scaling invariant,
// Table II), momentum drift, counter deltas, and peak RSS. Simulation::run
// appends one record per step and writes `ledger.jsonl` on rank 0 plus a
// human-readable phase table at end of run; bench/step_breakdown turns the
// same records into BENCH_step.json for the perf trajectory.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/costmap.h"
#include "obs/reduce.h"

namespace hacc::obs {

/// Seconds (or a counter value) reduced over ranks.
struct PhaseStat {
  double min = 0;
  double mean = 0;
  double max = 0;
  double imbalance = 0;  ///< max/mean (0 when mean is 0)
};

/// One Simulation::step worth of telemetry, reduced across ranks.
struct StepRecord {
  int step = 0;       ///< 1-based step index after the step completed
  double a = 0;       ///< scale factor after the step
  double z = 0;       ///< redshift after the step
  PhaseStat wall;     ///< the "step" root phase (wall seconds)
  /// wall.mean / subcycles / global particle count — Table II's invariant.
  double t_per_substep_per_particle = 0;
  std::array<double, 3> momentum{};  ///< global active momentum sum
  /// max component deviation from the first recorded step's momentum.
  double momentum_drift = 0;
  /// Per-phase seconds this step (timer deltas), keyed by phase name;
  /// PoissonSolver-internal phases appear prefixed ("poisson.fft", ...).
  std::map<std::string, PhaseStat> phases;
  /// Counter deltas this step (gauges carry absolute values).
  std::map<std::string, PhaseStat> counters;
  /// Paper-style rollup of `phases` (mean seconds): kernel, walk_build,
  /// fft, cic, refresh, comm, other.
  std::map<std::string, double> breakdown;
  std::uint64_t peak_rss_bytes = 0;  ///< max over ranks
};

/// Roll a phase map up into the paper's Sec. III categories:
///   kernel     = sr-kernel            walk_build = tree-build
///   fft        = poisson.fft          cic        = cic + lr-kick
///   refresh    = refresh              comm       = grid-exchange +
///                                                  poisson.remap
///   other      = wall_mean - sum of the above (stream, spectral kernel
///                multiply, untimed gaps)
std::map<std::string, double> paper_breakdown(
    const std::map<std::string, PhaseStat>& phases, double wall_mean);

/// A run lifecycle event (checkpoint written/verified, rank killed, restore,
/// resume, health-check failure, ...) interleaved with step records in the
/// streamed ledger as `{"event":...}` JSONL lines. The fault-tolerance
/// audit trail: after a crash the ledger shows exactly what the Supervisor
/// saw and did.
struct EventRecord {
  std::string kind;    ///< e.g. "checkpoint", "restore", "rank_failed"
  int step = -1;       ///< step the event refers to (-1 = n/a)
  int attempt = -1;    ///< supervisor attempt number (-1 = n/a)
  std::string detail;  ///< free-form human-readable context
};

/// One step's cost map, reduced across ranks — streamed into the ledger as
/// a `{"costmap":...}` JSONL line, the measured-cost input the roadmap's
/// cost-based rebalancer consumes.
struct CostMapRecord {
  int step = 0;
  std::uint64_t leaves = 0;        ///< total leaves across ranks
  std::uint64_t interactions = 0;  ///< total pairwise interactions
  double kernel_s = 0;             ///< summed leaf kernel seconds
  /// Per-rank kernel seconds / interaction counts reduced min/mean/max —
  /// rank_kernel_s.imbalance is the cross-rank signal the watchdog gates.
  PhaseStat rank_kernel_s;
  PhaseStat rank_interactions;
  /// Worst single rank's within-rank leaf imbalance (max leaf / mean leaf).
  double leaf_imbalance = 0;
  /// Worst single rank's kernel-time share in its costliest 10% of leaves.
  double top_decile_share = 0;
  /// Mean measured ns per interaction across ranks (kernel_ns weighted).
  double ns_per_interaction = 0;
  int straggler_rank = -1;  ///< rank with the most kernel time (-1 = none)
};

/// Reduce every rank's CostMap::Summary to rank 0 (empty record with the
/// given step elsewhere). Collective over `comm`; uses obs::reduce_samples
/// for the per-rank kernel/interaction stats plus one summary gather for
/// the leaf-level fields.
CostMapRecord reduce_cost_map(comm::Comm& comm, const CostMap::Summary& mine,
                              int step, int root = 0);

/// One StepRecord / EventRecord / CostMapRecord as a single JSONL line (no
/// trailing '\n').
std::string step_record_json(const StepRecord& r);
std::string event_record_json(const EventRecord& e);
std::string costmap_record_json(const CostMapRecord& c);

class Ledger {
 public:
  Ledger() = default;
  ~Ledger();
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Stream every subsequent append/append_event to `path`, one fsync'd
  /// JSONL line each — a crash loses at most the line being written, so the
  /// ledger survives the failures the Supervisor recovers from. `append`
  /// continues an existing file (restart); otherwise it is truncated.
  void stream_to(const std::string& path, bool append = false);
  bool streaming() const noexcept { return sink_ != nullptr; }

  void append(StepRecord record);
  void append_event(EventRecord event);
  void append_costmap(CostMapRecord record);
  const std::vector<StepRecord>& records() const noexcept { return records_; }
  const std::vector<EventRecord>& events() const noexcept { return events_; }
  const std::vector<CostMapRecord>& costmaps() const noexcept {
    return costmaps_;
  }
  bool empty() const noexcept { return records_.empty(); }

  /// The full ledger as JSONL (one JSON object per line; step records only,
  /// in append order — events are only carried by the stream and events()).
  std::string to_jsonl() const;
  void write_jsonl(const std::string& path) const;

  /// Durably append one event line to `path` without a Ledger instance;
  /// used by drivers for events that happen outside Machine::run (e.g. the
  /// Supervisor deciding to restore between attempts).
  static void append_event_to(const std::string& path, const EventRecord& e);

  /// End-of-run phase table: per phase, mean seconds summed over steps,
  /// percent of summed wall, and the worst per-step imbalance.
  void print_phase_table(std::ostream& os) const;

 private:
  void stream_line(const std::string& line);

  std::vector<StepRecord> records_;
  std::vector<EventRecord> events_;
  std::vector<CostMapRecord> costmaps_;
  std::FILE* sink_ = nullptr;
};

}  // namespace hacc::obs
