#include "obs/obs.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hacc::obs {

namespace {
thread_local Tracer* g_tracer = nullptr;
thread_local Counters* g_counters = nullptr;
thread_local CostMap* g_cost = nullptr;

void hook_complete(void* ctx, NameId name, std::uint64_t t0_ns,
                   std::uint64_t dur_ns) {
  static_cast<Tracer*>(ctx)->complete(name, t0_ns, dur_ns);
}
}  // namespace

Tracer* tracer() noexcept { return g_tracer; }
Counters* counters() noexcept { return g_counters; }
CostMap* cost_map() noexcept { return g_cost; }

Binding::Binding(Tracer* tracer, Counters* counters, CostMap* cost_map) noexcept
    : prev_tracer_(g_tracer),
      prev_counters_(g_counters),
      prev_cost_(g_cost) {
  g_tracer = tracer;
  g_counters = counters;
  g_cost = cost_map;
  if (tracer != nullptr) {
    hook_.complete = &hook_complete;
    hook_.ctx = tracer;
    prev_hook_ = util::set_trace_hook(&hook_);
  } else {
    prev_hook_ = util::set_trace_hook(nullptr);
  }
}

Binding::~Binding() {
  util::set_trace_hook(prev_hook_);
  g_tracer = prev_tracer_;
  g_counters = prev_counters_;
  g_cost = prev_cost_;
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace hacc::obs
