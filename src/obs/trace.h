// Low-overhead per-rank event tracer.
//
// A fixed-capacity ring of begin/end ("complete") and instant events, each
// stamped with an interned name, a small thread id, and nanoseconds on the
// process-wide steady clock (util::now_ns — shared by all SimMPI ranks, so
// merged traces are time-coherent). Recording is mutex-serialized (the ring
// is shared by the rank thread and any OpenMP/test threads that bind to
// it) and allocation-free per event; when tracing is disabled the cost is
// one relaxed atomic load.
//
// Export is Chrome trace_event JSON (the array form), which Perfetto and
// chrome://tracing accept directly: each rank becomes a "pid", each
// recording thread a "tid".
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/names.h"
#include "util/telemetry.h"

namespace hacc::obs {

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  enum class Type : std::uint8_t {
    kComplete,  ///< a span: ts + dur ("ph":"X")
    kInstant,   ///< a point: ts only ("ph":"i")
  };

  struct Event {
    NameId name = 0;
    Type type = Type::kComplete;
    std::uint32_t tid = 0;       ///< dense per-tracer thread index
    std::uint64_t ts_ns = 0;     ///< begin, process-epoch nanoseconds
    std::uint64_t dur_ns = 0;    ///< 0 for instants
  };

  /// The ring holds the most recent `capacity` events; older ones are
  /// overwritten (dropped() counts them).
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Runtime toggle. Disabled tracers drop events at a single atomic load.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Record a completed span (no-op while disabled).
  void complete(NameId name, std::uint64_t ts_ns, std::uint64_t dur_ns);
  /// Record an instant event at now (no-op while disabled).
  void instant(NameId name);

  /// Events currently retained, oldest first.
  std::vector<Event> snapshot() const;
  /// Events offered while enabled / overwritten by ring wrap-around.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// The retained events as comma-separated Chrome trace_event objects with
  /// "pid": pid — a fragment, to be wrapped in [...] (optionally
  /// concatenated with other ranks' fragments; see obs::write_merged_trace).
  std::string events_json(int pid) const;

  /// Write this tracer alone as a complete, valid trace array.
  void write_chrome_trace(const std::string& path, int pid = 0) const;

 private:
  std::uint32_t tid_slot_locked();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<Event> ring_;            // preallocated to capacity_
  std::uint64_t head_ = 0;             // total events written
  std::vector<std::thread::id> tids_;  // dense thread-id interning
};

}  // namespace hacc::obs
