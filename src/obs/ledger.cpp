#include "obs/ledger.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/json.h"
#include "util/error.h"
#include "util/table.h"

namespace hacc::obs {

namespace {

double phase_mean(const std::map<std::string, PhaseStat>& phases,
                  const std::string& name) {
  auto it = phases.find(name);
  return it == phases.end() ? 0.0 : it->second.mean;
}

void append_stat(std::string& out, const char* key, const PhaseStat& s) {
  out += '"';
  out += key;
  out += "\":{\"min\":" + json_number(s.min) +
         ",\"mean\":" + json_number(s.mean) +
         ",\"max\":" + json_number(s.max) +
         ",\"imbalance\":" + json_number(s.imbalance) + "}";
}

void append_stat_map(std::string& out, const char* key,
                     const std::map<std::string, PhaseStat>& m) {
  out += '"';
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [name, s] : m) {
    if (!first) out += ',';
    first = false;
    append_stat(out, json_escape(name).c_str(), s);
  }
  out += '}';
}

}  // namespace

std::map<std::string, double> paper_breakdown(
    const std::map<std::string, PhaseStat>& phases, double wall_mean) {
  std::map<std::string, double> b;
  b["kernel"] = phase_mean(phases, "sr-kernel");
  b["walk_build"] = phase_mean(phases, "tree-build");
  b["fft"] = phase_mean(phases, "poisson.fft");
  b["cic"] = phase_mean(phases, "cic") + phase_mean(phases, "lr-kick");
  b["refresh"] = phase_mean(phases, "refresh");
  b["comm"] =
      phase_mean(phases, "grid-exchange") + phase_mean(phases, "poisson.remap");
  double named = 0;
  for (const auto& [k, v] : b) named += v;
  b["other"] = std::max(0.0, wall_mean - named);
  return b;
}

std::string step_record_json(const StepRecord& r) {
  std::string line = "{";
  line += "\"step\":" + std::to_string(r.step);
  line += ",\"a\":" + json_number(r.a);
  line += ",\"z\":" + json_number(r.z);
  line += ',';
  append_stat(line, "wall_s", r.wall);
  line += ",\"t_per_substep_per_particle\":" +
          json_number(r.t_per_substep_per_particle);
  line += ",\"momentum\":[" + json_number(r.momentum[0]) + ',' +
          json_number(r.momentum[1]) + ',' + json_number(r.momentum[2]) + ']';
  line += ",\"momentum_drift\":" + json_number(r.momentum_drift);
  line += ',';
  append_stat_map(line, "phases", r.phases);
  line += ',';
  append_stat_map(line, "counters", r.counters);
  line += ",\"breakdown\":{";
  bool first = true;
  for (const auto& [name, v] : r.breakdown) {
    if (!first) line += ',';
    first = false;
    line += '"' + json_escape(name) + "\":" + json_number(v);
  }
  line += '}';
  line += ",\"peak_rss_bytes\":" + std::to_string(r.peak_rss_bytes);
  line += '}';
  return line;
}

CostMapRecord reduce_cost_map(comm::Comm& comm, const CostMap::Summary& mine,
                              int step, int root) {
  // Interned once: the same ids feed reduce_samples and (via counters) the
  // per-rank /metrics gauges, so the two views stay name-compatible.
  static const NameId kKernelNs = counter_id("cost.kernel_ns");
  static const NameId kInteractions = counter_id("cost.interactions");

  // One POD summary per rank for the leaf-level fields (and the straggler
  // argmax, which a min/mean/max reduction cannot recover).
  struct WireSummary {
    std::uint64_t leaves, interactions, kernel_ns;
    double leaf_imbalance, top_decile_share;
  };
  const WireSummary w{mine.leaves, mine.interactions, mine.kernel_ns,
                      mine.leaf_imbalance, mine.top_decile_share};
  std::vector<std::size_t> counts;
  const std::vector<WireSummary> all =
      comm.gatherv(std::span<const WireSummary>(&w, 1), root, &counts);

  // Per-rank kernel seconds / interactions through the shared reducer —
  // rank_kernel_s.imbalance is the cross-rank straggler signal.
  const std::array<std::pair<NameId, double>, 2> samples{
      std::pair<NameId, double>{kKernelNs,
                                static_cast<double>(mine.kernel_ns) / 1e9},
      std::pair<NameId, double>{kInteractions,
                                static_cast<double>(mine.interactions)}};
  const std::vector<Reduced> reduced = reduce_samples(comm, samples, root);

  CostMapRecord rec;
  rec.step = step;
  if (comm.rank() != root) return rec;

  for (const Reduced& r : reduced) {
    const PhaseStat s{r.min, r.mean, r.max, r.imbalance()};
    if (r.name == kKernelNs) rec.rank_kernel_s = s;
    if (r.name == kInteractions) rec.rank_interactions = s;
  }
  std::uint64_t kernel_ns = 0;
  for (std::size_t r = 0; r < all.size(); ++r) {
    rec.leaves += all[r].leaves;
    rec.interactions += all[r].interactions;
    kernel_ns += all[r].kernel_ns;
    rec.leaf_imbalance = std::max(rec.leaf_imbalance, all[r].leaf_imbalance);
    rec.top_decile_share =
        std::max(rec.top_decile_share, all[r].top_decile_share);
    if (all[r].kernel_ns > 0 &&
        (rec.straggler_rank < 0 ||
         all[r].kernel_ns >
             all[static_cast<std::size_t>(rec.straggler_rank)].kernel_ns))
      rec.straggler_rank = static_cast<int>(r);
  }
  rec.kernel_s = static_cast<double>(kernel_ns) / 1e9;
  if (rec.interactions > 0)
    rec.ns_per_interaction = static_cast<double>(kernel_ns) /
                             static_cast<double>(rec.interactions);
  return rec;
}

std::string costmap_record_json(const CostMapRecord& c) {
  std::string line = "{\"costmap\":{";
  line += "\"step\":" + std::to_string(c.step);
  line += ",\"leaves\":" + std::to_string(c.leaves);
  line += ",\"interactions\":" + std::to_string(c.interactions);
  line += ",\"kernel_s\":" + json_number(c.kernel_s);
  line += ',';
  append_stat(line, "rank_kernel_s", c.rank_kernel_s);
  line += ',';
  append_stat(line, "rank_interactions", c.rank_interactions);
  line += ",\"leaf_imbalance\":" + json_number(c.leaf_imbalance);
  line += ",\"top_decile_share\":" + json_number(c.top_decile_share);
  line += ",\"ns_per_interaction\":" + json_number(c.ns_per_interaction);
  line += ",\"straggler_rank\":" + std::to_string(c.straggler_rank);
  line += "}}";
  return line;
}

std::string event_record_json(const EventRecord& e) {
  std::string line = "{\"event\":\"" + json_escape(e.kind) + '"';
  if (e.step >= 0) line += ",\"step\":" + std::to_string(e.step);
  if (e.attempt >= 0) line += ",\"attempt\":" + std::to_string(e.attempt);
  if (!e.detail.empty())
    line += ",\"detail\":\"" + json_escape(e.detail) + '"';
  line += '}';
  return line;
}

Ledger::~Ledger() {
  if (sink_ != nullptr) std::fclose(sink_);
}

void Ledger::stream_to(const std::string& path, bool append) {
  if (sink_ != nullptr) std::fclose(sink_);
  sink_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  HACC_CHECK_MSG(sink_ != nullptr, "cannot open ledger file " + path);
}

void Ledger::stream_line(const std::string& line) {
  if (sink_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fputc('\n', sink_);
  // Flush + fsync per line: the ledger must survive exactly the failures
  // the Supervisor recovers from, so every record is durable before the
  // step that follows it runs.
  std::fflush(sink_);
  ::fsync(fileno(sink_));
}

void Ledger::append(StepRecord record) {
  stream_line(step_record_json(record));
  records_.push_back(std::move(record));
}

void Ledger::append_event(EventRecord event) {
  stream_line(event_record_json(event));
  events_.push_back(std::move(event));
}

void Ledger::append_costmap(CostMapRecord record) {
  stream_line(costmap_record_json(record));
  costmaps_.push_back(record);
}

void Ledger::append_event_to(const std::string& path, const EventRecord& e) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  HACC_CHECK_MSG(f != nullptr, "cannot open ledger file " + path);
  const std::string line = event_record_json(e) + '\n';
  std::fwrite(line.data(), 1, line.size(), f);
  std::fflush(f);
  ::fsync(fileno(f));
  std::fclose(f);
}

std::string Ledger::to_jsonl() const {
  std::string out;
  for (const StepRecord& r : records_) out += step_record_json(r) + '\n';
  return out;
}

void Ledger::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  HACC_CHECK_MSG(f != nullptr, "cannot open ledger file " + path);
  const std::string body = to_jsonl();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

void Ledger::print_phase_table(std::ostream& os) const {
  if (records_.empty()) return;
  // Sum mean seconds per phase over all steps; track worst step imbalance.
  std::map<std::string, std::pair<double, double>> agg;  // name -> {s, imbal}
  double wall = 0;
  for (const StepRecord& r : records_) {
    wall += r.wall.mean;
    for (const auto& [name, s] : r.phases) {
      auto& a = agg[name];
      a.first += s.mean;
      a.second = std::max(a.second, s.imbalance);
    }
  }
  std::vector<std::pair<std::string, std::pair<double, double>>> rows(
      agg.begin(), agg.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.first > b.second.first;
  });

  Table t({"phase", "mean seconds", "% of step wall", "max imbalance"});
  for (const auto& [name, a] : rows) {
    t.add_row({name, Table::fixed(a.first, 4),
               wall > 0 ? Table::fixed(100.0 * a.first / wall, 1) : "0",
               Table::fixed(a.second, 2)});
  }
  os << "Per-phase breakdown over " << records_.size()
     << " steps (mean over ranks; imbalance = max/mean):\n";
  t.print(os);
}

}  // namespace hacc::obs
