#include "obs/reduce.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/error.h"

namespace hacc::obs {

namespace {

struct WireSample {
  NameId id;
  double value;
};

}  // namespace

std::vector<Reduced> reduce_samples(
    comm::Comm& comm, std::span<const std::pair<NameId, double>> samples,
    int root) {
  std::vector<WireSample> mine;
  mine.reserve(samples.size());
  for (const auto& [id, v] : samples) mine.push_back(WireSample{id, v});

  std::vector<std::size_t> counts;
  const std::vector<WireSample> all = comm.gatherv(
      std::span<const WireSample>(mine), root, &counts);
  if (comm.rank() != root) return {};

  const auto p = static_cast<std::size_t>(comm.size());
  // Merge by name. A rank that lacks a name contributes zero: track how
  // many ranks reported each name and floor min at 0 for the absentees.
  struct Acc {
    double min = 0, max = 0, sum = 0;
    std::size_t reporters = 0;
  };
  std::map<NameId, Acc> merged;
  std::size_t offset = 0;
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < counts[r]; ++i) {
      const WireSample& s = all[offset + i];
      Acc& a = merged[s.id];
      if (a.reporters == 0) {
        a.min = a.max = s.value;
      } else {
        a.min = std::min(a.min, s.value);
        a.max = std::max(a.max, s.value);
      }
      a.sum += s.value;
      ++a.reporters;
    }
    offset += counts[r];
  }

  std::vector<Reduced> out;
  out.reserve(merged.size());
  for (const auto& [id, a] : merged) {
    Reduced r;
    r.name = id;
    r.min = a.reporters < p ? 0.0 : a.min;
    r.max = a.max;
    r.sum = a.sum;
    r.mean = a.sum / static_cast<double>(p);
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const Reduced& a, const Reduced& b) { return a.mean > b.mean; });
  return out;
}

std::vector<Reduced> reduce_timers(comm::Comm& comm,
                                   const TimerRegistry& timers, int root) {
  std::vector<std::pair<NameId, double>> samples;
  for (const auto& t : timers.totals()) samples.emplace_back(t.id, t.seconds);
  return reduce_samples(comm, samples, root);
}

std::vector<Reduced> reduce_counters(comm::Comm& comm,
                                     const Counters& counters, int root) {
  std::vector<std::pair<NameId, double>> samples;
  for (const auto& s : counters.snapshot())
    samples.emplace_back(s.id, static_cast<double>(s.value));
  return reduce_samples(comm, samples, root);
}

void write_merged_trace(comm::Comm& comm, const Tracer& tracer,
                        const std::string& path, int root) {
  const std::string mine = tracer.events_json(comm.rank());
  std::vector<std::size_t> counts;
  const std::vector<char> all = comm.gatherv(
      std::span<const char>(mine.data(), mine.size()), root, &counts);
  if (comm.rank() != root) return;

  std::FILE* f = std::fopen(path.c_str(), "w");
  HACC_CHECK_MSG(f != nullptr, "cannot open trace file " + path);
  std::fputs("[\n", f);
  std::size_t offset = 0;
  bool first = true;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    if (counts[r] > 0) {
      if (!first) std::fputs(",\n", f);
      std::fwrite(all.data() + offset, 1, counts[r], f);
      first = false;
    }
    offset += counts[r];
  }
  std::fputs("\n]\n", f);
  std::fclose(f);
}

}  // namespace hacc::obs
