// Second-generation metrics core: shared histograms and Prometheus-text
// exposition over the whole per-rank registry.
//
// Three pieces on top of counters.h:
//   * Histogram — the lock-free 64-bucket log2(ns) latency histogram that
//     used to live inside serve/query_server.h, promoted so the query
//     service, the stepping loop and anything else share one implementation
//     and one exposition path. record() is a relaxed fetch_add, quantiles
//     read bucket boundaries (value resolution one power of two).
//   * HistogramSet — histogram slots alongside the Counters slots: a flat
//     array indexed by interned NameId, ids at/above kMaxSlots silently
//     dropped, every operation safe against concurrent recording threads
//     and concurrent scrapes.
//   * export_prometheus / MetricsHub — render one or many per-rank sources
//     (counters + gauges + histograms) as Prometheus text exposition format
//     v0.0.4 with rank (and for phase timers, phase) labels. The hub is the
//     shared registry a live /metrics endpoint scrapes while rank threads
//     keep writing: every value it touches is an atomic, so a scrape never
//     takes a lock a rank thread holds and never sees a torn value.
//
// Naming conventions applied by the exporter (see DESIGN.md §4j):
//   counter  "comm.alltoall.bytes_sent" -> hacc_comm_alltoall_bytes_sent_total{rank="0"}
//   gauge    "mem.peak_rss_bytes"       -> hacc_mem_peak_rss_bytes{rank="0"}
//   gauge    "cost.leaf_imbalance_micro"-> hacc_cost_leaf_imbalance{rank="0"} (value / 1e6)
//   counter  "phase.sr-kernel.ns"       -> hacc_phase_ns_total{phase="sr-kernel",rank="0"}
//   histogram "step.wall_ns"            -> hacc_step_wall_ns_bucket{rank="0",le="..."} / _sum / _count
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/counters.h"

namespace hacc::obs {

/// Lock-free latency histogram: 64 log2(ns) buckets, relaxed atomics.
/// Quantiles are read from the bucket boundaries (exact count, value
/// resolution one power of two — plenty for p50/p99 reporting).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t ns) noexcept;
  std::uint64_t count() const noexcept;
  /// The q-quantile (q in [0,1]) in nanoseconds (bucket upper bound);
  /// 0 when empty.
  std::uint64_t quantile_ns(double q) const noexcept;
  double mean_ns() const noexcept;
  std::uint64_t sum_ns() const noexcept {
    return sum_ns_.load(std::memory_order_relaxed);
  }

  /// Count in bucket b (0 outside [0, kBuckets)).
  std::uint64_t bucket_count(std::size_t b) const noexcept {
    return b < kBuckets ? buckets_[b].load(std::memory_order_relaxed) : 0;
  }
  /// Inclusive upper bound of bucket b in nanoseconds: 2^(b+1) - 1.
  static constexpr std::uint64_t bucket_upper_ns(std::size_t b) noexcept {
    return b + 1 >= 64 ? ~0ULL : (1ULL << (b + 1)) - 1;
  }

  void clear() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Histogram slots keyed by interned NameId, mirroring Counters: names are
/// registered with histogram_id() (which records CounterKind::kHistogram),
/// ids at/above kMaxSlots are silently dropped, and recording never
/// allocates (the slot table is built once in the constructor).
class HistogramSet {
 public:
  static constexpr std::size_t kMaxSlots = 1024;

  HistogramSet() : slots_(kMaxSlots) {}
  HistogramSet(const HistogramSet&) = delete;
  HistogramSet& operator=(const HistogramSet&) = delete;

  void record(NameId id, std::uint64_t ns) noexcept {
    if (id < kMaxSlots) slots_[id].record(ns);
  }
  /// The slot for `id`, or nullptr when the id is beyond the table.
  const Histogram* find(NameId id) const noexcept {
    return id < kMaxSlots ? &slots_[id] : nullptr;
  }
  Histogram* find(NameId id) noexcept {
    return id < kMaxSlots ? &slots_[id] : nullptr;
  }

  /// Ids of every slot with at least one recorded sample.
  std::vector<NameId> nonempty() const;

  void clear() noexcept;

 private:
  std::vector<Histogram> slots_;
};

/// One rank's scrapeable sinks. Counter/gauge/histogram values are atomics,
/// so a source may be exported while its owner keeps recording.
struct MetricsSource {
  int rank = 0;
  const Counters* counters = nullptr;      ///< may be null
  const HistogramSet* histograms = nullptr;  ///< may be null
  /// Optional run label: when non-empty every series of this source gets a
  /// leading run="..." label, so one hub can serve a whole campaign of
  /// concurrent runs without series collisions. Appended last so existing
  /// brace-initializers keep their meaning; empty keeps the exposition
  /// byte-identical to the single-run format.
  std::string run;
};

/// Render `sources` as Prometheus text exposition format v0.0.4 (one
/// `# TYPE` line per metric family, series labeled rank="..."; counters get
/// a `_total` suffix, histograms the `_bucket`/`_sum`/`_count` triple with
/// cumulative buckets and an `le="+Inf"` terminator).
std::string export_prometheus(std::span<const MetricsSource> sources);

/// Thread-safe registry of live per-rank sources: ranks register their
/// sinks for the lifetime of an attempt, a metrics endpoint renders
/// whatever is currently registered. add() returns a handle for remove();
/// the registered pointers must outlive the registration.
class MetricsHub {
 public:
  int add(const MetricsSource& source);
  void remove(int handle);
  std::size_t size() const;
  /// export_prometheus over the currently registered sources.
  std::string render() const;

 private:
  mutable std::mutex mu_;
  int next_handle_ = 0;
  std::vector<std::pair<int, MetricsSource>> sources_;
};

}  // namespace hacc::obs
