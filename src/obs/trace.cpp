#include "obs/trace.h"

#include <cstdio>

#include "obs/json.h"
#include "util/error.h"

namespace hacc::obs {

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  HACC_CHECK_MSG(capacity > 0, "Tracer capacity must be positive");
  ring_.resize(capacity_);   // preallocate: recording never reallocates
  tids_.reserve(64);
}

std::uint32_t Tracer::tid_slot_locked() {
  const std::thread::id me = std::this_thread::get_id();
  for (std::size_t i = 0; i < tids_.size(); ++i)
    if (tids_[i] == me) return static_cast<std::uint32_t>(i);
  tids_.push_back(me);
  return static_cast<std::uint32_t>(tids_.size() - 1);
}

void Tracer::complete(NameId name, std::uint64_t ts_ns, std::uint64_t dur_ns) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Event& e = ring_[head_ % capacity_];
  e.name = name;
  e.type = Type::kComplete;
  e.tid = tid_slot_locked();
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  ++head_;
}

void Tracer::instant(NameId name) {
  if (!enabled()) return;
  const std::uint64_t now = util::now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  Event& e = ring_[head_ % capacity_];
  e.name = name;
  e.type = Type::kInstant;
  e.tid = tid_slot_locked();
  e.ts_ns = now;
  e.dur_ns = 0;
  ++head_;
}

std::vector<Tracer::Event> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  const std::uint64_t retained = head_ < capacity_ ? head_ : capacity_;
  out.reserve(retained);
  for (std::uint64_t i = head_ - retained; i < head_; ++i)
    out.push_back(ring_[i % capacity_]);
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_ < capacity_ ? 0 : head_ - capacity_;
}

std::string Tracer::events_json(int pid) const {
  const std::vector<Event> events = snapshot();
  std::string out;
  out.reserve(events.size() * 96);
  char buf[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i > 0) out += ",\n";
    // Chrome trace_event timestamps are microseconds.
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    if (e.type == Type::kComplete) {
      const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":%d,\"tid\":%u}",
                    json_escape(name_of(e.name)).c_str(), ts_us, dur_us, pid,
                    e.tid);
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,"
                    "\"s\":\"t\",\"pid\":%d,\"tid\":%u}",
                    json_escape(name_of(e.name)).c_str(), ts_us, pid, e.tid);
    }
    out += buf;
  }
  return out;
}

void Tracer::write_chrome_trace(const std::string& path, int pid) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  HACC_CHECK_MSG(f != nullptr, "cannot open trace file " + path);
  const std::string body = events_json(pid);
  std::fprintf(f, "[\n%s\n]\n", body.c_str());
  std::fclose(f);
}

}  // namespace hacc::obs
