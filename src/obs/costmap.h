// Per-RCB-leaf cost attribution: the measured signal the roadmap's
// cost-based rebalancer needs.
//
// The short-range kernels (tree/rcb_tree.cpp, tree/multi_tree.cpp,
// p3m/chaining_mesh.cpp) already count interactions per leaf; when a
// CostMap is bound (obs::Binding third argument), they additionally time
// each leaf's kernel evaluation and record {leaf box, particles,
// interactions, kernel ns} here. One record per leaf per step — contention
// on the mutex is negligible next to the kernel work it brackets, and the
// backing vector keeps its capacity across begin_step() so the steady state
// allocates nothing after the first step.
//
// summarize() collapses a step's leaves into the imbalance numbers the
// ledger streams (see ledger.h: CostMapRecord / reduce_cost_map for the
// cross-rank reduction).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hacc::obs {

/// One leaf's measured cost for the current step.
struct LeafCost {
  std::array<float, 3> lo{};  ///< leaf bounding box (position units)
  std::array<float, 3> hi{};
  std::uint32_t particles = 0;    ///< targets in the leaf
  std::uint64_t interactions = 0;  ///< pairwise interactions evaluated
  std::uint64_t kernel_ns = 0;     ///< wall time inside evaluate_leaf
};

class CostMap {
 public:
  /// Reset for a new step; keeps the vector capacity (alloc-free steady
  /// state once the leaf count has stabilized).
  void begin_step();

  /// Thread-safe; called once per leaf from inside the kernel's parallel
  /// region.
  void record(const LeafCost& leaf);

  /// Copy of this step's records (test/inspection path).
  std::vector<LeafCost> leaves() const;
  std::size_t size() const;

  struct Summary {
    std::uint64_t leaves = 0;
    std::uint64_t particles = 0;
    std::uint64_t interactions = 0;
    std::uint64_t kernel_ns = 0;
    std::uint64_t max_leaf_ns = 0;
    double mean_leaf_ns = 0;
    /// max leaf kernel time / mean leaf kernel time (1 = perfectly flat,
    /// 0 = no leaves). The load balancer's target signal.
    double leaf_imbalance = 0;
    /// Fraction of total kernel time spent in the most expensive 10% of
    /// leaves — how concentrated the clustering is.
    double top_decile_share = 0;
    /// kernel_ns / interactions (0 when no interactions) — the measured
    /// per-interaction cost the watchdog calibrates its drift check on.
    double ns_per_interaction = 0;
  };
  Summary summarize() const;

 private:
  mutable std::mutex mu_;
  std::vector<LeafCost> leaves_;
};

}  // namespace hacc::obs
