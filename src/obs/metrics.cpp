#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>

namespace hacc::obs {

void Histogram::record(std::uint64_t ns) noexcept {
  std::size_t b = ns == 0 ? 0 : static_cast<std::size_t>(std::bit_width(ns)) - 1;
  if (b >= kBuckets) b = kBuckets - 1;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Histogram::quantile_ns(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > target) return bucket_upper_ns(b);
  }
  return bucket_upper_ns(kBuckets - 1);
}

double Histogram::mean_ns() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0
               : static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
                     static_cast<double>(n);
}

void Histogram::clear() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

std::vector<NameId> HistogramSet::nonempty() const {
  std::vector<NameId> out;
  for (std::size_t id = 0; id < slots_.size(); ++id)
    if (slots_[id].count() != 0) out.push_back(static_cast<NameId>(id));
  return out;
}

void HistogramSet::clear() noexcept {
  for (auto& h : slots_) h.clear();
}

namespace {

// Sanitize an interned name into a Prometheus metric-name fragment:
// every char outside [a-zA-Z0-9_] becomes '_'.
std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

struct Series {
  std::string labels;  // rendered {k="v",...}
  std::string value;
};

struct Family {
  std::string type;  // "counter" | "gauge" | "histogram"
  std::vector<Series> series;
};

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Scalar slot -> (family name, labels, value, type). Encodes the naming
// conventions documented in metrics.h / DESIGN.md §4j. `rank_label` is the
// prebuilt source label set (rank="N", optionally preceded by run="...").
void add_scalar(std::map<std::string, Family>& families,
                const std::string& rank_label, NameId id, std::uint64_t raw) {
  const std::string_view name = name_of(id);
  const CounterKind kind = kind_of(id);

  // phase.<X>.ns (and phase.poisson.<X>.ns) -> one hacc_phase_ns_total
  // family with the phase as a label, so dashboards can sum/stack phases
  // without knowing the taxonomy in advance.
  constexpr std::string_view kPhasePrefix = "phase.";
  constexpr std::string_view kNsSuffix = ".ns";
  if (name.size() > kPhasePrefix.size() + kNsSuffix.size() &&
      name.substr(0, kPhasePrefix.size()) == kPhasePrefix &&
      name.substr(name.size() - kNsSuffix.size()) == kNsSuffix) {
    const std::string_view phase = name.substr(
        kPhasePrefix.size(), name.size() - kPhasePrefix.size() - kNsSuffix.size());
    Family& fam = families["hacc_phase_ns_total"];
    fam.type = "counter";
    fam.series.push_back(Series{
        "{phase=\"" + std::string(phase) + "\"," + rank_label + "}", fmt_u64(raw)});
    return;
  }

  // <base>_micro gauges carry a fixed-point fractional value in a uint64
  // slot; export the real value under the bare name.
  constexpr std::string_view kMicroSuffix = "_micro";
  if (kind == CounterKind::kGauge && name.size() > kMicroSuffix.size() &&
      name.substr(name.size() - kMicroSuffix.size()) == kMicroSuffix) {
    const std::string base =
        sanitize(name.substr(0, name.size() - kMicroSuffix.size()));
    Family& fam = families["hacc_" + base];
    fam.type = "gauge";
    fam.series.push_back(
        Series{"{" + rank_label + "}", fmt_double(static_cast<double>(raw) / 1e6)});
    return;
  }

  if (kind == CounterKind::kGauge) {
    Family& fam = families["hacc_" + sanitize(name)];
    fam.type = "gauge";
    fam.series.push_back(Series{"{" + rank_label + "}", fmt_u64(raw)});
    return;
  }

  Family& fam = families["hacc_" + sanitize(name) + "_total"];
  fam.type = "counter";
  fam.series.push_back(Series{"{" + rank_label + "}", fmt_u64(raw)});
}

void add_histogram(std::map<std::string, Family>& families,
                   const std::string& rank_label, NameId id,
                   const Histogram& h) {
  const std::string base = "hacc_" + sanitize(name_of(id));
  Family& fam = families[base];
  fam.type = "histogram";

  // Cumulative buckets up to the highest nonzero one, then +Inf.
  std::size_t top = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
    if (h.bucket_count(b) != 0) top = b;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b <= top; ++b) {
    cum += h.bucket_count(b);
    fam.series.push_back(Series{
        "_bucket{" + rank_label + ",le=\"" + fmt_u64(Histogram::bucket_upper_ns(b)) +
            "\"}",
        fmt_u64(cum)});
  }
  const std::uint64_t total = h.count();
  fam.series.push_back(
      Series{"_bucket{" + rank_label + ",le=\"+Inf\"}", fmt_u64(total)});
  fam.series.push_back(Series{"_sum{" + rank_label + "}", fmt_u64(h.sum_ns())});
  fam.series.push_back(Series{"_count{" + rank_label + "}", fmt_u64(total)});
}

}  // namespace

std::string export_prometheus(std::span<const MetricsSource> sources) {
  std::map<std::string, Family> families;
  for (const MetricsSource& src : sources) {
    std::string labels;
    if (!src.run.empty()) labels = "run=\"" + src.run + "\",";
    labels += "rank=\"" + fmt_u64(static_cast<std::uint64_t>(src.rank)) + "\"";
    if (src.counters != nullptr) {
      for (const Counters::Sample& s : src.counters->snapshot()) {
        if (kind_of(s.id) == CounterKind::kHistogram) continue;  // wrong sink
        add_scalar(families, labels, s.id, s.value);
      }
    }
    if (src.histograms != nullptr) {
      for (NameId id : src.histograms->nonempty()) {
        const Histogram* h = src.histograms->find(id);
        if (h != nullptr) add_histogram(families, labels, id, *h);
      }
    }
  }

  std::string out;
  for (const auto& [name, fam] : families) {
    out += "# TYPE " + name + " " + fam.type + "\n";
    // Histogram series labels embed their _bucket/_sum/_count suffix.
    for (const Series& s : fam.series) out += name + s.labels + " " + s.value + "\n";
  }
  return out;
}

int MetricsHub::add(const MetricsSource& source) {
  std::lock_guard<std::mutex> lock(mu_);
  const int handle = next_handle_++;
  sources_.emplace_back(handle, source);
  return handle;
}

void MetricsHub::remove(int handle) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(sources_, [handle](const auto& e) { return e.first == handle; });
}

std::size_t MetricsHub::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sources_.size();
}

std::string MetricsHub::render() const {
  std::vector<MetricsSource> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(sources_.size());
    for (const auto& [handle, src] : sources_) snapshot.push_back(src);
  }
  return export_prometheus(snapshot);
}

}  // namespace hacc::obs
