#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace hacc::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace hacc::obs
