// Minimal JSON emission helpers shared by the tracer and the run ledger.
// Emission only — parsing lives in the consumers (scripts/trace_summary.py,
// tests' mini validator).
#pragma once

#include <string>
#include <string_view>

namespace hacc::obs {

/// `s` with JSON string escaping applied (quotes, backslash, control
/// characters); no surrounding quotes.
std::string json_escape(std::string_view s);

/// A finite double formatted as a JSON number (shortest round-trip-ish
/// "%.9g"); NaN/inf degrade to 0 (JSON has no encoding for them).
std::string json_number(double v);

}  // namespace hacc::obs
