#include "obs/watchdog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hacc::obs {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

}  // namespace

std::vector<Anomaly> Watchdog::observe(const StepRecord& record,
                                       const CostMapRecord* cost) {
  std::vector<Anomaly> out;

  // Straggler: worst of cross-rank wall imbalance and (when attributed)
  // cross-rank kernel-time imbalance. The cost map also names the rank.
  double imbalance = record.wall.imbalance;
  std::string who;
  if (cost != nullptr && cost->rank_kernel_s.imbalance > imbalance) {
    imbalance = cost->rank_kernel_s.imbalance;
    who = " straggler_rank=" + std::to_string(cost->straggler_rank);
  }
  if (imbalance > config_.straggler_imbalance) {
    out.push_back(Anomaly{
        "straggler", imbalance / config_.straggler_imbalance,
        "rank imbalance " + fmt(imbalance) + " exceeds " +
            fmt(config_.straggler_imbalance) + who});
  }

  // Model drift: calibrate the host's effective issue rate from the first
  // few steps (the TileKernelModel pins instructions/interaction, so the
  // measured ns/interaction has exactly one machine-dependent degree of
  // freedom), then flag excursions.
  if (cost != nullptr && cost->interactions >= config_.min_interactions &&
      cost->ns_per_interaction > 0) {
    if (calibration_seen_ < config_.calibration_steps) {
      calibration_sum_ += cost->ns_per_interaction;
      if (++calibration_seen_ == config_.calibration_steps)
        calibrated_ = calibration_sum_ / static_cast<double>(config_.calibration_steps);
    } else if (calibrated_ > 0) {
      const double deviation =
          std::abs(cost->ns_per_interaction - calibrated_) / calibrated_;
      if (deviation > config_.model_tolerance) {
        const double issue_ghz =
            model_.instructions_per_interaction() / calibrated_;
        out.push_back(Anomaly{
            "model_drift", deviation / config_.model_tolerance,
            "measured " + fmt(cost->ns_per_interaction) +
                " ns/interaction vs calibrated " + fmt(calibrated_) +
                " (model: " + fmt(model_.instructions_per_interaction()) +
                " instr/interaction at " + fmt(issue_ghz) + " Ginstr/s)"});
      }
    }
  }

  // Phase coverage: the named phases must account for most of the wall.
  if (record.wall.mean > 0) {
    auto it = record.breakdown.find("other");
    const double other = it == record.breakdown.end() ? 0.0 : it->second;
    const double coverage = 1.0 - other / record.wall.mean;
    if (coverage < config_.phase_coverage_floor) {
      out.push_back(Anomaly{
          "phase_coverage",
          config_.phase_coverage_floor / std::max(coverage, 1e-9),
          "named phases cover " + fmt(100 * coverage) + "% of step wall (floor " +
              fmt(100 * config_.phase_coverage_floor) + "%)"});
    }
  }

  total_ += out.size();
  return out;
}

EventRecord Watchdog::to_event(const Anomaly& a, int step) {
  EventRecord e;
  e.kind = "anomaly";
  e.step = step;
  e.detail = a.kind + " severity=" + fmt(a.severity) + ": " + a.detail;
  return e;
}

}  // namespace hacc::obs
