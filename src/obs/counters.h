// Per-rank counter registry: monotonic counters and latest-value gauges.
//
// Counter identity is an interned NameId shared with the global name table
// (util/names.h); counter_id()/gauge_id() additionally record the kind so
// downstream consumers (the ledger) know whether to difference per step
// (counters) or report the absolute value (gauges). Slots are atomics, so
// any thread bound to the same Counters — the rank thread plus OpenMP
// workers or test threads — may bump concurrently; adds are relaxed
// fetch_adds with no allocation ever.
//
// Taxonomy in use (see DESIGN.md §observability for the full table):
//   comm.<op>.bytes_sent / msgs_sent / bytes_recv / msgs_recv / calls
//   fft.transpose.bytes, fft.transforms
//   tree.pp_interactions, tree.walk_visits
//   refresh.migrated + refresh.active / refresh.passive (gauges)
//   gio.bytes_written, gio.bytes_read
//   mem.peak_rss_bytes (gauge)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/names.h"

namespace hacc::obs {

enum class CounterKind : std::uint8_t {
  kCounter,    ///< monotonic; per-step deltas are meaningful
  kGauge,      ///< latest value; report absolute
  kHistogram,  ///< distribution; slot lives in an obs::HistogramSet
};

/// Intern a monotonic counter name; idempotent.
NameId counter_id(std::string_view name);
/// Intern a gauge name; idempotent.
NameId gauge_id(std::string_view name);
/// Intern a histogram name (slots live in obs::HistogramSet); idempotent.
NameId histogram_id(std::string_view name);
/// The registered kind of an id (kCounter for plain interned names).
CounterKind kind_of(NameId id);

class Counters {
 public:
  /// Ids at or above this are silently dropped (the taxonomy is static and
  /// tiny; the cap exists so the slot table can be a flat atomic array).
  static constexpr std::size_t kMaxSlots = 4096;

  void add(NameId id, std::uint64_t delta) noexcept {
    if (id < kMaxSlots && delta != 0)
      slots_[id].fetch_add(delta, std::memory_order_relaxed);
  }
  void set(NameId id, std::uint64_t value) noexcept {
    if (id < kMaxSlots) slots_[id].store(value, std::memory_order_relaxed);
  }
  std::uint64_t value(NameId id) const noexcept {
    return id < kMaxSlots ? slots_[id].load(std::memory_order_relaxed) : 0;
  }

  struct Sample {
    NameId id;
    std::uint64_t value;
  };
  /// Every nonzero slot.
  std::vector<Sample> snapshot() const;

  void clear() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kMaxSlots> slots_{};
};

}  // namespace hacc::obs
