// Thread binding: how instrumented code finds the current rank's tracer
// and counters.
//
// The obs sinks are *owned* by whoever observes (Simulation owns one
// tracer + counter set per rank; tests own their own) and *found* by
// instrumented code through thread-locals: comm::Comm, the FFT, the tree
// kernels etc. call obs::add_counter()/TraceScope, which resolve to the
// sinks bound to the calling thread, or to nothing — allocation-free and
// branch-cheap — when no Binding is live. This keeps the comm and solver
// layers free of any plumbing through constructors, and makes every
// library usable untraced (tests, benches) at zero cost.
#pragma once

#include <cstdint>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/telemetry.h"

namespace hacc::obs {

class CostMap;

/// The calling thread's bound tracer/counters/cost map, or nullptr.
Tracer* tracer() noexcept;
Counters* counters() noexcept;
CostMap* cost_map() noexcept;

/// RAII: binds `tracer`/`counters`/`cost_map` (any may be null) to the
/// calling thread and installs the util::TraceHook so TimerRegistry scopes
/// feed the tracer; restores the previous binding on destruction. Bindings
/// nest. Note the binding is per-thread: OpenMP workers spawned inside a
/// bound region do NOT inherit it — kernels that attribute cost capture
/// obs::cost_map() on the rank thread before entering the parallel region.
class Binding {
 public:
  Binding(Tracer* tracer, Counters* counters,
          CostMap* cost_map = nullptr) noexcept;
  ~Binding();
  Binding(const Binding&) = delete;
  Binding& operator=(const Binding&) = delete;

 private:
  Tracer* prev_tracer_;
  Counters* prev_counters_;
  CostMap* prev_cost_;
  const util::TraceHook* prev_hook_;
  util::TraceHook hook_{};
};

/// Trace-only RAII span through the thread-bound tracer; a no-op (and
/// allocation-free) when none is bound or tracing is disabled.
class TraceScope {
 public:
  explicit TraceScope(NameId name) noexcept
      : t_(tracer()), name_(name), t0_ns_(0) {
    if (t_ != nullptr && t_->enabled())
      t0_ns_ = util::now_ns();
    else
      t_ = nullptr;
  }
  ~TraceScope() {
    if (t_ != nullptr) t_->complete(name_, t0_ns_, util::now_ns() - t0_ns_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* t_;
  NameId name_;
  std::uint64_t t0_ns_;
};

/// Bump a counter / set a gauge on the thread-bound Counters (no-op when
/// none is bound).
inline void add_counter(NameId id, std::uint64_t delta) noexcept {
  if (Counters* c = counters()) c->add(id, delta);
}
inline void set_gauge(NameId id, std::uint64_t value) noexcept {
  if (Counters* c = counters()) c->set(id, value);
}
/// Record an instant event on the thread-bound tracer.
inline void instant(NameId name) {
  if (Tracer* t = tracer()) t->instant(name);
}

/// Peak resident set size of this process in bytes (0 if unavailable).
std::uint64_t peak_rss_bytes();

}  // namespace hacc::obs
