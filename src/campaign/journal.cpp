#include "campaign/journal.h"

#include <unistd.h>

#include <cctype>
#include <cstdlib>

#include "obs/json.h"
#include "util/error.h"

namespace hacc::campaign {

std::string journal_entry_json(const JournalEntry& e) {
  std::string out = "{\"event\":\"" + obs::json_escape(e.event) + "\"";
  out += ",\"run\":\"" + obs::json_escape(e.run) + "\"";
  out += ",\"step\":" + std::to_string(e.step);
  out += ",\"attempt\":" + std::to_string(e.attempt);
  out += ",\"width\":" + std::to_string(e.width);
  out += ",\"detail\":\"" + obs::json_escape(e.detail) + "\"}";
  return out;
}

namespace {

/// Value of string key `key` in `line`, unescaping the JSON escapes
/// json_escape produces. False when the key is absent or the value is torn
/// (no closing quote — the crash happened mid-append).
bool extract_string(const std::string& line, const std::string& key,
                    std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::string value;
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') {
      *out = std::move(value);
      return true;
    }
    if (c != '\\') {
      value.push_back(c);
      continue;
    }
    if (++i >= line.size()) return false;  // torn mid-escape
    switch (line[i]) {
      case 'n': value.push_back('\n'); break;
      case 't': value.push_back('\t'); break;
      case 'r': value.push_back('\r'); break;
      case 'u':
        // json_escape only emits \u00XX for control bytes.
        if (i + 4 < line.size()) {
          value.push_back(static_cast<char>(
              std::strtol(line.substr(i + 1, 4).c_str(), nullptr, 16)));
          i += 4;
        }
        break;
      default: value.push_back(line[i]); break;
    }
  }
  return false;  // no closing quote: torn line
}

bool extract_int(const std::string& line, const std::string& key, int* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t v = at + needle.size();
  if (v >= line.size() || (line[v] != '-' && !std::isdigit(line[v])))
    return false;
  *out = std::atoi(line.c_str() + v);
  return true;
}

}  // namespace

bool parse_journal_line(const std::string& line, JournalEntry* out) {
  JournalEntry e;
  // `event` is the one mandatory field: a line without a complete event
  // value is noise (blank line, torn tail), not an entry.
  if (!extract_string(line, "event", &e.event) || e.event.empty()) return false;
  extract_string(line, "run", &e.run);
  extract_string(line, "detail", &e.detail);
  extract_int(line, "step", &e.step);
  extract_int(line, "attempt", &e.attempt);
  extract_int(line, "width", &e.width);
  *out = std::move(e);
  return true;
}

CampaignJournal::CampaignJournal(std::string path, bool append)
    : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), append ? "ab" : "wb");
  HACC_CHECK_MSG(file_ != nullptr, "cannot open campaign journal " + path_);
  if (append) {
    // Seal a torn tail: an orchestrator killed mid-append leaves an
    // unterminated fragment, and appending straight onto it would corrupt
    // the next entry too. A lone newline turns the fragment into a line the
    // replay parser already drops.
    std::FILE* r = std::fopen(path_.c_str(), "rb");
    if (r != nullptr) {
      bool torn = false;
      if (std::fseek(r, -1, SEEK_END) == 0) torn = std::fgetc(r) != '\n';
      std::fclose(r);
      if (torn) {
        std::fputc('\n', file_);
        std::fflush(file_);
        ::fsync(fileno(file_));
      }
    }
  }
}

CampaignJournal::~CampaignJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void CampaignJournal::append(const JournalEntry& e) {
  const std::string line = journal_entry_json(e) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ::fsync(fileno(file_));  // write-ahead: durable before the action proceeds
}

std::vector<JournalEntry> CampaignJournal::replay(const std::string& path) {
  std::vector<JournalEntry> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;  // no journal yet: an empty campaign
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line += buf;
    if (line.empty() || line.back() != '\n') continue;  // long line: keep
    JournalEntry e;
    if (parse_journal_line(line, &e)) out.push_back(std::move(e));
    line.clear();
  }
  // A final unterminated fragment is the torn append of the crash that
  // stopped the previous orchestrator; parse it only if it is whole enough.
  if (!line.empty()) {
    JournalEntry e;
    if (parse_journal_line(line, &e)) out.push_back(std::move(e));
  }
  std::fclose(f);
  return out;
}

}  // namespace hacc::campaign
