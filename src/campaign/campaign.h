// Campaign orchestrator: a crash-safe multi-run scheduler over the
// supervised checkpoint-restart stack (paper Sec. V; the Outer Rim-style
// production campaigns the ROADMAP targets).
//
// Production HACC science output is a *campaign* — a parameter sweep of
// dozens of multi-day runs over seeds, resolutions and cosmologies — and at
// that scale the fault-tolerance story has to hold one level above the
// Supervisor: the orchestration process itself dies, individual configs
// turn out to be poisoned, and capacity shed by a degraded run should flow
// to runs still waiting for ranks. The CampaignOrchestrator provides
// exactly that fleet layer:
//
//   * CampaignSpec — a declarative sweep (seed x grid x cosmology) expanded
//     into named RunSpecs, each with its own namespaced directory tree
//     `<root>/runs/<name>/{ckpt, insitu, ledger.jsonl}`.
//   * Write-ahead journal — every scheduling intent and every run lifecycle
//     event is an fsync'd line of `<root>/campaign.jsonl` (see journal.h).
//     A restarted orchestrator replays the journal: finished/quarantined
//     runs are never launched again, interrupted runs relaunch in resume
//     mode and restore from their newest verified checkpoint.
//   * Retry budgets + quarantine — each run gets `run_retries` relaunches
//     with exponential backoff; a run that exhausts the budget, or fails
//     repeatedly without ever publishing a checkpoint (the signature of a
//     deterministically-broken config), is quarantined so it cannot starve
//     the rest of the sweep.
//   * Elastic capacity reallocation — the fleet pool grants each launch its
//     width; when a run's elastic policy shrinks it mid-flight, the shed
//     ranks return to the pool immediately (Supervisor::on_width_change)
//     and the next queued run can be granted out of exactly that reclaimed
//     capacity. The degraded-mode machinery becomes a throughput feature.
//   * One observability surface — all runs register their per-rank sinks in
//     one shared MetricsHub under run="<name>" labels; a single
//     MetricsServer exposes /metrics for the whole fleet and /healthz with
//     the campaign scheduler state.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/journal.h"
#include "comm/comm.h"
#include "core/supervisor.h"
#include "cosmology/background.h"
#include "obs/counters.h"
#include "obs/metrics.h"
#include "serve/metrics_server.h"
#include "util/timer.h"

namespace hacc::campaign {

/// One fully resolved member of the sweep. `name` doubles as the run's
/// directory name and its metrics/journal label, so it must be unique and
/// filesystem-safe (CampaignSpec::expand guarantees both).
struct RunSpec {
  std::string name;
  core::SimulationConfig sim;
  cosmology::Cosmology cosmo;
  int width = 4;  ///< ranks requested from the fleet pool at launch
};

/// A named cosmology for the sweep's cosmology axis.
struct CosmologyVariant {
  std::string tag;  ///< name fragment, e.g. "w-0.9" (must be fs-safe)
  cosmology::Cosmology cosmo;
};

/// Declarative sweep: the cross product of seeds x grids x cosmologies over
/// a base configuration. Empty axes default to the base value, so the
/// smallest campaign is one run.
struct CampaignSpec {
  core::SimulationConfig base;
  cosmology::Cosmology cosmo;
  std::vector<std::uint64_t> seeds;  ///< IC seeds (empty = {base.seed})
  /// PM grid sizes; particles_per_dim scales proportionally from the base
  /// ratio. Empty = {base.grid}.
  std::vector<std::size_t> grids;
  std::vector<CosmologyVariant> cosmologies;  ///< empty = {{"", cosmo}}
  int width = 4;  ///< launch width of every run
  /// Optional per-run adjustment applied to each expanded member (after its
  /// name is assigned, before uniqueness checking): width overrides for a
  /// heterogeneous fleet, per-run step counts, and so on.
  std::function<void(RunSpec&)> tweak;

  /// The cross product, named "s<seed>[_g<grid>][_<tag>]" (axis fragments
  /// appear only when that axis has more than one value, except non-empty
  /// cosmology tags, which always appear).
  std::vector<RunSpec> expand() const;
};

/// Scheduler state of one run. Terminal states are kFinished (reached
/// sim.steps with clean health) and kQuarantined (given up on).
enum class RunPhase { kQueued, kRunning, kFinished, kQuarantined };
const char* run_phase_name(RunPhase phase);

/// Everything the orchestrator knows about one run, exposed in the report.
struct RunStatus {
  RunSpec spec;
  RunPhase phase = RunPhase::kQueued;
  int launches = 0;      ///< supervisor launches, journal-replayed included
  int failures = 0;      ///< launches that did not finish the run
  int granted = 0;       ///< ranks currently held from the pool
  bool replayed_terminal = false;  ///< finished/quarantined by a previous
                                   ///< orchestrator; never launched here
  bool scheduled = false;  ///< a `scheduled` intent is durably journaled
  core::SupervisorReport report;   ///< of the last launch in this process
  std::string last_error;
  double next_eligible_s = 0;  ///< backoff deadline (campaign clock seconds)
};

struct CampaignConfig {
  /// Campaign root: `campaign.jsonl` plus one `runs/<name>/` tree per run.
  std::string root_dir;
  /// Total ranks the pool may have granted at any instant.
  int fleet_ranks = 8;
  /// Concurrent runs cap (<= worker threads); 0 = no cap beyond the pool.
  int max_concurrent_runs = 2;
  /// Orchestrator-level relaunch budget per run, on top of the Supervisor's
  /// own in-launch retries. Exhausting it quarantines the run.
  int run_retries = 2;
  /// Exponential relaunch backoff: a run's k-th failure delays its next
  /// launch by retry_backoff_s * 2^(k-1) campaign-clock seconds.
  double retry_backoff_s = 0;
  // ---- per-run Supervisor settings (see core/supervisor.h) ----
  int checkpoint_every = 1;
  int keep = 2;
  int supervisor_retries = 1;  ///< SupervisorConfig::max_retries per launch
  double max_momentum_drift = 0;
  core::ElasticPolicy elastic;
  comm::MachineOptions machine;  ///< fault_plan is ignored; use fault_plans
  bool ledger = true;  ///< write runs/<name>/ledger.jsonl per run
  int insitu_cadence = 0;  ///< in-situ catalog cadence per run (0 = off)
  /// Campaign-wide observability endpoint: -1 = off, 0 = ephemeral port.
  int metrics_port = -1;
  /// Per-run fault schedule factory (chaos testing): called once per run at
  /// its first launch in this process; the returned plan is shared across
  /// that run's relaunches (one-shot faults stay one-shot per run, like a
  /// node that died once) but never across runs. May be null.
  std::function<std::shared_ptr<comm::FaultPlan>(const RunSpec&)> fault_plans;
  /// Test/ops knob: stop granting after this many supervisor launches in
  /// this process and return with `interrupted` set — simulates an
  /// orchestrator killed mid-campaign; the journal lets the next process
  /// resume. <= 0 = no limit.
  int max_launches = 0;
  /// Test hook: forwarded to each Supervisor's on_finished (runs on every
  /// rank of the successful attempt, machine still up).
  std::function<void(const RunSpec&, core::Simulation&, comm::Comm&)>
      on_run_finished;
  /// Test hook: called on the worker thread after a launch returns, with
  /// the orchestrator lock released.
  std::function<void(const RunSpec&, const core::SupervisorReport&)> after_run;
};

struct CampaignReport {
  bool completed = false;    ///< every run reached a terminal phase
  bool interrupted = false;  ///< max_launches cut this process short
  int launched = 0;          ///< supervisor launches in this process
  int finished = 0;          ///< terminal kFinished (replayed included)
  int quarantined = 0;       ///< terminal kQuarantined (replayed included)
  int replay_skipped = 0;    ///< terminal before this process started
  int grants = 0;            ///< width grants issued from the pool
  int shrink_reclaimed = 0;  ///< ranks returned mid-run by elastic shrinks
  /// Grants (their rank count) satisfied only because a shrink had returned
  /// capacity — the reallocation the tentpole promises, made countable.
  int shrink_regrant_ranks = 0;
  double makespan_s = 0;     ///< wall seconds of this process's run()
  /// Busy rank-seconds / (fleet_ranks * makespan): how full the pool ran.
  double utilization = 0;
  std::vector<RunStatus> runs;
};

/// Drives a whole sweep to completion across run failures and orchestrator
/// restarts. Construct (replays any existing journal under root_dir), call
/// run() once; construct again on the same root to resume after a crash.
class CampaignOrchestrator {
 public:
  CampaignOrchestrator(const CampaignSpec& spec, CampaignConfig config);
  ~CampaignOrchestrator();
  CampaignOrchestrator(const CampaignOrchestrator&) = delete;
  CampaignOrchestrator& operator=(const CampaignOrchestrator&) = delete;

  CampaignReport run();

  /// `<root>/runs/<name>` — the run's namespaced directory.
  std::string run_dir(const std::string& name) const;
  static std::string journal_path(const std::string& root_dir);

  /// Bound port of the shared metrics endpoint (-1 when off).
  int metrics_port() const noexcept {
    return metrics_server_ ? metrics_server_->port() : -1;
  }
  /// The shared per-run source registry behind /metrics.
  obs::MetricsHub& metrics_hub() noexcept { return hub_; }

 private:
  struct Launch;  // per-launch context handed to a worker thread

  void replay_journal();
  void start_metrics_server();
  std::string healthz_json();
  /// Scheduler predicate + grant bookkeeping; called under mu_.
  int pick_launchable(double now);
  void note_busy_change(double now);
  void worker_main(int index, int width, bool resume);
  /// Supervisor::on_width_change target: return (from - to) ranks to the
  /// pool mid-run and tag them as shrink-reclaimed capacity.
  void reclaim_ranks(int index, int from_width, int to_width);
  void finish_launch(int index, const core::SupervisorReport& report);

  CampaignSpec spec_;
  CampaignConfig config_;
  std::vector<RunStatus> runs_;
  /// Per-run fault plans, parallel to runs_ (kept across relaunches).
  std::vector<std::shared_ptr<comm::FaultPlan>> plans_;
  std::unique_ptr<CampaignJournal> journal_;
  CampaignReport report_;

  std::mutex mu_;
  std::condition_variable cv_;
  Timer clock_;             ///< campaign-clock origin (backoff, makespan)
  int pool_available_ = 0;  ///< unclaimed ranks
  int shrink_pool_ = 0;     ///< of those, ranks returned by mid-run shrinks
  int active_ = 0;          ///< running launches
  bool halted_ = false;     ///< max_launches tripped: no more grants
  // Pool-utilization integral: busy_ranks_ held constant between changes.
  int busy_ranks_ = 0;
  double busy_ranksec_ = 0;
  double last_change_s_ = 0;
  std::vector<std::thread> workers_;

  obs::Counters counters_;  ///< campaign.* fleet counters (see DESIGN §4l)
  obs::MetricsHub hub_;
  std::unique_ptr<serve::MetricsServer> metrics_server_;
};

}  // namespace hacc::campaign
