#include "campaign/campaign.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "util/error.h"

namespace hacc::campaign {

namespace fs = std::filesystem;

std::vector<RunSpec> CampaignSpec::expand() const {
  HACC_CHECK_MSG(base.grid > 0 && base.particles_per_dim > 0,
                 "CampaignSpec base needs a grid and particles");
  const std::vector<std::uint64_t> seed_axis =
      seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;
  const std::vector<std::size_t> grid_axis =
      grids.empty() ? std::vector<std::size_t>{base.grid} : grids;
  const std::vector<CosmologyVariant> cosmo_axis =
      cosmologies.empty() ? std::vector<CosmologyVariant>{{"", cosmo}}
                          : cosmologies;
  std::vector<RunSpec> out;
  out.reserve(seed_axis.size() * grid_axis.size() * cosmo_axis.size());
  for (const std::uint64_t seed : seed_axis) {
    for (const std::size_t grid : grid_axis) {
      for (const CosmologyVariant& cv : cosmo_axis) {
        RunSpec r;
        r.sim = base;
        r.sim.seed = seed;
        r.sim.grid = grid;
        // Keep the base particle-per-cell loading when the grid axis sweeps
        // resolution.
        r.sim.particles_per_dim =
            std::max<std::size_t>(1, base.particles_per_dim * grid / base.grid);
        r.cosmo = cv.cosmo;
        r.width = width;
        r.name = "s" + std::to_string(seed);
        if (grid_axis.size() > 1) r.name += "_g" + std::to_string(grid);
        if (!cv.tag.empty()) r.name += "_" + cv.tag;
        if (tweak) tweak(r);
        out.push_back(std::move(r));
      }
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    for (std::size_t j = i + 1; j < out.size(); ++j)
      HACC_CHECK_MSG(out[i].name != out[j].name,
                     "campaign expands to duplicate run name " + out[i].name +
                         " (give cosmology variants distinct tags)");
  return out;
}

const char* run_phase_name(RunPhase phase) {
  switch (phase) {
    case RunPhase::kQueued: return "queued";
    case RunPhase::kRunning: return "running";
    case RunPhase::kFinished: return "finished";
    case RunPhase::kQuarantined: return "quarantined";
  }
  return "?";
}

std::string CampaignOrchestrator::journal_path(const std::string& root_dir) {
  return root_dir + "/campaign.jsonl";
}

std::string CampaignOrchestrator::run_dir(const std::string& name) const {
  return config_.root_dir + "/runs/" + name;
}

CampaignOrchestrator::CampaignOrchestrator(const CampaignSpec& spec,
                                           CampaignConfig config)
    : spec_(spec), config_(std::move(config)) {
  HACC_CHECK_MSG(!config_.root_dir.empty(),
                 "CampaignOrchestrator needs a root directory");
  HACC_CHECK(config_.fleet_ranks >= 1 && config_.run_retries >= 0);
  fs::create_directories(config_.root_dir + "/runs");
  for (RunSpec& r : spec_.expand()) {
    HACC_CHECK_MSG(r.width >= 1 && r.width <= config_.fleet_ranks,
                   "run " + r.name + " wants " + std::to_string(r.width) +
                       " ranks but the fleet has " +
                       std::to_string(config_.fleet_ranks));
    RunStatus st;
    st.spec = std::move(r);
    runs_.push_back(std::move(st));
    plans_.emplace_back();
  }
  // Recover the fleet state a previous orchestrator made durable *before*
  // opening the journal for append: a killed orchestrator resumes here.
  replay_journal();
  journal_ = std::make_unique<CampaignJournal>(journal_path(config_.root_dir),
                                               /*append=*/true);
  pool_available_ = config_.fleet_ranks;
  // The fleet's own counters ride the shared hub beside the per-run rank
  // sources, labeled as the pseudo-run "campaign".
  hub_.add(obs::MetricsSource{0, &counters_, nullptr, "campaign"});
  // Bind the campaign endpoint now so metrics_port() is known (and the
  // scheduler state scrapeable) before run() starts the sweep.
  start_metrics_server();
}

CampaignOrchestrator::~CampaignOrchestrator() {
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

void CampaignOrchestrator::replay_journal() {
  const std::vector<JournalEntry> entries =
      CampaignJournal::replay(journal_path(config_.root_dir));
  for (const JournalEntry& e : entries) {
    if (e.run.empty()) continue;  // campaign-level entry
    RunStatus* st = nullptr;
    for (RunStatus& r : runs_)
      if (r.spec.name == e.run) {
        st = &r;
        break;
      }
    if (st == nullptr) continue;  // spec drifted; tolerate stale entries
    if (e.event == "scheduled") {
      st->scheduled = true;
    } else if (e.event == "started") {
      ++st->launches;
    } else if (e.event == "failed") {
      ++st->failures;
      st->last_error = e.detail;
    } else if (e.event == "finished") {
      st->phase = RunPhase::kFinished;
      st->replayed_terminal = true;
    } else if (e.event == "quarantined") {
      st->phase = RunPhase::kQuarantined;
      st->replayed_terminal = true;
    }
  }
  for (const RunStatus& st : runs_)
    if (st.replayed_terminal) ++report_.replay_skipped;
}

void CampaignOrchestrator::start_metrics_server() {
  if (config_.metrics_port < 0 || metrics_server_) return;
  serve::MetricsServer::Config mcfg;
  mcfg.port = config_.metrics_port;
  metrics_server_ = std::make_unique<serve::MetricsServer>(mcfg);
  metrics_server_->set_metrics_handler([this] { return hub_.render(); });
  metrics_server_->set_healthz_handler([this] { return healthz_json(); });
}

std::string CampaignOrchestrator::healthz_json() {
  std::lock_guard<std::mutex> lock(mu_);
  int queued = 0, running = 0, finished = 0, quarantined = 0;
  std::string runs = "{";
  for (const RunStatus& st : runs_) {
    switch (st.phase) {
      case RunPhase::kQueued: ++queued; break;
      case RunPhase::kRunning: ++running; break;
      case RunPhase::kFinished: ++finished; break;
      case RunPhase::kQuarantined: ++quarantined; break;
    }
    if (runs.size() > 1) runs += ",";
    runs += "\"" + st.spec.name + "\":\"" + run_phase_name(st.phase) + "\"";
  }
  runs += "}";
  const bool done = queued == 0 && running == 0;
  std::string body = "{\"status\":\"";
  body += done ? "ok" : "running";
  body += "\",\"queued\":" + std::to_string(queued);
  body += ",\"running\":" + std::to_string(running);
  body += ",\"finished\":" + std::to_string(finished);
  body += ",\"quarantined\":" + std::to_string(quarantined);
  body += ",\"pool_available\":" + std::to_string(pool_available_);
  body += ",\"fleet_ranks\":" + std::to_string(config_.fleet_ranks);
  body += ",\"runs\":" + runs + "}";
  return body;
}

void CampaignOrchestrator::note_busy_change(double now) {
  busy_ranksec_ += busy_ranks_ * std::max(0.0, now - last_change_s_);
  last_change_s_ = now;
}

int CampaignOrchestrator::pick_launchable(double now) {
  if (halted_) return -1;
  if (config_.max_concurrent_runs > 0 &&
      active_ >= config_.max_concurrent_runs)
    return -1;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const RunStatus& st = runs_[i];
    if (st.phase != RunPhase::kQueued) continue;
    if (st.next_eligible_s > now) continue;  // backoff pending
    if (st.spec.width > pool_available_) continue;
    return static_cast<int>(i);
  }
  return -1;
}

CampaignReport CampaignOrchestrator::run() {
  clock_.reset();
  // Write-ahead intents: every sweep member is durably `scheduled` before
  // anything launches, so a replaying orchestrator knows the full work
  // list even if this process dies during the very first run.
  for (RunStatus& st : runs_) {
    if (st.scheduled) continue;
    journal_->append(JournalEntry{"scheduled", st.spec.name, -1, -1,
                                  st.spec.width, "sweep member"});
    st.scheduled = true;
  }
  journal_->append(JournalEntry{
      "orchestrator_start", "", -1, -1, config_.fleet_ranks,
      std::to_string(runs_.size()) + " run(s), " +
          std::to_string(report_.replay_skipped) + " already terminal"});

  std::unique_lock<std::mutex> lock(mu_);
  last_change_s_ = clock_.elapsed();
  for (;;) {
    const double now = clock_.elapsed();
    const int idx = pick_launchable(now);
    if (idx >= 0) {
      RunStatus& st = runs_[static_cast<std::size_t>(idx)];
      const int width = st.spec.width;
      // Grant: does this grant consume capacity an elastic shrink returned?
      const int reclaimed_used = std::min(shrink_pool_, width);
      shrink_pool_ -= reclaimed_used;
      report_.shrink_regrant_ranks += reclaimed_used;
      pool_available_ -= width;
      note_busy_change(now);
      busy_ranks_ += width;
      st.granted = width;
      st.phase = RunPhase::kRunning;
      const int launch_no = st.launches++;
      const bool resume = launch_no > 0;
      ++report_.launched;
      ++report_.grants;
      counters_.add(obs::counter_id("campaign.grants"), 1);
      if (reclaimed_used > 0)
        counters_.add(obs::counter_id("campaign.shrink_regrant_ranks"),
                      static_cast<std::uint64_t>(reclaimed_used));
      counters_.set(obs::gauge_id("campaign.active_runs"),
                    static_cast<std::uint64_t>(++active_));
      counters_.set(obs::gauge_id("campaign.pool_available"),
                    static_cast<std::uint64_t>(pool_available_));
      journal_->append(JournalEntry{
          "grant", st.spec.name, -1, launch_no, width,
          std::to_string(width) + " rank(s) from pool" +
              (reclaimed_used > 0
                   ? ", " + std::to_string(reclaimed_used) +
                         " of them shrink-reclaimed capacity"
                   : "")});
      if (config_.max_launches > 0 &&
          report_.launched >= config_.max_launches)
        halted_ = true;  // simulate the orchestrator dying after this grant
      workers_.emplace_back([this, idx, width, resume] {
        worker_main(idx, width, resume);
      });
      continue;  // the pool may hold another launchable run
    }
    bool all_terminal = true;
    for (const RunStatus& st : runs_)
      if (st.phase == RunPhase::kQueued || st.phase == RunPhase::kRunning)
        all_terminal = false;
    if (all_terminal && active_ == 0) break;
    if (halted_ && active_ == 0) {
      report_.interrupted = true;
      break;
    }
    // Wake on launch completions/reclaims; poll for backoff deadlines.
    cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
  note_busy_change(clock_.elapsed());
  lock.unlock();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  report_.makespan_s = clock_.elapsed();
  const double capacity = config_.fleet_ranks * report_.makespan_s;
  report_.utilization = capacity > 0 ? busy_ranksec_ / capacity : 0;
  report_.finished = 0;
  report_.quarantined = 0;
  bool all_terminal = true;
  for (const RunStatus& st : runs_) {
    if (st.phase == RunPhase::kFinished) ++report_.finished;
    else if (st.phase == RunPhase::kQuarantined) ++report_.quarantined;
    else all_terminal = false;
  }
  report_.completed = all_terminal;
  journal_->append(JournalEntry{
      "orchestrator_stop", "", -1, -1, 0,
      std::string(report_.interrupted ? "interrupted: " : "complete: ") +
          std::to_string(report_.finished) + " finished, " +
          std::to_string(report_.quarantined) + " quarantined"});
  report_.runs = runs_;
  return report_;
}

void CampaignOrchestrator::worker_main(int index, int width, bool resume) {
  RunStatus& st = runs_[static_cast<std::size_t>(index)];
  const RunSpec& spec = st.spec;
  const std::string dir = run_dir(spec.name);
  fs::create_directories(dir + "/ckpt");

  int launch_no = 0;
  comm::FaultPlan* plan = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    launch_no = st.launches - 1;
    // One plan per run, created at first launch and reused across its
    // relaunches: one-shot faults stay one-shot for the *run*, exactly like
    // a node that died once — but never leak into other runs.
    auto& slot = plans_[static_cast<std::size_t>(index)];
    if (!slot && config_.fault_plans) slot = config_.fault_plans(spec);
    plan = slot.get();
  }

  core::SupervisorConfig scfg;
  scfg.sim = spec.sim;
  scfg.sim.ledger_path = config_.ledger ? dir + "/ledger.jsonl" : "";
  scfg.sim.trace_path.clear();
  if (config_.insitu_cadence > 0) {
    scfg.sim.insitu.cadence = config_.insitu_cadence;
    scfg.sim.insitu.output_dir = dir + "/insitu";
  } else {
    scfg.sim.insitu.cadence = 0;
    scfg.sim.insitu.output_dir.clear();
  }
  scfg.nranks = width;
  scfg.elastic = config_.elastic;
  scfg.elastic.min_ranks = std::min(scfg.elastic.min_ranks, width);
  scfg.checkpoint_dir = dir + "/ckpt";
  scfg.checkpoint_every = config_.checkpoint_every;
  scfg.keep = config_.keep;
  scfg.max_retries = config_.supervisor_retries;
  scfg.max_momentum_drift = config_.max_momentum_drift;
  scfg.machine = config_.machine;
  scfg.machine.fault_plan = plan;
  scfg.metrics_port = -1;  // the campaign owns the one shared endpoint
  scfg.resume = resume;
  scfg.shared_hub = &hub_;
  scfg.run_label = spec.name;

  journal_->append(JournalEntry{
      "started", spec.name, -1, launch_no, width,
      resume ? "resume from newest verified checkpoint" : "cold start"});

  core::SupervisorReport rep;
  std::string error;
  try {
    core::Supervisor sup(spec.cosmo, scfg);
    sup.on_event = [this, &spec, launch_no](const obs::EventRecord& e) {
      // Mirror the run's Supervisor audit trail into the campaign rollup;
      // the journal vocabulary names checkpoint publication "checkpointed".
      journal_->append(JournalEntry{
          e.kind == "checkpoint" ? "checkpointed" : e.kind, spec.name, e.step,
          launch_no, 0, e.detail});
    };
    sup.on_width_change = [this, index](int from, int to) {
      reclaim_ranks(index, from, to);
    };
    if (config_.on_run_finished)
      sup.on_finished = [this, &spec](core::Simulation& sim,
                                      comm::Comm& comm) {
        config_.on_run_finished(spec, sim, comm);
      };
    rep = sup.run();
  } catch (const std::exception& e) {
    // A Supervisor constructor failure or an escape from its control loop:
    // count it like any failed launch.
    rep.completed = false;
    error = e.what();
  }
  if (!error.empty()) rep.last_error = error;
  finish_launch(index, rep);
  if (config_.after_run) config_.after_run(spec, rep);
}

void CampaignOrchestrator::reclaim_ranks(int index, int from_width,
                                         int to_width) {
  if (to_width >= from_width) return;
  std::lock_guard<std::mutex> lock(mu_);
  RunStatus& st = runs_[static_cast<std::size_t>(index)];
  const int freed = std::min(from_width - to_width, st.granted);
  if (freed <= 0) return;
  const double now = clock_.elapsed();
  note_busy_change(now);
  busy_ranks_ -= freed;
  st.granted -= freed;
  pool_available_ += freed;
  shrink_pool_ += freed;
  report_.shrink_reclaimed += freed;
  counters_.add(obs::counter_id("campaign.shrink_reclaimed_ranks"),
                static_cast<std::uint64_t>(freed));
  counters_.set(obs::gauge_id("campaign.pool_available"),
                static_cast<std::uint64_t>(pool_available_));
  journal_->append(JournalEntry{
      "reclaim", st.spec.name, -1, st.launches - 1, freed,
      "elastic shrink " + std::to_string(from_width) + " -> " +
          std::to_string(to_width) + " returned " + std::to_string(freed) +
          " rank(s) to the pool"});
  cv_.notify_all();
}

void CampaignOrchestrator::finish_launch(int index,
                                         const core::SupervisorReport& rep) {
  std::lock_guard<std::mutex> lock(mu_);
  RunStatus& st = runs_[static_cast<std::size_t>(index)];
  const double now = clock_.elapsed();
  note_busy_change(now);
  busy_ranks_ -= st.granted;
  pool_available_ += st.granted;
  st.granted = 0;
  st.report = rep;
  const int launch_no = st.launches - 1;
  if (rep.completed) {
    st.phase = RunPhase::kFinished;
    counters_.add(obs::counter_id("campaign.runs_finished"), 1);
    journal_->append(JournalEntry{
        "finished", st.spec.name, rep.final_step, launch_no, rep.final_width,
        std::to_string(rep.attempts) + " attempt(s), " +
            std::to_string(rep.restores) + " restore(s), " +
            std::to_string(rep.shrinks) + " shrink(s)"});
  } else {
    ++st.failures;
    st.last_error = rep.last_error;
    counters_.add(obs::counter_id("campaign.launch_failures"), 1);
    journal_->append(JournalEntry{"failed", st.spec.name, rep.final_step,
                                  launch_no, rep.final_width, rep.last_error});
    // Quarantine: the relaunch budget is gone, or the run keeps dying
    // without ever publishing a checkpoint — zero progress twice is the
    // signature of a deterministically-poisoned config, and relaunching it
    // forever would starve the queued runs behind it.
    const bool no_progress =
        core::CheckpointSet(run_dir(st.spec.name) + "/ckpt", 1)
            .existing()
            .empty();
    if (st.failures > config_.run_retries ||
        (no_progress && st.failures >= 2)) {
      st.phase = RunPhase::kQuarantined;
      counters_.add(obs::counter_id("campaign.runs_quarantined"), 1);
      journal_->append(JournalEntry{
          "quarantined", st.spec.name, -1, launch_no, 0,
          st.failures > config_.run_retries
              ? "retry budget exhausted (" + std::to_string(st.failures) +
                    " failure(s)): " + st.last_error
              : "no checkpoint after " + std::to_string(st.failures) +
                    " failures: deterministic failure suspected"});
    } else {
      st.phase = RunPhase::kQueued;
      st.next_eligible_s =
          config_.retry_backoff_s > 0
              ? now + config_.retry_backoff_s *
                          static_cast<double>(1 << (st.failures - 1))
              : now;
    }
  }
  counters_.set(obs::gauge_id("campaign.active_runs"),
                static_cast<std::uint64_t>(--active_));
  counters_.set(obs::gauge_id("campaign.pool_available"),
                static_cast<std::uint64_t>(pool_available_));
  cv_.notify_all();
}

}  // namespace hacc::campaign
