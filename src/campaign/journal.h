// Crash-safe write-ahead campaign journal.
//
// A campaign is dozens of supervised runs stretched over days; the
// orchestrator process driving them is itself mortal (node loss, operator
// restart, OOM). The journal is the orchestrator's only durable state: one
// fsync'd JSON line per scheduling decision and per run lifecycle event
// (`scheduled`, `started`, `checkpointed`, `finished`, `failed`,
// `quarantined`, plus pool traffic `grant`/`reclaim` and the mirrored
// Supervisor audit trail), appended *before* the action it describes takes
// effect wherever possible. A restarted orchestrator replays the file,
// reconstructs every run's phase and failure count, and resumes the sweep
// without re-running finished work — the same write-ahead discipline the
// per-run ledger (obs/ledger.h) applies to one simulation, lifted to the
// fleet.
//
// The replay parser is deliberately tolerant: a torn final line (the crash
// happened mid-append, before the fsync landed) is dropped, unknown keys
// are ignored, and missing integer fields default — a journal written by a
// newer build must never wedge an older reader mid-recovery.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace hacc::campaign {

/// One line of `campaign.jsonl`. Campaign-level entries (pool grants,
/// orchestrator start/stop) leave `run` empty; run-level entries carry the
/// run's name so one file rolls up the whole sweep.
struct JournalEntry {
  std::string event;   ///< "scheduled", "started", "checkpointed", ...
  std::string run;     ///< run name ("" = campaign-level)
  int step = -1;       ///< step the event refers to (-1 = n/a)
  int attempt = -1;    ///< orchestrator launch number for the run (-1 = n/a)
  int width = 0;       ///< ranks involved (grant width, run width; 0 = n/a)
  std::string detail;  ///< free-form human-readable context
};

/// Serialize `e` as one JSON object (no trailing newline).
std::string journal_entry_json(const JournalEntry& e);

/// Parse one journal line. Returns false for blank, torn or non-JSON lines
/// (replay skips them); missing fields keep their defaults.
bool parse_journal_line(const std::string& line, JournalEntry* out);

/// Append-only fsync'd journal writer. Thread-safe: Supervisor rank threads
/// mirror events into the campaign rollup while the scheduler thread writes
/// intents, so every append is serialized and durable before it returns.
class CampaignJournal {
 public:
  /// Opens `path` for appending (creating it if absent); truncates instead
  /// when `append` is false. Throws when the file cannot be opened.
  explicit CampaignJournal(std::string path, bool append = true);
  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Write one line and fsync it: when append() returns, the entry survives
  /// the orchestrator dying on the very next instruction.
  void append(const JournalEntry& e);

  const std::string& path() const noexcept { return path_; }

  /// Read every parseable entry of `path` in file order. A missing file is
  /// an empty campaign, not an error; a torn trailing line is dropped.
  static std::vector<JournalEntry> replay(const std::string& path);

 private:
  std::string path_;
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

}  // namespace hacc::campaign
