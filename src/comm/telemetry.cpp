#include "comm/telemetry.h"

#include <array>
#include <string>

#include "comm/fault.h"

namespace hacc::comm::telemetry {

namespace {

constexpr std::array<const char*, static_cast<int>(Op::kOpCount)> kOpNames = {
    "p2p",    "barrier", "bcast",   "reduce", "gather",
    "allgather", "gatherv", "alltoall", "scan", "nbr_alltoall"};

std::array<OpIds, static_cast<int>(Op::kOpCount)> build_ids() {
  std::array<OpIds, static_cast<int>(Op::kOpCount)> table{};
  for (int i = 0; i < static_cast<int>(Op::kOpCount); ++i) {
    const std::string base = std::string("comm.") + kOpNames[static_cast<std::size_t>(i)];
    table[static_cast<std::size_t>(i)] =
        OpIds{obs::counter_id(base + ".bytes_sent"),
              obs::counter_id(base + ".msgs_sent"),
              obs::counter_id(base + ".bytes_recv"),
              obs::counter_id(base + ".msgs_recv"),
              obs::counter_id(base + ".calls")};
  }
  return table;
}

const std::array<OpIds, static_cast<int>(Op::kOpCount)>& id_table() noexcept {
  static const auto table = build_ids();
  return table;
}

thread_local Op g_op = Op::kP2p;

}  // namespace

const OpIds& ids(Op op) noexcept {
  return id_table()[static_cast<std::size_t>(op)];
}

const char* op_name(Op op) noexcept {
  return kOpNames[static_cast<std::size_t>(op)];
}

Op current_op() noexcept { return g_op; }

OpGuard::OpGuard(Op op) : prev_(g_op) {
  fault::on_collective(op);  // may throw an injected collective failure
  g_op = op;
  obs::add_counter(ids(op).calls, 1);
}

OpGuard::~OpGuard() { g_op = prev_; }

void on_send(std::size_t bytes) noexcept {
  obs::Counters* c = obs::counters();
  if (c == nullptr) return;
  const OpIds& i = ids(g_op);
  c->add(i.bytes_sent, bytes);
  c->add(i.msgs_sent, 1);
}

void on_recv(std::size_t bytes) noexcept {
  obs::Counters* c = obs::counters();
  if (c == nullptr) return;
  const OpIds& i = ids(g_op);
  c->add(i.bytes_recv, bytes);
  c->add(i.msgs_recv, 1);
}

}  // namespace hacc::comm::telemetry
