// Communicator: the MPI-subset interface HACC's algorithms need.
//
// Point-to-point sends are buffered (enqueue into the destination mailbox and
// return), receives block. Collectives are implemented *on top of*
// point-to-point with the standard distributed algorithms — dissemination
// barrier, binomial-tree broadcast/reduce, ring allgather, pairwise-exchange
// all-to-all — so the communication structure exercised by the pencil FFT and
// the overload refresh matches what an MPI build would do on a real machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/message.h"
#include "comm/telemetry.h"
#include "util/error.h"

namespace hacc::comm {

class MachineState;
class FaultPlan;

/// Reduction operators supported by reduce/allreduce/scan.
enum class ReduceOp { kSum, kMin, kMax };

/// Thrown out of a blocking receive whose deadline expired. The what()
/// string is the full who-waits-on-whom stuck-rank report (every rank's
/// pending peer, tag, op class, and wall seconds), so a distributed hang
/// turns into a diagnosis instead of a frozen job.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& report) : Error(report) {}
};

/// Runtime knobs of one simulated machine (Machine::run).
struct MachineOptions {
  /// Deadline for every blocking receive (collectives included), in
  /// seconds. On expiry the waiting rank throws DeadlockError carrying the
  /// stuck-rank report instead of hanging forever. 0 = wait forever.
  double recv_timeout_s = 0;
  /// Compute an end-to-end FNV-1a checksum per message at the send site and
  /// verify it at the receive site; a mismatch (e.g. an injected bit-flip
  /// in transit) throws and aborts the machine with a diagnosis.
  bool verify_payloads = false;
  /// Deterministic fault schedule to install on every rank (see fault.h).
  FaultPlan* fault_plan = nullptr;
};

/// A group of ranks with an isolated message context (like MPI_Comm).
///
/// Comm objects are per-thread handles; they are cheap to copy. All
/// collectives must be entered by every rank of the communicator.
class Comm {
 public:
  /// Creates an invalid handle (valid() == false); assign a real
  /// communicator to it later (e.g. from split()).
  Comm() = default;

  /// Rank of the calling thread within this communicator.
  int rank() const noexcept { return rank_; }
  /// Number of ranks in this communicator.
  int size() const noexcept { return static_cast<int>(group_->size()); }

  // ---- Point-to-point -----------------------------------------------------

  /// Buffered send of raw bytes to `dest` (rank in this communicator).
  void send_bytes(int dest, int tag, std::span<const std::byte> bytes) const;

  /// Buffered send that *moves* the payload into the destination mailbox —
  /// no intermediate copy when the caller already owns the buffer.
  void send_bytes(int dest, int tag, std::vector<std::byte>&& bytes) const;

  /// Blocking receive from `source`; returns the payload.
  std::vector<std::byte> recv_bytes(int source, int tag) const;

  /// Typed send of a contiguous trivially-copyable range.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) const {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(data));
  }
  template <typename T>
  void send_value(int dest, int tag, const T& value) const {
    send(dest, tag, std::span<const T>(&value, 1));
  }

  /// Typed receive into a caller buffer; message size must match exactly.
  template <typename T>
  void recv(int source, int tag, std::span<T> out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = recv_bytes(source, tag);
    HACC_CHECK_MSG(bytes.size() == out.size_bytes(),
                   "recv size mismatch (tag " + std::to_string(tag) + ")");
    std::memcpy(out.data(), bytes.data(), bytes.size());
  }
  template <typename T>
  T recv_value(int source, int tag) const {
    T v{};
    recv(source, tag, std::span<T>(&v, 1));
    return v;
  }
  /// Typed receive of unknown length.
  template <typename T>
  std::vector<T> recv_vector(int source, int tag) const {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = recv_bytes(source, tag);
    HACC_CHECK(bytes.size() % sizeof(T) == 0);
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Combined send+recv (deadlock-free because sends are buffered).
  template <typename T>
  std::vector<T> sendrecv(int dest, int source, int tag,
                          std::span<const T> data) const {
    send(dest, tag, data);
    return recv_vector<T>(source, tag);
  }

  // ---- Collectives --------------------------------------------------------

  /// Dissemination barrier: O(log P) rounds.
  void barrier() const;

  /// Binomial-tree broadcast from `root`, in place.
  template <typename T>
  void bcast(std::span<T> data, int root) const {
    bcast_bytes(std::as_writable_bytes(data), root);
  }
  template <typename T>
  T bcast_value(T value, int root) const {
    bcast(std::span<T>(&value, 1), root);
    return value;
  }

  /// Binomial-tree reduction to `root`; element-wise over the span.
  template <typename T>
  void reduce(std::span<T> data, ReduceOp op, int root) const;

  /// Reduce + broadcast. Element-wise over the span, result on all ranks.
  template <typename T>
  void allreduce(std::span<T> data, ReduceOp op) const {
    reduce(data, op, 0);
    bcast(data, 0);
  }
  template <typename T>
  T allreduce_value(T value, ReduceOp op) const {
    allreduce(std::span<T>(&value, 1), op);
    return value;
  }

  /// Exclusive prefix sum over ranks: rank r receives sum of `value` over
  /// ranks 0..r-1 (rank 0 receives T{}). Linear chain; used e.g. to assign
  /// globally contiguous particle id ranges.
  template <typename T>
  T exscan_sum(T value) const {
    static_assert(std::is_trivially_copyable_v<T>);
    telemetry::OpGuard telemetry_guard(telemetry::Op::kScan);
    constexpr int kTagScan = -106;
    T prefix{};
    if (rank_ > 0) prefix = recv_value<T>(rank_ - 1, kTagScan);
    if (rank_ + 1 < size()) {
      T forward = prefix;
      forward += value;
      send_value(rank_ + 1, kTagScan, forward);
    }
    return prefix;
  }

  /// Gather equal-size contributions to `root`. `recv` must have
  /// size()*send.size() elements on root (may be empty elsewhere).
  template <typename T>
  void gather(std::span<const T> send, std::span<T> recv, int root) const;

  /// Ring allgather of equal-size contributions.
  template <typename T>
  void allgather(std::span<const T> send, std::span<T> recv) const;

  /// Variable-size gather (fan-in) to `root`: returns the concatenation of
  /// every rank's contribution in rank order on root, empty elsewhere. When
  /// `counts` is non-null it receives the per-rank element counts on root.
  /// Used by the I/O aggregation layer.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> send_buf, int root,
                         std::vector<std::size_t>* counts = nullptr) const;

  /// Variable-size all-to-all exchange with a pairwise schedule.
  /// `send_counts[r]` elements go to rank r, taken consecutively from
  /// `send`. Returns the concatenation of contributions received from ranks
  /// 0..P-1 and fills `recv_counts`.
  template <typename T>
  std::vector<T> alltoallv(std::span<const T> send,
                           std::span<const std::size_t> send_counts,
                           std::vector<std::size_t>& recv_counts) const;

  /// alltoallv into caller-owned storage: `recv_buf` is resized (never
  /// shrunk below its capacity) and filled with the concatenated
  /// contributions from ranks 0..P-1. Reusing the same `recv_buf` across
  /// calls makes the exchange allocation-free on the caller side once its
  /// capacity has grown to steady state. The self-addressed block is copied
  /// directly, bypassing the mailbox.
  template <typename T>
  void alltoallv_into(std::span<const T> send,
                      std::span<const std::size_t> send_counts,
                      std::vector<T>& recv_buf,
                      std::vector<std::size_t>& recv_counts) const;

  /// Sparse variable-size exchange over a fixed neighbor list (like
  /// MPI_Neighbor_alltoallv): `neighbors` holds the distinct peer ranks
  /// (this rank itself may appear; its block is memcpy'd directly), and
  /// `send_counts[s]` elements go to `neighbors[s]`, taken consecutively
  /// from `send`. Fills `recv_buf` with the concatenation of the blocks
  /// received from the same neighbors in list order and `recv_counts` with
  /// their sizes. The neighbor lists must be symmetric across ranks (r
  /// lists q iff q lists r) — e.g. a distance-based stencil. One payload
  /// message per directed pair and *no* count round (counts are inferred
  /// from message lengths), so the cost scales with the neighbor count,
  /// not the world size.
  template <typename T>
  void neighbor_alltoallv(std::span<const int> neighbors,
                          std::span<const T> send,
                          std::span<const std::size_t> send_counts,
                          std::vector<T>& recv_buf,
                          std::vector<std::size_t>& recv_counts) const;

  /// Split into sub-communicators by color (ranks with the same color end up
  /// in the same new communicator, ordered by key then by old rank).
  /// color < 0 means "not in any group": returns an invalid Comm.
  Comm split(int color, int key) const;

  /// True if this handle refers to a communicator this thread is part of.
  bool valid() const noexcept { return machine_ != nullptr; }

 private:
  friend class Machine;

  Comm(MachineState* machine, std::uint64_t context, int rank,
       std::vector<int> group)
      : machine_(machine),
        context_(context),
        rank_(rank),
        group_(std::make_shared<std::vector<int>>(std::move(group))) {}

  void bcast_bytes(std::span<std::byte> data, int root) const;
  /// Common send path: checksum (when verify_payloads), telemetry, fault
  /// hooks (drop/corrupt), then mailbox delivery.
  void deliver_bytes(int dest, int tag, std::vector<std::byte>&& payload) const;
  Mailbox& mailbox_of(int rank_in_comm) const;
  const std::vector<int>& group() const { return *group_; }

  MachineState* machine_ = nullptr;
  std::uint64_t context_ = 0;
  int rank_ = 0;
  std::shared_ptr<std::vector<int>> group_;  // comm rank -> machine rank
};

/// Post-mortem of one Machine::run: which ranks originated failures (as
/// opposed to being collaterally aborted by a peer's death) and what kind.
/// A recovery driver uses this to choose a relaunch width: an elastic
/// policy shrinking "by failed ranks" needs to know how many ranks actually
/// died, not how many receives they took down with them.
struct MachineReport {
  /// Ranks whose own exception was a root cause (rank order). Ranks that
  /// merely observed a peer's death (Aborted) are not listed.
  std::vector<int> failed_ranks;
  /// At least one root cause was a receive-deadline expiry (DeadlockError) —
  /// a hang diagnosis rather than a rank death.
  bool deadlock = false;
  std::string first_error;  ///< what() of the primary failure ("" = none)
};

/// Runs an SPMD function over N ranks, each on its own thread.
class Machine {
 public:
  /// Spawn `nranks` threads, call fn(comm) on each with a world
  /// communicator, join. Exceptions thrown by any rank are rethrown
  /// (first by rank order) after all threads have been joined; when a rank
  /// fails, every other rank's blocking receive throws Aborted carrying
  /// the failing rank's message (clean collective abort, no hang).
  static void run(int nranks, const std::function<void(Comm&)>& fn);

  /// As above with runtime options: receive deadlines (deadlock detection),
  /// payload verification, and a fault-injection plan.
  static void run(int nranks, const std::function<void(Comm&)>& fn,
                  const MachineOptions& options);

  /// As above, additionally filling `report` (when non-null) with the
  /// failure post-mortem *before* the primary exception is rethrown, so a
  /// supervising driver can diagnose the failure it just caught.
  static void run(int nranks, const std::function<void(Comm&)>& fn,
                  const MachineOptions& options, MachineReport* report);
};

// ---- templated collective implementations ---------------------------------

namespace detail {
template <typename T>
void apply_op(std::span<T> acc, std::span<const T> in, ReduceOp op) {
  HACC_CHECK(acc.size() == in.size());
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i)
        if (in[i] < acc[i]) acc[i] = in[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i)
        if (in[i] > acc[i]) acc[i] = in[i];
      break;
  }
}
inline constexpr int kTagReduce = -101;
inline constexpr int kTagGather = -102;
inline constexpr int kTagAllgather = -103;
inline constexpr int kTagAlltoall = -104;
inline constexpr int kTagSplit = -105;
inline constexpr int kTagGatherv = -107;
inline constexpr int kTagNeighbor = -108;
}  // namespace detail

template <typename T>
void Comm::reduce(std::span<T> data, ReduceOp op, int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  telemetry::OpGuard telemetry_guard(telemetry::Op::kReduce);
  // Rotate ranks so `root` acts as rank 0 of the binomial tree.
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  std::vector<T> incoming(data.size());
  for (int dist = 1; dist < p; dist <<= 1) {
    if (vrank & dist) {
      const int dst = ((vrank - dist) + root) % p;
      send(dst, detail::kTagReduce, std::span<const T>(data));
      return;  // sent partial result up the tree; done
    }
    if (vrank + dist < p) {
      const int src = ((vrank + dist) + root) % p;
      recv(src, detail::kTagReduce, std::span<T>(incoming));
      detail::apply_op(data, std::span<const T>(incoming), op);
    }
  }
}

template <typename T>
void Comm::gather(std::span<const T> send_buf, std::span<T> recv_buf,
                  int root) const {
  static_assert(std::is_trivially_copyable_v<T>);
  telemetry::OpGuard telemetry_guard(telemetry::Op::kGather);
  if (rank_ == root) {
    HACC_CHECK(recv_buf.size() ==
               send_buf.size() * static_cast<std::size_t>(size()));
    std::copy(send_buf.begin(), send_buf.end(),
              recv_buf.begin() +
                  static_cast<std::ptrdiff_t>(send_buf.size()) * root);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(r, detail::kTagGather,
           recv_buf.subspan(send_buf.size() * static_cast<std::size_t>(r),
                            send_buf.size()));
    }
  } else {
    send(root, detail::kTagGather, send_buf);
  }
}

template <typename T>
void Comm::allgather(std::span<const T> send_buf, std::span<T> recv_buf) const {
  static_assert(std::is_trivially_copyable_v<T>);
  telemetry::OpGuard telemetry_guard(telemetry::Op::kAllgather);
  const int p = size();
  const std::size_t chunk = send_buf.size();
  HACC_CHECK(recv_buf.size() == chunk * static_cast<std::size_t>(p));
  std::copy(send_buf.begin(), send_buf.end(),
            recv_buf.begin() + static_cast<std::ptrdiff_t>(chunk) * rank_);
  // Ring: in step s, forward the block that originated at rank (rank - s).
  const int next = (rank_ + 1) % p;
  const int prev = (rank_ - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (rank_ - s + p) % p;
    const int recv_block = (rank_ - s - 1 + p) % p;
    send(next, detail::kTagAllgather,
         std::span<const T>(
             recv_buf.subspan(chunk * static_cast<std::size_t>(send_block),
                              chunk)));
    recv(prev, detail::kTagAllgather,
         recv_buf.subspan(chunk * static_cast<std::size_t>(recv_block),
                          chunk));
  }
}

template <typename T>
std::vector<T> Comm::gatherv(std::span<const T> send_buf, int root,
                             std::vector<std::size_t>* counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  telemetry::OpGuard telemetry_guard(telemetry::Op::kGatherv);
  std::vector<T> out;
  if (rank_ == root) {
    if (counts != nullptr) counts->assign(static_cast<std::size_t>(size()), 0);
    for (int r = 0; r < size(); ++r) {
      std::vector<T> part;
      if (r == rank_) {
        part.assign(send_buf.begin(), send_buf.end());
      } else {
        part = recv_vector<T>(r, detail::kTagGatherv);
      }
      if (counts != nullptr) (*counts)[static_cast<std::size_t>(r)] = part.size();
      out.insert(out.end(), part.begin(), part.end());
    }
  } else {
    send(root, detail::kTagGatherv, send_buf);
  }
  return out;
}

template <typename T>
std::vector<T> Comm::alltoallv(std::span<const T> send_buf,
                               std::span<const std::size_t> send_counts,
                               std::vector<std::size_t>& recv_counts) const {
  std::vector<T> out;
  alltoallv_into(send_buf, send_counts, out, recv_counts);
  return out;
}

template <typename T>
void Comm::alltoallv_into(std::span<const T> send_buf,
                          std::span<const std::size_t> send_counts,
                          std::vector<T>& recv_buf,
                          std::vector<std::size_t>& recv_counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  telemetry::OpGuard telemetry_guard(telemetry::Op::kAlltoall);
  const int p = size();
  HACC_CHECK(send_counts.size() == static_cast<std::size_t>(p));

  // Exchange counts first (pairwise, same shifted-ring schedule as the
  // payloads — the per-source FIFO rule keeps each count ahead of its
  // payload), then size the receive buffer once and place every incoming
  // payload directly at its final offset. No per-peer staging vectors, no
  // concatenation pass. Offsets are recomputed by O(P) partial sums instead
  // of a scratch prefix array so the steady state stays allocation-free.
  recv_counts.resize(static_cast<std::size_t>(p));
  recv_counts[static_cast<std::size_t>(rank_)] =
      send_counts[static_cast<std::size_t>(rank_)];
  for (int s = 1; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const int src = (rank_ - s + p) % p;
    send_value(dst, detail::kTagAlltoall,
               send_counts[static_cast<std::size_t>(dst)]);
    recv_counts[static_cast<std::size_t>(src)] =
        recv_value<std::size_t>(src, detail::kTagAlltoall);
  }
  std::size_t send_total = 0, recv_total = 0;
  for (int r = 0; r < p; ++r) {
    send_total += send_counts[static_cast<std::size_t>(r)];
    recv_total += recv_counts[static_cast<std::size_t>(r)];
  }
  HACC_CHECK(send_total == send_buf.size());
  recv_buf.resize(recv_total);

  for (int s = 0; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const int src = (rank_ - s + p) % p;
    std::size_t soff = 0;
    for (int r = 0; r < dst; ++r) soff += send_counts[static_cast<std::size_t>(r)];
    std::size_t roff = 0;
    for (int r = 0; r < src; ++r) roff += recv_counts[static_cast<std::size_t>(r)];
    const std::size_t scount = send_counts[static_cast<std::size_t>(dst)];
    const std::size_t rcount = recv_counts[static_cast<std::size_t>(src)];
    if (s == 0) {
      // Self-addressed block: straight memcpy, no mailbox round-trip.
      if (scount > 0)
        std::memcpy(recv_buf.data() + roff, send_buf.data() + soff,
                    scount * sizeof(T));
    } else {
      send(dst, detail::kTagAlltoall, send_buf.subspan(soff, scount));
      recv(src, detail::kTagAlltoall,
           std::span<T>(recv_buf.data() + roff, rcount));
    }
  }
}

template <typename T>
void Comm::neighbor_alltoallv(std::span<const int> neighbors,
                              std::span<const T> send_buf,
                              std::span<const std::size_t> send_counts,
                              std::vector<T>& recv_buf,
                              std::vector<std::size_t>& recv_counts) const {
  static_assert(std::is_trivially_copyable_v<T>);
  telemetry::OpGuard telemetry_guard(telemetry::Op::kNeighborAlltoall);
  const std::size_t k = neighbors.size();
  HACC_CHECK(send_counts.size() == k);

  // Buffered sends to every non-self neighbor first (deadlock-free), then
  // blocking receives in list order; the per-(source, tag) FIFO keeps
  // successive calls from interleaving.
  std::size_t soff = 0, self_off = 0, self_count = 0;
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t c = send_counts[s];
    if (neighbors[s] == rank_) {
      self_off = soff;
      self_count = c;
    } else {
      send(neighbors[s], detail::kTagNeighbor, send_buf.subspan(soff, c));
    }
    soff += c;
  }
  HACC_CHECK(soff == send_buf.size());

  recv_counts.resize(k);
  recv_buf.clear();
  for (std::size_t s = 0; s < k; ++s) {
    if (neighbors[s] == rank_) {
      // Self block: straight memcpy bypassing the mailbox (not counted by
      // telemetry — it never crosses a rank boundary).
      const std::size_t at = recv_buf.size();
      recv_buf.resize(at + self_count);
      if (self_count > 0)
        std::memcpy(recv_buf.data() + at, send_buf.data() + self_off,
                    self_count * sizeof(T));
      recv_counts[s] = self_count;
    } else {
      const auto bytes = recv_bytes(neighbors[s], detail::kTagNeighbor);
      HACC_CHECK(bytes.size() % sizeof(T) == 0);
      const std::size_t c = bytes.size() / sizeof(T);
      const std::size_t at = recv_buf.size();
      recv_buf.resize(at + c);
      if (c > 0) std::memcpy(recv_buf.data() + at, bytes.data(), bytes.size());
      recv_counts[s] = c;
    }
  }
}

}  // namespace hacc::comm
