// Message envelope and per-rank mailbox for the SimMPI runtime.
//
// SimMPI reproduces the MPI programming model (paper runs HACC with one MPI
// rank per core) inside one process: each rank is a thread, each thread owns
// a mailbox, and sends enqueue byte payloads into the destination mailbox
// ("eager"/buffered semantics). Receives block until a message matching
// (context, source, tag) arrives. Communicator contexts isolate traffic the
// way MPI communicators do, so a library FFT and user code can't intercept
// each other's messages.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace hacc::comm {

/// Thrown out of blocking receives when the machine is shutting down because
/// another rank failed; prevents surviving ranks from blocking forever.
class Aborted : public std::runtime_error {
 public:
  Aborted() : std::runtime_error("SimMPI machine aborted by a failing rank") {}
};

/// A delivered message: payload plus matching metadata.
struct Message {
  std::uint64_t context = 0;  ///< communicator context id
  int source = 0;             ///< sender's rank *within that communicator*
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Thread-safe mailbox with (context, source, tag) matching.
class Mailbox {
 public:
  void deliver(Message msg) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Block until a message matching (context, source, tag) is available and
  /// return it. FIFO per matching triple (MPI non-overtaking rule).
  /// Throws Aborted if the machine is shut down while waiting.
  Message receive(std::uint64_t context, int source, int tag) {
    std::unique_lock lock(mutex_);
    for (;;) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->context == context && it->source == source &&
            it->tag == tag) {
          Message msg = std::move(*it);
          queue_.erase(it);
          return msg;
        }
      }
      if (aborted_) throw Aborted{};
      cv_.wait(lock);
    }
  }

  /// Wake any blocked receiver with an Aborted exception (machine teardown).
  void abort() {
    {
      std::lock_guard lock(mutex_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(std::uint64_t context, int source, int tag) const {
    std::lock_guard lock(mutex_);
    for (const auto& m : queue_) {
      if (m.context == context && m.source == source && m.tag == tag)
        return true;
    }
    return false;
  }

  std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_ = false;
};

}  // namespace hacc::comm
