// Message envelope and per-rank mailbox for the SimMPI runtime.
//
// SimMPI reproduces the MPI programming model (paper runs HACC with one MPI
// rank per core) inside one process: each rank is a thread, each thread owns
// a mailbox, and sends enqueue byte payloads into the destination mailbox
// ("eager"/buffered semantics). Receives block until a message matching
// (context, source, tag) arrives. Communicator contexts isolate traffic the
// way MPI communicators do, so a library FFT and user code can't intercept
// each other's messages.
//
// Fault-tolerance hooks: receives may carry a deadline (receive_for returns
// nullopt on expiry instead of hanging forever — the caller turns that into
// a stuck-rank report), aborts carry the *cause* (the failing rank's error
// message) so surviving ranks die with a diagnosis instead of a generic
// shutdown, and messages may carry a payload checksum for end-to-end
// corruption detection.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace hacc::comm {

/// Thrown out of blocking receives when the machine is shutting down because
/// another rank failed; prevents surviving ranks from blocking forever. The
/// what() string names the failing rank and its error when known.
class Aborted : public std::runtime_error {
 public:
  Aborted() : std::runtime_error("SimMPI machine aborted by a failing rank") {}
  explicit Aborted(const std::string& cause) : std::runtime_error(cause) {}
};

/// A delivered message: payload plus matching metadata.
struct Message {
  std::uint64_t context = 0;  ///< communicator context id
  int source = 0;             ///< sender's rank *within that communicator*
  int tag = 0;
  /// End-to-end payload checksum (FNV-1a 64), computed at the send site
  /// when MachineOptions::verify_payloads is on; 0x0/false otherwise.
  std::uint64_t checksum = 0;
  bool checksummed = false;
  std::vector<std::byte> payload;
};

/// 64-bit FNV-1a over a byte span: the end-to-end payload checksum. (Not
/// cryptographic; catches the bit-flips and truncations fault injection
/// models. The gio layer uses CRC64 for on-disk data.)
inline std::uint64_t payload_checksum(const std::byte* data,
                                      std::size_t n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Thread-safe mailbox with (context, source, tag) matching.
class Mailbox {
 public:
  void deliver(Message msg) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Block until a message matching (context, source, tag) is available and
  /// return it. FIFO per matching triple (MPI non-overtaking rule).
  /// Throws Aborted (carrying the machine's failure cause) if the machine
  /// is shut down while waiting.
  Message receive(std::uint64_t context, int source, int tag) {
    std::unique_lock lock(mutex_);
    for (;;) {
      if (auto msg = match(context, source, tag)) return std::move(*msg);
      if (aborted_) throw Aborted{cause_};
      cv_.wait(lock);
    }
  }

  /// Like receive(), but gives up after `timeout_s` seconds: returns
  /// nullopt on expiry (the caller owns the stuck-rank diagnosis). Still
  /// throws Aborted on machine shutdown.
  std::optional<Message> receive_for(std::uint64_t context, int source,
                                     int tag, double timeout_s) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeout_s));
    std::unique_lock lock(mutex_);
    for (;;) {
      if (auto msg = match(context, source, tag)) return msg;
      if (aborted_) throw Aborted{cause_};
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // One final probe: the message may have raced the timeout.
        if (auto msg = match(context, source, tag)) return msg;
        if (aborted_) throw Aborted{cause_};
        return std::nullopt;
      }
    }
  }

  /// Wake any blocked receiver with an Aborted exception carrying `cause`
  /// (machine teardown after a rank failure).
  void abort(const std::string& cause) {
    {
      std::lock_guard lock(mutex_);
      aborted_ = true;
      if (cause_.empty()) cause_ = cause;
    }
    cv_.notify_all();
  }
  void abort() { abort("SimMPI machine aborted by a failing rank"); }

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(std::uint64_t context, int source, int tag) const {
    std::lock_guard lock(mutex_);
    for (const auto& m : queue_) {
      if (m.context == context && m.source == source && m.tag == tag)
        return true;
    }
    return false;
  }

  std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  /// Pop the first matching queued message (mutex_ must be held).
  std::optional<Message> match(std::uint64_t context, int source, int tag) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->context == context && it->source == source && it->tag == tag) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    return std::nullopt;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_ = false;
  std::string cause_;
};

}  // namespace hacc::comm
