// Deterministic rank-fault injection for the SimMPI runtime.
//
// At the paper's scale the mean time between failures is shorter than a
// campaign, so the runtime must *provably* detect and survive rank faults —
// and the only way to prove it is to inject them on demand. A FaultPlan is a
// list of per-rank fault specs (kill at step N, stall a receive, drop or
// bit-flip a message in transit, fail a collective entry) that
// Machine::run installs on each rank thread; the comm layer consults the
// plan at its send/recv/collective sites through the thread-local hooks
// below. Every spec is one-shot by default and keeps its fired-state in the
// plan itself, so a kill at step 5 fires exactly once even across the
// repeated Machine::run attempts a Supervisor makes while recovering —
// which is exactly the semantics of a real node dying once.
//
// All hooks are no-ops (a thread-local null check) when no plan is
// installed, so production paths pay nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "comm/telemetry.h"
#include "util/error.h"

namespace hacc::comm {

/// Thrown on the victim rank when a kill fault fires (models the rank's
/// process dying). Peers observe it as an Aborted carrying this message.
class RankKilled : public Error {
 public:
  explicit RankKilled(const std::string& what) : Error(what) {}
};

namespace fault {

/// Matches any tag in a send/recv fault spec.
inline constexpr int kAnyTag = std::numeric_limits<int>::min();

enum class Kind : int {
  kKillAtStep,      ///< throw RankKilled when set_step(step) is reached
  kStallRecv,       ///< sleep before the nth matching receive
  kDropSend,        ///< silently drop the nth matching send in transit
  kCorruptSend,     ///< bit-flip a payload byte of the nth matching send
  kFailCollective,  ///< throw on the nth collective entry of an op class
  kFlipParticleMemory,  ///< flip bits in resident particle state at a step
  kFlipGridMemory,      ///< flip bits in the resident CIC grid at a step
};

struct Spec {
  int rank = -1;  ///< machine (world) rank the fault applies to; when the
                  ///< machine runs *narrower* than the rank named here (an
                  ///< elastic shrink), the fault is remapped to
                  ///< rank % width so a campaign planned at the launch
                  ///< width keeps exercising the survivors
  Kind kind = Kind::kKillAtStep;
  int step = -1;        ///< kKillAtStep: fire when this step begins
  int tag = kAnyTag;    ///< send/recv faults: required tag (kAnyTag = any)
  int nth = 0;          ///< fire on the nth (0-based) matching event
  double stall_seconds = 0;
  telemetry::Op op = telemetry::Op::kBarrier;  ///< kFailCollective class
  // kFlip*Memory: how many bits to corrupt, which bit (-1 = draw from the
  // seeded stream), and the Philox seed that makes the damage reproducible.
  int nbits = 1;
  int bit = -1;
  std::uint64_t mem_seed = 0x5DC;
  int max_fires = 1;    ///< one-shot by default; <0 = unlimited
  std::atomic<int> fires{0};  ///< times this spec has fired (survives runs)
  std::atomic<int> seen{0};   ///< matching events observed (drives `nth`)
};

/// One resident-memory corruption: flip `bit` of logical element `element`
/// of the targeted array (the caller maps elements to its own storage).
struct MemoryFlip {
  std::uint64_t element = 0;
  int bit = 0;
};

/// Which resident array a kFlip*Memory spec attacks.
enum class MemoryTarget { kParticles, kGrid };

}  // namespace fault

/// A deterministic, test-drivable fault schedule shared by all ranks of a
/// Machine::run. Build it with the chained helpers, pass it through
/// MachineOptions. Spec state (fired counters) lives in the plan, so the
/// same plan can supervise several consecutive Machine::run attempts.
///
/// Concurrency: the fired/seen counters are atomics and every hook uses a
/// single fetch_add to claim a firing, so a plan shared by several
/// *concurrent* machines in one process (a campaign) can never double-fire
/// a one-shot spec — but sharing does make one-shot mean once per
/// *process*: the first run to reach the trigger consumes it for everyone.
/// Campaign drivers that want every run to see its full schedule hand each
/// run its own instance via clone_fresh().
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;
  // Movable (the deque's nodes transfer; the non-movable atomic Specs stay
  // where they are) so clone_fresh() can return by value.
  FaultPlan(FaultPlan&&) noexcept = default;
  FaultPlan& operator=(FaultPlan&&) noexcept = default;

  /// A deep copy of the schedule with all firing state (fires/seen) reset
  /// to zero — a plan that has never fired. The per-run instance a
  /// campaign hands each of its concurrent runs.
  FaultPlan clone_fresh() const;

  /// Kill `rank` when fault::set_step(step) is called on it.
  FaultPlan& kill_at_step(int rank, int step);
  /// Sleep `seconds` before `rank`'s nth receive matching `tag`.
  FaultPlan& stall_recv(int rank, double seconds, int nth = 0,
                        int tag = fault::kAnyTag);
  /// Drop `rank`'s nth send matching `tag` (the receiver never sees it).
  FaultPlan& drop_send(int rank, int tag = fault::kAnyTag, int nth = 0);
  /// Bit-flip a byte of `rank`'s nth send matching `tag` *after* the
  /// payload checksum is computed — models wire/memory corruption that
  /// MachineOptions::verify_payloads must catch.
  FaultPlan& corrupt_send(int rank, int tag = fault::kAnyTag, int nth = 0);
  /// Throw on `rank`'s nth collective entry of class `op`.
  FaultPlan& fail_collective(int rank, telemetry::Op op, int nth = 0);
  /// Flip `nbits` seeded-random bits of `rank`'s resident particle state
  /// (positions/velocities/mass of actives) when step `step` begins —
  /// silent corruption the comm layer never sees. One-shot across
  /// Supervisor re-runs, like kill_at_step.
  FaultPlan& flip_bits_in_particles(int rank, int step, int nbits = 1,
                                    std::uint64_t seed = 0x5DC);
  /// Flip `nbits` seeded-random bits of `rank`'s resident CIC density grid
  /// right after the step's first deposit (high mantissa/exponent/sign
  /// bits, so the damage is physically consequential). One-shot.
  FaultPlan& flip_bits_in_grid(int rank, int step, int nbits = 1,
                               std::uint64_t seed = 0x9D1D);

  /// Make the most recently added spec repeatable (`times` < 0: forever).
  FaultPlan& repeat(int times);
  /// Pin the most recently added kFlip*Memory spec to one exact bit index
  /// instead of a seeded draw (property tests target specific bit classes).
  FaultPlan& pin_bit(int bit);

  std::deque<fault::Spec>& specs() noexcept { return specs_; }
  const std::deque<fault::Spec>& specs() const noexcept { return specs_; }
  bool empty() const noexcept { return specs_.empty(); }

 private:
  fault::Spec& add(int rank, fault::Kind kind);
  // deque: Spec holds atomics (non-movable); deque grows without moving.
  std::deque<fault::Spec> specs_;
};

namespace fault {

/// RAII: installs `plan` (may be null) for machine rank `rank` on the
/// calling thread of a `width`-rank machine. Machine::run wraps each rank
/// function in one. The width drives the elastic remapping: a spec naming
/// rank >= width fires on rank % width instead, so one FaultPlan stays
/// meaningful across the shrinking relaunches an elastic Supervisor makes.
class Scope {
 public:
  Scope(FaultPlan* plan, int rank, int width) noexcept;
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  FaultPlan* prev_plan_;
  int prev_rank_;
  int prev_width_;
};

/// True when a plan is installed on this thread.
bool active() noexcept;

/// Announce that step `step` is about to run on this rank (drivers call it
/// once per step on every rank). Fires any due kKillAtStep spec by throwing
/// RankKilled.
void set_step(int step);
/// The last step announced via set_step (0 before any).
int current_step() noexcept;

/// Send-side hook: may corrupt `payload` in place (kCorruptSend) or return
/// false to drop the message entirely (kDropSend).
[[nodiscard]] bool on_send(int tag, std::vector<std::byte>& payload);

/// Receive-side hook: applies kStallRecv delays.
void on_recv(int source, int tag);

/// Collective-entry hook (called by telemetry::OpGuard): fires
/// kFailCollective by throwing hacc::Error.
void on_collective(telemetry::Op op);

/// Resident-memory corruption hook: the flips due on this rank at the
/// current step (set_step) for `target`, over a logical array of `elements`
/// elements whose usable bits are [bit_lo, bit_hi). Element and bit indices
/// are drawn from Philox(spec.mem_seed), so the same plan damages the same
/// state on every re-run; a pinned bit overrides the bit draw. Consuming is
/// firing: one-shot specs never return flips twice, even across Supervisor
/// re-runs. Empty when no plan is installed.
std::vector<MemoryFlip> take_memory_flips(MemoryTarget target,
                                          std::uint64_t elements, int bit_lo,
                                          int bit_hi);

}  // namespace fault
}  // namespace hacc::comm
