// Cartesian process topologies.
//
// HACC decomposes space into regular (non-cubic) 3-D blocks of ranks (paper
// Sec. II, e.g. the 192x128x64 geometry of the 96-rack run in Table II), and
// the pencil FFT decomposes the grid over a 2-D process grid. CartTopology
// provides MPI_Dims_create-style balanced factorizations plus rank<->coords
// mapping and periodic neighbor lookup.
#pragma once

#include <array>
#include <vector>

#include "util/error.h"

namespace hacc::comm {

/// Balanced factorization of `nranks` into `ndims` factors, largest first
/// (like MPI_Dims_create). Works for any nranks >= 1.
std::vector<int> dims_create(int nranks, int ndims);

/// An N-dimensional periodic Cartesian layout of ranks (row-major order:
/// the last dimension varies fastest).
template <int N>
class CartTopology {
 public:
  explicit CartTopology(std::array<int, N> dims) : dims_(dims) {
    for (int d = 0; d < N; ++d) HACC_CHECK(dims_[static_cast<std::size_t>(d)] > 0);
  }

  /// Build a balanced topology for `nranks`.
  static CartTopology balanced(int nranks) {
    auto v = dims_create(nranks, N);
    std::array<int, N> dims{};
    for (int d = 0; d < N; ++d) dims[static_cast<std::size_t>(d)] = v[static_cast<std::size_t>(d)];
    return CartTopology(dims);
  }

  const std::array<int, N>& dims() const noexcept { return dims_; }

  int size() const noexcept {
    int p = 1;
    for (int d : dims_) p *= d;
    return p;
  }

  std::array<int, N> coords(int rank) const {
    HACC_CHECK(rank >= 0 && rank < size());
    std::array<int, N> c{};
    for (int d = N - 1; d >= 0; --d) {
      c[static_cast<std::size_t>(d)] = rank % dims_[static_cast<std::size_t>(d)];
      rank /= dims_[static_cast<std::size_t>(d)];
    }
    return c;
  }

  int rank_of(std::array<int, N> c) const {
    int rank = 0;
    for (int d = 0; d < N; ++d) {
      int x = c[static_cast<std::size_t>(d)] % dims_[static_cast<std::size_t>(d)];
      if (x < 0) x += dims_[static_cast<std::size_t>(d)];
      rank = rank * dims_[static_cast<std::size_t>(d)] + x;
    }
    return rank;
  }

  /// Periodic neighbor at offset `shift` along dimension `dim`.
  int neighbor(int rank, int dim, int shift) const {
    auto c = coords(rank);
    c[static_cast<std::size_t>(dim)] += shift;
    return rank_of(c);
  }

 private:
  std::array<int, N> dims_;
};

using Cart2D = CartTopology<2>;
using Cart3D = CartTopology<3>;

}  // namespace hacc::comm
