// Comm telemetry: attribute every byte and message to an operation class.
//
// The SimMPI collectives are built on buffered point-to-point sends, so one
// counting site — send_bytes/recv_bytes — sees all traffic. What it cannot
// see there is *why* the bytes moved; each collective therefore installs a
// thread-local OpGuard naming its class, and the p2p layer attributes to
// whatever class is current (kP2p when none). Nested collectives attribute
// to the innermost guard: allreduce = reduce + bcast shows up as those two.
//
// Accounting semantics (comm_test asserts these exactly):
//  - bytes_sent/bytes_recv count payload bytes through the mailbox
//    transport, including zero-byte messages (msgs_* still increments) and
//    internal control traffic (e.g. alltoallv's size_t count exchange,
//    barrier tokens). Self-addressed fast-path copies that bypass the
//    mailbox (alltoallv's own-block memcpy) are NOT counted — they never
//    cross a rank boundary.
//  - calls counts collective entries (once per rank per call).
// All counts land on the thread-bound obs::Counters; without a binding the
// cost is a null check.
#pragma once

#include <cstddef>

#include "obs/counters.h"
#include "obs/obs.h"

namespace hacc::comm::telemetry {

enum class Op : int {
  kP2p = 0,
  kBarrier,
  kBcast,
  kReduce,
  kGather,
  kAllgather,
  kGatherv,
  kAlltoall,
  kScan,
  kNeighborAlltoall,
  kOpCount,
};

/// The five counter ids of one op class
/// ("comm.<op>.{bytes_sent,msgs_sent,bytes_recv,msgs_recv,calls}").
struct OpIds {
  NameId bytes_sent, msgs_sent, bytes_recv, msgs_recv, calls;
};
const OpIds& ids(Op op) noexcept;

/// Short human-readable class name ("p2p", "bcast", ...); used by the
/// stuck-rank report and fault-injection messages.
const char* op_name(Op op) noexcept;

/// The calling thread's current attribution class (kP2p by default).
Op current_op() noexcept;

/// RAII: attributes nested sends/recvs to `op` and bumps its calls counter.
/// Also the single fault-injection site for collectives: the constructor
/// runs fault::on_collective(op), which may throw on an injected failure.
class OpGuard {
 public:
  explicit OpGuard(Op op);
  ~OpGuard();
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  Op prev_;
};

/// Count one message of `bytes` payload, sent/received under the current
/// class. Called by Comm::send_bytes / Comm::recv_bytes.
void on_send(std::size_t bytes) noexcept;
void on_recv(std::size_t bytes) noexcept;

}  // namespace hacc::comm::telemetry
