#include "comm/comm.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <tuple>

#include "comm/fault.h"
#include "util/telemetry.h"

namespace hacc::comm {

namespace {
std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}
}  // namespace

/// Shared state of one simulated machine: a mailbox per (thread) rank, the
/// runtime options, a context-id allocator for communicator creation, and
/// the fault-propagation machinery (first-failure cause + per-rank wait
/// registry for stuck-rank reports).
class MachineState {
 public:
  /// What a rank is blocked on right now: written by the owner rank around
  /// every deadline-carrying receive, read by whichever rank times out
  /// first to assemble the who-waits-on-whom report. Relaxed/acquire
  /// atomics — the report is diagnostic, the fields are independent.
  ///
  /// The kTimedOut state is sticky (cleared only by the next receive):
  /// in a mutual deadlock every participant expires at nearly the same
  /// instant, and a plain boolean would let the first rank to unwind erase
  /// its row before a peer assembles the report — the report would then
  /// name only some of the deadlocked ranks.
  enum : int { kIdle = 0, kWaiting = 1, kTimedOut = 2 };
  struct WaitSlot {
    std::atomic<int> state{kIdle};
    std::atomic<int> peer{-1};
    std::atomic<int> tag{0};
    std::atomic<int> op{0};  // telemetry::Op
    std::atomic<std::uint64_t> since_ns{0};
  };

  /// RAII registration of a blocking receive in the owner's wait slot.
  class WaitGuard {
   public:
    WaitGuard(WaitSlot& slot, int peer, int tag, telemetry::Op op)
        : slot_(slot) {
      slot_.peer.store(peer, std::memory_order_relaxed);
      slot_.tag.store(tag, std::memory_order_relaxed);
      slot_.op.store(static_cast<int>(op), std::memory_order_relaxed);
      slot_.since_ns.store(util::now_ns(), std::memory_order_relaxed);
      slot_.state.store(kWaiting, std::memory_order_release);
    }
    /// Mark this receive expired (before the report is assembled); stays
    /// visible to peers' reports until the owner's next receive.
    void timed_out() {
      slot_.state.store(kTimedOut, std::memory_order_release);
    }
    ~WaitGuard() {
      int expected = kWaiting;
      slot_.state.compare_exchange_strong(expected, kIdle,
                                          std::memory_order_release,
                                          std::memory_order_relaxed);
    }
    WaitGuard(const WaitGuard&) = delete;
    WaitGuard& operator=(const WaitGuard&) = delete;

   private:
    WaitSlot& slot_;
  };

  MachineState(int nranks, const MachineOptions& options)
      : options_(options),
        mailboxes_(static_cast<std::size_t>(nranks)),
        waits_(static_cast<std::size_t>(nranks)) {}

  const MachineOptions& options() const noexcept { return options_; }

  Mailbox& mailbox(int machine_rank) {
    HACC_CHECK(machine_rank >= 0 &&
               machine_rank < static_cast<int>(mailboxes_.size()));
    return mailboxes_[static_cast<std::size_t>(machine_rank)];
  }

  WaitSlot& wait_slot(int machine_rank) {
    return waits_[static_cast<std::size_t>(machine_rank)];
  }

  std::uint64_t allocate_contexts(std::uint64_t n) {
    return next_context_.fetch_add(n);
  }

  /// Record the machine's first failure and wake all blocked receivers with
  /// an Aborted carrying its cause, so one rank's error becomes a clean
  /// collective abort with a diagnosis instead of a distributed hang.
  void fail(int machine_rank, const std::string& what) {
    bool expected = false;
    if (!failed_.compare_exchange_strong(expected, true)) return;
    const std::string cause =
        "rank " + std::to_string(machine_rank) + " failed: " + what;
    for (auto& mb : mailboxes_) mb.abort(cause);
  }

  /// The who-waits-on-whom report assembled when `self`'s receive deadline
  /// expires: one line per rank still blocked in a receive.
  std::string stuck_report(int self, double timeout_s) {
    const std::uint64_t now = util::now_ns();
    std::string r = "comm deadlock/timeout: rank " + std::to_string(self) +
                    " receive exceeded " + format_seconds(timeout_s) +
                    "s; stuck-rank report:";
    for (std::size_t i = 0; i < waits_.size(); ++i) {
      WaitSlot& s = waits_[i];
      const int state = s.state.load(std::memory_order_acquire);
      const bool self_row = static_cast<int>(i) == self;
      if (!self_row && state == kIdle) continue;
      const auto since = s.since_ns.load(std::memory_order_relaxed);
      const double for_s =
          since != 0 && now > since ? static_cast<double>(now - since) * 1e-9
                                    : 0.0;
      r += "\n  rank " + std::to_string(i) + ": waiting on peer " +
           std::to_string(s.peer.load(std::memory_order_relaxed)) +
           " (tag=" +
           std::to_string(s.tag.load(std::memory_order_relaxed)) + ", op=" +
           telemetry::op_name(static_cast<telemetry::Op>(
               s.op.load(std::memory_order_relaxed))) +
           ", " + format_seconds(for_s) + "s" +
           (state == kTimedOut ? ", timed out" : "") + ")";
    }
    return r;
  }

 private:
  MachineOptions options_;
  std::vector<Mailbox> mailboxes_;
  std::vector<WaitSlot> waits_;
  std::atomic<std::uint64_t> next_context_{1};  // 0 = world
  std::atomic<bool> failed_{false};
};

void Comm::deliver_bytes(int dest, int tag,
                         std::vector<std::byte>&& payload) const {
  HACC_CHECK(valid());
  HACC_CHECK_MSG(dest >= 0 && dest < size(), "send: bad destination rank");
  Message msg;
  msg.context = context_;
  msg.source = rank_;
  msg.tag = tag;
  if (machine_->options().verify_payloads) {
    msg.checksum = payload_checksum(payload.data(), payload.size());
    msg.checksummed = true;
  }
  telemetry::on_send(payload.size());
  msg.payload = std::move(payload);
  // The fault hook runs *after* the checksum: an injected corruption models
  // damage in transit, which verify_payloads must catch at the receiver. A
  // dropped message was "sent" (it left this rank) but never arrives.
  if (!fault::on_send(tag, msg.payload)) return;
  mailbox_of(dest).deliver(std::move(msg));
}

void Comm::send_bytes(int dest, int tag,
                      std::span<const std::byte> bytes) const {
  deliver_bytes(dest, tag, std::vector<std::byte>(bytes.begin(), bytes.end()));
}

void Comm::send_bytes(int dest, int tag, std::vector<std::byte>&& bytes) const {
  deliver_bytes(dest, tag, std::move(bytes));
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag) const {
  HACC_CHECK(valid());
  HACC_CHECK_MSG(source >= 0 && source < size(), "recv: bad source rank");
  fault::on_recv(source, tag);
  const double timeout_s = machine_->options().recv_timeout_s;
  Message msg;
  if (timeout_s > 0) {
    const int self = group()[static_cast<std::size_t>(rank_)];
    const int peer = group()[static_cast<std::size_t>(source)];
    MachineState::WaitGuard guard(machine_->wait_slot(self), peer, tag,
                                  telemetry::current_op());
    auto got = mailbox_of(rank_).receive_for(context_, source, tag, timeout_s);
    if (!got) {
      guard.timed_out();  // keep this row visible to peers' reports
      throw DeadlockError(machine_->stuck_report(self, timeout_s));
    }
    msg = std::move(*got);
  } else {
    msg = mailbox_of(rank_).receive(context_, source, tag);
  }
  if (msg.checksummed &&
      payload_checksum(msg.payload.data(), msg.payload.size()) !=
          msg.checksum) {
    throw Error("comm: payload corruption detected on rank " +
                std::to_string(group()[static_cast<std::size_t>(rank_)]) +
                " (from rank " +
                std::to_string(group()[static_cast<std::size_t>(source)]) +
                ", tag " + std::to_string(tag) + ", " +
                std::to_string(msg.payload.size()) + " bytes)");
  }
  telemetry::on_recv(msg.payload.size());
  return std::move(msg.payload);
}

Mailbox& Comm::mailbox_of(int rank_in_comm) const {
  return machine_->mailbox(group()[static_cast<std::size_t>(rank_in_comm)]);
}

void Comm::barrier() const {
  // Dissemination barrier: log2(P) rounds of buffered send + blocking recv.
  telemetry::OpGuard telemetry_guard(telemetry::Op::kBarrier);
  constexpr int kTagBarrier = -100;
  const int p = size();
  std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const int to = (rank_ + dist) % p;
    const int from = (rank_ - dist + p) % p;
    send_bytes(to, kTagBarrier, std::span<const std::byte>(&token, 1));
    (void)recv_bytes(from, kTagBarrier);
  }
}

void Comm::bcast_bytes(std::span<std::byte> data, int root) const {
  telemetry::OpGuard telemetry_guard(telemetry::Op::kBcast);
  constexpr int kTagBcast = -99;
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  // Binomial tree: find highest bit of vrank = the parent distance.
  int recv_dist = 0;
  for (int dist = 1; dist < p; dist <<= 1) {
    if (vrank & dist) recv_dist = dist;
  }
  std::vector<std::byte> owned;
  if (vrank != 0) {
    const int parent = ((vrank - recv_dist) + root) % p;
    owned = recv_bytes(parent, kTagBcast);
    HACC_CHECK(owned.size() == data.size());
    std::copy(owned.begin(), owned.end(), data.begin());
  }
  // Forward to children: distances above our own parent distance. The last
  // forward of a non-root rank moves the received payload instead of
  // copying it (rvalue send_bytes overload).
  int last_child = -1;
  for (int dist = (recv_dist == 0 ? 1 : recv_dist << 1); dist < p;
       dist <<= 1) {
    if (vrank + dist < p) last_child = ((vrank + dist) + root) % p;
  }
  for (int dist = (recv_dist == 0 ? 1 : recv_dist << 1); dist < p;
       dist <<= 1) {
    if (vrank + dist < p) {
      const int child = ((vrank + dist) + root) % p;
      if (child == last_child && !owned.empty())
        send_bytes(child, kTagBcast, std::move(owned));
      else
        send_bytes(child, kTagBcast, data);
    }
  }
}

Comm Comm::split(int color, int key) const {
  HACC_CHECK(valid());
  const int p = size();
  struct Entry {
    int color, key, rank;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(p));
  // Everyone learns everyone's (color, key).
  allgather(std::span<const Entry>(&mine, 1), std::span<Entry>(all));

  // Stable order within a color group: by key, ties by old rank.
  std::vector<Entry> members;
  std::vector<int> colors_seen;
  for (const auto& e : all) {
    if (e.color == color) members.push_back(e);
    if (e.color >= 0 &&
        std::find(colors_seen.begin(), colors_seen.end(), e.color) ==
            colors_seen.end())
      colors_seen.push_back(e.color);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });

  // Deterministic context allocation: every rank computes the same color
  // ordering, and rank 0 of the parent allocates one context id per color,
  // broadcast to all. (A single atomic fetch_add on rank 0 keeps ids
  // machine-unique even across concurrent splits of disjoint comms.)
  // Every rank — including excluded ones — must take part in this broadcast:
  // it runs on the *parent* communicator.
  std::sort(colors_seen.begin(), colors_seen.end());
  std::uint64_t base = 0;
  if (rank_ == 0 && !colors_seen.empty())
    base = machine_->allocate_contexts(colors_seen.size());
  base = bcast_value(base, 0);

  if (color < 0) return Comm{};  // not a member of any new communicator
  const auto color_index = static_cast<std::uint64_t>(
      std::find(colors_seen.begin(), colors_seen.end(), color) -
      colors_seen.begin());
  const std::uint64_t new_context = base + color_index;

  std::vector<int> new_group;
  int new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    new_group.push_back(group()[static_cast<std::size_t>(members[i].rank)]);
    if (members[i].rank == rank_) new_rank = static_cast<int>(i);
  }
  HACC_CHECK(new_rank >= 0);
  return Comm(machine_, new_context, new_rank, std::move(new_group));
}

void Machine::run(int nranks, const std::function<void(Comm&)>& fn) {
  run(nranks, fn, MachineOptions{});
}

void Machine::run(int nranks, const std::function<void(Comm&)>& fn,
                  const MachineOptions& options) {
  run(nranks, fn, options, nullptr);
}

void Machine::run(int nranks, const std::function<void(Comm&)>& fn,
                  const MachineOptions& options, MachineReport* report) {
  HACC_CHECK_MSG(nranks > 0, "Machine::run needs at least one rank");
  if (report != nullptr) *report = MachineReport{};
  MachineState state(nranks, options);
  std::vector<int> world(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) world[static_cast<std::size_t>(r)] = r;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      fault::Scope fault_scope(options.fault_plan, r, nranks);
      Comm comm(&state, /*context=*/0, r, world);
      try {
        fn(comm);
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Record the cause and unblock peers waiting on this rank: their
        // receives throw Aborted("rank R failed: ..."), so the whole
        // machine dies with the *first* failure's diagnosis attached.
        state.fail(r, e.what());
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        state.fail(r, "unknown exception");
      }
    });
  }
  for (auto& t : threads) t.join();
  // Post-mortem + primary failure: a rank whose own exception is an Aborted
  // merely observed a peer's death; everything else is a root cause. The
  // rethrow prefers a root cause over the Aborted it induced.
  std::exception_ptr primary, aborted;
  for (int r = 0; r < nranks; ++r) {
    auto& e = errors[static_cast<std::size_t>(r)];
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const Aborted&) {
      aborted = e;
    } catch (const std::exception& ex) {
      if (report != nullptr) {
        report->failed_ranks.push_back(r);
        if (dynamic_cast<const DeadlockError*>(&ex) != nullptr)
          report->deadlock = true;
        if (report->first_error.empty()) report->first_error = ex.what();
      }
      if (!primary) primary = e;
    } catch (...) {
      if (report != nullptr) {
        report->failed_ranks.push_back(r);
        if (report->first_error.empty())
          report->first_error = "unknown exception";
      }
      if (!primary) primary = e;
    }
  }
  if (primary) std::rethrow_exception(primary);
  if (aborted) std::rethrow_exception(aborted);
}

}  // namespace hacc::comm
