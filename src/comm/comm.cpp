#include "comm/comm.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <tuple>

namespace hacc::comm {

/// Shared state of one simulated machine: a mailbox per (thread) rank and a
/// context-id allocator for communicator creation.
class MachineState {
 public:
  explicit MachineState(int nranks) : mailboxes_(nranks) {}

  Mailbox& mailbox(int machine_rank) {
    HACC_CHECK(machine_rank >= 0 &&
               machine_rank < static_cast<int>(mailboxes_.size()));
    return mailboxes_[static_cast<std::size_t>(machine_rank)];
  }

  std::uint64_t allocate_contexts(std::uint64_t n) {
    return next_context_.fetch_add(n);
  }

  /// Wake all blocked receivers with Aborted (called when a rank fails, so
  /// the remaining ranks cannot deadlock waiting on it).
  void abort_all() {
    for (auto& mb : mailboxes_) mb.abort();
  }

 private:
  std::vector<Mailbox> mailboxes_;
  std::atomic<std::uint64_t> next_context_{1};  // 0 = world
};

void Comm::send_bytes(int dest, int tag,
                      std::span<const std::byte> bytes) const {
  HACC_CHECK(valid());
  HACC_CHECK_MSG(dest >= 0 && dest < size(), "send: bad destination rank");
  Message msg;
  msg.context = context_;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(bytes.begin(), bytes.end());
  telemetry::on_send(msg.payload.size());
  mailbox_of(dest).deliver(std::move(msg));
}

void Comm::send_bytes(int dest, int tag, std::vector<std::byte>&& bytes) const {
  HACC_CHECK(valid());
  HACC_CHECK_MSG(dest >= 0 && dest < size(), "send: bad destination rank");
  Message msg;
  msg.context = context_;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload = std::move(bytes);
  telemetry::on_send(msg.payload.size());
  mailbox_of(dest).deliver(std::move(msg));
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag) const {
  HACC_CHECK(valid());
  HACC_CHECK_MSG(source >= 0 && source < size(), "recv: bad source rank");
  std::vector<std::byte> payload =
      mailbox_of(rank_).receive(context_, source, tag).payload;
  telemetry::on_recv(payload.size());
  return payload;
}

Mailbox& Comm::mailbox_of(int rank_in_comm) const {
  return machine_->mailbox(group()[static_cast<std::size_t>(rank_in_comm)]);
}

void Comm::barrier() const {
  // Dissemination barrier: log2(P) rounds of buffered send + blocking recv.
  telemetry::OpGuard telemetry_guard(telemetry::Op::kBarrier);
  constexpr int kTagBarrier = -100;
  const int p = size();
  std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const int to = (rank_ + dist) % p;
    const int from = (rank_ - dist + p) % p;
    send_bytes(to, kTagBarrier, std::span<const std::byte>(&token, 1));
    (void)recv_bytes(from, kTagBarrier);
  }
}

void Comm::bcast_bytes(std::span<std::byte> data, int root) const {
  telemetry::OpGuard telemetry_guard(telemetry::Op::kBcast);
  constexpr int kTagBcast = -99;
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  // Binomial tree: find highest bit of vrank = the parent distance.
  int recv_dist = 0;
  for (int dist = 1; dist < p; dist <<= 1) {
    if (vrank & dist) recv_dist = dist;
  }
  std::vector<std::byte> owned;
  if (vrank != 0) {
    const int parent = ((vrank - recv_dist) + root) % p;
    owned = recv_bytes(parent, kTagBcast);
    HACC_CHECK(owned.size() == data.size());
    std::copy(owned.begin(), owned.end(), data.begin());
  }
  // Forward to children: distances above our own parent distance. The last
  // forward of a non-root rank moves the received payload instead of
  // copying it (rvalue send_bytes overload).
  int last_child = -1;
  for (int dist = (recv_dist == 0 ? 1 : recv_dist << 1); dist < p;
       dist <<= 1) {
    if (vrank + dist < p) last_child = ((vrank + dist) + root) % p;
  }
  for (int dist = (recv_dist == 0 ? 1 : recv_dist << 1); dist < p;
       dist <<= 1) {
    if (vrank + dist < p) {
      const int child = ((vrank + dist) + root) % p;
      if (child == last_child && !owned.empty())
        send_bytes(child, kTagBcast, std::move(owned));
      else
        send_bytes(child, kTagBcast, data);
    }
  }
}

Comm Comm::split(int color, int key) const {
  HACC_CHECK(valid());
  const int p = size();
  struct Entry {
    int color, key, rank;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(p));
  // Everyone learns everyone's (color, key).
  allgather(std::span<const Entry>(&mine, 1), std::span<Entry>(all));

  // Stable order within a color group: by key, ties by old rank.
  std::vector<Entry> members;
  std::vector<int> colors_seen;
  for (const auto& e : all) {
    if (e.color == color) members.push_back(e);
    if (e.color >= 0 &&
        std::find(colors_seen.begin(), colors_seen.end(), e.color) ==
            colors_seen.end())
      colors_seen.push_back(e.color);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });

  // Deterministic context allocation: every rank computes the same color
  // ordering, and rank 0 of the parent allocates one context id per color,
  // broadcast to all. (A single atomic fetch_add on rank 0 keeps ids
  // machine-unique even across concurrent splits of disjoint comms.)
  // Every rank — including excluded ones — must take part in this broadcast:
  // it runs on the *parent* communicator.
  std::sort(colors_seen.begin(), colors_seen.end());
  std::uint64_t base = 0;
  if (rank_ == 0 && !colors_seen.empty())
    base = machine_->allocate_contexts(colors_seen.size());
  base = bcast_value(base, 0);

  if (color < 0) return Comm{};  // not a member of any new communicator
  const auto color_index = static_cast<std::uint64_t>(
      std::find(colors_seen.begin(), colors_seen.end(), color) -
      colors_seen.begin());
  const std::uint64_t new_context = base + color_index;

  std::vector<int> new_group;
  int new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    new_group.push_back(group()[static_cast<std::size_t>(members[i].rank)]);
    if (members[i].rank == rank_) new_rank = static_cast<int>(i);
  }
  HACC_CHECK(new_rank >= 0);
  return Comm(machine_, new_context, new_rank, std::move(new_group));
}

void Machine::run(int nranks, const std::function<void(Comm&)>& fn) {
  HACC_CHECK_MSG(nranks > 0, "Machine::run needs at least one rank");
  MachineState state(nranks);
  std::vector<int> world(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) world[static_cast<std::size_t>(r)] = r;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&state, /*context=*/0, r, world);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        state.abort_all();  // unblock peers waiting on this rank
      }
    });
  }
  for (auto& t : threads) t.join();
  // Report the primary failure, preferring a real error over the Aborted
  // exceptions it induced in peer ranks.
  std::exception_ptr aborted;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const Aborted&) {
      aborted = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (aborted) std::rethrow_exception(aborted);
}

}  // namespace hacc::comm
