#include "comm/fault.h"

#include <chrono>
#include <thread>

namespace hacc::comm {

namespace {

thread_local FaultPlan* g_plan = nullptr;
thread_local int g_rank = -1;
thread_local int g_width = 0;
thread_local int g_step = 0;

/// The machine rank a spec fires on at the installed width: specs naming a
/// rank the shrunken machine no longer has fold onto a surviving rank, so a
/// chaos campaign planned at the launch width keeps applying pressure after
/// every elastic shrink.
int victim_rank(const fault::Spec& spec) {
  if (spec.rank < 0 || g_width <= 0) return spec.rank;
  return spec.rank % g_width;
}

/// Match-and-count: true when `spec` should fire for this event. Advances
/// the spec's seen/fired counters; the caller performs the fault action.
bool fire(fault::Spec& spec) {
  const int seen = spec.seen.fetch_add(1, std::memory_order_relaxed);
  if (seen != spec.nth && spec.nth >= 0) return false;
  const int fired = spec.fires.fetch_add(1, std::memory_order_relaxed);
  if (spec.max_fires >= 0 && fired >= spec.max_fires) return false;
  return true;
}

bool tag_matches(const fault::Spec& spec, int tag) {
  return spec.tag == fault::kAnyTag || spec.tag == tag;
}

}  // namespace

fault::Spec& FaultPlan::add(int rank, fault::Kind kind) {
  fault::Spec& s = specs_.emplace_back();
  s.rank = rank;
  s.kind = kind;
  return s;
}

FaultPlan& FaultPlan::kill_at_step(int rank, int step) {
  fault::Spec& s = add(rank, fault::Kind::kKillAtStep);
  s.step = step;
  return *this;
}

FaultPlan& FaultPlan::stall_recv(int rank, double seconds, int nth, int tag) {
  fault::Spec& s = add(rank, fault::Kind::kStallRecv);
  s.stall_seconds = seconds;
  s.nth = nth;
  s.tag = tag;
  return *this;
}

FaultPlan& FaultPlan::drop_send(int rank, int tag, int nth) {
  fault::Spec& s = add(rank, fault::Kind::kDropSend);
  s.tag = tag;
  s.nth = nth;
  return *this;
}

FaultPlan& FaultPlan::corrupt_send(int rank, int tag, int nth) {
  fault::Spec& s = add(rank, fault::Kind::kCorruptSend);
  s.tag = tag;
  s.nth = nth;
  return *this;
}

FaultPlan& FaultPlan::fail_collective(int rank, telemetry::Op op, int nth) {
  fault::Spec& s = add(rank, fault::Kind::kFailCollective);
  s.op = op;
  s.nth = nth;
  return *this;
}

FaultPlan& FaultPlan::repeat(int times) {
  HACC_CHECK_MSG(!specs_.empty(), "repeat() needs a preceding fault spec");
  specs_.back().max_fires = times;
  specs_.back().nth = -1;  // every matching event, not just the nth
  return *this;
}

namespace fault {

Scope::Scope(FaultPlan* plan, int rank, int width) noexcept
    : prev_plan_(g_plan), prev_rank_(g_rank), prev_width_(g_width) {
  g_plan = plan;
  g_rank = rank;
  g_width = width;
  g_step = 0;
}

Scope::~Scope() {
  g_plan = prev_plan_;
  g_rank = prev_rank_;
  g_width = prev_width_;
}

bool active() noexcept { return g_plan != nullptr; }

void set_step(int step) {
  g_step = step;
  if (g_plan == nullptr) return;
  for (Spec& s : g_plan->specs()) {
    if (victim_rank(s) != g_rank || s.kind != Kind::kKillAtStep ||
        s.step != step)
      continue;
    const int fired = s.fires.fetch_add(1, std::memory_order_relaxed);
    if (s.max_fires >= 0 && fired >= s.max_fires) continue;
    throw RankKilled("fault injection: rank " + std::to_string(g_rank) +
                     " killed at step " + std::to_string(step));
  }
}

int current_step() noexcept { return g_step; }

bool on_send(int tag, std::vector<std::byte>& payload) {
  if (g_plan == nullptr) return true;
  for (Spec& s : g_plan->specs()) {
    if (victim_rank(s) != g_rank || !tag_matches(s, tag)) continue;
    if (s.kind == Kind::kDropSend) {
      if (fire(s)) return false;
    } else if (s.kind == Kind::kCorruptSend) {
      if (fire(s) && !payload.empty())
        payload[payload.size() / 2] ^= std::byte{0x40};
    }
  }
  return true;
}

void on_recv(int /*source*/, int tag) {
  if (g_plan == nullptr) return;
  for (Spec& s : g_plan->specs()) {
    if (victim_rank(s) != g_rank || s.kind != Kind::kStallRecv ||
        !tag_matches(s, tag))
      continue;
    if (fire(s))
      std::this_thread::sleep_for(
          std::chrono::duration<double>(s.stall_seconds));
  }
}

void on_collective(telemetry::Op op) {
  if (g_plan == nullptr) return;
  for (Spec& s : g_plan->specs()) {
    if (victim_rank(s) != g_rank || s.kind != Kind::kFailCollective ||
        s.op != op)
      continue;
    if (fire(s))
      throw Error(std::string("fault injection: collective ") +
                  telemetry::op_name(op) + " failed on rank " +
                  std::to_string(g_rank));
  }
}

}  // namespace fault
}  // namespace hacc::comm
