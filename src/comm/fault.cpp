#include "comm/fault.h"

#include <chrono>
#include <thread>

#include "util/rng.h"

namespace hacc::comm {

namespace {

thread_local FaultPlan* g_plan = nullptr;
thread_local int g_rank = -1;
thread_local int g_width = 0;
thread_local int g_step = 0;

/// The machine rank a spec fires on at the installed width: specs naming a
/// rank the shrunken machine no longer has fold onto a surviving rank, so a
/// chaos campaign planned at the launch width keeps applying pressure after
/// every elastic shrink.
int victim_rank(const fault::Spec& spec) {
  if (spec.rank < 0 || g_width <= 0) return spec.rank;
  return spec.rank % g_width;
}

/// Match-and-count: true when `spec` should fire for this event. Advances
/// the spec's seen/fired counters; the caller performs the fault action.
bool fire(fault::Spec& spec) {
  const int seen = spec.seen.fetch_add(1, std::memory_order_relaxed);
  if (seen != spec.nth && spec.nth >= 0) return false;
  const int fired = spec.fires.fetch_add(1, std::memory_order_relaxed);
  if (spec.max_fires >= 0 && fired >= spec.max_fires) return false;
  return true;
}

bool tag_matches(const fault::Spec& spec, int tag) {
  return spec.tag == fault::kAnyTag || spec.tag == tag;
}

}  // namespace

fault::Spec& FaultPlan::add(int rank, fault::Kind kind) {
  fault::Spec& s = specs_.emplace_back();
  s.rank = rank;
  s.kind = kind;
  return s;
}

FaultPlan FaultPlan::clone_fresh() const {
  FaultPlan out;
  for (const fault::Spec& s : specs_) {
    fault::Spec& c = out.specs_.emplace_back();
    c.rank = s.rank;
    c.kind = s.kind;
    c.step = s.step;
    c.tag = s.tag;
    c.nth = s.nth;
    c.stall_seconds = s.stall_seconds;
    c.op = s.op;
    c.nbits = s.nbits;
    c.bit = s.bit;
    c.mem_seed = s.mem_seed;
    c.max_fires = s.max_fires;
    // fires/seen stay zero: the clone has never fired.
  }
  return out;
}

FaultPlan& FaultPlan::kill_at_step(int rank, int step) {
  fault::Spec& s = add(rank, fault::Kind::kKillAtStep);
  s.step = step;
  return *this;
}

FaultPlan& FaultPlan::stall_recv(int rank, double seconds, int nth, int tag) {
  fault::Spec& s = add(rank, fault::Kind::kStallRecv);
  s.stall_seconds = seconds;
  s.nth = nth;
  s.tag = tag;
  return *this;
}

FaultPlan& FaultPlan::drop_send(int rank, int tag, int nth) {
  fault::Spec& s = add(rank, fault::Kind::kDropSend);
  s.tag = tag;
  s.nth = nth;
  return *this;
}

FaultPlan& FaultPlan::corrupt_send(int rank, int tag, int nth) {
  fault::Spec& s = add(rank, fault::Kind::kCorruptSend);
  s.tag = tag;
  s.nth = nth;
  return *this;
}

FaultPlan& FaultPlan::fail_collective(int rank, telemetry::Op op, int nth) {
  fault::Spec& s = add(rank, fault::Kind::kFailCollective);
  s.op = op;
  s.nth = nth;
  return *this;
}

FaultPlan& FaultPlan::flip_bits_in_particles(int rank, int step, int nbits,
                                             std::uint64_t seed) {
  fault::Spec& s = add(rank, fault::Kind::kFlipParticleMemory);
  s.step = step;
  s.nbits = nbits;
  s.mem_seed = seed;
  return *this;
}

FaultPlan& FaultPlan::flip_bits_in_grid(int rank, int step, int nbits,
                                        std::uint64_t seed) {
  fault::Spec& s = add(rank, fault::Kind::kFlipGridMemory);
  s.step = step;
  s.nbits = nbits;
  s.mem_seed = seed;
  return *this;
}

FaultPlan& FaultPlan::repeat(int times) {
  HACC_CHECK_MSG(!specs_.empty(), "repeat() needs a preceding fault spec");
  specs_.back().max_fires = times;
  specs_.back().nth = -1;  // every matching event, not just the nth
  return *this;
}

FaultPlan& FaultPlan::pin_bit(int bit) {
  HACC_CHECK_MSG(!specs_.empty() &&
                     (specs_.back().kind == fault::Kind::kFlipParticleMemory ||
                      specs_.back().kind == fault::Kind::kFlipGridMemory),
                 "pin_bit() needs a preceding memory-flip spec");
  specs_.back().bit = bit;
  return *this;
}

namespace fault {

Scope::Scope(FaultPlan* plan, int rank, int width) noexcept
    : prev_plan_(g_plan), prev_rank_(g_rank), prev_width_(g_width) {
  g_plan = plan;
  g_rank = rank;
  g_width = width;
  g_step = 0;
}

Scope::~Scope() {
  g_plan = prev_plan_;
  g_rank = prev_rank_;
  g_width = prev_width_;
}

bool active() noexcept { return g_plan != nullptr; }

void set_step(int step) {
  g_step = step;
  if (g_plan == nullptr) return;
  for (Spec& s : g_plan->specs()) {
    if (victim_rank(s) != g_rank || s.kind != Kind::kKillAtStep ||
        s.step != step)
      continue;
    const int fired = s.fires.fetch_add(1, std::memory_order_relaxed);
    if (s.max_fires >= 0 && fired >= s.max_fires) continue;
    throw RankKilled("fault injection: rank " + std::to_string(g_rank) +
                     " killed at step " + std::to_string(step));
  }
}

int current_step() noexcept { return g_step; }

bool on_send(int tag, std::vector<std::byte>& payload) {
  if (g_plan == nullptr) return true;
  for (Spec& s : g_plan->specs()) {
    if (victim_rank(s) != g_rank || !tag_matches(s, tag)) continue;
    if (s.kind == Kind::kDropSend) {
      if (fire(s)) return false;
    } else if (s.kind == Kind::kCorruptSend) {
      if (fire(s) && !payload.empty())
        payload[payload.size() / 2] ^= std::byte{0x40};
    }
  }
  return true;
}

void on_recv(int /*source*/, int tag) {
  if (g_plan == nullptr) return;
  for (Spec& s : g_plan->specs()) {
    if (victim_rank(s) != g_rank || s.kind != Kind::kStallRecv ||
        !tag_matches(s, tag))
      continue;
    if (fire(s))
      std::this_thread::sleep_for(
          std::chrono::duration<double>(s.stall_seconds));
  }
}

std::vector<MemoryFlip> take_memory_flips(MemoryTarget target,
                                          std::uint64_t elements, int bit_lo,
                                          int bit_hi) {
  std::vector<MemoryFlip> out;
  if (g_plan == nullptr || elements == 0 || bit_hi <= bit_lo) return out;
  const Kind want = target == MemoryTarget::kParticles
                        ? Kind::kFlipParticleMemory
                        : Kind::kFlipGridMemory;
  for (Spec& s : g_plan->specs()) {
    if (victim_rank(s) != g_rank || s.kind != want || s.step != g_step)
      continue;
    const int fired = s.fires.fetch_add(1, std::memory_order_relaxed);
    if (s.max_fires >= 0 && fired >= s.max_fires) continue;
    // Draw (element, bit) pairs from the spec's own counter-based stream:
    // the damage is a pure function of (mem_seed, fired), identical on
    // every re-run that lets the spec fire.
    const Philox rng(s.mem_seed, 0x51DCu + static_cast<std::uint64_t>(fired));
    for (int i = 0; i < s.nbits; ++i) {
      const auto u = rng.uniform2(static_cast<std::uint64_t>(i));
      MemoryFlip flip;
      flip.element =
          static_cast<std::uint64_t>(u[0] * static_cast<double>(elements)) %
          elements;
      flip.bit = s.bit >= 0
                     ? s.bit
                     : bit_lo + static_cast<int>(
                                    u[1] * static_cast<double>(bit_hi - bit_lo)) %
                           (bit_hi - bit_lo);
      out.push_back(flip);
    }
  }
  return out;
}

void on_collective(telemetry::Op op) {
  if (g_plan == nullptr) return;
  for (Spec& s : g_plan->specs()) {
    if (victim_rank(s) != g_rank || s.kind != Kind::kFailCollective ||
        s.op != op)
      continue;
    if (fire(s))
      throw Error(std::string("fault injection: collective ") +
                  telemetry::op_name(op) + " failed on rank " +
                  std::to_string(g_rank));
  }
}

}  // namespace fault
}  // namespace hacc::comm
