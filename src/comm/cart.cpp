#include "comm/cart.h"

#include <algorithm>

namespace hacc::comm {

std::vector<int> dims_create(int nranks, int ndims) {
  HACC_CHECK(nranks >= 1 && ndims >= 1);
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  // Factor nranks into primes (descending) and greedily assign each prime to
  // the currently-smallest dimension; yields near-cubic decompositions.
  std::vector<int> primes;
  int n = nranks;
  for (int f = 2; f * f <= n; ++f) {
    while (n % f == 0) {
      primes.push_back(f);
      n /= f;
    }
  }
  if (n > 1) primes.push_back(n);
  std::sort(primes.rbegin(), primes.rend());
  for (int p : primes) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= p;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

}  // namespace hacc::comm
