#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace hacc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HACC_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  HACC_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(long long v) {
  // Group thousands for readability (the paper's tables do this).
  std::string s = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace hacc
