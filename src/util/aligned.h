// Cache-line / SIMD aligned storage.
//
// HACC's BG/Q force kernel requires neighbor lists in contiguous, aligned
// buffers so the inner loop can use vector loads (paper, Sec. III). We use a
// 64-byte alignment everywhere, which satisfies any SIMD width on current
// hardware and matches typical cache-line size.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace hacc {

/// Alignment (bytes) used for particle and neighbor-list buffers.
inline constexpr std::size_t kAlignment = 64;

/// Minimal C++17 aligned allocator; state-free so vectors are swappable.
template <typename T, std::size_t Align = kAlignment>
struct AlignedAllocator {
  using value_type = T;
  // Explicit rebind: required because Align is a non-type parameter, which
  // allocator_traits cannot rebind automatically.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// Vector with 64-byte-aligned storage; the standard container for all
/// particle component arrays and neighbor lists in this codebase.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// True if `p` is aligned to `Align` bytes.
inline bool is_aligned(const void* p, std::size_t align = kAlignment) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

}  // namespace hacc
