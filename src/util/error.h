// Error handling for the HACC reproduction framework.
//
// The framework is a library: precondition violations throw (so tests can
// assert on them) rather than abort. Hot loops use HACC_ASSERT, which
// compiles out in release builds unless HACC_ENABLE_ASSERTS is defined.
#pragma once

#include <stdexcept>
#include <string>

namespace hacc {

/// Exception thrown on precondition/invariant violations in library code.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": check `" +
              cond + "` failed" + (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace hacc

/// Always-on check for API preconditions. Throws hacc::Error on failure.
#define HACC_CHECK(cond)                                      \
  do {                                                        \
    if (!(cond)) ::hacc::detail::raise(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define HACC_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond)) ::hacc::detail::raise(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Debug-only check for hot paths.
#if defined(HACC_ENABLE_ASSERTS) || !defined(NDEBUG)
#define HACC_ASSERT(cond) HACC_CHECK(cond)
#else
#define HACC_ASSERT(cond) ((void)0)
#endif
