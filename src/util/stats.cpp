#include "util/stats.h"

#include <cmath>
#include <cstdlib>

#include "util/error.h"

namespace hacc {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::vector<double> solve_linear(std::vector<double> a,
                                 std::vector<double> b) {
  const std::size_t n = b.size();
  HACC_CHECK(a.size() == n * n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a[r * n + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    HACC_CHECK_MSG(best > 1e-300, "singular matrix in solve_linear");
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a[piv * n + c], a[col * n + c]);
      std::swap(b[piv], b[col]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a[ri * n + c] * x[c];
    x[ri] = s / a[ri * n + ri];
  }
  return x;
}

std::vector<double> polyfit(std::span<const double> x,
                            std::span<const double> y, int deg) {
  HACC_CHECK(deg >= 0);
  HACC_CHECK(x.size() == y.size());
  HACC_CHECK(x.size() > static_cast<std::size_t>(deg));
  const std::size_t m = static_cast<std::size_t>(deg) + 1;
  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  std::vector<double> ata(m * m, 0.0), aty(m, 0.0);
  std::vector<double> powers(2 * m - 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    powers[0] = 1.0;
    for (std::size_t p = 1; p < powers.size(); ++p)
      powers[p] = powers[p - 1] * x[i];
    for (std::size_t r = 0; r < m; ++r) {
      aty[r] += powers[r] * y[i];
      for (std::size_t c = 0; c < m; ++c) ata[r * m + c] += powers[r + c];
    }
  }
  return solve_linear(std::move(ata), std::move(aty));
}

double polyval(std::span<const double> coeffs, double x) noexcept {
  double v = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) v = v * x + coeffs[i];
  return v;
}

LineFit linefit(std::span<const double> x, std::span<const double> y) {
  HACC_CHECK(x.size() == y.size() && x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  HACC_CHECK_MSG(std::abs(denom) > 1e-300, "degenerate x in linefit");
  const double slope = (n * sxy - sx * sy) / denom;
  return LineFit{(sy - slope * sx) / n, slope};
}

}  // namespace hacc
