// Process-global name interning.
//
// Phase and counter names are hot-path keys: TimerRegistry scopes open and
// close at sub-cycle frequency and comm counters bump on every message, so
// keys must be integers, not strings. intern_name() maps a string to a
// dense process-wide NameId exactly once; every later lookup of the same
// spelling is a map probe with no allocation, and call sites that care
// cache the id in a static. Ids are never recycled.
//
// On the SimMPI substrate every rank is a thread of one process, so NameIds
// are identical across ranks and may travel over the wire directly (the
// obs reducer relies on this); a real-MPI port would exchange the strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hacc {

using NameId = std::uint32_t;

/// Intern `name`, returning its process-wide id (allocates only the first
/// time a spelling is seen). Thread-safe.
NameId intern_name(std::string_view name);

/// The spelling of an interned id; the view is valid for the process
/// lifetime. Thread-safe.
std::string_view name_of(NameId id);

/// Number of names interned so far.
std::size_t interned_name_count();

}  // namespace hacc
