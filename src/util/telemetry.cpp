#include "util/telemetry.h"

#include <chrono>

namespace hacc::util {

namespace {
thread_local const TraceHook* g_hook = nullptr;

std::chrono::steady_clock::time_point process_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Force epoch initialization at static-init time so the first now_ns() call
// on any thread is just a clock read and a subtraction.
const auto g_epoch_init = process_epoch();
}  // namespace

const TraceHook* trace_hook() noexcept { return g_hook; }

const TraceHook* set_trace_hook(const TraceHook* hook) noexcept {
  const TraceHook* prev = g_hook;
  g_hook = hook;
  return prev;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

}  // namespace hacc::util
