#include "util/timer.h"

#include <algorithm>

namespace hacc {

std::vector<TimerRegistry::Row> TimerRegistry::report() const {
  const double total = grand_total();
  std::vector<Row> rows;
  rows.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    rows.push_back(
        Row{name, e.count, e.seconds, total > 0 ? e.seconds / total : 0.0});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.seconds > b.seconds; });
  return rows;
}

}  // namespace hacc
