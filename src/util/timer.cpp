#include "util/timer.h"

#include <algorithm>

namespace hacc {

void TimerRegistry::add(NameId id, double seconds) {
  if (id >= entries_.size()) entries_.resize(id + 1);
  Entry& e = entries_[id];
  e.count += 1;
  e.seconds += seconds;
}

double TimerRegistry::total(NameId id) const {
  return id < entries_.size() ? entries_[id].seconds : 0.0;
}

std::size_t TimerRegistry::count(NameId id) const {
  return id < entries_.size() ? entries_[id].count : 0;
}

double TimerRegistry::grand_total() const {
  double t = 0;
  for (const Entry& e : entries_) t += e.seconds;
  return t;
}

std::vector<TimerRegistry::Total> TimerRegistry::totals() const {
  std::vector<Total> out;
  out.reserve(entries_.size());
  for (std::size_t id = 0; id < entries_.size(); ++id) {
    const Entry& e = entries_[id];
    if (e.count == 0) continue;
    out.push_back(Total{static_cast<NameId>(id), e.count, e.seconds});
  }
  return out;
}

std::vector<TimerRegistry::Row> TimerRegistry::report() const {
  // Fraction-of-wall when the "step" root phase exists, else
  // fraction-of-sum (see header).
  const double root = total(kRootPhase);
  const double denom = root > 0 ? root : grand_total();
  std::vector<Row> rows;
  rows.reserve(entries_.size());
  for (std::size_t id = 0; id < entries_.size(); ++id) {
    const Entry& e = entries_[id];
    if (e.count == 0) continue;
    rows.push_back(Row{std::string(name_of(static_cast<NameId>(id))), e.count,
                       e.seconds, denom > 0 ? e.seconds / denom : 0.0});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.seconds > b.seconds; });
  return rows;
}

void TimerRegistry::clear() { entries_.clear(); }

}  // namespace hacc
