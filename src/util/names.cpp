#include "util/names.h"

#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "util/error.h"

namespace hacc {

namespace {

struct Interner {
  std::mutex mu;
  std::deque<std::string> storage;  // deque: element addresses are stable
  // Heterogeneous comparator so lookups take string_view without building
  // a temporary std::string.
  std::map<std::string_view, NameId> index;
};

Interner& interner() {
  static Interner i;
  return i;
}

}  // namespace

NameId intern_name(std::string_view name) {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  auto it = in.index.find(name);
  if (it != in.index.end()) return it->second;
  in.storage.emplace_back(name);
  const auto id = static_cast<NameId>(in.storage.size() - 1);
  in.index.emplace(std::string_view(in.storage.back()), id);
  return id;
}

std::string_view name_of(NameId id) {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  HACC_CHECK_MSG(id < in.storage.size(), "name_of: unknown NameId");
  return std::string_view(in.storage[id]);
}

std::size_t interned_name_count() {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  return in.storage.size();
}

}  // namespace hacc
