// Running statistics and least-squares fitting.
//
// Used by: the ForceMatcher (fits the degree-5 polynomial of the filtered
// grid force, paper Sec. II), the power-spectrum estimator (bin averages),
// and the bench harnesses (scaling-slope fits).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hacc {

/// Welford running mean/variance with min/max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0, m2_ = 0, min_ = 0, max_ = 0;
};

/// Solve the dense linear system A x = b (in place copies; Gaussian
/// elimination with partial pivoting). A is row-major n x n.
/// Throws hacc::Error if the system is singular to working precision.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b);

/// Least-squares fit of a polynomial c0 + c1 x + ... + c_deg x^deg to the
/// points (x[i], y[i]) via normal equations. Returns deg+1 coefficients,
/// lowest order first.
std::vector<double> polyfit(std::span<const double> x,
                            std::span<const double> y, int deg);

/// Evaluate a polynomial (lowest-order-first coefficients) by Horner.
double polyval(std::span<const double> coeffs, double x) noexcept;

/// Ordinary least squares line fit y = a + b x; returns {a, b}.
struct LineFit {
  double intercept;
  double slope;
};
LineFit linefit(std::span<const double> x, std::span<const double> y);

}  // namespace hacc
