// Hierarchical timing.
//
// HACC's performance story is told in time-per-substep-per-particle and in
// the per-phase breakdown (80% force kernel / 10% tree walk / 5% FFT / 5%
// rest at the 16/4 operating point, paper Sec. III). TimerRegistry
// accumulates named phases so the driver and benches can report exactly
// those breakdowns.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace hacc {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  /// Seconds since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates (count, total seconds) per named phase.
class TimerRegistry {
 public:
  /// RAII scope: accumulates into `name` on destruction.
  class Scope {
   public:
    Scope(TimerRegistry& reg, std::string name)
        : reg_(&reg), name_(std::move(name)) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { reg_->add(name_, timer_.elapsed()); }

   private:
    TimerRegistry* reg_;
    std::string name_;
    Timer timer_;
  };

  void add(const std::string& name, double seconds) {
    auto& e = entries_[name];
    e.count += 1;
    e.seconds += seconds;
  }
  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  double total(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.seconds;
  }
  std::size_t count(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.count;
  }

  /// Sum over all phases.
  double grand_total() const {
    double t = 0;
    for (const auto& [k, v] : entries_) t += v.seconds;
    return t;
  }

  /// (name, seconds, fraction-of-total) rows sorted by descending time.
  struct Row {
    std::string name;
    std::size_t count;
    double seconds;
    double fraction;
  };
  std::vector<Row> report() const;

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::size_t count = 0;
    double seconds = 0;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace hacc
