// Hierarchical timing.
//
// HACC's performance story is told in time-per-substep-per-particle and in
// the per-phase breakdown (80% force kernel / 10% tree walk / 5% FFT / 5%
// rest at the 16/4 operating point, paper Sec. III). TimerRegistry
// accumulates named phases so the driver and benches can report exactly
// those breakdowns.
//
// Phase names are interned (util/names.h): a Scope carries a 4-byte NameId,
// not a std::string, so opening/closing scopes at sub-cycle frequency never
// allocates. Hot call sites cache the id in a static; string overloads
// intern on the fly (a map probe after the first sighting). Every closing
// Scope also reports through the thread's util::TraceHook when one is
// installed, which is how the obs tracer sees TimerRegistry phases without
// any extra instrumentation.
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "util/names.h"
#include "util/telemetry.h"

namespace hacc {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  /// Seconds since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates (count, total seconds) per named phase.
///
/// Not thread-safe: each rank (and the Poisson solver) owns its own
/// registry; cross-rank aggregation is obs::reduce_timers.
class TimerRegistry {
 public:
  /// The conventional root phase: when a phase with this name has been
  /// recorded, report() computes fraction-of-wall against it (see below).
  static constexpr std::string_view kRootPhase = "step";

  /// RAII scope: accumulates into the phase on destruction and reports the
  /// span through the thread's TraceHook (if any). Allocation-free.
  class Scope {
   public:
    Scope(TimerRegistry& reg, NameId id)
        : reg_(&reg), id_(id), t0_ns_(util::now_ns()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      const std::uint64_t t1 = util::now_ns();
      reg_->add(id_, static_cast<double>(t1 - t0_ns_) * 1e-9);
      if (const util::TraceHook* h = util::trace_hook())
        h->complete(h->ctx, id_, t0_ns_, t1 - t0_ns_);
    }

   private:
    TimerRegistry* reg_;
    NameId id_;
    std::uint64_t t0_ns_;
  };

  void add(NameId id, double seconds);
  void add(std::string_view name, double seconds) {
    add(intern_name(name), seconds);
  }

  Scope scope(NameId id) { return Scope(*this, id); }
  Scope scope(std::string_view name) { return Scope(*this, intern_name(name)); }

  double total(NameId id) const;
  double total(std::string_view name) const { return total(intern_name(name)); }
  std::size_t count(NameId id) const;
  std::size_t count(std::string_view name) const {
    return count(intern_name(name));
  }

  /// Sum over all phases (the root phase included — prefer total(kRootPhase)
  /// as "wall time" when a root has been recorded).
  double grand_total() const;

  /// (name, seconds, fraction) rows sorted by descending time.
  ///
  /// Fraction semantics: phases nest (e.g. "cic" runs inside "step"), so
  /// fraction-of-sum double-counts nested time. When a root phase named
  /// kRootPhase ("step") has been recorded, fractions are computed against
  /// its wall time — the root row reads 1.0 and direct children sum to
  /// <= 1 (up to untimed gaps). Without a root, fractions fall back to
  /// fraction-of-grand-total (the legacy behavior for flat registries).
  struct Row {
    std::string name;
    std::size_t count;
    double seconds;
    double fraction;
  };
  std::vector<Row> report() const;

  /// Every phase with a nonzero count, unsorted (for snapshot/delta logic).
  struct Total {
    NameId id;
    std::size_t count;
    double seconds;
  };
  std::vector<Total> totals() const;

  void clear();

 private:
  struct Entry {
    std::size_t count = 0;
    double seconds = 0;
  };
  // Indexed by NameId (dense, process-global); grows on first sighting of
  // an id, after which add() is a bounds check and two stores.
  std::vector<Entry> entries_;
};

}  // namespace hacc
