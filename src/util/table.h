// Console table formatting for the benchmark harnesses.
//
// Every bench binary reproduces a table or figure from the paper; Table
// gives them a uniform fixed-width layout (and a CSV dump for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hacc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; each cell already formatted. Must match header count.
  void add_row(std::vector<std::string> cells);

  /// Helpers to format numbers consistently.
  static std::string fixed(double v, int precision);
  static std::string sci(double v, int precision);
  static std::string integer(long long v);

  /// Render with aligned columns.
  void print(std::ostream& os) const;
  /// Render as CSV.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hacc
