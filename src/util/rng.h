// Counter-based deterministic random numbers.
//
// Extreme-scale particle codes need random streams that are reproducible
// independent of the domain decomposition: particle i must receive the same
// random numbers whether the run uses 1 rank or 96 racks. Counter-based
// generators (Salmon et al., SC'11 "Random123") provide exactly this: the
// stream is a pure function of (key, counter), so rank r can generate the
// numbers for any global particle index without communication.
//
// We implement Philox-4x32-10 from scratch (no external deps), plus
// convenience distributions (uniform, Gaussian via Box-Muller).
#pragma once

#include <array>
#include <cstdint>

namespace hacc {

/// Philox-4x32-10 counter-based PRNG.
///
/// Usage: construct with a key (seed, stream id); call `block(counter)` to
/// get 4x32 random bits for that counter value, or use the stateful
/// `Philox::Stream` helper for sequential draws.
class Philox {
 public:
  using Block = std::array<std::uint32_t, 4>;
  using Counter = std::array<std::uint32_t, 4>;

  Philox(std::uint64_t seed, std::uint64_t stream = 0) noexcept
      : key_{static_cast<std::uint32_t>(seed),
             static_cast<std::uint32_t>(seed >> 32),
             static_cast<std::uint32_t>(stream),
             static_cast<std::uint32_t>(stream >> 32)} {}

  /// 10-round Philox-4x32 block function: 128 random bits per counter.
  Block block(Counter ctr) const noexcept {
    std::uint32_t k0 = key_[0] ^ key_[2];  // fold stream into the 2x32 key
    std::uint32_t k1 = key_[1] ^ key_[3];
    for (int round = 0; round < 10; ++round) {
      ctr = single_round(ctr, k0, k1);
      k0 += kWeyl0;
      k1 += kWeyl1;
    }
    return ctr;
  }

  /// Convenience: 128 bits addressed by a 64-bit counter and a 64-bit tag
  /// (e.g. counter = particle id, tag = physical quantity enum).
  Block block(std::uint64_t counter, std::uint64_t tag = 0) const noexcept {
    return block(Counter{static_cast<std::uint32_t>(counter),
                         static_cast<std::uint32_t>(counter >> 32),
                         static_cast<std::uint32_t>(tag),
                         static_cast<std::uint32_t>(tag >> 32)});
  }

  /// Uniform double in [0,1) from 64 bits of a block.
  static double to_unit(std::uint32_t hi, std::uint32_t lo) noexcept {
    const std::uint64_t bits =
        (static_cast<std::uint64_t>(hi) << 32) | lo;
    // 53 significant bits -> [0,1)
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
  }

  /// Two independent uniforms in [0,1) for a given (counter, tag).
  std::array<double, 2> uniform2(std::uint64_t counter,
                                 std::uint64_t tag = 0) const noexcept {
    const Block b = block(counter, tag);
    return {to_unit(b[0], b[1]), to_unit(b[2], b[3])};
  }

  /// Two independent standard-normal deviates (Box-Muller) for
  /// (counter, tag). Deterministic in (seed, stream, counter, tag).
  std::array<double, 2> gaussian2(std::uint64_t counter,
                                  std::uint64_t tag = 0) const noexcept;

  class Stream;

 private:

  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3)-1

  static Counter single_round(Counter c, std::uint32_t k0,
                              std::uint32_t k1) noexcept {
    const std::uint64_t p0 = 0xD2511F53ULL * c[0];
    const std::uint64_t p1 = 0xCD9E8D57ULL * c[2];
    return Counter{
        static_cast<std::uint32_t>(p1 >> 32) ^ c[1] ^ k0,
        static_cast<std::uint32_t>(p1),
        static_cast<std::uint32_t>(p0 >> 32) ^ c[3] ^ k1,
        static_cast<std::uint32_t>(p0),
    };
  }

  std::array<std::uint32_t, 4> key_;
};

/// Stateful sequential stream over increasing counters; convenient for
/// scalar code (workload generators, tests).
class Philox::Stream {
 public:
  explicit Stream(const Philox& rng, std::uint64_t tag = 0) noexcept
      : rng_(rng), tag_(tag) {}

  double uniform() noexcept {
    if (phase_ == 0) {
      cache_ = rng_.uniform2(n_++, tag_);
      phase_ = 1;
      return cache_[0];
    }
    phase_ = 0;
    return cache_[1];
  }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }
  double gaussian() noexcept {
    if (gphase_ == 0) {
      gcache_ = rng_.gaussian2(gn_++, tag_ + 0x9e3779b97f4a7c15ULL);
      gphase_ = 1;
      return gcache_[0];
    }
    gphase_ = 0;
    return gcache_[1];
  }
  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) noexcept {
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
  }

 private:
  Philox rng_;
  std::uint64_t tag_ = 0;
  std::uint64_t n_ = 0, gn_ = 0;
  int phase_ = 0, gphase_ = 0;
  std::array<double, 2> cache_{}, gcache_{};
};

/// 64-bit SplitMix mixer: hashing utility for seeding and id scrambling.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace hacc
