#include "util/rng.h"

#include <cmath>

namespace hacc {

std::array<double, 2> Philox::gaussian2(std::uint64_t counter,
                                        std::uint64_t tag) const noexcept {
  const Block b = block(counter, tag);
  // Box-Muller; guard u1 away from 0 so log() is finite.
  double u1 = to_unit(b[0], b[1]);
  const double u2 = to_unit(b[2], b[3]);
  if (u1 < 0x1.0p-60) u1 = 0x1.0p-60;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  return {r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace hacc
