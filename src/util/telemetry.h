// The thread-local trace hook that lets util-layer code (TimerRegistry)
// emit trace events into the obs-layer tracer without depending on it.
//
// obs::Binding installs a TraceHook on the calling thread; every
// TimerRegistry::Scope then reports its (name, begin, duration) through the
// hook as it closes. When no hook is installed (the default) the cost is a
// single thread-local load and branch, and no allocation ever happens —
// that is the "tracing disabled" fast path asserted by obs_test.
#pragma once

#include <cstdint>

#include "util/names.h"

namespace hacc::util {

/// A borrowed (never owned) sink for completed trace spans.
struct TraceHook {
  /// Called as complete(ctx, name, begin_ns, duration_ns); must be
  /// callable from any thread the hook is installed on.
  void (*complete)(void* ctx, NameId name, std::uint64_t t0_ns,
                   std::uint64_t dur_ns);
  void* ctx;
};

/// The calling thread's hook, or nullptr.
const TraceHook* trace_hook() noexcept;

/// Install `hook` (may be nullptr) on the calling thread; returns the
/// previous hook so callers can restore it RAII-style.
const TraceHook* set_trace_hook(const TraceHook* hook) noexcept;

/// Monotonic nanoseconds since a process-wide epoch (steady clock). All
/// ranks of the SimMPI machine share the epoch, so trace timestamps are
/// directly comparable across ranks.
std::uint64_t now_ns() noexcept;

}  // namespace hacc::util
