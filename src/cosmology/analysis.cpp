#include "cosmology/analysis.h"

#include <cmath>
#include <numbers>

#include "fft/pencil.h"
#include "mesh/kernels.h"
#include "mesh/remap.h"
#include "util/error.h"

namespace hacc::cosmology {

namespace {
double periodic_delta(double d, double box) {
  if (d > 0.5 * box) return d - box;
  if (d < -0.5 * box) return d + box;
  return d;
}
}  // namespace

std::vector<ProfileBin> halo_profile(const tree::ParticleArray& p,
                                     const Halo& halo, double box,
                                     double rmax, std::size_t bins) {
  HACC_CHECK(bins >= 2 && rmax > 0 && box > 0);
  std::vector<double> mass(bins, 0.0);
  std::vector<std::size_t> counts(bins, 0);
  // Profile over ALL particles (not just FOF members): the outskirts
  // beyond the linking surface are part of the profile.
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double dx = periodic_delta(p.x[i] - halo.center[0], box);
    const double dy = periodic_delta(p.y[i] - halo.center[1], box);
    const double dz = periodic_delta(p.z[i] - halo.center[2], box);
    const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (r >= rmax) continue;
    const auto b = static_cast<std::size_t>(r / rmax *
                                            static_cast<double>(bins));
    const std::size_t bi = b >= bins ? bins - 1 : b;
    mass[bi] += p.mass[i];
    ++counts[bi];
  }
  std::vector<ProfileBin> out(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double r0 = rmax * static_cast<double>(b) / static_cast<double>(bins);
    const double r1 =
        rmax * static_cast<double>(b + 1) / static_cast<double>(bins);
    const double vol =
        4.0 / 3.0 * std::numbers::pi * (r1 * r1 * r1 - r0 * r0 * r0);
    out[b].r = 0.5 * (r0 + r1);
    out[b].density = mass[b] / vol;
    out[b].count = counts[b];
  }
  return out;
}

std::vector<CorrelationBin> measure_correlation_function(
    comm::Comm& world, const mesh::DistGrid& delta, double box_mpch,
    std::size_t bins) {
  HACC_CHECK(bins >= 2);
  const auto& dims = delta.decomp().grid_dims();
  HACC_CHECK(dims[0] == dims[1] && dims[1] == dims[2]);
  const std::size_t n = dims[0];
  const double cell = box_mpch / static_cast<double>(n);

  // delta -> pencil layout -> |delta_k|^2 -> inverse FFT = N^3 * xi(x).
  fft::PencilFft3D fft =
      fft::PencilFft3D::balanced(world, dims[0], dims[1], dims[2]);
  std::vector<fft::Box3D> src, dst;
  for (int r = 0; r < world.size(); ++r) {
    src.push_back(delta.decomp().box_of(r));
    const int q1 = r / fft.p2(), q2 = r % fft.p2();
    dst.push_back(fft::Box3D{fft::block_range(dims[0], fft.p1(), q1),
                             fft::block_range(dims[1], fft.p2(), q2),
                             fft::Range{0, dims[2]}});
  }
  mesh::Redistributor remap(src, dst);
  std::vector<double> interior;
  const auto& b = delta.interior();
  interior.reserve(b.volume());
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(b.x.extent());
       ++i)
    for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(b.y.extent());
         ++j)
      for (std::ptrdiff_t k = 0;
           k < static_cast<std::ptrdiff_t>(b.z.extent()); ++k)
        interior.push_back(delta.at(i, j, k));
  auto pencil = remap.forward(world, interior);
  std::vector<fft::Complex> spec(pencil.size());
  for (std::size_t i = 0; i < pencil.size(); ++i)
    spec[i] = fft::Complex(pencil[i], 0.0);
  fft.forward(spec);
  for (auto& v : spec) v = fft::Complex(std::norm(v), 0.0);
  fft.inverse(spec);  // spec now holds sum_x delta(x) delta(x+r) per cell

  // Bin by periodic lag radius over this rank's z-pencil (real layout).
  const fft::Box3D rb = fft.real_box();
  const double ncells = static_cast<double>(n) * static_cast<double>(n) *
                        static_cast<double>(n);
  const double rmax = 0.5 * box_mpch;
  std::vector<double> xsum(bins, 0.0);
  std::vector<long long> counts(bins, 0);
  std::size_t idx = 0;
  for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x) {
    const double lx =
        periodic_delta(static_cast<double>(x) * cell, box_mpch);
    for (std::size_t y = rb.y.lo; y < rb.y.hi; ++y) {
      const double ly =
          periodic_delta(static_cast<double>(y) * cell, box_mpch);
      for (std::size_t z = rb.z.lo; z < rb.z.hi; ++z, ++idx) {
        const double lz =
            periodic_delta(static_cast<double>(z) * cell, box_mpch);
        const double r = std::sqrt(lx * lx + ly * ly + lz * lz);
        if (r >= rmax) continue;
        const auto bi = static_cast<std::size_t>(
            r / rmax * static_cast<double>(bins));
        const std::size_t bb = bi >= bins ? bins - 1 : bi;
        xsum[bb] += spec[idx].real() / ncells;  // normalize the correlation
        ++counts[bb];
      }
    }
  }
  world.allreduce(std::span<double>(xsum), comm::ReduceOp::kSum);
  world.allreduce(std::span<long long>(counts), comm::ReduceOp::kSum);

  std::vector<CorrelationBin> out;
  for (std::size_t bi = 0; bi < bins; ++bi) {
    if (counts[bi] == 0) continue;
    CorrelationBin cb;
    cb.r = (static_cast<double>(bi) + 0.5) * rmax / static_cast<double>(bins);
    cb.xi = xsum[bi] / static_cast<double>(counts[bi]);
    cb.cells = static_cast<std::size_t>(counts[bi]);
    out.push_back(cb);
  }
  return out;
}

double sigma_of_mass(const LinearPower& power, double m) {
  // Mean comoving matter density [Msun/h / (Mpc/h)^3].
  const double rho_crit = 2.775e11;
  const double rho_m = rho_crit * power.cosmology().omega_m;
  const double radius =
      std::cbrt(3.0 * m / (4.0 * std::numbers::pi * rho_m));
  return sigma_r(power, radius);
}

double press_schechter_dndlnm(const LinearPower& power, double z, double m) {
  const double rho_crit = 2.775e11;
  const double rho_m = rho_crit * power.cosmology().omega_m;
  const double delta_c = 1.686;
  const double growth =
      power.cosmology().growth_factor(Cosmology::a_of_z(z));
  const double sigma = sigma_of_mass(power, m) * growth;
  // dln(sigma)/dlnM by central difference.
  const double eps = 0.02;
  const double s_hi = sigma_of_mass(power, m * (1.0 + eps));
  const double s_lo = sigma_of_mass(power, m * (1.0 - eps));
  const double dlns_dlnm =
      (std::log(s_hi) - std::log(s_lo)) / (2.0 * std::log1p(eps));
  const double nu = delta_c / sigma;
  return std::sqrt(2.0 / std::numbers::pi) * rho_m / m * nu *
         std::abs(dlns_dlnm) * std::exp(-0.5 * nu * nu);
}

}  // namespace hacc::cosmology
