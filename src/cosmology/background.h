// FLRW background evolution and linear growth.
//
// The expansion of the Universe enters HACC through the scale factor a(t)
// (paper Eq. 2-4): the Poisson source scales as a^-1 in comoving
// coordinates and the symplectic stepper's kick/drift coefficients are
// integrals over 1/(a^2 E) and 1/(a^3 E). This module provides E(a), the
// kick/drift integrals, and the linear growth factor D+(a) used for initial
// conditions and for validating the integrator against linear theory.
//
// Code units: lengths in grid cells, time tau = H0 t, momenta p = a^2 dx/dtau.
#pragma once

#include <cstddef>

namespace hacc::cosmology {

/// Flat(ish) LCDM parameters; defaults follow the WMAP7-like cosmology HACC
/// science runs used (Omega_m ~ 0.26, h ~ 0.71, n_s ~ 0.963, sigma_8 ~ 0.8).
struct Cosmology {
  double omega_m = 0.265;   ///< total matter (CDM + baryon) today
  double omega_b = 0.045;   ///< baryons today
  double omega_l = 0.735;   ///< dark energy
  double h = 0.71;          ///< H0 / (100 km/s/Mpc)
  double n_s = 0.963;       ///< primordial spectral index
  double sigma8 = 0.8;      ///< linear normalization at z = 0
  /// Dark-energy equation of state w = p/rho (constant w0 model); -1 is a
  /// cosmological constant. The paper's science program is exactly to
  /// "systematically study dark energy model space" (Sec. V) — w is the
  /// first axis of that space.
  double w = -1.0;

  double omega_k() const noexcept { return 1.0 - omega_m - omega_l; }

  /// E(a) = H(a)/H0.
  double efunc(double a) const noexcept;

  /// Conversions.
  static double a_of_z(double z) noexcept { return 1.0 / (1.0 + z); }
  static double z_of_a(double a) noexcept { return 1.0 / a - 1.0; }

  /// Kick coefficient: int_{a0}^{a1} da / (a^2 E(a)) = int dtau / a.
  /// (The momentum update is dp = (3/2) Omega_m * g * this integral.)
  double kick_factor(double a0, double a1) const;

  /// Drift coefficient: int_{a0}^{a1} da / (a^3 E(a)) = int dtau / a^2.
  /// (The position update is dx = p * this integral.)
  double drift_factor(double a0, double a1) const;

  /// Conformal-ish time elapsed: int da/(a E) = H0 (t1 - t0)... in tau.
  double tau_of(double a0, double a1) const;

  /// Linear growth factor D+(a), normalized to D+(1) = 1.
  double growth_factor(double a) const;

  /// Growth rate f = dln D+ / dln a.
  double growth_rate(double a) const;
};

/// Adaptive Simpson integration helper (shared by the factors above and by
/// the sigma8 normalization integral in power_spectrum.cpp).
double integrate(double lo, double hi, double (*f)(double, const void*),
                 const void* ctx, std::size_t panels = 512);

}  // namespace hacc::cosmology
