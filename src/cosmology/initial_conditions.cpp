#include "cosmology/initial_conditions.h"

#include <cmath>
#include <numbers>

#include "fft/pencil.h"
#include "mesh/cic.h"
#include "mesh/kernels.h"
#include "mesh/remap.h"
#include "util/rng.h"

namespace hacc::cosmology {

void generate_displacement_fields(comm::Comm& world,
                                  const mesh::BlockDecomp3D& decomp,
                                  const Cosmology& cosmo,
                                  const IcConfig& config,
                                  std::array<mesh::DistGrid, 3>& psi) {
  const auto& dims = decomp.grid_dims();
  HACC_CHECK(dims[0] == dims[1] && dims[1] == dims[2]);
  const std::size_t n = dims[0];
  const double box = config.box_mpch;
  const double cell_mpch = box / static_cast<double>(n);
  const double kf = 2.0 * std::numbers::pi / box;
  const double ncells = static_cast<double>(n) * static_cast<double>(n) *
                        static_cast<double>(n);

  LinearPower power(cosmo, config.transfer);

  fft::PencilFft3D fft = fft::PencilFft3D::balanced(world, n, n, n);
  const fft::Box3D rb = fft.real_box();
  // White noise keyed by global cell: decomposition independent.
  Philox rng(config.seed);
  std::vector<fft::Complex> noise(rb.volume());
  {
    std::size_t i = 0;
    for (std::size_t x = rb.x.lo; x < rb.x.hi; ++x)
      for (std::size_t y = rb.y.lo; y < rb.y.hi; ++y)
        for (std::size_t z = rb.z.lo; z < rb.z.hi; ++z) {
          const std::uint64_t cell = (x * n + y) * n + z;
          noise[i++] = fft::Complex(rng.gaussian2(cell)[0], 0.0);
        }
  }
  fft.forward(noise);

  // delta(k) = n(k) sqrt(P(k) N / V); psi_axis(k) = i k_axis delta / k^2.
  const fft::Box3D sb = fft.spectral_box();
  // Remap table: pencil spectral layout is not needed; we inverse-transform
  // per axis from the same delta(k), so keep delta and derive per axis.
  std::vector<fft::Complex> delta_k(noise.size());
  {
    std::size_t i = 0;
    for (std::size_t mx = sb.x.lo; mx < sb.x.hi; ++mx) {
      const long sx = mesh::signed_mode(mx, n);
      for (std::size_t my = sb.y.lo; my < sb.y.hi; ++my) {
        const long sy = mesh::signed_mode(my, n);
        for (std::size_t mz = sb.z.lo; mz < sb.z.hi; ++mz, ++i) {
          const long sz = mesh::signed_mode(mz, n);
          const double k2 =
              kf * kf *
              static_cast<double>(sx * sx + sy * sy + sz * sz);
          if (k2 == 0.0) {
            delta_k[i] = fft::Complex(0, 0);
            continue;
          }
          const double kmag = std::sqrt(k2);
          const double amp =
              std::sqrt(power(kmag) * ncells / (box * box * box));
          delta_k[i] = noise[i] * amp;
        }
      }
    }
  }

  // Block-layout remap table (shared by the three components).
  std::vector<fft::Box3D> src, dst;
  for (int r = 0; r < world.size(); ++r) {
    const int q1 = r / fft.p2(), q2 = r % fft.p2();
    src.push_back(fft::Box3D{fft::block_range(n, fft.p1(), q1),
                             fft::block_range(n, fft.p2(), q2),
                             fft::Range{0, n}});
    dst.push_back(decomp.box_of(r));
  }
  mesh::Redistributor remap(src, dst);

  for (int axis = 0; axis < 3; ++axis) {
    std::vector<fft::Complex> psi_k(delta_k.size());
    std::size_t i = 0;
    for (std::size_t mx = sb.x.lo; mx < sb.x.hi; ++mx) {
      const long sx = mesh::signed_mode(mx, n);
      for (std::size_t my = sb.y.lo; my < sb.y.hi; ++my) {
        const long sy = mesh::signed_mode(my, n);
        for (std::size_t mz = sb.z.lo; mz < sb.z.hi; ++mz, ++i) {
          const long sz = mesh::signed_mode(mz, n);
          const double k2 =
              kf * kf * static_cast<double>(sx * sx + sy * sy + sz * sz);
          if (k2 == 0.0) {
            psi_k[i] = fft::Complex(0, 0);
            continue;
          }
          const long sm = axis == 0 ? sx : axis == 1 ? sy : sz;
          // Zero the Nyquist plane of this axis: i*k has no Hermitian
          // partner there and would leak an imaginary component.
          if (n % 2 == 0 && sm == -static_cast<long>(n / 2)) {
            psi_k[i] = fft::Complex(0, 0);
            continue;
          }
          const double ka = kf * static_cast<double>(sm);
          // psi = i k / k^2 * delta  [Mpc/h]; convert to grid units.
          psi_k[i] = fft::Complex(0.0, ka / k2) * delta_k[i] /
                     cell_mpch;
        }
      }
    }
    fft.inverse(psi_k);
    std::vector<double> real(psi_k.size());
    for (std::size_t j = 0; j < psi_k.size(); ++j) real[j] = psi_k[j].real();
    // src boxes are the pencils, dst the particle blocks: forward maps
    // pencil -> block.
    auto block = remap.forward(world, real);
    // Store into the DistGrid interior.
    auto& grid = psi[static_cast<std::size_t>(axis)];
    const auto& b = grid.interior();
    grid.fill(0.0);
    std::size_t j = 0;
    for (std::ptrdiff_t xx = 0;
         xx < static_cast<std::ptrdiff_t>(b.x.extent()); ++xx)
      for (std::ptrdiff_t yy = 0;
           yy < static_cast<std::ptrdiff_t>(b.y.extent()); ++yy)
        for (std::ptrdiff_t zz = 0;
             zz < static_cast<std::ptrdiff_t>(b.z.extent()); ++zz)
          grid.at(xx, yy, zz) = block[j++];
    grid.fill_ghosts(world);
  }
}

void generate_zeldovich(comm::Comm& world, const mesh::BlockDecomp3D& decomp,
                        const Cosmology& cosmo, const IcConfig& config,
                        tree::ParticleArray& out) {
  const auto& dims = decomp.grid_dims();
  const std::size_t n = dims[0];
  const std::size_t np = config.particles_per_dim;
  HACC_CHECK_MSG(np >= 1 && np <= n,
                 "particle lattice must not exceed the grid");

  std::array<mesh::DistGrid, 3> psi{
      mesh::DistGrid(decomp, world.rank(), 1),
      mesh::DistGrid(decomp, world.rank(), 1),
      mesh::DistGrid(decomp, world.rank(), 1)};
  generate_displacement_fields(world, decomp, cosmo, config, psi);

  const double a = Cosmology::a_of_z(config.z_init);
  const double growth = cosmo.growth_factor(a);
  const double f = cosmo.growth_rate(a);
  const double e = cosmo.efunc(a);
  // Zel'dovich momentum coefficient: p = a^2 E f D psi (code units).
  const double pcoef = a * a * e * f * growth;

  const auto& box = decomp.box_of(world.rank());
  const double spacing = static_cast<double>(n) / static_cast<double>(np);
  out.clear();

  // Lattice sites inside my domain.
  auto first_site = [&](double lo) {
    return static_cast<std::size_t>(
        std::ceil(lo / spacing - 1e-9));
  };
  std::vector<float> qx, qy, qz;
  std::vector<std::uint64_t> ids;
  for (std::size_t ix = first_site(static_cast<double>(box.x.lo)); ix < np;
       ++ix) {
    const double x = static_cast<double>(ix) * spacing;
    if (x >= static_cast<double>(box.x.hi)) break;
    for (std::size_t iy = first_site(static_cast<double>(box.y.lo)); iy < np;
         ++iy) {
      const double y = static_cast<double>(iy) * spacing;
      if (y >= static_cast<double>(box.y.hi)) break;
      for (std::size_t iz = first_site(static_cast<double>(box.z.lo));
           iz < np; ++iz) {
        const double z = static_cast<double>(iz) * spacing;
        if (z >= static_cast<double>(box.z.hi)) break;
        qx.push_back(static_cast<float>(x));
        qy.push_back(static_cast<float>(y));
        qz.push_back(static_cast<float>(z));
        ids.push_back((ix * np + iy) * np + iz);
      }
    }
  }

  std::vector<float> dx(qx.size()), dy(qx.size()), dz(qx.size());
  mesh::cic_interpolate(psi[0], qx, qy, qz, dx);
  mesh::cic_interpolate(psi[1], qx, qy, qz, dy);
  mesh::cic_interpolate(psi[2], qx, qy, qz, dz);

  const auto wrap = [&](double v) {
    const double nn = static_cast<double>(n);
    v = std::fmod(v, nn);
    return static_cast<float>(v < 0 ? v + nn : v);
  };
  out.reserve(qx.size());
  for (std::size_t i = 0; i < qx.size(); ++i) {
    out.push_back(wrap(qx[i] + growth * dx[i]),
                  wrap(qy[i] + growth * dy[i]),
                  wrap(qz[i] + growth * dz[i]),
                  static_cast<float>(pcoef * dx[i]),
                  static_cast<float>(pcoef * dy[i]),
                  static_cast<float>(pcoef * dz[i]), 1.0f, ids[i]);
  }
}

}  // namespace hacc::cosmology
