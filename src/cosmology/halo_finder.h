// Friends-of-friends (FOF) halo finder with subhalo splitting.
//
// Halos are the basic objects of the paper's science section (Sec. V):
// cluster mass functions, merger statistics, and the halo/sub-halo
// decomposition of Fig. 11. This is the standard FOF algorithm: particles
// closer than a linking length b times the mean inter-particle spacing are
// friends; connected components are halos. Sub-structure is extracted by
// re-linking each halo's members at a fraction of the parent linking
// length (a simple, deterministic stand-in for HACC's subhalo machinery).
//
// Implementation: chaining mesh for neighbor candidates + union-find with
// path compression; periodic distances on the simulation box.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tree/particles.h"

namespace hacc::cosmology {

struct Halo {
  std::vector<std::uint32_t> members;  ///< indices into the particle array
  /// Stable halo tag: the minimum member *particle* id (the standard FOF
  /// convention). Independent of particle array order, rank count, and
  /// thread count — catalog files keyed by it are reproducible.
  std::uint64_t id = 0;
  std::array<double, 3> center{};      ///< periodic center of mass (grid units)
  std::array<double, 3> velocity{};    ///< mean velocity
  double mass = 0;                     ///< sum of member masses
};

struct FofConfig {
  double linking_length = 0.2;  ///< b, in units of mean particle spacing
  std::size_t min_members = 10;
  double box = 0;  ///< periodic box side in grid units (required)
  double mean_spacing = 0;  ///< mean inter-particle spacing (grid units)
};

/// Find FOF halos over all particles (single-rank analysis; run it on a
/// gathered snapshot). Returns halos sorted by descending mass.
std::vector<Halo> find_halos(const tree::ParticleArray& particles,
                             const FofConfig& config);

/// Split one halo into subhalos by re-linking its members at
/// `sub_linking_fraction` times the parent linking length.
std::vector<Halo> find_subhalos(const tree::ParticleArray& particles,
                                const Halo& halo, const FofConfig& config,
                                double sub_linking_fraction = 0.5,
                                std::size_t min_members = 10);

/// Cumulative mass function: for each threshold mass in `edges` (ascending),
/// the number of halos with mass >= that threshold.
std::vector<std::size_t> mass_function(const std::vector<Halo>& halos,
                                       const std::vector<double>& edges);

}  // namespace hacc::cosmology
