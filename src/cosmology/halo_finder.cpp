#include "cosmology/halo_finder.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.h"

namespace hacc::cosmology {

namespace {

/// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
  }
  std::uint32_t find(std::uint32_t v) noexcept {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  void unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

double periodic_delta(double d, double box) noexcept {
  if (d > 0.5 * box) return d - box;
  if (d < -0.5 * box) return d + box;
  return d;
}

/// Link all pairs within `radius` among `subset` (or all particles when the
/// subset is empty) using a chaining mesh with periodic wrap.
void link_pairs(const tree::ParticleArray& p,
                const std::vector<std::uint32_t>& subset, double radius,
                double box, DisjointSets& sets) {
  const double r2 = radius * radius;
  const int ncells = std::max(3, static_cast<int>(std::floor(box / radius)));
  const double cell = box / ncells;
  const std::size_t total =
      static_cast<std::size_t>(ncells) * static_cast<std::size_t>(ncells) *
      static_cast<std::size_t>(ncells);

  auto cell_of = [&](float x, float y, float z) {
    auto c = [&](float v) {
      int i = static_cast<int>(static_cast<double>(v) / cell);
      if (i >= ncells) i = ncells - 1;
      if (i < 0) i = 0;
      return i;
    };
    return (static_cast<std::size_t>(c(x)) * static_cast<std::size_t>(ncells) +
            static_cast<std::size_t>(c(y))) *
               static_cast<std::size_t>(ncells) +
           static_cast<std::size_t>(c(z));
  };

  std::vector<std::vector<std::uint32_t>> cells(total);
  auto add = [&](std::uint32_t i) {
    cells[cell_of(p.x[i], p.y[i], p.z[i])].push_back(i);
  };
  if (subset.empty()) {
    for (std::uint32_t i = 0; i < p.size(); ++i) add(i);
  } else {
    for (auto i : subset) add(i);
  }

  for (int cx = 0; cx < ncells; ++cx)
    for (int cy = 0; cy < ncells; ++cy)
      for (int cz = 0; cz < ncells; ++cz) {
        const std::size_t c0 =
            (static_cast<std::size_t>(cx) * static_cast<std::size_t>(ncells) +
             static_cast<std::size_t>(cy)) *
                static_cast<std::size_t>(ncells) +
            static_cast<std::size_t>(cz);
        const auto& mine = cells[c0];
        if (mine.empty()) continue;
        for (int dx = -1; dx <= 1; ++dx)
          for (int dy = -1; dy <= 1; ++dy)
            for (int dz = -1; dz <= 1; ++dz) {
              const int nx = (cx + dx + ncells) % ncells;
              const int ny = (cy + dy + ncells) % ncells;
              const int nz = (cz + dz + ncells) % ncells;
              const std::size_t c1 =
                  (static_cast<std::size_t>(nx) *
                       static_cast<std::size_t>(ncells) +
                   static_cast<std::size_t>(ny)) *
                      static_cast<std::size_t>(ncells) +
                  static_cast<std::size_t>(nz);
              if (c1 < c0) continue;  // each unordered cell pair once
              const auto& other = cells[c1];
              for (std::size_t a = 0; a < mine.size(); ++a) {
                const std::uint32_t i = mine[a];
                const std::size_t b0 = (c1 == c0) ? a + 1 : 0;
                for (std::size_t b = b0; b < other.size(); ++b) {
                  const std::uint32_t j = other[b];
                  const double ddx = periodic_delta(p.x[i] - p.x[j], box);
                  const double ddy = periodic_delta(p.y[i] - p.y[j], box);
                  const double ddz = periodic_delta(p.z[i] - p.z[j], box);
                  if (ddx * ddx + ddy * ddy + ddz * ddz <= r2)
                    sets.unite(i, j);
                }
              }
            }
      }
}

/// Periodic center of mass: average unit-circle phases per axis.
std::array<double, 3> periodic_center(const tree::ParticleArray& p,
                                      const std::vector<std::uint32_t>& m,
                                      double box) {
  std::array<double, 3> center{};
  for (int axis = 0; axis < 3; ++axis) {
    double cs = 0, sn = 0, msum = 0;
    for (auto i : m) {
      const double v =
          axis == 0 ? p.x[i] : axis == 1 ? p.y[i] : p.z[i];
      const double th = 2.0 * std::numbers::pi * v / box;
      cs += p.mass[i] * std::cos(th);
      sn += p.mass[i] * std::sin(th);
      msum += p.mass[i];
    }
    double th = std::atan2(sn / msum, cs / msum);
    if (th < 0) th += 2.0 * std::numbers::pi;
    center[static_cast<std::size_t>(axis)] =
        th * box / (2.0 * std::numbers::pi);
  }
  return center;
}

std::vector<Halo> groups_from_sets(const tree::ParticleArray& p,
                                   DisjointSets& sets,
                                   const std::vector<std::uint32_t>& subset,
                                   std::size_t min_members, double box) {
  std::vector<std::vector<std::uint32_t>> groups;
  std::vector<std::int64_t> group_of(p.size(), -1);
  auto visit = [&](std::uint32_t i) {
    const std::uint32_t root = sets.find(i);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<std::int64_t>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[root])].push_back(i);
  };
  if (subset.empty()) {
    for (std::uint32_t i = 0; i < p.size(); ++i) visit(i);
  } else {
    for (auto i : subset) visit(i);
  }

  std::vector<Halo> halos;
  for (auto& g : groups) {
    if (g.size() < min_members) continue;
    Halo h;
    h.members = std::move(g);
    // Canonical member order (ascending particle id): the center/velocity
    // float sums below — and therefore the catalog bytes — are identical no
    // matter how the particle array was permuted by decomposition or
    // gathering order.
    std::sort(h.members.begin(), h.members.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return p.id[a] != p.id[b] ? p.id[a] < p.id[b] : a < b;
              });
    h.id = p.id[h.members.front()];
    h.center = periodic_center(p, h.members, box);
    for (auto i : h.members) {
      h.mass += p.mass[i];
      h.velocity[0] += p.vx[i];
      h.velocity[1] += p.vy[i];
      h.velocity[2] += p.vz[i];
    }
    const double inv = 1.0 / static_cast<double>(h.members.size());
    for (auto& v : h.velocity) v *= inv;
    halos.push_back(std::move(h));
  }
  // Mass order for science consumers, halo id as the total tie-break so the
  // list order (and any file written from it) is deterministic.
  std::sort(halos.begin(), halos.end(), [](const Halo& a, const Halo& b) {
    return a.mass != b.mass ? a.mass > b.mass : a.id < b.id;
  });
  return halos;
}

}  // namespace

std::vector<Halo> find_halos(const tree::ParticleArray& p,
                             const FofConfig& config) {
  HACC_CHECK_MSG(config.box > 0, "FofConfig.box must be set");
  HACC_CHECK_MSG(config.mean_spacing > 0,
                 "FofConfig.mean_spacing must be set");
  if (p.size() == 0) return {};
  const double radius = config.linking_length * config.mean_spacing;
  DisjointSets sets(p.size());
  link_pairs(p, {}, radius, config.box, sets);
  return groups_from_sets(p, sets, {}, config.min_members, config.box);
}

std::vector<Halo> find_subhalos(const tree::ParticleArray& p, const Halo& halo,
                                const FofConfig& config,
                                double sub_linking_fraction,
                                std::size_t min_members) {
  HACC_CHECK(sub_linking_fraction > 0 && sub_linking_fraction <= 1.0);
  const double radius = config.linking_length * config.mean_spacing *
                        sub_linking_fraction;
  DisjointSets sets(p.size());
  link_pairs(p, halo.members, radius, config.box, sets);
  return groups_from_sets(p, sets, halo.members, min_members, config.box);
}

std::vector<std::size_t> mass_function(const std::vector<Halo>& halos,
                                       const std::vector<double>& edges) {
  std::vector<std::size_t> counts(edges.size(), 0);
  for (const auto& h : halos) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (h.mass >= edges[i]) ++counts[i];
    }
  }
  return counts;
}

}  // namespace hacc::cosmology
