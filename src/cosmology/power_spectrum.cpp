#include "cosmology/power_spectrum.h"

#include <cmath>
#include <numbers>

#include "fft/pencil.h"
#include "mesh/kernels.h"
#include "mesh/remap.h"
#include "util/error.h"

namespace hacc::cosmology {

LinearPower::LinearPower(const Cosmology& cosmo, TransferFunction tf)
    : cosmo_(cosmo), tf_(tf) {
  // Normalize to sigma8 with a self-referential two-pass: compute sigma(8)
  // with norm 1, then rescale.
  norm_ = 1.0;
  const double s8 = sigma_r(*this, 8.0);
  HACC_CHECK(s8 > 0.0);
  norm_ = (cosmo_.sigma8 * cosmo_.sigma8) / (s8 * s8);
}

double LinearPower::transfer(double k) const {
  if (k <= 0.0) return 1.0;
  switch (tf_) {
    case TransferFunction::kBbks: {
      // BBKS (1986) with the Sugiyama (1995) shape parameter.
      const double gamma =
          cosmo_.omega_m * cosmo_.h *
          std::exp(-cosmo_.omega_b * (1.0 + std::sqrt(2.0 * cosmo_.h) /
                                                cosmo_.omega_m));
      const double q = k / (gamma);
      return std::log(1.0 + 2.34 * q) / (2.34 * q) *
             std::pow(1.0 + 3.89 * q + std::pow(16.1 * q, 2) +
                          std::pow(5.46 * q, 3) + std::pow(6.71 * q, 4),
                      -0.25);
    }
    case TransferFunction::kEisensteinHu: {
      // Eisenstein & Hu (1998), zero-baryon ("no-wiggle") shape fit.
      const double om = cosmo_.omega_m, ob = cosmo_.omega_b, h = cosmo_.h;
      const double theta = 2.728 / 2.7;  // CMB temperature ratio
      const double om_h2 = om * h * h;
      const double s =
          44.5 * std::log(9.83 / om_h2) /
          std::sqrt(1.0 + 10.0 * std::pow(ob * h * h, 0.75));  // sound horizon
      const double alpha =
          1.0 - 0.328 * std::log(431.0 * om_h2) * (ob / om) +
          0.38 * std::log(22.3 * om_h2) * (ob / om) * (ob / om);
      const double gamma_eff =
          om * h *
          (alpha + (1.0 - alpha) / (1.0 + std::pow(0.43 * k * s * h, 4)));
      const double q = k * theta * theta / gamma_eff;
      const double l0 = std::log(2.0 * std::numbers::e + 1.8 * q);
      const double c0 = 14.2 + 731.0 / (1.0 + 62.5 * q);
      return l0 / (l0 + c0 * q * q);
    }
  }
  return 1.0;
}

double LinearPower::unnormalized(double k) const {
  const double t = transfer(k);
  return std::pow(k, cosmo_.n_s) * t * t;
}

double LinearPower::operator()(double k) const {
  if (k <= 0.0) return 0.0;
  return norm_ * unnormalized(k);
}

double LinearPower::at_redshift(double k, double z) const {
  const double d = cosmo_.growth_factor(Cosmology::a_of_z(z));
  return (*this)(k)*d * d;
}

namespace {
struct SigmaCtx {
  const LinearPower* power;
  double radius;
};
double sigma_integrand(double lnk, const void* ctx) {
  const auto& c = *static_cast<const SigmaCtx*>(ctx);
  const double k = std::exp(lnk);
  const double kr = k * c.radius;
  // Top-hat window.
  double w;
  if (kr < 1e-3) {
    w = 1.0 - kr * kr / 10.0;
  } else {
    w = 3.0 * (std::sin(kr) - kr * std::cos(kr)) / (kr * kr * kr);
  }
  // d sigma^2 / d ln k = k^3 P(k) W^2 / (2 pi^2)
  return k * k * k * (*c.power)(k)*w * w /
         (2.0 * std::numbers::pi * std::numbers::pi);
}
}  // namespace

double sigma_r(const LinearPower& power, double radius) {
  const SigmaCtx ctx{&power, radius};
  const double s2 = integrate(std::log(1e-5), std::log(1e3), sigma_integrand,
                              &ctx, 4096);
  return std::sqrt(s2);
}

std::vector<PowerBin> measure_power_spectrum(comm::Comm& world,
                                             const mesh::DistGrid& delta,
                                             double box_mpch,
                                             std::size_t bins,
                                             bool deconvolve_cic) {
  HACC_CHECK(bins >= 2);
  const auto& dims = delta.decomp().grid_dims();
  HACC_CHECK_MSG(dims[0] == dims[1] && dims[1] == dims[2],
                 "P(k) estimator expects a cubic grid");
  const std::size_t n = dims[0];
  const double kf = 2.0 * std::numbers::pi / box_mpch;  // fundamental mode
  const double k_nyq = kf * static_cast<double>(n) / 2.0;

  // Forward transform of the interior on pencils.
  fft::PencilFft3D fft =
      fft::PencilFft3D::balanced(world, dims[0], dims[1], dims[2]);
  // Move the block-distributed interior into the z-pencil layout.
  std::vector<fft::Box3D> src, dst;
  for (int r = 0; r < world.size(); ++r) {
    src.push_back(delta.decomp().box_of(r));
    const int q1 = r / fft.p2(), q2 = r % fft.p2();
    dst.push_back(fft::Box3D{fft::block_range(dims[0], fft.p1(), q1),
                             fft::block_range(dims[1], fft.p2(), q2),
                             fft::Range{0, dims[2]}});
  }
  mesh::Redistributor remap(src, dst);
  std::vector<double> interior;
  const auto& b = delta.interior();
  interior.reserve(b.volume());
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(b.x.extent());
       ++i)
    for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(b.y.extent());
         ++j)
      for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(b.z.extent());
           ++k)
        interior.push_back(delta.at(i, j, k));
  auto pencil = remap.forward(world, interior);
  std::vector<fft::Complex> spec(pencil.size());
  for (std::size_t i = 0; i < pencil.size(); ++i)
    spec[i] = fft::Complex(pencil[i], 0.0);
  fft.forward(spec);

  // Bin |delta(k)|^2 over this rank's spectral box.
  std::vector<double> psum(bins, 0.0), ksum(bins, 0.0);
  std::vector<long long> counts(bins, 0);
  const fft::Box3D sb = fft.spectral_box();
  std::size_t idx = 0;
  for (std::size_t mx = sb.x.lo; mx < sb.x.hi; ++mx) {
    const long sx = mesh::signed_mode(mx, n);
    for (std::size_t my = sb.y.lo; my < sb.y.hi; ++my) {
      const long sy = mesh::signed_mode(my, n);
      for (std::size_t mz = sb.z.lo; mz < sb.z.hi; ++mz, ++idx) {
        const long sz = mesh::signed_mode(mz, n);
        if (sx == 0 && sy == 0 && sz == 0) continue;
        const double kmag =
            kf * std::sqrt(static_cast<double>(sx * sx + sy * sy + sz * sz));
        if (kmag > k_nyq) continue;
        double p = std::norm(spec[idx]);
        if (deconvolve_cic) {
          auto w1 = [&](long m) {
            const double u = std::numbers::pi * static_cast<double>(m) /
                             static_cast<double>(n);
            return std::abs(u) < 1e-12 ? 1.0 : std::sin(u) / u;
          };
          const double w = w1(sx) * w1(sy) * w1(sz);
          const double w2 = w * w;
          p /= (w2 * w2);  // CIC window is sinc^2 per axis
        }
        const auto bin = static_cast<std::size_t>(kmag / k_nyq *
                                                  static_cast<double>(bins));
        const std::size_t bi = bin >= bins ? bins - 1 : bin;
        psum[bi] += p;
        ksum[bi] += kmag;
        ++counts[bi];
      }
    }
  }
  world.allreduce(std::span<double>(psum), comm::ReduceOp::kSum);
  world.allreduce(std::span<double>(ksum), comm::ReduceOp::kSum);
  world.allreduce(std::span<long long>(counts), comm::ReduceOp::kSum);

  // Volume normalization: P(k) = |delta_k|^2 V / N_cells^2 with the
  // unnormalized forward transform convention.
  const double ncells = static_cast<double>(n) * static_cast<double>(n) *
                        static_cast<double>(n);
  const double volume = box_mpch * box_mpch * box_mpch;
  std::vector<PowerBin> out;
  for (std::size_t i = 0; i < bins; ++i) {
    if (counts[i] == 0) continue;
    PowerBin pb;
    pb.k = ksum[i] / static_cast<double>(counts[i]);
    pb.power = psum[i] / static_cast<double>(counts[i]) * volume /
               (ncells * ncells);
    pb.modes = static_cast<std::size_t>(counts[i]);
    out.push_back(pb);
  }
  return out;
}

}  // namespace hacc::cosmology
