// Linear theory power spectra and the measured P(k) estimator.
//
// Fig. 10 of the paper shows the matter fluctuation power spectrum evolving
// from z = 5.5 to z = 0: linear at small k, strongly nonlinear at large k.
// This module provides
//   * analytic linear P(k) with BBKS or Eisenstein-Hu (no-wiggle) transfer
//     functions, sigma_8-normalized — used to seed initial conditions and as
//     the small-k reference;
//   * a distributed P(k) estimator that bins |delta(k)|^2 from the pencil
//     FFT's spectral layout (with optional CIC window deconvolution).
//
// Wavenumbers at this interface are physical (h/Mpc); box/grid conversions
// happen internally.
#pragma once

#include <cstddef>
#include <vector>

#include "comm/comm.h"
#include "cosmology/background.h"
#include "mesh/grid.h"

namespace hacc::cosmology {

enum class TransferFunction {
  kBbks,          ///< Bardeen-Bond-Kaiser-Szalay fit
  kEisensteinHu,  ///< Eisenstein & Hu (1998) zero-baryon shape fit
};

/// Linear matter power spectrum P(k) [Mpc^3/h^3] at z = 0, sigma8-normalized.
class LinearPower {
 public:
  LinearPower(const Cosmology& cosmo,
              TransferFunction tf = TransferFunction::kEisensteinHu);

  /// P(k) at z=0; k in h/Mpc.
  double operator()(double k) const;

  /// P(k) scaled to redshift z by the linear growth factor.
  double at_redshift(double k, double z) const;

  /// Transfer function T(k) (unnormalized shape, T -> 1 as k -> 0).
  double transfer(double k) const;

  const Cosmology& cosmology() const noexcept { return cosmo_; }

 private:
  double unnormalized(double k) const;

  Cosmology cosmo_;
  TransferFunction tf_;
  double norm_ = 1.0;
};

/// Top-hat sigma(R) [R in Mpc/h] from a callable P(k); used for the sigma8
/// normalization and exposed for tests.
double sigma_r(const LinearPower& power, double radius);

/// One bin of a measured spectrum.
struct PowerBin {
  double k = 0;       ///< bin-mean |k| in h/Mpc
  double power = 0;   ///< volume-normalized P(k) in (Mpc/h)^3
  std::size_t modes = 0;
};

/// Measure P(k) from a distributed density-contrast grid. Collective.
/// `box_mpch` is the box side in Mpc/h; `bins` linear-in-k bins reach the
/// grid Nyquist. If `deconvolve_cic` is set, |W_cic(k)|^2 is divided out.
std::vector<PowerBin> measure_power_spectrum(comm::Comm& world,
                                             const mesh::DistGrid& delta,
                                             double box_mpch,
                                             std::size_t bins = 32,
                                             bool deconvolve_cic = true);

}  // namespace hacc::cosmology
