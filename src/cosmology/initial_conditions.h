// Zel'dovich initial conditions from a Gaussian random field.
//
// "Under the Jeans instability, initial perturbations given by a smooth
// Gaussian random field evolve into a 'cosmic web'..." (paper Sec. I). The
// generator is decomposition-independent: the white-noise field is keyed by
// *global* cell index with the counter-based RNG, so any rank layout
// produces the identical realization.
//
// Pipeline: white noise n(x) -> FFT -> delta(k) = n(k) sqrt(P(k) N/V) ->
// displacement psi(k) = i k delta(k)/k^2 -> 3 inverse FFTs -> particles on a
// lattice displaced by D(a_i) psi with Zel'dovich momenta
// p = a^2 E(a) f(a) D(a) psi (code units; see cosmology/background.h).
#pragma once

#include <cstdint>

#include "comm/comm.h"
#include "cosmology/power_spectrum.h"
#include "mesh/grid.h"
#include "tree/particles.h"

namespace hacc::cosmology {

struct IcConfig {
  std::size_t particles_per_dim = 32;  ///< lattice of np^3 particles
  double box_mpch = 64.0;              ///< box side [Mpc/h]
  double z_init = 50.0;                ///< starting redshift
  std::uint64_t seed = 2012;           ///< realization seed
  TransferFunction transfer = TransferFunction::kEisensteinHu;
};

/// Generate this rank's particles (those whose *lattice site* lies in the
/// rank's domain). Positions in grid units of `decomp`, momenta in code
/// units, mass 1 per particle, ids = global lattice index. Collective.
void generate_zeldovich(comm::Comm& world, const mesh::BlockDecomp3D& decomp,
                        const Cosmology& cosmo, const IcConfig& config,
                        tree::ParticleArray& out);

/// The displacement fields themselves (grid units), block layout with the
/// given ghost width, for tests and custom particle loadings. psi[axis]
/// must be shaped on `decomp` already. Collective.
void generate_displacement_fields(comm::Comm& world,
                                  const mesh::BlockDecomp3D& decomp,
                                  const Cosmology& cosmo,
                                  const IcConfig& config,
                                  std::array<mesh::DistGrid, 3>& psi);

}  // namespace hacc::cosmology
