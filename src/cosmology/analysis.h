// Science analysis tools (paper Sec. V).
//
// The paper's science section leans on three statistics beyond P(k):
// cluster halo profiles (Ref. [4], "a high-statistics study of galaxy
// cluster halo profiles"), the halo mass function ("a powerful cosmological
// probe ... precision predictions"), and correlation functions ("galaxy
// correlation functions and the associated power spectra"). This module
// provides all three:
//   * radial halo density profiles (periodic, mass-weighted shells);
//   * the two-point correlation function xi(r), measured exactly from the
//     gridded density via FFT (xi is the Fourier transform of P(k));
//   * the Press-Schechter analytic mass function as the reference the
//     measured FOF mass function is compared against.
#pragma once

#include <vector>

#include "comm/comm.h"
#include "cosmology/halo_finder.h"
#include "cosmology/power_spectrum.h"
#include "mesh/grid.h"
#include "tree/particles.h"

namespace hacc::cosmology {

struct ProfileBin {
  double r = 0;        ///< shell-center radius (grid units)
  double density = 0;  ///< mass / shell volume
  std::size_t count = 0;
};

/// Spherically averaged density profile of one halo about its center
/// (periodic distances). `rmax` in grid units; bins are linear in r.
std::vector<ProfileBin> halo_profile(const tree::ParticleArray& particles,
                                     const Halo& halo, double box,
                                     double rmax, std::size_t bins = 16);

struct CorrelationBin {
  double r = 0;   ///< separation (Mpc/h)
  double xi = 0;  ///< two-point correlation
  std::size_t cells = 0;
};

/// Two-point correlation function from a distributed density-contrast grid:
/// xi(x) = IFFT(|delta_k|^2) / N^2, binned radially. Collective.
std::vector<CorrelationBin> measure_correlation_function(
    comm::Comm& world, const mesh::DistGrid& delta, double box_mpch,
    std::size_t bins = 24);

/// Press-Schechter mass function dn/dlnM [(Mpc/h)^-3] at redshift z for
/// halo mass M [Msun/h].
double press_schechter_dndlnm(const LinearPower& power, double z, double m);

/// sigma(M): RMS linear fluctuation in a top-hat enclosing mean mass M.
double sigma_of_mass(const LinearPower& power, double m);

}  // namespace hacc::cosmology
