#include "cosmology/background.h"

#include <cmath>

#include "util/error.h"

namespace hacc::cosmology {

double Cosmology::efunc(double a) const noexcept {
  // Constant-w dark energy: rho_de(a) = rho_de,0 a^{-3(1+w)}.
  const double de = omega_l * std::pow(a, -3.0 * (1.0 + w));
  return std::sqrt(omega_m / (a * a * a) + omega_k() / (a * a) + de);
}

double integrate(double lo, double hi, double (*f)(double, const void*),
                 const void* ctx, std::size_t panels) {
  HACC_CHECK(hi >= lo);
  if (hi == lo) return 0.0;
  // Composite Simpson over `panels` panels (panels forced even).
  if (panels % 2 == 1) ++panels;
  const double h = (hi - lo) / static_cast<double>(panels);
  double sum = f(lo, ctx) + f(hi, ctx);
  for (std::size_t i = 1; i < panels; ++i) {
    const double x = lo + h * static_cast<double>(i);
    sum += f(x, ctx) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

namespace {
double kick_integrand(double a, const void* ctx) {
  const auto& c = *static_cast<const Cosmology*>(ctx);
  return 1.0 / (a * a * c.efunc(a));
}
double drift_integrand(double a, const void* ctx) {
  const auto& c = *static_cast<const Cosmology*>(ctx);
  return 1.0 / (a * a * a * c.efunc(a));
}
double tau_integrand(double a, const void* ctx) {
  const auto& c = *static_cast<const Cosmology*>(ctx);
  return 1.0 / (a * c.efunc(a));
}
/// Unnormalized D+(a): direct RK4 integration of the linear growth ODE in
/// x = ln a,
///   D'' + (2 + dlnE/dlnx) D' = (3/2) Omega_m a^{-3} E^{-2} D,
/// started deep in matter domination (D = a, D' = a). Valid for any
/// smooth dark energy (the closed-form D ~ E int da/(aE)^3 is exact only
/// for w = -1, so general-w models need the ODE).
double growth_unnormalized(const Cosmology& c, double a) {
  const double x0 = std::log(1e-4);
  const double x1 = std::log(a);
  const int steps = 4000;
  const double h = (x1 - x0) / steps;
  auto dlne = [&](double x) {
    const double eps = 1e-5;
    return (std::log(c.efunc(std::exp(x + eps))) -
            std::log(c.efunc(std::exp(x - eps)))) /
           (2.0 * eps);
  };
  auto rhs = [&](double x, double d, double dp) {
    const double aa = std::exp(x);
    const double e = c.efunc(aa);
    const double src = 1.5 * c.omega_m / (aa * aa * aa * e * e) * d;
    return src - (2.0 + dlne(x)) * dp;
  };
  double x = x0;
  double d = std::exp(x0);   // D ~ a in matter domination
  double dp = std::exp(x0);  // dD/dlna ~ a
  for (int i = 0; i < steps; ++i) {
    const double k1d = dp, k1p = rhs(x, d, dp);
    const double k2d = dp + 0.5 * h * k1p,
                 k2p = rhs(x + 0.5 * h, d + 0.5 * h * k1d, dp + 0.5 * h * k1p);
    const double k3d = dp + 0.5 * h * k2p,
                 k3p = rhs(x + 0.5 * h, d + 0.5 * h * k2d, dp + 0.5 * h * k2p);
    const double k4d = dp + h * k3p,
                 k4p = rhs(x + h, d + h * k3d, dp + h * k3p);
    d += h / 6.0 * (k1d + 2 * k2d + 2 * k3d + k4d);
    dp += h / 6.0 * (k1p + 2 * k2p + 2 * k3p + k4p);
    x += h;
  }
  return d;
}
}  // namespace

double Cosmology::kick_factor(double a0, double a1) const {
  return integrate(a0, a1, kick_integrand, this);
}

double Cosmology::drift_factor(double a0, double a1) const {
  return integrate(a0, a1, drift_integrand, this);
}

double Cosmology::tau_of(double a0, double a1) const {
  return integrate(a0, a1, tau_integrand, this);
}

double Cosmology::growth_factor(double a) const {
  HACC_CHECK_MSG(a > 0.0 && a <= 1.5, "growth_factor: a out of range");
  return growth_unnormalized(*this, a) / growth_unnormalized(*this, 1.0);
}

double Cosmology::growth_rate(double a) const {
  const double eps = 1e-4 * a;
  const double dp = growth_unnormalized(*this, a + eps);
  const double dm = growth_unnormalized(*this, a - eps);
  const double d = growth_unnormalized(*this, a);
  return a * (dp - dm) / (2.0 * eps * d);
}

}  // namespace hacc::cosmology
