#include "tree/multi_tree.h"

#include <algorithm>
#include <limits>

#include "obs/costmap.h"
#include "obs/obs.h"
#include "tree/interaction_batch.h"
#include "util/telemetry.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace hacc::tree {

namespace {

const NameId kTrcBuild = intern_name("tree-build");
const NameId kTrcKernel = intern_name("sr-kernel");

struct Block {
  std::uint32_t first, count;
};

}  // namespace

MultiTree::MultiTree(ParticleArray& particles, MultiTreeConfig config)
    : particles_(&particles) {
  obs::TraceScope trace(kTrcBuild);
  HACC_CHECK(config.splits >= 0 && config.splits <= 8);
  const auto n = static_cast<std::uint32_t>(particles.size());

  // Recursively bisect the particle set spatially (midpoint of the longest
  // bounding-box side; midpoint rather than center-of-mass keeps the block
  // *volumes* comparable, which is what the per-tree walks care about).
  std::vector<Block> blocks{{0, n}};
  std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps;
  for (int s = 0; s < config.splits; ++s) {
    std::vector<Block> next;
    next.reserve(blocks.size() * 2);
    for (const Block& b : blocks) {
      if (b.count < 2) {
        next.push_back(b);
        continue;
      }
      // Bounding box of this block.
      std::array<float, 3> lo{std::numeric_limits<float>::max(),
                              std::numeric_limits<float>::max(),
                              std::numeric_limits<float>::max()};
      std::array<float, 3> hi{std::numeric_limits<float>::lowest(),
                              std::numeric_limits<float>::lowest(),
                              std::numeric_limits<float>::lowest()};
      for (std::uint32_t i = b.first; i < b.first + b.count; ++i) {
        lo[0] = std::min(lo[0], particles.x[i]);
        hi[0] = std::max(hi[0], particles.x[i]);
        lo[1] = std::min(lo[1], particles.y[i]);
        hi[1] = std::max(hi[1], particles.y[i]);
        lo[2] = std::min(lo[2], particles.z[i]);
        hi[2] = std::max(hi[2], particles.z[i]);
      }
      int dim = 0;
      for (int d = 1; d < 3; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        if (hi[sd] - lo[sd] > hi[static_cast<std::size_t>(dim)] -
                                  lo[static_cast<std::size_t>(dim)])
          dim = d;
      }
      const float split = 0.5f * (lo[static_cast<std::size_t>(dim)] +
                                  hi[static_cast<std::size_t>(dim)]);
      const std::uint32_t below = three_phase_partition(
          particles, b.first, b.count, dim, split, swaps);
      if (below == 0 || below == b.count) {
        next.push_back(b);  // degenerate (coincident particles)
        continue;
      }
      next.push_back(Block{b.first, below});
      next.push_back(Block{b.first + below, b.count - below});
    }
    blocks = std::move(next);
  }

  // Independent per-block builds — this is the loop the BG/Q would thread.
  trees_.reserve(blocks.size());
  for (const Block& b : blocks) trees_.emplace_back(particles, b.first, b.count, config.rcb);
}

double MultiTree::build_imbalance() const noexcept {
  if (trees_.empty()) return 1.0;
  std::size_t largest = 0, total = 0;
  for (const auto& t : trees_) {
    const std::size_t c =
        t.nodes().empty() ? 0 : t.nodes().front().count;
    largest = std::max(largest, c);
    total += c;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(trees_.size());
  return mean > 0 ? static_cast<double>(largest) / mean : 1.0;
}

void MultiTree::gather_neighbors(std::size_t t, std::uint32_t leaf_node,
                                 float rcut, NeighborList& out,
                                 std::size_t* visits) const {
  out.clear();
  const RcbNode& leaf = trees_[t].nodes()[leaf_node];
  for (const auto& tree : trees_) {
    if (tree.nodes().empty()) continue;
    // Prune whole foreign trees by root-box distance.
    if (RcbTree::box_distance2(tree.nodes().front(), leaf.lo, leaf.hi) >
        rcut * rcut)
      continue;
    tree.gather_neighbors_into(leaf.lo, leaf.hi, rcut, out, visits,
                               /*append=*/true);
  }
}

InteractionStats compute_short_range_multi(const MultiTree& forest,
                                           const ShortRangeKernel& kernel,
                                           std::span<float> ax,
                                           std::span<float> ay,
                                           std::span<float> az,
                                           float mass_scale,
                                           KernelVariant variant,
                                           ShortRangeWorkspace* ws) {
  obs::TraceScope trace(kTrcKernel);
  const ParticleArray& p = forest.particles();
  HACC_CHECK(ax.size() == p.size() && ay.size() == p.size() &&
             az.size() == p.size());
  ShortRangeWorkspace local;
  ShortRangeWorkspace& wsp = ws != nullptr ? *ws : local;
  // Flatten (tree, leaf) pairs for one dynamic OpenMP loop; the vector is
  // reused (capacity kept) across steps when a workspace is passed.
  wsp.work.clear();
  for (std::size_t t = 0; t < forest.trees().size(); ++t)
    for (auto leaf : forest.trees()[t].leaves()) wsp.work.emplace_back(t, leaf);
#ifdef _OPENMP
  wsp.prepare_lists(static_cast<std::size_t>(omp_get_max_threads()));
#else
  wsp.prepare_lists(1);
#endif
  const auto& work = wsp.work;

  InteractionStats stats;
  stats.particles = p.size();
  stats.leaves = work.size();
  // Captured on the rank thread: OpenMP workers don't inherit the binding.
  obs::CostMap* cost = obs::cost_map();

  std::size_t interactions = 0, visits = 0;
#pragma omp parallel reduction(+ : interactions, visits)
  {
#ifdef _OPENMP
    NeighborList& list =
        wsp.lists[static_cast<std::size_t>(omp_get_thread_num())];
#else
    NeighborList& list = wsp.lists[0];
#endif
#pragma omp for schedule(dynamic, 1)
    for (std::size_t w = 0; w < work.size(); ++w) {
      const auto [t, leaf_id] = work[w];
      const RcbNode& leaf = forest.trees()[t].nodes()[leaf_id];
      forest.gather_neighbors(t, leaf_id, kernel.rmax, list, &visits);
      // True gathered count, before the batched path pads the list.
      const std::size_t true_n = list.size();
      const std::uint64_t t0 = cost != nullptr ? util::now_ns() : 0;
      evaluate_leaf(variant, kernel, p, leaf.first, leaf.count, list,
                    mass_scale, ax, ay, az);
      const std::size_t pp = static_cast<std::size_t>(leaf.count) * true_n;
      if (cost != nullptr)
        cost->record(obs::LeafCost{leaf.lo, leaf.hi, leaf.count, pp,
                                   util::now_ns() - t0});
      interactions += pp;
    }
  }
  wsp.record_high_water();
  stats.interactions = interactions;
  stats.walk_visits = visits;
  return stats;
}

}  // namespace hacc::tree
