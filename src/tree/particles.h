// Structure-of-arrays particle storage.
//
// "The particle data is stored as a collection of arrays — the so-called
// structure-of-arrays (SOA) format. There are three arrays for the three
// spatial coordinates, three for the velocity components, in addition to
// arrays for mass, a particle identifier, etc." (paper Sec. III)
//
// Positions are single precision in grid units (HACC's mixed-precision
// scheme: particles and short-range forces in float, spectral math in
// double). The `tag` byte carries the overloading role (active/passive,
// paper Fig. 4).
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "util/aligned.h"
#include "util/error.h"

namespace hacc::tree {

/// Overloading role of a particle on this rank.
enum class Role : std::uint8_t {
  kActive = 0,   ///< inside the rank's domain; deposited in the Poisson solve
  kPassive = 1,  ///< boundary-region replica; moved but not deposited
};

class ParticleArray {
 public:
  std::size_t size() const noexcept { return x.size(); }
  bool empty() const noexcept { return x.empty(); }

  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    z.reserve(n);
    vx.reserve(n);
    vy.reserve(n);
    vz.reserve(n);
    mass.reserve(n);
    id.reserve(n);
    role.reserve(n);
  }

  void clear() {
    x.clear();
    y.clear();
    z.clear();
    vx.clear();
    vy.clear();
    vz.clear();
    mass.clear();
    id.clear();
    role.clear();
  }

  void push_back(float px, float py, float pz, float pvx, float pvy,
                 float pvz, float pmass, std::uint64_t pid,
                 Role prole = Role::kActive) {
    x.push_back(px);
    y.push_back(py);
    z.push_back(pz);
    vx.push_back(pvx);
    vy.push_back(pvy);
    vz.push_back(pvz);
    mass.push_back(pmass);
    id.push_back(pid);
    role.push_back(prole);
  }

  /// Copy particle j of `src` onto the end of this array.
  void append_from(const ParticleArray& src, std::size_t j) {
    push_back(src.x[j], src.y[j], src.z[j], src.vx[j], src.vy[j], src.vz[j],
              src.mass[j], src.id[j], src.role[j]);
  }

  /// Swap particles i and j across every array.
  void swap_particles(std::size_t i, std::size_t j) {
    std::swap(x[i], x[j]);
    std::swap(y[i], y[j]);
    std::swap(z[i], z[j]);
    std::swap(vx[i], vx[j]);
    std::swap(vy[i], vy[j]);
    std::swap(vz[i], vz[j]);
    std::swap(mass[i], mass[j]);
    std::swap(id[i], id[j]);
    std::swap(role[i], role[j]);
  }

  /// Remove particle i by moving the last particle into its slot.
  void remove_unordered(std::size_t i) {
    HACC_ASSERT(i < size());
    const std::size_t last = size() - 1;
    if (i != last) swap_particles(i, last);
    x.pop_back();
    y.pop_back();
    z.pop_back();
    vx.pop_back();
    vy.pop_back();
    vz.pop_back();
    mass.pop_back();
    id.pop_back();
    role.pop_back();
  }

  /// Sort particles by ascending (id, role, x, y, z). Establishes a
  /// *canonical order* independent of arrival/removal history, which makes
  /// float summation order — and therefore the whole run — reproducible
  /// across restarts (remove_unordered and message arrival otherwise
  /// permute the array). Ids are unique among actives; the same id can
  /// carry several passive replicas on one rank (one per periodic image of
  /// a small topology), whose unwrapped positions differ by exact box-size
  /// shifts — the position tie-break makes the order total even then.
  void sort_by_id() {
    std::vector<std::size_t> order(size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (id[a] != id[b]) return id[a] < id[b];
      if (role[a] != role[b])
        return static_cast<std::uint8_t>(role[a]) <
               static_cast<std::uint8_t>(role[b]);
      if (x[a] != x[b]) return x[a] < x[b];
      if (y[a] != y[b]) return y[a] < y[b];
      return z[a] < z[b];
    });
    gather(x, order);
    gather(y, order);
    gather(z, order);
    gather(vx, order);
    gather(vy, order);
    gather(vz, order);
    gather(mass, order);
    gather(id, order);
    gather(role, order);
  }

  /// Consistency check: every array has the same length.
  bool consistent() const noexcept {
    const std::size_t n = x.size();
    return y.size() == n && z.size() == n && vx.size() == n &&
           vy.size() == n && vz.size() == n && mass.size() == n &&
           id.size() == n && role.size() == n;
  }

  aligned_vector<float> x, y, z;
  aligned_vector<float> vx, vy, vz;
  aligned_vector<float> mass;
  aligned_vector<std::uint64_t> id;
  aligned_vector<Role> role;

 private:
  template <typename T>
  static void gather(aligned_vector<T>& v,
                     const std::vector<std::size_t>& order) {
    aligned_vector<T> out;
    out.reserve(v.size());
    for (const std::size_t i : order) out.push_back(v[i]);
    v = std::move(out);
  }
};

}  // namespace hacc::tree
