// Tile-batched short-range kernel (paper Sec. III, the QPX inner loop).
//
// evaluate_neighbor_list() is scalar-shaped: one target per pass, so the
// whole neighbor list is re-streamed from cache for every particle of a fat
// leaf. The BG/Q kernel instead blocks *targets* into small SoA tiles and
// evaluates one neighbor tile against every target in the block before
// moving on — each TILE_N-wide neighbor tile is loaded from L1 once and
// reused TILE_T times, cutting the inner-loop load traffic by the tile
// height while keeping the exact same interaction set.
//
// Layout of one interaction tile (fixed TILE_T x TILE_N):
//
//        neighbors j ->   [ x y z m | x y z m | ... ]   TILE_N = 8
//   targets i  t0  ---->  two 4-wide vectors per pass (2-fold unroll)
//       (4)    t1  ---->  same neighbor vectors, re-used from registers
//              t2  ---->
//              t3  ---->
//
// The arithmetic per (i, j) pair is identical to the scalar loop: FMA
// Horner for poly5, (s+eps)^{-3/2} via sqrt+div, branchless cutoff by
// masking (the vector-select idiom), mass_scale folded into the neighbor
// mass. Only the float summation order differs, so batched and scalar
// forces agree to rounding (property-tested at 1e-5 relative), and the
// scalar variant remains bit-for-bit the historical kernel.
//
// Dispatch is at run time (KernelVariant, force_kernel.h): explicit
// compiler-vector-extension code where available (GCC/Clang), with the
// `omp simd` scalar loop as the portable fallback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tree/force_kernel.h"
#include "tree/particles.h"
#include "tree/rcb_tree.h"

namespace hacc::tree {

/// Targets per interaction tile (rows sharing one neighbor tile).
inline constexpr std::size_t kTileTargets = 4;
/// Neighbors per tile pass: two 4-wide vectors, the 2-fold unroll.
inline constexpr std::size_t kTileNeighbors = 8;

/// True when the explicit-vector tile path is compiled in (GNU vector
/// extensions); false means KernelVariant::kBatched falls back to the
/// scalar loop.
bool batched_kernel_available() noexcept;

/// Evaluate short-range forces of the contiguous target range
/// [first, first+count) of `p` against the shared neighbor list, writing
/// accelerations at the targets' absolute indices of ax/ay/az. Neighbor
/// masses are scaled by `mass_scale` inside the kernel. The batched path
/// may append zero-mass padding to `list` (to a kTileNeighbors multiple);
/// callers needing the true list size must capture it before the call.
void evaluate_leaf(KernelVariant variant, const ShortRangeKernel& kernel,
                   const ParticleArray& p, std::uint32_t first,
                   std::uint32_t count, NeighborList& list, float mass_scale,
                   std::span<float> ax, std::span<float> ay,
                   std::span<float> az);

/// As evaluate_leaf, for a non-contiguous target set given by `targets`
/// (absolute indices into `p` and ax/ay/az) — the chaining-mesh cells of
/// the P3M solver, which are index-sorted rather than array-partitioned.
void evaluate_leaf_indexed(KernelVariant variant,
                           const ShortRangeKernel& kernel,
                           const ParticleArray& p,
                           std::span<const std::uint32_t> targets,
                           NeighborList& list, float mass_scale,
                           std::span<float> ax, std::span<float> ay,
                           std::span<float> az);

}  // namespace hacc::tree
