// Direct O(N^2) force summation references.
//
// Used (a) as the correctness oracle for the RCB tree short-range solver —
// the tree gathers *every* particle within the hand-over radius, so the two
// must agree to float round-off — and (b) as the exact Newtonian force for
// validating PM + short-range force matching.
#pragma once

#include <span>

#include "tree/force_kernel.h"
#include "tree/particles.h"

namespace hacc::tree {

/// Direct evaluation of the short-range kernel over all pairs.
void direct_short_range(const ParticleArray& p, const ShortRangeKernel& kernel,
                        std::span<float> ax, std::span<float> ay,
                        std::span<float> az, float mass_scale = 1.0f);

/// Direct softened Newtonian forces: a_i = sum_j m_j (x_j-x_i)/(s+eps)^{3/2}
/// (open boundaries; masses pre-scaled by mass_scale).
void direct_newtonian(const ParticleArray& p, float softening,
                      std::span<float> ax, std::span<float> ay,
                      std::span<float> az, float mass_scale = 1.0f);

}  // namespace hacc::tree
