#include "tree/force_kernel.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace hacc::tree {

float ShortRangeKernel::fsr(float s) const noexcept {
  if (s <= 0.0f || s >= rmax2()) return 0.0f;
  return newtonian_fscalar(s, softening) - fgrid(s);
}

float newtonian_fscalar(float s, float softening) noexcept {
  const float t = s + softening;
  return 1.0f / (t * std::sqrt(t));
}

KernelVariant parse_kernel_variant(const char* name,
                                   KernelVariant fallback) noexcept {
  if (name == nullptr) return fallback;
  if (std::strcmp(name, "scalar") == 0) return KernelVariant::kScalar;
  if (std::strcmp(name, "batched") == 0) return KernelVariant::kBatched;
  return fallback;
}

KernelVariant kernel_variant_from_env(KernelVariant fallback) noexcept {
  return parse_kernel_variant(std::getenv("HACC_KERNEL"), fallback);
}

KernelVariant default_kernel_variant() noexcept {
  return kernel_variant_from_env(KernelVariant::kBatched);
}

const char* kernel_variant_name(KernelVariant v) noexcept {
  return v == KernelVariant::kScalar ? "scalar" : "batched";
}

Force3 evaluate_neighbor_list(const ShortRangeKernel& kernel, float xi,
                              float yi, float zi, const float* xn,
                              const float* yn, const float* zn,
                              const float* mn, std::size_t n,
                              float mass_scale) noexcept {
  const float eps = kernel.softening;
  const float rmax2 = kernel.rmax2();
  const float c0 = kernel.fgrid.c[0], c1 = kernel.fgrid.c[1],
              c2 = kernel.fgrid.c[2], c3 = kernel.fgrid.c[3],
              c4 = kernel.fgrid.c[4], c5 = kernel.fgrid.c[5];
  float ax = 0.0f, ay = 0.0f, az = 0.0f;
  // The loop body is straight-line FMA-shaped code with branchless cutoff
  // filtering (the two comparisons lower to vector selects), so the
  // compiler can vectorize it; neighbor data is contiguous and aligned.
#pragma omp simd reduction(+ : ax, ay, az)
  for (std::size_t j = 0; j < n; ++j) {
    const float dx = xn[j] - xi;
    const float dy = yn[j] - yi;
    const float dz = zn[j] - zi;
    const float s = dx * dx + dy * dy + dz * dz;
    const float t = s + eps;
    const float inv = 1.0f / std::sqrt(t);
    const float newton = inv * inv * inv;  // (s+eps)^(-3/2)
    float poly = c5;
    poly = poly * s + c4;
    poly = poly * s + c3;
    poly = poly * s + c2;
    poly = poly * s + c1;
    poly = poly * s + c0;
    // Branchless filter: zero outside (0, rmax^2). "it is advantageous to
    // include it into the force evaluation in a form where ternary
    // operators can be combined" (paper Sec. III).
    const float f0 = newton - poly;
    const float f1 = (s < rmax2) ? f0 : 0.0f;
    const float f = (s > 0.0f) ? f1 : 0.0f;
    // mass_scale folds in here — (m * scale) * f associates exactly like
    // the historical separate "list.m *= scale" pass, so results are
    // bit-identical to it (and to unscaled lists when scale == 1).
    const float w = (mn[j] * mass_scale) * f;
    ax += w * dx;
    ay += w * dy;
    az += w * dz;
  }
  return Force3{ax, ay, az};
}

}  // namespace hacc::tree
