// Recursive coordinate bisection (RCB) tree (paper Sec. III).
//
// The two design principles from the paper:
//
//  Spatial locality — the tree is built by recursively splitting particles
//  in two at the center of mass along the longest side of the node's box,
//  *physically partitioning* the SoA arrays so that each node's particles
//  occupy a contiguous index range. Forces are then computed one leaf at a
//  time; all data touched is nearby in memory.
//
//  Walk minimization — leaves are "fat" (tens to hundreds of particles).
//  Every particle in a leaf shares one interaction list, so the relatively
//  slow pointer-chasing walk happens once per leaf while the highly tuned
//  vector kernel does the O(N_d^2) work.
//
// The partition step is the paper's three-phase scheme: phase 1 scans the
// split coordinate and records the swaps; phase 2 applies them to the six
// position/velocity arrays; phase 3 to the remaining arrays. Separating the
// phases turns the data movement into streaming passes that prefetch well
// and avoid read-after-write hazards.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tree/force_kernel.h"
#include "tree/particles.h"

namespace hacc::tree {

struct RcbNode {
  std::array<float, 3> lo{};  ///< tight bounding box
  std::array<float, 3> hi{};
  std::uint32_t first = 0;  ///< index range [first, first+count) in the SoA
  std::uint32_t count = 0;
  std::int32_t left = -1;  ///< child node ids; -1 marks a leaf
  std::int32_t right = -1;
  bool is_leaf() const noexcept { return left < 0; }
};

struct RcbConfig {
  /// Target particles per leaf ("fat leaves": ~200 on BG/Q, up to 1e5 in
  /// the no-tree CPU/GPU limit).
  std::size_t leaf_size = 128;
};

/// Contiguous, aligned neighbor buffers shared by all particles of a leaf.
struct NeighborList {
  aligned_vector<float> x, y, z, m;
  void clear() noexcept {
    x.clear();
    y.clear();
    z.clear();
    m.clear();
  }
  std::size_t size() const noexcept { return x.size(); }
};

/// Statistics accumulated during a force evaluation.
struct InteractionStats {
  std::size_t leaves = 0;
  std::size_t particles = 0;
  std::size_t interactions = 0;  ///< particle-neighbor pairs fed to the kernel
  std::size_t walk_visits = 0;   ///< tree nodes touched by all walks
  double mean_neighbors() const noexcept {
    return particles ? static_cast<double>(interactions) /
                           static_cast<double>(particles)
                     : 0.0;
  }
};

class RcbTree {
 public:
  /// Build over the particles, permuting the SoA in place.
  explicit RcbTree(ParticleArray& particles, RcbConfig config = {});

  /// Build over the index sub-range [first, first+count) only (the rest of
  /// the SoA is untouched). Node indices stay absolute, so several trees
  /// can share one particle array — the paper's planned "multiple trees at
  /// each rank" load-balancing improvement (Sec. VI); see MultiTree.
  RcbTree(ParticleArray& particles, std::uint32_t first, std::uint32_t count,
          RcbConfig config);

  const std::vector<RcbNode>& nodes() const noexcept { return nodes_; }
  const std::vector<std::uint32_t>& leaves() const noexcept { return leaves_; }
  const ParticleArray& particles() const noexcept { return *particles_; }
  std::size_t depth() const noexcept { return depth_; }

  /// Gather every particle within `rcut` of the leaf's bounding box
  /// (including the leaf's own) into `out`. `visits` (optional) counts
  /// nodes touched. This is the walk the fat-leaf design minimizes.
  void gather_neighbors(std::uint32_t leaf_node, float rcut,
                        NeighborList& out,
                        std::size_t* visits = nullptr) const;

  /// Gather every particle within `rcut` of the box [lo, hi] into `out`
  /// (appending when `append` is set). Lets MultiTree search foreign trees
  /// for a leaf that lives in another tree.
  void gather_neighbors_into(const std::array<float, 3>& lo,
                             const std::array<float, 3>& hi, float rcut,
                             NeighborList& out, std::size_t* visits = nullptr,
                             bool append = false) const;

  /// Squared distance between a point and a node's box (0 inside).
  static float box_distance2(const RcbNode& node,
                             const std::array<float, 3>& lo,
                             const std::array<float, 3>& hi) noexcept;

 private:
  void build(RcbConfig config, std::uint32_t first, std::uint32_t count);

  ParticleArray* particles_;
  std::vector<RcbNode> nodes_;
  std::vector<std::uint32_t> leaves_;
  std::size_t depth_ = 0;
};

/// The paper's three-phase partition of [first, first+count) about `split`
/// along `dim` (phase 1 records swaps scanning the split coordinate, phase
/// 2 applies them to the six position/velocity arrays, phase 3 to the
/// rest). Returns the size of the "below" side. `swaps` is caller-provided
/// scratch.
std::uint32_t three_phase_partition(
    ParticleArray& particles, std::uint32_t first, std::uint32_t count,
    int dim, float split,
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& swaps);

/// Short-range forces for every local particle: walk once per leaf, then
/// run the vector kernel for each particle against the shared list.
/// `ax/ay/az` are indexed like the (tree-permuted) particle array and are
/// *overwritten*. Threaded over leaves with OpenMP. Neighbor masses are
/// scaled by `mass_scale` (the 1/(4 pi rho_bar) code-unit normalization).
InteractionStats compute_short_range(const RcbTree& tree,
                                     const ShortRangeKernel& kernel,
                                     std::span<float> ax, std::span<float> ay,
                                     std::span<float> az,
                                     float mass_scale = 1.0f);

}  // namespace hacc::tree
