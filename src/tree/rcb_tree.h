// Recursive coordinate bisection (RCB) tree (paper Sec. III).
//
// The two design principles from the paper:
//
//  Spatial locality — the tree is built by recursively splitting particles
//  in two at the center of mass along the longest side of the node's box,
//  *physically partitioning* the SoA arrays so that each node's particles
//  occupy a contiguous index range. Forces are then computed one leaf at a
//  time; all data touched is nearby in memory.
//
//  Walk minimization — leaves are "fat" (tens to hundreds of particles).
//  Every particle in a leaf shares one interaction list, so the relatively
//  slow pointer-chasing walk happens once per leaf while the highly tuned
//  vector kernel does the O(N_d^2) work.
//
// The partition step is the paper's three-phase scheme: phase 1 scans the
// split coordinate and records the swaps; phase 2 applies them to the six
// position/velocity arrays; phase 3 to the remaining arrays. Separating the
// phases turns the data movement into streaming passes that prefetch well
// and avoid read-after-write hazards.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "tree/force_kernel.h"
#include "tree/particles.h"

namespace hacc::tree {

struct RcbNode {
  std::array<float, 3> lo{};  ///< tight bounding box
  std::array<float, 3> hi{};
  std::uint32_t first = 0;  ///< index range [first, first+count) in the SoA
  std::uint32_t count = 0;
  std::int32_t left = -1;  ///< child node ids; -1 marks a leaf
  std::int32_t right = -1;
  bool is_leaf() const noexcept { return left < 0; }
};

struct RcbConfig {
  /// Target particles per leaf ("fat leaves": ~200 on BG/Q, up to 1e5 in
  /// the no-tree CPU/GPU limit).
  std::size_t leaf_size = 128;
};

/// Contiguous, aligned neighbor buffers shared by all particles of a leaf.
/// Doubles as the per-thread walk scratch: the traversal stack lives here
/// so a steady-state gather allocates nothing (capacities persist).
struct NeighborList {
  aligned_vector<float> x, y, z, m;
  std::vector<std::int32_t> walk_stack;  ///< tree-walk scratch, reused
  void clear() noexcept {
    x.clear();
    y.clear();
    z.clear();
    m.clear();
  }
  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    z.reserve(n);
    m.reserve(n);
  }
  std::size_t size() const noexcept { return x.size(); }
  std::size_t capacity() const noexcept { return x.capacity(); }
};

/// Statistics accumulated during a force evaluation.
struct InteractionStats {
  std::size_t leaves = 0;
  std::size_t particles = 0;
  std::size_t interactions = 0;  ///< particle-neighbor pairs fed to the kernel
  std::size_t walk_visits = 0;   ///< tree nodes touched by all walks
  double mean_neighbors() const noexcept {
    return particles ? static_cast<double>(interactions) /
                           static_cast<double>(particles)
                     : 0.0;
  }
};

/// Reusable scratch for the short-range kernel phase. A caller that keeps
/// one of these across steps makes the phase allocation-free in steady
/// state: the flattened (tree, leaf) work vector and the per-thread
/// neighbor lists retain their high-water capacity. Every per-thread list
/// is re-reserved to the *global* high-water mark `list_reserve` before
/// each evaluation, so OpenMP dynamic scheduling handing a fat leaf to a
/// different thread than last step cannot trigger a regrow.
struct ShortRangeWorkspace {
  std::vector<std::pair<std::size_t, std::uint32_t>> work;
  std::vector<NeighborList> lists;  ///< one per OpenMP thread
  std::size_t list_reserve = 0;     ///< high-water neighbor-list capacity

  /// Grow to `nthreads` lists and pre-reserve each to the high-water mark.
  void prepare_lists(std::size_t nthreads) {
    if (lists.size() < nthreads) lists.resize(nthreads);
    for (auto& l : lists) l.reserve(list_reserve);
  }
  /// Fold this evaluation's capacities into the high-water mark.
  void record_high_water() noexcept {
    for (const auto& l : lists)
      if (l.capacity() > list_reserve) list_reserve = l.capacity();
  }
};

class RcbTree {
 public:
  /// Build over the particles, permuting the SoA in place.
  explicit RcbTree(ParticleArray& particles, RcbConfig config = {});

  /// Build over the index sub-range [first, first+count) only (the rest of
  /// the SoA is untouched). Node indices stay absolute, so several trees
  /// can share one particle array — the paper's planned "multiple trees at
  /// each rank" load-balancing improvement (Sec. VI); see MultiTree.
  RcbTree(ParticleArray& particles, std::uint32_t first, std::uint32_t count,
          RcbConfig config);

  const std::vector<RcbNode>& nodes() const noexcept { return nodes_; }
  const std::vector<std::uint32_t>& leaves() const noexcept { return leaves_; }
  const ParticleArray& particles() const noexcept { return *particles_; }
  std::size_t depth() const noexcept { return depth_; }

  /// Gather every particle within `rcut` of the leaf's bounding box
  /// (including the leaf's own) into `out`. `visits` (optional) counts
  /// nodes touched. This is the walk the fat-leaf design minimizes.
  void gather_neighbors(std::uint32_t leaf_node, float rcut,
                        NeighborList& out,
                        std::size_t* visits = nullptr) const;

  /// Gather every particle within `rcut` of the box [lo, hi] into `out`
  /// (appending when `append` is set). Lets MultiTree search foreign trees
  /// for a leaf that lives in another tree.
  void gather_neighbors_into(const std::array<float, 3>& lo,
                             const std::array<float, 3>& hi, float rcut,
                             NeighborList& out, std::size_t* visits = nullptr,
                             bool append = false) const;

  /// Squared distance between a point and a node's box (0 inside).
  static float box_distance2(const RcbNode& node,
                             const std::array<float, 3>& lo,
                             const std::array<float, 3>& hi) noexcept;

 private:
  void build(RcbConfig config, std::uint32_t first, std::uint32_t count);

  ParticleArray* particles_;
  std::vector<RcbNode> nodes_;
  std::vector<std::uint32_t> leaves_;
  std::size_t depth_ = 0;
};

/// The paper's three-phase partition of [first, first+count) about `split`
/// along `dim` (phase 1 records swaps scanning the split coordinate, phase
/// 2 applies them to the six position/velocity arrays, phase 3 to the
/// rest). Returns the size of the "below" side. `swaps` is caller-provided
/// scratch.
std::uint32_t three_phase_partition(
    ParticleArray& particles, std::uint32_t first, std::uint32_t count,
    int dim, float split,
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& swaps);

/// Short-range forces for every local particle: walk once per leaf, then
/// run the kernel for the leaf's particles against the shared list (the
/// tile-batched path of interaction_batch.h, or the scalar loop, per
/// `variant`). `ax/ay/az` are indexed like the (tree-permuted) particle
/// array and are *overwritten*. Threaded over leaves with OpenMP. Neighbor
/// masses are scaled by `mass_scale` (the 1/(4 pi rho_bar) code-unit
/// normalization), folded into the kernel evaluation. Pass a persistent
/// `ws` to make the phase allocation-free across steps.
InteractionStats compute_short_range(
    const RcbTree& tree, const ShortRangeKernel& kernel, std::span<float> ax,
    std::span<float> ay, std::span<float> az, float mass_scale = 1.0f,
    KernelVariant variant = default_kernel_variant(),
    ShortRangeWorkspace* ws = nullptr);

}  // namespace hacc::tree
