// Numerical force matching of the filtered PM grid force (paper Sec. II).
//
// "The filtered grid force was obtained numerically to high accuracy using
// randomly sampled particle pairs and then fitted to an expression with the
// correct large and small distance asymptotics. Because this functional form
// is needed only over a small, compact region, it can be simplified using a
// fifth-order polynomial expansion."
//
// The matcher deposits a single unit-mass source particle at a random
// sub-cell offset on an otherwise empty PM grid, runs the spectral Poisson
// solve, and samples the interpolated force at field points covering
// r in (0, rmax]. The radial force per unit separation vector, normalized
// to the continuum pair coupling 1/(4 pi rho_bar), is the scalar
// f_grid(s = r^2) the short-range kernel subtracts. A least-squares
// degree-5 polynomial in s over (0, rmax^2] is returned.
//
// A run of the matcher with the default SpectralConfig produced the
// coefficients shipped as `default_fgrid_poly5()` (see force_matcher.cpp for
// the exact settings), so simulations start without redoing the fit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mesh/kernels.h"
#include "tree/force_kernel.h"

namespace hacc::tree {

struct ForceMatchConfig {
  std::size_t grid = 32;       ///< PM grid used for the measurement
  std::size_t sources = 8;     ///< random source placements (sub-cell offsets)
  std::size_t samples = 48;    ///< field points per source per radius
  std::size_t radii = 40;      ///< radii spanning (0, rmax]
  float rmax = 3.0f;           ///< hand-over radius (grid units)
  std::uint64_t seed = 12345;
  mesh::SpectralConfig spectral{};
};

/// One measured sample of the filtered grid pair force.
struct ForceSample {
  double s;       ///< squared separation
  double fscalar; ///< radial force / (r * coupling); continuum limit s^-3/2
};

/// Measure f_grid by randomly sampled pairs. Self-contained: runs a private
/// single-rank machine internally, so it can be called from anywhere
/// (including from inside a rank of a larger run).
std::vector<ForceSample> measure_grid_force(const ForceMatchConfig& config);

/// Least-squares degree-5 fit in s of the measured samples.
Poly5 fit_poly5(const std::vector<ForceSample>& samples);

/// Convenience: measure + fit.
Poly5 match_grid_force(const ForceMatchConfig& config);

/// Coefficients pre-computed with the default ForceMatchConfig /
/// SpectralConfig (sigma = 0.8, ns = 3, 6th-order Green's, Super-Lanczos
/// gradient, rmax = 3).
Poly5 default_fgrid_poly5();

}  // namespace hacc::tree
