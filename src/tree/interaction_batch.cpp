#include "tree/interaction_batch.h"

#include <algorithm>
#include <cmath>
#include <cstring>

// Explicit-vector tile kernel: GNU vector extensions (GCC and Clang). On
// other compilers the batched variant degrades to the scalar loop.
#if defined(__GNUC__) || defined(__clang__)
#define HACC_HAVE_VECTOR_EXT 1
#else
#define HACC_HAVE_VECTOR_EXT 0
#endif

#if HACC_HAVE_VECTOR_EXT && defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace hacc::tree {

namespace {

/// Zero-pad the gathered list to a kTileNeighbors multiple so tile passes
/// need no remainder handling. Zero mass => zero contribution; the
/// branchless filters keep even a coincident zero pad point finite.
std::size_t pad_list(NeighborList& list) {
  const std::size_t n = list.size();
  const std::size_t n_pad =
      (n + kTileNeighbors - 1) / kTileNeighbors * kTileNeighbors;
  for (std::size_t j = n; j < n_pad; ++j) {
    list.x.push_back(0.0f);
    list.y.push_back(0.0f);
    list.z.push_back(0.0f);
    list.m.push_back(0.0f);
  }
  return n_pad;
}

#if HACC_HAVE_VECTOR_EXT

using vf4 = float __attribute__((vector_size(16)));
using vi4 = std::int32_t __attribute__((vector_size(16)));

inline vf4 vload(const float* p) noexcept {
  vf4 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline vf4 vsplat(float x) noexcept { return vf4{x, x, x, x}; }

inline vf4 vsqrt4(vf4 v) noexcept {
#if defined(__SSE2__)
  return (vf4)_mm_sqrt_ps((__m128)v);
#else
  return vf4{std::sqrt(v[0]), std::sqrt(v[1]), std::sqrt(v[2]),
             std::sqrt(v[3])};
#endif
}

/// Deterministic horizontal sum (fixed association, run-to-run stable).
inline float hsum(vf4 v) noexcept { return (v[0] + v[1]) + (v[2] + v[3]); }

/// One interaction tile: forces of kTileTargets broadcast targets against
/// the whole padded neighbor list. Each pass loads one kTileNeighbors-wide
/// neighbor tile (two 4-wide vectors, the 2-fold unroll) and applies it to
/// all four targets from registers.
void evaluate_tile(const ShortRangeKernel& kernel, float mass_scale,
                   const float* xn, const float* yn, const float* zn,
                   const float* mn, std::size_t n_pad, const float* tx,
                   const float* ty, const float* tz, float* fx, float* fy,
                   float* fz) noexcept {
  const vf4 eps = vsplat(kernel.softening);
  const vf4 rmax2 = vsplat(kernel.rmax2());
  const vf4 c0 = vsplat(kernel.fgrid.c[0]), c1 = vsplat(kernel.fgrid.c[1]),
            c2 = vsplat(kernel.fgrid.c[2]), c3 = vsplat(kernel.fgrid.c[3]),
            c4 = vsplat(kernel.fgrid.c[4]), c5 = vsplat(kernel.fgrid.c[5]);
  const vf4 ms = vsplat(mass_scale);
  const vf4 one = vsplat(1.0f);
  const vf4 zero = vsplat(0.0f);

  const vf4 xi[kTileTargets] = {vsplat(tx[0]), vsplat(tx[1]), vsplat(tx[2]),
                                vsplat(tx[3])};
  const vf4 yi[kTileTargets] = {vsplat(ty[0]), vsplat(ty[1]), vsplat(ty[2]),
                                vsplat(ty[3])};
  const vf4 zi[kTileTargets] = {vsplat(tz[0]), vsplat(tz[1]), vsplat(tz[2]),
                                vsplat(tz[3])};
  vf4 accx[kTileTargets] = {zero, zero, zero, zero};
  vf4 accy[kTileTargets] = {zero, zero, zero, zero};
  vf4 accz[kTileTargets] = {zero, zero, zero, zero};

  for (std::size_t j = 0; j < n_pad; j += kTileNeighbors) {
    // The neighbor tile: loaded once, reused by every target below.
    const vf4 nxA = vload(xn + j), nxB = vload(xn + j + 4);
    const vf4 nyA = vload(yn + j), nyB = vload(yn + j + 4);
    const vf4 nzA = vload(zn + j), nzB = vload(zn + j + 4);
    const vf4 nmA = vload(mn + j) * ms, nmB = vload(mn + j + 4) * ms;

    for (std::size_t t = 0; t < kTileTargets; ++t) {
      const vf4 dxA = nxA - xi[t], dxB = nxB - xi[t];
      const vf4 dyA = nyA - yi[t], dyB = nyB - yi[t];
      const vf4 dzA = nzA - zi[t], dzB = nzB - zi[t];
      const vf4 sA = dxA * dxA + dyA * dyA + dzA * dzA;
      const vf4 sB = dxB * dxB + dyB * dyB + dzB * dzB;
      const vf4 tA = sA + eps, tB = sB + eps;
      const vf4 invA = one / vsqrt4(tA), invB = one / vsqrt4(tB);
      const vf4 newtA = invA * invA * invA, newtB = invB * invB * invB;
      // FMA Horner, both unroll halves interleaved.
      vf4 pA = c5, pB = c5;
      pA = pA * sA + c4;
      pB = pB * sB + c4;
      pA = pA * sA + c3;
      pB = pB * sB + c3;
      pA = pA * sA + c2;
      pB = pB * sB + c2;
      pA = pA * sA + c1;
      pB = pB * sB + c1;
      pA = pA * sA + c0;
      pB = pB * sB + c0;
      // Branchless cutoff: bit-mask the lanes outside (0, rmax^2) — the
      // vector-select (QPX fsel) idiom. Masking also squashes the inf at
      // s == 0 with zero softening before it can reach the accumulator.
      const vi4 inA = (sA < rmax2) & (sA > zero);
      const vi4 inB = (sB < rmax2) & (sB > zero);
      const vf4 fA = (vf4)((vi4)(newtA - pA) & inA);
      const vf4 fB = (vf4)((vi4)(newtB - pB) & inB);
      const vf4 wA = nmA * fA, wB = nmB * fB;
      accx[t] += wA * dxA + wB * dxB;
      accy[t] += wA * dyA + wB * dyB;
      accz[t] += wA * dzA + wB * dzB;
    }
  }
  for (std::size_t t = 0; t < kTileTargets; ++t) {
    fx[t] = hsum(accx[t]);
    fy[t] = hsum(accy[t]);
    fz[t] = hsum(accz[t]);
  }
}

/// Block targets into tiles and evaluate. `target_index(k)` maps the k-th
/// target (0..count-1) to its absolute index in `p` and ax/ay/az; padding
/// lanes of a ragged final tile replicate the last target and their
/// results are discarded.
template <typename IndexFn>
void run_tiles_batched(const ShortRangeKernel& kernel, const ParticleArray& p,
                       NeighborList& list, float mass_scale,
                       std::size_t count, IndexFn target_index,
                       std::span<float> ax, std::span<float> ay,
                       std::span<float> az) {
  const std::size_t n_pad = pad_list(list);
  for (std::size_t t0 = 0; t0 < count; t0 += kTileTargets) {
    const std::size_t nt = std::min(kTileTargets, count - t0);
    float tx[kTileTargets], ty[kTileTargets], tz[kTileTargets];
    float fx[kTileTargets], fy[kTileTargets], fz[kTileTargets];
    for (std::size_t k = 0; k < kTileTargets; ++k) {
      const std::size_t i = target_index(t0 + std::min(k, nt - 1));
      tx[k] = p.x[i];
      ty[k] = p.y[i];
      tz[k] = p.z[i];
    }
    evaluate_tile(kernel, mass_scale, list.x.data(), list.y.data(),
                  list.z.data(), list.m.data(), n_pad, tx, ty, tz, fx, fy,
                  fz);
    for (std::size_t k = 0; k < nt; ++k) {
      const std::size_t i = target_index(t0 + k);
      ax[i] = fx[k];
      ay[i] = fy[k];
      az[i] = fz[k];
    }
  }
}

#endif  // HACC_HAVE_VECTOR_EXT

template <typename IndexFn>
void run_targets_scalar(const ShortRangeKernel& kernel,
                        const ParticleArray& p, const NeighborList& list,
                        float mass_scale, std::size_t count,
                        IndexFn target_index, std::span<float> ax,
                        std::span<float> ay, std::span<float> az) {
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t i = target_index(k);
    const Force3 f = evaluate_neighbor_list(
        kernel, p.x[i], p.y[i], p.z[i], list.x.data(), list.y.data(),
        list.z.data(), list.m.data(), list.size(), mass_scale);
    ax[i] = f.x;
    ay[i] = f.y;
    az[i] = f.z;
  }
}

}  // namespace

bool batched_kernel_available() noexcept {
  return HACC_HAVE_VECTOR_EXT != 0;
}

void evaluate_leaf(KernelVariant variant, const ShortRangeKernel& kernel,
                   const ParticleArray& p, std::uint32_t first,
                   std::uint32_t count, NeighborList& list, float mass_scale,
                   std::span<float> ax, std::span<float> ay,
                   std::span<float> az) {
  const auto index = [first](std::size_t k) {
    return static_cast<std::size_t>(first) + k;
  };
#if HACC_HAVE_VECTOR_EXT
  if (variant == KernelVariant::kBatched) {
    run_tiles_batched(kernel, p, list, mass_scale, count, index, ax, ay, az);
    return;
  }
#endif
  (void)variant;
  run_targets_scalar(kernel, p, list, mass_scale, count, index, ax, ay, az);
}

void evaluate_leaf_indexed(KernelVariant variant,
                           const ShortRangeKernel& kernel,
                           const ParticleArray& p,
                           std::span<const std::uint32_t> targets,
                           NeighborList& list, float mass_scale,
                           std::span<float> ax, std::span<float> ay,
                           std::span<float> az) {
  const auto index = [targets](std::size_t k) {
    return static_cast<std::size_t>(targets[k]);
  };
#if HACC_HAVE_VECTOR_EXT
  if (variant == KernelVariant::kBatched) {
    run_tiles_batched(kernel, p, list, mass_scale, targets.size(), index, ax,
                      ay, az);
    return;
  }
#endif
  (void)variant;
  run_targets_scalar(kernel, p, list, mass_scale, targets.size(), index, ax,
                     ay, az);
}

}  // namespace hacc::tree
