#include "tree/direct.h"

#include <cmath>

namespace hacc::tree {

void direct_short_range(const ParticleArray& p, const ShortRangeKernel& kernel,
                        std::span<float> ax, std::span<float> ay,
                        std::span<float> az, float mass_scale) {
  const std::size_t n = p.size();
  HACC_CHECK(ax.size() == n && ay.size() == n && az.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    float fx = 0, fy = 0, fz = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const float dx = p.x[j] - p.x[i];
      const float dy = p.y[j] - p.y[i];
      const float dz = p.z[j] - p.z[i];
      const float s = dx * dx + dy * dy + dz * dz;
      const float f = kernel.fsr(s) * p.mass[j] * mass_scale;
      fx += f * dx;
      fy += f * dy;
      fz += f * dz;
    }
    ax[i] = fx;
    ay[i] = fy;
    az[i] = fz;
  }
}

void direct_newtonian(const ParticleArray& p, float softening,
                      std::span<float> ax, std::span<float> ay,
                      std::span<float> az, float mass_scale) {
  const std::size_t n = p.size();
  HACC_CHECK(ax.size() == n && ay.size() == n && az.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    float fx = 0, fy = 0, fz = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const float dx = p.x[j] - p.x[i];
      const float dy = p.y[j] - p.y[i];
      const float dz = p.z[j] - p.z[i];
      const float s = dx * dx + dy * dy + dz * dz;
      const float f =
          newtonian_fscalar(s, softening) * p.mass[j] * mass_scale;
      fx += f * dx;
      fy += f * dy;
      fz += f * dz;
    }
    ax[i] = fx;
    ay[i] = fy;
    az[i] = fz;
  }
}

}  // namespace hacc::tree
