// Multiple RCB trees per rank (paper Sec. VI, "The Future").
//
// "Next, we will improve (nodal) load balancing by using multiple trees at
// each rank, enabling an improved threading of the tree-build."
//
// MultiTree spatially partitions the rank-local particle set into 2^splits
// disjoint blocks with the same three-phase partition the tree build uses
// (so the SoA stays one contiguous, locality-ordered array), then builds an
// independent RCB tree per block — the builds are independent and run under
// OpenMP. Force evaluation walks *all* trees for each leaf's neighbor list,
// so the result is identical to a single tree over the whole set; only the
// build parallelism and the work granularity change.
#pragma once

#include <memory>
#include <vector>

#include "tree/rcb_tree.h"

namespace hacc::tree {

struct MultiTreeConfig {
  /// Number of binary spatial splits: 2^splits trees. 0 = one tree.
  int splits = 3;
  RcbConfig rcb{};
};

class MultiTree {
 public:
  /// Partition + build; permutes the SoA in place like RcbTree.
  MultiTree(ParticleArray& particles, MultiTreeConfig config = {});

  const std::vector<RcbTree>& trees() const noexcept { return trees_; }
  const ParticleArray& particles() const noexcept { return *particles_; }

  /// Largest tree size / mean tree size: 1.0 = perfectly balanced builds.
  double build_imbalance() const noexcept;

  /// Gather every particle within rcut of `leaf` of tree `t`, searching all
  /// trees (cross-block neighbors included).
  void gather_neighbors(std::size_t t, std::uint32_t leaf_node, float rcut,
                        NeighborList& out,
                        std::size_t* visits = nullptr) const;

 private:
  ParticleArray* particles_;
  std::vector<RcbTree> trees_;
};

/// Short-range forces over a MultiTree; identical physics to the
/// single-tree compute_short_range, threaded over (tree, leaf) pairs.
/// `variant` picks the inner loop (tile-batched vs scalar); a persistent
/// `ws` keeps the flattened work vector and per-thread neighbor lists
/// across steps, making the phase allocation-free in steady state.
InteractionStats compute_short_range_multi(
    const MultiTree& forest, const ShortRangeKernel& kernel,
    std::span<float> ax, std::span<float> ay, std::span<float> az,
    float mass_scale = 1.0f, KernelVariant variant = default_kernel_variant(),
    ShortRangeWorkspace* ws = nullptr);

}  // namespace hacc::tree
